# CI entry points for the qwm repository. `make ci` is the gate a change
# must pass: vet, build, the targeted observability race suite, the full
# test suite under the race detector, the trace-export and ops-server
# lifecycle smokes, the HTTP service smoke (200 + schema-valid response,
# 429 backpressure under a flooded queue), the distributed-tracing smoke
# (two replicas, one traced request, merged cross-process trace +
# deterministic export), a smoke run of the STA-parallel, solver-kernel,
# observed-analyze, hot-path wide, incremental-reanalysis and
# warm-disk-service benchmarks (plus the dated JSON snapshot), a
# small-budget differential-verification sweep, a small fault-injection
# (chaos) sweep over every fault class, the incremental (ECO) edit-sequence
# differential, the service-path differential (wire bit-transparency,
# warm-disk restart, chaos through POST /analyze, trace determinism), and
# the remote-cache gates: the two-replica shared-tier smoke plus the
# kill/restart race tests — untraced and traced — (remote-smoke) and the
# network-chaos differential (remote-chaos).

GO ?= go

.PHONY: ci vet build test race race-obs trace-smoke trace-smoke-distributed leak-check service-smoke bench bench-full bench-json bench-compare verify verify-full chaos chaos-full eco eco-full service-verify remote-smoke remote-chaos

ci: vet build race-obs race trace-smoke trace-smoke-distributed leak-check service-smoke remote-smoke bench bench-json verify chaos eco service-verify remote-chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector covers the concurrent layers (sta worker pool, mc
# samplers, qwm scratch pool) along with everything else.
race:
	$(GO) test -race ./...

# Targeted race pass over the concurrency-critical packages: the sta worker
# pool delivering concurrent StageEval events (now including the degradation
# ladder and its recover isolation), the sharded metrics registry, and the
# fault injector shared by every worker during chaos runs. Fast enough to
# run first, before the full race sweep.
race-obs:
	$(GO) test -race ./internal/sta/... ./internal/obs/... ./internal/faultinject/...

# Trace-export smoke: record a full decoder analysis, validate the exported
# Chrome trace (balanced spans, one eval span per work item, args intact)
# and assert the deterministic rendering is byte-identical at Workers 1
# and 8.
trace-smoke:
	$(GO) test -run 'TestTraceDecoderSmoke|TestTraceDeterministicWorkersByteIdentical' -count=1 ./internal/sta/

# Distributed-tracing smoke: replica A answers warm off replica B's cache
# plane and the flight-recorded trace must contain spans from BOTH
# processes (the merged cross-replica trace), plus the deterministic export
# must be byte-identical at engine Workers 1 and 8.
trace-smoke-distributed:
	$(GO) test -race -run 'TestDistributedTraceMergesPeerSpan|TestTraceDeterministicAcrossWorkers|TestTraceEnvelopeAndRecorder' -count=1 ./internal/service/

# Ops-server lifecycle gate: repeated Start/Shutdown cycles must join the
# serve goroutine and leak nothing.
leak-check:
	$(GO) test -run 'TestServerStartShutdownNoLeak' -count=1 ./internal/obs/

# HTTP service smoke: POST /analyze of a decoder deck returns 200 with a
# schema-valid v1 envelope (cold evaluates, warm reports 0 evaluations),
# and a deterministically flooded queue sheds with 429 + Retry-After.
service-smoke:
	$(GO) test -race -run 'TestAnalyzeSingle|TestAnalyzeErrors|TestBackpressure429' -count=1 ./internal/service/

# One-iteration smoke of the perf-critical benchmarks: the parallel STA
# engine at every worker width, the in-place linear-solver kernels, the
# observability-overhead comparison (bare vs observer vs metrics), and the
# hot-path wide-netlist benchmark (reduction+memo off vs on).
bench:
	$(GO) test -run '^$$' -bench 'STAParallel|SolverKernels' -benchtime 1x -benchmem .
	$(GO) test -run '^$$' -bench 'AnalyzeObserved|WarmCacheLookup|STAWide|AnalyzeIncremental' -benchtime 1x -benchmem ./internal/sta/

# Full benchmark sweep (regenerates every table/figure; slow).
bench-full:
	$(GO) test -run '^$$' -bench . -benchmem .

# Machine-readable benchmark snapshot: run the engine-level benchmarks
# (parallel STA, warm-cache lookup, observability overhead, and the
# hot-path wide-netlist off/on comparison) and convert the text stream into
# benchstat-compatible JSON at the repo root, stamped with today's date.
bench-json:
	{ $(GO) test -run '^$$' -bench 'STAParallel' -benchtime 1x -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'WarmCacheLookup|AnalyzeObserved|STAWide|AnalyzeIncremental' -benchtime 1x -benchmem ./internal/sta/ ; \
	  $(GO) test -run '^$$' -bench 'ServiceWarmDisk' -benchtime 1x -benchmem ./internal/service/ ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_$$(date +%F).json

# Advisory benchmark regression report between the two most recent dated
# snapshots (benchjson -compare). Never fails the build: the shared CI box
# makes wall-clock deltas indicative, not contractual. Usage with explicit
# files: make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json
bench-compare:
	@old="$(OLD)"; new="$(NEW)"; \
	if [ -z "$$old" ] || [ -z "$$new" ]; then \
	  set -- $$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -2); \
	  old=$$1; new=$$2; \
	fi; \
	if [ -z "$$old" ] || [ -z "$$new" ] || [ "$$old" = "$$new" ]; then \
	  echo "bench-compare: need two BENCH_*.json snapshots (have: $$old $$new)"; \
	else \
	  $(GO) run ./cmd/benchjson -compare -threshold 5 "$$old" "$$new" || true; \
	fi

# Small-budget differential verification: 25 seeded stage netlists checked
# QWM-vs-SPICE, plus cached/uncached and serial/parallel equivalence (and
# the sibling load-aliasing trap). Exits non-zero on any gate failure.
verify:
	$(GO) run ./cmd/verify -seed 1 -n 25 -tol 10 -o /dev/null

# The acceptance-criteria sweep (200 cases, ~20 s): full JSON distribution
# on stdout.
verify-full:
	$(GO) run ./cmd/verify -seed 1 -n 200 -tol 10

# Small fault-injection sweep: every generated case re-run under each fault
# class at rate 1, gating on completeness, same-seed determinism at Workers
# 1 and 8, and conservative (never-optimistic) degraded delays. Exits
# non-zero on any violated invariant.
chaos:
	$(GO) run ./cmd/verify -chaos -seed 1 -chaos-n 2 -o /dev/null

# The full chaos acceptance sweep (more cases, JSON report on stdout).
chaos-full:
	$(GO) run ./cmd/verify -chaos -seed 1 -chaos-n 8

# Incremental (ECO) gate: the randomized edit-sequence differential —
# incremental vs from-scratch bit equality across the feature matrix plus
# dirty-cone minimality — and the TierSpice cross-member identity pin from
# the class-memoization fix. Exits non-zero on any mismatch.
eco:
	$(GO) run ./cmd/verify -eco -seed 1 -eco-edits 4 -o /dev/null
	$(GO) test -run 'TestSpiceCrossMemberBitIdentity|TestEvalSpicePathCanonical' -count=1 ./internal/sta/

# The full ECO acceptance sweep (longer edit sequences, JSON on stdout).
eco-full:
	$(GO) run ./cmd/verify -eco -seed 1 -eco-edits 8

# Service-path differential: the HTTP/JSON front door must be bit-transparent
# relative to the in-process engine, a restarted server over a warm cache
# directory must answer bit-identically with a >=90% disk hit rate, and
# chaos requests through POST /analyze must stay deterministic, conservative
# and isolated from the analyzer pool. Exits non-zero on any violation.
service-verify:
	$(GO) run ./cmd/verify -service -o /dev/null

# Remote-cache smoke, under the race detector: two in-process replicas share
# one tier server (the fresh one must answer warm: zero evaluations, >=90%
# remote hits, bit-identical results), and concurrent analyses through a
# full memory→remote→disk chain survive the remote server being killed and
# restarted mid-run without leaking a goroutine or moving a bit.
remote-smoke:
	$(GO) test -race -run 'TestTwoReplicasShareTier|TestChainKillRestartRace|TestTracedGetMergesPeerSpan|TestTracedKillMidRequest' -count=1 ./internal/sta/remotecache/

# Remote-cache differential: each network fault class (net-latency,
# net-error, net-corrupt) at rate 0.2 must leave results bit-identical to a
# remote-disabled baseline, the circuit breaker must walk its exact
# deterministic trajectory against a dead peer, and a dead peer must cost at
# most the breaker threshold plus one probe per window. Exits non-zero on
# any violation.
remote-chaos:
	$(GO) run ./cmd/verify -remote -o /dev/null
