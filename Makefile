# CI entry points for the qwm repository. `make ci` is the gate a change
# must pass: vet, build, the full test suite under the race detector, and
# a smoke run of the STA-parallel and solver-kernel benchmarks.

GO ?= go

.PHONY: ci vet build test race bench bench-full

ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector covers the concurrent layers (sta worker pool, mc
# samplers, qwm scratch pool) along with everything else.
race:
	$(GO) test -race ./...

# One-iteration smoke of the perf-critical benchmarks: the parallel STA
# engine at every worker width and the in-place linear-solver kernels.
bench:
	$(GO) test -run '^$$' -bench 'STAParallel|SolverKernels' -benchtime 1x -benchmem .

# Full benchmark sweep (regenerates every table/figure; slow).
bench-full:
	$(GO) test -run '^$$' -bench . -benchmem .
