package main

import (
	"bytes"
	"strings"
	"testing"
)

func i64(v int64) *int64 { return &v }

func docs() (*Doc, *Doc) {
	oldDoc := &Doc{Benchmarks: []Result{
		{Name: "BenchmarkStable-8", NsPerOp: 1000, AllocsPerOp: i64(10), BytesPerOp: i64(512)},
		{Name: "BenchmarkRegressed-8", NsPerOp: 1000, AllocsPerOp: i64(10)},
		{Name: "BenchmarkImproved-8", NsPerOp: 2000},
		{Name: "BenchmarkRemoved-8", NsPerOp: 100},
	}}
	newDoc := &Doc{Benchmarks: []Result{
		{Name: "BenchmarkStable-8", NsPerOp: 1030, AllocsPerOp: i64(10), BytesPerOp: i64(512)},
		{Name: "BenchmarkRegressed-8", NsPerOp: 1200, AllocsPerOp: i64(12)},
		{Name: "BenchmarkImproved-8", NsPerOp: 1500},
		{Name: "BenchmarkAdded-8", NsPerOp: 100},
	}}
	return oldDoc, newDoc
}

func TestCompareVerdicts(t *testing.T) {
	oldDoc, newDoc := docs()
	rows, onlyOld, onlyNew := compare(oldDoc, newDoc, 5)

	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	byName := map[string]compareRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkStable-8"]; r.Verdict != "" || r.DeltaPct != 3 {
		t.Errorf("stable row: %+v (3%% is under the 5%% threshold)", r)
	}
	if r := byName["BenchmarkRegressed-8"]; r.Verdict != "REGRESSION" || r.DeltaPct != 20 {
		t.Errorf("regressed row: %+v", r)
	}
	if r := byName["BenchmarkRegressed-8"]; !strings.Contains(r.AllocDelta, "(+2)") {
		t.Errorf("alloc delta %q, want +2", r.AllocDelta)
	}
	if r := byName["BenchmarkImproved-8"]; r.Verdict != "IMPROVEMENT" || r.DeltaPct != -25 {
		t.Errorf("improved row: %+v", r)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkRemoved-8" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkAdded-8" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
	// Rows are name-sorted for stable reports.
	if rows[0].Name > rows[1].Name || rows[1].Name > rows[2].Name {
		t.Errorf("rows unsorted: %v %v %v", rows[0].Name, rows[1].Name, rows[2].Name)
	}
}

func TestCompareThresholdEdge(t *testing.T) {
	oldDoc := &Doc{Benchmarks: []Result{{Name: "B", NsPerOp: 100}}}
	newDoc := &Doc{Benchmarks: []Result{{Name: "B", NsPerOp: 105}}}
	// Exactly AT threshold is not a verdict; strictly past it is.
	rows, _, _ := compare(oldDoc, newDoc, 5)
	if rows[0].Verdict != "" {
		t.Errorf("delta == threshold flagged: %+v", rows[0])
	}
	rows, _, _ = compare(oldDoc, newDoc, 4.9)
	if rows[0].Verdict != "REGRESSION" {
		t.Errorf("delta past threshold not flagged: %+v", rows[0])
	}
}

func TestWriteReport(t *testing.T) {
	oldDoc, newDoc := docs()
	rows, onlyOld, onlyNew := compare(oldDoc, newDoc, 5)
	var buf bytes.Buffer
	regressed := writeReport(&buf, "old.json", "new.json", rows, onlyOld, onlyNew, 5)
	if !regressed {
		t.Error("report with a REGRESSION row returned regressed=false")
	}
	out := buf.String()
	for _, want := range []string{
		"REGRESSION", "IMPROVEMENT",
		"allocs/op 10 → 12 (+2)",
		"BenchmarkRemoved-8: only in old.json",
		"BenchmarkAdded-8: only in new.json",
		"1µs", // humanNs renders 1000 ns adaptively
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// A clean comparison is not regressed.
	clean, _, _ := compare(oldDoc, oldDoc, 5)
	if writeReport(&bytes.Buffer{}, "a", "b", clean, nil, nil, 5) {
		t.Error("identical docs reported a regression")
	}
}

func TestHumanNs(t *testing.T) {
	cases := map[float64]string{
		500:   "500ns",
		1500:  "1.5µs",
		2.5e6: "2.5ms",
		3.2e9: "3.2s",
	}
	for ns, want := range cases {
		if got := humanNs(ns); got != want {
			t.Errorf("humanNs(%g) = %q, want %q", ns, got, want)
		}
	}
}
