// Command benchjson converts `go test -bench` text output into a
// benchstat-compatible JSON document. It reads the benchmark stream from
// stdin (or the files given as arguments), parses every result line and the
// goos/goarch/pkg/cpu preamble, and writes one JSON object:
//
//	go test -run '^$' -bench STAParallel -benchmem . | benchjson -o BENCH_2026-08-06.json
//
// Each benchmark entry carries the canonical fields (name, n, ns_per_op,
// bytes_per_op, allocs_per_op) plus any custom -ReportMetric units under
// "metrics", so downstream tooling — benchstat after a trivial re-render,
// jq, a dashboard — can consume runs without scraping text. Lines that are
// not benchmark results are ignored; a stream with no results is an error.
//
// A second mode compares two captured documents (see compare.go):
//
//	benchjson -compare -threshold 5 BENCH_old.json BENCH_new.json
//
// printing a benchstat-style report with per-benchmark ns/op deltas and a
// REGRESSION/IMPROVEMENT verdict past the threshold; exit 1 on regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// -cpu suffix (e.g. "BenchmarkSTAParallel/workers=4-8").
	Name string `json:"name"`
	// Pkg is the package under test, from the closest preceding "pkg:" line.
	Pkg string `json:"pkg,omitempty"`
	// N is the iteration count.
	N           int64   `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Metrics holds every other "value unit" pair on the line (custom
	// b.ReportMetric units, MB/s, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Date       string   `json:"date"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write the JSON document to this file (default: stdout)")
	cmp := flag.Bool("compare", false, "compare two JSON documents (OLD NEW) and print a benchstat-style regression report")
	threshold := flag.Float64("threshold", 5, "with -compare, |ns/op delta %| past which a row is flagged REGRESSION/IMPROVEMENT")
	flag.Parse()
	if *cmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: OLD.json NEW.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold))
	}
	var readers []io.Reader
	if flag.NArg() == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		readers = append(readers, f)
	}
	doc, err := Parse(io.MultiReader(readers...))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(doc.Benchmarks), *out)
		return
	}
	os.Stdout.Write(b)
}

// Parse consumes a `go test -bench` text stream and builds the document.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Date: time.Now().Format("2006-01-02")}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if !ok {
				continue // e.g. a bare "BenchmarkFoo" continuation header
			}
			res.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return doc, nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8   125  9300125 ns/op  1168 B/op  23 allocs/op  4.5 extra/unit
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: f[0], N: n}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			seen = true
		case "B/op":
			b := int64(v)
			res.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			res.AllocsPerOp = &a
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, seen
}
