package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: qwm
cpu: AMD EPYC 7B13
BenchmarkSTAParallel/workers=1-8         	       3	 355210143 ns/op	 8123456 B/op	   91234 allocs/op
BenchmarkSTAParallel/workers=8-8         	      10	 105210143 ns/op	 8223456 B/op	   91334 allocs/op
PASS
ok  	qwm	2.511s
pkg: qwm/internal/sta
BenchmarkWarmCacheLookup-8               	    1024	   1045000 ns/op	   98304 B/op	    1168 allocs/op
BenchmarkAnalyzeObserved/bare-8          	      12	  95000000 ns/op	      42.5 events/op	  512000 B/op	    6100 allocs/op
some unrelated chatter
PASS
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Fatalf("preamble: %+v", doc)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkSTAParallel/workers=1-8" || b0.N != 3 || b0.NsPerOp != 355210143 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.Pkg != "qwm" {
		t.Fatalf("b0 pkg = %q", b0.Pkg)
	}
	warm := doc.Benchmarks[2]
	if warm.Name != "BenchmarkWarmCacheLookup-8" || warm.Pkg != "qwm/internal/sta" {
		t.Fatalf("warm = %+v", warm)
	}
	if warm.AllocsPerOp == nil || *warm.AllocsPerOp != 1168 {
		t.Fatalf("warm allocs = %v", warm.AllocsPerOp)
	}
	if warm.BytesPerOp == nil || *warm.BytesPerOp != 98304 {
		t.Fatalf("warm bytes = %v", warm.BytesPerOp)
	}
	obs := doc.Benchmarks[3]
	if obs.Metrics["events/op"] != 42.5 {
		t.Fatalf("custom metric lost: %+v", obs.Metrics)
	}
	if doc.Date == "" {
		t.Fatal("date empty")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok qwm 1s\n")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestParseLineEdgeCases(t *testing.T) {
	if _, ok := parseLine("BenchmarkFoo"); ok {
		t.Error("bare header accepted")
	}
	if _, ok := parseLine("BenchmarkFoo 12 nonsense ns/op"); ok {
		t.Error("non-numeric value accepted")
	}
	res, ok := parseLine("BenchmarkFoo-4 100 250.5 ns/op")
	if !ok || res.NsPerOp != 250.5 || res.BytesPerOp != nil {
		t.Errorf("minimal line: %+v ok=%v", res, ok)
	}
}
