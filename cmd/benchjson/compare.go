package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Comparison mode: `benchjson -compare OLD.json NEW.json` renders a
// benchstat-style regression report over two previously captured documents.
// Benchmarks are matched by full name; each matched row reports the old and
// new ns/op, the delta in percent, and — past -threshold — a REGRESSION or
// IMPROVEMENT verdict. Bytes/op and allocs/op deltas are reported when both
// sides carry them. The exit status encodes the verdict (0 clean, 1 any
// regression past threshold) so CI can consume it, though the repo wires it
// advisory (`make bench-compare` never fails the build: one shared CI box
// makes wall-clock comparisons indicative, not contractual).

// compareRow is one matched benchmark in the report.
type compareRow struct {
	Name       string
	OldNs      float64
	NewNs      float64
	DeltaPct   float64
	AllocDelta string // "" when either side lacks allocs/op
	ByteDelta  string
	Verdict    string // "", "REGRESSION", "IMPROVEMENT"
}

// loadDoc reads one BENCH_*.json document.
func loadDoc(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc Doc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in document", path)
	}
	return &doc, nil
}

// pct renders a signed percentage delta.
func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// intDelta renders "23 → 25 (+2)" for optional int64 metric pairs.
func intDelta(old, new *int64) string {
	if old == nil || new == nil {
		return ""
	}
	return fmt.Sprintf("%d → %d (%+d)", *old, *new, *new-*old)
}

// compare builds the report rows plus the lists of benchmarks present on only
// one side. threshold is the |delta %| past which a row gets a verdict.
func compare(oldDoc, newDoc *Doc, threshold float64) (rows []compareRow, onlyOld, onlyNew []string) {
	oldBy := map[string]Result{}
	for _, b := range oldDoc.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]Result{}
	for _, b := range newDoc.Benchmarks {
		newBy[b.Name] = b
	}
	for name, ob := range oldBy {
		nb, ok := newBy[name]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		row := compareRow{
			Name:       name,
			OldNs:      ob.NsPerOp,
			NewNs:      nb.NsPerOp,
			DeltaPct:   pct(ob.NsPerOp, nb.NsPerOp),
			AllocDelta: intDelta(ob.AllocsPerOp, nb.AllocsPerOp),
			ByteDelta:  intDelta(ob.BytesPerOp, nb.BytesPerOp),
		}
		switch {
		case row.DeltaPct > threshold:
			row.Verdict = "REGRESSION"
		case row.DeltaPct < -threshold:
			row.Verdict = "IMPROVEMENT"
		}
		rows = append(rows, row)
	}
	for name := range newBy {
		if _, ok := oldBy[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return rows, onlyOld, onlyNew
}

// humanNs renders a nanosecond quantity with an adaptive unit.
func humanNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.4gns", ns)
	}
}

// writeReport renders the comparison and reports whether any row regressed
// past the threshold.
func writeReport(w io.Writer, oldPath, newPath string, rows []compareRow, onlyOld, onlyNew []string, threshold float64) bool {
	fmt.Fprintf(w, "benchjson compare: %s → %s (threshold ±%.1f%%)\n\n", oldPath, newPath, threshold)
	nameW := len("benchmark")
	for _, r := range rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %12s  %12s  %8s  %s\n", nameW, "benchmark", "old", "new", "delta", "verdict")
	regressed := false
	for _, r := range rows {
		if r.Verdict == "REGRESSION" {
			regressed = true
		}
		fmt.Fprintf(w, "%-*s  %12s  %12s  %+7.1f%%  %s\n",
			nameW, r.Name, humanNs(r.OldNs), humanNs(r.NewNs), r.DeltaPct, r.Verdict)
		if r.AllocDelta != "" && strings.Contains(r.AllocDelta, "(+") {
			fmt.Fprintf(w, "%-*s  allocs/op %s\n", nameW, "", r.AllocDelta)
		}
		if r.ByteDelta != "" && strings.Contains(r.ByteDelta, "(+") {
			fmt.Fprintf(w, "%-*s  bytes/op  %s\n", nameW, "", r.ByteDelta)
		}
	}
	for _, n := range onlyOld {
		fmt.Fprintf(w, "%s: only in %s (removed?)\n", n, oldPath)
	}
	for _, n := range onlyNew {
		fmt.Fprintf(w, "%s: only in %s (new)\n", n, newPath)
	}
	return regressed
}

// runCompare is the -compare entry point; returns the process exit code.
func runCompare(oldPath, newPath string, threshold float64) int {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	rows, onlyOld, onlyNew := compare(oldDoc, newDoc, threshold)
	if writeReport(os.Stdout, oldPath, newPath, rows, onlyOld, onlyNew, threshold) {
		return 1
	}
	return 0
}
