// Command verify runs the differential-verification harness: seeded random
// stage netlists are cross-checked three ways — QWM against the in-repo
// SPICE-class transient baseline (per-stage delay and slew), cached against
// uncached full sta.Analyze runs, and serial against parallel runs —
// including shared-identity/different-load sibling pairs shaped to trip
// delay-cache aliasing bugs, plus hot-path feature differentials on wide
// netlists (RC-reduction and class-memoization off ⇒ bit-identical, on ⇒
// bounded error, and the class-level load-aliasing trap). The full per-case
// error distribution is emitted as JSON.
//
//	verify -seed 1 -n 200                 # acceptance sweep, JSON on stdout
//	verify -seed 7 -n 50 -tol 5 -v       # tighter gate, per-case progress
//	verify -n 25 -o report.json           # write the report to a file
//
// Exit status is non-zero when any gate fails: median QWM-vs-SPICE delay
// accuracy below 95 %, any cached/uncached or serial/parallel arrival
// mismatch (these must be bit-for-bit identical), or any engine error.
package main

import (
	"flag"
	"fmt"
	"os"

	"qwm/internal/obs"
	"qwm/internal/verify"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "random seed; identical seeds reproduce identical cases and reports")
		n       = flag.Int("n", 50, "number of generated single-stage QWM-vs-SPICE cases")
		tol     = flag.Float64("tol", 10, "per-case delay-error tolerance in percent")
		workers = flag.Int("workers", 8, "worker count for the serial-vs-parallel differential")
		outPath = flag.String("o", "", "write the JSON report to this file (default: stdout)")
		verbose = flag.Bool("v", false, "print per-case progress to stderr")
		metrics = flag.Bool("metrics-json", false, "collect STA engine metrics across the sweep and embed the snapshot in the report")
		dumpDir = flag.String("dump-worst", "", "after the sweep, re-run the worst-error stage case with waveform capture and write a forensic bundle (case/waveforms/trace/metrics JSON) into this directory")

		chaos     = flag.Bool("chaos", false, "run the fault-injection sweep instead: every case re-run under each fault class (see internal/faultinject)")
		chaosN    = flag.Int("chaos-n", 6, "number of generated analyze cases in the chaos sweep")
		chaosRate = flag.Float64("chaos-rate", 1, "per-class firing rate in (0,1]; 1 arms the strict tier-coverage assertions")

		eco      = flag.Bool("eco", false, "run the incremental (ECO) edit-sequence differential instead: randomized resize/load/buffer edits, incremental vs from-scratch bit equality plus dirty-cone minimality")
		ecoEdits = flag.Int("eco-edits", 6, "number of edit steps per (workload, variant) sequence in the eco sweep")

		svc = flag.Bool("service", false, "run the service-path differential instead: direct-vs-wire bit identity, warm-disk restart with >=90% hit rate, and the chaos contract through POST /analyze")

		remote     = flag.Bool("remote", false, "run the remote-cache differential instead: network chaos bit identity, deterministic breaker trajectory, warm shared-tier replica, dead-peer cost bound")
		remoteRate = flag.Float64("remote-rate", 0.2, "per-class network fault rate in (0,1] for the remote sweep")
	)
	flag.Parse()
	if *remote {
		if err := runRemote(*seed, *workers, *remoteRate, *outPath, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		return
	}
	if *svc {
		if err := runService(*seed, *workers, *outPath, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		return
	}
	if *chaos {
		if err := runChaos(*seed, *chaosN, *chaosRate, *workers, *outPath, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		return
	}
	if *eco {
		if err := runECO(*seed, *ecoEdits, *workers, *outPath, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*seed, *n, *tol, *workers, *outPath, *dumpDir, *verbose, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
}

// runChaos executes the seeded fault-injection sweep and gates on its three
// invariants: completeness, same-seed determinism at any worker count, and
// conservative (never-optimistic) degraded delays.
func runChaos(seed int64, n int, rate float64, workers int, outPath string, verbose bool) error {
	cfg := verify.ChaosConfig{Seed: seed, N: n, Rate: rate, Workers: workers}
	if verbose {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := verify.RunChaos(cfg)
	if err != nil {
		return err
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Println(string(b))
	}
	fmt.Fprintf(os.Stderr, "verify -chaos: %d cells (%d cases x %d fault classes), %d failures\n",
		len(rep.Cells), n, len(rep.Cells)/max(n, 1), rep.Failures)
	if !rep.Pass {
		return fmt.Errorf("chaos gates failed")
	}
	fmt.Fprintln(os.Stderr, "verify -chaos: PASS")
	return nil
}

// runECO executes the randomized edit-sequence differential and gates on the
// incremental engine's invariants: bit-for-bit equality with the from-scratch
// schedule (at workers 1 and N, across the plain/memo/interp/reduce/chaos
// matrix), dirty counts bounded by the edit's structural fanout closure, and
// zero re-evaluation on no-op reruns.
func runECO(seed int64, edits, workers int, outPath string, verbose bool) error {
	cfg := verify.ECOConfig{Seed: seed, Edits: edits, Workers: workers}
	if verbose {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := verify.RunECO(cfg)
	if err != nil {
		return err
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Println(string(b))
	}
	fmt.Fprintf(os.Stderr, "verify -eco: %d sequences (%d edits each), %d failures\n",
		len(rep.Sequences), edits, rep.Failures)
	if !rep.Pass {
		return fmt.Errorf("eco gates failed")
	}
	fmt.Fprintln(os.Stderr, "verify -eco: PASS")
	return nil
}

// runService executes the service-path differential and gates on its wire
// invariants: the HTTP/JSON front door must be bit-transparent relative to
// the in-process engine, a restarted replica over a warm cache directory
// must answer identically with a >=90 % disk hit rate, and chaos requests
// must stay deterministic, conservative, and isolated from the pool.
func runService(seed int64, workers int, outPath string, verbose bool) error {
	cfg := verify.ServiceConfig{Seed: seed, Workers: workers}
	if verbose {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := verify.RunService(cfg)
	if err != nil {
		return err
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Println(string(b))
	}
	fmt.Fprintf(os.Stderr, "verify -service: %d cells, %d failures, disk hit rate %.3f\n",
		len(rep.Cells), rep.Failures, rep.DiskHitRate)
	if !rep.Pass {
		return fmt.Errorf("service gates failed")
	}
	fmt.Fprintln(os.Stderr, "verify -service: PASS")
	return nil
}

// runRemote executes the remote-cache differential and gates on the
// fault-tolerance envelope's invariants: network chaos (latency, errors,
// corruption) must never move a single result bit relative to a
// remote-disabled baseline, the circuit breaker must walk a deterministic
// state trajectory against a dead peer, a fresh replica must answer warm
// (>=90 % remote hits, zero evaluations) off a shared tier, and a dead peer
// must cost at most the breaker threshold plus one probe per window.
func runRemote(seed int64, workers int, rate float64, outPath string, verbose bool) error {
	cfg := verify.RemoteConfig{Seed: seed, Workers: workers, Rate: rate}
	if verbose {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := verify.RunRemote(cfg)
	if err != nil {
		return err
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Println(string(b))
	}
	fmt.Fprintf(os.Stderr, "verify -remote: %d cells, %d failures, remote hit rate %.3f\n",
		len(rep.Cells), rep.Failures, rep.RemoteHitRate)
	if !rep.Pass {
		return fmt.Errorf("remote gates failed")
	}
	fmt.Fprintln(os.Stderr, "verify -remote: PASS")
	return nil
}

func run(seed int64, n int, tol float64, workers int, outPath, dumpDir string, verbose, metrics bool) error {
	cfg := verify.Config{Seed: seed, N: n, TolPct: tol, Workers: workers}
	if verbose {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	// -dump-worst implies metrics collection: the forensic bundle is
	// supposed to be self-contained (waveforms + trace + metrics), so the
	// sweep's engine-metrics snapshot must exist for DumpWorst to embed.
	if metrics || dumpDir != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	rep, err := verify.Run(cfg)
	if err != nil {
		return err
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Println(string(b))
	}

	// The forensic dump runs before the gate check on purpose: a failing
	// sweep is exactly when the worst-case bundle is wanted.
	if dumpDir != "" {
		bundle, err := verify.DumpWorst(rep, dumpDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verify: dump-worst:", err)
		} else {
			fmt.Fprintf(os.Stderr, "verify: dump-worst: case %s (err %.2f%%) -> %s (%d files)\n",
				bundle.Case.Name, bundle.Case.DelayErrPct, dumpDir, len(bundle.Files))
		}
	}

	s := rep.Summary
	fmt.Fprintf(os.Stderr,
		"verify: %d stage cases (median accuracy %.2f%%, p95 err %.2f%%, %d over %.3g%% tol, %d engine errors); "+
			"%d analyze cases (%d mismatches); %d sibling pairs (%d mismatches); "+
			"%d hot-path cases (%d mismatches, max err %.2f%%)\n",
		s.StageCases, s.MedianAccuracyPct, s.P95DelayErrPct, s.StageFailures, rep.TolPct, s.StageErrors,
		s.AnalyzeCases, s.AnalyzeMismatches, s.SiblingPairs, s.SiblingMismatches,
		s.HotPathCases, s.HotPathMismatches, s.MaxHotPathErrPct)
	if !s.Pass {
		return fmt.Errorf("verification gates failed")
	}
	fmt.Fprintln(os.Stderr, "verify: PASS")
	return nil
}
