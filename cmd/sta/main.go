// Command sta runs transistor-level static timing analysis over a
// SPICE-style deck: the netlist is partitioned into logic stages
// (channel-connected components), each stage's rise/fall delays are
// evaluated with QWM, and arrival times propagate from the primary inputs
// to the requested outputs.
//
//	sta -deck chain.sp -inputs a0,b0 -outputs out
//	sta -deck chain.sp -inputs 'a0,b0@150p' -outputs out   # b0 arrives late
//	sta -deck decoder.sp -outputs y0,y1 -workers 8 -cache-stats
//
// Stage evaluation is parallel: -workers sets the per-level worker-pool
// size (0 = GOMAXPROCS, 1 = serial); results are identical for any value.
// -cache-stats prints the sharded delay cache's hit/miss/evaluation
// counters after the run, plus this run's diagnostics (evaluation-error and
// slew-fallback counts, with the first error per failed direction), so
// silently degraded directions are visible. -metrics-json dumps the metrics
// registry — counters plus NR-iteration, region-count and latency
// histograms — as JSON on stdout.
//
// Evaluations that fail to converge (or exhaust -nr-budget / -wall-budget)
// escalate a degradation ladder — QWM Newton, QWM bisection, adaptive
// transient, conservative RC bound — so the report is always complete; a
// run that used any fallback tier prints a DEGRADED line with the
// per-direction tier inventory.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/netlist"
	"qwm/internal/obs"
	"qwm/internal/sta"
)

func main() {
	var (
		deckPath = flag.String("deck", "", "SPICE-style deck file (default: stdin)")
		inputs   = flag.String("inputs", "", "comma-separated primary inputs, each optionally net@arrival (e.g. a,b@100p)")
		outputs  = flag.String("outputs", "out", "comma-separated primary outputs")
		verbose  = flag.Bool("v", false, "print the arrival of every net")
		workers  = flag.Int("workers", 0, "stage evaluations in flight per level (0 = GOMAXPROCS, 1 = serial)")
		stats    = flag.Bool("cache-stats", false, "print delay-cache hit/miss/evaluation counters")
		metrics  = flag.Bool("metrics-json", false, "dump the metrics registry (counters + histograms) as JSON")
		nrBudget = flag.Int("nr-budget", 0, "per-evaluation Newton-iteration budget (0 = unlimited); exhaustion degrades the tier, never fails the run")
		wallB    = flag.Duration("wall-budget", 0, "per-evaluation wall-clock budget (0 = unlimited)")
	)
	flag.Parse()
	budget := sta.EvalBudget{NRIters: *nrBudget, Wall: *wallB}
	if err := run(*deckPath, *inputs, *outputs, *verbose, *workers, *stats, *metrics, budget); err != nil {
		fmt.Fprintln(os.Stderr, "sta:", err)
		os.Exit(1)
	}
}

func run(deckPath, inputs, outputs string, verbose bool, workers int, stats, metricsJSON bool, budget sta.EvalBudget) error {
	in := os.Stdin
	if deckPath != "" {
		f, err := os.Open(deckPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	deck, err := netlist.Parse(in)
	if err != nil {
		return err
	}
	primary := map[string]sta.Arrival{}
	for _, spec := range strings.Split(inputs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		net, at, found := strings.Cut(spec, "@")
		ar := sta.Arrival{}
		if found {
			v, err := netlist.ParseValue(at)
			if err != nil {
				return fmt.Errorf("input %q: %w", spec, err)
			}
			ar = sta.Arrival{Rise: v, Fall: v}
		}
		primary[net] = ar
	}
	outs := strings.Split(outputs, ",")
	for i := range outs {
		outs[i] = strings.TrimSpace(outs[i])
	}

	tech := mos.CMOSP35()
	a := sta.New(tech, devmodel.NewLibrary(tech))
	a.Workers = workers
	if metricsJSON {
		a.Metrics = obs.NewRegistry()
		a.Metrics.Publish("sta")
	}
	res, err := a.AnalyzeContext(context.Background(), sta.Request{
		Netlist: deck.Netlist, Primary: primary, Outputs: outs, Budget: budget,
	})
	if err != nil {
		return err
	}
	fmt.Printf("deck: %s\n", deck.Title)
	fmt.Printf("stage evaluations: %d\n", res.StagesEvaluated)
	fmt.Printf("worst arrival: %.4g s at %q\n", res.WorstArrival, res.WorstOutput)
	fmt.Printf("critical path (latest first): %s\n", strings.Join(res.CriticalPath, " <- "))
	if !res.Diagnostics.Healthy() {
		// A degraded run still reports complete arrivals, but the operator
		// must see which directions came from a fallback tier.
		fmt.Printf("DEGRADED: %s\n", res.Diagnostics)
	}
	if stats {
		cs := a.CacheStats()
		fmt.Printf("delay cache: %d hits, %d misses, %d evaluations, %d entries\n",
			cs.Hits, cs.Misses, cs.Evaluations, cs.Entries)
		fmt.Printf("diagnostics: %s\n", res.Diagnostics)
	}
	if metricsJSON {
		js, jerr := a.Metrics.Snapshot().JSON()
		if jerr != nil {
			return jerr
		}
		fmt.Println(string(js))
	}
	if verbose {
		nets := make([]string, 0, len(res.Arrivals))
		for n := range res.Arrivals {
			nets = append(nets, n)
		}
		sort.Strings(nets)
		fmt.Println("\nnet arrivals:")
		for _, n := range nets {
			ar := res.Arrivals[n]
			fmt.Printf("  %-10s rise %.4g  fall %.4g\n", n, ar.Rise, ar.Fall)
		}
	}
	return nil
}
