// Command sta runs transistor-level static timing analysis over a
// SPICE-style deck: the netlist is partitioned into logic stages
// (channel-connected components), each stage's rise/fall delays are
// evaluated with QWM, and arrival times propagate from the primary inputs
// to the requested outputs.
//
//	sta -deck chain.sp -inputs a0,b0 -outputs out
//	sta -deck chain.sp -inputs 'a0,b0@150p' -outputs out   # b0 arrives late
//	sta -deck decoder.sp -outputs y0,y1 -workers 8 -cache-stats
//	sta -deck bus.sp -outputs y0,y1 -reduce 1 -memo -interp -cache-stats
//
// Stage evaluation is parallel: -workers sets the per-level worker-pool
// size (0 = GOMAXPROCS, 1 = serial); results are identical for any value.
// -cache-stats prints the sharded delay cache's hit/miss/evaluation
// counters after the run, plus this run's diagnostics (evaluation-error and
// slew-fallback counts, with the first error per failed direction), so
// silently degraded directions are visible. -metrics-json dumps the metrics
// registry — counters plus NR-iteration, region-count and latency
// histograms — as JSON on stdout.
//
// Hot-path accelerators (both off by default; with both off the result is
// bit-identical to earlier releases): -reduce TOL enables the RC-chain
// model-order-reduction pre-pass, collapsing long series wire runs into
// moment-matched stubs with at most TOL percent second-moment mismatch;
// -memo enables equivalence-class stage memoization (structurally identical
// stages share one evaluation per rail and 5 ps slew bucket), and -interp
// additionally interpolates between bucket-boundary evaluations instead of
// snapping to the bucket floor. -cache-stats then also reports how many RC
// nodes the pre-pass removed and the class count/hit tallies.
//
// -eco routes the analysis through the incremental (ECO) scheduler and then
// re-runs it: the second pass diffs per-stage content digests against the
// first, finds nothing dirty, and replays every arrival from the memo with
// zero solver work — the flow an edit-measure-edit optimization loop runs
// thousands of times (see internal/sizing). Both passes print a
// dirty/skipped/early-stop summary line.
//
// Evaluations that fail to converge (or exhaust -nr-budget / -wall-budget)
// escalate a degradation ladder — QWM Newton, QWM bisection, adaptive
// transient, conservative RC bound — so the report is always complete; a
// run that used any fallback tier prints a DEGRADED line with the
// per-direction tier inventory.
//
// Ops surface: -trace FILE records the analysis as Chrome trace-event JSON
// (load it in Perfetto; -trace-deterministic writes the schedule-independent
// variant instead). -serve ADDR keeps the process alive after the analysis
// and serves /metrics (Prometheus), /healthz (503 while the last run is
// degraded or the analysis queue is saturated), /trace, /debug/vars and
// /debug/pprof/ until SIGINT/SIGTERM — plus the analysis front door itself:
// POST /analyze (single requests and batches in the versioned v1 wire
// schema, see internal/api/v1) and GET /result/{id} for async batches.
// -cache-dir DIR adds the persistent content-addressed delay-cache tier
// below the served analyzers' in-memory caches, so a restarted process
// answers warm. -metrics-json output is the versioned v1 metrics envelope.
// For a serve-only daemon without the one-shot deck analysis, see cmd/stad.
//
//	sta -deck decoder.sp -outputs y0,y1 -trace run.trace.json
//	sta -deck decoder.sp -outputs y0,y1 -serve :8080 -cache-dir /var/tmp/qwm
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"qwm/internal/api/v1"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/netlist"
	"qwm/internal/obs"
	"qwm/internal/reduce"
	"qwm/internal/service"
	"qwm/internal/sta"
)

func main() {
	var (
		deckPath = flag.String("deck", "", "SPICE-style deck file (default: stdin)")
		inputs   = flag.String("inputs", "", "comma-separated primary inputs, each optionally net@arrival (e.g. a,b@100p)")
		outputs  = flag.String("outputs", "out", "comma-separated primary outputs")
		verbose  = flag.Bool("v", false, "print the arrival of every net")
		workers  = flag.Int("workers", 0, "stage evaluations in flight per level (0 = GOMAXPROCS, 1 = serial)")
		stats    = flag.Bool("cache-stats", false, "print delay-cache hit/miss/evaluation counters plus p50/p95/p99 solver quantiles")
		metrics  = flag.Bool("metrics-json", false, "dump the metrics registry (counters + histograms) as JSON")
		nrBudget = flag.Int("nr-budget", 0, "per-evaluation Newton-iteration budget (0 = unlimited); exhaustion degrades the tier, never fails the run")
		wallB    = flag.Duration("wall-budget", 0, "per-evaluation wall-clock budget (0 = unlimited)")
		redTol   = flag.Float64("reduce", 0, "enable the RC-chain reduction pre-pass with this moment-mismatch tolerance in percent (0 = off)")
		memo     = flag.Bool("memo", false, "enable equivalence-class stage memoization (evaluation slew snapped to 5 ps buckets)")
		interp   = flag.Bool("interp", false, "with -memo, interpolate between slew-bucket boundary evaluations instead of floor-snapping")
		eco      = flag.Bool("eco", false, "run through the incremental (ECO) scheduler and demonstrate a no-op re-run: the second pass diffs per-stage content digests against the first and replays everything clean")
		trace    = flag.String("trace", "", "write the analysis as Chrome trace-event JSON to this file")
		traceDet = flag.Bool("trace-deterministic", false, "write the deterministic trace variant (synthetic clock, schedule-independent; byte-identical at any -workers)")
		serve    = flag.String("serve", "", "after the analysis, serve the ops endpoints (/metrics /healthz /trace /debug/vars /debug/pprof/) plus the analysis front door (POST /analyze, GET /result/) on this address until SIGINT/SIGTERM")
		cacheDir = flag.String("cache-dir", "", "with -serve, root directory for the persistent delay-cache tier (empty = memory only)")
	)
	flag.Parse()
	budget := sta.EvalBudget{NRIters: *nrBudget, Wall: *wallB}
	opts := opsOptions{
		stats: *stats, metricsJSON: *metrics,
		tracePath: *trace, traceDet: *traceDet, serveAddr: *serve, cacheDir: *cacheDir,
	}
	if *cacheDir != "" && *serve == "" {
		fmt.Fprintln(os.Stderr, "sta: -cache-dir has no effect without -serve")
	}
	if *interp && !*memo {
		fmt.Fprintln(os.Stderr, "sta: -interp has no effect without -memo")
	}
	feat := hotPathFlags{reduceTol: *redTol, memo: *memo, interp: *interp, eco: *eco}
	if err := run(*deckPath, *inputs, *outputs, *verbose, *workers, budget, feat, opts); err != nil {
		fmt.Fprintln(os.Stderr, "sta:", err)
		os.Exit(1)
	}
}

// opsOptions bundles the observability flags.
type opsOptions struct {
	stats, metricsJSON bool
	tracePath          string
	traceDet           bool
	serveAddr          string
	cacheDir           string
}

// hotPathFlags bundles the accelerator knobs (-reduce/-memo/-interp/-eco).
type hotPathFlags struct {
	reduceTol    float64
	memo, interp bool
	eco          bool
}

func run(deckPath, inputs, outputs string, verbose bool, workers int, budget sta.EvalBudget, feat hotPathFlags, ops opsOptions) error {
	in := os.Stdin
	if deckPath != "" {
		f, err := os.Open(deckPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	deck, err := netlist.Parse(in)
	if err != nil {
		return err
	}
	primary := map[string]sta.Arrival{}
	for _, spec := range strings.Split(inputs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		net, at, found := strings.Cut(spec, "@")
		ar := sta.Arrival{}
		if found {
			v, err := netlist.ParseValue(at)
			if err != nil {
				return fmt.Errorf("input %q: %w", spec, err)
			}
			ar = sta.Arrival{Rise: v, Fall: v}
		}
		primary[net] = ar
	}
	outs := strings.Split(outputs, ",")
	for i := range outs {
		outs[i] = strings.TrimSpace(outs[i])
	}

	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)
	cfg := sta.Config{Workers: workers}
	if feat.reduceTol > 0 {
		cfg.Reduction = reduce.Config{Enabled: true, TolPct: feat.reduceTol}
	}
	if feat.memo {
		cfg.Memo = sta.MemoConfig{Enabled: true, Interp: feat.interp}
	}
	if ops.metricsJSON || ops.stats || ops.serveAddr != "" {
		cfg.Metrics = obs.NewRegistry()
		if !cfg.Metrics.Publish("sta") {
			fmt.Fprintln(os.Stderr, `sta: expvar name "sta" already taken; /debug/vars will not show this registry`)
		}
	}
	a := sta.New(tech, lib, cfg)
	var recorder *obs.TraceRecorder
	req := sta.Request{
		Netlist: deck.Netlist, Primary: primary, Outputs: outs, Budget: budget,
		Incremental: feat.eco,
	}
	if ops.tracePath != "" || ops.serveAddr != "" {
		recorder = obs.NewTraceRecorder()
		req.Observer = recorder
	}
	res, err := a.AnalyzeContext(context.Background(), req)
	if err != nil {
		return err
	}
	fmt.Printf("deck: %s\n", deck.Title)
	fmt.Printf("stage evaluations: %d\n", res.StagesEvaluated)
	fmt.Printf("worst arrival: %.4g s at %q\n", res.WorstArrival, res.WorstOutput)
	fmt.Printf("critical path (latest first): %s\n", strings.Join(res.CriticalPath, " <- "))
	if !res.Diagnostics.Healthy() {
		// A degraded run still reports complete arrivals, but the operator
		// must see which directions came from a fallback tier.
		fmt.Printf("DEGRADED: %s\n", res.Diagnostics)
	}
	if feat.eco {
		fmt.Printf("eco: %d dirty, %d skipped, %d early-stops\n",
			res.ECO.DirtyStages, res.ECO.SkippedStages, res.ECO.EarlyStops)
		// The first incremental call has no baseline, so everything above is
		// dirty; the re-run shows the ECO payoff on an unedited deck — every
		// stage replays from the memo with zero solver work.
		rerun, err := a.AnalyzeContext(context.Background(), req)
		if err != nil {
			return fmt.Errorf("eco re-run: %w", err)
		}
		fmt.Printf("eco re-run: %d dirty, %d skipped, %d early-stops, %d stage evaluations\n",
			rerun.ECO.DirtyStages, rerun.ECO.SkippedStages, rerun.ECO.EarlyStops, rerun.StagesEvaluated)
	}
	if ops.stats {
		cs := a.CacheStats()
		fmt.Printf("delay cache: %d hits, %d misses, %d evaluations, %d entries\n",
			cs.Hits, cs.Misses, cs.Evaluations, cs.Entries)
		if feat.reduceTol > 0 {
			fmt.Printf("reduction: %d RC nodes removed\n", res.ReducedNodes)
		}
		if feat.memo {
			fmt.Printf("memoization: %d classes, %d class hits\n", res.ClassCount, res.ClassHits)
		}
		fmt.Printf("diagnostics: %s\n", res.Diagnostics)
		printQuantiles(a.Metrics.Snapshot())
	}
	if ops.metricsJSON {
		js, jerr := json.MarshalIndent(v1.NewMetricsEnvelope(a.Metrics.Snapshot()), "", "  ")
		if jerr != nil {
			return jerr
		}
		fmt.Println(string(js))
	}
	if verbose {
		nets := make([]string, 0, len(res.Arrivals))
		for n := range res.Arrivals {
			nets = append(nets, n)
		}
		sort.Strings(nets)
		fmt.Println("\nnet arrivals:")
		for _, n := range nets {
			ar := res.Arrivals[n]
			fmt.Printf("  %-10s rise %.4g  fall %.4g\n", n, ar.Rise, ar.Fall)
		}
	}
	if ops.tracePath != "" {
		t := recorder.Trace()
		if ops.traceDet {
			t = t.Deterministic()
		}
		b, err := t.JSON()
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := os.WriteFile(ops.tracePath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "sta: trace written to %s\n", ops.tracePath)
	}
	if ops.serveAddr != "" {
		return serveOps(ops, tech, lib, workers, a.Metrics, recorder, res)
	}
	return nil
}

// printQuantiles renders the p50/p95/p99 of the per-evaluation solver
// histograms (bucket-interpolated, see obs.HistSnapshot.Quantile). A warm
// all-hit run performs no evaluations and prints nothing.
func printQuantiles(snap obs.Snapshot) {
	rows := []struct{ label, metric, unit string }{
		{"eval latency", sta.MetricEvalSeconds, "s"},
		{"NR iters/eval", sta.MetricNRItersPerEval, ""},
		{"regions/eval", sta.MetricRegionsPerEval, ""},
	}
	for _, row := range rows {
		h, ok := snap.Histograms[row.metric]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Printf("%-14s p50 %.3g%s  p95 %.3g%s  p99 %.3g%s  (n=%d)\n",
			row.label+":",
			h.Quantile(0.50), row.unit, h.Quantile(0.95), row.unit,
			h.Quantile(0.99), row.unit, h.Count)
	}
}

// serveOps blocks serving the ops endpoints plus the analysis front door
// until SIGINT/SIGTERM, then shuts both down gracefully. Health reflects the
// completed one-shot analysis AND the serving queue: 503 while the run's
// diagnostics report degradation or the work queue is saturated.
func serveOps(ops opsOptions, tech *mos.Tech, lib *devmodel.Library, workers int, reg *obs.Registry, recorder *obs.TraceRecorder, res *sta.Result) error {
	build := obs.RegisterBuildInfo(reg)
	flight := obs.NewFlightRecorder()
	svc := service.New(tech, lib, service.Options{
		CacheDir:        ops.cacheDir,
		AnalyzerWorkers: workers,
		Metrics:         reg,
		Flight:          flight,
	})
	svcHandler := svc.Handler()
	srv := &obs.Server{
		Registry: reg,
		Trace:    recorder,
		Flight:   flight,
		Health: func() (bool, string) {
			if ok, detail := svc.Healthy(); !ok {
				return false, detail
			}
			if res.Diagnostics.Healthy() {
				return true, "ok"
			}
			return false, res.Diagnostics.String()
		},
		HealthDetail: func() map[string]any {
			d := svc.HealthInfo()
			d["build"] = build
			return d
		},
		Extra: map[string]http.Handler{
			"/analyze": svcHandler,
			"/result/": svcHandler,
		},
	}
	bound, err := srv.Start(ops.serveAddr)
	if err != nil {
		svc.Close()
		flight.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "sta: serving on http://%s (POST /analyze, GET /result/, /metrics /healthz /trace /debug/vars /debug/pprof/); ctrl-c to stop\n", bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = srv.Shutdown(ctx)
	if cerr := svc.Close(); err == nil {
		err = cerr
	}
	flight.Close()
	return err
}
