// Command figures regenerates the data series behind the paper's figures as
// gnuplot-friendly TSV:
//
//	figures -fig 5    # device I/V surface (Ids vs Vd for several Vs)
//	figures -fig 7    # discharge currents of the 6-NMOS stack
//	figures -fig 8    # I/V curve fit: samples vs linear+quadratic fit
//	figures -fig 9    # 6-NMOS stack waveforms: QWM vs SPICE
//	figures -fig 10   # decoder tree waveforms with AWE π wires
package main

import (
	"flag"
	"fmt"
	"os"

	"qwm/internal/bench"
	"qwm/internal/mos"
)

func main() {
	fig := flag.Int("fig", 9, "figure number: 5, 7, 8, 9 or 10")
	flag.Parse()

	h, err := bench.NewHarness(mos.CMOSP35())
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	var series []*bench.Series
	switch *fig {
	case 5:
		series, err = h.Fig5()
	case 7:
		series, err = h.Fig7()
	case 8:
		series, err = h.Fig8()
	case 9:
		series, err = h.Fig9()
	case 10:
		series, err = h.Fig10()
	default:
		err = fmt.Errorf("unknown figure %d", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	fmt.Printf("# paper figure %d\n", *fig)
	fmt.Print(bench.FormatSeries(series))
}
