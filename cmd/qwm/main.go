// Command qwm analyzes the worst-case charge/discharge path of a CMOS logic
// stage described by a SPICE-style deck, with a choice of engines:
//
//	qwm -deck nand2.sp -out out -rail 0 -engine qwm
//	qwm -deck nand2.sp -out out -engine spice -step 1p
//	qwm -deck nand2.sp -out out -engine sc
//	qwm -deck nand2.sp -out out -engine elmore
//
// Engines: qwm (piecewise quadratic waveform matching — the paper's
// method), spice (Newton–Raphson transient baseline), sc (successive-chord
// integration, TETA-class), elmore (switch-level Elmore metric).
package main

import (
	"flag"
	"fmt"
	"os"

	"qwm/internal/bench"
	"qwm/internal/mos"
	"qwm/internal/netlist"
	"qwm/internal/qwm"
	"qwm/internal/sc"
	"qwm/internal/stages"
	"qwm/internal/switchlevel"
	"qwm/internal/wave"
)

func main() {
	var (
		deckPath = flag.String("deck", "", "SPICE-style deck file (default: stdin)")
		out      = flag.String("out", "out", "output node to analyze")
		rail     = flag.String("rail", "0", "rail the path discharges to (0) or charges from (vdd)")
		engine   = flag.String("engine", "qwm", "engine: qwm | spice | sc | elmore")
		stepStr  = flag.String("step", "1p", "integration step for spice/sc")
		printW   = flag.Bool("waveform", false, "print the output waveform samples")
		points   = flag.Int("points", 101, "waveform sample count with -waveform")
		trace    = flag.Bool("trace", false, "print one structured line per QWM region to stderr")
	)
	flag.Parse()
	if err := run(*deckPath, *out, *rail, *engine, *stepStr, *printW, *points, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "qwm:", err)
		os.Exit(1)
	}
}

func run(deckPath, out, rail, engine, stepStr string, printW bool, points int, trace bool) error {
	in := os.Stdin
	if deckPath != "" {
		f, err := os.Open(deckPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	deck, err := netlist.Parse(in)
	if err != nil {
		return err
	}
	tech := mos.CMOSP35()
	w, err := stages.FromDeck(deck, out, rail, tech.VDD, 0)
	if err != nil {
		return err
	}
	step, err := netlist.ParseValue(stepStr)
	if err != nil {
		return fmt.Errorf("bad -step: %w", err)
	}

	h, err := bench.NewHarness(tech)
	if err != nil {
		return err
	}
	fmt.Printf("deck: %s\n", deck.Title)
	fmt.Printf("path: %s -> %s, K = %d transistors, %d elements\n",
		rail, out, w.Path.Transistors(), len(w.Path.Elems))

	var output wave.Waveform
	switch engine {
	case "qwm":
		opts := qwm.Options{}
		if trace {
			// The structured region events, rendered through the printf
			// adapter — the replacement for the deleted Options.Trace hook.
			opts.Events = qwm.PrintfSink{Printf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}}
		}
		r, err := h.RunQWM(w, opts)
		if err != nil {
			return err
		}
		fmt.Printf("engine: qwm (%d regions, %d Newton iterations)\n", r.Steps, r.NRIters)
		fmt.Printf("delay(50%%): %.4g s\n", r.Delay)
		if r.Slew > 0 {
			fmt.Printf("slew(10-90%%): %.4g s\n", r.Slew)
		}
		fmt.Printf("runtime: %v\n", r.Runtime)
		output = r.Output
	case "spice":
		r, err := h.RunSpice(w, step)
		if err != nil {
			return err
		}
		fmt.Printf("engine: spice (%d steps, %d Newton iterations)\n", r.Steps, r.NRIters)
		fmt.Printf("delay(50%%): %.4g s\n", r.Delay)
		if r.Slew > 0 {
			fmt.Printf("slew(10-90%%): %.4g s\n", r.Slew)
		}
		fmt.Printf("runtime: %v\n", r.Runtime)
		output = r.Output
	case "sc":
		ch, err := qwm.Build(qwm.BuildInput{
			Tech: tech, Lib: h.Lib, Stage: w.Stage, Path: w.Path,
			Inputs: w.Inputs, Loads: w.Loads, V0: w.IC,
		})
		if err != nil {
			return err
		}
		r, err := sc.Evaluate(ch, sc.Options{Step: step, TStop: w.TStop})
		if err != nil {
			return err
		}
		d, err := sc.Delay50(ch, r, w.SwitchAt)
		if err != nil {
			return err
		}
		fmt.Printf("engine: sc (%d steps, %d chord iterations, %d rebuilds)\n",
			r.Steps, r.Iterations, r.Rebuilds)
		fmt.Printf("delay(50%%): %.4g s\n", d)
		output = r.Output
	case "elmore":
		d, err := switchlevel.Delay(w, tech)
		if err != nil {
			return err
		}
		fmt.Println("engine: elmore (switch-level)")
		fmt.Printf("delay(50%%): %.4g s\n", d)
	default:
		return fmt.Errorf("unknown engine %q", engine)
	}

	if printW && output != nil {
		fmt.Println("# t(s)\tV(out)")
		for i := 0; i < points; i++ {
			t := w.TStop * float64(i) / float64(points-1)
			fmt.Printf("%.6g\t%.6g\n", t, output.Eval(t))
		}
	}
	return nil
}
