// Command stad is the timing-analysis daemon: the serving-only counterpart
// of cmd/sta -serve. It runs no one-shot analysis — it binds an address and
// serves the versioned v1 wire API (internal/api/v1) over the STA engine
// until SIGINT/SIGTERM:
//
//	POST /analyze      one AnalyzeRequest, or a BatchRequest ("requests"
//	                   key); sync by default, async batches return 202 + id
//	GET  /result/{id}  poll an async batch
//	GET  /metrics      Prometheus exposition (service, engine and disk-tier
//	                   counters)
//	GET  /healthz      200 while accepting work, 503 while the queue is
//	                   saturated (use it for load-balancer draining)
//	     /debug/vars, /debug/pprof/  expvar and pprof
//
// Analyzers are pooled by request signature (features + budget); with
// -cache-dir every pool entry is backed by a persistent content-addressed
// delay cache, so a restarted daemon answers bit-identically warm:
//
//	stad -addr :8080 -cache-dir /var/tmp/qwm -cache-bytes 268435456
//	curl -s localhost:8080/analyze -d '{"netlist":"...deck text...","outputs":["y0"]}'
//
// When the admission queue is full the daemon sheds load with 429 +
// Retry-After rather than queueing unbounded work; size -queue and -workers
// to the deployment.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/obs"
	"qwm/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheDir   = flag.String("cache-dir", "", "root directory for the persistent delay-cache tier (empty = memory only)")
		cacheBytes = flag.Int64("cache-bytes", 0, "per-signature disk-cache size cap in bytes (0 = 256 MiB default, negative = unlimited)")
		queueLen   = flag.Int("queue", 64, "admission-queue capacity in sub-requests; a full queue sheds with 429")
		workers    = flag.Int("workers", 2, "queue-draining workers (concurrent analyses)")
		analyzerW  = flag.Int("analyzer-workers", 0, "per-analysis stage-evaluation workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*addr, *cacheDir, *cacheBytes, *queueLen, *workers, *analyzerW); err != nil {
		fmt.Fprintln(os.Stderr, "stad:", err)
		os.Exit(1)
	}
}

func run(addr, cacheDir string, cacheBytes int64, queueLen, workers, analyzerWorkers int) error {
	reg := obs.NewRegistry()
	if !reg.Publish("stad") {
		fmt.Fprintln(os.Stderr, `stad: expvar name "stad" already taken; /debug/vars will not show this registry`)
	}
	tech := mos.CMOSP35()
	svc := service.New(tech, devmodel.NewLibrary(tech), service.Options{
		QueueLen:        queueLen,
		Workers:         workers,
		AnalyzerWorkers: analyzerWorkers,
		CacheDir:        cacheDir,
		CacheBytes:      cacheBytes,
		Metrics:         reg,
	})
	svcHandler := svc.Handler()
	srv := &obs.Server{
		Registry: reg,
		Health:   svc.Healthy,
		Extra: map[string]http.Handler{
			"/analyze": svcHandler,
			"/result/": svcHandler,
		},
	}
	bound, err := srv.Start(addr)
	if err != nil {
		svc.Close()
		return err
	}
	cache := "memory-only"
	if cacheDir != "" {
		cache = "disk tier at " + cacheDir
	}
	fmt.Fprintf(os.Stderr, "stad: serving on http://%s (POST /analyze, GET /result/, /metrics /healthz); %s; ctrl-c to stop\n", bound, cache)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	fmt.Fprintln(os.Stderr, "stad: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = srv.Shutdown(ctx)
	// Close after the listener stops: no new work can arrive, in-flight
	// analyses finish, the disk tier flushes.
	if cerr := svc.Close(); err == nil {
		err = cerr
	}
	return err
}
