// Command stad is the timing-analysis daemon: the serving-only counterpart
// of cmd/sta -serve. It runs no one-shot analysis — it binds an address and
// serves the versioned v1 wire API (internal/api/v1) over the STA engine
// until SIGINT/SIGTERM:
//
//	POST /analyze      one AnalyzeRequest, or a BatchRequest ("requests"
//	                   key); sync by default, async batches return 202 + id
//	GET  /result/{id}  poll an async batch
//	GET  /metrics      Prometheus exposition (service, engine and disk-tier
//	                   counters)
//	GET  /healthz      200 while accepting work, 503 while the queue is
//	                   saturated (use it for load-balancer draining)
//	     /debug/vars, /debug/pprof/  expvar and pprof
//
// Analyzers are pooled by request signature (features + budget); with
// -cache-dir every pool entry is backed by a persistent content-addressed
// delay cache, so a restarted daemon answers bit-identically warm:
//
//	stad -addr :8080 -cache-dir /var/tmp/qwm -cache-bytes 268435456
//	curl -s localhost:8080/analyze -d '{"netlist":"...deck text...","outputs":["y0"]}'
//
// When the admission queue is full the daemon sheds load with 429 +
// Retry-After rather than queueing unbounded work; size -queue and -workers
// to the deployment.
//
// A fleet of daemons can share one warm delay cache: -cache-listen ADDR
// additionally serves this replica's per-signature caches over the tier API
// (GET/PUT /tier/{signature}/{key}), and -remote-cache URL makes every
// pooled analyzer read through memory → remote → disk against a peer's
// endpoint. The remote client sits behind per-op deadlines, bounded retries
// and a circuit breaker: a dead or flaky peer degrades to cache misses, and
// /healthz reports (but never 503s on) an open breaker.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/obs"
	"qwm/internal/service"
	"qwm/internal/sta/remotecache"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheDir    = flag.String("cache-dir", "", "root directory for the persistent delay-cache tier (empty = memory only)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "per-signature disk-cache size cap in bytes (0 = 256 MiB default, negative = unlimited)")
		queueLen    = flag.Int("queue", 64, "admission-queue capacity in sub-requests; a full queue sheds with 429")
		workers     = flag.Int("workers", 2, "queue-draining workers (concurrent analyses)")
		analyzerW   = flag.Int("analyzer-workers", 0, "per-analysis stage-evaluation workers (0 = GOMAXPROCS)")
		cacheListen = flag.String("cache-listen", "", "additionally serve this replica's delay cache to the fleet on this address (GET/PUT /tier/)")
		remoteCache = flag.String("remote-cache", "", "base URL of a peer's -cache-listen endpoint to read through (memory → remote → disk)")
		replica     = flag.String("replica", "", "replica name stamped on cache-plane trace spans (defaults to the listen address)")
	)
	flag.Parse()
	if err := run(*addr, *cacheDir, *cacheBytes, *queueLen, *workers, *analyzerW, *cacheListen, *remoteCache, *replica); err != nil {
		fmt.Fprintln(os.Stderr, "stad:", err)
		os.Exit(1)
	}
}

func run(addr, cacheDir string, cacheBytes int64, queueLen, workers, analyzerWorkers int, cacheListen, remoteCache, replica string) error {
	reg := obs.NewRegistry()
	if !reg.Publish("stad") {
		fmt.Fprintln(os.Stderr, `stad: expvar name "stad" already taken; /debug/vars will not show this registry`)
	}
	build := obs.RegisterBuildInfo(reg)
	tech := mos.CMOSP35()
	flight := obs.NewFlightRecorder()
	svc := service.New(tech, devmodel.NewLibrary(tech), service.Options{
		QueueLen:        queueLen,
		Workers:         workers,
		AnalyzerWorkers: analyzerWorkers,
		CacheDir:        cacheDir,
		CacheBytes:      cacheBytes,
		RemoteCache:     remoteCache,
		Metrics:         reg,
		Flight:          flight,
	})
	svcHandler := svc.Handler()
	srv := &obs.Server{
		Registry: reg,
		Health:   svc.Healthy,
		Flight:   flight,
		HealthDetail: func() map[string]any {
			d := svc.HealthInfo()
			d["build"] = build
			return d
		},
		Extra: map[string]http.Handler{
			"/analyze": svcHandler,
			"/result/": svcHandler,
		},
	}
	bound, err := srv.Start(addr)
	if err != nil {
		svc.Close()
		flight.Close()
		return err
	}
	// The tier endpoint binds its own address so the fleet-internal cache
	// plane can be firewalled apart from the client-facing API.
	var cacheSrv *obs.Server
	if cacheListen != "" {
		tier := remotecache.NewServer(svc.TierStoreFor, reg)
		tier.Name = replica
		if tier.Name == "" {
			tier.Name = cacheListen
		}
		cacheSrv = &obs.Server{
			Registry: reg,
			Extra:    map[string]http.Handler{"/tier/": tier.Handler()},
		}
		cacheBound, err := cacheSrv.Start(cacheListen)
		if err != nil {
			srv.Shutdown(context.Background())
			svc.Close()
			return fmt.Errorf("cache-listen: %w", err)
		}
		fmt.Fprintf(os.Stderr, "stad: sharing delay cache on http://%s/tier/\n", cacheBound)
	}
	cache := "memory-only"
	if cacheDir != "" {
		cache = "disk tier at " + cacheDir
	}
	if remoteCache != "" {
		cache += "; remote tier at " + remoteCache
	}
	fmt.Fprintf(os.Stderr, "stad: serving on http://%s (POST /analyze, GET /result/, /metrics /healthz); %s; ctrl-c to stop\n", bound, cache)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	fmt.Fprintln(os.Stderr, "stad: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = srv.Shutdown(ctx)
	if cacheSrv != nil {
		if cerr := cacheSrv.Shutdown(ctx); err == nil {
			err = cerr
		}
	}
	// Close after the listeners stop: no new work can arrive, in-flight
	// analyses finish, the remote and disk tiers flush.
	if cerr := svc.Close(); err == nil {
		err = cerr
	}
	// Flight recorder last: every handler that could Record has returned.
	flight.Close()
	return err
}
