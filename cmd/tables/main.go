// Command tables regenerates the paper's evaluation tables:
//
//	tables -table 1    # Table I: QWM vs SPICE on logic gates
//	tables -table 2    # Table II: QWM vs SPICE on random stacks (K = 5..10)
//	tables -table all  # both
//
// Runtime columns are this machine's wall clock; the paper's claims are
// about the ratios, not the absolute numbers (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"qwm/internal/bench"
	"qwm/internal/mos"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1 | 2 | all")
	flag.Parse()

	h, err := bench.NewHarness(mos.CMOSP35())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	if *table == "1" || *table == "all" {
		rows, err := h.Table1()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatTable("Table I: QWM vs SPICE for logic gates", rows))
	}
	if *table == "2" || *table == "all" {
		rows, err := h.Table2()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatTable("Table II: QWM vs SPICE for randomly generated logic stages", rows))
	}
}
