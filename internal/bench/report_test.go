package bench

import (
	"math"
	"strings"
	"testing"
)

func TestTable1Rows(t *testing.T) {
	h := getHarness(t)
	rows, err := h.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (inv, nand2..4)", len(rows))
	}
	out := FormatTable("Table I", rows)
	for _, name := range []string{"inv", "nand2", "nand3", "nand4", "average"} {
		if !strings.Contains(out, name) {
			t.Errorf("formatted table missing %q:\n%s", name, out)
		}
	}
	// Delay grows with fan-in.
	if !(rows[0].RefDelayPs < rows[1].RefDelayPs && rows[1].RefDelayPs < rows[3].RefDelayPs) {
		t.Errorf("delays not growing with fan-in: %v %v %v",
			rows[0].RefDelayPs, rows[1].RefDelayPs, rows[3].RefDelayPs)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II sweep is slow")
	}
	h := getHarness(t)
	rows, err := h.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18 (K=5..10 × 3)", len(rows))
	}
	worst, sum := 0.0, 0.0
	for _, r := range rows {
		sum += r.ErrorPct
		if r.ErrorPct > worst {
			worst = r.ErrorPct
		}
	}
	if avg := sum / float64(len(rows)); avg > 2.0 {
		t.Errorf("Table II average error %.2f%%", avg)
	}
	if worst > 4.5 {
		t.Errorf("Table II worst error %.2f%%", worst)
	}
}

func TestFig5Surface(t *testing.T) {
	h := getHarness(t)
	series, err := h.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("series = %d", len(series))
	}
	// Current at Vd = VDD decreases as Vs rises (lower drive + body effect).
	last := func(s *Series) float64 { return s.Y[len(s.Y)-1] }
	for i := 1; i < len(series); i++ {
		if last(series[i]) >= last(series[i-1]) {
			t.Errorf("Ids should fall with Vs: series %d", i)
		}
	}
	if out := FormatSeries(series); !strings.Contains(out, "Ids(Vs=0.0)") {
		t.Error("series header missing")
	}
}

// Fig. 7's observation is the core of the method: each node current has a
// single dominant peak, and the peaks are ordered bottom-up.
func TestFig7SinglePeakObservation(t *testing.T) {
	h := getHarness(t)
	series, err := h.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("series = %d, want 6", len(series))
	}
	prevPeak := -1.0
	for k, s := range series[:5] { // the output node's current has no upper turn-on
		// Find the (most negative) discharge peak.
		minV, minT := 0.0, 0.0
		for i, y := range s.Y {
			if y < minV {
				minV, minT = y, s.X[i]
			}
		}
		if minV >= 0 {
			t.Fatalf("node %d never discharges", k+1)
		}
		if minT < prevPeak-2e-12 {
			t.Errorf("node %d peak at %g before node %d peak at %g", k+1, minT, k, prevPeak)
		}
		prevPeak = minT
	}
}

func TestFig8FitTracksSamples(t *testing.T) {
	h := getHarness(t)
	series, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	samples, fit := series[0], series[1]
	for i := range samples.Y {
		d := samples.Y[i] - fit.Y[i]
		if d < 0 {
			d = -d
		}
		if d > 0.04*samples.Y[len(samples.Y)-1] {
			t.Errorf("fit deviates at Vds=%.2f: %g vs %g", samples.X[i], fit.Y[i], samples.Y[i])
		}
	}
}

func TestFig9WaveformsTrack(t *testing.T) {
	h := getHarness(t)
	series, err := h.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 12 { // 6 nodes × (qwm, spice)
		t.Fatalf("series = %d", len(series))
	}
	// RMS deviation between each pair stays below ~5 % of VDD over the whole
	// window (which includes QWM's flat extrapolation below the last
	// matched level, where SPICE keeps discharging toward zero).
	for i := 0; i < len(series); i += 2 {
		q, s := series[i], series[i+1]
		var acc float64
		for p := range q.Y {
			d := q.Y[p] - s.Y[p]
			acc += d * d
		}
		rms := math.Sqrt(acc / float64(len(q.Y)))
		if rms > 0.05*h.Tech.VDD {
			t.Errorf("%s vs %s: rms = %g V", q.Name, s.Name, rms)
		}
	}
}

func TestFig10DecoderPairs(t *testing.T) {
	h := getHarness(t)
	series, err := h.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 10 {
		t.Fatalf("series = %d", len(series))
	}
	out := FormatSeries(series)
	if !strings.Contains(out, "qwm:out") || !strings.Contains(out, "spice:out") {
		t.Error("output node series missing")
	}
}
