package bench

import (
	"math"
	"sync"
	"testing"

	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/stages"
	"qwm/internal/wave"
)

var (
	harnessOnce sync.Once
	harness     *Harness
	harnessErr  error
)

func getHarness(t testing.TB) *Harness {
	harnessOnce.Do(func() {
		harness, harnessErr = NewHarness(mos.CMOSP35())
	})
	if harnessErr != nil {
		t.Fatal(harnessErr)
	}
	return harness
}

// Table I shape: QWM vs the baseline on minimum-size gates, error ≤ ~3 %
// (the paper reports ~1.1 % average on gates, 3.66 % worst on stacks).
func TestAccuracyGates(t *testing.T) {
	h := getHarness(t)
	gates := []*stages.Workload{}
	inv, err := stages.Inverter(h.Tech, 0.8e-6, 1.6e-6, 15e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	gates = append(gates, inv)
	for _, n := range []int{2, 3, 4} {
		g, err := stages.NAND(h.Tech, n, 0.8e-6, 1.6e-6, 15e-15, 0)
		if err != nil {
			t.Fatal(err)
		}
		gates = append(gates, g)
	}
	sum := 0.0
	for _, w := range gates {
		row, err := h.CompareRow(w, qwm.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		sum += row.ErrorPct
		if row.ErrorPct > 3.0 {
			t.Errorf("%s: delay error %.2f%% exceeds 3%%", w.Name, row.ErrorPct)
		}
		if row.Speedup1 < 10 {
			t.Errorf("%s: speed-up over 1 ps SPICE only %.1f×", w.Name, row.Speedup1)
		}
	}
	if avg := sum / float64(len(gates)); avg > 1.5 {
		t.Errorf("average gate error %.2f%%, want ≤ 1.5%%", avg)
	}
}

// Table II shape: random stacks of growing depth; error stays in the
// paper's band and the speed-up is large.
func TestAccuracyRandomStacks(t *testing.T) {
	h := getHarness(t)
	worst, sum, n := 0.0, 0.0, 0
	for _, k := range []int{5, 6, 8, 10} {
		w, err := stages.RandomStack(h.Tech, k, int64(k)*7+1)
		if err != nil {
			t.Fatal(err)
		}
		row, err := h.CompareRow(w, qwm.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		sum += row.ErrorPct
		n++
		if row.ErrorPct > worst {
			worst = row.ErrorPct
		}
	}
	if worst > 4.0 {
		t.Errorf("worst stack error %.2f%% exceeds the paper's 3.66%% band (+ margin)", worst)
	}
	if avg := sum / float64(n); avg > 2.0 {
		t.Errorf("average stack error %.2f%%", avg)
	}
}

func TestTableVsAnalyticAblation(t *testing.T) {
	h := getHarness(t)
	w, err := stages.RandomStack(h.Tech, 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := h.RunQWM(w, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := h.RunQWMAnalytic(w, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := wave.DelayErrorPct(tab.Delay, ana.Delay); e > 2.5 {
		t.Errorf("table vs analytic delay differ by %.2f%%", e)
	}
}

func TestSpiceStepSizesAgree(t *testing.T) {
	h := getHarness(t)
	w, err := stages.NAND(h.Tech, 3, 1e-6, 2e-6, 12e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h.RunSpice(w, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	r10, err := h.RunSpice(w, 10e-12)
	if err != nil {
		t.Fatal(err)
	}
	// 10 ps steps resolve a ~170 ps delay with only ~17 points; a few
	// percent of discretization error is expected (the paper's two Hspice
	// columns differ too).
	if e := wave.DelayErrorPct(r10.Delay, r1.Delay); e > 5 {
		t.Errorf("10 ps vs 1 ps delays differ by %.2f%%", e)
	}
	if r10.Runtime >= r1.Runtime {
		t.Error("10 ps run should be faster than 1 ps")
	}
}

func TestQWMFasterThanCoarseSpice(t *testing.T) {
	h := getHarness(t)
	w, err := stages.RandomStack(h.Tech, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := h.RunQWM(w, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := h.RunSpice(w, 10e-12)
	if err != nil {
		t.Fatal(err)
	}
	if q.Runtime >= s.Runtime {
		t.Errorf("QWM (%v) not faster than 10 ps SPICE (%v)", q.Runtime, s.Runtime)
	}
	if q.Steps >= s.Steps {
		t.Errorf("QWM regions (%d) should be far fewer than SPICE steps (%d)", q.Steps, s.Steps)
	}
}

// The speed-up should grow (roughly) with the simulated span per region —
// longer stacks take longer transients for SPICE but only more small
// regions for QWM.
func TestWorkScalingShape(t *testing.T) {
	h := getHarness(t)
	work := func(k int) (qwmNR, spiceNR int) {
		w, err := stages.Stack(h.Tech, widths(k, 1.5e-6), 10e-15, 0)
		if err != nil {
			t.Fatal(err)
		}
		q, err := h.RunQWM(w, qwm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := h.RunSpice(w, 10e-12)
		if err != nil {
			t.Fatal(err)
		}
		return q.NRIters, s.NRIters
	}
	q5, s5 := work(5)
	q10, s10 := work(10)
	if !(float64(s10)/float64(q10) > 0.5*float64(s5)/float64(q5)) {
		t.Errorf("work ratio collapsed: K=5 %d/%d, K=10 %d/%d", s5, q5, s10, q10)
	}
	if math.MaxInt == 0 {
		t.Fatal("unreachable")
	}
}

func widths(k int, w float64) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = w
	}
	return out
}

func TestSlewAgreement(t *testing.T) {
	h := getHarness(t)
	w, err := stages.NAND(h.Tech, 2, 1e-6, 2e-6, 15e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := h.RunQWM(w, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := h.RunSpice(w, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if q.Slew <= 0 || s.Slew <= 0 {
		t.Fatalf("slew unavailable: qwm %g spice %g", q.Slew, s.Slew)
	}
	if e := wave.DelayErrorPct(q.Slew, s.Slew); e > 12 {
		t.Errorf("slew error %.2f%% too large (qwm %g vs spice %g)", e, q.Slew, s.Slew)
	}
}

// Fig. 10 shape: the decoder tree with AWE π-modeled wires still evaluates
// accurately and much faster than the 1 ps baseline. The paper reports a
// lower accuracy here (96.44 %) than on plain stacks; we require ≤ 3.5 %
// error.
func TestDecoderTreeAccuracy(t *testing.T) {
	h := getHarness(t)
	for _, lv := range []int{3, 4} {
		w, err := stages.DecoderTree(h.Tech, lv, 2e-6, 50e-6, 20e-15, 0)
		if err != nil {
			t.Fatal(err)
		}
		row, err := h.CompareRow(w, qwm.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if row.ErrorPct > 3.5 {
			t.Errorf("%s: error %.2f%%", row.Name, row.ErrorPct)
		}
		if row.Speedup1 < 5 {
			t.Errorf("%s: speed-up %.1f×", row.Name, row.Speedup1)
		}
	}
}

// The full Manchester carry chain (Fig. 2) and the pass-gate stage (Fig. 1)
// evaluate accurately end to end: the off generate/precharge devices load
// the carry nodes but carry no current, exactly the stage abstraction the
// paper builds on.
func TestManchesterAndPassGateAccuracy(t *testing.T) {
	h := getHarness(t)
	man, err := stages.ManchesterChain(h.Tech, 5, 2e-6, 2e-6, 12e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	pass, err := stages.PassGateStage(h.Tech, 1e-6, 2e-6, 10e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []*stages.Workload{man, pass} {
		row, err := h.CompareRow(w, qwm.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if row.ErrorPct > 3 {
			t.Errorf("%s: delay error %.2f%%", w.Name, row.ErrorPct)
		}
		if row.Speedup1 < 10 {
			t.Errorf("%s: speedup %.1f", w.Name, row.Speedup1)
		}
	}
}

// The PMOS pull-up direction end to end: a NOR's rising output, evaluated
// in folded coordinates, tracks the SPICE baseline like the pull-down
// cases do.
func TestNORRisingAccuracy(t *testing.T) {
	h := getHarness(t)
	for _, nIn := range []int{2, 3} {
		w, err := stages.NOR(h.Tech, nIn, 1e-6, 2e-6, 15e-15, 0)
		if err != nil {
			t.Fatal(err)
		}
		row, err := h.CompareRow(w, qwm.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if row.ErrorPct > 3 {
			t.Errorf("%s: delay error %.2f%%", w.Name, row.ErrorPct)
		}
	}
}

// Ablation of the "art part" (§IV-A): waveform-model family × region
// scheme. Finding (recorded in EXPERIMENTS.md): on 50 % DELAY under the
// plain scheme both models stay inside the paper's accuracy band — the
// end-matched linear model behaves like backward Euler and is surprisingly
// competitive — but on WAVEFORM shape (RMS against the SPICE reference)
// the quadratic model is consistently better, which is what "waveform
// evaluation computes richer information than delay" (§III-C) needs.
func TestLinearVsQuadraticWaveformAblation(t *testing.T) {
	h := getHarness(t)
	quadBetterRMS := 0
	n := 0
	for _, k := range []int{3, 5, 7} {
		w, err := stages.RandomStack(h.Tech, k, int64(k)+500)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := h.RunSpice(w, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		rms := func(opts qwm.Options) (float64, float64) {
			run, err := h.RunQWM(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			_, tEnd := run.Output.Span()
			return wave.RMSDiff(run.Output, ref.Output, 0, tEnd, 400),
				wave.DelayErrorPct(run.Delay, ref.Delay)
		}
		rmsQuad, errQuad := rms(qwm.Options{NoSubdivision: true})
		rmsLin, errLin := rms(qwm.Options{NoSubdivision: true, LinearWaveform: true})
		n++
		if rmsQuad < rmsLin {
			quadBetterRMS++
		}
		t.Logf("K=%d plain: quad rms %.1f mV / err %.2f%%; lin rms %.1f mV / err %.2f%%",
			k, rmsQuad*1e3, errQuad, rmsLin*1e3, errLin)
		if errQuad > 8 || errLin > 8 {
			t.Errorf("K=%d: plain-scheme delay errors out of band: %.2f%% / %.2f%%", k, errQuad, errLin)
		}
		// With subdivision, both models stay tight on delay.
		if _, errRef := rms(qwm.Options{LinearWaveform: true}); errRef > 5 {
			t.Errorf("K=%d: refined linear model error %.2f%%", k, errRef)
		}
	}
	if quadBetterRMS < n {
		t.Errorf("quadratic waveform should track SPICE better in RMS on all workloads (%d/%d)",
			quadBetterRMS, n)
	}
}

// The decoder with its unselected forks attached (Fig. 3's real layout):
// SPICE sees the full branch RC + off device; QWM sees the branch reduced
// to a lumped load at the junction. The lumped STA treatment must stay
// accurate.
func TestDecoderWithBranchesAccuracy(t *testing.T) {
	h := getHarness(t)
	w, err := stages.DecoderTreeWithBranches(h.Tech, 3, 2e-6, 50e-6, 20e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	row, err := h.CompareRow(w, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.ErrorPct > 3.5 {
		t.Errorf("branched decoder error %.2f%%", row.ErrorPct)
	}
	// Branch loading must slow the path versus the bare tree.
	bare, err := stages.DecoderTree(h.Tech, 3, 2e-6, 50e-6, 20e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	rowBare, err := h.CompareRow(bare, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.RefDelayPs <= rowBare.RefDelayPs {
		t.Errorf("branches should slow the decoder: %g vs %g ps", row.RefDelayPs, rowBare.RefDelayPs)
	}
}
