// Package bench is the experiment harness that regenerates the paper's
// tables and figures: it runs each workload through QWM and the SPICE-class
// baseline under identical devices, stimulus, loads, and initial conditions,
// then reports delays, accuracies, runtimes and speed-ups in the layout of
// Tables I/II and the data series of Figs. 5 and 7–10.
package bench

import (
	"fmt"
	"time"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/spice"
	"qwm/internal/stages"
	"qwm/internal/wave"
)

// EngineRun is one engine's outcome on one workload.
type EngineRun struct {
	Delay   float64 // 50 % propagation delay (s)
	Slew    float64 // 10–90 % output transition time (s); 0 if unavailable
	Runtime time.Duration
	Output  wave.Crosser
	// Work metrics: time points × NR iterations for SPICE, regions × NR for
	// QWM.
	Steps, NRIters int
}

// Harness bundles the shared technology and characterized device library.
type Harness struct {
	Tech *mos.Tech
	Lib  *devmodel.Library
}

// NewHarness builds a harness and pre-characterizes both polarities at the
// minimum channel length so characterization time is excluded from runtime
// comparisons — the paper's fairness note in §V-B.
func NewHarness(tech *mos.Tech) (*Harness, error) {
	h := &Harness{Tech: tech, Lib: devmodel.NewLibrary(tech)}
	if _, err := h.Lib.Table(mos.NMOS, tech.LMin); err != nil {
		return nil, err
	}
	if _, err := h.Lib.Table(mos.PMOS, tech.LMin); err != nil {
		return nil, err
	}
	return h, nil
}

// RunQWM evaluates a workload with piecewise quadratic waveform matching.
func (h *Harness) RunQWM(w *stages.Workload, opts qwm.Options) (*EngineRun, error) {
	ch, err := qwm.Build(qwm.BuildInput{
		Tech: h.Tech, Lib: h.Lib,
		Stage: w.Stage, Path: w.Path,
		Inputs: w.Inputs, Loads: w.Loads, V0: w.IC,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := qwm.Evaluate(ch, opts)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	d, err := res.Delay50(w.SwitchAt, h.Tech.VDD)
	if err != nil {
		return nil, err
	}
	slew, _ := wave.Slew(foldedCrosser{res}, h.Tech.VDD, false)
	return &EngineRun{
		Delay: d, Slew: slew, Runtime: elapsed,
		Output: res.Output, Steps: res.Regions, NRIters: res.NRIterations,
	}, nil
}

// RunQWMAnalytic evaluates with the golden model directly (table ablation).
func (h *Harness) RunQWMAnalytic(w *stages.Workload, opts qwm.Options) (*EngineRun, error) {
	ch, err := qwm.Build(qwm.BuildInput{
		Tech: h.Tech, Lib: h.Lib,
		Stage: w.Stage, Path: w.Path,
		Inputs: w.Inputs, Loads: w.Loads, V0: w.IC,
		Analytic: true,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := qwm.Evaluate(ch, opts)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	d, err := res.Delay50(w.SwitchAt, h.Tech.VDD)
	if err != nil {
		return nil, err
	}
	return &EngineRun{Delay: d, Runtime: elapsed, Output: res.Output,
		Steps: res.Regions, NRIters: res.NRIterations}, nil
}

// foldedCrosser adapts a QWM result's folded output for falling-direction
// metrics regardless of chain polarity.
type foldedCrosser struct{ r *qwm.Result }

func (f foldedCrosser) Eval(t float64) float64 { return f.r.Folded[len(f.r.Folded)-1].Eval(t) }
func (f foldedCrosser) Span() (float64, float64) {
	return f.r.Folded[len(f.r.Folded)-1].Span()
}
func (f foldedCrosser) Crossing(level float64, rising bool) (float64, bool) {
	return f.r.Folded[len(f.r.Folded)-1].Crossing(level, rising)
}

// RunSpice runs the baseline transient at the given step size.
func (h *Harness) RunSpice(w *stages.Workload, step float64) (*EngineRun, error) {
	s, err := spice.New(w.Netlist, h.Tech, false)
	if err != nil {
		return nil, err
	}
	opts := spice.Options{
		TStop: w.TStop, Step: step, Method: spice.Trapezoidal,
		IC:          w.IC,
		RecordNodes: []string{w.Output},
	}
	start := time.Now()
	res, err := s.Transient(opts)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	out, err := res.Waveform(w.Output)
	if err != nil {
		return nil, err
	}
	d, err := wave.Delay50(out, w.SwitchAt, h.Tech.VDD, w.Rising)
	if err != nil {
		return nil, err
	}
	slew, _ := wave.Slew(out, h.Tech.VDD, w.Rising)
	return &EngineRun{
		Delay: d, Slew: slew, Runtime: elapsed,
		Output: out, Steps: res.Stats.Steps, NRIters: res.Stats.NRIterations,
	}, nil
}

// Row is one line of Table I/II: a workload compared across engines.
type Row struct {
	Name       string
	Spice1ps   *EngineRun
	Spice10ps  *EngineRun
	QWM        *EngineRun
	Speedup1   float64 // spice(1ps) / qwm runtime
	Speedup10  float64
	ErrorPct   float64 // delay error vs spice(1ps)
	RefDelayPs float64
	QWMDelayPs float64
}

// CompareRow runs a workload through QWM and SPICE at 1 ps and 10 ps.
func (h *Harness) CompareRow(w *stages.Workload, opts qwm.Options) (*Row, error) {
	s1, err := h.RunSpice(w, 1e-12)
	if err != nil {
		return nil, fmt.Errorf("%s: spice 1ps: %w", w.Name, err)
	}
	s10, err := h.RunSpice(w, 10e-12)
	if err != nil {
		return nil, fmt.Errorf("%s: spice 10ps: %w", w.Name, err)
	}
	q, err := h.RunQWM(w, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: qwm: %w", w.Name, err)
	}
	return &Row{
		Name:       w.Name,
		Spice1ps:   s1,
		Spice10ps:  s10,
		QWM:        q,
		Speedup1:   float64(s1.Runtime) / float64(q.Runtime),
		Speedup10:  float64(s10.Runtime) / float64(q.Runtime),
		ErrorPct:   wave.DelayErrorPct(q.Delay, s1.Delay),
		RefDelayPs: s1.Delay * 1e12,
		QWMDelayPs: q.Delay * 1e12,
	}, nil
}
