package bench

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/sc"
	"qwm/internal/spice"
	"qwm/internal/stages"
	"qwm/internal/wave"
)

// randomChain draws a random but well-posed discharge chain: 2–7 NMOS
// devices with random widths, optional wire, random fixed node caps and a
// random output load.
func randomChain(t testing.TB, r *rand.Rand) *qwm.Chain {
	h := getHarness(t)
	tbl, err := h.Lib.Table(mos.NMOS, h.Tech.LMin)
	if err != nil {
		t.Fatal(err)
	}
	k := 2 + r.Intn(6)
	ch := &qwm.Chain{Pol: mos.NMOS, VDD: h.Tech.VDD}
	for i := 0; i < k; i++ {
		var g wave.Waveform = wave.DC(h.Tech.VDD)
		if i == 0 {
			g = wave.Step{At: 0, Low: 0, High: h.Tech.VDD}
		}
		ch.Elems = append(ch.Elems, &qwm.Elem{
			Model: tbl,
			W:     (0.8 + 3*r.Float64()) * 1e-6,
			Gate:  g,
		})
		ch.Caps = append(ch.Caps, qwm.NodeCap{Fixed: (2 + 6*r.Float64()) * 1e-15})
		ch.V0 = append(ch.V0, h.Tech.VDD)
	}
	// Occasionally splice in a wire above the first device.
	if r.Intn(3) == 0 {
		wireElem := &qwm.Elem{R: 200 + 3e3*r.Float64()}
		ch.Elems = append(ch.Elems[:1], append([]*qwm.Elem{wireElem}, ch.Elems[1:]...)...)
		ch.Caps = append(ch.Caps[:1], append([]qwm.NodeCap{{Fixed: (1 + 3*r.Float64()) * 1e-15}}, ch.Caps[1:]...)...)
		ch.V0 = append(ch.V0, h.Tech.VDD)
	}
	// Heavier output load.
	ch.Caps[len(ch.Caps)-1].Fixed += 15e-15 * r.Float64()
	return ch
}

// Property: on random chains, QWM's 50 % delay agrees with an independent
// fine-step integration (successive chords) of the same chain within 4 %.
func TestQWMvsSCRandomChainsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ch := randomChain(t, r)
		qres, err := qwm.Evaluate(ch, qwm.Options{})
		if err != nil {
			t.Logf("seed %d: qwm: %v", seed, err)
			return false
		}
		dq, err := qres.Delay50(0, ch.VDD)
		if err != nil {
			return false
		}
		tstop := 20 * dq
		sres, err := sc.Evaluate(ch, sc.Options{Step: math.Max(dq/400, 0.1e-12), TStop: tstop})
		if err != nil {
			t.Logf("seed %d: sc: %v", seed, err)
			return false
		}
		ds, err := sc.Delay50(ch, sres, 0)
		if err != nil {
			return false
		}
		if e := math.Abs(dq-ds) / ds; e > 0.04 {
			t.Logf("seed %d: qwm %g vs sc %g (%.2f%%)", seed, dq, ds, 100*e)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Ramp inputs: QWM's bisection-based event location handles a finite input
// slew; the reference is the same chain integrated by SC, which shares the
// chain abstraction (so pull-up contention and Miller injection — absent
// from the chain model by the paper's assumptions — cancel out of the
// comparison).
func TestQWMRampInputVsSC(t *testing.T) {
	h := getHarness(t)
	tbl, err := h.Lib.Table(mos.NMOS, h.Tech.LMin)
	if err != nil {
		t.Fatal(err)
	}
	for _, slew := range []float64{20e-12, 60e-12, 120e-12} {
		ramp := wave.Ramp{T0: 0, T1: slew, Low: 0, High: h.Tech.VDD}
		ch := &qwm.Chain{
			Pol: mos.NMOS, VDD: h.Tech.VDD,
			Elems: []*qwm.Elem{
				{Model: tbl, W: 1.2e-6, Gate: ramp},
				{Model: tbl, W: 1.2e-6, Gate: wave.DC(h.Tech.VDD)},
				{Model: tbl, W: 1.2e-6, Gate: wave.DC(h.Tech.VDD)},
			},
			Caps: []qwm.NodeCap{{Fixed: 4e-15}, {Fixed: 4e-15}, {Fixed: 15e-15}},
			V0:   []float64{h.Tech.VDD, h.Tech.VDD, h.Tech.VDD},
		}
		qres, err := qwm.Evaluate(ch, qwm.Options{})
		if err != nil {
			t.Fatalf("slew %g: %v", slew, err)
		}
		dq, err := qres.Delay50(slew/2, h.Tech.VDD)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := sc.Evaluate(ch, sc.Options{Step: 0.5e-12, TStop: 3e-9})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := sc.Delay50(ch, sres, slew/2)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(dq-ds) / ds; e > 0.05 {
			t.Errorf("slew %gps: qwm %g vs sc %g (%.2f%%)", slew*1e12, dq, ds, 100*e)
		}
	}
}

// Natural precharge: instead of the idealized all-VDD initial condition,
// the internal stack nodes start at the DC operating point (≈ VDD − Vth,
// the source-follower limit) — so several upper transistors are already at
// their conduction edge at t = 0 and the QWM front must advance past them
// immediately. Both engines get the same DC-op initial condition.
func TestNaturalPrechargeInitialCondition(t *testing.T) {
	h := getHarness(t)
	w, err := stages.NAND(h.Tech, 3, 1e-6, 2e-6, 15e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the idealized IC with the true DC operating point at t = 0
	// with the switching input held low: the PMOS holds the output at VDD
	// and the internal nodes settle where the NMOS above stops conducting.
	wLow, err := stages.NAND(h.Tech, 3, 1e-6, 2e-6, 15e-15, 1e-3 /* step far in the future */)
	if err != nil {
		t.Fatal(err)
	}
	simLow, err := spice.New(wLow.Netlist, h.Tech, false)
	if err != nil {
		t.Fatal(err)
	}
	op, err := simLow.DCOp(0)
	if err != nil {
		t.Fatal(err)
	}
	ic := map[string]float64{}
	for _, nd := range w.Path.InternalNodes() {
		ic[nd] = op[nd]
	}
	if ic["x1"] > h.Tech.VDD-0.3 {
		t.Fatalf("DC op did not show the source-follower drop: %v", ic)
	}
	w.IC = ic

	row, err := h.CompareRow(w, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.ErrorPct > 3 {
		t.Errorf("natural precharge: delay error %.2f%%", row.ErrorPct)
	}
}

// A second technology node: the whole pipeline — characterization, chain
// building, QWM, the SPICE baseline — holds its accuracy at 0.18 µm/1.8 V,
// where velocity saturation is stronger and headroom smaller.
func TestSecondTechnologyNode(t *testing.T) {
	tech18 := mos.CMOSP18()
	h18, err := NewHarness(tech18)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() (*stages.Workload, error){
		func() (*stages.Workload, error) { return stages.NAND(tech18, 3, 0.6e-6, 1.2e-6, 8e-15, 0) },
		func() (*stages.Workload, error) { return stages.RandomStack(tech18, 6, 11) },
		func() (*stages.Workload, error) { return stages.NOR(tech18, 2, 0.6e-6, 1.2e-6, 8e-15, 0) },
	} {
		w, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		row, err := h18.CompareRow(w, qwm.Options{})
		if err != nil {
			t.Fatalf("%s@0.18u: %v", w.Name, err)
		}
		if row.ErrorPct > 3 {
			t.Errorf("%s@0.18u: delay error %.2f%%", w.Name, row.ErrorPct)
		}
	}
}

// Mixed channel lengths on one path: the library characterizes one table
// per length and the engine consumes them side by side.
func TestMixedChannelLengths(t *testing.T) {
	h := getHarness(t)
	w, err := stages.Stack(h.Tech, []float64{1.5e-6, 1.5e-6, 1.5e-6}, 10e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Lengthen the middle device.
	w.Netlist.Transistors[1].L = 0.5e-6
	w.Stage.Edges[1].L = 0.5e-6
	row, err := h.CompareRow(w, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.ErrorPct > 3 {
		t.Errorf("mixed-L stack: delay error %.2f%%", row.ErrorPct)
	}
	// The longer channel must slow the stack versus the uniform one.
	base, err := stages.Stack(h.Tech, []float64{1.5e-6, 1.5e-6, 1.5e-6}, 10e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	rowBase, err := h.CompareRow(base, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.QWMDelayPs <= rowBase.QWMDelayPs {
		t.Errorf("longer channel should slow the path: %g vs %g", row.QWMDelayPs, rowBase.QWMDelayPs)
	}
}

// Robustness: even with the joint Newton crippled to a single iteration,
// the bisection fallback delivers the same answer (slower).
func TestBisectionFallbackAccuracy(t *testing.T) {
	h := getHarness(t)
	w, err := stages.RandomStack(h.Tech, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	normal, err := h.RunQWM(w, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	crippled, err := h.RunQWM(w, qwm.Options{MaxNR: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e := wave.DelayErrorPct(crippled.Delay, normal.Delay); e > 1 {
		t.Errorf("fallback path delay differs by %.2f%%", e)
	}
	if crippled.NRIters <= normal.NRIters {
		t.Errorf("crippled Newton should burn more iterations: %d vs %d",
			crippled.NRIters, normal.NRIters)
	}
}
