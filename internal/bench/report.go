package bench

import (
	"fmt"
	"sort"
	"strings"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/spice"
	"qwm/internal/stages"
	"qwm/internal/wave"
)

// Table1 regenerates the paper's Table I: QWM vs the SPICE baseline on
// minimum-size logic gates (inv, nand2, nand3, nand4) at 1 ps and 10 ps
// steps.
func (h *Harness) Table1() ([]*Row, error) {
	var rows []*Row
	inv, err := stages.Inverter(h.Tech, 0.8e-6, 1.6e-6, 15e-15, 0)
	if err != nil {
		return nil, err
	}
	ws := []*stages.Workload{inv}
	for _, n := range []int{2, 3, 4} {
		g, err := stages.NAND(h.Tech, n, 0.8e-6, 1.6e-6, 15e-15, 0)
		if err != nil {
			return nil, err
		}
		ws = append(ws, g)
	}
	for _, w := range ws {
		row, err := h.CompareRow(w, qwm.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2 regenerates the paper's Table II: randomly sized NMOS stacks of
// length 5–10, three width configurations each.
func (h *Harness) Table2() ([]*Row, error) {
	var rows []*Row
	for k := 5; k <= 10; k++ {
		for cfg := 0; cfg < 3; cfg++ {
			w, err := stages.RandomStack(h.Tech, k, int64(k*10+cfg))
			if err != nil {
				return nil, err
			}
			w.Name = fmt.Sprintf("%d/ckt%d", k, cfg+1)
			row, err := h.CompareRow(w, qwm.Options{})
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable renders rows in the layout of the paper's tables.
func FormatTable(title string, rows []*Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %12s %9s %12s %9s %12s %9s %8s\n",
		"circuit", "spice1ps", "speedup", "spice10ps", "speedup", "qwm", "delay(ps)", "err%")
	var sum1, sum10, sumErr float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12v %8.1fx %12v %8.1fx %12v %9.2f %7.2f%%\n",
			r.Name, r.Spice1ps.Runtime, r.Speedup1, r.Spice10ps.Runtime, r.Speedup10,
			r.QWM.Runtime, r.QWMDelayPs, r.ErrorPct)
		sum1 += r.Speedup1
		sum10 += r.Speedup10
		sumErr += r.ErrorPct
	}
	n := float64(len(rows))
	fmt.Fprintf(&b, "%-10s %12s %8.1fx %12s %8.1fx %12s %9s %7.2f%%\n",
		"average", "", sum1/n, "", sum10/n, "", "", sumErr/n)
	return b.String()
}

// Series is a named data series for figure regeneration.
type Series struct {
	Name string
	X, Y []float64
}

// FormatSeries renders series as aligned TSV columns (x, then one column
// per series), suitable for gnuplot.
func FormatSeries(series []*Series) string {
	if len(series) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("# x")
	for _, s := range series {
		fmt.Fprintf(&b, "\t%s", s.Name)
	}
	b.WriteByte('\n')
	// Series share X in our generators; verify and emit row-wise.
	n := len(series[0].X)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%.6g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "\t%.6g", s.Y[i])
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig5 regenerates the device-model surface of paper Fig. 5: NMOS drain
// current versus source and drain voltage at full gate drive.
func (h *Harness) Fig5() ([]*Series, error) {
	tbl, err := h.Lib.Table(mos.NMOS, h.Tech.LMin)
	if err != nil {
		return nil, err
	}
	var series []*Series
	for _, vs := range []float64{0, 0.5, 1.0, 1.5, 2.0} {
		s := &Series{Name: fmt.Sprintf("Ids(Vs=%.1f)", vs)}
		for vd := 0.0; vd <= h.Tech.VDD+1e-9; vd += 0.05 {
			i, _, _, _ := tbl.IV(1e-6, h.Tech.VDD, vd, vs)
			s.X = append(s.X, vd)
			s.Y = append(s.Y, i)
		}
		series = append(series, s)
	}
	return series, nil
}

// Fig7 regenerates the discharge-current plot of paper Fig. 7: the current
// of every node of a 6-NMOS stack over time, showing the single peak at
// each critical point. Currents are reconstructed from the SPICE node
// trajectories through the golden device model.
func (h *Harness) Fig7() ([]*Series, error) {
	w, err := stages.CarryChainStack(h.Tech)
	if err != nil {
		return nil, err
	}
	s, err := spice.New(w.Netlist, h.Tech, false)
	if err != nil {
		return nil, err
	}
	res, err := s.Transient(spice.Options{TStop: 600e-12, Step: 1e-12, IC: w.IC})
	if err != nil {
		return nil, err
	}
	nodes := w.Path.InternalNodes()
	waves := make([]*wave.PWL, len(nodes))
	for i, nd := range nodes {
		waves[i], err = res.Waveform(nd)
		if err != nil {
			return nil, err
		}
	}
	elems := w.Path.Elems
	var series []*Series
	for k := range nodes {
		series = append(series, &Series{Name: "I(" + nodes[k] + ")"})
	}
	vAt := func(k int, t float64) float64 { // node index 0..K, 0 = rail
		if k == 0 {
			return 0
		}
		return waves[k-1].Eval(t)
	}
	for ti := 0; ti < len(res.T); ti += 2 {
		t := res.T[ti]
		for k := 1; k <= len(nodes); k++ {
			below := h.Tech.N.Ids(elems[k-1].Edge.W, elems[k-1].Edge.L, h.Tech.VDD, vAt(k, t), vAt(k-1, t), 0).I
			if k == 1 && t < w.SwitchAt {
				below = 0
			}
			var above float64
			if k < len(nodes) {
				above = h.Tech.N.Ids(elems[k].Edge.W, elems[k].Edge.L, h.Tech.VDD, vAt(k+1, t), vAt(k, t), 0).I
			}
			series[k-1].X = append(series[k-1].X, t)
			series[k-1].Y = append(series[k-1].Y, above-below)
		}
	}
	return series, nil
}

// Fig8 regenerates the I/V curve-fitting plot of paper Fig. 8: sampled
// currents versus the linear (saturation) and quadratic (triode) fits at a
// representative (Vg, Vs) grid point.
func (h *Harness) Fig8() ([]*Series, error) {
	tbl, err := h.Lib.Table(mos.NMOS, h.Tech.LMin)
	if err != nil {
		return nil, err
	}
	ana := devmodel.NewAnalytic(&h.Tech.N, h.Tech, h.Tech.LMin)
	sample := &Series{Name: "samples"}
	fit := &Series{Name: "fit"}
	const vg, vs = 3.3, 0.0
	for vds := 0.0; vds <= h.Tech.VDD+1e-9; vds += 0.05 {
		ia, _, _, _ := ana.IV(1e-6, vg, vs+vds, vs)
		it, _, _, _ := tbl.IV(1e-6, vg, vs+vds, vs)
		sample.X = append(sample.X, vds)
		sample.Y = append(sample.Y, ia)
		fit.X = append(fit.X, vds)
		fit.Y = append(fit.Y, it)
	}
	return []*Series{sample, fit}, nil
}

// Fig9 regenerates paper Fig. 9: the 6-NMOS stack (Manchester carry chain
// worst path) node waveforms — QWM's critical-point polyline against the
// SPICE reference.
func (h *Harness) Fig9() ([]*Series, error) {
	w, err := stages.CarryChainStack(h.Tech)
	if err != nil {
		return nil, err
	}
	return h.waveformPairs(w, 600e-12)
}

// Fig10 regenerates paper Fig. 10: the decoder-tree node waveforms with
// AWE π-modeled wires; the closely spaced pairs are the two ends of each
// wire segment.
func (h *Harness) Fig10() ([]*Series, error) {
	w, err := stages.DecoderTree(h.Tech, 3, 2e-6, 50e-6, 20e-15, 0)
	if err != nil {
		return nil, err
	}
	return h.waveformPairs(w, 800e-12)
}

// waveformPairs samples QWM and SPICE node waveforms on a common grid.
func (h *Harness) waveformPairs(w *stages.Workload, tstop float64) ([]*Series, error) {
	ch, err := qwm.Build(qwm.BuildInput{
		Tech: h.Tech, Lib: h.Lib, Stage: w.Stage, Path: w.Path,
		Inputs: w.Inputs, Loads: w.Loads, V0: w.IC,
	})
	if err != nil {
		return nil, err
	}
	qres, err := qwm.Evaluate(ch, qwm.Options{})
	if err != nil {
		return nil, err
	}
	s, err := spice.New(w.Netlist, h.Tech, false)
	if err != nil {
		return nil, err
	}
	sres, err := s.Transient(spice.Options{TStop: tstop, Step: 1e-12, IC: w.IC})
	if err != nil {
		return nil, err
	}
	nodes := w.Path.InternalNodes()
	var series []*Series
	const nPts = 241
	for i, nd := range nodes {
		qs := &Series{Name: "qwm:" + nd}
		ss := &Series{Name: "spice:" + nd}
		sw, err := sres.Waveform(nd)
		if err != nil {
			return nil, err
		}
		for p := 0; p < nPts; p++ {
			t := tstop * float64(p) / float64(nPts-1)
			qs.X = append(qs.X, t)
			qs.Y = append(qs.Y, qres.Nodes[i].Eval(t))
			ss.X = append(ss.X, t)
			ss.Y = append(ss.Y, sw.Eval(t))
		}
		series = append(series, qs, ss)
	}
	return series, nil
}

// SortRows orders rows by name for deterministic output.
func SortRows(rows []*Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
}
