package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucket rule: bucket i counts
// bounds[i-1] < v <= bounds[i] ("less-or-equal" upper bounds), with a final
// overflow bucket for v > bounds[last]. Exact-boundary values land in the
// bucket they bound.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 5, 10}
	cases := []struct {
		v    float64
		want int // bucket index
	}{
		{-3, 0}, // below every bound: first bucket
		{0, 0},
		{1, 0}, // exactly on a bound: that bucket
		{1.0001, 1},
		{2, 1},
		{2.5, 2},
		{5, 2},
		{5.1, 3},
		{10, 3},
		{10.0001, 4}, // overflow
		{1e9, 4},
	}
	for _, c := range cases {
		h := NewHistogram(bounds)
		h.Observe(c.v)
		s := h.snapshot()
		for i, n := range s.Counts {
			want := int64(0)
			if i == c.want {
				want = 1
			}
			if n != want {
				t.Errorf("Observe(%g): bucket %d = %d, want %d (expected bucket %d)", c.v, i, n, want, c.want)
			}
		}
		if s.Count != 1 || s.Sum != c.v {
			t.Errorf("Observe(%g): count %d sum %g", c.v, s.Count, s.Sum)
		}
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}, {1, 3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestSnapshotMerge is table-driven over the merge cases: disjoint names,
// shared counters, shared histograms (bucket-wise sums) and a histogram
// shape mismatch (reported, not silently merged).
func TestSnapshotMerge(t *testing.T) {
	mkHist := func(bounds []float64, vals ...float64) HistSnapshot {
		h := NewHistogram(bounds)
		for _, v := range vals {
			h.Observe(v)
		}
		return h.snapshot()
	}
	cases := []struct {
		name        string
		a, b        Snapshot
		wantCounter map[string]int64
		wantHist    map[string][]int64 // expected bucket counts
		wantErr     bool
	}{
		{
			name:        "disjoint counters",
			a:           Snapshot{Counters: map[string]int64{"x": 1}, Histograms: map[string]HistSnapshot{}},
			b:           Snapshot{Counters: map[string]int64{"y": 2}, Histograms: map[string]HistSnapshot{}},
			wantCounter: map[string]int64{"x": 1, "y": 2},
		},
		{
			name:        "shared counters add",
			a:           Snapshot{Counters: map[string]int64{"x": 3}, Histograms: map[string]HistSnapshot{}},
			b:           Snapshot{Counters: map[string]int64{"x": 4}, Histograms: map[string]HistSnapshot{}},
			wantCounter: map[string]int64{"x": 7},
		},
		{
			name: "histograms add bucket-wise",
			a: Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{
				"h": mkHist([]float64{1, 2}, 0.5, 1.5),
			}},
			b: Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{
				"h": mkHist([]float64{1, 2}, 1.5, 99),
			}},
			wantHist: map[string][]int64{"h": {1, 2, 1}},
		},
		{
			name: "histogram only in other is copied",
			a:    Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{}},
			b: Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{
				"h": mkHist([]float64{1}, 0.5),
			}},
			wantHist: map[string][]int64{"h": {1, 0}},
		},
		{
			name: "bounds mismatch errors",
			a: Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{
				"h": mkHist([]float64{1, 2}, 0.5),
			}},
			b: Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{
				"h": mkHist([]float64{1, 3}, 0.5),
			}},
			wantHist: map[string][]int64{"h": {1, 0, 0}}, // untouched
			wantErr:  true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.a.Merge(c.b)
			if (err != nil) != c.wantErr {
				t.Fatalf("Merge error = %v, wantErr %v", err, c.wantErr)
			}
			for name, want := range c.wantCounter {
				if got := c.a.Counters[name]; got != want {
					t.Errorf("counter %q = %d, want %d", name, got, want)
				}
			}
			for name, want := range c.wantHist {
				got := c.a.Histograms[name]
				if len(got.Counts) != len(want) {
					t.Fatalf("hist %q counts %v, want %v", name, got.Counts, want)
				}
				for i := range want {
					if got.Counts[i] != want[i] {
						t.Errorf("hist %q bucket %d = %d, want %d", name, i, got.Counts[i], want[i])
					}
				}
			}
		})
	}
}

// TestMergeCopyDoesNotAlias: a histogram copied wholesale into the target
// must not share slices with the source — later merges into the target must
// leave the source untouched.
func TestMergeCopyDoesNotAlias(t *testing.T) {
	src := Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{}}
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	src.Histograms["h"] = h.snapshot()

	dst := Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{}}
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if got := src.Histograms["h"].Counts[0]; got != 1 {
		t.Errorf("source histogram mutated by merge: bucket 0 = %d, want 1", got)
	}
	if got := dst.Histograms["h"].Counts[0]; got != 2 {
		t.Errorf("dst bucket 0 = %d, want 2", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a/b")
	c1.Add(2)
	if c2 := r.Counter("a/b"); c2 != c1 {
		t.Error("Counter did not return the same instrument for the same name")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	if h2 := r.Histogram("h", []float64{1, 2}); h2 != h1 {
		t.Error("Histogram did not return the same instrument for the same name")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering a histogram with different bounds did not panic")
			}
		}()
		r.Histogram("h", []float64{1, 3})
	}()
	// A nil registry hands out no-op instruments.
	var nr *Registry
	nr.Counter("x").Inc()
	nr.Histogram("y", []float64{1}).Observe(1)
	if got := nr.Snapshot(); len(got.Counters) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", got)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter(fmt.Sprintf("c%d", i%7)).Inc()
				r.Histogram("shared", []float64{10, 100}).Observe(float64(i))
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	var total int64
	for i := 0; i < 7; i++ {
		total += s.Counters[fmt.Sprintf("c%d", i)]
	}
	if total != 8000 {
		t.Errorf("counter total %d, want 8000", total)
	}
	if s.Histograms["shared"].Count != 8000 {
		t.Errorf("histogram count %d, want 8000", s.Histograms["shared"].Count)
	}
}

// TestSnapshotJSONDeterministic: equal snapshots marshal to byte-identical
// JSON (encoding/json sorts map keys) — the property the engine's
// serial-vs-parallel metrics check relies on — and the output is valid JSON.
func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("z/last").Add(3)
		r.Counter("a/first").Add(1)
		r.Histogram("m/h", []float64{1, 2}).Observe(1.5)
		return r.Snapshot()
	}
	j1, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("equal snapshots marshaled differently:\n%s\nvs\n%s", j1, j2)
	}
	var parsed map[string]any
	if err := json.Unmarshal(j1, &parsed); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
}

func TestDeterministicStripsTimingMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sta/cache_hits").Add(5)
	r.Histogram("sta/time/eval_seconds", []float64{1e-3}).Observe(1e-4)
	r.Histogram("sta/nr_iters_per_eval", []float64{8}).Observe(3)
	d := r.Snapshot().Deterministic()
	if _, ok := d.Histograms["sta/time/eval_seconds"]; ok {
		t.Error("Deterministic kept a time/ histogram")
	}
	if _, ok := d.Histograms["sta/nr_iters_per_eval"]; !ok {
		t.Error("Deterministic dropped a non-timing histogram")
	}
	if d.Counters["sta/cache_hits"] != 5 {
		t.Error("Deterministic dropped a counter")
	}
	if !IsTiming("sta/time/level_seconds") || IsTiming("sta/cache_hits") {
		t.Error("IsTiming convention broken")
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("published").Add(9)
	if !r.Publish("obs_test_registry") {
		t.Fatal("first Publish returned false")
	}
	// Duplicate names must be reported, not silently swallowed (expvar has
	// no unpublish, so the caller needs to know its registry is invisible).
	if r.Publish("obs_test_registry") {
		t.Fatal("duplicate Publish returned true")
	}
	other := NewRegistry()
	other.Counter("shadowed").Add(1)
	if other.Publish("obs_test_registry") {
		t.Fatal("Publish over another registry's name returned true")
	}
	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("registry not published on expvar")
	}
	var parsed Snapshot
	if err := json.Unmarshal([]byte(v.String()), &parsed); err != nil {
		t.Fatalf("expvar value is not a JSON snapshot: %v", err)
	}
	if parsed.Counters["published"] != 9 {
		t.Errorf("expvar snapshot counter = %d, want 9", parsed.Counters["published"])
	}
	if _, ok := parsed.Counters["shadowed"]; ok {
		t.Error("rejected Publish replaced the original registry's expvar")
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	// 100 observations of v=i+0.5 for i in [0,100): uniform over (0, 100].
	h := NewHistogram([]float64{10, 20, 50, 100})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	s := h.snapshot()
	cases := []struct{ q, want float64 }{
		{0.10, 10}, // rank 10 is exactly the first bucket's full count
		{0.05, 5},  // half-way through (0,10]
		{0.50, 50}, // rank 50 fills the (20,50] bucket exactly
		{0.95, 95}, // 45/50 through (50,100]
		{1.00, 100},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}

	// Skewed distribution: 90 small, 10 large.
	h2 := NewHistogram([]float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(50)
	}
	s2 := h2.snapshot()
	if got := s2.Quantile(0.5); math.Abs(got-0.5556) > 1e-3 {
		t.Errorf("skewed p50 = %g, want ~0.556 (rank 50 of 90 in (0,1])", got)
	}
	if got := s2.Quantile(0.99); !(got > 10 && got <= 100) {
		t.Errorf("skewed p99 = %g, want inside (10,100]", got)
	}

	// Overflow bucket: every observation above the last bound clamps to it.
	h3 := NewHistogram([]float64{1, 2})
	h3.Observe(1000)
	if got := h3.snapshot().Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %g, want last bound 2", got)
	}

	// Empty histogram and clamping.
	if got := (HistSnapshot{}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile = %g, want NaN", got)
	}
	if got := s.Quantile(-1); math.Abs(got-s.Quantile(0)) > 1e-12 {
		t.Errorf("q<0 not clamped: %g", got)
	}
	if got := s.Quantile(2); math.Abs(got-s.Quantile(1)) > 1e-12 {
		t.Errorf("q>1 not clamped: %g", got)
	}
}
