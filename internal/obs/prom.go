package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): every counter becomes a `counter` family and every
// fixed-bucket histogram becomes a `histogram` family with cumulative
// `_bucket` series ending in `le="+Inf"`, plus `_sum` and `_count`. Metric
// names are sanitized with PromName (the registry's slash-separated paths
// become underscore-joined Prometheus names), and families are emitted in
// sorted name order so two equal snapshots expose byte-identical pages.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type family struct {
		name string // sanitized
		emit func(io.Writer) error
	}
	fams := make([]family, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))

	for name, v := range s.Counters {
		name, v := name, v
		pn := PromName(name)
		fams = append(fams, family{name: pn, emit: func(w io.Writer) error {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				pn, helpText(name), pn, pn, v); err != nil {
				return err
			}
			return nil
		}})
	}
	for name, v := range s.Gauges {
		name, v := name, v
		pn := PromName(name)
		fams = append(fams, family{name: pn, emit: func(w io.Writer) error {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				pn, helpText(name), pn, pn, v); err != nil {
				return err
			}
			return nil
		}})
	}
	for name, h := range s.Histograms {
		name, h := name, h
		pn := PromName(name)
		fams = append(fams, family{name: pn, emit: func(w io.Writer) error {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
				pn, helpText(name), pn); err != nil {
				return err
			}
			cum := int64(0)
			for i, b := range h.Bounds {
				if i < len(h.Counts) {
					cum += h.Counts[i]
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatFloat(b), cum); err != nil {
					return err
				}
			}
			// The +Inf bucket is the total count: the overflow bucket folds in.
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				pn, formatFloat(h.Sum), pn, h.Count); err != nil {
				return err
			}
			return nil
		}})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.emit(w); err != nil {
			return err
		}
	}
	return nil
}

// PromName sanitizes a registry metric name into a valid Prometheus metric
// name: every character outside [a-zA-Z0-9_:] becomes '_' (so the
// registry's "sta/time/eval_seconds" exposes as "sta_time_eval_seconds"),
// and a leading digit gets a '_' prefix.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// helpText renders the HELP line content: the original registry name (which
// carries the path structure the sanitized name flattens), with newlines and
// backslashes escaped per the exposition format.
func helpText(name string) string {
	r := strings.NewReplacer("\\", "\\\\", "\n", "\\n")
	return "qwm registry metric " + r.Replace(name)
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, no exponent mangling needed.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
