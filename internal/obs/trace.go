package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TraceRecorder is an Observer that assembles the span stream of an Analyze
// (AnalyzeStart / LevelStart / StageEval / AnalyzeEnd) into a span tree and
// serializes it as Chrome trace-event JSON — the format Perfetto and
// chrome://tracing load directly. Each recorded Analyze becomes one trace
// "process"; the scheduler (analyze + level spans) is thread 0 and every
// worker-pool slot is its own thread, so a parallel run renders as the
// familiar per-worker timeline with cache hits, eval tiers and Newton
// iteration counts attached as span args.
//
// Concurrency: StageEval events may arrive concurrently (Workers > 1); the
// recorder serializes them with a mutex. One recorder must observe at most
// one Analyze at a time — interleave two concurrent Analyzes on a single
// recorder and their spans end up in one tree. Sequential Analyzes are fine
// and each appends a new process; the ring keeps the most recent Limit of
// them (default 32).
//
// Export is two-mode (see Trace): the wall-clock trace for humans, and
// Deterministic() — ordered by (Level, Item) with every schedule-dependent
// field (timestamps, durations, worker ids, the Workers setting) stripped —
// whose JSON is byte-identical for serial and parallel runs of the same
// request, the property the engine's determinism gate asserts.
type TraceRecorder struct {
	// Limit caps the number of retained analyses; the oldest is dropped
	// when a new AnalyzeStart would exceed it. 0 means the default of 32.
	Limit int

	mu       sync.Mutex
	analyses []*traceAnalysis
	cur      *traceAnalysis
	dropped  int
}

// traceAnalysis is the raw record of one observed Analyze.
type traceAnalysis struct {
	start  time.Time
	info   AnalyzeStartInfo
	levels []levelRec
	evals  []evalRec
	end    AnalyzeEndInfo
	endAt  time.Time
	done   bool
}

type levelRec struct {
	at   time.Time
	info LevelStartInfo
}

type evalRec struct {
	endAt time.Time
	info  StageEvalInfo
}

// NewTraceRecorder returns an empty recorder with the default retention.
func NewTraceRecorder() *TraceRecorder { return &TraceRecorder{} }

// AnalyzeStart begins a new analysis record.
func (tr *TraceRecorder) AnalyzeStart(info AnalyzeStartInfo) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	limit := tr.Limit
	if limit <= 0 {
		limit = 32
	}
	if len(tr.analyses) >= limit {
		drop := len(tr.analyses) - limit + 1
		tr.analyses = append(tr.analyses[:0], tr.analyses[drop:]...)
		tr.dropped += drop
	}
	tr.cur = &traceAnalysis{start: time.Now(), info: info}
	tr.analyses = append(tr.analyses, tr.cur)
}

// LevelStart records one level boundary.
func (tr *TraceRecorder) LevelStart(info LevelStartInfo) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.cur == nil {
		return // event outside an AnalyzeStart/AnalyzeEnd bracket: dropped
	}
	tr.cur.levels = append(tr.cur.levels, levelRec{at: time.Now(), info: info})
}

// StageEval records one work-item span. The event arrives at the item's
// completion; its start is reconstructed as now − info.Duration.
func (tr *TraceRecorder) StageEval(info StageEvalInfo) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.cur == nil {
		return
	}
	tr.cur.evals = append(tr.cur.evals, evalRec{endAt: time.Now(), info: info})
}

// AnalyzeEnd closes the current analysis record.
func (tr *TraceRecorder) AnalyzeEnd(info AnalyzeEndInfo) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.cur == nil {
		return
	}
	tr.cur.end = info
	tr.cur.endAt = time.Now()
	tr.cur.done = true
	tr.cur = nil
}

// Empty reports whether the recorder holds no analyses.
func (tr *TraceRecorder) Empty() bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.analyses) == 0
}

// Reset discards every recorded analysis (including one in flight).
func (tr *TraceRecorder) Reset() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.analyses, tr.cur, tr.dropped = nil, nil, 0
}

// Trace freezes the recorder's current state into an exportable Trace. An
// analysis still in flight is included and marked incomplete.
func (tr *TraceRecorder) Trace() Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t := Trace{analyses: make([]*traceAnalysis, len(tr.analyses)), dropped: tr.dropped}
	for i, a := range tr.analyses {
		cp := *a
		cp.levels = append([]levelRec(nil), a.levels...)
		cp.evals = append([]evalRec(nil), a.evals...)
		t.analyses[i] = &cp
	}
	return t
}

// Trace is a frozen span tree ready for serialization. The zero value is an
// empty trace.
type Trace struct {
	analyses      []*traceAnalysis
	dropped       int
	deterministic bool
}

// Deterministic returns a view of the trace that orders every analysis's
// spans by (Level, Item) and strips all wall-clock and schedule-dependent
// content: timestamps become synthetic ticks (one per work item), durations
// become unit ticks, worker ids collapse to thread 0, and the Workers
// setting, span durations and hit ratio denominators are the only args
// retained that could differ — none do, because the engine's single-flight
// cache makes hit/miss patterns, tiers and solver stats schedule-independent.
// Two runs of the same request at Workers 1 and 8 therefore serialize to
// byte-identical JSON.
func (t Trace) Deterministic() Trace {
	t.deterministic = true
	return t
}

// TraceEvent is one Chrome trace-event object (the JSON array format).
// Ph "X" is a complete (self-balanced) duration event; "M" is metadata.
// Timestamps and durations are microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format wrapper Perfetto accepts.
type chromeTrace struct {
	TraceEvents []TraceEvent   `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// ChromeTraceJSON serializes a prebuilt event list in the Chrome trace
// object format. Exposed so other subsystems (e.g. the forensic bundle's
// QWM region trace) can emit Perfetto-loadable artifacts through one code
// path.
func ChromeTraceJSON(events []TraceEvent, metadata map[string]any) ([]byte, error) {
	return json.MarshalIndent(chromeTrace{TraceEvents: events, Metadata: metadata}, "", " ")
}

// JSON serializes the trace as Chrome trace-event JSON.
func (t Trace) JSON() ([]byte, error) {
	return ChromeTraceJSON(t.Events(), t.metadata())
}

func (t Trace) metadata() map[string]any {
	md := map[string]any{"recorder": "qwm/internal/obs.TraceRecorder"}
	if t.deterministic {
		md["deterministic"] = true
	}
	if t.dropped > 0 && !t.deterministic {
		md["dropped_analyses"] = t.dropped
	}
	return md
}

// Events builds the flat trace-event list. Exposed for tests and for
// callers that post-process events before serialization.
func (t Trace) Events() []TraceEvent {
	var out []TraceEvent
	var base time.Time
	for _, a := range t.analyses {
		if base.IsZero() || a.start.Before(base) {
			base = a.start
		}
	}
	for ai, a := range t.analyses {
		if t.deterministic {
			out = append(out, t.deterministicEvents(ai, a)...)
		} else {
			out = append(out, t.wallClockEvents(ai, a, base)...)
		}
	}
	return out
}

func durp(d float64) *float64 { return &d }

// wallClockEvents renders one analysis with real timestamps: pid = ordinal,
// tid 0 = the scheduler (analyze + level spans), tid w+1 = worker w.
func (t Trace) wallClockEvents(ai int, a *traceAnalysis, base time.Time) []TraceEvent {
	pid := ai + 1
	us := func(at time.Time) float64 { return at.Sub(base).Seconds() * 1e6 }

	// End of the analysis: AnalyzeEnd when complete, else the last event seen.
	endAt := a.endAt
	if !a.done {
		endAt = a.start
		for _, l := range a.levels {
			if l.at.After(endAt) {
				endAt = l.at
			}
		}
		for _, e := range a.evals {
			if e.endAt.After(endAt) {
				endAt = e.endAt
			}
		}
	}

	events := []TraceEvent{
		{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": fmt.Sprintf("sta analyze #%d", pid)}},
		{Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "scheduler"}},
	}
	workers := map[int]bool{}
	for _, e := range a.evals {
		if !workers[e.info.Worker] {
			workers[e.info.Worker] = true
			events = append(events, TraceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: e.info.Worker + 1,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", e.info.Worker)},
			})
		}
	}

	args := analyzeArgs(a, true)
	events = append(events, TraceEvent{
		Name: "analyze", Cat: "sta", Ph: "X", Pid: pid, Tid: 0,
		TS: us(a.start), Dur: durp(us(endAt) - us(a.start)), Args: args,
	})

	for li, l := range a.levels {
		lend := endAt
		if li+1 < len(a.levels) {
			lend = a.levels[li+1].at
		}
		events = append(events, TraceEvent{
			Name: fmt.Sprintf("level %d", l.info.Level), Cat: "sta", Ph: "X",
			Pid: pid, Tid: 0, TS: us(l.at), Dur: durp(us(lend) - us(l.at)),
			Args: map[string]any{"level": l.info.Level, "stages": l.info.Stages, "items": l.info.Items},
		})
	}

	levelStart := func(level int) (time.Time, bool) {
		for _, l := range a.levels {
			if l.info.Level == level {
				return l.at, true
			}
		}
		return time.Time{}, false
	}
	for _, e := range a.evals {
		startAt := e.endAt.Add(-e.info.Duration)
		// Clamp into the enclosing level span: the start is reconstructed
		// from two clock reads, so nanosecond skew could otherwise let an
		// eval leak a hair before its LevelStart.
		if ls, ok := levelStart(e.info.Level); ok && startAt.Before(ls) {
			startAt = ls
		}
		events = append(events, TraceEvent{
			Name: e.info.Output + "~" + e.info.Direction, Cat: "eval", Ph: "X",
			Pid: pid, Tid: e.info.Worker + 1,
			TS: us(startAt), Dur: durp(us(e.endAt) - us(startAt)),
			Args: evalArgs(e.info, true),
		})
	}
	return events
}

// deterministicEvents renders one analysis on a synthetic tick clock: the
// analyze span opens at tick 0, each level span covers one tick for itself
// plus one tick per work item, and every StageEval — sorted by (Level,
// Item), the Observer contract's deterministic identity — occupies exactly
// one tick on thread 0.
func (t Trace) deterministicEvents(ai int, a *traceAnalysis) []TraceEvent {
	pid := ai + 1
	evals := append([]evalRec(nil), a.evals...)
	sort.Slice(evals, func(i, j int) bool {
		if evals[i].info.Level != evals[j].info.Level {
			return evals[i].info.Level < evals[j].info.Level
		}
		return evals[i].info.Item < evals[j].info.Item
	})
	levels := append([]levelRec(nil), a.levels...)
	sort.Slice(levels, func(i, j int) bool { return levels[i].info.Level < levels[j].info.Level })

	events := []TraceEvent{
		{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": fmt.Sprintf("sta analyze #%d (deterministic)", pid)}},
	}

	tick := 0.0
	analyzeIdx := len(events)
	events = append(events, TraceEvent{
		Name: "analyze", Cat: "sta", Ph: "X", Pid: pid, Tid: 0,
		TS: tick, Args: analyzeArgs(a, false),
	})
	tick++

	ei := 0
	for _, l := range levels {
		lstart := tick
		tick++
		lidx := len(events)
		events = append(events, TraceEvent{
			Name: fmt.Sprintf("level %d", l.info.Level), Cat: "sta", Ph: "X",
			Pid: pid, Tid: 0, TS: lstart,
			Args: map[string]any{"level": l.info.Level, "stages": l.info.Stages, "items": l.info.Items},
		})
		for ; ei < len(evals) && evals[ei].info.Level == l.info.Level; ei++ {
			e := evals[ei]
			events = append(events, TraceEvent{
				Name: e.info.Output + "~" + e.info.Direction, Cat: "eval", Ph: "X",
				Pid: pid, Tid: 0, TS: tick, Dur: durp(1),
				Args: evalArgs(e.info, false),
			})
			tick++
		}
		events[lidx].Dur = durp(tick - lstart)
	}
	// Evals whose level had no LevelStart record (should not happen under
	// the Observer contract; kept for robustness on truncated streams).
	for ; ei < len(evals); ei++ {
		e := evals[ei]
		events = append(events, TraceEvent{
			Name: e.info.Output + "~" + e.info.Direction, Cat: "eval", Ph: "X",
			Pid: pid, Tid: 0, TS: tick, Dur: durp(1),
			Args: evalArgs(e.info, false),
		})
		tick++
	}
	events[analyzeIdx].Dur = durp(tick)
	return events
}

// analyzeArgs assembles the analyze span's args. Wall-clock-only fields
// (duration, the Workers setting — a run parameter, not a result) are
// included only when wall is set.
func analyzeArgs(a *traceAnalysis, wall bool) map[string]any {
	args := map[string]any{
		"stages":  a.info.Stages,
		"levels":  a.info.Levels,
		"items":   a.info.Items,
		"outputs": a.info.Outputs,
	}
	if wall {
		args["workers"] = a.info.Workers
	}
	if !a.done {
		args["incomplete"] = true
		return args
	}
	args["cache_hits"] = a.end.CacheHits
	args["cache_misses"] = a.end.CacheMisses
	args["stages_evaluated"] = a.end.StagesEvaluated
	args["eval_errors"] = a.end.EvalErrors
	args["slew_fallbacks"] = a.end.SlewFallbacks
	if a.end.Cancelled {
		args["cancelled"] = true
	}
	if a.end.Err != nil {
		args["err"] = a.end.Err.Error()
	}
	return args
}

// evalArgs assembles one StageEval span's args: cache outcome, ladder tier,
// solver statistics and (wall mode only) the worker slot that ran it.
func evalArgs(info StageEvalInfo, wall bool) map[string]any {
	cache := "miss"
	if info.CacheHit {
		cache = "hit"
	}
	args := map[string]any{
		"level":           info.Level,
		"item":            info.Item,
		"cache":           cache,
		"nr_iters":        info.QWM.NRIters,
		"regions":         info.QWM.Regions,
		"dense_fallbacks": info.QWM.DenseFallbacks,
		"cap_resolves":    info.QWM.CapResolves,
	}
	if info.Tier != "" {
		args["tier"] = info.Tier
	}
	if info.Err != "" {
		args["err"] = info.Err
	}
	if wall {
		args["worker"] = info.Worker
	}
	return args
}
