package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	traceID := NewTraceID()
	tp := FormatTraceparent(traceID, "req.j0.analyze")
	gotTrace, gotSpan, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own format", tp)
	}
	if gotTrace != traceID {
		t.Errorf("trace id %q, want %q", gotTrace, traceID)
	}
	if gotSpan != WireSpanID("req.j0.analyze") {
		t.Errorf("span id %q, want %q", gotSpan, WireSpanID("req.j0.analyze"))
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := FormatTraceparent(NewTraceID(), "req")
	bad := []string{
		"",
		"junk",
		valid[:54],                    // truncated
		valid + "0",                   // too long
		"01" + valid[2:],              // wrong version
		strings.ToUpper(valid),        // uppercase hex is invalid per W3C
		"00-" + strings.Repeat("0", 32) + valid[35:], // all-zero trace id
		strings.Replace(valid, "-", "_", 1),
	}
	for _, s := range bad {
		if _, _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted invalid input", s)
		}
	}
}

func TestPeerSpanCodec(t *testing.T) {
	ps := PeerSpan{
		Name: "cache-plane get", Process: "replica-b", DurUS: 123.5,
		Attrs: map[string]string{"op": "get", "outcome": "hit"},
	}
	enc := EncodePeerSpan(ps)
	if enc == "" {
		t.Fatal("EncodePeerSpan returned empty")
	}
	got, ok := DecodePeerSpan(enc)
	if !ok {
		t.Fatal("DecodePeerSpan rejected its own encoding")
	}
	if got.Name != ps.Name || got.Process != ps.Process || got.DurUS != ps.DurUS ||
		got.Attrs["outcome"] != "hit" {
		t.Errorf("round trip got %+v, want %+v", got, ps)
	}
	for _, junk := range []string{"", "!!!not-base64!!!", "bm90IGpzb24", EncodePeerSpan(PeerSpan{})} {
		if _, ok := DecodePeerSpan(junk); ok {
			t.Errorf("DecodePeerSpan(%q) accepted junk", junk)
		}
	}
}

// traceFixtureSpans builds a realistic span set spanning pseudo-levels,
// engine levels and a remote peer, in a deliberately scrambled order.
func traceFixtureSpans() []ReqSpan {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	spans := []ReqSpan{
		{ID: "req", Name: "POST /analyze", Level: LevelRequest, Item: 0, Start: base, Dur: 9 * time.Millisecond, Attrs: map[string]any{"route": "analyze", "status": 200}},
		{ID: "req.enqueue", Parent: "req", Name: "enqueue", Level: LevelAdmit, Item: 0, Start: base, Dur: time.Microsecond, Attrs: map[string]any{"requests": 1, "admitted": true}},
		{ID: "req.j0", Parent: "req", Name: "worker", Level: LevelWorker, Item: 0, Start: base, Dur: 8 * time.Millisecond, Attrs: map[string]any{"status": "ok"}},
		{ID: "req.j0.analyze", Parent: "req.j0", Name: "analyze", Level: LevelAnalyze, Item: 0, Start: base, Dur: 7 * time.Millisecond, Attrs: map[string]any{"stages": 2}},
		{ID: "req.j0.analyze.L0", Parent: "req.j0.analyze", Name: "level 0", Level: 0, Item: -1, Start: base, Dur: time.Millisecond},
		{ID: "req.j0.analyze.L0.e0", Parent: "req.j0.analyze.L0", Name: "y0~rise", Level: 0, Item: 0, Start: base, Dur: time.Millisecond, Attrs: map[string]any{"cache": "miss"}},
		{ID: "req.j0.analyze.L0.e0.k00000001.t0-remote", Parent: "req.j0.analyze.L0.e0", Name: "tier remote", Level: 0, Item: 0, Start: base, Dur: time.Millisecond, Attrs: map[string]any{"tier": "remote", "hit": true}},
		{ID: "req.j0.analyze.L0.e0.k00000001.t0-remote.a0", Parent: "req.j0.analyze.L0.e0.k00000001.t0-remote", Name: "remote get", Level: 0, Item: 0, Start: base, Dur: time.Millisecond, Attrs: map[string]any{"attempt": 0, "outcome": "hit"}},
		{ID: "req.j0.analyze.L0.e0.k00000001.t0-remote.a0.peer", Parent: "req.j0.analyze.L0.e0.k00000001.t0-remote.a0", Name: "cache-plane get", Process: "replica-b", Level: 0, Item: 0, Start: base, Dur: time.Millisecond, Attrs: map[string]any{"op": "get", "outcome": "hit"}},
		{ID: "req.j0.analyze.L1", Parent: "req.j0.analyze", Name: "level 1", Level: 1, Item: -1, Start: base, Dur: time.Millisecond},
		{ID: "req.j0.analyze.L1.e3", Parent: "req.j0.analyze.L1", Name: "y1~fall", Level: 1, Item: 3, Start: base, Dur: time.Millisecond, Attrs: map[string]any{"cache": "hit"}},
	}
	return spans
}

// TestDeterministicExportByteIdentical is the core determinism contract: the
// same spans added in ANY order, under DIFFERENT trace IDs and different
// wall-clock times, export byte-identical deterministic JSON.
func TestDeterministicExportByteIdentical(t *testing.T) {
	export := func(seed int64, shift time.Duration) []byte {
		at := NewActiveTrace("")
		spans := traceFixtureSpans()
		rand.New(rand.NewSource(seed)).Shuffle(len(spans), func(i, j int) {
			spans[i], spans[j] = spans[j], spans[i]
		})
		for _, s := range spans {
			s.Start = s.Start.Add(shift) // different wall clock per run
			at.Add(s)
		}
		rt := at.Finish("analyze", 200, 9*time.Millisecond+shift)
		b, err := rt.ChromeJSON(true)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := export(1, 0)
	b := export(99, 3*time.Hour)
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic exports differ:\n%s\nvs\n%s", a, b)
	}
	if bytes.Contains(a, []byte("trace_id")) {
		t.Error("deterministic export leaks the trace id")
	}
	if !bytes.Contains(a, []byte(`"deterministic":true`)) && !bytes.Contains(a, []byte(`"deterministic": true`)) {
		t.Error("deterministic export not marked deterministic")
	}
	// The wall-clock export, by contrast, must carry the trace id.
	at := NewActiveTrace("")
	for _, s := range traceFixtureSpans() {
		at.Add(s)
	}
	wall, err := at.Finish("analyze", 200, time.Millisecond).ChromeJSON(false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(wall, []byte(at.TraceID)) {
		t.Error("wall-clock export missing the trace id")
	}
}

// TestDeterministicExportProcesses pins the process→pid mapping: local is
// pid 1, remote replicas sorted from 2, with process_name metadata events.
func TestDeterministicExportProcesses(t *testing.T) {
	at := NewActiveTrace("")
	for _, s := range traceFixtureSpans() {
		at.Add(s)
	}
	b, err := at.Finish("analyze", 200, time.Millisecond).ChromeJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	sawLocal, sawRemote, sawPeerSpan := false, false, false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" && ev.Ph == "M" {
			switch ev.Args["name"] {
			case "local":
				sawLocal = ev.Pid == 1
			case "replica replica-b":
				sawRemote = ev.Pid == 2
			}
		}
		if ev.Name == "cache-plane get" && ev.Pid == 2 {
			sawPeerSpan = true
		}
	}
	if !sawLocal || !sawRemote {
		t.Errorf("process metadata wrong: local-pid1 %v, replica-pid2 %v", sawLocal, sawRemote)
	}
	if !sawPeerSpan {
		t.Error("peer span not attributed to the remote pid")
	}
}

// TestTraceBridgeSpans drives the Observer bridge through a two-level
// analyze and checks the emitted span tree.
func TestTraceBridgeSpans(t *testing.T) {
	at := NewActiveTrace("")
	b := NewTraceBridge(TraceRef{T: at, Parent: "req.j0", Level: LevelWorker, Item: 0})
	if b.AnalyzeID() != "req.j0.analyze" {
		t.Fatalf("AnalyzeID %q", b.AnalyzeID())
	}
	b.AnalyzeStart(AnalyzeStartInfo{Stages: 2, Levels: 2, Items: 3, Outputs: 1, Workers: 8})
	b.LevelStart(LevelStartInfo{Level: 0, Levels: 2, Stages: 1, Items: 2})
	b.StageEval(StageEvalInfo{Level: 0, Item: 0, Output: "y0", Direction: "rise", CacheHit: false, Duration: time.Millisecond})
	b.StageEval(StageEvalInfo{Level: 0, Item: 1, Output: "y0", Direction: "fall", CacheHit: true})
	b.LevelStart(LevelStartInfo{Level: 1, Levels: 2, Stages: 1, Items: 1})
	b.StageEval(StageEvalInfo{Level: 1, Item: 0, Output: "y1", Direction: "rise", Tier: "qwm"})
	b.AnalyzeEnd(AnalyzeEndInfo{CacheHits: 1, CacheMisses: 2, StagesEvaluated: 2})

	rt := at.Finish("analyze", 200, time.Millisecond)
	byID := map[string]ReqSpan{}
	for _, s := range rt.Spans {
		byID[s.ID] = s
	}
	for id, parent := range map[string]string{
		"req.j0.analyze":       "req.j0",
		"req.j0.analyze.L0":    "req.j0.analyze",
		"req.j0.analyze.L1":    "req.j0.analyze",
		"req.j0.analyze.L0.e0": "req.j0.analyze.L0",
		"req.j0.analyze.L0.e1": "req.j0.analyze.L0",
		"req.j0.analyze.L1.e0": "req.j0.analyze.L1",
	} {
		s, ok := byID[id]
		if !ok {
			t.Errorf("missing span %s (have %d spans)", id, len(rt.Spans))
			continue
		}
		if s.Parent != parent {
			t.Errorf("span %s parent %q, want %q", id, s.Parent, parent)
		}
	}
	an := byID["req.j0.analyze"]
	if an.Attrs["cache_hits"] != int64(1) {
		t.Errorf("analyze span cache_hits = %v", an.Attrs["cache_hits"])
	}
	if _, leaked := an.Attrs["workers"]; leaked {
		t.Error("analyze span leaked the schedule-dependent Workers setting")
	}
	if s := byID["req.j0.analyze.L1.e0"]; s.Attrs["tier"] != "qwm" {
		t.Errorf("eval span tier attr = %v", s.Attrs["tier"])
	}
}

func TestTraceFromContext(t *testing.T) {
	if _, ok := TraceFrom(nil); ok {
		t.Error("TraceFrom(nil) claimed a trace")
	}
	at := NewActiveTrace("deadbeefdeadbeefdeadbeefdeadbeef")
	if at.TraceID != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Errorf("NewActiveTrace ignored the inbound trace id: %q", at.TraceID)
	}
	ctx := ContextWithTrace(context.Background(), TraceRef{T: at, Parent: "req", Level: LevelRequest})
	ref, ok := TraceFrom(ctx)
	if !ok || ref.T != at || ref.Parent != "req" {
		t.Errorf("TraceFrom round trip: %+v ok=%v", ref, ok)
	}
	if id := TraceIDFrom(ctx); id != at.TraceID {
		t.Errorf("TraceIDFrom %q", id)
	}
	if id := TraceIDFrom(context.Background()); id != "" {
		t.Errorf("TraceIDFrom(untraced) %q, want empty", id)
	}
}
