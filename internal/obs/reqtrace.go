package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// This file is the request-scoped distributed-tracing layer: a trace context
// minted at the service front door (POST /analyze), carried through the
// admission queue, the worker pool, the engine (bridged from the existing
// Observer span stream), the cache-tier probes and the remote-cache client —
// which forwards it over the wire so a peer replica's cache plane can
// contribute a child span to the same trace.
//
// Span identity is SEMANTIC, not random: every span's ID is a "."-separated
// path describing its causal position ("req", "req.j0", "req.j0.analyze",
// "req.j0.analyze.L2.e5", ...). Two runs of the same request therefore mint
// identical span IDs regardless of scheduling, which is what makes the
// Deterministic() export byte-identical at any Workers setting and across
// replicas — no ID remapping pass is needed. The wire form (traceparent)
// hashes the semantic ID to the 16-hex span-id field W3C requires.

// Pseudo-levels order the request-plumbing spans ahead of the engine's
// dependency levels (which are >= 0) in the deterministic (Level, Item, ID)
// sort. The gaps are deliberate headroom for future hops.
const (
	LevelRequest = -100 // the root request span
	LevelAdmit   = -99  // queue admission
	LevelWorker  = -98  // worker-pool execution
	LevelAnalyze = -97  // one engine Analyze
)

// ReqSpan is one completed span of a request trace. Spans are recorded at
// completion (like the Observer's StageEval events), so there is no
// open-span bookkeeping to race on.
type ReqSpan struct {
	// ID is the semantic path identity; Parent the enclosing span's ID
	// ("" for the root). A parent's ID is always a prefix of its children's,
	// so within one (Level, Item) tie the deterministic sort emits parents
	// first.
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	// Name is the human-facing label.
	Name string `json:"name"`
	// Process names the replica that recorded the span; "" is the local
	// process. The Chrome export maps processes to pids deterministically
	// (local first, then remote names sorted).
	Process string `json:"process,omitempty"`
	// Level and Item are the deterministic sort identity, mirroring the
	// Observer contract: engine spans carry their dependency level and item
	// index, request-plumbing spans carry the pseudo-levels above.
	Level int `json:"level"`
	Item  int `json:"item"`
	// Start and Dur are wall-clock; the deterministic export strips both.
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
	// Attrs carries ONLY schedule-independent attributes (cache outcomes,
	// tier names, counts). Durations, worker ids and queue depths must never
	// appear here — the deterministic export serializes Attrs verbatim.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// ActiveTrace accumulates the spans of one in-flight request. Spans arrive
// concurrently from worker goroutines; Add serializes them with a mutex.
type ActiveTrace struct {
	TraceID string
	Start   time.Time

	mu    sync.Mutex
	spans []ReqSpan
}

// NewActiveTrace starts a trace. An empty traceID mints a fresh random one
// (the caller passes an inbound traceparent's ID to join an existing trace).
func NewActiveTrace(traceID string) *ActiveTrace {
	if traceID == "" {
		traceID = NewTraceID()
	}
	return &ActiveTrace{TraceID: traceID, Start: time.Now()}
}

// Add records one completed span.
func (t *ActiveTrace) Add(s ReqSpan) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Finish freezes the trace into its completed, exportable form. Spans added
// after Finish (an async batch still draining) affect only later Finish
// calls, never the returned value.
func (t *ActiveTrace) Finish(route string, status int, dur time.Duration) *RequestTrace {
	t.mu.Lock()
	spans := append([]ReqSpan(nil), t.spans...)
	t.mu.Unlock()
	return &RequestTrace{
		TraceID: t.TraceID, Route: route, Status: status,
		Start: t.Start, Dur: dur, Spans: spans,
	}
}

// TraceRef is the context-carried handle: the trace plus the span ID new
// child spans should parent under, and the (Level, Item) sort identity
// children inherit when they have no better one of their own.
type TraceRef struct {
	T      *ActiveTrace
	Parent string
	Level  int
	Item   int
}

type traceCtxKey struct{}

// ContextWithTrace attaches a trace reference to a context.
func ContextWithTrace(ctx context.Context, ref TraceRef) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, ref)
}

// TraceFrom extracts the trace reference, if any. One Value lookup — the
// only cost tracing imposes on an untraced request.
func TraceFrom(ctx context.Context) (TraceRef, bool) {
	if ctx == nil {
		return TraceRef{}, false
	}
	ref, ok := ctx.Value(traceCtxKey{}).(TraceRef)
	return ref, ok && ref.T != nil
}

// TraceIDFrom returns the context's trace ID, or "".
func TraceIDFrom(ctx context.Context) string {
	if ref, ok := TraceFrom(ctx); ok {
		return ref.T.TraceID
	}
	return ""
}

// NewTraceID mints a random 32-hex trace ID (the W3C trace-id width).
func NewTraceID() string {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to a
		// fixed ID rather than panic in the serving path.
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// WireSpanID derives the 16-hex W3C parent-id field from a semantic span ID
// (FNV-64a — stable across processes and runs).
func WireSpanID(semantic string) string {
	h := fnv.New64a()
	h.Write([]byte(semantic))
	return fmt.Sprintf("%016x", h.Sum64())
}

// FormatTraceparent renders the W3C traceparent header for a semantic span:
// version 00, the trace ID, the hashed span ID, flags 01 (sampled).
func FormatTraceparent(traceID, semanticSpanID string) string {
	return "00-" + traceID + "-" + WireSpanID(semanticSpanID) + "-01"
}

// ParseTraceparent splits and validates a traceparent header, returning the
// trace ID and (hashed) parent span ID.
func ParseTraceparent(s string) (traceID, spanID string, ok bool) {
	if len(s) != 55 || s[:3] != "00-" || s[35] != '-' || s[52] != '-' {
		return "", "", false
	}
	traceID, spanID = s[3:35], s[36:52]
	if !isHex(traceID) || !isHex(spanID) || !isHex(s[53:]) {
		return "", "", false
	}
	if traceID == "00000000000000000000000000000000" {
		return "", "", false
	}
	return traceID, spanID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// PeerSpan is the wire form of one remote-recorded span, returned by a
// peer's cache plane in the Qwm-Span response header and re-parented into
// the caller's trace under the attempt span that made the request.
type PeerSpan struct {
	Name    string            `json:"name"`
	Process string            `json:"process"`
	DurUS   float64           `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// EncodePeerSpan renders the header value (base64url JSON — header-safe).
func EncodePeerSpan(ps PeerSpan) string {
	b, err := json.Marshal(ps)
	if err != nil {
		return ""
	}
	return base64.RawURLEncoding.EncodeToString(b)
}

// DecodePeerSpan parses a Qwm-Span header value.
func DecodePeerSpan(s string) (PeerSpan, bool) {
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return PeerSpan{}, false
	}
	var ps PeerSpan
	if err := json.Unmarshal(b, &ps); err != nil || ps.Name == "" {
		return PeerSpan{}, false
	}
	return ps, true
}

// KeyHash32 is a short deterministic content hash used to disambiguate
// sibling span groups keyed by cache key (one eval may look up two keys
// under slew-bucket interpolation).
func KeyHash32(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}

// TraceBridge adapts the engine's Observer span stream into request-trace
// spans: one analyze span, one span per dependency level, one per StageEval.
// It is constructed per-Analyze from the context's TraceRef and composed
// with any user observer via Multi. StageEval events may arrive concurrently
// (Workers > 1); level bookkeeping is mutex-guarded and StageEval touches
// only the ActiveTrace, which serializes internally.
//
// The engine has no LevelEnd event (level completion is metrics-only), so a
// level's span is emitted when the NEXT LevelStart — or AnalyzeEnd — arrives.
type TraceBridge struct {
	ref       TraceRef
	analyzeID string

	mu        sync.Mutex
	start     time.Time
	info      AnalyzeStartInfo
	haveLevel bool
	curLevel  LevelStartInfo
	curStart  time.Time
}

// NewTraceBridge builds the bridge for one Analyze parented under
// ref.Parent (the worker span).
func NewTraceBridge(ref TraceRef) *TraceBridge {
	return &TraceBridge{ref: ref, analyzeID: ref.Parent + ".analyze"}
}

// AnalyzeID returns the analyze span's ID — the parent for tier-probe spans.
func (b *TraceBridge) AnalyzeID() string { return b.analyzeID }

func (b *TraceBridge) AnalyzeStart(info AnalyzeStartInfo) {
	b.mu.Lock()
	b.start = time.Now()
	b.info = info
	b.mu.Unlock()
}

func (b *TraceBridge) LevelStart(info LevelStartInfo) {
	now := time.Now()
	b.mu.Lock()
	if b.haveLevel {
		b.emitLevelLocked(now)
	}
	b.haveLevel = true
	b.curLevel = info
	b.curStart = now
	b.mu.Unlock()
}

// emitLevelLocked closes the open level span. Caller holds b.mu.
func (b *TraceBridge) emitLevelLocked(end time.Time) {
	l := b.curLevel
	b.ref.T.Add(ReqSpan{
		ID:     fmt.Sprintf("%s.L%d", b.analyzeID, l.Level),
		Parent: b.analyzeID,
		Name:   fmt.Sprintf("level %d", l.Level),
		Level:  l.Level, Item: -1,
		Start: b.curStart, Dur: end.Sub(b.curStart),
		Attrs: map[string]any{"level": l.Level, "stages": l.Stages, "items": l.Items},
	})
}

func (b *TraceBridge) StageEval(info StageEvalInfo) {
	end := time.Now()
	cache := "miss"
	if info.CacheHit {
		cache = "hit"
	}
	attrs := map[string]any{
		"output": info.Output, "dir": info.Direction, "cache": cache,
	}
	if info.Tier != "" {
		attrs["tier"] = info.Tier
	}
	if info.Err != "" {
		attrs["err"] = info.Err
	}
	levelID := fmt.Sprintf("%s.L%d", b.analyzeID, info.Level)
	b.ref.T.Add(ReqSpan{
		ID:     fmt.Sprintf("%s.e%d", levelID, info.Item),
		Parent: levelID,
		Name:   info.Output + "~" + info.Direction,
		Level:  info.Level, Item: info.Item,
		Start: end.Add(-info.Duration), Dur: info.Duration,
		Attrs: attrs,
	})
}

func (b *TraceBridge) AnalyzeEnd(info AnalyzeEndInfo) {
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.haveLevel {
		b.emitLevelLocked(now)
		b.haveLevel = false
	}
	attrs := map[string]any{
		"stages":  b.info.Stages,
		"levels":  b.info.Levels,
		"items":   b.info.Items,
		"outputs": b.info.Outputs,
		// Deterministic per the single-flight cache contract (the existing
		// trace gate pins this); the Workers setting and durations are not.
		"cache_hits":       info.CacheHits,
		"cache_misses":     info.CacheMisses,
		"stages_evaluated": info.StagesEvaluated,
	}
	if info.Cancelled {
		attrs["cancelled"] = true
	}
	if info.Err != nil {
		attrs["err"] = info.Err.Error()
	}
	b.ref.T.Add(ReqSpan{
		ID:     b.analyzeID,
		Parent: b.ref.Parent,
		Name:   "analyze",
		Level:  LevelAnalyze, Item: b.ref.Item,
		Start: b.start, Dur: now.Sub(b.start),
		Attrs: attrs,
	})
}

// RequestTrace is one completed request's span tree, the unit the flight
// recorder retains and the /trace/request/{id} endpoint exports.
type RequestTrace struct {
	TraceID string        `json:"trace_id"`
	Route   string        `json:"route"`
	Status  int           `json:"status"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur"`
	Spans   []ReqSpan     `json:"spans"`
}

// Err reports whether the request classifies as errored for retention.
func (rt *RequestTrace) Err() bool { return rt.Status >= 400 }

// sortSpansDeterministic orders spans by the deterministic identity
// (Level, Item, ID). Semantic IDs make the ID tie-break stable: a parent's
// ID is a strict prefix of its children's, so parents sort first.
func sortSpansDeterministic(spans []ReqSpan) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Level != spans[j].Level {
			return spans[i].Level < spans[j].Level
		}
		if spans[i].Item != spans[j].Item {
			return spans[i].Item < spans[j].Item
		}
		return spans[i].ID < spans[j].ID
	})
}

// processPids maps span processes to Chrome pids deterministically: the
// local process ("") is pid 1, remote replica names follow sorted from 2.
func processPids(spans []ReqSpan) (map[string]int, []string) {
	var remotes []string
	seen := map[string]bool{}
	for _, s := range spans {
		if s.Process != "" && !seen[s.Process] {
			seen[s.Process] = true
			remotes = append(remotes, s.Process)
		}
	}
	sort.Strings(remotes)
	pids := map[string]int{"": 1}
	for i, name := range remotes {
		pids[name] = 2 + i
	}
	return pids, remotes
}

// ChromeJSON serializes the trace in the Chrome trace-event object format
// (the PR 5 serialization path — Perfetto loads it directly). Deterministic
// mode orders spans by (Level, Item, ID), replaces wall-clock timestamps
// with rank ticks and unit durations, and redacts the random trace ID, so
// two identically-seeded runs at any Workers setting serialize to
// byte-identical JSON.
func (rt *RequestTrace) ChromeJSON(deterministic bool) ([]byte, error) {
	md := map[string]any{
		"recorder": "qwm/internal/obs.FlightRecorder",
		"route":    rt.Route,
		"status":   rt.Status,
	}
	if deterministic {
		md["deterministic"] = true
	} else {
		md["trace_id"] = rt.TraceID
	}
	return ChromeTraceJSON(rt.events(deterministic), md)
}

func (rt *RequestTrace) events(deterministic bool) []TraceEvent {
	spans := append([]ReqSpan(nil), rt.Spans...)
	if deterministic {
		sortSpansDeterministic(spans)
	} else {
		sort.Slice(spans, func(i, j int) bool {
			if !spans[i].Start.Equal(spans[j].Start) {
				return spans[i].Start.Before(spans[j].Start)
			}
			return spans[i].ID < spans[j].ID
		})
	}
	pids, remotes := processPids(spans)
	var events []TraceEvent
	name := func(pid int, label string) TraceEvent {
		return TraceEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": label}}
	}
	events = append(events, name(1, "local"))
	for _, r := range remotes {
		events = append(events, name(pids[r], "replica "+r))
	}
	for rank, s := range spans {
		args := map[string]any{"id": s.ID}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		ev := TraceEvent{
			Name: s.Name, Cat: "request", Ph: "X",
			Pid: pids[s.Process], Tid: 0, Args: args,
		}
		if deterministic {
			ev.TS = float64(rank)
			ev.Dur = durp(1)
		} else {
			ev.TS = s.Start.Sub(rt.Start).Seconds() * 1e6
			ev.Dur = durp(s.Dur.Seconds() * 1e6)
		}
		events = append(events, ev)
	}
	return events
}
