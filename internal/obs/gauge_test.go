package obs

import (
	"strings"
	"testing"
)

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("service/queue/depth")
	if g.Value() != 0 {
		t.Fatalf("fresh gauge = %d, want 0", g.Value())
	}
	g.Add(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("after +5 -2: %d, want 3", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("after Set(7): %d, want 7", g.Value())
	}
	if g2 := r.Gauge("service/queue/depth"); g2 != g {
		t.Fatal("re-registering the same name returned a different gauge")
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge must be a no-op instrument")
	}
	var nilR *Registry
	if nilR.Gauge("x") != nil {
		t.Fatal("nil registry must hand out nil gauges")
	}
}

func TestGaugeSnapshotMergeAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	snap := r.Snapshot()
	if snap.Gauges != nil {
		t.Fatalf("snapshot without gauges should have a nil Gauges map, got %v", snap.Gauges)
	}
	js, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(js), "gauges") {
		t.Fatalf("gauge-free snapshot JSON must omit the gauges key:\n%s", js)
	}

	r.Gauge("depth").Set(4)
	snap = r.Snapshot()
	if snap.Gauges["depth"] != 4 {
		t.Fatalf("snapshot gauge = %d, want 4", snap.Gauges["depth"])
	}

	// Merge into a gauge-free snapshot lazily creates the map and sums.
	base := NewRegistry().Snapshot()
	if err := base.Merge(snap); err != nil {
		t.Fatal(err)
	}
	if err := base.Merge(snap); err != nil {
		t.Fatal(err)
	}
	if base.Gauges["depth"] != 8 {
		t.Fatalf("merged gauge = %d, want 8", base.Gauges["depth"])
	}

	// Filter keeps gauges that pass and drops the map when none do.
	kept := snap.Filter(func(name string) bool { return name == "depth" })
	if kept.Gauges["depth"] != 4 {
		t.Fatalf("filtered gauge = %d, want 4", kept.Gauges["depth"])
	}
	none := snap.Filter(func(name string) bool { return name == "c" })
	if none.Gauges != nil {
		t.Fatalf("filter dropping every gauge should leave a nil map, got %v", none.Gauges)
	}
}

func TestGaugePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Gauge("service/queue/depth").Set(3)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE service_queue_depth gauge",
		"service_queue_depth 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
