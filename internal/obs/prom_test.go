package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	promNameRe    = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promCommentRe = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promSampleRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]*)"\})? (-?[0-9.eE+-]+|NaN)$`)
)

func buildPromSnapshot() Snapshot {
	r := NewRegistry()
	r.Counter("sta/analyzes").Add(3)
	r.Counter("sta/cache_hits").Add(41)
	r.Counter("sta/tier_evals/rc-bound").Add(2) // '-' needs sanitizing
	h := r.Histogram("sta/nr_iters_per_eval", []float64{1, 2, 4, 8})
	for _, v := range []float64{1, 3, 3, 7, 100} {
		h.Observe(v)
	}
	ht := r.Histogram("sta/time/eval_seconds", []float64{1e-6, 1e-3, 1})
	ht.Observe(5e-4)
	return r.Snapshot()
}

// TestWritePrometheusParses: every emitted line must be a valid exposition
// line — a HELP/TYPE comment or a sample with an optional le label.
func TestWritePrometheusParses(t *testing.T) {
	var buf bytes.Buffer
	if err := buildPromSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition does not end with a newline")
	}
	types := map[string]string{}
	var lastType, lastName string
	for ln, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "#") {
			if !promCommentRe.MatchString(line) {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			f := strings.Fields(line)
			if f[1] == "TYPE" {
				lastType, lastName = f[3], f[2]
				types[f[2]] = f[3]
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		name := m[1]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base != lastName && name != lastName {
			t.Fatalf("line %d: sample %q outside its family (last TYPE %q)", ln+1, name, lastName)
		}
		if !promNameRe.MatchString(name) {
			t.Fatalf("line %d: invalid metric name %q", ln+1, name)
		}
		if m[2] != "" && lastType != "histogram" {
			t.Fatalf("line %d: le label on non-histogram %q", ln+1, name)
		}
	}
	if types["sta_analyzes"] != "counter" || types["sta_nr_iters_per_eval"] != "histogram" {
		t.Fatalf("TYPE lines missing or wrong: %v", types)
	}
	if !strings.Contains(out, "sta_tier_evals_rc_bound 2") {
		t.Errorf("sanitized tier counter missing:\n%s", out)
	}
}

// TestWritePrometheusHistogramContract pins the histogram series shape:
// cumulative buckets in bound order, a final +Inf bucket equal to _count,
// and a _sum consistent with the observations.
func TestWritePrometheusHistogramContract(t *testing.T) {
	var buf bytes.Buffer
	if err := buildPromSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	type bucket struct {
		le  string
		val int64
	}
	var buckets []bucket
	var count int64 = -1
	var sum float64
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "sta_nr_iters_per_eval_bucket{"):
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed bucket line %q", line)
			}
			v, _ := strconv.ParseInt(m[4], 10, 64)
			buckets = append(buckets, bucket{le: m[3], val: v})
		case strings.HasPrefix(line, "sta_nr_iters_per_eval_count "):
			count, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, "sta_nr_iters_per_eval_sum "):
			sum, _ = strconv.ParseFloat(strings.Fields(line)[1], 64)
		}
	}
	// Observations were 1,3,3,7,100 over bounds 1,2,4,8:
	// cumulative ≤1:1 ≤2:1 ≤4:3 ≤8:4 +Inf:5.
	want := []bucket{{"1", 1}, {"2", 1}, {"4", 3}, {"8", 4}, {"+Inf", 5}}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", buckets, want)
	}
	for i, b := range buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b, want[i])
		}
		if i > 0 && b.val < buckets[i-1].val {
			t.Fatalf("buckets not cumulative at %d: %v", i, buckets)
		}
	}
	if buckets[len(buckets)-1].le != "+Inf" {
		t.Fatal("bucket series does not end with +Inf")
	}
	if count != 5 || buckets[len(buckets)-1].val != count {
		t.Fatalf("count = %d, +Inf bucket = %d, want both 5", count, buckets[len(buckets)-1].val)
	}
	if sum != 114 {
		t.Fatalf("sum = %g, want 114", sum)
	}
}

// TestWritePrometheusDeterministic: equal snapshots expose byte-identical
// pages (families in sorted order, map iteration not leaking through).
func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildPromSnapshot().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildPromSnapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two expositions of equal snapshots differ")
	}
	// Empty snapshot: valid (and empty) output, no error.
	var e bytes.Buffer
	if err := (Snapshot{}).WritePrometheus(&e); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 {
		t.Fatalf("empty snapshot exposed %q", e.String())
	}
}

func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"sta/analyzes", "sta_analyzes"},
		{"sta/time/eval_seconds", "sta_time_eval_seconds"},
		{"sta/tier_evals/rc-bound", "sta_tier_evals_rc_bound"},
		{"0weird", "_0weird"},
		{"a:b_c9", "a:b_c9"},
		{"sp ace", "sp_ace"},
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
		if !promNameRe.MatchString(PromName(c.in)) {
			t.Errorf("PromName(%q) = %q is not a valid metric name", c.in, PromName(c.in))
		}
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	snap := buildPromSnapshot()
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := snap.WritePrometheus(&buf); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprint(buf.Len())
}
