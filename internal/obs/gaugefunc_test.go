package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestGaugeFuncSampledInSnapshot pins the fix for the stale queue-depth
// gauge: a registered GaugeFunc is evaluated at Snapshot time and OVERRIDES
// any same-name edge-maintained gauge, so a missed edge update (or a queue
// that went idle-but-full) can never misreport.
func TestGaugeFuncSampledInSnapshot(t *testing.T) {
	r := NewRegistry()
	depth := int64(0)
	r.GaugeFunc("service/queue/depth", func() int64 { return depth })
	// Simulate a stale edge gauge disagreeing with reality.
	r.Gauge("service/queue/depth").Set(99)
	depth = 2 // the queue is actually stuck full at 2
	if got := r.Snapshot().Gauges["service/queue/depth"]; got != 2 {
		t.Errorf("snapshot gauge = %d, want sampled value 2 (edge said 99)", got)
	}
	depth = 0
	if got := r.Snapshot().Gauges["service/queue/depth"]; got != 0 {
		t.Errorf("snapshot gauge = %d, want sampled value 0", got)
	}
	// A GaugeFunc with no edge twin still appears.
	r.GaugeFunc("service/standalone", func() int64 { return 7 })
	if got := r.Snapshot().Gauges["service/standalone"]; got != 7 {
		t.Errorf("standalone GaugeFunc gauge = %d, want 7", got)
	}
	// Nil-safety.
	var nilReg *Registry
	nilReg.GaugeFunc("x", func() int64 { return 1 })
	r.GaugeFunc("y", nil)
}

// TestGaugeFuncMayCallRegistry guards against deadlock: Snapshot evaluates
// sampler functions OUTSIDE the shard locks, so a sampler that itself reads
// the registry must not hang.
func TestGaugeFuncMayCallRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.GaugeFunc("derived", func() int64 { return r.Counter("c").Value() })
	done := make(chan Snapshot, 1)
	go func() { done <- r.Snapshot() }()
	select {
	case snap := <-done:
		if snap.Gauges["derived"] != 3 {
			t.Errorf("derived gauge = %d, want 3", snap.Gauges["derived"])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Snapshot deadlocked evaluating a registry-reading GaugeFunc")
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("service/http/time/latency/analyze", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "deadbeef01") // bucket 0
	h.ObserveExemplar(0.5, "deadbeef02")  // bucket 1
	h.ObserveExemplar(0.7, "deadbeef03")  // bucket 1, overwrites (last-writer-wins)
	h.ObserveExemplar(0.9, "")            // empty exemplar degrades to a plain Observe

	hs := r.Snapshot().Histograms["service/http/time/latency/analyze"]
	if hs.Count != 4 {
		t.Fatalf("count %d, want 4", hs.Count)
	}
	// Exemplars is parallel to Counts: one slot per bucket.
	want := []string{"deadbeef01", "deadbeef03", ""}
	if len(hs.Exemplars) != len(want) {
		t.Fatalf("exemplars %v, want %v", hs.Exemplars, want)
	}
	for i := range want {
		if hs.Exemplars[i] != want[i] {
			t.Errorf("exemplar[%d] = %q, want %q", i, hs.Exemplars[i], want[i])
		}
	}
	// The deterministic rendering strips exemplars (trace ids are random).
	det := r.Snapshot().Deterministic()
	if ex := det.Histograms["service/http/time/latency/analyze"].Exemplars; ex != nil {
		t.Errorf("Deterministic() kept exemplars: %v", ex)
	}
	// A histogram that never saw an exemplar omits the field in JSON.
	h2 := r.Histogram("plain", []float64{1})
	h2.Observe(0.5)
	b, err := json.Marshal(r.Snapshot().Histograms["plain"])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "exemplars") {
		t.Errorf("exemplar-free histogram serialized exemplars: %s", b)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	info := RegisterBuildInfo(r)
	if r.Snapshot().Gauges["build/info"] != 1 {
		t.Error("build/info gauge not set")
	}
	if info["go"] == "" {
		t.Errorf("build info missing go version: %v", info)
	}
}

// TestHealthzJSONDetail pins the /healthz JSON body: HealthDetail's map plus
// "status", 503 + "detail" when degraded.
func TestHealthzJSONDetail(t *testing.T) {
	healthy := true
	srv := &Server{
		Health: func() (bool, string) {
			if healthy {
				return true, ""
			}
			return false, "2 breakers open"
		},
		HealthDetail: func() map[string]any {
			return map[string]any{
				"queue_depth":    1,
				"queue_capacity": 64,
				"workers":        2,
				"open_breakers":  []string{},
				"build":          map[string]string{"go": "go1.x"},
			}
		},
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func() (int, map[string]any) {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type %q", ct)
		}
		b, _ := io.ReadAll(resp.Body)
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("healthz body not JSON: %v\n%s", err, b)
		}
		return resp.StatusCode, m
	}

	code, m := get()
	if code != 200 || m["status"] != "ok" {
		t.Errorf("healthy: code %d, status %v", code, m["status"])
	}
	for _, key := range []string{"queue_depth", "queue_capacity", "workers", "open_breakers", "build"} {
		if _, ok := m[key]; !ok {
			t.Errorf("healthz body missing %q: %v", key, m)
		}
	}
	if _, ok := m["detail"]; ok {
		t.Error("healthy body carries a degraded detail line")
	}

	healthy = false
	code, m = get()
	if code != 503 || m["status"] != "degraded" || m["detail"] != "2 breakers open" {
		t.Errorf("degraded: code %d, body %v", code, m)
	}
}
