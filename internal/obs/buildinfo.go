package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo returns the process's embedded build identity: the Go runtime
// version, the main module path/version, and the VCS revision and dirty flag
// when the binary was built from a checkout. Values the toolchain did not
// embed are omitted.
func BuildInfo() map[string]string {
	out := map[string]string{"go": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Path != "" {
		out["module"] = bi.Main.Path
	}
	if bi.Main.Version != "" {
		out["version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out["revision"] = s.Value
		case "vcs.time":
			out["build_time"] = s.Value
		case "vcs.modified":
			out["dirty"] = s.Value
		}
	}
	return out
}

// RegisterBuildInfo publishes the build-info gauge on the registry — the
// Prometheus info-metric idiom: a constant-1 gauge whose presence marks a
// live process of this build (the detail strings travel via /healthz, which
// serves BuildInfo itself; our gauges carry no labels). Returns the detail
// map so callers can embed it in their health payloads.
func RegisterBuildInfo(r *Registry) map[string]string {
	r.Gauge("build/info").Set(1)
	return BuildInfo()
}
