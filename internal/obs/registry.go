// Package obs is the observability layer of the STA engine: a lock-sharded
// metrics registry (atomic counters and fixed-bucket histograms with
// snapshot/merge/JSON export, publishable on expvar) plus the structured
// Observer/span interface the sta layer emits per-Analyze events through.
//
// The package is dependency-free (standard library only) and designed so
// that an unused registry or a nil Observer costs nothing on the engine's
// hot paths: every instrument is an atomic word or two, resolution of a
// metric by name happens once per Analyze, and the sta layer never even
// reads the clock unless an observer or registry is attached.
//
// Determinism contract: metric names containing the segment "time/" hold
// wall-clock observations and are inherently non-reproducible; everything
// else (counters, iteration/region histograms) is required to be
// bit-for-bit identical for serial and parallel runs of the same analysis.
// Snapshot.Deterministic strips the timing subset so that guarantee can be
// asserted byte-for-byte (see Snapshot.JSON).
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a valid no-op instrument, so callers may
// hold optional counters without branching.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous-value instrument: unlike a Counter it may
// go down (queue depth, pooled analyzers, live cache bytes). The zero value
// is ready to use; a nil *Gauge is a valid no-op instrument.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n (negative to decrease). No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic buckets. Bucket i
// counts observations v with bounds[i-1] < v <= bounds[i] (the first bucket
// has no lower bound); one extra overflow bucket counts v > bounds[last].
// Concurrent Observe calls are safe and lock-free.
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomicFloat
	// exemplars holds the most recent exemplar label (a trace ID) observed
	// into each bucket, last-writer-wins. Allocated lazily by the first
	// ObserveExemplar so plain histograms pay nothing.
	exemplarMu sync.Mutex
	exemplars  []string
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bounds. It panics on empty or non-increasing bounds — histogram shapes
// are static configuration, and a malformed shape is a programming error.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First index with bounds[i] >= v: the "less-or-equal" bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveExemplar records one value and attaches an exemplar label
// (typically a trace ID) to the bucket it lands in, last-writer-wins. The
// label lets a latency outlier in a histogram be followed straight to the
// flight-recorded request that caused it. No-op label handling: an empty
// exemplar degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, exemplar string) {
	if h == nil {
		return
	}
	if exemplar == "" {
		h.Observe(v)
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.exemplarMu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]string, len(h.counts))
	}
	h.exemplars[i] = exemplar
	h.exemplarMu.Unlock()
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	b := make([]float64, len(h.bounds))
	copy(b, h.bounds)
	return b
}

// snapshot copies the histogram's current state.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.Bounds(),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	h.exemplarMu.Lock()
	if h.exemplars != nil {
		s.Exemplars = append([]string(nil), h.exemplars...)
	}
	h.exemplarMu.Unlock()
	return s
}

// atomicFloat is a CAS-loop float64 accumulator.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// regShards is the shard count of the registry's name → metric maps. Metric
// resolution happens once per Analyze (handles are then held directly), so
// the shards only defend registration-time contention; 16 is plenty.
const regShards = 16

// Registry is a lock-sharded collection of named counters and histograms.
// Counter/Histogram are get-or-create and safe for concurrent use; the
// returned instruments are updated with atomics only, so the hot path never
// touches the registry locks.
type Registry struct {
	shards [regShards]regShard
}

type regShard struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].counters = map[string]*Counter{}
		r.shards[i].gauges = map[string]*Gauge{}
		r.shards[i].gaugeFns = map[string]func() int64{}
		r.shards[i].hists = map[string]*Histogram{}
	}
	return r
}

func (r *Registry) shard(name string) *regShard {
	// FNV-1a, inlined (mirrors the sta delay cache's shard selection).
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &r.shards[h%regShards]
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	sh := r.shard(name)
	sh.mu.RLock()
	c := sh.counters[name]
	sh.mu.RUnlock()
	if c != nil {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c = sh.counters[name]; c == nil {
		c = &Counter{}
		sh.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// A nil registry returns a nil (no-op) gauge. Gauge names share the
// namespace with counters and histograms but the three kinds never collide:
// the same name may not be used for two different instrument kinds (each
// kind has its own map, so reusing a name across kinds simply yields two
// series with the same name in the snapshot — don't).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	sh := r.shard(name)
	sh.mu.RLock()
	g := sh.gauges[name]
	sh.mu.RUnlock()
	if g != nil {
		return g
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if g = sh.gauges[name]; g == nil {
		g = &Gauge{}
		sh.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a sampled gauge: fn is evaluated at every Snapshot and
// its value written under name, overriding any edge-updated Gauge of the
// same name. Edge-updated gauges go stale whenever a state transition
// bypasses the instrumented edge (a queue that fills and then sits idle); a
// sampled gauge reads the truth at snapshot time. fn must be safe for
// concurrent use and must not touch the registry (it runs outside the shard
// locks, but re-entrancy is a design smell). Re-registering a name replaces
// the function. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	sh := r.shard(name)
	sh.mu.Lock()
	sh.gaugeFns[name] = fn
	sh.mu.Unlock()
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use. Re-registering an existing histogram with
// different bounds panics: a name must mean one shape for Merge to be
// well defined. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	sh := r.shard(name)
	sh.mu.RLock()
	h := sh.hists[name]
	sh.mu.RUnlock()
	if h == nil {
		sh.mu.Lock()
		if h = sh.hists[name]; h == nil {
			h = NewHistogram(bounds)
			sh.hists[name] = h
			sh.mu.Unlock()
			return h
		}
		sh.mu.Unlock()
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	for i := range bounds {
		if h.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
	}
	return h
}

// HistSnapshot is the frozen state of one histogram. Counts has one entry
// per bound plus a final overflow bucket.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	// Exemplars holds one trace-ID label per bucket (parallel to Counts),
	// present only when ObserveExemplar was ever used on the histogram —
	// plain histograms marshal exactly as before. Exemplars are inherently
	// run-dependent and are stripped from Deterministic snapshots.
	Exemplars []string `json:"exemplars,omitempty"`
}

// Quantile estimates the q-quantile (q in [0, 1]) of the recorded
// distribution by linear interpolation within the bucket that contains the
// target rank — the same estimator Prometheus's histogram_quantile uses.
// The first bucket interpolates over (0, Bounds[0]] (observations are
// assumed non-negative, as every engine metric is); a rank landing in the
// overflow bucket returns the last finite bound, since the bucket has no
// upper edge to interpolate toward. An empty histogram returns NaN, and q
// outside [0, 1] is clamped.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, b := range h.Bounds {
		if i >= len(h.Counts) {
			break
		}
		n := h.Counts[i]
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(b-lo)
		}
		cum += n
	}
	// Target rank sits in the overflow bucket (> last bound): no upper edge,
	// report the best lower bound we have.
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a frozen copy of a registry: plain maps, safe to marshal,
// merge and diff. encoding/json sorts map keys, so two snapshots with equal
// contents marshal to byte-identical JSON — the property the engine's
// serial-vs-parallel determinism check is asserted on.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	// Gauges is omitted from the JSON when no gauge was ever registered, so
	// registries that use only counters and histograms (the STA engine)
	// marshal exactly as they did before gauges existed — the byte-identity
	// determinism checks are unaffected.
	Gauges map[string]int64 `json:"gauges,omitempty"`
}

// Snapshot freezes the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{}}
	if r == nil {
		return s
	}
	type fnEntry struct {
		name string
		fn   func() int64
	}
	var fns []fnEntry
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for name, c := range sh.counters {
			s.Counters[name] = c.Value()
		}
		for name, g := range sh.gauges {
			if s.Gauges == nil {
				s.Gauges = map[string]int64{}
			}
			s.Gauges[name] = g.Value()
		}
		for name, fn := range sh.gaugeFns {
			fns = append(fns, fnEntry{name, fn})
		}
		for name, h := range sh.hists {
			s.Histograms[name] = h.snapshot()
		}
		sh.mu.RUnlock()
	}
	// Sampled gauges are evaluated outside the shard locks (a sampler is
	// allowed to take its own locks) and override same-name edge gauges:
	// the sampled value is the truth at snapshot time.
	for _, e := range fns {
		if s.Gauges == nil {
			s.Gauges = map[string]int64{}
		}
		s.Gauges[e.name] = e.fn()
	}
	return s
}

// Merge adds other into s (counter sums, gauge sums, bucket-wise histogram
// sums). Histograms present in both must share bounds; a shape mismatch is
// reported as an error and leaves that histogram untouched. The receiver is
// a pointer only so a gauge map can be created lazily; the counter and
// histogram maps are mutated in place as before.
func (s *Snapshot) Merge(other Snapshot) error {
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	// Gauges sum across replicas: queue depths and cache sizes aggregate
	// meaningfully, and summing keeps Merge associative like the counters.
	for name, v := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = map[string]int64{}
		}
		s.Gauges[name] += v
	}
	var firstErr error
	for name, oh := range other.Histograms {
		h, ok := s.Histograms[name]
		if !ok {
			// Deep-copy so later merges cannot alias other's slices.
			cp := HistSnapshot{
				Bounds: append([]float64(nil), oh.Bounds...),
				Counts: append([]int64(nil), oh.Counts...),
				Count:  oh.Count,
				Sum:    oh.Sum,
			}
			s.Histograms[name] = cp
			continue
		}
		if !equalBounds(h.Bounds, oh.Bounds) {
			if firstErr == nil {
				firstErr = fmt.Errorf("obs: merge: histogram %q bounds differ", name)
			}
			continue
		}
		for i := range h.Counts {
			h.Counts[i] += oh.Counts[i]
		}
		h.Count += oh.Count
		h.Sum += oh.Sum
		s.Histograms[name] = h
	}
	return firstErr
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsTiming reports whether a metric name holds wall-clock observations —
// by convention any name containing the path segment "time/". Timing
// metrics are excluded from the determinism guarantee (two runs never see
// the same nanoseconds) and from Deterministic snapshots.
func IsTiming(name string) bool { return strings.Contains(name, "time/") }

// Filter returns a snapshot containing only the metrics keep accepts.
func (s Snapshot) Filter(keep func(name string) bool) Snapshot {
	out := Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{}}
	for name, v := range s.Counters {
		if keep(name) {
			out.Counters[name] = v
		}
	}
	for name, h := range s.Histograms {
		if keep(name) {
			out.Histograms[name] = h
		}
	}
	for name, v := range s.Gauges {
		if keep(name) {
			if out.Gauges == nil {
				out.Gauges = map[string]int64{}
			}
			out.Gauges[name] = v
		}
	}
	return out
}

// Deterministic strips the timing metrics, leaving the subset that is
// required to be bit-for-bit identical across worker counts. Histogram
// exemplars (trace IDs — random per run) are stripped too.
func (s Snapshot) Deterministic() Snapshot {
	out := s.Filter(func(name string) bool { return !IsTiming(name) })
	for name, h := range out.Histograms {
		if h.Exemplars != nil {
			h.Exemplars = nil
			out.Histograms[name] = h
		}
	}
	return out
}

// JSON marshals the snapshot with sorted keys and stable indentation.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// publishMu serializes Publish calls: expvar.Publish panics on duplicate
// names, and expvar has no unpublish, so the guard has to live here.
var publishMu sync.Mutex

// Publish registers the registry on the process-wide expvar namespace under
// name; /debug/vars then serves live snapshots. It reports whether the
// registration took effect: expvar has no unpublish, so a name that is
// already taken (by an earlier Publish or any other expvar user) keeps its
// first registration and Publish returns false. It used to swallow that
// collision silently, which made a second registry published under the same
// name serve the FIRST registry's numbers with no indication anything was
// wrong — callers that care (the ops server, CLI tools wiring /debug/vars)
// must check the return and pick a distinct name.
func (r *Registry) Publish(name string) bool {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return true
}
