package obs

import "testing"

// TestFuncsNilFieldsIgnoreEvents: a zero Funcs observer accepts every event
// without panicking, and set fields receive theirs.
func TestFuncsNilFieldsIgnoreEvents(t *testing.T) {
	var zero Funcs
	zero.AnalyzeStart(AnalyzeStartInfo{})
	zero.LevelStart(LevelStartInfo{})
	zero.StageEval(StageEvalInfo{})
	zero.AnalyzeEnd(AnalyzeEndInfo{})

	got := 0
	f := Funcs{OnStageEval: func(StageEvalInfo) { got++ }}
	f.StageEval(StageEvalInfo{})
	f.AnalyzeStart(AnalyzeStartInfo{}) // ignored, nil field
	if got != 1 {
		t.Errorf("OnStageEval fired %d times, want 1", got)
	}
}

// TestMultiFansOut: every wrapped observer sees every event, in order.
func TestMultiFansOut(t *testing.T) {
	var a, b []string
	rec := func(dst *[]string) Observer {
		return Funcs{
			OnAnalyzeStart: func(AnalyzeStartInfo) { *dst = append(*dst, "start") },
			OnLevelStart:   func(LevelStartInfo) { *dst = append(*dst, "level") },
			OnStageEval:    func(StageEvalInfo) { *dst = append(*dst, "eval") },
			OnAnalyzeEnd:   func(AnalyzeEndInfo) { *dst = append(*dst, "end") },
		}
	}
	m := Multi{rec(&a), rec(&b)}
	m.AnalyzeStart(AnalyzeStartInfo{})
	m.LevelStart(LevelStartInfo{})
	m.StageEval(StageEvalInfo{})
	m.AnalyzeEnd(AnalyzeEndInfo{})
	want := []string{"start", "level", "eval", "end"}
	for _, got := range [][]string{a, b} {
		if len(got) != len(want) {
			t.Fatalf("observer saw %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("observer saw %v, want %v", got, want)
			}
		}
	}
	// Nop implements the interface and does nothing.
	var _ Observer = Nop{}
}
