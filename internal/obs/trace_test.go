package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// feedAnalysis drives one synthetic Analyze span stream through the
// recorder: 2 levels with 2 evals each, delivered in the given eval order
// with the given worker ids. The deterministic identity (Level, Item) and
// every cached-entry property are fixed; only schedule-dependent content
// (durations, delivery order, worker ids) varies between invocations.
func feedAnalysis(tr *TraceRecorder, order []int, workers []int, durScale time.Duration) {
	tr.AnalyzeStart(AnalyzeStartInfo{Stages: 2, Levels: 2, Items: 4, Outputs: 1, Workers: len(workers)})
	evals := []StageEvalInfo{
		{Level: 0, Item: 0, Output: "n1", Direction: "fall", QWM: QWMStats{Regions: 5, NRIters: 40}, Tier: "qwm"},
		{Level: 0, Item: 1, Output: "n1", Direction: "rise", CacheHit: true, QWM: QWMStats{Regions: 5, NRIters: 40}, Tier: "qwm"},
		{Level: 1, Item: 0, Output: "out", Direction: "fall", QWM: QWMStats{Regions: 7, NRIters: 61, DenseFallbacks: 1}, Tier: "qwm-bisect"},
		{Level: 1, Item: 1, Output: "out", Direction: "rise", Err: "no conducting path"},
	}
	byLevel := map[int][]StageEvalInfo{}
	for _, e := range evals {
		byLevel[e.Level] = append(byLevel[e.Level], e)
	}
	for level := 0; level < 2; level++ {
		tr.LevelStart(LevelStartInfo{Level: level, Levels: 2, Stages: 1, Items: 2})
		le := byLevel[level]
		for _, i := range order {
			e := le[i]
			e.Duration = time.Duration(i+1) * durScale
			e.Worker = workers[i%len(workers)]
			tr.StageEval(e)
		}
	}
	tr.AnalyzeEnd(AnalyzeEndInfo{
		Duration: 4 * durScale, CacheHits: 1, CacheMisses: 3, HitRatio: 0.25,
		StagesEvaluated: 3, EvalErrors: 1,
	})
}

func TestTraceRecorderWallClock(t *testing.T) {
	tr := NewTraceRecorder()
	if !tr.Empty() {
		t.Fatal("new recorder not empty")
	}
	feedAnalysis(tr, []int{0, 1}, []int{0, 3}, time.Microsecond)
	if tr.Empty() {
		t.Fatal("recorder empty after a recorded analysis")
	}

	events := tr.Trace().Events()
	var analyze, levels, evals, meta int
	for _, ev := range events {
		switch {
		case ev.Ph == "M":
			meta++
		case ev.Name == "analyze":
			analyze++
			if ev.Args["workers"] != 2 {
				t.Errorf("analyze args missing workers: %v", ev.Args)
			}
			if ev.Args["cache_hits"] != int64(1) || ev.Args["eval_errors"] != 1 {
				t.Errorf("analyze end args wrong: %v", ev.Args)
			}
		case ev.Cat == "sta":
			levels++
		case ev.Cat == "eval":
			evals++
			if ev.Tid < 1 {
				t.Errorf("eval span on tid %d, want worker thread >= 1", ev.Tid)
			}
			if _, ok := ev.Args["worker"]; !ok {
				t.Errorf("wall-clock eval span lacks worker arg: %v", ev.Args)
			}
		}
	}
	if analyze != 1 || levels != 2 || evals != 4 {
		t.Fatalf("span counts analyze=%d levels=%d evals=%d, want 1/2/4", analyze, levels, evals)
	}
	if meta < 3 { // process_name + scheduler + >=1 worker thread
		t.Fatalf("metadata events = %d, want >= 3", meta)
	}

	// Every X event must be self-balanced: dur present and >= 0, and eval
	// spans must nest inside their analysis span.
	var aStart, aEnd float64
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur == nil || *ev.Dur < 0 {
			t.Fatalf("X event %q without non-negative dur", ev.Name)
		}
		if ev.Name == "analyze" {
			aStart, aEnd = ev.TS, ev.TS+*ev.Dur
		}
	}
	for _, ev := range events {
		if ev.Ph != "X" || ev.Cat != "eval" {
			continue
		}
		if ev.TS < aStart-1e-9 || ev.TS+*ev.Dur > aEnd+1e-9 {
			t.Errorf("eval span [%g,%g] outside analyze span [%g,%g]",
				ev.TS, ev.TS+*ev.Dur, aStart, aEnd)
		}
	}

	// The JSON must parse back as a Chrome trace object.
	b, err := tr.Trace().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(parsed.TraceEvents) != len(events) {
		t.Fatalf("serialized %d events, built %d", len(parsed.TraceEvents), len(events))
	}
}

// TestTraceDeterministicByteIdentical pins the tentpole property: the same
// logical analysis observed under different schedules — shuffled delivery
// order, different worker ids, different durations — serializes to
// byte-identical deterministic JSON.
func TestTraceDeterministicByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var ref []byte
	for trial := 0; trial < 8; trial++ {
		tr := NewTraceRecorder()
		order := []int{0, 1}
		if trial%2 == 1 {
			order = []int{1, 0}
		}
		workers := []int{rng.Intn(8), rng.Intn(8)}
		feedAnalysis(tr, order, workers, time.Duration(1+rng.Intn(900))*time.Microsecond)
		b, err := tr.Trace().Deterministic().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(ref, b) {
			t.Fatalf("deterministic trace differs at trial %d:\n%s\n--- vs ---\n%s", trial, ref, b)
		}
	}

	// And the deterministic rendering must carry no schedule-dependent args.
	tr := NewTraceRecorder()
	feedAnalysis(tr, []int{1, 0}, []int{5, 2}, time.Millisecond)
	for _, ev := range tr.Trace().Deterministic().Events() {
		if ev.Tid != 0 {
			t.Errorf("deterministic event %q on tid %d, want 0", ev.Name, ev.Tid)
		}
		if _, ok := ev.Args["worker"]; ok {
			t.Errorf("deterministic event %q leaks worker id", ev.Name)
		}
		if _, ok := ev.Args["workers"]; ok {
			t.Errorf("deterministic event %q leaks the Workers setting", ev.Name)
		}
	}
}

func TestTraceRecorderRingAndReset(t *testing.T) {
	tr := &TraceRecorder{Limit: 2}
	for i := 0; i < 5; i++ {
		feedAnalysis(tr, []int{0, 1}, []int{0}, time.Microsecond)
	}
	events := tr.Trace().Events()
	pids := map[int]bool{}
	for _, ev := range events {
		pids[ev.Pid] = true
	}
	if len(pids) != 2 {
		t.Fatalf("ring retained %d analyses, want 2", len(pids))
	}
	b, err := tr.Trace().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Metadata["dropped_analyses"] != float64(3) {
		t.Errorf("metadata dropped_analyses = %v, want 3", parsed.Metadata["dropped_analyses"])
	}

	tr.Reset()
	if !tr.Empty() {
		t.Fatal("Reset left analyses behind")
	}

	// Events outside an AnalyzeStart bracket are dropped, not recorded.
	tr.LevelStart(LevelStartInfo{Level: 0})
	tr.StageEval(StageEvalInfo{})
	tr.AnalyzeEnd(AnalyzeEndInfo{})
	if !tr.Empty() {
		t.Fatal("orphan events created an analysis record")
	}
}

// TestTraceIncompleteAnalysis: a trace frozen mid-analysis renders the open
// analysis with an incomplete marker and still balances its spans.
func TestTraceIncompleteAnalysis(t *testing.T) {
	tr := NewTraceRecorder()
	tr.AnalyzeStart(AnalyzeStartInfo{Stages: 1, Levels: 1, Items: 2, Workers: 1})
	tr.LevelStart(LevelStartInfo{Level: 0, Levels: 1, Stages: 1, Items: 2})
	tr.StageEval(StageEvalInfo{Level: 0, Item: 0, Output: "out", Direction: "fall", Duration: time.Microsecond})
	for _, det := range []bool{false, true} {
		tc := tr.Trace()
		if det {
			tc = tc.Deterministic()
		}
		var analyze *TraceEvent
		for _, ev := range tc.Events() {
			if ev.Ph == "X" && ev.Name == "analyze" {
				e := ev
				analyze = &e
			}
			if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
				t.Fatalf("det=%v: unbalanced X event %q", det, ev.Name)
			}
		}
		if analyze == nil {
			t.Fatalf("det=%v: no analyze span", det)
		}
		if analyze.Args["incomplete"] != true {
			t.Errorf("det=%v: open analysis not marked incomplete: %v", det, analyze.Args)
		}
	}
	// Closing it afterwards still works.
	tr.AnalyzeEnd(AnalyzeEndInfo{})
	for _, ev := range tr.Trace().Events() {
		if ev.Name == "analyze" && fmt.Sprint(ev.Args["incomplete"]) == "true" {
			t.Error("closed analysis still marked incomplete")
		}
	}
}
