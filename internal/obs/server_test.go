package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func opsServer() (*Server, *Registry, *TraceRecorder) {
	r := NewRegistry()
	r.Counter("sta/analyzes").Inc()
	r.Histogram("sta/nr_iters_per_eval", []float64{1, 10}).Observe(4)
	tr := NewTraceRecorder()
	return &Server{Registry: r, Trace: tr}, r, tr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw
}

func TestServerEndpoints(t *testing.T) {
	srv, _, tr := opsServer()
	h := srv.Handler()

	if rw := get(t, h, "/"); rw.Code != 200 || !strings.Contains(rw.Body.String(), "/metrics") {
		t.Fatalf("index: code %d body %q", rw.Code, rw.Body.String())
	}
	if rw := get(t, h, "/nope"); rw.Code != 404 {
		t.Fatalf("unknown path: code %d, want 404", rw.Code)
	}

	rw := get(t, h, "/metrics")
	if rw.Code != 200 || !strings.Contains(rw.Header().Get("Content-Type"), "version=0.0.4") {
		t.Fatalf("metrics: code %d content-type %q", rw.Code, rw.Header().Get("Content-Type"))
	}
	if !strings.Contains(rw.Body.String(), "sta_analyzes 1") {
		t.Fatalf("metrics body missing counter:\n%s", rw.Body.String())
	}

	// Trace: 404 while empty, 200 with a Chrome trace once recorded.
	if rw := get(t, h, "/trace"); rw.Code != 404 {
		t.Fatalf("empty trace: code %d, want 404", rw.Code)
	}
	tr.AnalyzeStart(AnalyzeStartInfo{Stages: 1, Levels: 1, Items: 1, Workers: 1})
	tr.AnalyzeEnd(AnalyzeEndInfo{})
	rw = get(t, h, "/trace")
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), `"traceEvents"`) {
		t.Fatalf("trace: code %d body %q", rw.Code, rw.Body.String())
	}
	det := get(t, h, "/trace?deterministic=1")
	if det.Code != 200 || !strings.Contains(det.Body.String(), `"deterministic": true`) {
		t.Fatalf("deterministic trace: code %d", det.Code)
	}
	if !strings.Contains(det.Header().Get("Content-Disposition"), "deterministic") {
		t.Fatalf("deterministic trace filename: %q", det.Header().Get("Content-Disposition"))
	}

	if rw := get(t, h, "/debug/vars"); rw.Code != 200 || !strings.HasPrefix(rw.Body.String(), "{") {
		t.Fatalf("expvar: code %d", rw.Code)
	}
	if rw := get(t, h, "/debug/pprof/"); rw.Code != 200 {
		t.Fatalf("pprof index: code %d", rw.Code)
	}
	if rw := get(t, h, "/debug/pprof/cmdline"); rw.Code != 200 {
		t.Fatalf("pprof cmdline: code %d", rw.Code)
	}
}

func TestServerHealthz(t *testing.T) {
	srv, _, _ := opsServer()
	h := srv.Handler()
	if rw := get(t, h, "/healthz"); rw.Code != 200 || !strings.Contains(rw.Body.String(), "ok") {
		t.Fatalf("nil Health: code %d body %q", rw.Code, rw.Body.String())
	}
	healthy := true
	srv.Health = func() (bool, string) {
		if healthy {
			return true, ""
		}
		return false, "2 directions on rc-bound tier"
	}
	if rw := get(t, h, "/healthz"); rw.Code != 200 {
		t.Fatalf("healthy: code %d", rw.Code)
	}
	healthy = false
	rw := get(t, h, "/healthz")
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded: code %d, want 503", rw.Code)
	}
	if !strings.Contains(rw.Body.String(), "rc-bound") {
		t.Fatalf("degraded body lacks detail: %q", rw.Body.String())
	}
}

// TestServerStartShutdownNoLeak pins the lifecycle contract: Start serves on
// a real listener, Shutdown joins the serve goroutine, and the cycle leaks
// nothing — the goroutine count settles back to its starting level.
func TestServerStartShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	for cycle := 0; cycle < 3; cycle++ {
		srv, _, _ := opsServer()
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if srv.Addr() != addr {
			t.Fatalf("Addr() = %q, want %q", srv.Addr(), addr)
		}
		if _, err := srv.Start("127.0.0.1:0"); err == nil {
			t.Fatal("second Start on a running server did not error")
		}
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
			t.Fatalf("healthz over TCP: %d %q", resp.StatusCode, body)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		if srv.Addr() != "" {
			t.Fatal("Addr() non-empty after Shutdown")
		}
		// Shutdown of a stopped server is a no-op.
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// Idle HTTP keep-alive machinery can take a moment to unwind; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, after, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServerRestart(t *testing.T) {
	srv, reg, _ := opsServer()
	for i := 0; i < 2; i++ {
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		reg.Counter("sta/analyzes").Inc()
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		want := fmt.Sprintf("sta_analyzes %d", 2+i)
		if !strings.Contains(string(body), want) {
			t.Fatalf("restart %d: metrics missing %q", i, want)
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}
