package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeTrace builds a minimal retained trace.
func fakeTrace(id, route string, status int, dur time.Duration, start time.Time) *RequestTrace {
	return &RequestTrace{
		TraceID: id, Route: route, Status: status, Start: start, Dur: dur,
		Spans: []ReqSpan{{ID: "req", Name: "POST /" + route, Level: LevelRequest, Start: start, Dur: dur}},
	}
}

func TestFlightRecordFlushGet(t *testing.T) {
	f := NewFlightRecorder()
	defer f.Close()
	base := time.Now()
	f.Record(fakeTrace("aaa", "analyze", 200, time.Millisecond, base))
	f.Record(fakeTrace("bbb", "analyze", 503, 2*time.Millisecond, base.Add(time.Second)))
	f.Flush()

	if got := f.Get("aaa"); got == nil || got.TraceID != "aaa" {
		t.Fatalf("Get(aaa) = %v", got)
	}
	if f.Get("missing") != nil {
		t.Error("Get(missing) returned a trace")
	}
	list := f.List()
	if len(list) != 2 {
		t.Fatalf("List len %d, want 2", len(list))
	}
	// Newest first.
	if list[0].TraceID != "bbb" || list[1].TraceID != "aaa" {
		t.Errorf("List order %s, %s; want bbb, aaa", list[0].TraceID, list[1].TraceID)
	}
	// The errored request is retained in every class; classes are joined.
	if !strings.Contains(list[0].Classes, "recent") || !strings.Contains(list[0].Classes, "error") {
		t.Errorf("errored trace classes %q, want recent+error", list[0].Classes)
	}
	if list[1].Status != 200 || list[0].Status != 503 {
		t.Errorf("statuses %d/%d", list[1].Status, list[0].Status)
	}
}

// TestFlightRetentionClasses floods the ring and checks that the slowest and
// errored traces survive churn that evicts them from the recent ring.
func TestFlightRetentionClasses(t *testing.T) {
	f := NewFlightRecorder()
	defer f.Close()
	base := time.Now()
	// One very slow and one errored trace, recorded first so ring churn
	// would otherwise evict them.
	f.Record(fakeTrace("slowest", "analyze", 200, time.Hour, base))
	f.Record(fakeTrace("errored", "analyze", 500, time.Microsecond, base))
	// Now far more fast, healthy traces than the whole ring holds.
	total := flightShards*flightRingPerShard + 64
	for i := 0; i < total; i++ {
		f.Record(fakeTrace(fmt.Sprintf("t%04d", i), "analyze", 200, time.Millisecond, base.Add(time.Duration(i)*time.Second)))
	}
	f.Flush()
	if f.Get("slowest") == nil {
		t.Error("slowest trace evicted despite slow-N retention")
	}
	if f.Get("errored") == nil {
		t.Error("errored trace evicted despite error retention")
	}
	if f.Dropped() != 0 {
		// The queue is smaller than `total`, but Flush-free recording is
		// fast; drops are legitimate under extreme load, so only log.
		t.Logf("dropped %d traces on a full queue", f.Dropped())
	}
}

func TestFlightCloseIdempotentNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		f := NewFlightRecorder()
		f.Record(fakeTrace("x", "analyze", 200, time.Millisecond, time.Now()))
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() { defer wg.Done(); f.Close() }()
		}
		wg.Wait()
		// After Close, everything is a safe no-op.
		f.Record(fakeTrace("y", "analyze", 200, time.Millisecond, time.Now()))
		f.Flush()
		f.Close()
		if f.Get("y") != nil {
			t.Error("Record after Close inserted a trace")
		}
	}
	// The flusher goroutines must all have exited.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after close loop", before, runtime.NumGoroutine())
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(fakeTrace("x", "analyze", 200, 0, time.Now())) // must not panic
	f.Flush()
	f.Close()
	if f.Get("x") != nil || f.List() != nil || f.Dropped() != 0 {
		t.Error("nil recorder returned non-zero results")
	}
}

// TestFlightHTTP drives the obs.Server debug surface end to end:
// /debug/requests (HTML and JSON) and /trace/request/{id} (both renderings,
// plus the 400/404 paths).
func TestFlightHTTP(t *testing.T) {
	f := NewFlightRecorder()
	defer f.Close()
	f.Record(fakeTrace("feedface", "analyze", 200, 5*time.Millisecond, time.Now()))
	f.Flush()

	srv := &Server{Flight: f}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string, map[string]string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		hdr := map[string]string{
			"Content-Type":        resp.Header.Get("Content-Type"),
			"Content-Disposition": resp.Header.Get("Content-Disposition"),
		}
		return resp.StatusCode, string(b), hdr
	}

	code, body, _ := get("/debug/requests")
	if code != 200 || !strings.Contains(body, "feedface") || !strings.Contains(body, "/trace/request/feedface") {
		t.Errorf("HTML listing: code %d body %q", code, body)
	}
	code, body, hdr := get("/debug/requests?format=json")
	if code != 200 || hdr["Content-Type"] != "application/json" {
		t.Fatalf("JSON listing: code %d ct %q", code, hdr["Content-Type"])
	}
	var listing struct {
		Requests []TraceSummary `json:"requests"`
		Dropped  int64          `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Requests) != 1 || listing.Requests[0].TraceID != "feedface" || listing.Requests[0].Spans != 1 {
		t.Errorf("JSON listing content: %+v", listing)
	}

	code, body, hdr = get("/trace/request/feedface")
	if code != 200 || hdr["Content-Type"] != "application/json" {
		t.Errorf("trace export: code %d ct %q", code, hdr["Content-Type"])
	}
	if want := `inline; filename="request-feedface.trace.json"`; hdr["Content-Disposition"] != want {
		t.Errorf("Content-Disposition %q, want %q", hdr["Content-Disposition"], want)
	}
	if !strings.Contains(body, "feedface") {
		t.Error("wall-clock export missing trace id")
	}
	code, body, _ = get("/trace/request/feedface?deterministic=1")
	if code != 200 || strings.Contains(body, "feedface") {
		t.Errorf("deterministic export leaks trace id (code %d)", code)
	}

	if code, _, _ := get("/trace/request/"); code != 400 {
		t.Errorf("empty id: code %d, want 400", code)
	}
	if code, _, _ := get("/trace/request/unknown"); code != 404 {
		t.Errorf("unknown id: code %d, want 404", code)
	}
}
