package obs

import "time"

// Observer receives the structured span events of one timing analysis:
//
//	AnalyzeStart                          once, after levelization
//	  LevelStart                          once per dependency level, in order
//	    StageEval                         once per (stage output, direction)
//	AnalyzeEnd                            once, success, failure or cancel
//
// Ordering guarantees: AnalyzeStart precedes every other event; LevelStart
// for level k precedes every StageEval of level k and follows every event
// of levels < k; AnalyzeEnd is last. Within a level, StageEval events may
// be delivered CONCURRENTLY and in any order when the analyzer runs with
// Workers > 1 — implementations must be safe for concurrent StageEval
// calls, and consumers that need a stable order should sort by
// (Level, Item), which identifies each evaluation deterministically.
//
// A nil Observer on a request disables eventing entirely; the engine then
// never constructs an event or reads the clock.
type Observer interface {
	AnalyzeStart(AnalyzeStartInfo)
	LevelStart(LevelStartInfo)
	StageEval(StageEvalInfo)
	AnalyzeEnd(AnalyzeEndInfo)
}

// AnalyzeStartInfo describes the shape of the analysis about to run.
type AnalyzeStartInfo struct {
	// Stages is the number of extracted logic stages; Levels the number of
	// Kahn dependency levels they form.
	Stages, Levels int
	// Items is the total number of (stage output, direction) evaluations
	// the analysis will schedule (two per stage output).
	Items int
	// Outputs is the number of requested primary outputs.
	Outputs int
	// Workers is the effective worker-pool width (after defaulting).
	Workers int
}

// LevelStartInfo marks the start of one dependency level's evaluation.
type LevelStartInfo struct {
	// Level is the 0-based level index; Levels the total count.
	Level, Levels int
	// Stages and Items are this level's stage and work-item counts.
	Stages, Items int
}

// QWMStats mirrors the per-evaluation solver statistics the QWM engine
// reports (qwm.Stats): region count, Newton iterations, dense-LU recoveries
// after a tridiagonal pivot breakdown, and secant-capacitance re-solves.
type QWMStats struct {
	Regions        int
	NRIters        int
	DenseFallbacks int
	CapResolves    int
}

// StageEvalInfo describes one resolved (stage output, direction) work item.
// For cache hits, QWM carries the statistics recorded when the entry was
// originally computed; Duration is then just the lookup (and possibly the
// single-flight wait) time.
type StageEvalInfo struct {
	// Level and Item locate the work item deterministically: Item is the
	// index within the level's schedule (fall then rise per output, outputs
	// in stage order), identical for serial and parallel runs.
	Level, Item int
	// Output is the stage output net; Direction is "rise" or "fall".
	Output    string
	Direction string
	// CacheHit reports whether the delay cache already held the entry
	// (including waits on a concurrent computation of the same key).
	CacheHit bool
	// Duration is the wall time of the cache resolution — the full QWM
	// evaluation on a miss, the lookup/wait on a hit.
	Duration time.Duration
	// QWM carries the solver statistics of the evaluation that produced
	// this entry.
	QWM QWMStats
	// Tier names the degradation-ladder rung that produced this timing
	// ("qwm", "qwm-bisect", "spice", "rc-bound"); empty when the direction
	// failed outright. Like the solver stats, it is a property of the cached
	// entry and therefore deterministic at any Workers setting.
	Tier string
	// Worker is the 0-based worker-pool slot that resolved this item: 0 on
	// the serial path, arbitrary under Workers > 1. Schedule-dependent by
	// nature — consumers asserting determinism must ignore it (the trace
	// exporter's Deterministic mode strips it).
	Worker int
	// Err is non-empty when the direction's evaluation failed (no
	// conducting path or a convergence failure).
	Err string
}

// AnalyzeEndInfo summarizes one completed (or aborted) analysis.
type AnalyzeEndInfo struct {
	// Duration is the full Analyze wall time.
	Duration time.Duration
	// CacheHits/CacheMisses count this analysis's cache resolutions; their
	// sum is the number of StageEval events delivered.
	CacheHits, CacheMisses int64
	// HitRatio is CacheHits / (CacheHits + CacheMisses), 0 when no lookups
	// were performed.
	HitRatio float64
	// StagesEvaluated, EvalErrors and SlewFallbacks mirror the Result
	// fields (zero when the analysis failed before producing a result).
	StagesEvaluated int
	EvalErrors      int
	SlewFallbacks   int
	// Err is the analysis error, if any. Cancelled additionally marks
	// context cancellation/deadline errors.
	Err       error
	Cancelled bool
}

// Nop is an Observer that ignores every event. Useful as an explicit
// stand-in and as the overhead baseline in benchmarks.
type Nop struct{}

func (Nop) AnalyzeStart(AnalyzeStartInfo) {}
func (Nop) LevelStart(LevelStartInfo)     {}
func (Nop) StageEval(StageEvalInfo)       {}
func (Nop) AnalyzeEnd(AnalyzeEndInfo)     {}

// Funcs adapts free functions to the Observer interface; nil fields ignore
// their event. Handy for tests and one-off instrumentation.
type Funcs struct {
	OnAnalyzeStart func(AnalyzeStartInfo)
	OnLevelStart   func(LevelStartInfo)
	OnStageEval    func(StageEvalInfo)
	OnAnalyzeEnd   func(AnalyzeEndInfo)
}

func (f Funcs) AnalyzeStart(i AnalyzeStartInfo) {
	if f.OnAnalyzeStart != nil {
		f.OnAnalyzeStart(i)
	}
}

func (f Funcs) LevelStart(i LevelStartInfo) {
	if f.OnLevelStart != nil {
		f.OnLevelStart(i)
	}
}

func (f Funcs) StageEval(i StageEvalInfo) {
	if f.OnStageEval != nil {
		f.OnStageEval(i)
	}
}

func (f Funcs) AnalyzeEnd(i AnalyzeEndInfo) {
	if f.OnAnalyzeEnd != nil {
		f.OnAnalyzeEnd(i)
	}
}

// Multi fans every event out to each observer in order. StageEval
// concurrency propagates: each wrapped observer must itself tolerate
// concurrent StageEval calls under Workers > 1.
type Multi []Observer

func (m Multi) AnalyzeStart(i AnalyzeStartInfo) {
	for _, o := range m {
		o.AnalyzeStart(i)
	}
}

func (m Multi) LevelStart(i LevelStartInfo) {
	for _, o := range m {
		o.LevelStart(i)
	}
}

func (m Multi) StageEval(i StageEvalInfo) {
	for _, o := range m {
		o.StageEval(i)
	}
}

func (m Multi) AnalyzeEnd(i AnalyzeEndInfo) {
	for _, o := range m {
		o.AnalyzeEnd(i)
	}
}
