package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the engine's ops/debug HTTP surface: Prometheus metrics, expvar,
// pprof, a health probe and the last recorded Chrome trace, all served from
// one mux. The zero value is usable (every endpoint degrades gracefully when
// its backing component is nil); populate the fields, then either mount
// Handler on an existing server or call Start/Shutdown for a managed
// listener with graceful shutdown.
//
//	/            endpoint index (text)
//	/metrics     Prometheus text exposition of Registry.Snapshot()
//	/healthz     200 "ok" when Health() is clean, 503 + detail when degraded
//	/trace       the recorder's trace as Chrome trace-event JSON (download);
//	             ?deterministic=1 serves the schedule-independent variant
//	/debug/vars  expvar (live snapshots for every Publish'd registry)
//	/debug/pprof/{,cmdline,profile,symbol,trace}  net/http/pprof
type Server struct {
	// Registry backs /metrics. Nil serves an empty (but valid) exposition.
	Registry *Registry
	// Health reports process health for /healthz: ok and a human-readable
	// detail line. Nil means unconditionally healthy.
	Health func() (ok bool, detail string)
	// Trace backs /trace. Nil (or an empty recorder) responds 404 until an
	// analysis has been recorded.
	Trace *TraceRecorder
	// Flight backs the request-trace surface: /debug/requests (retained
	// request listing) and /trace/request/{id} (per-request Chrome trace).
	// Nil leaves both routes unmounted.
	Flight *FlightRecorder
	// HealthDetail, when set, switches /healthz to a JSON body: the returned
	// map (queue depth, worker count, open breakers, build info — whatever
	// the process wants probes and humans to see) plus "status" and, when
	// degraded, "detail" from Health. Nil keeps the legacy one-line text
	// body.
	HealthDetail func() map[string]any
	// Extra maps additional route patterns to handlers mounted on the same
	// mux — how the analysis front door (internal/service: /analyze,
	// /result/) shares one listener with the ops surface. Patterns here must
	// not collide with the built-in routes.
	Extra map[string]http.Handler

	mu   sync.Mutex
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// Handler builds the ops mux. Safe to call multiple times; each call
// returns a fresh mux over the same components.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/trace", s.handleTrace)
	if s.Flight != nil {
		mux.HandleFunc("/debug/requests", s.Flight.handleRequests)
		mux.HandleFunc("/trace/request/", s.Flight.handleRequestTrace)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range s.Extra {
		mux.Handle(pattern, h)
	}
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `qwm ops server

/metrics        Prometheus text exposition
/healthz        health probe (503 when the last analysis degraded)
/trace          Chrome trace-event JSON of the recorded analyses
/debug/vars     expvar
/debug/pprof/   pprof profiles
`)
	if s.Flight != nil {
		fmt.Fprint(w, `/debug/requests       flight-recorded request traces (HTML; ?format=json)
/trace/request/{id}   one request as Chrome trace-event JSON (?deterministic=1)
`)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var snap Snapshot
	if s.Registry != nil {
		snap = s.Registry.Snapshot()
	}
	_ = snap.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ok, detail := true, "ok"
	if s.Health != nil {
		ok, detail = s.Health()
		if ok && detail == "" {
			detail = "ok"
		}
	}
	if s.HealthDetail != nil {
		body := s.HealthDetail()
		if body == nil {
			body = map[string]any{}
		}
		if ok {
			body["status"] = "ok"
		} else {
			body["status"] = "degraded"
			body["detail"] = detail
		}
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded: %s\n", detail)
		return
	}
	fmt.Fprintf(w, "%s\n", detail)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.Trace == nil || s.Trace.Empty() {
		http.Error(w, "no trace recorded", http.StatusNotFound)
		return
	}
	t := s.Trace.Trace()
	name := "sta-trace.json"
	if v := r.URL.Query().Get("deterministic"); v == "1" || v == "true" {
		t = t.Deterministic()
		name = "sta-trace-deterministic.json"
	}
	b, err := t.JSON()
	if err != nil {
		http.Error(w, "trace serialization: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="`+name+`"`)
	_, _ = w.Write(b)
}

// Start listens on addr ("host:port"; ":0" picks a free port) and serves the
// ops mux on a background goroutine. It returns the bound address. Starting
// an already-started server is an error; after Shutdown the server may be
// started again.
func (s *Server) Start(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv != nil {
		return "", fmt.Errorf("obs: server already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: server listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	done := make(chan struct{})
	s.srv, s.ln, s.done = srv, ln, done
	go func() {
		defer close(done)
		_ = srv.Serve(ln) // http.ErrServerClosed on Shutdown
	}()
	return ln.Addr().String(), nil
}

// Addr returns the listener address of a started server ("" when stopped).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops a started server: the listener closes, in-flight
// requests get until ctx's deadline to finish, and the serve goroutine is
// joined before Shutdown returns — no goroutine outlives the call (the leak
// test pins this). Shutting down a stopped server is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv, done := s.srv, s.done
	s.srv, s.ln, s.done = nil, nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Shutdown(ctx)
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}
