package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"html"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder is the always-on forensic store of completed request
// traces: a bounded lock-sharded ring of the most recent requests, plus two
// retention classes that survive ring churn — the slowest N and the last N
// errored requests. Recording is a non-blocking channel send (a full queue
// drops and counts, never stalls the serving path); a single flusher
// goroutine owns all insertion, so the rings need locks only against
// readers. Flush() is an ack barrier and Close() joins the flusher — the
// same lifecycle idiom as the remote-cache write-behind queue.
//
// Mount the HTTP surface via obs.Server.Flight: /debug/requests lists
// retained traces (HTML, or JSON with ?format=json) and
// /trace/request/{id} exports one as Chrome trace-event JSON
// (?deterministic=1 for the byte-stable rendering).
type FlightRecorder struct {
	shards  [flightShards]flightShard
	slowMu  sync.Mutex
	slow    []*RequestTrace // sorted by Dur descending, capped at slowN
	errMu   sync.Mutex
	errs    []*RequestTrace // most recent errored, capped at errN
	queue   chan flightMsg
	done    chan struct{}
	joined  chan struct{}
	closed  atomic.Bool
	dropped atomic.Int64

	ringPerShard, slowN, errN int
}

const (
	flightShards       = 8
	flightRingPerShard = 16 // 128 recent traces total
	flightSlowN        = 16
	flightErrN         = 16
	flightQueueLen     = 256
)

type flightShard struct {
	mu   sync.Mutex
	ring []*RequestTrace
	next int
}

type flightMsg struct {
	t   *RequestTrace
	ack chan struct{}
}

// NewFlightRecorder starts an empty recorder (and its flusher goroutine).
func NewFlightRecorder() *FlightRecorder {
	f := &FlightRecorder{
		queue:        make(chan flightMsg, flightQueueLen),
		done:         make(chan struct{}),
		joined:       make(chan struct{}),
		ringPerShard: flightRingPerShard,
		slowN:        flightSlowN,
		errN:         flightErrN,
	}
	go f.run()
	return f
}

// Record enqueues one completed trace. Non-blocking: a full queue drops the
// trace and counts it — forensics must never add latency to serving.
func (f *FlightRecorder) Record(t *RequestTrace) {
	if f == nil || t == nil || f.closed.Load() {
		return
	}
	select {
	case f.queue <- flightMsg{t: t}:
	default:
		f.dropped.Add(1)
	}
}

// Dropped reports how many traces were discarded on a full queue.
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	return f.dropped.Load()
}

// Flush blocks until every trace recorded before the call is inserted.
func (f *FlightRecorder) Flush() {
	if f == nil || f.closed.Load() {
		return
	}
	ack := make(chan struct{})
	select {
	case f.queue <- flightMsg{ack: ack}:
		select {
		case <-ack:
		case <-f.joined:
		}
	case <-f.done:
	}
}

// Close drains the queue and joins the flusher goroutine. Idempotent.
func (f *FlightRecorder) Close() {
	if f == nil || !f.closed.CompareAndSwap(false, true) {
		if f != nil {
			<-f.joined
		}
		return
	}
	close(f.done)
	<-f.joined
}

func (f *FlightRecorder) run() {
	defer close(f.joined)
	for {
		select {
		case m := <-f.queue:
			f.handle(m)
		case <-f.done:
			for {
				select {
				case m := <-f.queue:
					f.handle(m)
				default:
					return
				}
			}
		}
	}
}

func (f *FlightRecorder) handle(m flightMsg) {
	if m.ack != nil {
		close(m.ack)
		return
	}
	f.insert(m.t)
}

func (f *FlightRecorder) insert(t *RequestTrace) {
	sh := &f.shards[f.shardOf(t.TraceID)]
	sh.mu.Lock()
	if len(sh.ring) < f.ringPerShard {
		sh.ring = append(sh.ring, t)
	} else {
		sh.ring[sh.next] = t
		sh.next = (sh.next + 1) % f.ringPerShard
	}
	sh.mu.Unlock()

	f.slowMu.Lock()
	f.slow = append(f.slow, t)
	sort.Slice(f.slow, func(i, j int) bool { return f.slow[i].Dur > f.slow[j].Dur })
	if len(f.slow) > f.slowN {
		f.slow = f.slow[:f.slowN]
	}
	f.slowMu.Unlock()

	if t.Err() {
		f.errMu.Lock()
		f.errs = append(f.errs, t)
		if len(f.errs) > f.errN {
			f.errs = append(f.errs[:0], f.errs[len(f.errs)-f.errN:]...)
		}
		f.errMu.Unlock()
	}
}

func (f *FlightRecorder) shardOf(traceID string) int {
	h := fnv.New32a()
	h.Write([]byte(traceID))
	return int(h.Sum32() % flightShards)
}

// Get returns the retained trace with the given ID, searching the recent
// ring and both retention classes.
func (f *FlightRecorder) Get(traceID string) *RequestTrace {
	if f == nil {
		return nil
	}
	sh := &f.shards[f.shardOf(traceID)]
	sh.mu.Lock()
	for _, t := range sh.ring {
		if t.TraceID == traceID {
			sh.mu.Unlock()
			return t
		}
	}
	sh.mu.Unlock()
	f.slowMu.Lock()
	for _, t := range f.slow {
		if t.TraceID == traceID {
			f.slowMu.Unlock()
			return t
		}
	}
	f.slowMu.Unlock()
	f.errMu.Lock()
	defer f.errMu.Unlock()
	for _, t := range f.errs {
		if t.TraceID == traceID {
			return t
		}
	}
	return nil
}

// TraceSummary is one row of the /debug/requests listing.
type TraceSummary struct {
	TraceID string    `json:"trace_id"`
	Route   string    `json:"route"`
	Status  int       `json:"status"`
	Start   time.Time `json:"start"`
	DurMS   float64   `json:"dur_ms"`
	Spans   int       `json:"spans"`
	Classes string    `json:"classes"` // retention classes: "recent", "slow", "error"
}

// List returns every retained trace, newest first, deduplicated across
// retention classes.
func (f *FlightRecorder) List() []TraceSummary {
	if f == nil {
		return nil
	}
	type entry struct {
		t       *RequestTrace
		classes []string
	}
	byID := map[string]*entry{}
	collect := func(t *RequestTrace, class string) {
		e, ok := byID[t.TraceID]
		if !ok {
			e = &entry{t: t}
			byID[t.TraceID] = e
		}
		e.classes = append(e.classes, class)
	}
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for _, t := range sh.ring {
			collect(t, "recent")
		}
		sh.mu.Unlock()
	}
	f.slowMu.Lock()
	for _, t := range f.slow {
		collect(t, "slow")
	}
	f.slowMu.Unlock()
	f.errMu.Lock()
	for _, t := range f.errs {
		collect(t, "error")
	}
	f.errMu.Unlock()

	out := make([]TraceSummary, 0, len(byID))
	for _, e := range byID {
		out = append(out, TraceSummary{
			TraceID: e.t.TraceID, Route: e.t.Route, Status: e.t.Status,
			Start: e.t.Start, DurMS: e.t.Dur.Seconds() * 1e3,
			Spans: len(e.t.Spans), Classes: strings.Join(e.classes, ","),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// handleRequests serves the /debug/requests listing.
func (f *FlightRecorder) handleRequests(w http.ResponseWriter, r *http.Request) {
	list := f.List()
	if r.URL.Query().Get("format") == "json" || strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"requests": list,
			"dropped":  f.Dropped(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<!doctype html><title>flight recorder</title><h1>Recorded requests</h1>\n")
	fmt.Fprintf(w, "<p>%d retained, %d dropped on a full queue. <a href=\"?format=json\">JSON</a></p>\n", len(list), f.Dropped())
	fmt.Fprint(w, "<table border=1 cellpadding=4><tr><th>trace</th><th>route</th><th>status</th><th>start</th><th>dur (ms)</th><th>spans</th><th>retained as</th></tr>\n")
	for _, s := range list {
		fmt.Fprintf(w, "<tr><td><a href=\"/trace/request/%s\">%s</a></td><td>%s</td><td>%d</td><td>%s</td><td>%.3f</td><td>%d</td><td>%s</td></tr>\n",
			html.EscapeString(s.TraceID), html.EscapeString(s.TraceID),
			html.EscapeString(s.Route), s.Status,
			s.Start.Format(time.RFC3339Nano), s.DurMS, s.Spans,
			html.EscapeString(s.Classes))
	}
	fmt.Fprint(w, "</table>\n")
}

// handleRequestTrace serves /trace/request/{id}: one retained trace as
// Chrome trace-event JSON (?deterministic=1 for the byte-stable form).
func (f *FlightRecorder) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/trace/request/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "flight: expected /trace/request/{trace-id}", http.StatusBadRequest)
		return
	}
	t := f.Get(id)
	if t == nil {
		http.Error(w, "flight: no retained trace with that id", http.StatusNotFound)
		return
	}
	det := r.URL.Query().Get("deterministic") == "1"
	b, err := t.ChromeJSON(det)
	if err != nil {
		http.Error(w, "flight: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("inline; filename=%q", "request-"+id+".trace.json"))
	w.Write(b)
}
