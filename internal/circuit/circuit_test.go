package circuit

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// nand2 builds a 2-input NAND netlist: two series NMOS to ground, two
// parallel PMOS to VDD, output node "out", internal node "n1".
func nand2() *Netlist {
	n := &Netlist{}
	n.AddTransistor(&Transistor{Name: "mn1", Kind: KindNMOS, Drain: "n1", Gate: "a", Source: "0", Body: "0", W: 1e-6, L: 0.35e-6})
	n.AddTransistor(&Transistor{Name: "mn2", Kind: KindNMOS, Drain: "out", Gate: "b", Source: "n1", Body: "0", W: 1e-6, L: 0.35e-6})
	n.AddTransistor(&Transistor{Name: "mp1", Kind: KindPMOS, Drain: "out", Gate: "a", Source: "vdd", Body: "vdd", W: 2e-6, L: 0.35e-6})
	n.AddTransistor(&Transistor{Name: "mp2", Kind: KindPMOS, Drain: "out", Gate: "b", Source: "vdd", Body: "vdd", W: 2e-6, L: 0.35e-6})
	return n
}

func TestCanonName(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"GND", "0"}, {"Vss", "0"}, {"ground", "0"}, {"0", "0"},
		{"VDD", "vdd"}, {" N1 ", "n1"},
	} {
		if got := CanonName(c.in); got != c.want {
			t.Errorf("CanonName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNetlistNodes(t *testing.T) {
	n := nand2()
	nodes := n.Nodes()
	want := []string{"0", "a", "b", "n1", "out", "vdd"}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
}

func TestNetlistValidate(t *testing.T) {
	n := nand2()
	if err := n.Validate(); err != nil {
		t.Fatalf("valid netlist rejected: %v", err)
	}
	bad := &Netlist{}
	bad.AddTransistor(&Transistor{Name: "mx", Kind: KindNMOS, Drain: "x", Gate: "g", Source: "x", Body: "0", W: 1e-6, L: 1e-6})
	if err := bad.Validate(); err == nil {
		t.Error("drain==source not caught")
	}
	bad2 := &Netlist{}
	bad2.AddTransistor(&Transistor{Name: "my", Kind: KindNMOS, Drain: "a", Gate: "g", Source: "b", Body: "0", W: 0, L: 1e-6})
	if err := bad2.Validate(); err == nil {
		t.Error("zero width not caught")
	}
	bad3 := &Netlist{}
	bad3.AddResistor("r1", "a", "a", 100)
	if err := bad3.Validate(); err == nil {
		t.Error("resistor self-loop not caught")
	}
	bad4 := &Netlist{}
	bad4.AddResistor("r1", "a", "b", -5)
	if err := bad4.Validate(); err == nil {
		t.Error("negative resistance not caught")
	}
}

func TestExtractStagesSingleGate(t *testing.T) {
	st := ExtractStages(nand2(), []string{"out"})
	if len(st) != 1 {
		t.Fatalf("got %d stages, want 1", len(st))
	}
	s := st[0]
	if len(s.Edges) != 4 {
		t.Errorf("edges = %d, want 4", len(s.Edges))
	}
	if len(s.Inputs) != 2 || s.Inputs[0] != "a" || s.Inputs[1] != "b" {
		t.Errorf("inputs = %v", s.Inputs)
	}
	if len(s.Outputs) != 1 || s.Outputs[0] != "out" {
		t.Errorf("outputs = %v", s.Outputs)
	}
}

func TestExtractStagesTwoGatesSplitAtGateBoundary(t *testing.T) {
	// Inverter driving an inverter: two stages, split at the gate net.
	n := &Netlist{}
	n.AddTransistor(&Transistor{Name: "mn1", Kind: KindNMOS, Drain: "mid", Gate: "in", Source: "0", Body: "0", W: 1e-6, L: 0.35e-6})
	n.AddTransistor(&Transistor{Name: "mp1", Kind: KindPMOS, Drain: "mid", Gate: "in", Source: "vdd", Body: "vdd", W: 2e-6, L: 0.35e-6})
	n.AddTransistor(&Transistor{Name: "mn2", Kind: KindNMOS, Drain: "out", Gate: "mid", Source: "0", Body: "0", W: 1e-6, L: 0.35e-6})
	n.AddTransistor(&Transistor{Name: "mp2", Kind: KindPMOS, Drain: "out", Gate: "mid", Source: "vdd", Body: "vdd", W: 2e-6, L: 0.35e-6})
	stages := ExtractStages(n, []string{"out"})
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	// "mid" drives a gate, so it must be an output of its stage.
	var midStage *Stage
	for _, s := range stages {
		for _, o := range s.Outputs {
			if o == "mid" {
				midStage = s
			}
		}
	}
	if midStage == nil {
		t.Fatal("no stage outputs 'mid'")
	}
}

func TestExtractStagesPassTransistorMerges(t *testing.T) {
	// NAND output channel-connected through a pass transistor (paper Fig. 1):
	// one stage spanning both.
	n := nand2()
	n.AddTransistor(&Transistor{Name: "mpass", Kind: KindNMOS, Drain: "w1", Gate: "en", Source: "out", Body: "0", W: 1e-6, L: 0.35e-6})
	stages := ExtractStages(n, []string{"w1"})
	if len(stages) != 1 {
		t.Fatalf("got %d stages, want 1 merged stage", len(stages))
	}
	if got := len(stages[0].Edges); got != 5 {
		t.Errorf("edges = %d, want 5", got)
	}
	found := false
	for _, in := range stages[0].Inputs {
		if in == "en" {
			found = true
		}
	}
	if !found {
		t.Errorf("inputs = %v, want to include en", stages[0].Inputs)
	}
}

func TestExtractStagesResistorJoins(t *testing.T) {
	// Two NMOS joined by a wire resistor: single stage (decoder-tree shape).
	n := &Netlist{}
	n.AddTransistor(&Transistor{Name: "m1", Kind: KindNMOS, Drain: "x", Gate: "g1", Source: "0", Body: "0", W: 1e-6, L: 0.35e-6})
	n.AddResistor("rw", "x", "y", 500)
	n.AddTransistor(&Transistor{Name: "m2", Kind: KindNMOS, Drain: "out", Gate: "g2", Source: "y", Body: "0", W: 1e-6, L: 0.35e-6})
	stages := ExtractStages(n, []string{"out"})
	if len(stages) != 1 {
		t.Fatalf("got %d stages, want 1", len(stages))
	}
	if len(stages[0].Edges) != 3 {
		t.Errorf("edges = %d, want 3", len(stages[0].Edges))
	}
}

func TestEnumerateAndLongestPath(t *testing.T) {
	stages := ExtractStages(nand2(), []string{"out"})
	s := stages[0]

	down := EnumeratePaths(s, "out", GroundNode)
	if len(down) != 1 {
		t.Fatalf("pull-down paths = %d, want 1", len(down))
	}
	p := down[0]
	if p.Transistors() != 2 {
		t.Errorf("pull-down length = %d, want 2", p.Transistors())
	}
	if p.Elems[0].Lower != "0" || p.Elems[0].Upper != "n1" ||
		p.Elems[1].Lower != "n1" || p.Elems[1].Upper != "out" {
		t.Errorf("path orientation wrong: %+v", p.Elems)
	}

	up := EnumeratePaths(s, "out", SupplyNode)
	if len(up) != 2 {
		t.Fatalf("pull-up paths = %d, want 2 (parallel PMOS)", len(up))
	}

	lp, err := LongestPath(s, "out", GroundNode)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Transistors() != 2 {
		t.Errorf("longest path K = %d", lp.Transistors())
	}
	if _, err := LongestPath(s, "n1", "vdd"); err == nil {
		// n1 connects to vdd only through out; that path exists, so no error
		// expected — sanity only.
		_ = err
	}
	if _, err := LongestPath(s, "nonexistent", GroundNode); err == nil {
		t.Error("expected error for unknown output node")
	}
}

func TestPathInternalNodes(t *testing.T) {
	stages := ExtractStages(nand2(), []string{"out"})
	p, err := LongestPath(stages[0], "out", GroundNode)
	if err != nil {
		t.Fatal(err)
	}
	nodes := p.InternalNodes()
	if len(nodes) != 2 || nodes[0] != "n1" || nodes[1] != "out" {
		t.Errorf("internal nodes = %v", nodes)
	}
}

func TestPathThroughWire(t *testing.T) {
	n := &Netlist{}
	n.AddTransistor(&Transistor{Name: "m1", Kind: KindNMOS, Drain: "x", Gate: "g1", Source: "0", Body: "0", W: 1e-6, L: 0.35e-6})
	n.AddResistor("rw", "x", "y", 500)
	n.AddTransistor(&Transistor{Name: "m2", Kind: KindNMOS, Drain: "out", Gate: "g2", Source: "y", Body: "0", W: 1e-6, L: 0.35e-6})
	stages := ExtractStages(n, []string{"out"})
	p, err := LongestPath(stages[0], "out", GroundNode)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Elems) != 3 || p.Transistors() != 2 {
		t.Errorf("elems = %d, K = %d; want 3, 2", len(p.Elems), p.Transistors())
	}
	if p.Elems[1].Edge.Kind != KindWire {
		t.Errorf("middle element should be the wire, got %v", p.Elems[1].Edge.Kind)
	}
}

func TestDeviceKindString(t *testing.T) {
	if KindNMOS.String() != "nmos" || KindPMOS.String() != "pmos" ||
		KindWire.String() != "wire" || KindCap.String() != "cap" || KindVSrc.String() != "vsrc" {
		t.Error("DeviceKind strings wrong")
	}
	if DeviceKind(99).String() != "unknown" {
		t.Error("unknown kind string")
	}
}

// Property: stage extraction is a partition — every transistor with a
// non-rail channel terminal appears in exactly one stage, and no two stages
// share an internal node.
func TestExtractStagesPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := &Netlist{}
		nNodes := 4 + r.Intn(10)
		nodeName := func(i int) string {
			switch i {
			case 0:
				return "0"
			case 1:
				return "vdd"
			default:
				return fmt.Sprintf("n%d", i)
			}
		}
		nDev := 3 + r.Intn(12)
		for i := 0; i < nDev; i++ {
			d := nodeName(r.Intn(nNodes))
			s := nodeName(r.Intn(nNodes))
			if d == s {
				continue
			}
			kind := KindNMOS
			if r.Intn(2) == 1 {
				kind = KindPMOS
			}
			n.AddTransistor(&Transistor{
				Name: fmt.Sprintf("m%d", i), Kind: kind,
				Drain: d, Gate: fmt.Sprintf("g%d", r.Intn(4)), Source: s,
				Body: "0", W: 1e-6, L: 0.35e-6,
			})
		}
		if len(n.Transistors) == 0 {
			return true
		}
		stages := ExtractStages(n, nil)
		// Count edge occurrences across stages.
		edgeCount := map[*Transistor]int{}
		nodeOwner := map[string]string{}
		for _, st := range stages {
			for _, e := range st.Edges {
				if e.Ref != nil {
					edgeCount[e.Ref]++
				}
			}
			for _, nd := range st.Nodes {
				if owner, dup := nodeOwner[nd]; dup && owner != st.Name {
					return false // node in two stages
				}
				nodeOwner[nd] = st.Name
			}
		}
		for _, tr := range n.Transistors {
			// Devices whose both channel terminals are rails belong to no
			// stage; all others must appear exactly once.
			railD := tr.Drain == "0" || tr.Drain == "vdd"
			railS := tr.Source == "0" || tr.Source == "vdd"
			want := 1
			if railD && railS {
				want = 0
			}
			if edgeCount[tr] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
