package circuit

import (
	"fmt"
	"sort"
)

// Stage is the paper's Definition 1: a CMOS logic stage as a polar directed
// graph. Vertices are circuit nodes (with VDD as source pole and ground as
// sink pole); edges are the channel terminals of transistors and resistive
// wire segments. Inputs are the gate nets of the stage's transistors;
// outputs are the nodes observed by downstream logic.
type Stage struct {
	Name    string
	Nodes   []string // internal + boundary nodes, sorted, excluding rails
	Edges   []*StageEdge
	Inputs  []string // gate net names, sorted
	Outputs []string // observed node names
}

// StageEdge is one element of the stage graph.
type StageEdge struct {
	Kind DeviceKind // KindNMOS, KindPMOS or KindWire
	Src  string     // node closer to the supply pole by convention
	Snk  string
	Gate string  // input net for transistors, "" for wires
	W, L float64 // transistor geometry
	R    float64 // wire resistance (KindWire)
	Ref  *Transistor
}

// ExtractStages partitions a netlist into logic stages by channel-connected
// components: transistors whose source/drain terminals are transitively
// connected through non-rail nodes belong to the same stage (the paper's
// "set of channel-connected transistors and wire segments"). Resistors join
// components the same way wires do. Gate terminals do NOT connect stages —
// that is the partition boundary that makes per-stage analysis possible.
//
// driven lists nets driven by sources (rails and primary inputs); they act
// as partition boundaries like rails. Outputs of each stage are the nodes
// that appear as gate inputs of some *other* component or are listed in
// observed.
func ExtractStages(n *Netlist, observed []string) []*Stage {
	isBoundary := map[string]bool{GroundNode: true, SupplyNode: true}
	for _, v := range n.VSources {
		isBoundary[v.A] = true
	}

	// Union-find over non-boundary nodes touched by channel terminals.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p != x {
			parent[x] = find(p)
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	connect := func(a, b string) {
		switch {
		case isBoundary[a] && isBoundary[b]:
		case isBoundary[a]:
			find(b)
		case isBoundary[b]:
			find(a)
		default:
			union(a, b)
		}
	}
	for _, t := range n.Transistors {
		connect(t.Drain, t.Source)
	}
	for _, r := range n.Resistors {
		connect(r.A, r.B)
	}

	// Group elements by the component of their non-boundary terminals.
	groups := map[string]*group{}
	groupOf := func(nodes ...string) *group {
		for _, nd := range nodes {
			if !isBoundary[nd] {
				root := find(nd)
				g := groups[root]
				if g == nil {
					g = &group{nodes: map[string]bool{}}
					groups[root] = g
				}
				return g
			}
		}
		return nil
	}
	addNodes := func(g *group, nodes ...string) {
		for _, nd := range nodes {
			if !isBoundary[nd] {
				g.nodes[nd] = true
			}
		}
	}
	for _, t := range n.Transistors {
		g := groupOf(t.Drain, t.Source)
		if g == nil {
			continue // degenerate: both channel terminals on rails
		}
		addNodes(g, t.Drain, t.Source)
		kind := t.Kind
		g.edges = append(g.edges, &StageEdge{
			Kind: kind, Src: t.Drain, Snk: t.Source, Gate: t.Gate,
			W: t.W, L: t.L, Ref: t,
		})
	}
	for _, r := range n.Resistors {
		g := groupOf(r.A, r.B)
		if g == nil {
			continue
		}
		addNodes(g, r.A, r.B)
		g.edges = append(g.edges, &StageEdge{Kind: KindWire, Src: r.A, Snk: r.B, R: r.R})
	}

	// Which nodes feed gates elsewhere? Those are implicit outputs.
	gateNets := map[string]bool{}
	for _, t := range n.Transistors {
		gateNets[t.Gate] = true
	}
	obs := map[string]bool{}
	for _, o := range observed {
		obs[CanonName(o)] = true
	}

	// Deterministic ordering of stages by their smallest node name.
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool {
		return groups[roots[i]].min() < groups[roots[j]].min()
	})

	var stages []*Stage
	for si, root := range roots {
		g := groups[root]
		st := &Stage{Name: fmt.Sprintf("stage%d", si)}
		for nd := range g.nodes {
			st.Nodes = append(st.Nodes, nd)
		}
		sort.Strings(st.Nodes)
		st.Edges = g.edges
		inSet := map[string]bool{}
		for _, e := range g.edges {
			if e.Gate != "" {
				inSet[e.Gate] = true
			}
		}
		for in := range inSet {
			st.Inputs = append(st.Inputs, in)
		}
		sort.Strings(st.Inputs)
		for _, nd := range st.Nodes {
			if gateNets[nd] || obs[nd] {
				st.Outputs = append(st.Outputs, nd)
			}
		}
		stages = append(stages, st)
	}
	return stages
}

// group accumulates the nodes and edges of one channel-connected component
// during stage extraction.
type group struct {
	nodes map[string]bool
	edges []*StageEdge
}

func (g *group) min() string {
	first := ""
	for nd := range g.nodes {
		if first == "" || nd < first {
			first = nd
		}
	}
	return first
}
