// Package circuit implements the paper's §III-A circuit model: a flat
// transistor-level netlist, the CMOS logic stage as a polar directed graph
// (Definition 1), channel-connected-component extraction, and series-path
// enumeration for the charge/discharge analysis QWM performs.
package circuit

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"qwm/internal/mos"
)

// Ground and the conventional supply node names. Node names are
// case-insensitive; "0" and "gnd" are aliases.
const (
	GroundNode = "0"
	SupplyNode = "vdd"
)

// CanonName normalizes a node name: lower-case, with ground aliases folded
// to "0".
func CanonName(n string) string {
	n = strings.ToLower(strings.TrimSpace(n))
	if n == "gnd" || n == "ground" || n == "vss" {
		return GroundNode
	}
	return n
}

// DeviceKind enumerates the circuit element kinds of the paper's Definition 1
// plus the lumped elements the SPICE substrate needs.
type DeviceKind int

const (
	KindNMOS DeviceKind = iota
	KindPMOS
	KindWire // a resistive wire segment (reduced interconnect)
	KindCap  // lumped capacitor to ground
	KindVSrc // voltage source (inputs, supply)
)

func (k DeviceKind) String() string {
	switch k {
	case KindNMOS:
		return "nmos"
	case KindPMOS:
		return "pmos"
	case KindWire:
		return "wire"
	case KindCap:
		return "cap"
	case KindVSrc:
		return "vsrc"
	}
	return "unknown"
}

// Transistor is a MOS device instance.
type Transistor struct {
	Name       string
	Kind       DeviceKind // KindNMOS or KindPMOS
	Drain      string
	Gate       string
	Source     string
	Body       string
	W, L       float64
	DrainJunc  mos.Junction // zero => derived from W
	SourceJunc mos.Junction
}

// Resistor is a two-terminal resistance (wire segments reduce to these).
type Resistor struct {
	Name string
	A, B string
	R    float64
}

// Capacitor is a two-terminal capacitance; B is usually ground.
type Capacitor struct {
	Name string
	A, B string
	C    float64
}

// VSource is an independent voltage source from node A to ground reference B.
type VSource struct {
	Name string
	A, B string
	// Wave gives v(t); nil means DC 0.
	Wave interface{ Eval(t float64) float64 }
}

// Netlist is a flat transistor-level circuit.
type Netlist struct {
	Transistors []*Transistor
	Resistors   []*Resistor
	Capacitors  []*Capacitor
	VSources    []*VSource
}

// AddTransistor appends a transistor with canonical node names.
func (n *Netlist) AddTransistor(t *Transistor) *Transistor {
	t.Drain = CanonName(t.Drain)
	t.Gate = CanonName(t.Gate)
	t.Source = CanonName(t.Source)
	t.Body = CanonName(t.Body)
	n.Transistors = append(n.Transistors, t)
	return t
}

// AddResistor appends a resistor with canonical node names.
func (n *Netlist) AddResistor(name, a, b string, r float64) *Resistor {
	res := &Resistor{Name: name, A: CanonName(a), B: CanonName(b), R: r}
	n.Resistors = append(n.Resistors, res)
	return res
}

// AddCapacitor appends a capacitor with canonical node names.
func (n *Netlist) AddCapacitor(name, a, b string, c float64) *Capacitor {
	el := &Capacitor{Name: name, A: CanonName(a), B: CanonName(b), C: c}
	n.Capacitors = append(n.Capacitors, el)
	return el
}

// AddVSource appends a voltage source with canonical node names.
func (n *Netlist) AddVSource(name, a, b string, w interface{ Eval(t float64) float64 }) *VSource {
	v := &VSource{Name: name, A: CanonName(a), B: CanonName(b), Wave: w}
	n.VSources = append(n.VSources, v)
	return v
}

// Nodes returns the sorted set of node names appearing in the netlist.
func (n *Netlist) Nodes() []string {
	set := map[string]bool{}
	add := func(names ...string) {
		for _, s := range names {
			if s != "" {
				set[s] = true
			}
		}
	}
	for _, t := range n.Transistors {
		add(t.Drain, t.Gate, t.Source, t.Body)
	}
	for _, r := range n.Resistors {
		add(r.A, r.B)
	}
	for _, c := range n.Capacitors {
		add(c.A, c.B)
	}
	for _, v := range n.VSources {
		add(v.A, v.B)
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Validate performs basic sanity checks: positive and finite geometry and
// resistance, non-negative finite capacitance, distinct terminals where
// required. NaN propagates silently through every solver in the stack, so
// non-finite parameters are rejected here rather than surfacing later as a
// mysterious convergence failure.
func (n *Netlist) Validate() error {
	finite := func(vals ...float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	for _, t := range n.Transistors {
		if t.Kind != KindNMOS && t.Kind != KindPMOS {
			return fmt.Errorf("circuit: %s: transistor kind must be nmos or pmos", t.Name)
		}
		if !finite(t.W, t.L) {
			return fmt.Errorf("circuit: %s: non-finite geometry W=%g L=%g", t.Name, t.W, t.L)
		}
		if t.W <= 0 || t.L <= 0 {
			return fmt.Errorf("circuit: %s: non-positive geometry W=%g L=%g", t.Name, t.W, t.L)
		}
		if t.Drain == t.Source {
			return fmt.Errorf("circuit: %s: drain and source are the same node %q", t.Name, t.Drain)
		}
	}
	for _, r := range n.Resistors {
		if !finite(r.R) {
			return fmt.Errorf("circuit: %s: non-finite resistance %g", r.Name, r.R)
		}
		if r.R <= 0 {
			return fmt.Errorf("circuit: %s: non-positive resistance %g", r.Name, r.R)
		}
		if r.A == r.B {
			return fmt.Errorf("circuit: %s: both terminals on node %q", r.Name, r.A)
		}
	}
	for _, c := range n.Capacitors {
		if !finite(c.C) {
			return fmt.Errorf("circuit: %s: non-finite capacitance %g", c.Name, c.C)
		}
		if c.C < 0 {
			return fmt.Errorf("circuit: %s: negative capacitance %g", c.Name, c.C)
		}
	}
	return nil
}
