package circuit

import "fmt"

// PathElem is one element of a series charge/discharge path, oriented so
// Lower is the terminal closer to the rail.
type PathElem struct {
	Edge         *StageEdge
	Lower, Upper string
}

// Path is a series element chain from a rail to an output node:
// Elems[0].Lower is the rail, Elems[k].Upper == Elems[k+1].Lower, and the
// last element's Upper is the output. QWM's "stack of K transistors"
// (paper Fig. 6) is exactly this structure, possibly with resistive wire
// elements interleaved (paper Fig. 3).
type Path struct {
	Rail   string
	Output string
	Elems  []PathElem
}

// Transistors returns the number of transistor elements on the path — the K
// in the paper's "K DC operating point calculations".
func (p *Path) Transistors() int {
	k := 0
	for _, e := range p.Elems {
		if e.Edge.Kind == KindNMOS || e.Edge.Kind == KindPMOS {
			k++
		}
	}
	return k
}

// InternalNodes returns the node names between elements plus the output:
// node k (1-based) is Elems[k-1].Upper.
func (p *Path) InternalNodes() []string {
	out := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		out[i] = e.Upper
	}
	return out
}

// EnumeratePaths returns every simple path through the stage from the given
// output node to the given rail ("0" or "vdd"). Stages are small, so plain
// DFS enumeration is fine.
func EnumeratePaths(st *Stage, output, rail string) []*Path {
	output = CanonName(output)
	rail = CanonName(rail)
	adj := map[string][]*StageEdge{}
	for _, e := range st.Edges {
		adj[e.Src] = append(adj[e.Src], e)
		adj[e.Snk] = append(adj[e.Snk], e)
	}
	var paths []*Path
	visited := map[string]bool{output: true}
	var stack []PathElem
	var dfs func(node string)
	dfs = func(node string) {
		if node == rail {
			// stack runs output→rail; reverse into rail→output order.
			elems := make([]PathElem, len(stack))
			for i, pe := range stack {
				elems[len(stack)-1-i] = pe
			}
			paths = append(paths, &Path{Rail: rail, Output: output, Elems: elems})
			return
		}
		for _, e := range adj[node] {
			next := e.Src
			if next == node {
				next = e.Snk
			}
			if next == node { // self loop, should not happen
				continue
			}
			// Do not pass through the other rail.
			if other := otherRail(rail); next == other {
				continue
			}
			if visited[next] {
				continue
			}
			visited[next] = true
			// Upper is the side away from the rail: while descending from the
			// output, the current node is Upper.
			stack = append(stack, PathElem{Edge: e, Lower: next, Upper: node})
			dfs(next)
			stack = stack[:len(stack)-1]
			visited[next] = false
		}
	}
	dfs(output)
	return paths
}

func otherRail(rail string) string {
	if rail == GroundNode {
		return SupplyNode
	}
	return GroundNode
}

// LongestPath returns the path with the most series transistors — the static
// timing analysis worst case the paper analyzes. Ties break toward more
// total elements, then lexicographically by the first differing lower node
// for determinism.
func LongestPath(st *Stage, output, rail string) (*Path, error) {
	paths := EnumeratePaths(st, output, rail)
	if len(paths) == 0 {
		return nil, fmt.Errorf("circuit: no path from %q to rail %q in stage %s", output, rail, st.Name)
	}
	best := paths[0]
	for _, p := range paths[1:] {
		switch {
		case p.Transistors() > best.Transistors():
			best = p
		case p.Transistors() == best.Transistors() && len(p.Elems) > len(best.Elems):
			best = p
		case p.Transistors() == best.Transistors() && len(p.Elems) == len(best.Elems) && pathKey(p) < pathKey(best):
			best = p
		}
	}
	return best, nil
}

func pathKey(p *Path) string {
	s := ""
	for _, e := range p.Elems {
		s += e.Lower + "/"
	}
	return s
}
