// Package faultinject is the deterministic seeded fault-injection framework
// behind the STA engine's chaos mode. An Injector is configured with a seed
// and a per-class firing rate; every injection decision is a pure hash of
// (seed, class, site key), so it is independent of goroutine scheduling,
// worker count and wall-clock — two runs at the same seed inject exactly the
// same faults at exactly the same sites, which is what lets the chaos
// harness assert bit-for-bit deterministic degraded results at Workers 1
// and 8.
//
// Hooks are nil-by-default: every method is safe on a nil *Injector and
// returns "no fault", so production call sites pay one nil check and
// nothing else.
package faultinject

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Class enumerates the injectable fault classes. Each class maps to one
// solver/cache/worker boundary in the evaluation pipeline:
//
//   - NRDivergence fails a QWM region solve outright, as a Newton
//     non-convergence near a flat region would (site: qwm.solveRegion).
//   - PivotBreakdown forces the tridiagonal Thomas sweep's near-zero-pivot
//     error path, exercising the in-scratch dense-LU recovery (site:
//     qwm regionSys.newton).
//   - Panic raises a synthetic panic inside a worker-side tier evaluation,
//     exercising the recover() isolation that converts panics into typed
//     ErrPanicRecovered evaluation errors (site: sta degradation ladder).
//   - BudgetExhaustion aborts a tier evaluation with ErrBudgetExceeded, as
//     a tiny Request.EvalBudget would (site: sta degradation ladder).
//   - CacheStall sleeps briefly inside a delay-cache compute, simulating
//     shard contention / a slow single-flight leader; results must be
//     unaffected (site: sta delay cache compute).
//   - NetLatency delays one remote-cache round trip, as a congested or
//     GC-pausing peer would; results must be unaffected (site:
//     remotecache client attempt).
//   - NetError fails one remote-cache round trip outright (connection
//     refused / reset / 5xx); the tier must degrade to a miss, never an
//     analysis error (site: remotecache client attempt).
//   - NetCorrupt flips a byte in a remote-cache response body before
//     decoding, so the CRC re-verification path is exercised; corruption
//     must be a counted miss, never wrong data (site: remotecache client
//     response).
//
// The three Net* classes key on the delay-cache key like every other class,
// so the injected network weather is schedule-independent: the same keys
// suffer the same faults no matter how workers interleave their requests.
type Class uint8

const (
	NRDivergence Class = iota
	PivotBreakdown
	Panic
	BudgetExhaustion
	CacheStall
	NetLatency
	NetError
	NetCorrupt
	// NumClasses bounds the class enum; not a class itself.
	NumClasses
)

var classNames = [NumClasses]string{
	NRDivergence:     "nr-divergence",
	PivotBreakdown:   "pivot-breakdown",
	Panic:            "panic",
	BudgetExhaustion: "budget-exhaustion",
	CacheStall:       "cache-stall",
	NetLatency:       "net-latency",
	NetError:         "net-error",
	NetCorrupt:       "net-corrupt",
}

// Network reports whether c injects at a network (remote-cache) site rather
// than inside the evaluation engine. The engine chaos sweep skips network
// classes — with no remote tier armed they have no site to fire at — and the
// remote-cache differential (verify -remote) gates them instead.
func (c Class) Network() bool {
	return c == NetLatency || c == NetError || c == NetCorrupt
}

// String returns the canonical hyphenated class name.
func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass resolves a canonical class name (as printed by String).
func ParseClass(s string) (Class, error) {
	for c, name := range classNames {
		if s == name {
			return Class(c), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown fault class %q (known: %v)", s, Classes())
}

// Classes lists every class name in enum order.
func Classes() []string {
	out := make([]string, NumClasses)
	copy(out, classNames[:])
	return out
}

// Injector decides, deterministically per (seed, class, key), whether a
// fault fires at a given site. The zero value and nil are inert. Injectors
// are safe for concurrent use: configuration (Enable, WithStall) must
// happen before the injector is shared, after which only atomic counters
// mutate.
type Injector struct {
	seed  int64
	rate  [NumClasses]float64
	stall time.Duration

	checked [NumClasses]atomic.Int64
	fired   [NumClasses]atomic.Int64
}

// New creates an injector with every class disabled. Identical seeds make
// identical decisions for identical (class, key) pairs.
func New(seed int64) *Injector { return &Injector{seed: seed, stall: 100 * time.Microsecond} }

// Enable arms class c at the given firing rate in [0, 1] and returns the
// injector for chaining. Rate 1 fires on every key; rate 0 disarms.
func (in *Injector) Enable(c Class, rate float64) *Injector {
	if c < NumClasses {
		in.rate[c] = rate
	}
	return in
}

// WithStall sets the sleep duration Stall uses when CacheStall fires
// (default 100 µs).
func (in *Injector) WithStall(d time.Duration) *Injector {
	in.stall = d
	return in
}

// Fire reports whether class c fires at the site identified by key. The
// decision is a pure function of (seed, class, key): it does not depend on
// call order, goroutine, or time, so concurrent evaluation schedules see
// identical faults. Safe on a nil receiver (never fires).
func (in *Injector) Fire(c Class, key string) bool {
	if in == nil || c >= NumClasses {
		return false
	}
	r := in.rate[c]
	if r <= 0 {
		return false
	}
	in.checked[c].Add(1)
	if u01(in.seed, c, key) >= r {
		return false
	}
	in.fired[c].Add(1)
	return true
}

// Stall blocks for the configured stall duration when class c fires at key;
// it must only be used for classes whose injected fault is pure latency
// (CacheStall, NetLatency). Safe on a nil receiver.
func (in *Injector) Stall(c Class, key string) {
	if in.Fire(c, key) {
		time.Sleep(in.stall)
	}
}

// Counts is a per-class tally keyed by canonical class name.
type Counts map[string]int64

// Fired snapshots how many times each armed class has fired; classes that
// never fired are omitted. Safe on a nil receiver (empty).
func (in *Injector) Fired() Counts {
	out := Counts{}
	if in == nil {
		return out
	}
	for c := Class(0); c < NumClasses; c++ {
		if n := in.fired[c].Load(); n > 0 {
			out[c.String()] = n
		}
	}
	return out
}

// FiredTotal is the total fire count across all classes.
func (in *Injector) FiredTotal() int64 {
	if in == nil {
		return 0
	}
	var t int64
	for c := Class(0); c < NumClasses; c++ {
		t += in.fired[c].Load()
	}
	return t
}

// String renders the armed classes and their fire counts, sorted by name.
func (in *Injector) String() string {
	if in == nil {
		return "faultinject: nil (inert)"
	}
	fired := in.Fired()
	names := make([]string, 0, len(fired))
	for n := range fired {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("faultinject: seed %d", in.seed)
	for _, n := range names {
		s += fmt.Sprintf(" %s=%d", n, fired[n])
	}
	return s
}

// u01 maps (seed, class, key) to a uniform value in [0, 1) with a 64-bit
// FNV-1a hash finalized by a splitmix64 round — cheap, allocation-free, and
// well-mixed enough that per-class rates come out close to nominal across
// realistic key sets.
func u01(seed int64, c Class, key string) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(seed>>(8*i)) & 0xff
		h *= prime64
	}
	h ^= uint64(c)
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// splitmix64 finalizer: FNV alone mixes low bits poorly for short keys.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}
