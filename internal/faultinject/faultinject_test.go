package faultinject

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// TestNilInjectorIsInert pins the nil-by-default contract: every method on
// a nil *Injector is safe and reports "no fault".
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Fire(NRDivergence, "k") {
		t.Error("nil injector fired")
	}
	in.Stall(CacheStall, "k") // must not panic or sleep noticeably
	if got := in.FiredTotal(); got != 0 {
		t.Errorf("nil FiredTotal = %d", got)
	}
	if got := len(in.Fired()); got != 0 {
		t.Errorf("nil Fired has %d entries", got)
	}
	_ = in.String()
}

// TestDeterministicDecisions: the firing decision is a pure function of
// (seed, class, key) — identical across injector instances and call order.
func TestDeterministicDecisions(t *testing.T) {
	a := New(42).Enable(NRDivergence, 0.5).Enable(Panic, 0.5)
	b := New(42).Enable(Panic, 0.5).Enable(NRDivergence, 0.5)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("stage%d|out|0|tier0", i)
		if a.Fire(NRDivergence, key) != b.Fire(NRDivergence, key) {
			t.Fatalf("divergent decision for %s", key)
		}
		// Order of queries must not matter: query b for Panic first.
		pb := b.Fire(Panic, key)
		pa := a.Fire(Panic, key)
		if pa != pb {
			t.Fatalf("order-dependent Panic decision for %s", key)
		}
	}
}

// TestSeedAndClassIndependence: different seeds and different classes make
// different decision sets (the hash actually uses both inputs).
func TestSeedAndClassIndependence(t *testing.T) {
	a := New(1).Enable(NRDivergence, 0.5).Enable(PivotBreakdown, 0.5)
	b := New(2).Enable(NRDivergence, 0.5)
	diffSeed, diffClass := 0, 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%d", i)
		if a.Fire(NRDivergence, key) != b.Fire(NRDivergence, key) {
			diffSeed++
		}
		if a.Fire(NRDivergence, key) != a.Fire(PivotBreakdown, key) {
			diffClass++
		}
	}
	if diffSeed == 0 {
		t.Error("seeds 1 and 2 made identical decisions on every key")
	}
	if diffClass == 0 {
		t.Error("classes made identical decisions on every key")
	}
}

// TestRateAccuracy: across many keys the empirical fire rate approaches the
// configured rate (the hash is well mixed).
func TestRateAccuracy(t *testing.T) {
	for _, rate := range []float64{0.1, 0.5, 0.9} {
		in := New(7).Enable(BudgetExhaustion, rate)
		const n = 20000
		fired := 0
		for i := 0; i < n; i++ {
			if in.Fire(BudgetExhaustion, fmt.Sprintf("k%09d", i)) {
				fired++
			}
		}
		got := float64(fired) / n
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("rate %.2f: empirical %.4f (off by > 2%%)", rate, got)
		}
		if c := in.Fired()[BudgetExhaustion.String()]; c != int64(fired) {
			t.Errorf("Fired count %d != observed %d", c, fired)
		}
	}
}

// TestRateBoundaries: rate 1 always fires, rate 0 (and unarmed classes)
// never fire.
func TestRateBoundaries(t *testing.T) {
	in := New(3).Enable(Panic, 1).Enable(CacheStall, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if !in.Fire(Panic, key) {
			t.Fatalf("rate-1 class did not fire on %s", key)
		}
		if in.Fire(CacheStall, key) {
			t.Fatalf("rate-0 class fired on %s", key)
		}
		if in.Fire(NRDivergence, key) {
			t.Fatalf("unarmed class fired on %s", key)
		}
	}
}

// TestConcurrentFireIsRaceFreeAndDeterministic exercises the atomic
// counters under the race detector and re-checks decisions concurrently.
func TestConcurrentFireIsRaceFreeAndDeterministic(t *testing.T) {
	in := New(99).Enable(NRDivergence, 0.5)
	ref := make([]bool, 512)
	for i := range ref {
		ref[i] = in.Fire(NRDivergence, fmt.Sprintf("k%d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ref {
				if in.Fire(NRDivergence, fmt.Sprintf("k%d", i)) != ref[i] {
					t.Errorf("concurrent decision differs for k%d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestStallSleeps: an armed CacheStall actually blocks for about the
// configured duration.
func TestStallSleeps(t *testing.T) {
	in := New(5).Enable(CacheStall, 1).WithStall(2 * time.Millisecond)
	start := time.Now()
	in.Stall(CacheStall, "slow-shard")
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Errorf("stall returned after %v, want >= 2ms", d)
	}
}

// TestParseClassRoundTrip covers the name table both ways.
func TestParseClassRoundTrip(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("nonsense"); err == nil {
		t.Error("ParseClass accepted an unknown name")
	}
	if len(Classes()) != int(NumClasses) {
		t.Errorf("Classes() has %d entries, want %d", len(Classes()), NumClasses)
	}
	// The network classes are part of the enum round trip above; pin their
	// canonical names and the Network() partition explicitly so a renamed or
	// re-ordered entry cannot slip through the generic loop.
	wantNames := map[Class]string{
		NetLatency: "net-latency",
		NetError:   "net-error",
		NetCorrupt: "net-corrupt",
	}
	for c, name := range wantNames {
		if c.String() != name {
			t.Errorf("%v.String() = %q, want %q", uint8(c), c.String(), name)
		}
		if !c.Network() {
			t.Errorf("%s.Network() = false, want true", name)
		}
		if got, err := ParseClass(name); err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", name, got, err)
		}
	}
	for c := Class(0); c < NumClasses; c++ {
		if _, isNet := wantNames[c]; c.Network() != isNet {
			t.Errorf("%s.Network() = %v, want %v", c, c.Network(), isNet)
		}
	}
}
