package mos

import "math"

// Junction describes a source/drain diffusion region geometry. When Area and
// Perim are zero, DefaultJunction derives them from the device width and the
// technology's diffusion extent — the paper's "optionally, the area and
// perimeter of its junctions".
type Junction struct {
	Area  float64 // m²
	Perim float64 // m
}

// DefaultJunction returns the junction geometry implied by a device width.
func (p *Params) DefaultJunction(w float64) Junction {
	return Junction{
		Area:  w * p.LDiff,
		Perim: 2*p.LDiff + w,
	}
}

// JunctionCap returns the depletion capacitance of a diffusion junction
// reverse-biased by vr volts (vr ≥ 0 reverse; small forward bias is clamped
// smoothly). This is the voltage-dependent parasitic the paper's Definition 2
// exposes through srcCap/snkCap.
func (p *Params) JunctionCap(j Junction, vr float64) float64 {
	// Clamp the bias so the (1 + V/PB) factor stays positive: below
	// −0.5·PB the depletion approximation has no meaning anyway.
	if vr < -0.5*p.PB {
		vr = -0.5 * p.PB
	}
	f := 1 + vr/p.PB
	return p.CJ*j.Area/math.Pow(f, p.MJ) + p.CJSW*j.Perim/math.Pow(f, p.MJSW)
}

// JunctionCharge returns the depletion charge stored on a diffusion junction
// at reverse bias vr, i.e. the integral of JunctionCap from 0 to vr. The
// SPICE substrate integrates charge rather than capacitance so that its
// nonlinear parasitics conserve charge exactly. Below the −0.5·PB clamp the
// charge continues linearly with the clamped capacitance.
func (p *Params) JunctionCharge(j Junction, vr float64) float64 {
	clamp := -0.5 * p.PB
	lin := 0.0
	if vr < clamp {
		lin = (vr - clamp) * p.JunctionCap(j, clamp)
		vr = clamp
	}
	area := p.CJ * j.Area * p.PB / (1 - p.MJ) * (1 - math.Pow(1+vr/p.PB, 1-p.MJ))
	side := p.CJSW * j.Perim * p.PB / (1 - p.MJSW) * (1 - math.Pow(1+vr/p.PB, 1-p.MJSW))
	// Charge of a reverse-biased junction decreases with vr in this sign
	// convention (capacitor discharges as depletion widens); return the
	// stored charge as the integral ∫C dv, which is positive for vr > 0.
	return -(area + side) + lin
}

// JunctionCapAtNode converts a node voltage into the reverse bias seen by a
// diffusion tied to that node: for NMOS the junction is diffusion-to-ground
// (reverse bias = v), for PMOS diffusion-to-nwell at VDD (reverse bias =
// vdd − v).
func (p *Params) JunctionCapAtNode(j Junction, v, vdd float64) float64 {
	vr := v
	if p.Pol == PMOS {
		vr = vdd - v
	}
	return p.JunctionCap(j, vr)
}

// GateCap returns the total gate input capacitance of a device: intrinsic
// channel capacitance plus both overlaps. Used for loading a stage output
// that drives further gates, and as the paper's inputCap.
func (p *Params) GateCap(w, l float64) float64 {
	leff := l - 2*p.LD
	if leff <= 0 {
		leff = l * 0.5
	}
	return p.Cox*w*leff + (p.CGDO+p.CGSO)*w
}

// OverlapCap returns the gate-to-diffusion overlap capacitance on one side
// of a device of width w. It is the Miller coupling path from a switching
// gate onto a chain node.
func (p *Params) OverlapCap(w float64) float64 {
	return p.CGDO * w
}

// ChannelCapSplit returns the portions of the intrinsic channel capacitance
// attributed to the source and drain ends (the 40/40 split in triode,
// degraded toward 2/3–0 in saturation is approximated with a fixed 1/2 split
// each way — adequate for the constant-capacitance assumption QWM makes
// inside a region).
func (p *Params) ChannelCapSplit(w, l float64) (src, snk float64) {
	leff := l - 2*p.LD
	if leff <= 0 {
		leff = l * 0.5
	}
	half := 0.5 * p.Cox * w * leff * 0.8
	return half, half
}
