// Package mos implements the "golden" analytic MOSFET device model that
// substitutes for Hspice/BSIM3 in this reproduction. It is a smooth
// single-expression long/short-channel model with body effect,
// channel-length modulation, mobility degradation, velocity saturation and
// sub-threshold conduction, plus voltage-dependent junction and gate
// capacitances. Both simulation engines (the SPICE-class baseline and QWM's
// characterized table) ultimately draw their currents from this model, so
// algorithm comparisons are apples-to-apples.
package mos

// Polarity distinguishes NMOS from PMOS devices.
type Polarity int

const (
	NMOS Polarity = iota
	PMOS
)

func (p Polarity) String() string {
	if p == PMOS {
		return "pmos"
	}
	return "nmos"
}

// Params is the per-polarity technology parameter set. Units are SI
// (volts, amps, meters, farads).
type Params struct {
	Pol Polarity

	Vth0   float64 // zero-bias threshold magnitude (V)
	Gamma  float64 // body-effect coefficient (√V)
	Phi    float64 // surface potential 2φF (V)
	KP     float64 // process transconductance µ·Cox (A/V²)
	Lambda float64 // channel-length modulation (1/V)
	Theta  float64 // vertical-field mobility degradation (1/V)
	ESat   float64 // lateral critical field for velocity saturation (V/m)
	NSub   float64 // sub-threshold slope factor n
	LD     float64 // lateral diffusion per side (m)

	Cox   float64 // gate oxide capacitance per area (F/m²)
	CGDO  float64 // gate-drain overlap capacitance per width (F/m)
	CGSO  float64 // gate-source overlap capacitance per width (F/m)
	CJ    float64 // zero-bias junction area capacitance (F/m²)
	CJSW  float64 // zero-bias junction sidewall capacitance (F/m)
	PB    float64 // junction built-in potential (V)
	MJ    float64 // area junction grading coefficient
	MJSW  float64 // sidewall junction grading coefficient
	LDiff float64 // source/drain diffusion extent used for default junction geometry (m)
}

// Tech bundles the two device polarities with the supply, mimicking the
// CMOSP35 technology used in the paper (0.35 µm, 3.3 V supply,
// characterization sweep 0–3.3 V).
type Tech struct {
	VDD    float64
	Lambda float64 // layout lambda: half the minimum feature (m)
	LMin   float64 // minimum drawn channel length (m)
	WMin   float64 // minimum drawn width (m)
	N, P   Params
	Temp   float64 // kelvin
}

// VT returns the thermal voltage kT/q at the technology temperature.
func (t *Tech) VT() float64 { return 8.617333e-5 * t.Temp }

// CMOSP18 returns a parameter set representative of a 0.18 µm, 1.8 V bulk
// CMOS process — a second technology node exercising the same machinery at
// lower voltage headroom and stronger velocity saturation. The values are
// textbook-level, not foundry data.
func CMOSP18() *Tech {
	return &Tech{
		VDD:    1.8,
		Lambda: 0.1e-6,
		LMin:   0.18e-6,
		WMin:   0.24e-6,
		Temp:   300.15,
		N: Params{
			Pol:    NMOS,
			Vth0:   0.42,
			Gamma:  0.47,
			Phi:    0.86,
			KP:     300e-6,
			Lambda: 0.08,
			Theta:  0.35,
			ESat:   5.0e6,
			NSub:   1.35,
			LD:     0.015e-6,
			Cox:    8.4e-3,
			CGDO:   3.7e-10,
			CGSO:   3.7e-10,
			CJ:     1.0e-3,
			CJSW:   2.0e-10,
			PB:     0.8,
			MJ:     0.36,
			MJSW:   0.10,
			LDiff:  0.48e-6,
		},
		P: Params{
			Pol:    PMOS,
			Vth0:   0.45,
			Gamma:  0.42,
			Phi:    0.82,
			KP:     75e-6,
			Lambda: 0.10,
			Theta:  0.25,
			ESat:   1.4e7,
			NSub:   1.40,
			LD:     0.015e-6,
			Cox:    8.4e-3,
			CGDO:   3.3e-10,
			CGSO:   3.3e-10,
			CJ:     1.1e-3,
			CJSW:   2.2e-10,
			PB:     0.8,
			MJ:     0.45,
			MJSW:   0.24,
			LDiff:  0.48e-6,
		},
	}
}

// CMOSP35 returns a parameter set representative of a 0.35 µm, 3.3 V bulk
// CMOS process. The values are textbook-level, not foundry data — see
// DESIGN.md on the BSIM3 substitution.
func CMOSP35() *Tech {
	const (
		lam  = 0.2e-6  // layout lambda (m)
		lmin = 0.35e-6 // minimum channel length (m)
	)
	return &Tech{
		VDD:    3.3,
		Lambda: lam,
		LMin:   lmin,
		WMin:   2 * lam,
		Temp:   300.15,
		N: Params{
			Pol:    NMOS,
			Vth0:   0.55,
			Gamma:  0.58,
			Phi:    0.84,
			KP:     170e-6,
			Lambda: 0.06,
			Theta:  0.20,
			ESat:   4.0e6,
			NSub:   1.40,
			LD:     0.03e-6,
			Cox:    4.54e-3,
			CGDO:   3.1e-10,
			CGSO:   3.1e-10,
			CJ:     9.4e-4,
			CJSW:   2.8e-10,
			PB:     0.9,
			MJ:     0.36,
			MJSW:   0.10,
			LDiff:  0.85e-6,
		},
		P: Params{
			Pol:    PMOS,
			Vth0:   0.65,
			Gamma:  0.48,
			Phi:    0.80,
			KP:     58e-6,
			Lambda: 0.08,
			Theta:  0.15,
			ESat:   1.2e7,
			NSub:   1.45,
			LD:     0.03e-6,
			Cox:    4.54e-3,
			CGDO:   2.7e-10,
			CGSO:   2.7e-10,
			CJ:     1.4e-3,
			CJSW:   3.2e-10,
			PB:     0.9,
			MJ:     0.45,
			MJSW:   0.24,
			LDiff:  0.85e-6,
		},
	}
}
