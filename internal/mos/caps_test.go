package mos

import (
	"testing"
	"testing/quick"
)

func TestDefaultJunctionGeometry(t *testing.T) {
	j := tech.N.DefaultJunction(1e-6)
	if j.Area != 1e-6*tech.N.LDiff {
		t.Errorf("area = %g", j.Area)
	}
	if j.Perim != 2*tech.N.LDiff+1e-6 {
		t.Errorf("perim = %g", j.Perim)
	}
}

func TestJunctionCapDecreasesWithReverseBias(t *testing.T) {
	j := tech.N.DefaultJunction(1e-6)
	c0 := tech.N.JunctionCap(j, 0)
	c3 := tech.N.JunctionCap(j, 3.3)
	if c0 <= 0 || c3 <= 0 {
		t.Fatalf("caps must be positive: %g %g", c0, c3)
	}
	if c3 >= c0 {
		t.Errorf("junction cap should shrink with reverse bias: C(0)=%g C(3.3)=%g", c0, c3)
	}
	// Zero-bias value should match CJ·A + CJSW·P exactly.
	want := tech.N.CJ*j.Area + tech.N.CJSW*j.Perim
	if !dualAlmostEq(c0, want, 1e-12) {
		t.Errorf("C(0) = %g, want %g", c0, want)
	}
}

func TestJunctionCapForwardBiasClamped(t *testing.T) {
	j := tech.N.DefaultJunction(1e-6)
	c := tech.N.JunctionCap(j, -5)
	climit := tech.N.JunctionCap(j, -0.5*tech.N.PB)
	if c != climit {
		t.Errorf("deep forward bias should clamp: %g vs %g", c, climit)
	}
}

func TestJunctionCapAtNodePolarity(t *testing.T) {
	j := tech.N.DefaultJunction(1e-6)
	// NMOS diffusion at a high node is strongly reverse biased -> small cap.
	nHigh := tech.N.JunctionCapAtNode(j, 3.3, 3.3)
	nLow := tech.N.JunctionCapAtNode(j, 0, 3.3)
	if nHigh >= nLow {
		t.Errorf("NMOS junction cap should be smaller at high node: %g vs %g", nHigh, nLow)
	}
	jp := tech.P.DefaultJunction(1e-6)
	pHigh := tech.P.JunctionCapAtNode(jp, 3.3, 3.3)
	pLow := tech.P.JunctionCapAtNode(jp, 0, 3.3)
	if pLow >= pHigh {
		t.Errorf("PMOS junction cap should be smaller at low node: %g vs %g", pLow, pHigh)
	}
}

func TestGateCapPlausible(t *testing.T) {
	// A 1 µm / 0.35 µm gate is a couple of femtofarads in this process.
	c := tech.N.GateCap(1e-6, 0.35e-6)
	if c < 0.5e-15 || c > 10e-15 {
		t.Errorf("gate cap %g F out of plausible fF range", c)
	}
}

func TestChannelCapSplitSymmetric(t *testing.T) {
	src, snk := tech.N.ChannelCapSplit(1e-6, 0.35e-6)
	if src != snk || src <= 0 {
		t.Errorf("split = %g, %g", src, snk)
	}
}

func TestJunctionChargeZero(t *testing.T) {
	j := tech.N.DefaultJunction(1e-6)
	if q := tech.N.JunctionCharge(j, 0); q != 0 {
		t.Errorf("Q(0) = %g, want 0", q)
	}
}

// Property: dQ/dv equals the junction capacitance (charge conservation
// consistency used by the SPICE substrate), including through the forward-
// bias clamp region.
func TestJunctionChargeDerivativeProperty(t *testing.T) {
	j := tech.N.DefaultJunction(1.5e-6)
	f := func(v float64) bool {
		if v < -2 || v > 5 {
			return true
		}
		const h = 1e-5
		fd := (tech.N.JunctionCharge(j, v+h) - tech.N.JunctionCharge(j, v-h)) / (2 * h)
		c := tech.N.JunctionCap(j, v)
		return dualAlmostEq(fd, c, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: junction capacitance is positive and monotone non-increasing in
// reverse bias over the operating range.
func TestJunctionCapMonotoneProperty(t *testing.T) {
	j := tech.N.DefaultJunction(2e-6)
	f := func(v1, v2 float64) bool {
		if v1 < 0 || v2 < 0 || v1 > 5 || v2 > 5 {
			return true
		}
		lo, hi := v1, v2
		if lo > hi {
			lo, hi = hi, lo
		}
		cLo := tech.N.JunctionCap(j, lo)
		cHi := tech.N.JunctionCap(j, hi)
		return cLo > 0 && cHi > 0 && cHi <= cLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
