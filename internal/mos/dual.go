package mos

import "math"

// Dual is a first-order dual number carrying a value and three partial
// derivatives (with respect to the gate, drain, and source voltages of the
// device being evaluated). Evaluating the device equations on Dual values
// yields exact analytic derivatives with a single shared code path — the
// forward-mode automatic differentiation trick.
type Dual struct {
	V float64
	D [3]float64
}

// Const lifts a constant (zero derivative) into a Dual.
func Const(v float64) Dual { return Dual{V: v} }

// Var lifts a value seeded as independent variable i (derivative 1 in
// direction i).
func Var(v float64, i int) Dual {
	d := Dual{V: v}
	d.D[i] = 1
	return d
}

// Add returns a + b.
func (a Dual) Add(b Dual) Dual {
	return Dual{V: a.V + b.V, D: [3]float64{a.D[0] + b.D[0], a.D[1] + b.D[1], a.D[2] + b.D[2]}}
}

// Sub returns a - b.
func (a Dual) Sub(b Dual) Dual {
	return Dual{V: a.V - b.V, D: [3]float64{a.D[0] - b.D[0], a.D[1] - b.D[1], a.D[2] - b.D[2]}}
}

// Mul returns a · b.
func (a Dual) Mul(b Dual) Dual {
	return Dual{V: a.V * b.V, D: [3]float64{
		a.D[0]*b.V + a.V*b.D[0],
		a.D[1]*b.V + a.V*b.D[1],
		a.D[2]*b.V + a.V*b.D[2],
	}}
}

// Div returns a / b.
func (a Dual) Div(b Dual) Dual {
	inv := 1 / b.V
	v := a.V * inv
	return Dual{V: v, D: [3]float64{
		(a.D[0] - v*b.D[0]) * inv,
		(a.D[1] - v*b.D[1]) * inv,
		(a.D[2] - v*b.D[2]) * inv,
	}}
}

// Neg returns -a.
func (a Dual) Neg() Dual {
	return Dual{V: -a.V, D: [3]float64{-a.D[0], -a.D[1], -a.D[2]}}
}

// Scale returns k·a for a plain float k.
func (a Dual) Scale(k float64) Dual {
	return Dual{V: k * a.V, D: [3]float64{k * a.D[0], k * a.D[1], k * a.D[2]}}
}

// AddConst returns a + k.
func (a Dual) AddConst(k float64) Dual {
	return Dual{V: a.V + k, D: a.D}
}

func (a Dual) chain(v, dv float64) Dual {
	return Dual{V: v, D: [3]float64{dv * a.D[0], dv * a.D[1], dv * a.D[2]}}
}

// Sqrt returns √a. The argument must be positive.
func (a Dual) Sqrt() Dual {
	s := math.Sqrt(a.V)
	return a.chain(s, 0.5/s)
}

// Exp returns e^a.
func (a Dual) Exp() Dual {
	e := math.Exp(a.V)
	return a.chain(e, e)
}

// Log returns ln(a) for positive a.
func (a Dual) Log() Dual {
	return a.chain(math.Log(a.V), 1/a.V)
}

// PowConst returns a^k for non-negative a and constant k. The derivative is
// formed as k·a^(k−1) directly so that a = 0 with k > 1 yields 0 rather than
// 0/0.
func (a Dual) PowConst(k float64) Dual {
	return a.chain(math.Pow(a.V, k), k*math.Pow(a.V, k-1))
}

// Softplus returns the numerically stable softplus ln(1 + e^a), the smooth
// max(0, a) used to blend sub-threshold and strong-inversion conduction.
func (a Dual) Softplus() Dual {
	x := a.V
	var v, dv float64
	switch {
	case x > 30:
		v, dv = x, 1
	case x < -30:
		v, dv = math.Exp(x), math.Exp(x)
	default:
		ex := math.Exp(x)
		v = math.Log1p(ex)
		dv = ex / (1 + ex)
	}
	return a.chain(v, dv)
}
