package mos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func dualAlmostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDualArithmetic(t *testing.T) {
	x := Var(3, 0)
	y := Var(2, 1)

	sum := x.Add(y)
	if sum.V != 5 || sum.D[0] != 1 || sum.D[1] != 1 {
		t.Errorf("Add: %+v", sum)
	}
	prod := x.Mul(y)
	if prod.V != 6 || prod.D[0] != 2 || prod.D[1] != 3 {
		t.Errorf("Mul: %+v", prod)
	}
	q := x.Div(y)
	if q.V != 1.5 || q.D[0] != 0.5 || q.D[1] != -0.75 {
		t.Errorf("Div: %+v", q)
	}
	d := x.Sub(y)
	if d.V != 1 || d.D[0] != 1 || d.D[1] != -1 {
		t.Errorf("Sub: %+v", d)
	}
	n := x.Neg()
	if n.V != -3 || n.D[0] != -1 {
		t.Errorf("Neg: %+v", n)
	}
}

func TestDualElementary(t *testing.T) {
	x := Var(4, 2)
	s := x.Sqrt()
	if s.V != 2 || s.D[2] != 0.25 {
		t.Errorf("Sqrt: %+v", s)
	}
	e := Var(0, 0).Exp()
	if e.V != 1 || e.D[0] != 1 {
		t.Errorf("Exp: %+v", e)
	}
	l := Var(math.E, 1).Log()
	if !dualAlmostEq(l.V, 1, 1e-12) || !dualAlmostEq(l.D[1], 1/math.E, 1e-12) {
		t.Errorf("Log: %+v", l)
	}
	p := Var(2, 0).PowConst(3)
	if p.V != 8 || p.D[0] != 12 {
		t.Errorf("PowConst: %+v", p)
	}
}

func TestDualSoftplusLimitsAndStability(t *testing.T) {
	big := Var(100, 0).Softplus()
	if big.V != 100 || big.D[0] != 1 {
		t.Errorf("Softplus(100): %+v", big)
	}
	small := Var(-100, 0).Softplus()
	if small.V <= 0 || small.V > 1e-40 || small.D[0] != small.V {
		t.Errorf("Softplus(-100): %+v", small)
	}
	mid := Var(0, 0).Softplus()
	if !dualAlmostEq(mid.V, math.Ln2, 1e-12) || !dualAlmostEq(mid.D[0], 0.5, 1e-12) {
		t.Errorf("Softplus(0): %+v", mid)
	}
}

// Property: dual derivatives of a composite expression agree with central
// finite differences.
func TestDualDerivativeMatchesFDProperty(t *testing.T) {
	expr := func(x, y Dual) Dual {
		// f(x, y) = sqrt(softplus(x·y)) + exp(−y)·x / (1 + x²)
		a := x.Mul(y).Softplus().AddConst(1e-9).Sqrt()
		b := y.Neg().Exp().Mul(x).Div(x.Mul(x).AddConst(1))
		return a.Add(b)
	}
	f := func(xv, yv float64) bool {
		if math.Abs(xv) > 5 || math.Abs(yv) > 5 {
			return true
		}
		g := expr(Var(xv, 0), Var(yv, 1))
		const h = 1e-6
		fdx := (expr(Const(xv+h), Const(yv)).V - expr(Const(xv-h), Const(yv)).V) / (2 * h)
		fdy := (expr(Const(xv), Const(yv+h)).V - expr(Const(xv), Const(yv-h)).V) / (2 * h)
		return dualAlmostEq(g.D[0], fdx, 1e-4) && dualAlmostEq(g.D[1], fdy, 1e-4)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
