package mos

import "math"

// VTherm is the thermal voltage used inside the smooth blending functions.
const VTherm = 0.02585

// IV holds a channel current and its partial derivatives with respect to the
// absolute gate, drain, and source terminal voltages.
type IV struct {
	I             float64
	DVg, DVd, DVs float64
}

// Ids returns the channel current flowing from the drain terminal to the
// source terminal, together with its derivatives, for a device of drawn
// width w and length l at absolute terminal voltages (vg, vd, vs) and body
// voltage vb. For NMOS the body is normally ground; for PMOS, VDD.
//
// The model is symmetric in source/drain: if the nominal drain is at the
// lower potential the roles swap and the current sign flips, which is what a
// physical MOSFET does and what a discharge chain needs (internal nodes can
// momentarily pull above their upper neighbours).
func (p *Params) Ids(w, l, vg, vd, vs, vb float64) IV {
	g := Var(vg, 0)
	d := Var(vd, 1)
	s := Var(vs, 2)
	b := Const(vb)
	if p.Pol == PMOS {
		// Evaluate the NMOS-form equations on negated voltages; current and
		// derivative signs fall out of the dual arithmetic.
		g, d, s, b = g.Neg(), d.Neg(), s.Neg(), b.Neg()
	}
	var ids Dual
	if d.V >= s.V {
		ids = p.idsCore(w, l, g, d, s, b)
	} else {
		ids = p.idsCore(w, l, g, s, d, b).Neg()
	}
	if p.Pol == PMOS {
		ids = ids.Neg()
	}
	return IV{I: ids.V, DVg: ids.D[0], DVd: ids.D[1], DVs: ids.D[2]}
}

// Vth returns the body-effect-adjusted threshold voltage magnitude for a
// device whose source sits at vs and body at vb (absolute voltages, NMOS
// convention applied after polarity folding).
func (p *Params) Vth(vs, vb float64) float64 {
	if p.Pol == PMOS {
		vs, vb = -vs, -vb
	}
	return p.vth(Const(vs), Const(vb)).V
}

// vth computes Vth = Vth0 + γ(√(φ + Vsb) − √φ) with a smooth floor keeping
// the square-root argument positive under forward body bias.
func (p *Params) vth(s, b Dual) Dual {
	vsb := s.Sub(b)
	arg := vsb.AddConst(p.Phi)
	// Smooth floor at 50 mV: arg' = softplus-blend(arg).
	const floor = 0.05
	arg = arg.AddConst(-floor).Scale(1 / (2 * VTherm)).Softplus().Scale(2 * VTherm).AddConst(floor)
	return arg.Sqrt().AddConst(-math.Sqrt(p.Phi)).Scale(p.Gamma).AddConst(p.Vth0)
}

// idsCore evaluates the NMOS-form smooth model with vd ≥ vs guaranteed.
func (p *Params) idsCore(w, l float64, g, d, s, b Dual) Dual {
	leff := l - 2*p.LD
	if leff <= 0 {
		leff = l * 0.5
	}
	nvt := p.NSub * VTherm

	vth := p.vth(s, b)
	vgt := g.Sub(s).Sub(vth)

	// Effective gate drive: smooth blend between exponential sub-threshold
	// conduction and strong-inversion (Veff → Vgt for Vgt ≫ nVT).
	veff := vgt.Scale(1 / nvt).Softplus().Scale(nvt)

	// Vertical-field mobility degradation.
	kpe := Const(p.KP).Div(veff.Scale(p.Theta).AddConst(1))

	// Velocity saturation: Vdsat = Veff·EsatL / (Veff + EsatL).
	esatL := p.ESat * leff
	vdsat := veff.Scale(esatL).Div(veff.AddConst(esatL))

	// Smooth drain saturation: Vdseff = Vds·(1 + (Vds/Vdsat)^a)^(−1/a).
	// Evaluated in the algebraically identical form with the sub-unity base
	// on whichever side is smaller, so the a-th power can never overflow
	// even when an off device makes Vdsat vanishingly small.
	vds := d.Sub(s)
	const a = 8.0
	ratio := vds.Div(vdsat)
	var vdseff Dual
	if ratio.V <= 1 {
		vdseff = vds.Mul(ratio.PowConst(a).AddConst(1).PowConst(-1 / a))
	} else {
		inv := Const(1).Div(ratio)
		vdseff = vdsat.Mul(inv.PowConst(a).AddConst(1).PowConst(-1 / a))
	}

	// Channel current with channel-length modulation.
	clm := vds.Scale(p.Lambda).AddConst(1)
	i := kpe.Scale(w / leff).Mul(veff.Sub(vdseff.Scale(0.5))).Mul(vdseff).Mul(clm)
	return i
}

// VdsatValue returns the saturation voltage for a device given gate and
// source voltages — the boundary the tabular model uses to split its linear
// (saturation) and quadratic (triode) fits.
func (p *Params) VdsatValue(l, vg, vs, vb float64) float64 {
	if p.Pol == PMOS {
		vg, vs, vb = -vg, -vs, -vb
	}
	leff := l - 2*p.LD
	if leff <= 0 {
		leff = l * 0.5
	}
	nvt := p.NSub * VTherm
	vth := p.vth(Const(vs), Const(vb)).V
	vgt := vg - vs - vth
	veff := softplusFloat(vgt/nvt) * nvt
	esatL := p.ESat * leff
	return veff * esatL / (veff + esatL)
}

func softplusFloat(x float64) float64 {
	switch {
	case x > 30:
		return x
	case x < -30:
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}
