package mos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var tech = CMOSP35()

const (
	wTest = 1.0e-6
	lTest = 0.35e-6
)

func TestNMOSCutoff(t *testing.T) {
	// Gate at 0: only sub-threshold leakage, many orders below on-current.
	off := tech.N.Ids(wTest, lTest, 0, 3.3, 0, 0)
	on := tech.N.Ids(wTest, lTest, 3.3, 3.3, 0, 0)
	if off.I < 0 {
		t.Errorf("cutoff current negative: %g", off.I)
	}
	if off.I > 1e-9 {
		t.Errorf("cutoff current too large: %g", off.I)
	}
	if on.I < 1e-4 || on.I > 5e-3 {
		t.Errorf("on current out of plausible range: %g", on.I)
	}
	if on.I/math.Max(off.I, 1e-300) < 1e6 {
		t.Errorf("on/off ratio too small: %g", on.I/off.I)
	}
}

func TestNMOSZeroVds(t *testing.T) {
	iv := tech.N.Ids(wTest, lTest, 3.3, 1.0, 1.0, 0)
	if iv.I != 0 {
		t.Errorf("Ids at Vds=0 should be exactly 0, got %g", iv.I)
	}
	if iv.DVd <= 0 {
		t.Errorf("channel conductance at Vds=0 should be positive, got %g", iv.DVd)
	}
}

func TestNMOSSourceDrainSymmetry(t *testing.T) {
	fwd := tech.N.Ids(wTest, lTest, 3.3, 2.0, 0.5, 0)
	rev := tech.N.Ids(wTest, lTest, 3.3, 0.5, 2.0, 0)
	// Swapping drain/source potentials must reverse the current. The body
	// terminal stays fixed, so magnitudes differ via body effect; both
	// directions must conduct.
	if fwd.I <= 0 || rev.I >= 0 {
		t.Errorf("symmetry: fwd %g, rev %g", fwd.I, rev.I)
	}
	// With the body tied to the lower terminal in both cases the magnitudes
	// would match exactly; check they are within body-effect distance.
	if math.Abs(fwd.I) < math.Abs(rev.I) {
		t.Errorf("reverse conduction should be weaker under body effect: fwd %g rev %g", fwd.I, rev.I)
	}
}

func TestPMOSConduction(t *testing.T) {
	// PMOS source at VDD, gate low: conducts, current flows source->drain,
	// i.e. Ids (drain->source) is negative.
	iv := tech.P.Ids(wTest, lTest, 0, 1.0, 3.3, 3.3)
	if iv.I >= 0 {
		t.Errorf("on PMOS should have negative drain->source current, got %g", iv.I)
	}
	off := tech.P.Ids(wTest, lTest, 3.3, 1.0, 3.3, 3.3)
	if math.Abs(off.I) > 1e-9 {
		t.Errorf("off PMOS leaking %g", off.I)
	}
}

func TestBodyEffectRaisesVth(t *testing.T) {
	v0 := tech.N.Vth(0, 0)
	v1 := tech.N.Vth(1.0, 0)
	if v1 <= v0 {
		t.Errorf("Vth(Vsb=1) = %g should exceed Vth(0) = %g", v1, v0)
	}
	if !dualAlmostEq(v0, tech.N.Vth0, 0.02) {
		t.Errorf("zero-bias Vth = %g, want ≈ %g", v0, tech.N.Vth0)
	}
}

func TestIdsMonotonicInVgs(t *testing.T) {
	prev := -1.0
	for vg := 0.0; vg <= 3.3; vg += 0.1 {
		iv := tech.N.Ids(wTest, lTest, vg, 3.3, 0, 0)
		if iv.I <= prev {
			t.Fatalf("Ids not strictly increasing in Vg at vg=%.2f: %g <= %g", vg, iv.I, prev)
		}
		prev = iv.I
	}
}

func TestIdsMonotonicInVds(t *testing.T) {
	prev := -1.0
	for vd := 0.0; vd <= 3.3; vd += 0.05 {
		iv := tech.N.Ids(wTest, lTest, 3.3, vd, 0, 0)
		if iv.I < prev {
			t.Fatalf("Ids decreasing in Vd at vd=%.2f", vd)
		}
		prev = iv.I
	}
}

func TestIdsScalesWithWidth(t *testing.T) {
	i1 := tech.N.Ids(1e-6, lTest, 3.3, 3.3, 0, 0).I
	i2 := tech.N.Ids(2e-6, lTest, 3.3, 3.3, 0, 0).I
	if !dualAlmostEq(i2, 2*i1, 1e-9) {
		t.Errorf("width scaling: I(2W) = %g, want %g", i2, 2*i1)
	}
}

func TestSaturationRegionShape(t *testing.T) {
	// Beyond Vdsat the current should be nearly flat (slope ≈ λ·Isat),
	// far smaller than the triode-region slope.
	vdsat := tech.N.VdsatValue(lTest, 3.3, 0, 0)
	if vdsat <= 0 || vdsat >= 3.3 {
		t.Fatalf("Vdsat = %g out of range", vdsat)
	}
	gTriode := tech.N.Ids(wTest, lTest, 3.3, 0.05, 0, 0).DVd
	gSat := tech.N.Ids(wTest, lTest, 3.3, 3.2, 0, 0).DVd
	if gSat >= gTriode/5 {
		t.Errorf("saturation slope %g not ≪ triode slope %g", gSat, gTriode)
	}
}

// Property: dual-number derivatives of Ids agree with central finite
// differences across the operating space, for both polarities.
func TestIdsDerivativesMatchFDProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := &tech.N
		vb := 0.0
		if r.Intn(2) == 1 {
			p = &tech.P
			vb = 3.3
		}
		vg := 3.3 * r.Float64()
		vd := 3.3 * r.Float64()
		vs := 3.3 * r.Float64()
		// Keep away from the non-smooth source/drain swap point.
		if math.Abs(vd-vs) < 0.02 {
			return true
		}
		w := (0.5 + 4*r.Float64()) * 1e-6
		l := (0.35 + 0.3*r.Float64()) * 1e-6
		iv := p.Ids(w, l, vg, vd, vs, vb)
		const h = 1e-6
		fdg := (p.Ids(w, l, vg+h, vd, vs, vb).I - p.Ids(w, l, vg-h, vd, vs, vb).I) / (2 * h)
		fdd := (p.Ids(w, l, vg, vd+h, vs, vb).I - p.Ids(w, l, vg, vd-h, vs, vb).I) / (2 * h)
		fds := (p.Ids(w, l, vg, vd, vs+h, vb).I - p.Ids(w, l, vg, vd, vs-h, vb).I) / (2 * h)
		scale := math.Abs(iv.I) + 1e-6
		return math.Abs(iv.DVg-fdg) < 1e-3*scale+1e-9 &&
			math.Abs(iv.DVd-fdd) < 1e-3*scale+1e-9 &&
			math.Abs(iv.DVs-fds) < 1e-3*scale+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: current is continuous across the source/drain swap (passes
// through zero at Vds = 0).
func TestIdsContinuousAtVdsZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vg := 3.3 * r.Float64()
		vs := 3.0 * r.Float64()
		const eps = 1e-7
		up := tech.N.Ids(wTest, lTest, vg, vs+eps, vs, 0).I
		dn := tech.N.Ids(wTest, lTest, vg, vs-eps, vs, 0).I
		return math.Abs(up) < 1e-6 && math.Abs(dn) < 1e-6 && up >= 0 && dn <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVdsatIncreasesWithGateDrive(t *testing.T) {
	lo := tech.N.VdsatValue(lTest, 1.0, 0, 0)
	hi := tech.N.VdsatValue(lTest, 3.3, 0, 0)
	if hi <= lo {
		t.Errorf("Vdsat should grow with gate drive: %g vs %g", lo, hi)
	}
}
