// Package stages generates the benchmark circuits of the paper's evaluation:
// minimum-size CMOS gates (Table I), randomly sized NMOS transistor stacks
// (Table II), the 6-transistor Manchester-carry-chain worst path (Figs. 7
// and 9), and the wire-loaded memory decoder tree (Figs. 3 and 10). Each
// workload carries everything both engines need — the SPICE netlist, the
// extracted stage and worst path, input waveforms, loads, and initial
// conditions — so QWM and the baseline analyze the identical problem.
package stages

import (
	"fmt"
	"math/rand"

	"qwm/internal/circuit"
	"qwm/internal/mos"
	"qwm/internal/wave"
)

// Workload is one benchmark circuit instance plus its stimulus.
type Workload struct {
	Name    string
	Netlist *circuit.Netlist
	Stage   *circuit.Stage
	Path    *circuit.Path
	Output  string
	Rail    string
	// Inputs maps gate nets to waveforms (also present as netlist sources).
	Inputs map[string]wave.Waveform
	// SwitchAt is the input switching instant delays are measured from.
	SwitchAt float64
	// Loads is extra fixed capacitance per node for the QWM chain builder
	// (the same capacitors appear in the netlist).
	Loads map[string]float64
	// IC is the shared initial condition (unfolded voltages).
	IC map[string]float64
	// TStop is the suggested transient span.
	TStop float64
	// Rising reports the output transition direction.
	Rising bool
}

// finish extracts the stage and worst path and validates the netlist.
func (w *Workload) finish(observe ...string) error {
	if err := w.Netlist.Validate(); err != nil {
		return err
	}
	stages := circuit.ExtractStages(w.Netlist, append([]string{w.Output}, observe...))
	for _, st := range stages {
		for _, o := range st.Outputs {
			if o == circuit.CanonName(w.Output) {
				w.Stage = st
			}
		}
	}
	if w.Stage == nil {
		return fmt.Errorf("stages: output %q not found in any extracted stage", w.Output)
	}
	p, err := circuit.LongestPath(w.Stage, w.Output, w.Rail)
	if err != nil {
		return err
	}
	w.Path = p
	return nil
}

// Inverter builds a minimum-ish CMOS inverter with load cl, switching at
// at seconds (falling output).
func Inverter(tech *mos.Tech, wn, wp, cl, at float64) (*Workload, error) {
	n := &circuit.Netlist{}
	in := wave.Step{At: at, Low: 0, High: tech.VDD}
	n.AddVSource("vvdd", "vdd", "0", wave.DC(tech.VDD))
	n.AddVSource("vin", "in", "0", in)
	n.AddTransistor(&circuit.Transistor{Name: "mn", Kind: circuit.KindNMOS, Drain: "out", Gate: "in", Source: "0", Body: "0", W: wn, L: tech.LMin})
	n.AddTransistor(&circuit.Transistor{Name: "mp", Kind: circuit.KindPMOS, Drain: "out", Gate: "in", Source: "vdd", Body: "vdd", W: wp, L: tech.LMin})
	n.AddCapacitor("cl", "out", "0", cl)
	w := &Workload{
		Name:     "inv",
		Netlist:  n,
		Output:   "out",
		Rail:     circuit.GroundNode,
		Inputs:   map[string]wave.Waveform{"in": in},
		SwitchAt: at,
		Loads:    map[string]float64{"out": cl},
		IC:       map[string]float64{"out": tech.VDD},
		TStop:    2e-9,
	}
	return w, w.finish()
}

// NAND builds an n-input NAND gate: n series NMOS, n parallel PMOS. The
// bottom (rail-side) NMOS input switches; the others are held high, so the
// worst-case falling transition discharges the whole precharged stack.
func NAND(tech *mos.Tech, nIn int, wn, wp, cl, at float64) (*Workload, error) {
	if nIn < 2 {
		return nil, fmt.Errorf("stages: NAND needs at least 2 inputs")
	}
	n := &circuit.Netlist{}
	sw := wave.Step{At: at, Low: 0, High: tech.VDD}
	n.AddVSource("vvdd", "vdd", "0", wave.DC(tech.VDD))
	n.AddVSource("vin0", "in0", "0", sw)
	inputs := map[string]wave.Waveform{"in0": sw}
	ic := map[string]float64{}
	for i := 1; i < nIn; i++ {
		name := fmt.Sprintf("in%d", i)
		n.AddVSource("v"+name, name, "0", wave.DC(tech.VDD))
		inputs[name] = wave.DC(tech.VDD)
	}
	// NMOS stack from ground: in0 at the bottom.
	prev := "0"
	for i := 0; i < nIn; i++ {
		upper := fmt.Sprintf("x%d", i+1)
		if i == nIn-1 {
			upper = "out"
		}
		n.AddTransistor(&circuit.Transistor{
			Name: fmt.Sprintf("mn%d", i), Kind: circuit.KindNMOS,
			Drain: upper, Gate: fmt.Sprintf("in%d", i), Source: prev, Body: "0",
			W: wn, L: tech.LMin,
		})
		ic[upper] = tech.VDD // precharged worst case
		prev = upper
	}
	for i := 0; i < nIn; i++ {
		n.AddTransistor(&circuit.Transistor{
			Name: fmt.Sprintf("mp%d", i), Kind: circuit.KindPMOS,
			Drain: "out", Gate: fmt.Sprintf("in%d", i), Source: "vdd", Body: "vdd",
			W: wp, L: tech.LMin,
		})
	}
	n.AddCapacitor("cl", "out", "0", cl)
	w := &Workload{
		Name:     fmt.Sprintf("nand%d", nIn),
		Netlist:  n,
		Output:   "out",
		Rail:     circuit.GroundNode,
		Inputs:   inputs,
		SwitchAt: at,
		Loads:    map[string]float64{"out": cl},
		IC:       ic,
		TStop:    3e-9,
	}
	return w, w.finish()
}

// NOR builds an n-input NOR gate: n series PMOS from VDD, n parallel NMOS
// to ground. The worst-case rising transition charges the pre-discharged
// PMOS stack when the supply-side input falls (the others are already low).
func NOR(tech *mos.Tech, nIn int, wn, wp, cl, at float64) (*Workload, error) {
	if nIn < 2 {
		return nil, fmt.Errorf("stages: NOR needs at least 2 inputs")
	}
	n := &circuit.Netlist{}
	sw := wave.Step{At: at, Low: tech.VDD, High: 0} // falling input
	n.AddVSource("vvdd", "vdd", "0", wave.DC(tech.VDD))
	n.AddVSource("vin0", "in0", "0", sw)
	inputs := map[string]wave.Waveform{"in0": sw}
	ic := map[string]float64{}
	for i := 1; i < nIn; i++ {
		name := fmt.Sprintf("in%d", i)
		n.AddVSource("v"+name, name, "0", wave.DC(0))
		inputs[name] = wave.DC(0)
	}
	// PMOS stack from VDD: in0 at the top (supply side).
	prev := "vdd"
	for i := 0; i < nIn; i++ {
		lower := fmt.Sprintf("y%d", i+1)
		if i == nIn-1 {
			lower = "out"
		}
		n.AddTransistor(&circuit.Transistor{
			Name: fmt.Sprintf("mp%d", i), Kind: circuit.KindPMOS,
			Drain: lower, Gate: fmt.Sprintf("in%d", i), Source: prev, Body: "vdd",
			W: wp, L: tech.LMin,
		})
		ic[lower] = 0 // pre-discharged worst case
		prev = lower
	}
	for i := 0; i < nIn; i++ {
		n.AddTransistor(&circuit.Transistor{
			Name: fmt.Sprintf("mn%d", i), Kind: circuit.KindNMOS,
			Drain: "out", Gate: fmt.Sprintf("in%d", i), Source: "0", Body: "0",
			W: wn, L: tech.LMin,
		})
	}
	n.AddCapacitor("cl", "out", "0", cl)
	w := &Workload{
		Name:     fmt.Sprintf("nor%d", nIn),
		Netlist:  n,
		Output:   "out",
		Rail:     circuit.SupplyNode,
		Inputs:   inputs,
		SwitchAt: at,
		Loads:    map[string]float64{"out": cl},
		IC:       ic,
		TStop:    float64(nIn) * 2.5e-9,
		Rising:   true,
	}
	return w, w.finish()
}

// Stack builds a pure NMOS discharge stack with the given widths (bottom
// first) and an output load — the paper's Table II workload shape. All
// internal nodes start precharged to VDD; the bottom gate switches at `at`.
func Stack(tech *mos.Tech, widths []float64, cl, at float64) (*Workload, error) {
	k := len(widths)
	if k < 1 {
		return nil, fmt.Errorf("stages: stack needs at least one transistor")
	}
	n := &circuit.Netlist{}
	sw := wave.Step{At: at, Low: 0, High: tech.VDD}
	n.AddVSource("vvdd", "vdd", "0", wave.DC(tech.VDD))
	n.AddVSource("vin0", "in0", "0", sw)
	inputs := map[string]wave.Waveform{"in0": sw}
	ic := map[string]float64{}
	prev := "0"
	for i, wd := range widths {
		upper := fmt.Sprintf("x%d", i+1)
		if i == k-1 {
			upper = "out"
		}
		gate := fmt.Sprintf("in%d", i)
		if i > 0 {
			n.AddVSource("v"+gate, gate, "0", wave.DC(tech.VDD))
			inputs[gate] = wave.DC(tech.VDD)
		}
		n.AddTransistor(&circuit.Transistor{
			Name: fmt.Sprintf("mn%d", i), Kind: circuit.KindNMOS,
			Drain: upper, Gate: gate, Source: prev, Body: "0",
			W: wd, L: tech.LMin,
		})
		ic[upper] = tech.VDD
		prev = upper
	}
	n.AddCapacitor("cl", "out", "0", cl)
	w := &Workload{
		Name:     fmt.Sprintf("stack%d", k),
		Netlist:  n,
		Output:   "out",
		Rail:     circuit.GroundNode,
		Inputs:   inputs,
		SwitchAt: at,
		Loads:    map[string]float64{"out": cl},
		IC:       ic,
		TStop:    float64(k) * 1.5e-9,
	}
	return w, w.finish()
}

// RandomStack builds a K-transistor stack with deterministic pseudo-random
// widths and load (paper Table II: "randomly chosen transistor widths").
func RandomStack(tech *mos.Tech, k int, seed int64) (*Workload, error) {
	r := rand.New(rand.NewSource(seed))
	widths := make([]float64, k)
	for i := range widths {
		widths[i] = (0.8 + 3.2*r.Float64()) * 1e-6
	}
	cl := (5 + 20*r.Float64()) * 1e-15
	w, err := Stack(tech, widths, cl, 0)
	if err != nil {
		return nil, err
	}
	w.Name = fmt.Sprintf("stack%d-s%d", k, seed)
	return w, nil
}

// CarryChainStack builds the 6-NMOS stack of the Manchester carry chain's
// longest path (paper Figs. 7 and 9): uniform 2 µm devices with a modest
// output load, all nodes precharged by the chain's φ precharge devices.
func CarryChainStack(tech *mos.Tech) (*Workload, error) {
	widths := []float64{2e-6, 2e-6, 2e-6, 2e-6, 2e-6, 2e-6}
	w, err := Stack(tech, widths, 12e-15, 0)
	if err != nil {
		return nil, err
	}
	w.Name = "carry6"
	return w, nil
}
