package stages

import (
	"fmt"

	"qwm/internal/awe"
	"qwm/internal/circuit"
	"qwm/internal/mos"
	"qwm/internal/wave"
)

// DefaultWire is a representative 0.35 µm metal layer: ~0.12 Ω/µm and
// ~0.2 fF/µm.
var DefaultWire = awe.WireRC{ROhmPerM: 0.12e6, CFPerM: 2e-10}

// DecoderTree builds the discharge path of the paper's memory decoder
// (Fig. 3): `levels` series NMOS address transistors connected by wires
// whose lengths double at each level, mimicking the tree layout where a
// level-k wire spans 2^k leaf cells. Each wire is reduced to its AWE π
// macro-model (paper §V-C) and the same π network is what the SPICE
// baseline simulates, so the comparison isolates the evaluation algorithm.
//
// baseLen is the level-0 wire length in meters (e.g. 50 µm); the level-k
// wire is baseLen·2^k.
func DecoderTree(tech *mos.Tech, levels int, w, baseLen, cl, at float64) (*Workload, error) {
	return decoderTree(tech, levels, w, baseLen, cl, at, false)
}

// DecoderTreeWithBranches is DecoderTree plus the UNSELECTED half of each
// tree fork: at every junction a side wire of the same level length hangs
// off the path, terminated by an off address transistor (its complementary
// address input is low). The branch is physically present in the SPICE
// netlist (π + off device); for the QWM chain it is reduced to a lumped
// load — the branch π capacitance plus the off device's junction — at the
// junction node, the standard STA treatment of non-switching fanout.
func DecoderTreeWithBranches(tech *mos.Tech, levels int, w, baseLen, cl, at float64) (*Workload, error) {
	return decoderTree(tech, levels, w, baseLen, cl, at, true)
}

func decoderTree(tech *mos.Tech, levels int, w, baseLen, cl, at float64, branches bool) (*Workload, error) {
	if levels < 2 {
		return nil, fmt.Errorf("stages: decoder tree needs at least 2 levels")
	}
	n := &circuit.Netlist{}
	sw := wave.Step{At: at, Low: 0, High: tech.VDD}
	n.AddVSource("vvdd", "vdd", "0", wave.DC(tech.VDD))
	n.AddVSource("vin0", "in0", "0", sw)
	inputs := map[string]wave.Waveform{"in0": sw}
	loads := map[string]float64{}
	ic := map[string]float64{}

	prev := "0"
	node := 0
	next := func(last bool) string {
		node++
		if last {
			return "out"
		}
		return fmt.Sprintf("x%d", node)
	}
	for lvl := 0; lvl < levels; lvl++ {
		gate := fmt.Sprintf("in%d", lvl)
		if lvl > 0 {
			n.AddVSource("v"+gate, gate, "0", wave.DC(tech.VDD))
			inputs[gate] = wave.DC(tech.VDD)
		}
		// Address transistor of this level.
		drain := next(false)
		n.AddTransistor(&circuit.Transistor{
			Name: fmt.Sprintf("m%d", lvl), Kind: circuit.KindNMOS,
			Drain: drain, Gate: gate, Source: prev, Body: "0",
			W: w, L: tech.LMin,
		})
		ic[drain] = tech.VDD
		prev = drain

		// Wire up to the next level (none after the last transistor's output
		// — the output IS the far end of the last wire).
		length := baseLen * float64(int(1)<<lvl)
		rw, cw := DefaultWire.Totals(length)
		pi, err := awe.PiForWire(rw, cw)
		if err != nil {
			return nil, err
		}
		far := next(lvl == levels-1)
		n.AddResistor(fmt.Sprintf("rw%d", lvl), prev, far, pi.R)
		n.AddCapacitor(fmt.Sprintf("cwn%d", lvl), prev, "0", pi.CNear)
		n.AddCapacitor(fmt.Sprintf("cwf%d", lvl), far, "0", pi.CFar)
		loads[prev] += pi.CNear
		loads[far] += pi.CFar
		ic[far] = tech.VDD
		if branches {
			// The unselected fork: a same-length side wire to an off address
			// device whose gate is the complemented (low) address bit.
			gBar := fmt.Sprintf("in%db", lvl)
			n.AddVSource("v"+gBar, gBar, "0", wave.DC(0))
			inputs[gBar] = wave.DC(0)
			bn := fmt.Sprintf("b%d", lvl)
			n.AddResistor(fmt.Sprintf("rwb%d", lvl), far, bn, pi.R)
			n.AddCapacitor(fmt.Sprintf("cwbn%d", lvl), far, "0", pi.CNear)
			n.AddCapacitor(fmt.Sprintf("cwbf%d", lvl), bn, "0", pi.CFar)
			bDev := fmt.Sprintf("bx%d", lvl)
			n.AddTransistor(&circuit.Transistor{
				Name: fmt.Sprintf("mb%d", lvl), Kind: circuit.KindNMOS,
				Drain: bn, Gate: gBar, Source: bDev, Body: "0",
				W: w, L: tech.LMin,
			})
			ic[bn] = tech.VDD
			ic[bDev] = tech.VDD
			// Lumped reduction for the QWM chain: the branch wire's total
			// capacitance plus the off device's drain junction land on the
			// junction node. (The wire resistance shields part of it; the
			// lumped form is the conservative STA treatment.)
			junc := tech.N.DefaultJunction(w)
			loads[far] += pi.CNear + pi.CFar + tech.N.JunctionCap(junc, tech.VDD/2)
		}
		prev = far
	}
	n.AddCapacitor("cl", "out", "0", cl)
	loads["out"] += cl

	wkl := &Workload{
		Name:     fmt.Sprintf("decoder%d", levels),
		Netlist:  n,
		Output:   "out",
		Rail:     circuit.GroundNode,
		Inputs:   inputs,
		SwitchAt: at,
		Loads:    loads,
		IC:       ic,
		TStop:    6e-9,
	}
	return wkl, wkl.finish()
}
