package stages

import (
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/mos"
)

func TestWideNetlistStructure(t *testing.T) {
	tech := mos.CMOSP35()
	const fan, segs = 5, 12
	nl, ins, outs, err := WideNetlist(tech, fan, segs, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0] != "in" {
		t.Fatalf("inputs = %v", ins)
	}
	if len(outs) != fan {
		t.Fatalf("got %d outputs, want %d", len(outs), fan)
	}
	// 1 input inverter + fan drivers (each absorbing its wire chain) + fan
	// receivers = 2*fan + 1 channel-connected stages.
	sts := circuit.ExtractStages(nl, outs)
	if got, want := len(sts), 2*fan+1; got != want {
		t.Fatalf("got %d stages, want %d", got, want)
	}
	// Every driver stage carries its full wire chain: 2 devices + segs wires.
	wireStages := 0
	for _, st := range sts {
		wires := 0
		for _, e := range st.Edges {
			if e.Kind == circuit.KindWire {
				wires++
			}
		}
		if wires > 0 {
			wireStages++
			if wires != segs {
				t.Errorf("stage %s has %d wire edges, want %d", st.Name, wires, segs)
			}
		}
	}
	if wireStages != fan {
		t.Fatalf("%d stages carry wires, want %d", wireStages, fan)
	}
	// The transistor geometry is identical across branches by construction —
	// that is what makes the branches one equivalence class.
	for _, tr := range nl.Transistors {
		if tr.L != tech.LMin {
			t.Fatalf("transistor %s has L=%g, want LMin", tr.Name, tr.L)
		}
	}
	if _, _, _, err := WideNetlist(tech, 0, 12, 1e-6, 0); err == nil {
		t.Error("fan=0 accepted")
	}
	if _, _, _, err := WideNetlist(tech, 1, 1, 1e-6, 0); err == nil {
		t.Error("segs=1 accepted")
	}
}
