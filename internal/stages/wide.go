package stages

import (
	"fmt"

	"qwm/internal/circuit"
	"qwm/internal/mos"
)

// WideNetlist builds the workload shape the hot-path optimizations target: a
// single input inverter fans out to `fan` STRUCTURALLY IDENTICAL branches,
// each a driver inverter pushing a long distributed RC wire (`segs` series
// segments, 50 Ω / 2 fF each) into a receiver inverter loaded with cl.
//
//	in ─▷○── d0 ──┬─▷○── r0_0 ─R─C─R─C─…─ x0 ──▷○── y0 ─┤cl
//	              ├─▷○── r1_0 ─R─C─R─C─…─ x1 ──▷○── y1 ─┤cl
//	              └─ … (fan branches)
//
// The branches differ only in node names, so equivalence-class memoization
// (sta.MemoConfig) collapses the fan driver and receiver evaluations to one
// representative each, and the wire runs are long series chains the
// model-order-reduction pre-pass (reduce.Config) collapses to moment-matched
// stubs. With both off, every branch pays a full-length evaluation.
//
// It returns the netlist, the primary inputs ("in") and the branch outputs
// (y0 … y{fan−1}).
func WideNetlist(tech *mos.Tech, fan, segs int, w, cl float64) (*circuit.Netlist, []string, []string, error) {
	if fan < 1 {
		return nil, nil, nil, fmt.Errorf("stages: wide fan must be >= 1, got %d", fan)
	}
	if segs < 2 {
		return nil, nil, nil, fmt.Errorf("stages: wide segs must be >= 2, got %d", segs)
	}
	const (
		rSeg = 50.0  // Ω per wire segment
		cSeg = 2e-15 // F per internal wire node
	)
	n := &circuit.Netlist{}
	wn, wp := w, 2*w
	lmin := tech.LMin

	inv := func(tag, in, out string) {
		n.AddTransistor(&circuit.Transistor{
			Name: "mn" + tag, Kind: circuit.KindNMOS,
			Drain: out, Gate: in, Source: "0", Body: "0", W: wn, L: lmin,
		})
		n.AddTransistor(&circuit.Transistor{
			Name: "mp" + tag, Kind: circuit.KindPMOS,
			Drain: out, Gate: in, Source: "vdd", Body: "vdd", W: wp, L: lmin,
		})
	}

	inv("i", "in", "d0")
	outputs := make([]string, fan)
	for f := 0; f < fan; f++ {
		drive := fmt.Sprintf("r%d_0", f)
		inv(fmt.Sprintf("d%d", f), "d0", drive)
		// Distributed RC line drive -> x_f: segs resistors with a grounded
		// cap at every internal node.
		prev := drive
		end := fmt.Sprintf("x%d", f)
		for s := 0; s < segs; s++ {
			next := fmt.Sprintf("r%d_%d", f, s+1)
			if s == segs-1 {
				next = end
			}
			n.AddResistor(fmt.Sprintf("rw%d_%d", f, s), prev, next, rSeg)
			if s < segs-1 {
				n.AddCapacitor(fmt.Sprintf("cw%d_%d", f, s), next, "0", cSeg)
			}
			prev = next
		}
		y := fmt.Sprintf("y%d", f)
		outputs[f] = y
		inv(fmt.Sprintf("r%d", f), end, y)
		n.AddCapacitor(fmt.Sprintf("cl%d", f), y, "0", cl)
	}
	return n, []string{"in"}, outputs, nil
}
