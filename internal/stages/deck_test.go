package stages

import (
	"math"
	"testing"

	"qwm/internal/netlist"
	"qwm/internal/wave"
)

const deckSrc = `nand2 pulldown
Vdd vdd 0 DC 3.3
Vin in0 0 PWL(0 0 0.1p 3.3)
Vin1 in1 0 DC 3.3
M1 x1 in0 0 0 NMOS W=1u L=0.35u
M2 out in1 x1 0 NMOS W=1u L=0.35u
MP1 out in0 vdd vdd PMOS W=2u L=0.35u
MP2 out in1 vdd vdd PMOS W=2u L=0.35u
C1 out 0 15f
.ic V(out)=3.3 V(x1)=3.3
.tran 1p 2n
.end
`

func TestFromDeck(t *testing.T) {
	d, err := netlist.ParseString(deckSrc)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FromDeck(d, "out", "0", tech.VDD, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Path.Transistors() != 2 {
		t.Errorf("K = %d", w.Path.Transistors())
	}
	if math.Abs(w.Loads["out"]-15e-15) > 1e-20 {
		t.Errorf("load = %g", w.Loads["out"])
	}
	if w.IC["x1"] != 3.3 {
		t.Errorf("ic = %v", w.IC)
	}
	if w.TStop != 2e-9 {
		t.Errorf("tstop = %g", w.TStop)
	}
	// Switching instant: the PWL's 50 % crossing.
	if math.Abs(w.SwitchAt-0.05e-12) > 1e-15 {
		t.Errorf("switchAt = %g", w.SwitchAt)
	}
	if _, ok := w.Inputs["in0"]; !ok {
		t.Error("switching input missing")
	}
	if w.Rising {
		t.Error("pull-down workload should be falling")
	}
}

func TestFromDeckDefaults(t *testing.T) {
	d, err := netlist.ParseString("inv\nVdd vdd 0 DC 3.3\nVa a 0 DC 0\nM1 out a 0 0 NMOS W=1u L=0.35u\nM2 out a vdd vdd PMOS W=2u L=0.35u\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	w, err := FromDeck(d, "out", "0", tech.VDD, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.TStop != 5e-9 {
		t.Errorf("default tstop = %g", w.TStop)
	}
	if w.SwitchAt != 0 {
		t.Errorf("no switching sources: switchAt = %g", w.SwitchAt)
	}
}

func TestFromDeckErrors(t *testing.T) {
	d, err := netlist.ParseString(deckSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromDeck(d, "nonexistent", "0", tech.VDD, 0); err == nil {
		t.Error("unknown output accepted")
	}
	// A source not referenced to ground is rejected.
	d2, err := netlist.ParseString("t\nVx a b DC 1\nR1 a b 1k\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromDeck(d2, "a", "0", tech.VDD, 0); err == nil {
		t.Error("non-ground-referenced source accepted")
	}
	_ = wave.DC(0)
}

func TestFromDeckFloatingCapLoadsBothEnds(t *testing.T) {
	d, err := netlist.ParseString("t\nVdd vdd 0 DC 3.3\nVa a 0 PWL(0 0 1p 3.3)\nM1 out a 0 0 NMOS W=1u L=0.35u\nM2 out a vdd vdd PMOS W=2u L=0.35u\nCc out x 5f\nR1 x 0 1k\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	w, err := FromDeck(d, "out", "0", tech.VDD, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Loads["out"]-5e-15) > 1e-20 {
		t.Errorf("floating cap not counted at out: %v", w.Loads)
	}
	if math.Abs(w.Loads["x"]-5e-15) > 1e-20 {
		t.Errorf("floating cap not counted at x: %v", w.Loads)
	}
}
