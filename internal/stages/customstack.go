package stages

import (
	"fmt"

	"qwm/internal/circuit"
	"qwm/internal/mos"
	"qwm/internal/wave"
)

// StackSpec describes a generalized series charge/discharge path for the
// differential-verification generator: per-device widths AND lengths, either
// polarity, explicit capacitance on every internal node, and an optional
// input ramp. The plain Stack/NOR builders cover the paper's fixed-length
// NMOS/PMOS shapes; this one spans the whole randomized space the verify
// harness samples (stack depths 1–10, mixed geometry, node caps).
type StackSpec struct {
	// PMOS selects a charging PMOS path from VDD (output rises); the
	// default is a discharging NMOS path from ground (output falls).
	PMOS bool
	// Widths are the per-device channel widths, rail-side first. The stack
	// depth is len(Widths).
	Widths []float64
	// Lengths are the per-device channel lengths; nil means LMin for every
	// device.
	Lengths []float64
	// NodeCaps holds explicit grounded capacitance per internal node: entry
	// i loads the node above device i (the last entry therefore adds to the
	// output on top of CL). nil means no internal caps.
	NodeCaps []float64
	// CL is the explicit output load.
	CL float64
	// At is the switching instant of the rail-side gate.
	At float64
	// InSlew, when positive, drives the switching gate with a ramp whose
	// 10–90 % transition time is InSlew instead of an ideal step (the full
	// ramp spans 1.25 × InSlew, matching the STA layer's convention).
	InSlew float64
}

// CustomStack builds the workload for a StackSpec: the SPICE netlist with
// sources, the extracted stage and longest path, the per-node load map both
// engines share, and the worst-case initial condition (internal nodes
// precharged for NMOS, pre-discharged for PMOS).
func CustomStack(tech *mos.Tech, sp StackSpec) (*Workload, error) {
	k := len(sp.Widths)
	if k < 1 {
		return nil, fmt.Errorf("stages: custom stack needs at least one transistor")
	}
	if sp.Lengths != nil && len(sp.Lengths) != k {
		return nil, fmt.Errorf("stages: %d lengths for %d widths", len(sp.Lengths), k)
	}
	if sp.NodeCaps != nil && len(sp.NodeCaps) != k {
		return nil, fmt.Errorf("stages: %d node caps for %d devices", len(sp.NodeCaps), k)
	}

	n := &circuit.Netlist{}
	n.AddVSource("vvdd", "vdd", "0", wave.DC(tech.VDD))

	// Switching stimulus: NMOS gates rise to turn on, PMOS gates fall.
	onLevel, offLevel := tech.VDD, 0.0
	rail, body, icLevel := circuit.GroundNode, "0", tech.VDD
	kind := circuit.KindNMOS
	name := "nstack"
	if sp.PMOS {
		onLevel, offLevel = 0, tech.VDD
		rail, body, icLevel = circuit.SupplyNode, "vdd", 0
		kind = circuit.KindPMOS
		name = "pstack"
	}
	var sw wave.Waveform = wave.Step{At: sp.At, Low: offLevel, High: onLevel}
	if sp.InSlew > 0 {
		full := 1.25 * sp.InSlew
		sw = wave.Ramp{T0: sp.At, T1: sp.At + full, Low: offLevel, High: onLevel}
	}
	n.AddVSource("vin0", "in0", "0", sw)
	inputs := map[string]wave.Waveform{"in0": sw}
	ic := map[string]float64{}
	loads := map[string]float64{}

	prev := rail
	for i, wd := range sp.Widths {
		upper := fmt.Sprintf("x%d", i+1)
		if i == k-1 {
			upper = "out"
		}
		gate := fmt.Sprintf("in%d", i)
		if i > 0 {
			n.AddVSource("v"+gate, gate, "0", wave.DC(onLevel))
			inputs[gate] = wave.DC(onLevel)
		}
		l := tech.LMin
		if sp.Lengths != nil {
			l = sp.Lengths[i]
		}
		n.AddTransistor(&circuit.Transistor{
			Name: fmt.Sprintf("m%d", i), Kind: kind,
			Drain: upper, Gate: gate, Source: prev, Body: body,
			W: wd, L: l,
		})
		ic[upper] = icLevel
		if sp.NodeCaps != nil && sp.NodeCaps[i] > 0 {
			n.AddCapacitor(fmt.Sprintf("cn%d", i), upper, "0", sp.NodeCaps[i])
			loads[upper] += sp.NodeCaps[i]
		}
		prev = upper
	}
	if sp.CL > 0 {
		n.AddCapacitor("cl", "out", "0", sp.CL)
		loads["out"] += sp.CL
	}

	w := &Workload{
		Name:     fmt.Sprintf("%s%d", name, k),
		Netlist:  n,
		Output:   "out",
		Rail:     rail,
		Inputs:   inputs,
		SwitchAt: sp.At,
		Loads:    loads,
		IC:       ic,
		TStop:    float64(k)*2.5e-9 + 2.5*sp.InSlew,
		Rising:   sp.PMOS,
	}
	if sp.InSlew > 0 {
		// Delays are measured from the ramp midpoint, as in sta.evalDirection.
		w.SwitchAt = sp.At + 1.25*sp.InSlew/2
	}
	return w, w.finish()
}
