package stages

import (
	"testing"

	"qwm/internal/circuit"
)

func TestCustomStackNMOS(t *testing.T) {
	w, err := CustomStack(tech, StackSpec{
		Widths:   []float64{1e-6, 2e-6, 3e-6},
		Lengths:  []float64{tech.LMin, 1.5 * tech.LMin, tech.LMin},
		NodeCaps: []float64{2e-15, 0, 1e-15},
		CL:       10e-15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Path.Transistors() != 3 {
		t.Errorf("K = %d, want 3", w.Path.Transistors())
	}
	if w.Rail != circuit.GroundNode || w.Rising {
		t.Errorf("NMOS stack should discharge: rail %q rising %v", w.Rail, w.Rising)
	}
	// Internal caps land on the right nodes and in the shared load map.
	if w.Loads["x1"] != 2e-15 {
		t.Errorf("x1 load = %g, want 2 fF", w.Loads["x1"])
	}
	if w.Loads["out"] != 11e-15 {
		t.Errorf("out load = %g, want CL + node cap = 11 fF", w.Loads["out"])
	}
	// Per-device lengths survive into the netlist.
	if got := w.Netlist.Transistors[1].L; got != 1.5*tech.LMin {
		t.Errorf("device 1 length = %g, want 1.5·LMin", got)
	}
	for _, nd := range w.Path.InternalNodes() {
		if w.IC[nd] != tech.VDD {
			t.Errorf("node %s not precharged", nd)
		}
	}
}

func TestCustomStackPMOS(t *testing.T) {
	w, err := CustomStack(tech, StackSpec{
		PMOS:   true,
		Widths: []float64{2e-6, 4e-6},
		CL:     8e-15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Rail != circuit.SupplyNode || !w.Rising {
		t.Errorf("PMOS stack should charge: rail %q rising %v", w.Rail, w.Rising)
	}
	for _, nd := range w.Path.InternalNodes() {
		if w.IC[nd] != 0 {
			t.Errorf("node %s not pre-discharged (ic %g)", nd, w.IC[nd])
		}
	}
	// The switching gate falls for PMOS.
	sw := w.Inputs["in0"]
	if sw.Eval(-1) <= sw.Eval(1) {
		t.Errorf("PMOS switching gate should fall: v(-1)=%g v(1)=%g", sw.Eval(-1), sw.Eval(1))
	}
}

func TestCustomStackRampInput(t *testing.T) {
	w, err := CustomStack(tech, StackSpec{
		Widths: []float64{1.5e-6},
		CL:     5e-15,
		InSlew: 80e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Delay reference moves to the ramp midpoint.
	want := 1.25 * 80e-12 / 2
	if d := w.SwitchAt - want; d > 1e-15 || d < -1e-15 {
		t.Errorf("SwitchAt = %g, want ramp midpoint %g", w.SwitchAt, want)
	}
}

func TestCustomStackErrors(t *testing.T) {
	if _, err := CustomStack(tech, StackSpec{}); err == nil {
		t.Error("empty stack accepted")
	}
	if _, err := CustomStack(tech, StackSpec{Widths: []float64{1e-6}, Lengths: []float64{1, 2}}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := CustomStack(tech, StackSpec{Widths: []float64{1e-6}, NodeCaps: []float64{1, 2}}); err == nil {
		t.Error("mismatched node caps accepted")
	}
}
