package stages

import (
	"fmt"

	"qwm/internal/circuit"
	"qwm/internal/mos"
)

// DecoderNetlist builds a multi-stage row-decoder netlist for the STA layer:
// `bits` address inverters feed 2^bits bits-input NAND gates (one per row,
// selecting on the true/complement address lines), each followed by a row
// driver inverter loaded with cl. The result is a wide, shallow stage DAG —
// 2·2^bits + bits stages across three dependency levels — which is the
// workload shape the parallel levelized engine is built for: every NAND and
// every driver in a level is an independent work item.
//
// It returns the netlist, the primary input nets (a0 … a{bits-1}) and the
// decoded row outputs (y0 … y{2^bits−1}).
func DecoderNetlist(tech *mos.Tech, bits int, w, cl float64) (*circuit.Netlist, []string, []string, error) {
	if bits < 1 || bits > 8 {
		return nil, nil, nil, fmt.Errorf("stages: decoder bits must be in [1,8], got %d", bits)
	}
	n := &circuit.Netlist{}
	wn, wp := w, 2*w
	lmin := tech.LMin

	addNMOS := func(name, d, g, s string) {
		n.AddTransistor(&circuit.Transistor{
			Name: name, Kind: circuit.KindNMOS,
			Drain: d, Gate: g, Source: s, Body: "0", W: wn, L: lmin,
		})
	}
	addPMOS := func(name, d, g string) {
		n.AddTransistor(&circuit.Transistor{
			Name: name, Kind: circuit.KindPMOS,
			Drain: d, Gate: g, Source: "vdd", Body: "vdd", W: wp, L: lmin,
		})
	}

	// Level 0: address inverters a_i -> ab_i.
	inputs := make([]string, bits)
	for i := 0; i < bits; i++ {
		a, ab := fmt.Sprintf("a%d", i), fmt.Sprintf("ab%d", i)
		inputs[i] = a
		addNMOS(fmt.Sprintf("mni%d", i), ab, a, "0")
		addPMOS(fmt.Sprintf("mpi%d", i), ab, a)
	}

	// Level 1: one bits-input NAND per row; level 2: the row driver.
	rows := 1 << bits
	outputs := make([]string, rows)
	for r := 0; r < rows; r++ {
		word := fmt.Sprintf("w%d", r)
		// Pull-down: series NMOS stack gated by the selected address lines.
		src := "0"
		for i := 0; i < bits; i++ {
			sel := fmt.Sprintf("ab%d", i)
			if r&(1<<i) != 0 {
				sel = fmt.Sprintf("a%d", i)
			}
			drain := word
			if i < bits-1 {
				drain = fmt.Sprintf("w%d_s%d", r, i)
			}
			addNMOS(fmt.Sprintf("mnn%d_%d", r, i), drain, sel, src)
			src = drain
			// Pull-up: parallel PMOS per input.
			addPMOS(fmt.Sprintf("mpn%d_%d", r, i), word, sel)
		}
		// Row driver inverter word -> y_r, loaded by cl.
		y := fmt.Sprintf("y%d", r)
		outputs[r] = y
		addNMOS(fmt.Sprintf("mnd%d", r), y, word, "0")
		addPMOS(fmt.Sprintf("mpd%d", r), y, word)
		n.AddCapacitor(fmt.Sprintf("cl%d", r), y, "0", cl)
	}
	return n, inputs, outputs, nil
}
