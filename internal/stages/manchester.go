package stages

import (
	"fmt"

	"qwm/internal/circuit"
	"qwm/internal/mos"
	"qwm/internal/wave"
)

// ManchesterChain builds the dynamic Manchester carry chain of paper Fig. 2:
// per bit slice, a propagate NMOS (gate Pᵢ) in series along the carry rail,
// a generate NMOS (gate Gᵢ) pulling the slice's carry node low, and a
// clocked precharge PMOS (gate φ) restoring it to VDD. The carry-in
// evaluation device sits at the bottom.
//
// The returned workload is the evaluation-phase worst case the paper takes
// its 6-NMOS stack from: all carry nodes precharged, every propagate input
// high, every generate input low, φ high (prechargers off), and the
// carry-in rising as a step at t = 0 — the carry then ripples through the
// whole propagate chain. For bits = 5 the discharge path is exactly the
// paper's 6-transistor stack (carry-in device + 5 propagate devices).
func ManchesterChain(tech *mos.Tech, bits int, wn, wp, cl, at float64) (*Workload, error) {
	if bits < 1 {
		return nil, fmt.Errorf("stages: carry chain needs at least 1 bit")
	}
	n := &circuit.Netlist{}
	sw := wave.Step{At: at, Low: 0, High: tech.VDD}
	n.AddVSource("vvdd", "vdd", "0", wave.DC(tech.VDD))
	n.AddVSource("vcin", "cin", "0", sw)
	n.AddVSource("vphi", "phi", "0", wave.DC(tech.VDD)) // evaluation phase
	inputs := map[string]wave.Waveform{
		"cin": sw,
		"phi": wave.DC(tech.VDD),
	}
	ic := map[string]float64{}

	// Carry-in evaluation device discharges c0.
	n.AddTransistor(&circuit.Transistor{
		Name: "min", Kind: circuit.KindNMOS,
		Drain: "c0", Gate: "cin", Source: "0", Body: "0",
		W: wn, L: tech.LMin,
	})
	ic["c0"] = tech.VDD
	n.AddTransistor(&circuit.Transistor{
		Name: "mpre0", Kind: circuit.KindPMOS,
		Drain: "c0", Gate: "phi", Source: "vdd", Body: "vdd",
		W: wp, L: tech.LMin,
	})

	prev := "c0"
	for i := 1; i <= bits; i++ {
		c := fmt.Sprintf("c%d", i)
		p := fmt.Sprintf("p%d", i)
		g := fmt.Sprintf("g%d", i)
		n.AddVSource("v"+p, p, "0", wave.DC(tech.VDD))
		n.AddVSource("v"+g, g, "0", wave.DC(0))
		inputs[p] = wave.DC(tech.VDD)
		inputs[g] = wave.DC(0)

		// Propagate device along the carry rail.
		n.AddTransistor(&circuit.Transistor{
			Name: "mp" + p, Kind: circuit.KindNMOS,
			Drain: c, Gate: p, Source: prev, Body: "0",
			W: wn, L: tech.LMin,
		})
		// Generate device pulling the slice node low (off in this scenario).
		n.AddTransistor(&circuit.Transistor{
			Name: "mg" + g, Kind: circuit.KindNMOS,
			Drain: c, Gate: g, Source: "0", Body: "0",
			W: wn, L: tech.LMin,
		})
		// Clocked precharge.
		n.AddTransistor(&circuit.Transistor{
			Name: fmt.Sprintf("mpre%d", i), Kind: circuit.KindPMOS,
			Drain: c, Gate: "phi", Source: "vdd", Body: "vdd",
			W: wp, L: tech.LMin,
		})
		ic[c] = tech.VDD
		prev = c
	}
	out := prev
	n.AddCapacitor("cl", out, "0", cl)

	w := &Workload{
		Name:     fmt.Sprintf("manchester%d", bits),
		Netlist:  n,
		Output:   out,
		Rail:     circuit.GroundNode,
		Inputs:   inputs,
		SwitchAt: at,
		Loads:    map[string]float64{out: cl},
		IC:       ic,
		TStop:    float64(bits+1) * 0.6e-9,
	}
	return w, w.finish()
}

// PassGateStage builds the paper's Fig. 1 example: a NAND2 whose output is
// channel-connected through a pass transistor to the observed node W1 — a
// design cell that "does not map naturally to a logic stage" and must be
// analyzed as one dynamically formed stage. Worst case: the NAND pull-down
// fires (both inputs high, bottom switching) with the pass gate enabled, so
// W1 discharges through three series NMOS devices.
func PassGateStage(tech *mos.Tech, wn, wp, cl, at float64) (*Workload, error) {
	n := &circuit.Netlist{}
	sw := wave.Step{At: at, Low: 0, High: tech.VDD}
	n.AddVSource("vvdd", "vdd", "0", wave.DC(tech.VDD))
	n.AddVSource("va", "a", "0", sw)
	n.AddVSource("vb", "b", "0", wave.DC(tech.VDD))
	n.AddVSource("ven", "en", "0", wave.DC(tech.VDD))
	inputs := map[string]wave.Waveform{
		"a": sw, "b": wave.DC(tech.VDD), "en": wave.DC(tech.VDD),
	}
	// NAND2 (a, b) -> nout.
	n.AddTransistor(&circuit.Transistor{Name: "mn1", Kind: circuit.KindNMOS, Drain: "t1", Gate: "a", Source: "0", Body: "0", W: wn, L: tech.LMin})
	n.AddTransistor(&circuit.Transistor{Name: "mn2", Kind: circuit.KindNMOS, Drain: "nout", Gate: "b", Source: "t1", Body: "0", W: wn, L: tech.LMin})
	n.AddTransistor(&circuit.Transistor{Name: "mpa", Kind: circuit.KindPMOS, Drain: "nout", Gate: "a", Source: "vdd", Body: "vdd", W: wp, L: tech.LMin})
	n.AddTransistor(&circuit.Transistor{Name: "mpb", Kind: circuit.KindPMOS, Drain: "nout", Gate: "b", Source: "vdd", Body: "vdd", W: wp, L: tech.LMin})
	// Pass transistor M1 to the wire node W1 (paper Fig. 1).
	n.AddTransistor(&circuit.Transistor{Name: "mpass", Kind: circuit.KindNMOS, Drain: "w1", Gate: "en", Source: "nout", Body: "0", W: wn, L: tech.LMin})
	n.AddCapacitor("cl", "w1", "0", cl)

	w := &Workload{
		Name:     "passgate",
		Netlist:  n,
		Output:   "w1",
		Rail:     circuit.GroundNode,
		Inputs:   inputs,
		SwitchAt: at,
		Loads:    map[string]float64{"w1": cl},
		IC:       map[string]float64{"t1": tech.VDD, "nout": tech.VDD, "w1": tech.VDD},
		TStop:    3e-9,
	}
	return w, w.finish()
}
