package stages

import (
	"fmt"

	"qwm/internal/circuit"
	"qwm/internal/netlist"
	"qwm/internal/wave"
)

// FromDeck converts a parsed SPICE deck into a Workload for the given
// output node and rail, wiring source waveforms to gate nets, explicit
// grounded capacitors to node loads, and .ic values to the shared initial
// condition. The switching instant is the earliest vdd/2 crossing of any
// input source (0 when none switch).
func FromDeck(d *netlist.Deck, output, rail string, vdd, tstop float64) (*Workload, error) {
	output = circuit.CanonName(output)
	rail = circuit.CanonName(rail)
	n := d.Netlist

	inputs := map[string]wave.Waveform{}
	for _, v := range n.VSources {
		if v.B != circuit.GroundNode {
			return nil, fmt.Errorf("stages: source %s is not ground-referenced", v.Name)
		}
		if v.Wave == nil {
			inputs[v.A] = wave.DC(0)
			continue
		}
		inputs[v.A] = asWaveform(v.Wave)
	}

	loads := map[string]float64{}
	for _, c := range n.Capacitors {
		switch {
		case c.B == circuit.GroundNode:
			loads[c.A] += c.C
		case c.A == circuit.GroundNode:
			loads[c.B] += c.C
		default:
			// Floating caps load both ends (worst-case grounded equivalent).
			loads[c.A] += c.C
			loads[c.B] += c.C
		}
	}

	switchAt := 0.0
	found := false
	for _, w := range inputs {
		cr, ok := w.(wave.Crosser)
		if !ok {
			continue
		}
		for _, rising := range []bool{true, false} {
			if tc, hit := cr.Crossing(vdd/2, rising); hit && (!found || tc < switchAt) {
				switchAt, found = tc, true
			}
		}
	}
	if tstop == 0 {
		tstop = d.TranStop
	}
	if tstop == 0 {
		tstop = 5e-9
	}

	wkl := &Workload{
		Name:     d.Title,
		Netlist:  n,
		Output:   output,
		Rail:     rail,
		Inputs:   inputs,
		SwitchAt: switchAt,
		Loads:    loads,
		IC:       d.IC,
		TStop:    tstop,
		Rising:   rail == circuit.SupplyNode,
	}
	return wkl, wkl.finish()
}

type evalOnly interface{ Eval(t float64) float64 }

// asWaveform adapts a source's Eval-only interface to wave.Waveform.
func asWaveform(w evalOnly) wave.Waveform {
	if wf, ok := w.(wave.Waveform); ok {
		return wf
	}
	return evalAdapter{w}
}

type evalAdapter struct{ e evalOnly }

func (a evalAdapter) Eval(t float64) float64 { return a.e.Eval(t) }
func (a evalAdapter) Span() (float64, float64) {
	return 0, 0
}
