package stages

import (
	"fmt"
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/mos"
)

var tech = mos.CMOSP35()

func TestInverterWorkload(t *testing.T) {
	w, err := Inverter(tech, 1e-6, 2e-6, 10e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Path.Transistors() != 1 {
		t.Errorf("K = %d", w.Path.Transistors())
	}
	if w.Stage == nil || len(w.Stage.Edges) != 2 {
		t.Errorf("stage edges = %d", len(w.Stage.Edges))
	}
	if w.IC["out"] != tech.VDD {
		t.Error("output not precharged")
	}
}

func TestNANDWorkload(t *testing.T) {
	w, err := NAND(tech, 4, 1e-6, 2e-6, 10e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Path.Transistors() != 4 {
		t.Errorf("pull-down K = %d, want 4", w.Path.Transistors())
	}
	if len(w.Stage.Edges) != 8 {
		t.Errorf("stage edges = %d, want 8", len(w.Stage.Edges))
	}
	// All internal nodes precharged.
	for _, nd := range w.Path.InternalNodes() {
		if w.IC[nd] != tech.VDD {
			t.Errorf("node %s not precharged", nd)
		}
	}
	if _, err := NAND(tech, 1, 1e-6, 2e-6, 1e-15, 0); err == nil {
		t.Error("1-input NAND accepted")
	}
}

func TestStackWorkload(t *testing.T) {
	w, err := Stack(tech, []float64{1e-6, 2e-6, 3e-6}, 10e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Path.Transistors() != 3 {
		t.Errorf("K = %d", w.Path.Transistors())
	}
	// Path order: bottom (in0) first.
	if w.Path.Elems[0].Edge.Gate != "in0" {
		t.Errorf("bottom gate = %s", w.Path.Elems[0].Edge.Gate)
	}
	if w.Path.Elems[0].Edge.W != 1e-6 || w.Path.Elems[2].Edge.W != 3e-6 {
		t.Error("widths not in rail-to-output order")
	}
	if _, err := Stack(tech, nil, 1e-15, 0); err == nil {
		t.Error("empty stack accepted")
	}
}

func TestRandomStackDeterministic(t *testing.T) {
	a, err := RandomStack(tech, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomStack(tech, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Path.Elems {
		if a.Path.Elems[i].Edge.W != b.Path.Elems[i].Edge.W {
			t.Fatal("same seed produced different widths")
		}
	}
	c, err := RandomStack(tech, 6, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Path.Elems {
		if a.Path.Elems[i].Edge.W != c.Path.Elems[i].Edge.W {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical widths")
	}
}

func TestCarryChainStack(t *testing.T) {
	w, err := CarryChainStack(tech)
	if err != nil {
		t.Fatal(err)
	}
	if w.Path.Transistors() != 6 {
		t.Errorf("K = %d, want 6", w.Path.Transistors())
	}
}

func TestDecoderTreeWorkload(t *testing.T) {
	w, err := DecoderTree(tech, 3, 2e-6, 50e-6, 20e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 transistors + 3 wire resistors on the path.
	if w.Path.Transistors() != 3 {
		t.Errorf("K = %d, want 3", w.Path.Transistors())
	}
	wires := 0
	for _, pe := range w.Path.Elems {
		if pe.Edge.Kind == circuit.KindWire {
			wires++
		}
	}
	if wires != 3 {
		t.Errorf("wires on path = %d, want 3", wires)
	}
	// Wire resistances double with level.
	var rs []float64
	for _, pe := range w.Path.Elems {
		if pe.Edge.Kind == circuit.KindWire {
			rs = append(rs, pe.Edge.R)
		}
	}
	if !(rs[1] > 1.9*rs[0] && rs[2] > 1.9*rs[1]) {
		t.Errorf("wire resistances do not double: %v", rs)
	}
	if _, err := DecoderTree(tech, 1, 2e-6, 50e-6, 1e-15, 0); err == nil {
		t.Error("single-level decoder accepted")
	}
}

func TestWorkloadNetlistsValid(t *testing.T) {
	mk := []func() (*Workload, error){
		func() (*Workload, error) { return Inverter(tech, 1e-6, 2e-6, 1e-15, 0) },
		func() (*Workload, error) { return NAND(tech, 3, 1e-6, 2e-6, 1e-15, 0) },
		func() (*Workload, error) { return RandomStack(tech, 8, 7) },
		func() (*Workload, error) { return DecoderTree(tech, 4, 2e-6, 40e-6, 10e-15, 0) },
	}
	for i, f := range mk {
		w, err := f()
		if err != nil {
			t.Fatalf("workload %d: %v", i, err)
		}
		if err := w.Netlist.Validate(); err != nil {
			t.Errorf("workload %d invalid: %v", i, err)
		}
		// Every path transistor's gate has an input waveform.
		for _, pe := range w.Path.Elems {
			if pe.Edge.Kind == circuit.KindWire {
				continue
			}
			if _, ok := w.Inputs[pe.Edge.Gate]; !ok {
				t.Errorf("workload %d: gate %s has no input", i, pe.Edge.Gate)
			}
		}
	}
}

func TestManchesterChainStructure(t *testing.T) {
	w, err := ManchesterChain(tech, 5, 2e-6, 2e-6, 12e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 6-NMOS stack: carry-in device + 5 propagate devices.
	if w.Path.Transistors() != 6 {
		t.Errorf("worst path K = %d, want 6", w.Path.Transistors())
	}
	// One merged stage: all bit slices are channel-connected.
	if got := len(w.Stage.Edges); got != 1+1+5*3 { // min + pre0 + (prop+gen+pre)×5
		t.Errorf("stage edges = %d, want 17", got)
	}
	// All carry nodes precharged.
	for i := 0; i <= 5; i++ {
		if w.IC[fmt.Sprintf("c%d", i)] != tech.VDD {
			t.Errorf("c%d not precharged", i)
		}
	}
	if _, err := ManchesterChain(tech, 0, 1e-6, 1e-6, 1e-15, 0); err == nil {
		t.Error("0-bit chain accepted")
	}
}

func TestPassGateStageStructure(t *testing.T) {
	w, err := PassGateStage(tech, 1e-6, 2e-6, 10e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	// NAND pull-down (2) + pass transistor (1).
	if w.Path.Transistors() != 3 {
		t.Errorf("K = %d, want 3", w.Path.Transistors())
	}
	// The NAND and the pass transistor form ONE stage (paper Example 1).
	if len(w.Stage.Edges) != 5 {
		t.Errorf("stage edges = %d, want 5", len(w.Stage.Edges))
	}
}

func TestDecoderTreeWithBranchesStructure(t *testing.T) {
	w, err := DecoderTreeWithBranches(tech, 3, 2e-6, 50e-6, 20e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The worst path is unchanged by the branches.
	if w.Path.Transistors() != 3 {
		t.Errorf("K = %d, want 3", w.Path.Transistors())
	}
	// Off branch devices joined the stage (channel-connected through wires).
	if len(w.Stage.Edges) < 9 { // 3 path FETs + 3 path wires + 3 branch wires (+3 branch FETs)
		t.Errorf("stage edges = %d, want ≥ 9", len(w.Stage.Edges))
	}
	// Junction loads exceed the bare tree's.
	bare, err := DecoderTree(tech, 3, 2e-6, 50e-6, 20e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range []string{"x2", "x4"} {
		if w.Loads[nd] <= bare.Loads[nd] {
			t.Errorf("node %s load %g not above bare %g", nd, w.Loads[nd], bare.Loads[nd])
		}
	}
}
