package la

import (
	"fmt"
	"math"
)

// NewtonProblem describes a nonlinear system F(x) = 0 for the damped
// Newton–Raphson driver. Eval must fill f (the residual) and jac (the dense
// Jacobian ∂F/∂x) at the point x. All slices have length N; jac is N×N.
type NewtonProblem struct {
	N    int
	Eval func(x []float64, f []float64, jac *Matrix)
	// FTol is the residual infinity-norm convergence threshold.
	FTol float64
	// XTol is the update infinity-norm convergence threshold.
	XTol float64
	// MaxIter bounds the iteration count (default 100).
	MaxIter int
	// Damping enables a halving line search on the residual norm when a full
	// Newton step increases ||F||.
	Damping bool
	// Clamp, when non-nil, is applied to the candidate x after each update to
	// keep iterates inside the model's valid region.
	Clamp func(x []float64)
}

// NewtonResult reports the outcome of a Newton solve.
type NewtonResult struct {
	X          []float64
	Iterations int
	Residual   float64
	Converged  bool
}

// SolveNewton runs damped Newton–Raphson from x0. It returns the best iterate
// found together with convergence information; err is non-nil only for
// unrecoverable linear-algebra failures.
func SolveNewton(p NewtonProblem, x0 []float64) (NewtonResult, error) {
	if len(x0) != p.N {
		panic("la: SolveNewton initial guess dimension mismatch")
	}
	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	fTol := p.FTol
	if fTol == 0 {
		fTol = 1e-9
	}
	xTol := p.XTol
	if xTol == 0 {
		xTol = 1e-12
	}

	x := append([]float64(nil), x0...)
	f := make([]float64, p.N)
	jac := NewMatrix(p.N, p.N)
	trial := make([]float64, p.N)
	ftrial := make([]float64, p.N)

	p.Eval(x, f, jac)
	fn := VecNormInf(f)

	for iter := 1; iter <= maxIter; iter++ {
		if fn <= fTol {
			return NewtonResult{X: x, Iterations: iter - 1, Residual: fn, Converged: true}, nil
		}
		neg := make([]float64, p.N)
		for i, v := range f {
			neg[i] = -v
		}
		dx, err := SolveDense(jac, neg)
		if err != nil {
			return NewtonResult{X: x, Iterations: iter, Residual: fn}, fmt.Errorf("newton iteration %d: %w", iter, err)
		}

		lambda := 1.0
		accepted := false
		for try := 0; try < 12; try++ {
			for i := range trial {
				trial[i] = x[i] + lambda*dx[i]
			}
			if p.Clamp != nil {
				p.Clamp(trial)
			}
			p.Eval(trial, ftrial, jac)
			fnTrial := VecNormInf(ftrial)
			if !p.Damping || fnTrial < fn || math.IsNaN(fn) {
				if math.IsNaN(fnTrial) || math.IsInf(fnTrial, 0) {
					lambda /= 2
					continue
				}
				copy(x, trial)
				copy(f, ftrial)
				fn = fnTrial
				accepted = true
				break
			}
			lambda /= 2
		}
		if !accepted {
			// Stuck: accept the last (smallest) damped step anyway to avoid
			// cycling, unless it is non-finite.
			fnTrial := VecNormInf(ftrial)
			if !math.IsNaN(fnTrial) && !math.IsInf(fnTrial, 0) {
				copy(x, trial)
				copy(f, ftrial)
				fn = fnTrial
			}
		}
		if VecNormInf(dx)*lambda <= xTol && fn <= math.Sqrt(fTol) {
			return NewtonResult{X: x, Iterations: iter, Residual: fn, Converged: fn <= fTol*1e3}, nil
		}
	}
	return NewtonResult{X: x, Iterations: maxIter, Residual: fn, Converged: fn <= fTol}, nil
}
