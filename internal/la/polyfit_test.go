package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolyEval(t *testing.T) {
	p := Poly{1, 2, 3} // 1 + 2x + 3x²
	if got := p.Eval(2); got != 17 {
		t.Errorf("Eval(2) = %g, want 17", got)
	}
	if got := p.Eval(0); got != 1 {
		t.Errorf("Eval(0) = %g, want 1", got)
	}
}

func TestPolyDeriv(t *testing.T) {
	p := Poly{1, 2, 3}
	d := p.Deriv() // 2 + 6x
	if d.Eval(1) != 8 {
		t.Errorf("Deriv.Eval(1) = %g, want 8", d.Eval(1))
	}
	if got := (Poly{5}).Deriv().Eval(3); got != 0 {
		t.Errorf("constant derivative = %g, want 0", got)
	}
}

func TestPolyDegree(t *testing.T) {
	if (Poly{1, 0, 0}).Degree() != 0 {
		t.Error("trailing zeros should not raise degree")
	}
	if (Poly{0, 0, 2}).Degree() != 2 {
		t.Error("degree of quadratic")
	}
}

func TestPolyFitExactQuadratic(t *testing.T) {
	want := Poly{0.5, -1.25, 2.0}
	var xs, ys []float64
	for x := -2.0; x <= 2.0; x += 0.25 {
		xs = append(xs, x)
		ys = append(ys, want.Eval(x))
	}
	got, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-9) {
			t.Errorf("coef[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if rms := FitRMS(got, xs, ys); rms > 1e-9 {
		t.Errorf("rms = %g, want ~0", rms)
	}
}

func TestPolyFitLinearOverdetermined(t *testing.T) {
	// y = 3x + 1 with symmetric noise that a least-squares line averages out.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1.1, 3.9, 7.1, 9.9}
	p, err := PolyFit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p[1], 3, 0.05) || !almostEq(p[0], 1, 0.1) {
		t.Errorf("fit = %v, want approx [1 3]", p)
	}
}

func TestPolyFitUnderdetermined(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{2}, 2); err == nil {
		t.Fatal("expected error with fewer samples than coefficients")
	}
}

// Property: fitting exact polynomial samples of degree d with degree d
// recovers values at arbitrary points (interpolation property of LSQ on
// consistent data).
func TestPolyFitRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		deg := r.Intn(4)
		truth := make(Poly, deg+1)
		for i := range truth {
			truth[i] = r.NormFloat64()
		}
		var xs, ys []float64
		for i := 0; i < deg+5; i++ {
			x := -1 + 2*r.Float64()
			xs = append(xs, x)
			ys = append(ys, truth.Eval(x))
		}
		fit, err := PolyFit(xs, ys, deg)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			x := -1 + 2*r.Float64()
			if !almostEq(fit.Eval(x), truth.Eval(x), 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the least-squares residual never exceeds the residual of the
// zero polynomial (optimality sanity check).
func TestPolyFitOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(10)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = -2 + 4*r.Float64()
			ys[i] = r.NormFloat64()
		}
		fit, err := PolyFit(xs, ys, 2)
		if err != nil {
			return false
		}
		zero := Poly{0}
		return FitRMS(fit, xs, ys) <= FitRMS(zero, xs, ys)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFitRMSEmpty(t *testing.T) {
	if FitRMS(Poly{1}, nil, nil) != 0 {
		t.Error("empty RMS should be 0")
	}
}

func TestFitRMSKnown(t *testing.T) {
	p := Poly{0}
	rms := FitRMS(p, []float64{0, 0}, []float64{3, -3})
	if !almostEq(rms, 3, 1e-12) {
		t.Errorf("rms = %g, want 3", rms)
	}
	_ = math.Pi
}
