package la

import "math"

// Tridiag is an n×n tridiagonal matrix stored as three diagonals:
// Sub[i] = A[i+1][i] (i = 0..n-2), Diag[i] = A[i][i], Sup[i] = A[i][i+1].
type Tridiag struct {
	Sub, Diag, Sup []float64
}

// NewTridiag allocates a zero n×n tridiagonal matrix.
func NewTridiag(n int) *Tridiag {
	if n < 1 {
		panic("la: tridiagonal order must be >= 1")
	}
	return &Tridiag{
		Sub:  make([]float64, n-1),
		Diag: make([]float64, n),
		Sup:  make([]float64, n-1),
	}
}

// N returns the order of the matrix.
func (t *Tridiag) N() int { return len(t.Diag) }

// Dense expands the tridiagonal matrix into a dense Matrix (for testing and
// the LU fallback path).
func (t *Tridiag) Dense() *Matrix {
	n := t.N()
	m := NewMatrix(n, n)
	t.DenseInto(m)
	return m
}

// DenseInto writes the dense expansion of the tridiagonal matrix into a
// caller-owned n×n matrix, zeroing entries off the three bands. It is the
// allocation-free core of Dense.
func (t *Tridiag) DenseInto(m *Matrix) {
	n := t.N()
	if m.Rows != n || m.Cols != n {
		panic("la: Tridiag.DenseInto dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, t.Diag[i])
		if i > 0 {
			m.Set(i, i-1, t.Sub[i-1])
		}
		if i < n-1 {
			m.Set(i, i+1, t.Sup[i])
		}
	}
}

// MulVec computes y = T·x.
func (t *Tridiag) MulVec(x []float64) []float64 {
	n := t.N()
	if len(x) != n {
		panic("la: Tridiag.MulVec dimension mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := t.Diag[i] * x[i]
		if i > 0 {
			s += t.Sub[i-1] * x[i-1]
		}
		if i < n-1 {
			s += t.Sup[i] * x[i+1]
		}
		y[i] = s
	}
	return y
}

// Solve solves T·x = b with the Thomas algorithm in O(n). It returns
// ErrSingular when a pivot underflows; callers should then fall back to the
// dense LU path (the Thomas algorithm does not pivot).
func (t *Tridiag) Solve(b []float64) ([]float64, error) {
	n := t.N()
	if len(b) != n {
		panic("la: Tridiag.Solve dimension mismatch")
	}
	x := make([]float64, n)
	cp := make([]float64, n-1) // modified superdiagonal
	if err := t.SolveInto(b, x, cp); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto is the allocation-free Thomas solve: x receives the solution and
// cp is caller-provided scratch of length ≥ n−1 (the modified
// superdiagonal). b and x may alias — the forward sweep reads b[i] before
// writing x[i]. This is the QWM Newton hot path's kernel; it performs zero
// heap allocations.
func (t *Tridiag) SolveInto(b, x, cp []float64) error {
	n := t.N()
	if len(b) != n || len(x) != n || len(cp) < n-1 {
		panic("la: Tridiag.SolveInto dimension mismatch")
	}
	tiny := 1e-14 * t.scale()
	d0 := t.Diag[0]
	if math.Abs(d0) <= tiny {
		return ErrSingular
	}
	if n > 1 {
		cp[0] = t.Sup[0] / d0
	}
	x[0] = b[0] / d0
	for i := 1; i < n; i++ {
		den := t.Diag[i] - t.Sub[i-1]*cp[i-1]
		if math.Abs(den) <= tiny {
			return ErrSingular
		}
		if i < n-1 {
			cp[i] = t.Sup[i] / den
		}
		x[i] = (b[i] - t.Sub[i-1]*x[i-1]) / den
	}
	for i := n - 2; i >= 0; i-- {
		x[i] -= cp[i] * x[i+1]
	}
	return nil
}

// scale returns the largest element magnitude, used to flag pivots that are
// zero or negligibly small, where elimination without pivoting would blow
// up.
func (t *Tridiag) scale() float64 {
	scale := 0.0
	for _, v := range t.Diag {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for _, v := range t.Sub {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for _, v := range t.Sup {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	return scale
}

// SolveRankOne solves (T + u·vᵀ)·x = b via the Sherman–Morrison formula
// (paper §IV-B, after Numerical Recipes): two Thomas solves,
//
//	T·y = b,  T·z = u,  x = y − v·y / (1 + v·z) · z.
//
// This is how QWM handles the Jacobian's dense last column while keeping the
// O(n) tridiagonal solve. Returns ErrSingular if T is singular to the Thomas
// algorithm or if 1 + vᵀz vanishes.
func (t *Tridiag) SolveRankOne(u, v, b []float64) ([]float64, error) {
	n := t.N()
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	cp := make([]float64, n-1)
	if err := t.SolveRankOneInto(u, v, b, x, y, z, cp); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveRankOneInto is the allocation-free Sherman–Morrison solve:
// (T + u·vᵀ)·x = b with the solution written into x. y, z and cp are
// caller-provided scratch of lengths n, n and ≥ n−1: y and z receive the two
// intermediate Thomas solves T·y = b and T·z = u. x must not alias y or z.
func (t *Tridiag) SolveRankOneInto(u, v, b, x, y, z, cp []float64) error {
	n := t.N()
	if len(u) != n || len(v) != n || len(b) != n || len(x) != n || len(y) != n || len(z) != n || len(cp) < n-1 {
		panic("la: SolveRankOneInto dimension mismatch")
	}
	if err := t.SolveInto(b, y, cp); err != nil {
		return err
	}
	if err := t.SolveInto(u, z, cp); err != nil {
		return err
	}
	den := 1 + Dot(v, z)
	if math.Abs(den) < 1e-300 {
		return ErrSingular
	}
	f := Dot(v, y) / den
	for i := range x {
		x[i] = y[i] - f*z[i]
	}
	return nil
}
