package la

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRootsQuadratic(t *testing.T) {
	// (x-1)(x-2) = x² - 3x + 2
	rs, err := RealRoots(Poly{2, -3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || !almostEq(rs[0], 1, 1e-8) || !almostEq(rs[1], 2, 1e-8) {
		t.Errorf("roots = %v, want [1 2]", rs)
	}
}

func TestRootsComplexPair(t *testing.T) {
	// x² + 1 has roots ±i.
	rs, err := Roots(Poly{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d roots, want 2", len(rs))
	}
	for _, r := range rs {
		if !almostEq(real(r), 0, 1e-8) || !almostEq(math.Abs(imag(r)), 1, 1e-8) {
			t.Errorf("root %v, want ±i", r)
		}
	}
	real_, err := RealRoots(Poly{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(real_) != 0 {
		t.Errorf("RealRoots of x²+1 = %v, want none", real_)
	}
}

func TestRootsLinearAndConstant(t *testing.T) {
	rs, err := RealRoots(Poly{-6, 2}) // 2x - 6
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || !almostEq(rs[0], 3, 1e-10) {
		t.Errorf("roots = %v, want [3]", rs)
	}
	rs2, err := Roots(Poly{5})
	if err != nil || rs2 != nil {
		t.Errorf("constant roots = %v err %v, want nil nil", rs2, err)
	}
}

func TestRootsTrailingZeroCoeffs(t *testing.T) {
	// Stored with a padded zero leading coefficient: still degree 1.
	rs, err := RealRoots(Poly{-4, 2, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || !almostEq(rs[0], 2, 1e-10) {
		t.Errorf("roots = %v, want [2]", rs)
	}
}

// Property: for polynomials constructed from random real roots, Durand–Kerner
// recovers the multiset of roots.
func TestRootsRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		roots := make([]float64, n)
		for i := range roots {
			// Separated roots in [-3, 3]; Durand–Kerner struggles only with
			// tight clusters, which the AWE use case avoids by construction.
			roots[i] = -3 + 6*r.Float64()
		}
		sort.Float64s(roots)
		ok := true
		for i := 1; i < n; i++ {
			if roots[i]-roots[i-1] < 0.2 {
				ok = false
			}
		}
		if !ok {
			return true // skip clustered draws
		}
		// Expand ∏(x - root).
		p := Poly{1}
		for _, root := range roots {
			q := make(Poly, len(p)+1)
			for i, c := range p {
				q[i] -= c * root
				q[i+1] += c
			}
			p = q
		}
		got, err := RealRoots(p)
		if err != nil || len(got) != n {
			return false
		}
		for i := range roots {
			if !almostEq(got[i], roots[i], 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every returned root satisfies |p(root)| ≈ 0.
func TestRootsResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		p := make(Poly, n+1)
		for i := range p {
			p[i] = r.NormFloat64()
		}
		if math.Abs(p[n]) < 0.1 {
			p[n] = 1
		}
		rs, err := Roots(p)
		if err != nil {
			return true // convergence failures are allowed to be reported
		}
		for _, root := range rs {
			val := complex(0, 0)
			for i := n; i >= 0; i-- {
				val = val*root + complex(p[i], 0)
			}
			scale := 1 + cmplx.Abs(root)
			if cmplx.Abs(val) > 1e-6*math.Pow(scale, float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
