package la

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization meets an (effectively) zero
// pivot and the system cannot be solved.
var ErrSingular = errors.New("la: singular matrix")

// LU holds an in-place LU factorization with partial pivoting of a square
// matrix: PA = LU, with L unit lower triangular.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a square matrix a with partial
// pivoting. a is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic("la: FactorLU requires a square matrix")
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	if err := factorInPlace(f.lu, f.piv, &f.sign); err != nil {
		return nil, err
	}
	return f, nil
}

// factorInPlace runs Gaussian elimination with partial pivoting directly on
// lu's storage, recording the row permutation in piv and its parity in sign.
func factorInPlace(lu *Matrix, piv []int, sign *int) error {
	n := lu.Rows
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude in column k.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > max {
				p, max = i, a
			}
		}
		if max == 0 {
			return ErrSingular
		}
		if p != k {
			rk := lu.Data[k*n : (k+1)*n]
			rp := lu.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			*sign = -*sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri := lu.Data[i*n : (i+1)*n]
			rk := lu.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return nil
}

// Solve solves A·x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("la: LU.Solve dimension mismatch")
	}
	x := make([]float64, n)
	luSolveInto(f.lu, f.piv, b, x)
	return x
}

// luSolveInto performs the permuted forward/back substitution of a factored
// system into a caller-owned vector. x must not alias b (the permutation step
// reads b out of order).
func luSolveInto(lu *Matrix, piv []int, b, x []float64) {
	n := lu.Rows
	// Apply permutation, then forward substitution with unit L.
	for i := 0; i < n; i++ {
		x[i] = b[piv[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		row := lu.Data[i*n : (i+1)*n]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := lu.Data[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense factors a and solves a·x = b in one call.
func SolveDense(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// SolveDenseInto is the allocation-free variant of SolveDense for hot paths
// that own their scratch: it copies a into lu, factors in place and writes the
// solution into x. lu must be n×n, piv length n; x must not alias b. a is not
// modified.
func SolveDenseInto(a *Matrix, b, x []float64, lu *Matrix, piv []int) error {
	n := a.Rows
	if a.Cols != n {
		panic("la: SolveDenseInto requires a square matrix")
	}
	if lu.Rows != n || lu.Cols != n || len(piv) != n || len(b) != n || len(x) != n {
		panic("la: SolveDenseInto dimension mismatch")
	}
	copy(lu.Data, a.Data)
	sign := 1
	if err := factorInPlace(lu, piv, &sign); err != nil {
		return err
	}
	luSolveInto(lu, piv, b, x)
	return nil
}
