package la

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDDTridiag(r *rand.Rand, n int) *Tridiag {
	t := NewTridiag(n)
	for i := 0; i < n; i++ {
		t.Diag[i] = 4 + r.Float64() // diagonally dominant
		if i < n-1 {
			t.Sup[i] = r.NormFloat64()
			t.Sub[i] = r.NormFloat64()
		}
	}
	return t
}

func TestTridiagSolveKnown(t *testing.T) {
	// [2 1 0; 1 2 1; 0 1 2] x = [4 8 8] -> x = [1 2 3]
	tri := NewTridiag(3)
	tri.Diag = []float64{2, 2, 2}
	tri.Sub = []float64{1, 1}
	tri.Sup = []float64{1, 1}
	x, err := tri.Solve([]float64{4, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestTridiagOrderOne(t *testing.T) {
	tri := NewTridiag(1)
	tri.Diag[0] = 5
	x, err := tri.Solve([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 {
		t.Errorf("x = %g, want 2", x[0])
	}
}

func TestTridiagSingular(t *testing.T) {
	tri := NewTridiag(2)
	tri.Diag = []float64{0, 0}
	tri.Sub = []float64{0}
	tri.Sup = []float64{0}
	if _, err := tri.Solve([]float64{1, 1}); err == nil {
		t.Fatal("expected singular error for zero matrix")
	}
}

// Property: Thomas solve agrees with dense LU on random diagonally dominant
// tridiagonal systems.
func TestTridiagMatchesLUProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		tri := randomDDTridiag(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x1, err := tri.Solve(b)
		if err != nil {
			return false
		}
		x2, err := SolveDense(tri.Dense(), b)
		if err != nil {
			return false
		}
		for i := range x1 {
			if !almostEq(x1[i], x2[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: T·Solve(T, b) reproduces b.
func TestTridiagResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		tri := randomDDTridiag(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		x, err := tri.Solve(b)
		if err != nil {
			return false
		}
		res := tri.MulVec(x)
		for i := range res {
			if !almostEq(res[i], b[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Sherman–Morrison rank-one solve agrees with the dense solve of
// the explicitly assembled matrix T + u·vᵀ.
func TestShermanMorrisonMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		tri := randomDDTridiag(r, n)
		u := make([]float64, n)
		v := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			u[i] = r.NormFloat64() * 0.3 // keep perturbation small vs diagonal
			v[i] = r.NormFloat64() * 0.3
			b[i] = r.NormFloat64()
		}
		x1, err := tri.SolveRankOne(u, v, b)
		if err != nil {
			return false
		}
		dense := tri.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dense.Add(i, j, u[i]*v[j])
			}
		}
		x2, err := SolveDense(dense, b)
		if err != nil {
			return false
		}
		for i := range x1 {
			if !almostEq(x1[i], x2[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The QWM Jacobian shape: tridiagonal everywhere except a dense last column,
// expressed as u = that column's out-of-band part, v = e_n.
func TestShermanMorrisonLastColumn(t *testing.T) {
	n := 5
	r := rand.New(rand.NewSource(42))
	tri := randomDDTridiag(r, n)
	u := make([]float64, n)
	v := make([]float64, n)
	v[n-1] = 1
	for i := 0; i < n-2; i++ { // out-of-band rows of the last column
		u[i] = r.NormFloat64()
	}
	b := []float64{1, 2, 3, 4, 5}
	x1, err := tri.SolveRankOne(u, v, b)
	if err != nil {
		t.Fatal(err)
	}
	dense := tri.Dense()
	for i := 0; i < n; i++ {
		dense.Add(i, n-1, u[i])
	}
	x2, err := SolveDense(dense, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if !almostEq(x1[i], x2[i], 1e-9) {
			t.Errorf("x[%d]: SM %g vs LU %g", i, x1[i], x2[i])
		}
	}
}

func TestTridiagDense(t *testing.T) {
	tri := NewTridiag(3)
	tri.Diag = []float64{1, 2, 3}
	tri.Sub = []float64{4, 5}
	tri.Sup = []float64{6, 7}
	d := tri.Dense()
	want := FromRows([][]float64{
		{1, 6, 0},
		{4, 2, 7},
		{0, 5, 3},
	})
	for i := range want.Data {
		if d.Data[i] != want.Data[i] {
			t.Fatalf("Dense mismatch:\n%v\nwant\n%v", d, want)
		}
	}
}

// SolveInto must match Solve exactly (same elimination order, same pivot
// checks) and tolerate b aliasing x.
func TestTridiagSolveIntoMatchesSolve(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		tri := randomDDTridiag(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		want, err := tri.Solve(b)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		cp := make([]float64, n-1)
		if err := tri.SolveInto(b, x, cp); err != nil {
			return false
		}
		for i := range x {
			if x[i] != want[i] {
				return false
			}
		}
		// Aliased: solve in place on a copy of b.
		ali := make([]float64, n)
		copy(ali, b)
		if err := tri.SolveInto(ali, ali, cp); err != nil {
			return false
		}
		for i := range ali {
			if ali[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolveRankOneIntoMatchesSolveRankOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		tri := randomDDTridiag(r, n)
		u := make([]float64, n)
		v := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			u[i] = r.NormFloat64() * 0.3
			v[i] = r.NormFloat64() * 0.3
			b[i] = r.NormFloat64()
		}
		want, err := tri.SolveRankOne(u, v, b)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		cp := make([]float64, n-1)
		if err := tri.SolveRankOneInto(u, v, b, x, y, z, cp); err != nil {
			return false
		}
		for i := range x {
			if x[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The in-place kernels are the QWM Newton hot path: they must not touch the
// heap at all.
func TestSolveIntoZeroAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 11
	tri := randomDDTridiag(r, n)
	u := make([]float64, n)
	v := make([]float64, n)
	b := make([]float64, n)
	v[n-1] = 1
	for i := 0; i < n-2; i++ {
		u[i] = r.NormFloat64() * 0.3
	}
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	cp := make([]float64, n-1)
	bad := false
	allocs := testing.AllocsPerRun(200, func() {
		if err := tri.SolveInto(b, x, cp); err != nil {
			bad = true
		}
		if err := tri.SolveRankOneInto(u, v, b, x, y, z, cp); err != nil {
			bad = true
		}
	})
	if bad {
		t.Fatal("solve failed")
	}
	if allocs != 0 {
		t.Errorf("in-place solves allocated %.1f times per run, want 0", allocs)
	}
}

func TestTridiagDenseIntoMatchesDense(t *testing.T) {
	tri := &Tridiag{
		Diag: []float64{4, 5, 6, 7},
		Sub:  []float64{1, 2, 3},
		Sup:  []float64{-1, -2, -3},
	}
	want := tri.Dense()
	m := NewMatrix(4, 4)
	// Pre-poison to verify DenseInto zeroes off-band entries.
	for i := range m.Data {
		m.Data[i] = 99
	}
	tri.DenseInto(m)
	for i := range want.Data {
		if m.Data[i] != want.Data[i] {
			t.Fatalf("Data[%d] = %g, want %g", i, m.Data[i], want.Data[i])
		}
	}
}
