package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveDense(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := SolveDense(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

func TestLUIdentity(t *testing.T) {
	n := 5
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{1, -2, 3, -4, 5}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Errorf("identity solve x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{
		{3, 0, 0},
		{0, 2, 0},
		{0, 0, -4},
	})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -24, 1e-12) {
		t.Errorf("det = %g, want -24", f.Det())
	}
}

func TestLUPivotingNeeded(t *testing.T) {
	// Zero on the (0,0) position forces a row swap.
	a := FromRows([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := SolveDense(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 7, 1e-14) || !almostEq(x[1], 3, 1e-14) {
		t.Errorf("got %v, want [7 3]", x)
	}
}

// Property: for random well-conditioned systems, A·Solve(A, b) ≈ b.
func TestLUSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal boost keeps the random matrix comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)*2)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x)
		for i := range res {
			if !almostEq(res[i], b[i], 1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: det(PA) = det(L)·det(U) is consistent with a cofactor expansion
// on 2×2 and 3×3 matrices.
func TestLUDetSmallProperty(t *testing.T) {
	f := func(a11, a12, a21, a22 float64) bool {
		if math.Abs(a11)+math.Abs(a12)+math.Abs(a21)+math.Abs(a22) > 1e6 {
			return true // skip wild inputs
		}
		m := FromRows([][]float64{{a11, a12}, {a21, a22}})
		want := a11*a22 - a12*a21
		fac, err := FactorLU(m)
		if err != nil {
			return math.Abs(want) < 1e-9*(1+m.MaxAbs()*m.MaxAbs())
		}
		return almostEq(fac.Det(), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	y := a.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", y)
	}
}

func TestVecNorms(t *testing.T) {
	v := []float64{3, -4}
	if VecNorm2(v) != 5 {
		t.Errorf("VecNorm2 = %g, want 5", VecNorm2(v))
	}
	if VecNormInf(v) != 4 {
		t.Errorf("VecNormInf = %g, want 4", VecNormInf(v))
	}
	if Dot(v, []float64{1, 1}) != -1 {
		t.Errorf("Dot = %g, want -1", Dot(v, []float64{1, 1}))
	}
}

func TestSolveDenseIntoMatchesSolveDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 8; n++ {
		a := NewMatrix(n, n)
		b := make([]float64, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		lu := NewMatrix(n, n)
		piv := make([]int, n)
		if err := SolveDenseInto(a, b, x, lu, piv); err != nil {
			t.Fatalf("n=%d: SolveDenseInto: %v", n, err)
		}
		for i := range want {
			if !almostEq(x[i], want[i], 1e-12) {
				t.Errorf("n=%d: x[%d] = %g, want %g", n, i, x[i], want[i])
			}
		}
	}
}

func TestSolveDenseIntoSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	x := make([]float64, 2)
	lu := NewMatrix(2, 2)
	if err := SolveDenseInto(a, []float64{1, 1}, x, lu, make([]int, 2)); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDenseIntoZeroAllocs(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(11))
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	lu := NewMatrix(n, n)
	piv := make([]int, n)
	allocs := testing.AllocsPerRun(100, func() {
		if err := SolveDenseInto(a, b, x, lu, piv); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SolveDenseInto allocated %.2f times per run, want 0", allocs)
	}
}
