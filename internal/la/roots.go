package la

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrNoConverge is returned when an iterative method fails to reach its
// tolerance within the iteration budget.
var ErrNoConverge = errors.New("la: iteration did not converge")

// Roots finds all complex roots of the polynomial p (lowest degree first)
// using the Durand–Kerner (Weierstrass) simultaneous iteration. Leading zero
// coefficients are trimmed. Used by the AWE substrate to extract poles from
// the matched denominator polynomial.
func Roots(p Poly) ([]complex128, error) {
	deg := p.Degree()
	if deg == 0 {
		return nil, nil
	}
	// Normalize to a monic polynomial of the true degree.
	c := make([]complex128, deg+1)
	lead := p[deg]
	for i := 0; i <= deg; i++ {
		c[i] = complex(p[i]/lead, 0)
	}
	eval := func(x complex128) complex128 {
		s := complex(0, 0)
		for i := deg; i >= 0; i-- {
			s = s*x + c[i]
		}
		return s
	}
	// Initial guesses on a circle of radius derived from the coefficient
	// bound, with an irrational angle step to break symmetry.
	radius := 0.0
	for i := 0; i < deg; i++ {
		if a := math.Abs(p[i] / lead); a > radius {
			radius = a
		}
	}
	radius = 1 + radius
	roots := make([]complex128, deg)
	for i := range roots {
		theta := 2*math.Pi*float64(i)/float64(deg) + 0.4
		roots[i] = cmplx.Rect(radius, theta)
	}
	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		maxStep := 0.0
		for i := range roots {
			num := eval(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident guesses.
				roots[i] += complex(1e-6*radius, 1e-6*radius)
				continue
			}
			step := num / den
			roots[i] -= step
			if a := cmplx.Abs(step); a > maxStep {
				maxStep = a
			}
		}
		if maxStep < 1e-13*radius {
			return roots, nil
		}
	}
	return roots, ErrNoConverge
}

// RealRoots filters Roots output down to roots with negligible imaginary
// parts, returning their real values sorted ascending.
func RealRoots(p Poly) ([]float64, error) {
	rs, err := Roots(p)
	if err != nil {
		return nil, err
	}
	var out []float64
	for _, r := range rs {
		if math.Abs(imag(r)) <= 1e-8*(1+math.Abs(real(r))) {
			out = append(out, real(r))
		}
	}
	// Insertion sort; root counts are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
