package la

import (
	"math"
	"testing"
)

func TestNewtonScalarSqrt(t *testing.T) {
	// Solve x² - 2 = 0.
	p := NewtonProblem{
		N: 1,
		Eval: func(x, f []float64, jac *Matrix) {
			f[0] = x[0]*x[0] - 2
			jac.Set(0, 0, 2*x[0])
		},
		FTol: 1e-12,
	}
	res, err := SolveNewton(p, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if !almostEq(res.X[0], math.Sqrt2, 1e-10) {
		t.Errorf("x = %g, want sqrt(2)", res.X[0])
	}
}

func TestNewtonCoupledSystem(t *testing.T) {
	// x² + y² = 4, x·y = 1 -> a known intersection near (1.93, 0.52).
	p := NewtonProblem{
		N: 2,
		Eval: func(x, f []float64, jac *Matrix) {
			f[0] = x[0]*x[0] + x[1]*x[1] - 4
			f[1] = x[0]*x[1] - 1
			jac.Set(0, 0, 2*x[0])
			jac.Set(0, 1, 2*x[1])
			jac.Set(1, 0, x[1])
			jac.Set(1, 1, x[0])
		},
		FTol:    1e-12,
		Damping: true,
	}
	res, err := SolveNewton(p, []float64{2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	x, y := res.X[0], res.X[1]
	if !almostEq(x*x+y*y, 4, 1e-9) || !almostEq(x*y, 1, 1e-9) {
		t.Errorf("solution (%g, %g) does not satisfy the system", x, y)
	}
}

func TestNewtonDampingHelpsSteepResidual(t *testing.T) {
	// arctan has a famous Newton divergence for |x0| > ~1.39 without damping.
	mk := func(damping bool) NewtonResult {
		p := NewtonProblem{
			N: 1,
			Eval: func(x, f []float64, jac *Matrix) {
				f[0] = math.Atan(x[0])
				jac.Set(0, 0, 1/(1+x[0]*x[0]))
			},
			FTol:    1e-10,
			MaxIter: 60,
			Damping: damping,
		}
		res, _ := SolveNewton(p, []float64{3})
		return res
	}
	damped := mk(true)
	if !damped.Converged || math.Abs(damped.X[0]) > 1e-8 {
		t.Errorf("damped Newton failed on atan: %+v", damped)
	}
}

func TestNewtonClamp(t *testing.T) {
	// Solve log(x) = 0 with a clamp keeping x positive; undamped Newton from
	// x0 = 3 would step to a negative x where log is undefined.
	p := NewtonProblem{
		N: 1,
		Eval: func(x, f []float64, jac *Matrix) {
			f[0] = math.Log(x[0])
			jac.Set(0, 0, 1/x[0])
		},
		FTol:    1e-12,
		Damping: true,
		Clamp: func(x []float64) {
			if x[0] < 1e-6 {
				x[0] = 1e-6
			}
		},
	}
	res, err := SolveNewton(p, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !almostEq(res.X[0], 1, 1e-8) {
		t.Errorf("x = %+v, want 1", res)
	}
}

func TestNewtonConvergedAtStart(t *testing.T) {
	p := NewtonProblem{
		N: 1,
		Eval: func(x, f []float64, jac *Matrix) {
			f[0] = x[0]
			jac.Set(0, 0, 1)
		},
	}
	res, err := SolveNewton(p, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("expected immediate convergence, got %+v", res)
	}
}

func TestNewtonSingularJacobian(t *testing.T) {
	p := NewtonProblem{
		N: 1,
		Eval: func(x, f []float64, jac *Matrix) {
			f[0] = 1 // unsatisfiable with zero slope
			jac.Set(0, 0, 0)
		},
		MaxIter: 5,
	}
	if _, err := SolveNewton(p, []float64{0}); err == nil {
		t.Fatal("expected singular Jacobian error")
	}
}
