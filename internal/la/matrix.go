// Package la provides the dense and structured linear-algebra kernels the
// timing engines are built on: LU factorization with partial pivoting, the
// Thomas tridiagonal solver, a Sherman–Morrison solve for tridiagonal plus
// rank-one systems, least-squares polynomial fitting, polynomial root
// finding, and a damped Newton–Raphson driver.
//
// Everything is hand-rolled on float64 slices; there are no external
// dependencies. Matrices are small (circuit-sized), so the implementations
// favour clarity and numerical robustness over cache blocking.
package la

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("la: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share one length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("la: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Add accumulates v into element (r, c).
func (m *Matrix) Add(r, c int, v float64) { m.Data[r*m.Cols+c] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Zero resets every element to zero, keeping the allocation.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = m·x for a square or rectangular m.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("la: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			s += v * x[c]
		}
		y[r] = s
	}
	return y
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			fmt.Fprintf(&b, "% .6g\t", m.At(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxAbs returns the largest absolute element value, 0 for empty matrices.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// VecNormInf returns the infinity norm of a vector. NaN elements propagate
// to the result so that diverged iterates are never mistaken for converged
// ones.
func VecNormInf(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if math.IsNaN(v) {
			return math.NaN()
		}
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// VecNorm2 returns the Euclidean norm of a vector.
func VecNorm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("la: Dot dimension mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
