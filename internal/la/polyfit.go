package la

import "math"

// Poly is a polynomial stored lowest degree first: Poly{c0, c1, c2} is
// c0 + c1·x + c2·x².
type Poly []float64

// Eval evaluates the polynomial at x (Horner's rule).
func (p Poly) Eval(x float64) float64 {
	s := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		s = s*x + p[i]
	}
	return s
}

// Deriv returns the derivative polynomial.
func (p Poly) Deriv() Poly {
	if len(p) <= 1 {
		return Poly{0}
	}
	d := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		d[i-1] = float64(i) * p[i]
	}
	return d
}

// Degree returns the index of the highest non-zero coefficient (0 for the
// zero polynomial).
func (p Poly) Degree() int {
	for i := len(p) - 1; i > 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return 0
}

// PolyFit computes the least-squares polynomial of the given degree through
// the sample points (xs[i], ys[i]) by solving the normal equations with the
// dense LU. This is the curve-fitting engine behind the tabular device model
// (paper Fig. 8: linear fit in saturation, quadratic fit in triode).
func PolyFit(xs, ys []float64, degree int) (Poly, error) {
	if len(xs) != len(ys) {
		panic("la: PolyFit length mismatch")
	}
	if degree < 0 {
		panic("la: PolyFit negative degree")
	}
	n := degree + 1
	if len(xs) < n {
		return nil, ErrSingular
	}
	// Normal equations: (VᵀV)·c = Vᵀy with Vandermonde V.
	// Accumulate power sums directly; degree ≤ 3 here so conditioning is fine
	// on the volt-scale inputs we fit.
	ata := NewMatrix(n, n)
	atb := make([]float64, n)
	for k, x := range xs {
		pow := 1.0
		pows := make([]float64, n)
		for i := 0; i < n; i++ {
			pows[i] = pow
			pow *= x
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ata.Add(i, j, pows[i]*pows[j])
			}
			atb[i] += pows[i] * ys[k]
		}
	}
	c, err := SolveDense(ata, atb)
	if err != nil {
		return nil, err
	}
	return Poly(c), nil
}

// FitRMS returns the root-mean-square residual of a fit over the samples.
func FitRMS(p Poly, xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for i, x := range xs {
		d := p.Eval(x) - ys[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
