package qwm

import "qwm/internal/wave"

// CaptureSink is an EventSink that records the full region decomposition of
// QWM evaluations — every committed region event plus, after the evaluation
// finishes, the piecewise-quadratic waveforms themselves — into a bounded
// ring buffer. It is the forensic counterpart of PrintfSink: instead of
// rendering events as text it keeps them structured, so a failed or
// suspicious evaluation can be dumped (waveforms, critical times, solver
// stats, per-region event trail) as a self-contained bundle.
//
// Protocol: call Begin(label) before starting an evaluation with this sink
// installed as Options.Events, run the evaluation, then call Commit(res)
// (or Abort(err) on failure) to close the record. Events arriving with no
// open record are counted in Orphaned and dropped rather than mis-attributed.
//
// CaptureSink is NOT safe for concurrent use; capture one evaluation at a
// time (the forensic re-run path is single-threaded by construction). The
// zero value is unusable — use NewCaptureSink.
type CaptureSink struct {
	limit    int
	records  []*CaptureRecord
	cur      *CaptureRecord
	dropped  int
	orphaned int
}

// CaptureRecord is one captured evaluation: its region event trail and the
// waveform outcome. Waveform fields are deep copies, so the record stays
// valid after the engine's buffers are reused or pooled.
type CaptureRecord struct {
	// Label identifies the evaluation (caller-chosen, e.g. "stage[3]/rise").
	Label string
	// Events is the committed-region trail, in commit order.
	Events []Event
	// Committed is true once Commit ran; false for Abort'ed or still-open
	// records.
	Committed bool
	// Err holds the failure message when the evaluation was Abort'ed.
	Err string

	// Folded are the chain-node waveforms in folded coordinates (1..M).
	Folded []*wave.PWQ
	// Nodes are the same waveforms unfolded to physical voltages.
	Nodes []*wave.PWQ
	// CriticalTimes are the region boundaries in seconds.
	CriticalTimes []float64
	// Stats is the solver accounting for the evaluation.
	Stats Stats
	// TailTruncated mirrors Result.TailTruncated.
	TailTruncated bool
}

// NewCaptureSink returns a sink retaining at most capacity records (oldest
// evicted first). capacity <= 0 selects a default of 16.
func NewCaptureSink(capacity int) *CaptureSink {
	if capacity <= 0 {
		capacity = 16
	}
	return &CaptureSink{limit: capacity}
}

// Begin opens a new record. An unfinished previous record is closed as-is
// (Committed false) rather than lost.
func (c *CaptureSink) Begin(label string) {
	c.finish()
	c.cur = &CaptureRecord{Label: label}
}

// Region implements EventSink: it appends one committed-region event to the
// open record. Events with no open record increment Orphaned and are dropped.
func (c *CaptureSink) Region(ev Event) {
	if c.cur == nil {
		c.orphaned++
		return
	}
	c.cur.Events = append(c.cur.Events, ev)
}

// Commit closes the open record with the evaluation's outcome, deep-copying
// the waveforms so the record survives engine buffer reuse. A nil res closes
// the record with events only. Commit without Begin is a no-op.
func (c *CaptureSink) Commit(res *Result) {
	if c.cur == nil {
		return
	}
	if res != nil {
		c.cur.Committed = true
		c.cur.Folded = copyWaves(res.Folded)
		c.cur.Nodes = copyWaves(res.Nodes)
		c.cur.CriticalTimes = append([]float64(nil), res.CriticalTimes...)
		c.cur.Stats = res.Stats
		c.cur.TailTruncated = res.TailTruncated
	}
	c.finish()
}

// Abort closes the open record as failed, keeping the event trail gathered
// so far. Abort without Begin is a no-op.
func (c *CaptureSink) Abort(err error) {
	if c.cur == nil {
		return
	}
	if err != nil {
		c.cur.Err = err.Error()
	}
	c.finish()
}

// finish moves the open record (if any) into the ring, evicting the oldest
// record when the buffer is full.
func (c *CaptureSink) finish() {
	if c.cur == nil {
		return
	}
	if len(c.records) >= c.limit {
		n := copy(c.records, c.records[1:])
		c.records = c.records[:n]
		c.dropped++
	}
	c.records = append(c.records, c.cur)
	c.cur = nil
}

// Records returns the closed records, oldest first. The slice is a copy;
// the records it points to are owned by the sink but never mutated after
// close.
func (c *CaptureSink) Records() []*CaptureRecord {
	out := make([]*CaptureRecord, len(c.records))
	copy(out, c.records)
	return out
}

// Last returns the most recently closed record, or nil.
func (c *CaptureSink) Last() *CaptureRecord {
	if len(c.records) == 0 {
		return nil
	}
	return c.records[len(c.records)-1]
}

// Dropped reports how many closed records the ring evicted.
func (c *CaptureSink) Dropped() int { return c.dropped }

// Orphaned reports how many events arrived with no open record.
func (c *CaptureSink) Orphaned() int { return c.orphaned }

// Reset discards all state (records, open record, counters); the capacity
// is kept.
func (c *CaptureSink) Reset() {
	c.records, c.cur, c.dropped, c.orphaned = nil, nil, 0, 0
}

func copyWaves(ws []*wave.PWQ) []*wave.PWQ {
	if ws == nil {
		return nil
	}
	out := make([]*wave.PWQ, len(ws))
	for i, w := range ws {
		if w == nil {
			continue
		}
		cp := &wave.PWQ{Segs: append([]wave.QuadSeg(nil), w.Segs...)}
		out[i] = cp
	}
	return out
}
