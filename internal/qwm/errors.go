package qwm

import "errors"

// The typed error taxonomy of the QWM solver. Every evaluation failure
// returned by Evaluate wraps exactly one of these sentinels, so callers
// (the sta degradation ladder, the verify harness) can classify failures
// with errors.Is instead of string matching:
//
//   - ErrNoConvergence: a region solve failed — the joint Newton guess
//     ladder diverged AND the bisection fallback found no event bracket, the
//     region budget ran out, or the first transistor never turns on within
//     the horizon. The paper's known failure mode near flat regions; the
//     caller should escalate to a slower-but-sure solver.
//   - ErrBudgetExceeded: the evaluation was aborted by an explicit resource
//     budget (Options.NRBudget total Newton iterations or Options.WallBudget
//     wall clock), not by a numerical failure. Retrying with a larger budget
//     or a cheaper tier is appropriate.
//   - ErrInternal: a solver invariant was violated (e.g. a region commit
//     produced a non-advancing segment). Previously a panic; now a typed
//     error so one broken evaluation cannot take down a whole Analyze.
var (
	ErrNoConvergence  = errors.New("qwm: no convergence")
	ErrBudgetExceeded = errors.New("qwm: evaluation budget exceeded")
	ErrInternal       = errors.New("qwm: internal inconsistency")
)
