package qwm

import (
	"testing"

	"qwm/internal/mos"
	"qwm/internal/wave"
)

// chainAllOn builds a K-stack whose gates are all held at VDD and whose
// internal nodes start mostly discharged (a mid-transient state), so every
// element conducts from t = 0 and the engine goes straight to the final
// (output-crossing) regions — the state the Newton hot path spends most of
// its time in.
func chainAllOn(t testing.TB, k int, w, cl float64) *Chain {
	tbl := nmosTable(t)
	ch := &Chain{Pol: mos.NMOS, VDD: tech.VDD}
	for i := 0; i < k; i++ {
		ch.Elems = append(ch.Elems, &Elem{Model: tbl, W: w, Gate: wave.DC(tech.VDD)})
		ch.Caps = append(ch.Caps, NodeCap{Fixed: cl})
		// Internal nodes low enough that VDD on the gate clears the
		// body-adjusted threshold; the output node still high so the final
		// crossing regions have work to do.
		v0 := 0.05 * tech.VDD * float64(i+1)
		if i == k-1 {
			v0 = 0.8 * tech.VDD
		}
		ch.V0 = append(ch.V0, v0)
	}
	return ch
}

// TestNewtonZeroAllocs pins the tentpole guarantee: once the engine's
// scratch is warm, one full joint Newton solve of a region — residuals,
// Jacobian assembly, Thomas + Sherman–Morrison update, damped line search —
// performs zero heap allocations per iteration.
func TestNewtonZeroAllocs(t *testing.T) {
	ch := chainAllOn(t, 4, 1e-6, 6e-15)
	e, err := newEngine(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.release()
	e.advanceFront()
	if e.front != e.m {
		t.Fatalf("front = %d, want %d (all gates at VDD must conduct)", e.front, e.m)
	}
	e.refreshCaps()
	e.refreshCurrents()

	// A final-region crossing a little below the current output level, as
	// the region loop's excursion cap would choose.
	target := e.v[e.m] - 0.1*ch.VDD
	ev := e.crossEvent(target)
	rs := e.newRegionSys(e.m, ev)

	// Find a τ′ guess the joint Newton converges from (the engine's own
	// guess ladder).
	x0 := make([]float64, e.m+1)
	x := make([]float64, e.m+1)
	found := false
	for _, dg := range []float64{1e-12, 1e-11, 1e-10, 1e-9} {
		for i := range x {
			x[i] = 0
		}
		x[e.m] = e.t + dg
		copy(x0, x)
		if rs.newton(x, e.o.MaxNR, false) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("joint Newton did not converge from any ladder guess")
	}

	// Warm once more, then measure. Each run replays the full iteration
	// sequence from the same starting point.
	failed := false
	allocs := testing.AllocsPerRun(100, func() {
		copy(x, x0)
		if !rs.newton(x, e.o.MaxNR, false) {
			failed = true
		}
	})
	if failed {
		t.Fatal("newton stopped converging during the measurement loop")
	}
	if allocs != 0 {
		t.Errorf("joint Newton solve allocated %.2f times per run, want 0 "+
			"(was ~8 slice allocations per iteration before the scratch pool)", allocs)
	}
}

// TestSolveAlphasZeroAllocs covers the bisection fallback's inner solve: it
// shares the scratch with the joint iteration and must also stay off the
// heap.
func TestSolveAlphasZeroAllocs(t *testing.T) {
	ch := chainAllOn(t, 4, 1e-6, 6e-15)
	e, err := newEngine(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.release()
	e.advanceFront()
	e.refreshCaps()
	e.refreshCurrents()

	ev := e.crossEvent(e.v[e.m] - 0.1*ch.VDD)
	rs := e.newRegionSys(e.m, ev)
	alpha := make([]float64, e.m)
	tauP := e.t + 1e-12
	if _, ok := rs.solveAlphas(alpha, tauP, 40); !ok {
		t.Fatal("inner α solve did not converge at the probe point")
	}
	failed := false
	allocs := testing.AllocsPerRun(100, func() {
		for i := range alpha {
			alpha[i] = 0
		}
		if _, ok := rs.solveAlphas(alpha, tauP, 40); !ok {
			failed = true
		}
	})
	if failed {
		t.Fatal("inner α solve stopped converging during measurement")
	}
	if allocs != 0 {
		t.Errorf("inner α solve allocated %.2f times per run, want 0", allocs)
	}
}

// TestEvaluateSteadyStateAllocs is the end-to-end memory-discipline check:
// with a warm scratch pool, a full chain evaluation allocates only its
// result structures (waveform segments, the Result), independent of the
// Newton iteration count.
func TestEvaluateSteadyStateAllocs(t *testing.T) {
	ch := fixedStack(t, 5, 1.2e-6, 6e-15, 0)
	// Warm the pool and record the iteration count once.
	res, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	iters := res.NRIterations
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Evaluate(ch, Options{}); err != nil {
			t.Error(err)
		}
	})
	// Result assembly is O(regions); it must not scale with NR iterations
	// (the pre-refactor engine allocated ~8 slices per iteration).
	if iters > 0 && allocs > float64(iters) {
		t.Errorf("Evaluate allocated %.0f objects for %d NR iterations — the inner loop is allocating", allocs, iters)
	}
}
