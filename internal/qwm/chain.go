// Package qwm implements the paper's contribution: piecewise quadratic
// waveform matching for the transient analysis of CMOS charge/discharge
// paths. Instead of integrating the circuit ODEs at thousands of time steps,
// the transient is divided into K regions at the critical points where
// successive stack transistors turn on; inside each region every node
// current is modeled as linear in time (voltage quadratic, one parameter α
// per node), and the α's plus the region end time τ′ are found by one small
// Newton solve that matches capacitor currents against the device I/V model
// at τ′ (paper Eq. 7). The Newton updates exploit the Jacobian's
// tridiagonal-plus-last-column structure via the Thomas algorithm and the
// Sherman–Morrison formula (paper §IV-B).
//
// The engine works in "folded" coordinates: a PMOS pull-up path is analyzed
// as the mathematically identical NMOS-style pull-down of the folded voltage
// v′ = VDD − v, and results are unfolded on output.
package qwm

import (
	"fmt"
	"math"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/wave"
)

// Elem is one series element of a charge/discharge chain. A transistor
// element has Model, W and Gate set; a wire element has R set and Model nil.
type Elem struct {
	Model devmodel.IVModel // folded I/V model; nil for a wire
	W     float64          // transistor width (m)
	R     float64          // wire resistance (Ω) when Model == nil
	Gate  wave.Waveform    // folded gate waveform (transistors only)
	Name  string           // diagnostic label
}

// IsWire reports whether the element is a resistive wire segment.
func (e *Elem) IsWire() bool { return e.Model == nil }

// JunctionAt is a voltage-dependent junction capacitance contribution to a
// chain node from some device (on-path or off-path).
type JunctionAt struct {
	P *mos.Params
	J mos.Junction
}

// NodeCap describes the total capacitance to ground of one chain node:
// a fixed part (loads, overlaps, channel and wire capacitance) plus
// voltage-dependent junctions — the paper's Eq. 1 with the Definition 2
// voltage dependence.
type NodeCap struct {
	Fixed     float64
	Junctions []JunctionAt
}

// At evaluates the node capacitance at a folded node voltage. vdd and the
// chain polarity convert the folded voltage to each junction's reverse bias.
func (nc *NodeCap) At(vFolded, vdd float64, chainPol mos.Polarity) float64 {
	c := nc.Fixed
	for _, ja := range nc.Junctions {
		c += ja.P.JunctionCapAtNode(ja.J, unfold(vFolded, vdd, chainPol), vdd)
	}
	return c
}

// Secant evaluates the effective (charge-based) capacitance over a folded
// voltage excursion [v1, v2]: ΔQ/ΔV for each junction, which makes the
// endpoint of a constant-capacitance region exact even though the junction
// capacitance varies across the region.
func (nc *NodeCap) Secant(v1, v2, vdd float64, chainPol mos.Polarity) float64 {
	if math.Abs(v2-v1) < 1e-6 {
		return nc.At(v1, vdd, chainPol)
	}
	c := nc.Fixed
	for _, ja := range nc.Junctions {
		r1 := reverseBias(ja.P, unfold(v1, vdd, chainPol), vdd)
		r2 := reverseBias(ja.P, unfold(v2, vdd, chainPol), vdd)
		if math.Abs(r2-r1) < 1e-9 {
			c += ja.P.JunctionCapAtNode(ja.J, unfold(v1, vdd, chainPol), vdd)
			continue
		}
		dq := ja.P.JunctionCharge(ja.J, r2) - ja.P.JunctionCharge(ja.J, r1)
		c += math.Abs(dq / (r2 - r1))
	}
	return c
}

func unfold(vFolded, vdd float64, chainPol mos.Polarity) float64 {
	if chainPol == mos.PMOS {
		return vdd - vFolded
	}
	return vFolded
}

func reverseBias(p *mos.Params, vUnfolded, vdd float64) float64 {
	if p.Pol == mos.PMOS {
		return vdd - vUnfolded
	}
	return vUnfolded
}

// Chain is the QWM input: a series path of K transistors (and optional
// wires) from a rail to an output node, with per-node capacitances and
// initial voltages. Element i connects node i (lower, rail side) and node
// i+1 (upper); node 0 is the rail (folded 0 V) and node M (M = len(Elems))
// is the output.
type Chain struct {
	// Pol is the polarity of the path transistors; PMOS chains are analyzed
	// folded.
	Pol mos.Polarity
	VDD float64
	// Elems from the rail to the output.
	Elems []*Elem
	// Caps[k-1] is node k's capacitance (k = 1..M).
	Caps []NodeCap
	// V0[k-1] is node k's initial *folded* voltage (k = 1..M). For the
	// precharged-discharge scenario these are all VDD.
	V0 []float64
}

// M returns the number of chain elements (= number of non-rail nodes).
func (ch *Chain) M() int { return len(ch.Elems) }

// Transistors returns the number of transistor elements — the paper's K.
func (ch *Chain) Transistors() int {
	k := 0
	for _, e := range ch.Elems {
		if !e.IsWire() {
			k++
		}
	}
	return k
}

// Validate checks structural invariants before evaluation.
func (ch *Chain) Validate() error {
	m := ch.M()
	if m == 0 {
		return fmt.Errorf("qwm: empty chain")
	}
	if len(ch.Caps) != m || len(ch.V0) != m {
		return fmt.Errorf("qwm: chain with %d elements needs %d caps and initial voltages (have %d, %d)",
			m, m, len(ch.Caps), len(ch.V0))
	}
	if ch.VDD <= 0 {
		return fmt.Errorf("qwm: VDD must be positive")
	}
	k := 0
	for i, e := range ch.Elems {
		if e.IsWire() {
			if e.R <= 0 {
				return fmt.Errorf("qwm: wire element %d with non-positive resistance", i)
			}
			continue
		}
		k++
		if e.W <= 0 {
			return fmt.Errorf("qwm: transistor element %d with non-positive width", i)
		}
		if e.Gate == nil {
			return fmt.Errorf("qwm: transistor element %d without gate waveform", i)
		}
	}
	if k == 0 {
		return fmt.Errorf("qwm: chain has no transistors")
	}
	for i, c := range ch.Caps {
		if c.At(ch.V0[i], ch.VDD, ch.Pol) <= 0 {
			return fmt.Errorf("qwm: node %d has non-positive capacitance", i+1)
		}
	}
	return nil
}

// FoldWave wraps an unfolded waveform as its folded counterpart
// v′(t) = VDD − v(t); used for PMOS chain gate inputs.
type FoldWave struct {
	W   wave.Waveform
	VDD float64
}

// Eval implements wave.Waveform.
func (f FoldWave) Eval(t float64) float64 { return f.VDD - f.W.Eval(t) }

// Span implements wave.Waveform.
func (f FoldWave) Span() (float64, float64) { return f.W.Span() }

// Crossing implements wave.Crosser when the wrapped waveform does, by
// folding the level and flipping the direction.
func (f FoldWave) Crossing(level float64, rising bool) (float64, bool) {
	cr, ok := f.W.(wave.Crosser)
	if !ok {
		return 0, false
	}
	return cr.Crossing(f.VDD-level, !rising)
}

// UnfoldPWQ converts a folded piecewise-quadratic waveform back to real
// voltages for a PMOS chain; NMOS chains are returned as-is.
func UnfoldPWQ(p *wave.PWQ, vdd float64, pol mos.Polarity) *wave.PWQ {
	if pol == mos.NMOS {
		return p
	}
	out := &wave.PWQ{Segs: make([]wave.QuadSeg, len(p.Segs))}
	for i, s := range p.Segs {
		out.Segs[i] = wave.QuadSeg{T0: s.T0, T1: s.T1, V0: vdd - s.V0, S: -s.S, A: -s.A}
	}
	return out
}
