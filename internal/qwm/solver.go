package qwm

import (
	"errors"
	"fmt"
	"math"

	"qwm/internal/faultinject"
	"qwm/internal/la"
)

// errInjectedPivot is the synthetic linear-solve failure raised by the
// faultinject.PivotBreakdown site; it drives the solver down the same
// dense-LU recovery path a real near-zero Thomas pivot does.
var errInjectedPivot = errors.New("faultinject: injected Thomas pivot breakdown")

// event closes a region's algebraic system: the turn-on condition of the
// next stack transistor (paper Eq. 7, last line) or an output-level crossing
// for the final regions. eval returns the residual, its derivative with
// respect to the top active node voltage, and its direct time derivative.
// The name is formatted lazily (diagnostics only) so constructing an event
// on the hot path does not allocate a string.
type event struct {
	kind string  // "turn-on" or "cross"
	arg  float64 // element index or target level
	eval func(tauP, vTop float64) (f, dfdv, dfdt float64)
}

func (ev *event) name() string {
	if ev.kind == "turn-on" {
		return fmt.Sprintf("turn-on[%d]", int(ev.arg))
	}
	return fmt.Sprintf("cross[%.3g]", ev.arg)
}

// turnOnEvent builds the G = V + Vth condition for transistor element i,
// whose lower node is the current top active node.
func (e *engine) turnOnEvent(i int) event {
	el := e.ch.Elems[i]
	return event{
		kind: "turn-on",
		arg:  float64(i),
		eval: func(tauP, vTop float64) (float64, float64, float64) {
			const h = 1e-4
			g := el.Gate.Eval(tauP)
			th := el.Model.Threshold(vTop)
			dth := (el.Model.Threshold(vTop+h) - el.Model.Threshold(vTop-h)) / (2 * h)
			// Gate slope for ramp inputs; steps contribute zero almost
			// everywhere (the bisection fallback handles the jump itself).
			const ht = 1e-13
			dg := (el.Gate.Eval(tauP+ht) - el.Gate.Eval(tauP-ht)) / (2 * ht)
			return g - vTop - th, -1 - dth, dg
		},
	}
}

// crossEvent builds the V_output = target condition for the final regions.
func (e *engine) crossEvent(target float64) event {
	return event{
		kind: "cross",
		arg:  target,
		eval: func(tauP, vTop float64) (float64, float64, float64) {
			return vTop - target, 1, 0
		},
	}
}

// regionSys holds the scratch state for one region's algebraic system with
// L active nodes: unknowns x = (α_1 … α_L, τ′).
type regionSys struct {
	e   *engine
	L   int
	ev  event
	lin bool // linear-waveform ablation: x are constant currents, not slopes

	v    []float64 // node voltages at τ′, index 0..m
	vdot []float64 // node dV/dt at τ′, index 0..m
	j    []float64 // element currents, index 0..L (j[L] ≡ 0)
	dLow []float64 // ∂J_i/∂V_lower
	dUp  []float64 // ∂J_i/∂V_upper

	iScale float64 // residual normalization for the current rows
}

// newRegionSys prepares the engine's single region-system header for a new
// region: all state slices are views into the pooled scratch, so entering a
// region allocates nothing but the event closure.
func (e *engine) newRegionSys(L int, ev event) *regionSys {
	s := e.scr
	rs := &e.rs
	rs.e, rs.L, rs.ev, rs.lin = e, L, ev, e.o.LinearWaveform
	rs.v = s.rsV[:e.m+1]
	rs.vdot = s.rsVdot[:e.m+1]
	rs.j = s.rsJ[:L+1]
	rs.dLow = s.rsDLow[:L+1]
	rs.dUp = s.rsDUp[:L+1]
	rs.iScale = 1e-7
	for k := 1; k <= L; k++ {
		if a := math.Abs(e.cur[k]); a > rs.iScale {
			rs.iScale = a
		}
	}
	return rs
}

// stateAt fills node voltages and slopes at τ′ for the quadratic model
// V_k(τ′) = V_k + (I_k·Δ + α_k·Δ²/2)/C_k (paper Eq. 6).
func (rs *regionSys) stateAt(alpha []float64, tauP float64) {
	e := rs.e
	delta := tauP - e.t
	for k := 1; k <= e.m; k++ {
		if k <= rs.L {
			ik := e.cur[k] + alpha[k-1]*delta
			vk := e.v[k] + (e.cur[k]*delta+0.5*alpha[k-1]*delta*delta)/e.capn[k]
			if rs.lin {
				ik = alpha[k-1]
				vk = e.v[k] + alpha[k-1]*delta/e.capn[k]
			}
			rs.v[k] = vk
			rs.vdot[k] = ik / e.capn[k]
		} else {
			rs.v[k] = e.v[k]
			rs.vdot[k] = 0
		}
	}
}

// currents evaluates the conducting element currents and derivatives at τ′.
func (rs *regionSys) currents(tauP float64) {
	for i := 0; i < rs.L; i++ {
		rs.j[i], rs.dLow[i], rs.dUp[i] = rs.e.elemJ(i, tauP, rs.v[i], rs.v[i+1])
	}
	rs.j[rs.L], rs.dLow[rs.L], rs.dUp[rs.L] = 0, 0, 0
}

// residual fills F (length L+1) at x = (α, τ′); returns false for invalid or
// non-finite states.
func (rs *regionSys) residual(x, F []float64) bool {
	e := rs.e
	L := rs.L
	tauP := x[L]
	delta := tauP - e.t
	if delta <= 0 || math.IsNaN(tauP) {
		return false
	}
	rs.stateAt(x[:L], tauP)
	rs.currents(tauP)
	for k := 1; k <= L; k++ {
		ik := e.cur[k] + x[k-1]*delta
		if rs.lin {
			ik = x[k-1]
		}
		F[k-1] = ik - (rs.j[k] - rs.j[k-1])
	}
	fe, _, _ := rs.ev.eval(tauP, rs.v[L])
	F[L] = fe
	for _, f := range F {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// norm is the mixed-unit convergence measure: current rows scaled by the
// region's current magnitude, the event row by VDD.
func (rs *regionSys) norm(F []float64) float64 {
	max := 0.0
	for r := 0; r < rs.L; r++ {
		if a := math.Abs(F[r]) / rs.iScale; a > max {
			max = a
		}
	}
	if a := math.Abs(F[rs.L]) / rs.e.ch.VDD; a > max {
		max = a
	}
	return max
}

// jacobian fills the tridiagonal band and the out-of-band τ′ column u
// (paper §IV-B: Â = A + u·vᵀ with v = e_{L+1}), or a dense matrix when the
// LU ablation is enabled. residual must have been called at x first.
func (rs *regionSys) jacobian(x []float64, tri *la.Tridiag, u []float64, dense *la.Matrix) {
	e := rs.e
	L := rs.L
	delta := x[L] - e.t
	// ∂V_k/∂x_k and ∂I_k/∂x_k depend on the waveform model.
	q := func(k int) float64 {
		if rs.lin {
			return delta / e.capn[k]
		}
		return 0.5 * delta * delta / e.capn[k]
	}
	dIdx := delta
	if rs.lin {
		dIdx = 1
	}

	set := func(r, c int, val float64) {
		if dense != nil {
			dense.Set(r, c, val)
			return
		}
		switch {
		case c == r:
			tri.Diag[r] = val
		case c == r-1:
			tri.Sub[r-1] = val
		case c == r+1:
			tri.Sup[r] = val
		default:
			// Out-of-band: only the τ′ column (c == L) ever lands here.
			u[r] = val
		}
	}
	if dense != nil {
		dense.Zero()
	} else {
		for i := range u {
			u[i] = 0
		}
		for i := range tri.Diag {
			tri.Diag[i] = 0
		}
		for i := range tri.Sub {
			tri.Sub[i] = 0
			tri.Sup[i] = 0
		}
	}

	for k := 1; k <= L; k++ {
		r := k - 1
		// ∂F_k/∂α_{k-1}: through J_{k-1}'s lower terminal.
		if k >= 2 {
			set(r, r-1, rs.dLow[k-1]*q(k-1))
		}
		// ∂F_k/∂α_k: direct + both adjacent element currents through V_k.
		diag := dIdx + (rs.dUp[k-1]-rs.dLow[k])*q(k)
		set(r, r, diag)
		// ∂F_k/∂α_{k+1}: through J_k's upper terminal (node k+1 active iff
		// k+1 ≤ L; for k = L, J_L ≡ 0).
		if k+1 <= L {
			set(r, r+1, -rs.dUp[k]*q(k+1))
		}
		// ∂F_k/∂τ′.
		dTau := x[k-1] // dI_k/dτ′ = α_k (zero for the linear model)
		if rs.lin {
			dTau = 0
		}
		dTau -= rs.dLow[k]*rs.vdot[k] + rs.dUp[k]*rs.vdotAt(k+1)
		dTau += rs.dLow[k-1]*rs.vdotAt(k-1) + rs.dUp[k-1]*rs.vdot[k]
		set(r, L, dTau)
	}
	// Event row.
	fe, dfdv, dfdt := rs.ev.eval(x[L], rs.v[L])
	_ = fe
	set(L, L-1, dfdv*q(L))
	set(L, L, dfdv*rs.vdot[L]+dfdt)
}

// vdotAt returns the slope of node k, treating the rail (0) and frozen nodes
// as static.
func (rs *regionSys) vdotAt(k int) float64 {
	if k <= 0 || k > rs.e.m {
		return 0
	}
	return rs.vdot[k]
}

// solveRegion finds (α, τ′) for a region with L active nodes. It first runs
// the paper's joint Newton iteration over several τ′ scale guesses, then
// falls back to a robust bisection on τ′ with an inner α solve.
func (e *engine) solveRegion(L int, ev event) (float64, []float64, error) {
	// Fault site: a forced NR divergence fails the whole region solve, as a
	// Newton blow-up near a flat region would. The site fires in both the
	// Newton and bisection modes, so at rate 1 it defeats the first two
	// ladder tiers and forces the sta caller down to the spice tier.
	if e.o.Fault.Fire(faultinject.NRDivergence, e.o.FaultKey) {
		return 0, nil, fmt.Errorf("%w: injected NR divergence at region %d (faultinject)",
			ErrNoConvergence, e.res.Stats.Regions)
	}

	rs := e.newRegionSys(L, ev)

	if !e.o.ForceBisection {
		// Fixed-size guess ladder (stack-allocated; the hot path must not
		// touch the heap).
		var guesses [7]float64
		ng := 0
		if e.prevDur > 0 {
			guesses[ng] = e.prevDur
			guesses[ng+1] = e.prevDur / 4
			ng += 2
		}
		for _, dg := range [...]float64{1e-12, 1e-11, 1e-10, 1e-9, 5e-9} {
			guesses[ng] = dg
			ng++
		}
		x := e.scr.x[:L+1]
		for _, dg := range guesses[:ng] {
			for i := range x {
				x[i] = 0
			}
			if rs.lin {
				// The linear model's unknowns are absolute currents; start
				// from the region-entry values.
				copy(x[:L], e.cur[1:L+1])
			}
			x[L] = e.t + dg
			if ok := rs.newton(x, e.o.MaxNR, e.o.UseDenseLU); ok {
				// Copy the result out of the shared x buffer: the caller's
				// secant second pass holds it across the next solveRegion
				// call, so the two most recent results rotate through a
				// double buffer.
				out := e.scr.nextAlpha(L)
				copy(out, x[:L])
				return x[L], out, nil
			}
			if e.budgetHit {
				return 0, nil, e.budgetErr()
			}
		}
	}
	// Bisection fallback on τ′ with an inner α solve at each trial point.
	tauP, alpha, err := rs.bisect()
	if err != nil {
		if e.budgetHit {
			return 0, nil, e.budgetErr()
		}
		return 0, nil, fmt.Errorf("%w: %v", ErrNoConvergence, err)
	}
	out := e.scr.nextAlpha(L)
	copy(out, alpha)
	return tauP, out, nil
}

// newton runs the damped joint Newton iteration in place on x, returning
// whether it converged. Every work vector is a view into the engine's
// pooled scratch, and the linear solve uses the in-place Thomas +
// Sherman–Morrison kernels; both the dense-LU ablation and the rare
// Thomas-breakdown recovery solve through the scratch's dense workspace, so
// an iteration performs zero heap allocations on every path.
func (rs *regionSys) newton(x []float64, maxIter int, dense bool) bool {
	e := rs.e
	L := rs.L
	s := e.scr
	F := s.F[:L+1]
	if !rs.residual(x, F) {
		return false
	}
	fn := rs.norm(F)

	tri := s.triN(L + 1)
	u := s.u[:L+1]
	v := s.vcol[:L+1]
	for i := range v {
		v[i] = 0
	}
	v[L] = 1
	var dm *la.Matrix
	if dense {
		dm = s.denseN(L + 1)
	}
	neg := s.neg[:L+1]
	trial := s.trial[:L+1]
	Ftrial := s.Ftrial[:L+1]
	dx := s.dx[:L+1]

	const tol = 1e-7
	for iter := 0; iter < maxIter; iter++ {
		e.res.Stats.NRIters++
		if e.o.NRBudget > 0 && e.res.Stats.NRIters > e.o.NRBudget {
			e.budgetHit = true
			return false
		}
		if fn <= tol {
			return true
		}
		rs.jacobian(x, tri, u, dm)
		for i, f := range F {
			neg[i] = -f
		}
		var err error
		if dense {
			e.res.Stats.DenseFallbacks++
			err = la.SolveDenseInto(dm, neg, dx, s.luN(L+1), s.piv[:L+1])
		} else {
			// Fault site: a synthetic near-zero Thomas pivot exercises the
			// same in-scratch dense-LU recovery a real breakdown does; the
			// iteration then proceeds normally, so this fault must never
			// change results — only the DenseFallbacks counter.
			if e.o.Fault.Fire(faultinject.PivotBreakdown, e.o.FaultKey) {
				err = errInjectedPivot
			} else {
				err = tri.SolveRankOneInto(u, v, neg, dx, s.y[:L+1], s.z[:L+1], s.cp[:L])
			}
			if err != nil {
				// Thomas pivot breakdown: recover via a dense LU solve
				// through the scratch workspace (no allocation).
				e.res.Stats.DenseFallbacks++
				full := s.denseN(L + 1)
				tri.DenseInto(full)
				for r := 0; r <= L; r++ {
					full.Add(r, L, u[r])
				}
				err = la.SolveDenseInto(full, neg, dx, s.luN(L+1), s.piv[:L+1])
			}
		}
		if err != nil {
			return false
		}
		lambda := 1.0
		accepted := false
		for try := 0; try < 12; try++ {
			for i := range trial {
				trial[i] = x[i] + lambda*dx[i]
			}
			if trial[L] <= e.t {
				trial[L] = 0.5 * (x[L] + e.t)
			}
			if rs.residual(trial, Ftrial) {
				if fnT := rs.norm(Ftrial); fnT < fn || fnT <= tol {
					copy(x, trial)
					copy(F, Ftrial)
					fn = fnT
					accepted = true
					break
				}
			}
			lambda /= 2
		}
		if !accepted {
			return fn <= tol
		}
	}
	return fn <= tol
}

// solveAlphas solves the inner L-dimensional current-matching system at a
// fixed τ′ (used by the bisection fallback). Returns the event residual and
// whether the inner solve converged.
func (rs *regionSys) solveAlphas(alpha []float64, tauP float64, maxIter int) (float64, bool) {
	e := rs.e
	L := rs.L
	s := e.scr
	// The joint Newton iteration is never active while the inner solve runs
	// (solveAlphas is reached only from the bisection fallback and the
	// time-capped probe), so the two share the scratch work vectors.
	x := s.x[:L+1]
	copy(x, alpha)
	x[L] = tauP
	F := s.F[:L+1]
	if !rs.residual(x, F) {
		return 0, false
	}
	fn := rs.normAlpha(F)
	tri := s.triN(L + 1)
	u := s.u[:L+1]
	neg := s.neg[:L]
	dx := s.dx[:L]
	trial := s.trial[:L+1]
	Ftrial := s.Ftrial[:L+1]
	const tol = 1e-7
	for iter := 0; iter < maxIter; iter++ {
		e.res.Stats.NRIters++
		if e.o.NRBudget > 0 && e.res.Stats.NRIters > e.o.NRBudget {
			e.budgetHit = true
			return 0, false
		}
		if fn <= tol {
			copy(alpha, x[:L])
			return F[L], true
		}
		rs.jacobian(x, tri, u, nil)
		// Restrict to the leading L×L block: dropping the event row and the
		// τ′ column (which occupies Sup[L-1] in the full band).
		inner := s.innerN(L)
		copy(inner.Diag, tri.Diag[:L])
		if L > 1 {
			copy(inner.Sub, tri.Sub[:L-1])
			copy(inner.Sup, tri.Sup[:L-1])
		}
		for i := 0; i < L; i++ {
			neg[i] = -F[i]
		}
		var cp []float64
		if L > 1 {
			cp = s.cp[:L-1]
		}
		if err := inner.SolveInto(neg, dx, cp); err != nil {
			return 0, false
		}
		lambda := 1.0
		accepted := false
		for try := 0; try < 12; try++ {
			copy(trial, x)
			for i := 0; i < L; i++ {
				trial[i] = x[i] + lambda*dx[i]
			}
			if rs.residual(trial, Ftrial) {
				if fnT := rs.normAlpha(Ftrial); fnT < fn || fnT <= tol {
					copy(x, trial)
					copy(F, Ftrial)
					fn = fnT
					accepted = true
					break
				}
			}
			lambda /= 2
		}
		if !accepted {
			break
		}
	}
	if fn <= tol {
		copy(alpha, x[:L])
		return F[L], true
	}
	return 0, false
}

// normAlpha measures only the current-matching rows.
func (rs *regionSys) normAlpha(F []float64) float64 {
	max := 0.0
	for r := 0; r < rs.L; r++ {
		if a := math.Abs(F[r]) / rs.iScale; a > max {
			max = a
		}
	}
	return max
}

// bisect locates τ′ by expanding a bracket on the event residual and
// bisecting, with the α subsystem solved at every trial point. Slow but
// hard to defeat; used only when the joint Newton iteration fails.
func (rs *regionSys) bisect() (float64, []float64, error) {
	e := rs.e
	L := rs.L
	alpha := e.scr.alphaBis[:L]
	for i := range alpha {
		alpha[i] = 0
	}
	if rs.lin {
		copy(alpha, e.cur[1:L+1])
	}

	// The inner α solve keeps its own iteration floor: the fallback must
	// stay robust even when the caller throttles the joint Newton budget.
	innerIter := e.o.MaxNR
	if innerIter < 30 {
		innerIter = 30
	}
	g := func(tauP float64) (float64, bool) {
		trial := e.scr.alphaTrial[:L]
		copy(trial, alpha)
		fe, ok := rs.solveAlphas(trial, tauP, innerIter)
		if ok {
			copy(alpha, trial)
		}
		return fe, ok
	}
	start := e.t + 1e-15
	ga, okA := g(start)
	if !okA {
		return 0, nil, fmt.Errorf("inner solve failed at region start (%s)", rs.ev.name())
	}
	dt := e.prevDur
	if dt <= 0 {
		dt = 1e-12
	}
	b := e.t + dt
	var gb float64
	found := false
	for b <= e.o.Horizon {
		var okB bool
		gb, okB = g(b)
		if okB && ga*gb <= 0 {
			found = true
			break
		}
		b = e.t + (b-e.t)*2
	}
	if !found {
		return 0, nil, fmt.Errorf("no %s event before the %g s horizon", rs.ev.name(), e.o.Horizon)
	}
	a := start
	for iter := 0; iter < 80 && (b-a) > 1e-18+1e-12*(b-e.t); iter++ {
		mid := 0.5 * (a + b)
		gm, ok := g(mid)
		if !ok {
			// Shrink toward the known-good side.
			b = mid
			continue
		}
		if ga*gm <= 0 {
			b, gb = mid, gm
		} else {
			a, ga = mid, gm
		}
	}
	_ = gb
	tauP := 0.5 * (a + b)
	if fe, ok := g(tauP); !ok || math.IsNaN(fe) {
		return 0, nil, fmt.Errorf("inner solve failed at bisection result (%s)", rs.ev.name())
	}
	return tauP, alpha, nil
}
