package qwm

import (
	"errors"
	"fmt"
	"testing"
)

func TestCaptureSinkRecordsEvaluation(t *testing.T) {
	ch := fixedStack(t, 3, 1e-6, 5e-15, 0)
	sink := NewCaptureSink(4)
	sink.Begin("stack3")
	res, err := Evaluate(ch, Options{Events: sink})
	if err != nil {
		t.Fatal(err)
	}
	sink.Commit(res)

	rec := sink.Last()
	if rec == nil {
		t.Fatal("no record after Commit")
	}
	if rec.Label != "stack3" || !rec.Committed || rec.Err != "" {
		t.Fatalf("record header = %+v", rec)
	}
	if len(rec.Events) != res.Stats.Regions {
		t.Fatalf("captured %d events, solver committed %d regions", len(rec.Events), res.Stats.Regions)
	}
	if rec.Stats != res.Stats {
		t.Fatalf("stats %+v, want %+v", rec.Stats, res.Stats)
	}
	if len(rec.Folded) != len(res.Folded) || len(rec.Nodes) != len(res.Nodes) {
		t.Fatalf("waveform counts folded %d/%d nodes %d/%d",
			len(rec.Folded), len(res.Folded), len(rec.Nodes), len(res.Nodes))
	}
	// Deep copy: record waveforms must not alias the result's segments.
	if len(rec.Folded) > 0 && len(rec.Folded[0].Segs) > 0 {
		orig := rec.Folded[0].Segs[0]
		res.Folded[0].Segs[0].V0 = orig.V0 + 1
		if rec.Folded[0].Segs[0] != orig {
			t.Fatal("captured waveform aliases the result's segment buffer")
		}
	}
	// Event tail: last event must be the final level crossing or a tail
	// truncation; taus non-decreasing.
	for i := 1; i < len(rec.Events); i++ {
		if rec.Events[i].Tau < rec.Events[i-1].Tau {
			t.Fatalf("event taus decrease at %d: %v -> %v", i, rec.Events[i-1].Tau, rec.Events[i].Tau)
		}
	}
	if sink.Orphaned() != 0 || sink.Dropped() != 0 {
		t.Fatalf("orphaned=%d dropped=%d, want 0/0", sink.Orphaned(), sink.Dropped())
	}
}

func TestCaptureSinkRingEviction(t *testing.T) {
	sink := NewCaptureSink(2)
	for i := 0; i < 5; i++ {
		sink.Begin(fmt.Sprintf("eval%d", i))
		sink.Region(Event{Region: 0, Kind: RegionCross, Tau: float64(i)})
		sink.Commit(nil)
	}
	recs := sink.Records()
	if len(recs) != 2 {
		t.Fatalf("ring holds %d records, want 2", len(recs))
	}
	if recs[0].Label != "eval3" || recs[1].Label != "eval4" {
		t.Fatalf("ring kept %q,%q, want eval3,eval4", recs[0].Label, recs[1].Label)
	}
	if sink.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", sink.Dropped())
	}
}

func TestCaptureSinkAbortAndOrphans(t *testing.T) {
	sink := NewCaptureSink(0) // default capacity
	sink.Region(Event{Region: 0})
	if sink.Orphaned() != 1 {
		t.Fatalf("orphaned = %d, want 1", sink.Orphaned())
	}
	sink.Begin("failing")
	sink.Region(Event{Region: 0, Kind: RegionTurnOn, Elem: 1, Tau: 1e-12})
	sink.Abort(errors.New("diverged"))
	rec := sink.Last()
	if rec == nil || rec.Committed || rec.Err != "diverged" || len(rec.Events) != 1 {
		t.Fatalf("abort record = %+v", rec)
	}
	// Begin with an unfinished record closes it rather than losing it.
	sink.Begin("a")
	sink.Begin("b")
	sink.Commit(nil)
	if got := len(sink.Records()); got != 3 {
		t.Fatalf("records = %d, want 3 (abort + implicit close + commit)", got)
	}
	sink.Reset()
	if len(sink.Records()) != 0 || sink.Orphaned() != 0 || sink.Dropped() != 0 {
		t.Fatal("Reset did not clear state")
	}
}
