package qwm_test

import (
	"fmt"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/wave"
)

// Evaluate a hand-built 3-transistor discharge chain: the bottom gate steps
// at t = 0 with the stack precharged, and QWM returns the piecewise
// quadratic waveform of every node.
func ExampleEvaluate() {
	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)
	tbl, err := lib.Table(mos.NMOS, tech.LMin)
	if err != nil {
		fmt.Println(err)
		return
	}

	step := wave.Step{At: 0, Low: 0, High: tech.VDD}
	high := wave.DC(tech.VDD)
	ch := &qwm.Chain{
		Pol: mos.NMOS, VDD: tech.VDD,
		Elems: []*qwm.Elem{
			{Model: tbl, W: 1e-6, Gate: step}, // switching, at the rail
			{Model: tbl, W: 1e-6, Gate: high},
			{Model: tbl, W: 1e-6, Gate: high},
		},
		Caps: []qwm.NodeCap{{Fixed: 5e-15}, {Fixed: 5e-15}, {Fixed: 15e-15}},
		V0:   []float64{tech.VDD, tech.VDD, tech.VDD},
	}
	res, err := qwm.Evaluate(ch, qwm.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	delay, err := res.Delay50(0, tech.VDD)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("transistors: %d\n", ch.Transistors())
	fmt.Printf("turn-ons resolved: %v\n", res.Regions >= 3)
	fmt.Printf("delay in the plausible band: %v\n", delay > 20e-12 && delay < 500e-12)
	fmt.Printf("output starts at VDD: %v\n", res.Output.Eval(0) == tech.VDD)
	// Output:
	// transistors: 3
	// turn-ons resolved: true
	// delay in the plausible band: true
	// output starts at VDD: true
}
