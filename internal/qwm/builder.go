package qwm

import (
	"fmt"

	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/wave"
)

// BuildInput collects everything needed to turn a stage path into a QWM
// chain: the characterized device library, the path and its surrounding
// stage (for off-path parasitics), the input waveforms, explicit loads, and
// optional initial conditions.
type BuildInput struct {
	Tech  *mos.Tech
	Lib   *devmodel.Library
	Stage *circuit.Stage
	Path  *circuit.Path
	// Inputs maps gate nets to their (unfolded) waveforms. Every transistor
	// on the path must have one; off-path transistors are only capacitance.
	Inputs map[string]wave.Waveform
	// Loads maps node names to extra fixed capacitance (explicit load caps,
	// wire capacitance, fanout gate capacitance).
	Loads map[string]float64
	// V0 maps node names to unfolded initial voltages. Nodes not listed
	// start precharged (at VDD for a discharge path, at 0 for a charge
	// path) — the worst-case STA scenario of paper Fig. 6.
	V0 map[string]float64
	// Analytic, when true, bypasses the characterized table and queries the
	// golden model directly (the table-vs-analytic ablation).
	Analytic bool
}

// Build assembles the QWM chain for a stage path. All transistors on the
// path must share one polarity consistent with the rail (NMOS to ground,
// PMOS to VDD).
func Build(bi BuildInput) (*Chain, error) {
	if bi.Tech == nil || bi.Path == nil || bi.Stage == nil {
		return nil, fmt.Errorf("qwm: Build requires Tech, Stage and Path")
	}
	if bi.Lib == nil && !bi.Analytic {
		return nil, fmt.Errorf("qwm: Build requires a device library (or Analytic mode)")
	}
	pol, err := pathPolarity(bi.Path)
	if err != nil {
		return nil, err
	}
	vdd := bi.Tech.VDD
	ch := &Chain{Pol: pol, VDD: vdd}

	model := func(l float64) (devmodel.IVModel, error) {
		p := &bi.Tech.N
		if pol == mos.PMOS {
			p = &bi.Tech.P
		}
		if bi.Analytic {
			return devmodel.NewAnalytic(p, bi.Tech, l), nil
		}
		return bi.Lib.Table(pol, l)
	}

	for _, pe := range bi.Path.Elems {
		edge := pe.Edge
		if edge.Kind == circuit.KindWire {
			ch.Elems = append(ch.Elems, &Elem{R: edge.R, Name: "wire"})
			continue
		}
		m, err := model(edge.L)
		if err != nil {
			return nil, err
		}
		g, ok := bi.Inputs[edge.Gate]
		if !ok {
			return nil, fmt.Errorf("qwm: no input waveform for gate net %q", edge.Gate)
		}
		if pol == mos.PMOS {
			g = FoldWave{W: g, VDD: vdd}
		}
		ch.Elems = append(ch.Elems, &Elem{
			Model: m, W: edge.W, Gate: g,
			Name: fmt.Sprintf("%s[%s]", edge.Kind, edge.Gate),
		})
	}

	// Per-node capacitance: every transistor in the stage with a channel
	// terminal on the node contributes its junction (voltage dependent),
	// its gate overlap, and half its channel capacitance — on-path and
	// off-path devices alike. Explicit loads are added as fixed.
	for _, name := range bi.Path.InternalNodes() {
		nc := NodeCap{Fixed: bi.Loads[name]}
		for _, edge := range bi.Stage.Edges {
			if edge.Kind == circuit.KindWire {
				continue
			}
			tp := &bi.Tech.N
			if edge.Kind == circuit.KindPMOS {
				tp = &bi.Tech.P
			}
			touches := false
			var junc mos.Junction
			if t := edge.Ref; t != nil {
				if t.Drain == name {
					touches = true
					junc = t.DrainJunc
				} else if t.Source == name {
					touches = true
					junc = t.SourceJunc
				}
			} else if edge.Src == name || edge.Snk == name {
				touches = true
			}
			if !touches {
				continue
			}
			if junc == (mos.Junction{}) {
				junc = tp.DefaultJunction(edge.W)
			}
			nc.Junctions = append(nc.Junctions, JunctionAt{P: tp, J: junc})
			srcHalf, _ := tp.ChannelCapSplit(edge.W, edge.L)
			nc.Fixed += tp.OverlapCap(edge.W) + srcHalf
		}
		ch.Caps = append(ch.Caps, nc)

		v0 := vdd // folded precharge default
		if uv, ok := bi.V0[name]; ok {
			if pol == mos.PMOS {
				v0 = vdd - uv
			} else {
				v0 = uv
			}
		}
		ch.V0 = append(ch.V0, v0)
	}
	return ch, ch.Validate()
}

func pathPolarity(p *circuit.Path) (mos.Polarity, error) {
	want := mos.NMOS
	if circuit.CanonName(p.Rail) == circuit.SupplyNode {
		want = mos.PMOS
	}
	for _, pe := range p.Elems {
		switch pe.Edge.Kind {
		case circuit.KindWire:
		case circuit.KindNMOS:
			if want != mos.NMOS {
				return 0, fmt.Errorf("qwm: NMOS device on a pull-up path")
			}
		case circuit.KindPMOS:
			if want != mos.PMOS {
				return 0, fmt.Errorf("qwm: PMOS device on a pull-down path")
			}
		default:
			return 0, fmt.Errorf("qwm: unsupported path element kind %v", pe.Edge.Kind)
		}
	}
	return want, nil
}
