package qwm

// EventKind classifies a region event.
type EventKind uint8

const (
	// RegionTurnOn: a region ended because the next stack transistor's
	// gate drive reached its (body-adjusted) threshold.
	RegionTurnOn EventKind = iota
	// RegionCross: a final region ended on an output-level crossing.
	RegionCross
	// RegionTimeCap: a region was committed at its duration cap with the
	// pending event (turn-on or crossing) not yet fired — the subdivision
	// that keeps the linear-current chord honest.
	RegionTimeCap
)

// String names the kind for diagnostics.
func (k EventKind) String() string {
	switch k {
	case RegionTurnOn:
		return "turn-on"
	case RegionCross:
		return "cross"
	case RegionTimeCap:
		return "time-cap"
	}
	return "unknown"
}

// Event is one committed region, the structured replacement for the old
// printf Trace hook. Fields beyond Kind are populated per kind: Elem for
// turn-ons, Target for crossings, Pending for time-capped regions.
type Event struct {
	// Region is the 0-based index of the region being committed.
	Region int
	// Kind says why the region ended.
	Kind EventKind
	// Elem is the element index that turned on (Kind == RegionTurnOn).
	Elem int
	// Target is the folded output level matched, in volts
	// (Kind == RegionCross).
	Target float64
	// Tau is the region end time τ′ in seconds.
	Tau float64
	// Pending names the event still outstanding when a time-capped region
	// committed (Kind == RegionTimeCap), e.g. "turn-on[2]" or "cross[1.65]".
	Pending string
}

// EventSink receives one Event per committed region. Sinks are invoked
// synchronously from the region loop; a nil Options.Events disables
// eventing entirely and costs nothing (no Event is ever constructed).
type EventSink interface {
	Region(Event)
}

// PrintfSink adapts a printf-style function to EventSink, formatting each
// event the way the deleted Options.Trace hook used to. The format string
// passed to Printf has no trailing newline.
type PrintfSink struct {
	Printf func(format string, args ...any)
}

// Region formats and forwards one event.
func (s PrintfSink) Region(ev Event) {
	if s.Printf == nil {
		return
	}
	switch ev.Kind {
	case RegionTurnOn:
		s.Printf("region %d: turn-on elem %d at τ'=%.4gps", ev.Region, ev.Elem, ev.Tau*1e12)
	case RegionCross:
		s.Printf("region %d: cross %.4g V at τ'=%.4gps", ev.Region, ev.Target, ev.Tau*1e12)
	case RegionTimeCap:
		s.Printf("region %d: time-cap at τ'=%.4gps (%s pending)", ev.Region, ev.Tau*1e12, ev.Pending)
	default:
		s.Printf("region %d: %s at τ'=%.4gps", ev.Region, ev.Kind, ev.Tau*1e12)
	}
}

// EventFunc adapts a plain function to EventSink.
type EventFunc func(Event)

// Region forwards the event to the function.
func (f EventFunc) Region(ev Event) { f(ev) }
