package qwm

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/wave"
)

var (
	tech    = mos.CMOSP35()
	testLib = devmodel.NewLibrary(tech)
)

func nmosTable(t testing.TB) *devmodel.Table {
	tbl, err := testLib.Table(mos.NMOS, tech.LMin)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func pmosTable(t testing.TB) *devmodel.Table {
	tbl, err := testLib.Table(mos.PMOS, tech.LMin)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// fixedStack builds a K-stack chain with constant node caps, bottom gate
// stepping at `at`.
func fixedStack(t testing.TB, k int, w, cl, at float64) *Chain {
	tbl := nmosTable(t)
	ch := &Chain{Pol: mos.NMOS, VDD: tech.VDD}
	for i := 0; i < k; i++ {
		var g wave.Waveform = wave.DC(tech.VDD)
		if i == 0 {
			g = wave.Step{At: at, Low: 0, High: tech.VDD}
		}
		ch.Elems = append(ch.Elems, &Elem{Model: tbl, W: w, Gate: g})
		ch.Caps = append(ch.Caps, NodeCap{Fixed: cl})
		ch.V0 = append(ch.V0, tech.VDD)
	}
	return ch
}

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestChainValidate(t *testing.T) {
	tbl := nmosTable(t)
	good := fixedStack(t, 2, 1e-6, 5e-15, 0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Chain)
	}{
		{"empty", func(c *Chain) { c.Elems = nil; c.Caps = nil; c.V0 = nil }},
		{"lenMismatch", func(c *Chain) { c.Caps = c.Caps[:1] }},
		{"zeroVDD", func(c *Chain) { c.VDD = 0 }},
		{"zeroWidth", func(c *Chain) { c.Elems[0].W = 0 }},
		{"noGate", func(c *Chain) { c.Elems[1].Gate = nil }},
		{"badWire", func(c *Chain) { c.Elems[0] = &Elem{R: -5} }},
		{"zeroCap", func(c *Chain) { c.Caps[0] = NodeCap{} }},
		{"allWires", func(c *Chain) {
			for i := range c.Elems {
				c.Elems[i] = &Elem{R: 100}
			}
		}},
	}
	for _, c := range cases {
		ch := fixedStack(t, 2, 1e-6, 5e-15, 0)
		c.mut(ch)
		if err := ch.Validate(); err == nil {
			t.Errorf("%s: invalid chain accepted", c.name)
		}
		_ = tbl
	}
}

func TestEvaluateStackBasics(t *testing.T) {
	ch := fixedStack(t, 3, 1e-6, 5e-15, 0)
	res, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regions < 3 {
		t.Errorf("expected at least K regions, got %d", res.Regions)
	}
	// Output monotone non-increasing at sampled points (discharge).
	prev := math.Inf(1)
	t0, t1 := res.Output.Span()
	for i := 0; i <= 100; i++ {
		tt := t0 + (t1-t0)*float64(i)/100
		v := res.Output.Eval(tt)
		if v > prev+1e-6 {
			t.Fatalf("output not monotone at t=%g: %g > %g", tt, v, prev)
		}
		prev = v
	}
	// Final value at or below 8 % of VDD.
	if end := res.Output.Eval(t1); end > 0.085*tech.VDD {
		t.Errorf("output tail = %g, want ≤ 8%% of VDD", end)
	}
	// Critical times strictly increasing.
	for i := 1; i < len(res.CriticalTimes); i++ {
		if res.CriticalTimes[i] <= res.CriticalTimes[i-1] {
			t.Fatalf("critical times not increasing: %v", res.CriticalTimes)
		}
	}
	d, err := res.Delay50(0, tech.VDD)
	if err != nil || d <= 0 {
		t.Errorf("delay = %g, err = %v", d, err)
	}
}

func TestEvaluateTurnOnOrder(t *testing.T) {
	// The discharge wavefront propagates upward: node k's 50 % crossing
	// happens no later than node k+1's.
	ch := fixedStack(t, 5, 1.2e-6, 6e-15, 0)
	res, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for k, nw := range res.Nodes {
		tc, ok := nw.Crossing(tech.VDD/2, false)
		if !ok {
			t.Fatalf("node %d never crossed 50%%", k+1)
		}
		if tc < prev {
			t.Fatalf("node %d crossed before node %d", k+1, k)
		}
		prev = tc
	}
}

func TestEvaluateDelayedInputGateWait(t *testing.T) {
	at := 100e-12
	ch := fixedStack(t, 2, 1e-6, 5e-15, at)
	res, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing moves before the input rises.
	if v := res.Output.Eval(at / 2); !feq(v, tech.VDD, 1e-9) {
		t.Errorf("output moved before the input: %g", v)
	}
	d, err := res.Delay50(at, tech.VDD)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Evaluate(fixedStack(t, 2, 1e-6, 5e-15, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d0, _ := ref.Delay50(0, tech.VDD)
	if !feq(d, d0, 0.02) {
		t.Errorf("delay should be invariant to input shift: %g vs %g", d, d0)
	}
}

func TestEvaluateDenseLUMatchesTridiagonal(t *testing.T) {
	ch := fixedStack(t, 6, 1.5e-6, 8e-15, 0)
	fast, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Evaluate(ch, Options{UseDenseLU: true})
	if err != nil {
		t.Fatal(err)
	}
	df, _ := fast.Delay50(0, tech.VDD)
	ds, _ := slow.Delay50(0, tech.VDD)
	if !feq(df, ds, 1e-4) {
		t.Errorf("LU ablation changed the answer: %g vs %g", df, ds)
	}
}

func TestEvaluateWiderIsFaster(t *testing.T) {
	d := func(w float64) float64 {
		res, err := Evaluate(fixedStack(t, 3, w, 10e-15, 0), Options{})
		if err != nil {
			t.Fatal(err)
		}
		dd, err := res.Delay50(0, tech.VDD)
		if err != nil {
			t.Fatal(err)
		}
		return dd
	}
	if d(2e-6) >= d(1e-6) {
		t.Error("doubling width should reduce delay")
	}
}

func TestEvaluateMoreLoadIsSlower(t *testing.T) {
	d := func(cl float64) float64 {
		res, err := Evaluate(fixedStack(t, 3, 1e-6, cl, 0), Options{})
		if err != nil {
			t.Fatal(err)
		}
		dd, _ := res.Delay50(0, tech.VDD)
		return dd
	}
	if d(20e-15) <= d(5e-15) {
		t.Error("larger load should increase delay")
	}
}

func TestEvaluateLongerStackIsSlower(t *testing.T) {
	d := func(k int) float64 {
		res, err := Evaluate(fixedStack(t, k, 1e-6, 8e-15, 0), Options{})
		if err != nil {
			t.Fatal(err)
		}
		dd, _ := res.Delay50(0, tech.VDD)
		return dd
	}
	d3, d6, d9 := d(3), d(6), d(9)
	if !(d3 < d6 && d6 < d9) {
		t.Errorf("delay should grow with stack depth: %g, %g, %g", d3, d6, d9)
	}
}

func TestEvaluatePMOSChargeChain(t *testing.T) {
	// A 2-PMOS pull-up chain: output charges from 0 toward VDD.
	tbl := pmosTable(t)
	gate := wave.Step{At: 0, Low: tech.VDD, High: 0} // falls to turn PMOS on
	hi := wave.DC(0)
	ch := &Chain{
		Pol: mos.PMOS, VDD: tech.VDD,
		Elems: []*Elem{
			{Model: tbl, W: 2e-6, Gate: FoldWave{W: gate, VDD: tech.VDD}},
			{Model: tbl, W: 2e-6, Gate: FoldWave{W: hi, VDD: tech.VDD}},
		},
		Caps: []NodeCap{{Fixed: 6e-15}, {Fixed: 6e-15}},
		V0:   []float64{tech.VDD, tech.VDD}, // folded: unfolded 0 V (discharged)
	}
	res, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Unfolded output must RISE from 0 toward VDD.
	if v0 := res.Output.Eval(0); !feq(v0, 0, 1e-9) {
		t.Errorf("initial output = %g, want 0", v0)
	}
	_, t1 := res.Output.Span()
	if vEnd := res.Output.Eval(t1); vEnd < 0.9*tech.VDD {
		t.Errorf("final output = %g, want ≥ 90%% VDD", vEnd)
	}
	d, err := res.Delay50(0, tech.VDD)
	if err != nil || d <= 0 {
		t.Errorf("charge delay = %g, err = %v", d, err)
	}
}

func TestEvaluateChainWithWire(t *testing.T) {
	tbl := nmosTable(t)
	step := wave.Step{At: 0, Low: 0, High: tech.VDD}
	hi := wave.DC(tech.VDD)
	mk := func(g wave.Waveform) *Elem { return &Elem{Model: tbl, W: 1.5e-6, Gate: g} }
	base := &Chain{
		Pol: mos.NMOS, VDD: tech.VDD,
		Elems: []*Elem{mk(step), mk(hi)},
		Caps:  []NodeCap{{Fixed: 5e-15}, {Fixed: 10e-15}},
		V0:    []float64{tech.VDD, tech.VDD},
	}
	rb, err := Evaluate(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, _ := rb.Delay50(0, tech.VDD)

	wired := &Chain{
		Pol: mos.NMOS, VDD: tech.VDD,
		Elems: []*Elem{mk(step), {R: 2e3, Name: "w"}, mk(hi)},
		Caps:  []NodeCap{{Fixed: 5e-15}, {Fixed: 2e-15}, {Fixed: 10e-15}},
		V0:    []float64{tech.VDD, tech.VDD, tech.VDD},
	}
	rw, err := Evaluate(wired, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dw, _ := rw.Delay50(0, tech.VDD)
	if dw <= db {
		t.Errorf("adding a 2 kΩ wire should slow the path: %g vs %g", dw, db)
	}
}

func TestEvaluateFreezeCapsStillWorks(t *testing.T) {
	ch := fixedStack(t, 4, 1e-6, 7e-15, 0)
	res, err := Evaluate(ch, Options{FreezeCaps: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Delay50(0, tech.VDD); err != nil {
		t.Fatal(err)
	}
}

func TestFoldWaveAndUnfold(t *testing.T) {
	f := FoldWave{W: wave.DC(1.2), VDD: 3.3}
	if !feq(f.Eval(0), 2.1, 1e-12) {
		t.Errorf("FoldWave eval = %g", f.Eval(0))
	}
	p := &wave.PWQ{}
	_ = p.Append(wave.QuadSeg{T0: 0, T1: 1, V0: 3.3, S: -1, A: 0.5})
	u := UnfoldPWQ(p, 3.3, mos.PMOS)
	if !feq(u.Eval(0), 0, 1e-12) || !feq(u.Eval(0.5), 3.3-p.Eval(0.5), 1e-12) {
		t.Errorf("UnfoldPWQ wrong: %g, %g", u.Eval(0), u.Eval(0.5))
	}
	same := UnfoldPWQ(p, 3.3, mos.NMOS)
	if same != p {
		t.Error("NMOS unfold should be identity")
	}
}

func TestEvaluateInputNeverRises(t *testing.T) {
	ch := fixedStack(t, 2, 1e-6, 5e-15, 0)
	ch.Elems[0].Gate = wave.DC(0) // bottom gate stuck low
	_, err := Evaluate(ch, Options{Horizon: 1e-9})
	if err == nil {
		t.Fatal("expected an error when the input never turns on")
	}
}

func TestNodeCapSecantMatchesConstant(t *testing.T) {
	nc := NodeCap{Fixed: 7e-15}
	if !feq(nc.Secant(3.3, 1.0, 3.3, mos.NMOS), 7e-15, 1e-12) {
		t.Error("secant of a fixed cap should be the fixed cap")
	}
	// With a junction, the secant between two voltages lies between the
	// endpoint small-signal capacitances.
	j := tech.N.DefaultJunction(2e-6)
	ncj := NodeCap{Junctions: []JunctionAt{{P: &tech.N, J: j}}}
	cHi := ncj.At(3.3, 3.3, mos.NMOS)
	cLo := ncj.At(0.5, 3.3, mos.NMOS)
	sec := ncj.Secant(3.3, 0.5, 3.3, mos.NMOS)
	if !(sec > cHi && sec < cLo) {
		t.Errorf("secant %g should lie between %g and %g", sec, cHi, cLo)
	}
}

func TestEvaluateRegionLimit(t *testing.T) {
	ch := fixedStack(t, 4, 1e-6, 7e-15, 0)
	if _, err := Evaluate(ch, Options{MaxRegions: 2}); err == nil {
		t.Fatal("expected region-limit error")
	}
}

// TestEvaluateEventSink replaces the old printf-Trace test: the structured
// sink must receive exactly one Event per committed region, with
// monotonically increasing region indices and end times, and the event mix
// must include the turn-on and crossing kinds a 2-stack always produces.
func TestEvaluateEventSink(t *testing.T) {
	ch := fixedStack(t, 2, 1e-6, 5e-15, 0)
	var events []Event
	res, err := Evaluate(ch, Options{Events: EventFunc(func(ev Event) { events = append(events, ev) })})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("event sink never fired")
	}
	if len(events) != res.Stats.Regions {
		t.Errorf("sink saw %d events, result reports %d regions", len(events), res.Stats.Regions)
	}
	kinds := map[EventKind]int{}
	for i, ev := range events {
		if ev.Region != i {
			t.Errorf("event %d carries region index %d", i, ev.Region)
		}
		if i > 0 && ev.Tau <= events[i-1].Tau {
			t.Errorf("event %d: τ'=%g not after previous %g", i, ev.Tau, events[i-1].Tau)
		}
		kinds[ev.Kind]++
	}
	if kinds[RegionTurnOn] == 0 || kinds[RegionCross] == 0 {
		t.Errorf("expected both turn-on and cross events, got %v", kinds)
	}
}

// TestPrintfSinkFormats: the adapter renders each event kind to a line, and
// a zero-value sink drops events instead of panicking.
func TestPrintfSinkFormats(t *testing.T) {
	var lines []string
	s := PrintfSink{Printf: func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}}
	s.Region(Event{Region: 0, Kind: RegionTurnOn, Elem: 2, Tau: 3e-12})
	s.Region(Event{Region: 1, Kind: RegionCross, Target: 1.65, Tau: 5e-12})
	s.Region(Event{Region: 2, Kind: RegionTimeCap, Tau: 7e-12, Pending: "turn-on[3]"})
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, want := range []string{"turn-on elem 2", "cross 1.65 V", "(turn-on[3] pending)"} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d = %q, want it to contain %q", i, lines[i], want)
		}
	}
	PrintfSink{}.Region(Event{}) // nil Printf: drop, don't panic
}

// TestEvaluateStats checks the Stats accounting: the legacy mirror fields
// agree with Stats, Newton iterations are non-zero, the default
// (secant-capacitance) mode records its re-solves, FreezeCaps records none,
// and the dense-LU ablation routes every iteration through the dense path.
func TestEvaluateStats(t *testing.T) {
	ch := fixedStack(t, 3, 1e-6, 6e-15, 0)
	res, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Regions == 0 || st.NRIters == 0 {
		t.Fatalf("stats not counted: %+v", st)
	}
	if res.Regions != st.Regions || res.NRIterations != st.NRIters {
		t.Errorf("legacy mirrors diverge: Regions %d/%d, NRIterations %d/%d",
			res.Regions, st.Regions, res.NRIterations, st.NRIters)
	}
	if st.CapResolves == 0 {
		t.Error("default mode performed no secant-capacitance re-solves")
	}

	frozen, err := Evaluate(fixedStack(t, 3, 1e-6, 6e-15, 0), Options{FreezeCaps: true})
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Stats.CapResolves != 0 {
		t.Errorf("FreezeCaps recorded %d cap re-solves, want 0", frozen.Stats.CapResolves)
	}

	dense, err := Evaluate(fixedStack(t, 3, 1e-6, 6e-15, 0), Options{UseDenseLU: true})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Stats.DenseFallbacks == 0 {
		t.Error("UseDenseLU recorded no dense solves")
	}
}

func TestEvaluateNoSubdivisionStillWorks(t *testing.T) {
	ch := fixedStack(t, 4, 1e-6, 7e-15, 0)
	plain, err := Evaluate(ch, Options{NoSubdivision: true})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Regions >= refined.Regions {
		t.Errorf("plain scheme should use fewer regions: %d vs %d", plain.Regions, refined.Regions)
	}
	dp, _ := plain.Delay50(0, tech.VDD)
	dr, _ := refined.Delay50(0, tech.VDD)
	if math.Abs(dp-dr)/dr > 0.10 {
		t.Errorf("plain vs refined delays too far apart: %g vs %g", dp, dr)
	}
}

func TestEvaluateLinearWaveformMode(t *testing.T) {
	ch := fixedStack(t, 3, 1e-6, 6e-15, 0)
	lin, err := Evaluate(ch, Options{LinearWaveform: true})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dl, err := lin.Delay50(0, tech.VDD)
	if err != nil {
		t.Fatal(err)
	}
	dq, _ := quad.Delay50(0, tech.VDD)
	if math.Abs(dl-dq)/dq > 0.06 {
		t.Errorf("linear vs quadratic delays diverge: %g vs %g", dl, dq)
	}
	// The linear model's segments are genuinely linear (A = 0).
	for _, seg := range lin.Folded[len(lin.Folded)-1].Segs {
		if seg.A != 0 {
			t.Fatalf("linear mode emitted a curved segment: %+v", seg)
		}
	}
}
