package qwm

import (
	"sync"

	"qwm/internal/la"
)

// solverScratch owns every buffer the region solver touches, pre-sized to
// the chain's maximum system order (m+1 unknowns: one α per node plus τ′).
// One scratch serves one engine at a time; Evaluate borrows it from a
// process-wide sync.Pool and returns it when the evaluation finishes, so
// steady-state evaluation — the STA worker pool, Monte Carlo sampling —
// performs zero heap allocations in the Newton inner loop and only O(result)
// allocations per chain.
//
// Ownership rules:
//   - Buffers are views into the scratch; they never escape the engine. The
//     only solver outputs handed across call boundaries are the α vectors,
//     which rotate through the alphaA/alphaB double buffer (at most two
//     region results are live at once: the secant-capacitance second pass
//     holds the first pass's α while re-solving).
//   - The Newton loop (newton) and the inner α solve (solveAlphas) are never
//     active at the same time, so they share F/neg/trial/Ftrial/dx.
//   - The bisection fallback keeps its persistent α in alphaBis and its
//     per-probe trial in alphaTrial, both disjoint from solveAlphas's
//     buffers.
type solverScratch struct {
	n int // current capacity (system order)

	// Engine chain state (index 0..m).
	v, cur, capn, capSaved []float64

	// Region-system state.
	rsV, rsVdot, rsJ, rsDLow, rsDUp []float64

	// Newton / inner-solve work vectors (length L+1 views).
	F, neg, trial, Ftrial, dx, x []float64
	u, vcol                      []float64
	y, z, cp                     []float64

	// Tridiagonal backing stores; tri/inner are re-sliced views of them so a
	// region of any order L+1 ≤ n reuses the same memory.
	triSub, triDiag, triSup       []float64
	innerSub, innerDiag, innerSup []float64
	tri, inner                    la.Tridiag

	// Rotating α result buffers plus the bisection fallback's own pair.
	alphaA, alphaB, alphaBis, alphaTrial []float64
	flip                                 bool

	// Dense fallback workspace: when the Thomas sweep meets a near-zero
	// pivot, the Jacobian is expanded into dm and solved by LU factoring in
	// place into luM. Both are n×n headers over reusable backing stores.
	dmBuf, luBuf []float64
	piv          []int
	dm, luM      la.Matrix
}

// ensure grows every buffer to order n (idempotent; never shrinks).
func (s *solverScratch) ensure(n int) {
	if s.n >= n {
		return
	}
	s.n = n
	grow := func() []float64 { return make([]float64, n) }
	s.v, s.cur, s.capn, s.capSaved = grow(), grow(), grow(), grow()
	s.rsV, s.rsVdot, s.rsJ, s.rsDLow, s.rsDUp = grow(), grow(), grow(), grow(), grow()
	s.F, s.neg, s.trial, s.Ftrial, s.dx, s.x = grow(), grow(), grow(), grow(), grow(), grow()
	s.u, s.vcol = grow(), grow()
	s.y, s.z, s.cp = grow(), grow(), grow()
	s.triSub, s.triDiag, s.triSup = grow(), grow(), grow()
	s.innerSub, s.innerDiag, s.innerSup = grow(), grow(), grow()
	s.alphaA, s.alphaB, s.alphaBis, s.alphaTrial = grow(), grow(), grow(), grow()
	s.dmBuf, s.luBuf = make([]float64, n*n), make([]float64, n*n)
	s.piv = make([]int, n)
}

// denseN returns the dense fallback matrix re-shaped to order k.
func (s *solverScratch) denseN(k int) *la.Matrix {
	s.dm = la.Matrix{Rows: k, Cols: k, Data: s.dmBuf[:k*k]}
	return &s.dm
}

// luN returns the LU workspace matrix re-shaped to order k.
func (s *solverScratch) luN(k int) *la.Matrix {
	s.luM = la.Matrix{Rows: k, Cols: k, Data: s.luBuf[:k*k]}
	return &s.luM
}

// triN returns the shared tridiagonal work matrix re-sliced to order k.
func (s *solverScratch) triN(k int) *la.Tridiag {
	s.tri.Diag = s.triDiag[:k]
	s.tri.Sub = s.triSub[:k-1]
	s.tri.Sup = s.triSup[:k-1]
	return &s.tri
}

// innerN returns the inner α-solve tridiagonal re-sliced to order k.
func (s *solverScratch) innerN(k int) *la.Tridiag {
	s.inner.Diag = s.innerDiag[:k]
	s.inner.Sub = s.innerSub[:k-1]
	s.inner.Sup = s.innerSup[:k-1]
	return &s.inner
}

// nextAlpha hands out the other half of the α double buffer. Callers may
// hold at most the two most recent results.
func (s *solverScratch) nextAlpha(L int) []float64 {
	s.flip = !s.flip
	if s.flip {
		return s.alphaA[:L]
	}
	return s.alphaB[:L]
}

// scratchPool shares solver scratch across goroutines: the STA level
// scheduler, the Monte Carlo workers and plain Evaluate callers all draw
// from it, so concurrent evaluation reaches a steady state where no solver
// buffer is ever re-allocated.
var scratchPool = sync.Pool{New: func() any { return new(solverScratch) }}
