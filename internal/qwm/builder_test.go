package qwm

import (
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/mos"
	"qwm/internal/stages"
	"qwm/internal/wave"
)

func TestBuildFromNANDStage(t *testing.T) {
	w, err := stages.NAND(tech, 3, 1e-6, 2e-6, 10e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Build(BuildInput{
		Tech: tech, Lib: testLib,
		Stage: w.Stage, Path: w.Path,
		Inputs: w.Inputs, Loads: w.Loads, V0: w.IC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Pol != mos.NMOS {
		t.Errorf("polarity = %v", ch.Pol)
	}
	if ch.Transistors() != 3 {
		t.Errorf("K = %d, want 3", ch.Transistors())
	}
	// The output node must carry the load plus the PMOS junctions.
	outCap := ch.Caps[len(ch.Caps)-1]
	if outCap.Fixed < 10e-15 {
		t.Errorf("output fixed cap %g misses the explicit load", outCap.Fixed)
	}
	if len(outCap.Junctions) < 4 { // top NMOS + 3 PMOS junctions
		t.Errorf("output has %d junction contributions, want ≥ 4", len(outCap.Junctions))
	}
	// Internal nodes carry two junctions each (devices above and below).
	if len(ch.Caps[0].Junctions) != 2 {
		t.Errorf("internal node junctions = %d, want 2", len(ch.Caps[0].Junctions))
	}
	res, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Delay50(0, tech.VDD); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsMissingInput(t *testing.T) {
	w, err := stages.NAND(tech, 2, 1e-6, 2e-6, 10e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(BuildInput{
		Tech: tech, Lib: testLib,
		Stage: w.Stage, Path: w.Path,
		Inputs: map[string]wave.Waveform{}, // nothing
	})
	if err == nil {
		t.Fatal("expected missing-input error")
	}
}

func TestBuildRejectsMixedPolarity(t *testing.T) {
	// A path pretending to pull down through a PMOS.
	st := &circuit.Stage{
		Edges: []*circuit.StageEdge{
			{Kind: circuit.KindPMOS, Src: "out", Snk: "0", Gate: "g", W: 1e-6, L: tech.LMin},
		},
	}
	p := &circuit.Path{
		Rail: "0", Output: "out",
		Elems: []circuit.PathElem{{Edge: st.Edges[0], Lower: "0", Upper: "out"}},
	}
	_, err := Build(BuildInput{
		Tech: tech, Lib: testLib, Stage: st, Path: p,
		Inputs: map[string]wave.Waveform{"g": wave.DC(0)},
	})
	if err == nil {
		t.Fatal("expected polarity error")
	}
}

func TestBuildRequiresLibraryUnlessAnalytic(t *testing.T) {
	w, err := stages.NAND(tech, 2, 1e-6, 2e-6, 10e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(BuildInput{Tech: tech, Stage: w.Stage, Path: w.Path, Inputs: w.Inputs}); err == nil {
		t.Fatal("expected missing-library error")
	}
	ch, err := Build(BuildInput{
		Tech: tech, Stage: w.Stage, Path: w.Path,
		Inputs: w.Inputs, Loads: w.Loads, V0: w.IC, Analytic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(ch, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPMOSPullUpPath(t *testing.T) {
	// Two series PMOS from VDD to out (a NOR-style pull-up), switching low.
	n := &circuit.Netlist{}
	sw := wave.Step{At: 0, Low: tech.VDD, High: 0}
	n.AddVSource("vvdd", "vdd", "0", wave.DC(tech.VDD))
	n.AddVSource("va", "a", "0", sw)
	n.AddVSource("vb", "b", "0", wave.DC(0))
	n.AddTransistor(&circuit.Transistor{Name: "mp1", Kind: circuit.KindPMOS, Drain: "y1", Gate: "a", Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
	n.AddTransistor(&circuit.Transistor{Name: "mp2", Kind: circuit.KindPMOS, Drain: "out", Gate: "b", Source: "y1", Body: "vdd", W: 2e-6, L: tech.LMin})
	n.AddTransistor(&circuit.Transistor{Name: "mn1", Kind: circuit.KindNMOS, Drain: "out", Gate: "a", Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
	n.AddTransistor(&circuit.Transistor{Name: "mn2", Kind: circuit.KindNMOS, Drain: "out", Gate: "b", Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
	n.AddCapacitor("cl", "out", "0", 10e-15)
	sts := circuit.ExtractStages(n, []string{"out"})
	if len(sts) != 1 {
		t.Fatalf("stages = %d", len(sts))
	}
	path, err := circuit.LongestPath(sts[0], "out", "vdd")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Build(BuildInput{
		Tech: tech, Lib: testLib, Stage: sts[0], Path: path,
		Inputs: map[string]wave.Waveform{"a": sw, "b": wave.DC(0)},
		Loads:  map[string]float64{"out": 10e-15},
		V0:     map[string]float64{"out": 0, "y1": 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Pol != mos.PMOS {
		t.Fatalf("polarity = %v, want PMOS", ch.Pol)
	}
	res, err := Evaluate(ch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, t1 := res.Output.Span()
	if v := res.Output.Eval(t1); v < 0.9*tech.VDD {
		t.Errorf("pull-up output final = %g, want near VDD", v)
	}
}
