package qwm

import (
	"errors"
	"testing"
	"time"

	"qwm/internal/faultinject"
)

// TestEvaluateInjectedDivergenceIsTyped checks the NRDivergence fault site:
// an injected region-solve failure must surface as an error wrapping
// ErrNoConvergence (and nothing else in the taxonomy), so the sta ladder
// can classify it with errors.Is instead of string matching.
func TestEvaluateInjectedDivergenceIsTyped(t *testing.T) {
	ch := fixedStack(t, 2, 1e-6, 5e-15, 0)
	inj := faultinject.New(1).Enable(faultinject.NRDivergence, 1)
	_, err := Evaluate(ch, Options{Fault: inj, FaultKey: "stack2|fall"})
	if err == nil {
		t.Fatal("injected NR divergence produced no error")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("error %v does not wrap ErrNoConvergence", err)
	}
	if errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrInternal) {
		t.Errorf("error %v wraps the wrong sentinel", err)
	}
	if inj.FiredTotal() == 0 {
		t.Error("injector reports zero fires")
	}
}

// TestEvaluateNRBudgetIsTyped checks that exhausting Options.NRBudget aborts
// with an error wrapping ErrBudgetExceeded — a resource abort, distinct from
// numerical non-convergence.
func TestEvaluateNRBudgetIsTyped(t *testing.T) {
	ch := fixedStack(t, 3, 1e-6, 5e-15, 0)
	_, err := Evaluate(ch, Options{NRBudget: 1})
	if err == nil {
		t.Fatal("NRBudget=1 evaluation succeeded; a stack solve needs more than one Newton iteration")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("error %v does not wrap ErrBudgetExceeded", err)
	}
	if errors.Is(err, ErrNoConvergence) {
		t.Errorf("budget abort %v must not read as a convergence failure", err)
	}
}

// TestEvaluateWallBudgetIsTyped checks the wall-clock budget path: an
// already-expired deadline aborts at the next region boundary with the same
// typed sentinel as the iteration budget.
func TestEvaluateWallBudgetIsTyped(t *testing.T) {
	ch := fixedStack(t, 3, 1e-6, 5e-15, 0)
	_, err := Evaluate(ch, Options{WallBudget: time.Nanosecond})
	if err == nil {
		t.Skip("evaluation finished inside 1 ns (implausible) — nothing to assert")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("error %v does not wrap ErrBudgetExceeded", err)
	}
}

// TestEvaluateForceBisectionMatchesNewton checks the TierBisect primitive:
// with the Newton guess ladder disabled every region is solved by the
// bracketing fallback, which must still converge and agree with the Newton
// path on the 50 % delay to within a few percent.
func TestEvaluateForceBisectionMatchesNewton(t *testing.T) {
	ref, err := Evaluate(fixedStack(t, 3, 1e-6, 5e-15, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bis, err := Evaluate(fixedStack(t, 3, 1e-6, 5e-15, 0), Options{ForceBisection: true})
	if err != nil {
		t.Fatalf("forced-bisection evaluation failed: %v", err)
	}
	d0, err := ref.Delay50(0, tech.VDD)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := bis.Delay50(0, tech.VDD)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(d0, d1, 0.05) {
		t.Errorf("bisection delay %g deviates from Newton delay %g by more than 5%%", d1, d0)
	}
}

// TestEvaluateInjectedPivotBreakdownRecovers checks the PivotBreakdown fault
// site: a forced Thomas-pivot failure must be absorbed by the in-scratch
// dense-LU recovery — the evaluation succeeds, agrees with the clean run,
// and the dense-fallback counter records the detour.
func TestEvaluateInjectedPivotBreakdownRecovers(t *testing.T) {
	ref, err := Evaluate(fixedStack(t, 3, 1e-6, 5e-15, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(7).Enable(faultinject.PivotBreakdown, 1)
	got, err := Evaluate(fixedStack(t, 3, 1e-6, 5e-15, 0), Options{Fault: inj, FaultKey: "stack3|fall"})
	if err != nil {
		t.Fatalf("pivot-breakdown injection must recover in place, got %v", err)
	}
	if got.Stats.DenseFallbacks == 0 {
		t.Error("dense-LU recovery never engaged despite rate-1 pivot injection")
	}
	d0, _ := ref.Delay50(0, tech.VDD)
	d1, _ := got.Delay50(0, tech.VDD)
	if !feq(d0, d1, 0.02) {
		t.Errorf("recovered delay %g deviates from clean delay %g", d1, d0)
	}
}
