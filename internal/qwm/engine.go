package qwm

import (
	"fmt"
	"time"

	"qwm/internal/faultinject"
	"qwm/internal/wave"
)

// Options tunes the QWM evaluation.
type Options struct {
	// FinalFractions are the folded output levels (as fractions of VDD) the
	// final regions match at, after every transistor has turned on. The 50 %
	// point is the delay measurement; the extra levels keep each region
	// short enough for the linear-current assumption and extend the tail
	// past the 10 % slew point. Defaults: 0.85, 0.7, 0.5, 0.3, 0.15, 0.08.
	FinalFractions []float64
	// MaxNR bounds Newton iterations per region (default 40).
	MaxNR int
	// UseDenseLU replaces the tridiagonal + Sherman–Morrison update with a
	// dense LU solve — the paper's §IV-B ablation ("tridiagonal method gives
	// almost twice speedup over LU decomposition").
	UseDenseLU bool
	// Horizon bounds the analysis time span (default 50 ns).
	Horizon float64
	// MaxRegions bounds the region count (default 12·K + 80).
	MaxRegions int
	// FreezeCaps keeps node capacitances at their region-start values (the
	// paper's simplified presentation). By default the engine re-solves each
	// region once with secant (charge-based) capacitances over the region's
	// voltage excursion, which removes the systematic junction-capacitance
	// bias at negligible cost.
	FreezeCaps bool
	// LinearWaveform replaces the quadratic voltage model with a piecewise
	// LINEAR one (constant node current per region, matched at the critical
	// point) — the simpler member of the paper's waveform-model family, kept
	// as an ablation of the "art part" choice (§IV-A).
	LinearWaveform bool
	// NoSubdivision disables this implementation's region refinements (the
	// duration caps and output-excursion caps) and reverts to the paper's
	// plain scheme: exactly one region per turn-on plus one per final level.
	// Kept as an ablation — it is where the quadratic model's advantage over
	// the linear one shows.
	NoSubdivision bool
	// Events, when set, receives one structured Event per committed region
	// (see EventSink; PrintfSink recovers the old printf trace lines). A
	// nil sink costs nothing: no Event is constructed on the hot path.
	Events EventSink
	// ForceBisection skips the joint Newton guess ladder entirely and
	// solves every region with the robust bisection-on-τ′ fallback (inner α
	// solves at each trial point). Slower but hard to defeat — the second
	// rung of the sta degradation ladder uses it when the Newton path fails.
	ForceBisection bool
	// NRBudget caps the TOTAL Newton iterations across the whole evaluation
	// (all region solves, joint and inner). 0 means unlimited. Exceeding it
	// aborts with an error wrapping ErrBudgetExceeded. Iteration budgets are
	// deterministic: the same evaluation exceeds (or does not exceed) the
	// same budget at any worker count.
	NRBudget int
	// WallBudget caps the evaluation's wall-clock time, checked at region
	// boundaries (the per-region solves are short, so overshoot is bounded
	// by one region solve). 0 means unlimited. Exceeding it aborts with an
	// error wrapping ErrBudgetExceeded. Unlike NRBudget this is inherently
	// nondeterministic; use it as a safety net, not a reproducibility tool.
	WallBudget time.Duration
	// Fault, when non-nil, is consulted at the solver's fault-injection
	// sites (region-solve entry: faultinject.NRDivergence; the tridiagonal
	// linear solve: faultinject.PivotBreakdown) with FaultKey identifying
	// this evaluation. Nil costs one pointer check per site.
	Fault *faultinject.Injector
	// FaultKey identifies this evaluation to the fault injector; the sta
	// layer sets it to the delay-cache key plus the ladder tier so injection
	// decisions are per-(stage, direction, slew, load, tier) and therefore
	// schedule-independent.
	FaultKey string
}

func (o *Options) withDefaults(k int) Options {
	out := *o
	if out.FinalFractions == nil {
		out.FinalFractions = []float64{0.85, 0.7, 0.5, 0.3, 0.15, 0.08}
	}
	if out.MaxNR == 0 {
		out.MaxNR = 40
	}
	if out.Horizon == 0 {
		out.Horizon = 50e-9
	}
	if out.MaxRegions == 0 {
		// Turn-ons + level ladder + the geometric duration ramp on skewed
		// chains; region solves are O(K), so a generous budget is cheap.
		out.MaxRegions = 12*k + 80
	}
	return out
}

// Stats is the per-evaluation solver accounting: how many regions the
// transient decomposed into, the total Newton iterations across every
// region solve (joint and inner), how often the tridiagonal Thomas sweep
// hit a near-zero pivot and recovered through the dense-LU workspace, and
// how many secant-capacitance re-solves ran. All four are counted in the
// engine's pooled state, so instrumenting an evaluation allocates nothing.
type Stats struct {
	// Regions is the number of committed regions (turn-ons, level
	// crossings and time-capped subdivisions).
	Regions int
	// NRIters is the total Newton iterations across all region solves,
	// including the bisection fallback's inner α solves.
	NRIters int
	// DenseFallbacks counts Thomas-pivot breakdowns recovered by the
	// in-scratch dense LU solve (plus every solve when UseDenseLU is set).
	DenseFallbacks int
	// CapResolves counts secant-capacitance second passes (zero when
	// FreezeCaps is set).
	CapResolves int
}

// Result is a QWM evaluation outcome.
type Result struct {
	// Folded holds the piecewise-quadratic waveform of each chain node
	// (1..M) in folded coordinates.
	Folded []*wave.PWQ
	// Nodes holds the same waveforms unfolded to physical voltages.
	Nodes []*wave.PWQ
	// Output is Nodes[M-1], the chain output.
	Output *wave.PWQ
	// CriticalTimes are the region boundaries (the τ values of paper Fig. 9).
	CriticalTimes []float64
	// Stats is the solver accounting for this evaluation.
	Stats Stats
	// Regions mirrors Stats.Regions.
	//
	// Deprecated: read Stats.Regions.
	Regions int
	// NRIterations mirrors Stats.NRIters.
	//
	// Deprecated: read Stats.NRIters.
	NRIterations int
	DeviceEvals  int
	// TailTruncated reports that a deep-tail final region (below 0.35·VDD)
	// failed to converge and the waveform was truncated there; the 50 %
	// delay point is unaffected.
	TailTruncated bool
}

// Delay50 returns the 50 % propagation delay of the chain output relative
// to the switching instant tIn, measured on the folded (falling) waveform so
// both polarities share one code path.
func (r *Result) Delay50(tIn, vdd float64) (float64, error) {
	f := r.Folded[len(r.Folded)-1]
	tc, ok := f.Crossing(vdd/2, false)
	if !ok {
		return 0, fmt.Errorf("qwm: output never crossed 50%% within the evaluated span")
	}
	return tc - tIn, nil
}

// engine is the per-evaluation state. Its numeric buffers are views into a
// pooled solverScratch, so steady-state evaluation allocates only the
// result waveforms.
type engine struct {
	ch      *Chain
	o       Options
	m       int       // number of elements / non-rail nodes
	t       float64   // current region start time
	v       []float64 // folded node voltages, index 0..m (v[0] = rail = 0)
	cur     []float64 // node currents C·dV/dt, index 1..m (cur[0] unused)
	capn    []float64 // frozen node capacitances for the current region, 1..m
	segs    []*wave.PWQ
	front   int // index of the first off transistor element; m when all on
	prevDur float64
	res     *Result
	scr     *solverScratch
	rs      regionSys // reused region-system header (one region at a time)

	// budgetHit is set by the Newton/inner solve loops when NRBudget runs
	// out; solveRegion and run translate it into an ErrBudgetExceeded
	// instead of misreporting the abort as a convergence failure.
	budgetHit bool
	// wallDeadline is the absolute WallBudget deadline (zero when
	// unlimited), checked at region boundaries.
	wallDeadline time.Time
}

// overBudget reports whether a budget abort is pending: the iteration
// budget was hit inside a solve, or the wall deadline has passed.
func (e *engine) overBudget() bool {
	if e.budgetHit {
		return true
	}
	if !e.wallDeadline.IsZero() && time.Now().After(e.wallDeadline) {
		return true
	}
	return false
}

// budgetErr formats the typed budget error for the current state.
func (e *engine) budgetErr() error {
	if e.budgetHit {
		return fmt.Errorf("%w: NR-iteration budget %d exhausted after %d regions",
			ErrBudgetExceeded, e.o.NRBudget, e.res.Stats.Regions)
	}
	return fmt.Errorf("%w: wall budget %v exhausted after %d regions",
		ErrBudgetExceeded, e.o.WallBudget, e.res.Stats.Regions)
}

// Evaluate runs piecewise quadratic waveform matching on a chain.
func Evaluate(ch *Chain, opts Options) (*Result, error) {
	e, err := newEngine(ch, opts)
	if err != nil {
		return nil, err
	}
	defer e.release()
	return e.run()
}

// newEngine validates the chain and borrows pooled scratch for it. The
// caller must call release when done (run's result does not reference the
// scratch).
func newEngine(ch *Chain, opts Options) (*engine, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults(ch.Transistors())
	m := ch.M()
	scr := scratchPool.Get().(*solverScratch)
	scr.ensure(m + 1)
	e := &engine{
		ch:   ch,
		o:    o,
		m:    m,
		v:    scr.v[:m+1],
		cur:  scr.cur[:m+1],
		capn: scr.capn[:m+1],
		segs: make([]*wave.PWQ, m),
		res:  &Result{},
		scr:  scr,
	}
	e.v[0], e.cur[0], e.capn[0] = 0, 0, 0
	for k := 1; k <= m; k++ {
		e.v[k] = ch.V0[k-1]
		e.cur[k], e.capn[k] = 0, 0
		e.segs[k-1] = &wave.PWQ{}
	}
	if o.WallBudget > 0 {
		e.wallDeadline = time.Now().Add(o.WallBudget)
	}
	e.res.CriticalTimes = append(e.res.CriticalTimes, 0)
	return e, nil
}

// release returns the engine's scratch to the shared pool. Idempotent.
func (e *engine) release() {
	if e.scr != nil {
		scratchPool.Put(e.scr)
		e.scr = nil
	}
}

// run executes the region loop. The returned Result owns its waveforms and
// stays valid after release.
func (e *engine) run() (*Result, error) {
	m, o := e.m, e.o
	ch := e.ch
	e.advanceFront()
	e.refreshCaps()
	e.refreshCurrents()

	// Turn-on regions: one per remaining off transistor.
	for e.front < m {
		if e.overBudget() {
			return nil, e.budgetErr()
		}
		if e.res.Stats.Regions >= o.MaxRegions {
			return nil, fmt.Errorf("%w: region limit %d exceeded", ErrNoConvergence, o.MaxRegions)
		}
		var tauP float64
		var alpha []float64
		var err error
		if e.front == 0 {
			// No active nodes: the first transistor waits for its gate.
			tauP, err = e.gateWait()
			if err != nil {
				return nil, err
			}
		} else {
			ev := e.turnOnEvent(e.front)
			// Subdivide long waits: a turn-on residual is negative until it
			// fires.
			if !o.NoSubdivision {
				capped, cerr := e.timeCappedRegion(e.front, ev, func(fe float64) bool { return fe < 0 }, e.durCap())
				if cerr != nil {
					return nil, cerr
				}
				if capped {
					continue
				}
			}
			tauP, alpha, err = e.solveRegionSecant(e.front, ev)
			if err != nil {
				return nil, fmt.Errorf("qwm: region %d (turn-on of element %d): %w", e.res.Stats.Regions, e.front, err)
			}
		}
		if o.Events != nil {
			o.Events.Region(Event{Region: e.res.Stats.Regions, Kind: RegionTurnOn, Elem: e.front, Tau: tauP})
		}
		if err := e.commitRegion(tauP, alpha, e.front); err != nil {
			return nil, err
		}
		e.advanceFront()
		e.refreshCaps()
		e.refreshCurrents()
	}

	// Final regions: all transistors on; match at the requested output
	// levels. Three per-region limits keep the linear-current model honest:
	// the output swing is capped at 0.12·VDD and a 0.55× tail ratio
	// (internal quasi-static nodes wander off the physical solution branch
	// across large swings), and the region duration grows at most
	// geometrically from the previous region, so the fast equilibration
	// right after the last turn-on is resolved.
	for _, frac := range o.FinalFractions {
		target := frac * ch.VDD
		// The slack must exceed the solver's event tolerance (1e-7·VDD).
		for e.v[m] > target+1e-5 {
			if e.overBudget() {
				return nil, e.budgetErr()
			}
			if e.res.Stats.Regions >= o.MaxRegions {
				return nil, fmt.Errorf("%w: region limit %d exceeded", ErrNoConvergence, o.MaxRegions)
			}
			sub := target
			if !o.NoSubdivision {
				if lim := e.v[m] - 0.12*ch.VDD; sub < lim {
					sub = lim
				}
				if lim := e.v[m] * 0.55; sub < lim {
					sub = lim
				}
				// A cross residual is positive until the level is reached.
				capped, cerr := e.timeCappedRegion(m, e.crossEvent(sub), func(fe float64) bool { return fe > 0 }, e.durCap())
				if cerr != nil {
					return nil, cerr
				}
				if capped {
					continue
				}
			}
			tauP, alpha, err := e.solveRegionSecant(m, e.crossEvent(sub))
			if err != nil {
				if target < 0.35*ch.VDD && e.res.Stats.Regions > 0 && !e.budgetHit {
					// The delay point is already behind us; a stalled deep
					// tail truncates the waveform rather than failing the
					// whole evaluation.
					e.res.TailTruncated = true
					break
				}
				return nil, fmt.Errorf("qwm: final region to %.3g V: %w", sub, err)
			}
			if o.Events != nil {
				o.Events.Region(Event{Region: e.res.Stats.Regions, Kind: RegionCross, Target: sub, Tau: tauP})
			}
			if err := e.commitRegion(tauP, alpha, m); err != nil {
				return nil, err
			}
			e.refreshCaps()
			e.refreshCurrents()
		}
		if e.res.TailTruncated {
			break
		}
	}

	// Assemble result. The deprecated mirror fields keep older callers
	// (bench tables, examples) compiling against Stats-era results.
	e.res.Regions = e.res.Stats.Regions
	e.res.NRIterations = e.res.Stats.NRIters
	e.res.Folded = e.segs
	e.res.Nodes = make([]*wave.PWQ, m)
	for i, p := range e.segs {
		e.res.Nodes[i] = UnfoldPWQ(p, ch.VDD, ch.Pol)
	}
	e.res.Output = e.res.Nodes[m-1]
	return e.res, nil
}

// --- chain state helpers ---

// elemJ returns the current through element i flowing from node i+1 (upper)
// down to node i (lower) at time t with the given terminal voltages, plus
// its derivatives with respect to the lower and upper node voltages.
func (e *engine) elemJ(i int, t, vLow, vUp float64) (j, dLow, dUp float64) {
	el := e.ch.Elems[i]
	if el.IsWire() {
		g := 1 / el.R
		return (vUp - vLow) * g, -g, g
	}
	e.res.DeviceEvals++
	g := el.Gate.Eval(t)
	j, _, dvd, dvs := el.Model.IV(el.W, g, vUp, vLow)
	return j, dvs, dvd
}

// isOn reports whether transistor element i conducts at the current state:
// its folded gate drive meets the body-adjusted threshold of its lower node.
func (e *engine) isOn(i int) bool {
	el := e.ch.Elems[i]
	if el.IsWire() {
		return true
	}
	vLow := e.v[i]
	// The slack must exceed the region solver's event tolerance (1e-7·VDD)
	// or a solved turn-on could fail to advance the front.
	return el.Gate.Eval(e.t) >= vLow+el.Model.Threshold(vLow)-1e-5
}

// advanceFront extends the conducting prefix past every on element.
func (e *engine) advanceFront() {
	for e.front < e.m && e.isOn(e.front) {
		e.front++
	}
}

// refreshCaps freezes the node capacitances at the current voltages — the
// constant-parasitic-per-region assumption of §III-C.
func (e *engine) refreshCaps() {
	for k := 1; k <= e.m; k++ {
		e.capn[k] = e.ch.Caps[k-1].At(e.v[k], e.ch.VDD, e.ch.Pol)
	}
}

// refreshCurrents re-derives the node currents from the device model at the
// current state (active nodes 1..front; element `front` carries no current).
func (e *engine) refreshCurrents() {
	jPrev := 0.0 // J through element k-1, starting with element 0 below node 1
	for k := 1; k <= e.m; k++ {
		if k > e.front {
			e.cur[k] = 0
			continue
		}
		var jBelow float64
		if k == 1 {
			jBelow, _, _ = e.elemJ(0, e.t, 0, e.v[1])
		} else {
			jBelow = jPrev
		}
		var jAbove float64
		if k < e.front {
			jAbove, _, _ = e.elemJ(k, e.t, e.v[k], e.v[k+1])
		}
		e.cur[k] = jAbove - jBelow
		jPrev = jAbove
	}
}

// commitRegion appends this region's quadratic segments and moves the state
// to τ′. The solver guarantees τ′ > τ, so a segment-append failure is a
// violated solver invariant; it used to panic (taking the whole Analyze —
// and, from a worker goroutine, the whole process — with it) and now
// returns a typed error wrapping ErrInternal that Evaluate propagates, so
// one broken evaluation degrades exactly one stage direction.
func (e *engine) commitRegion(tauP float64, alpha []float64, active int) error {
	delta := tauP - e.t
	for k := 1; k <= e.m; k++ {
		var a float64
		if k <= active && alpha != nil {
			a = alpha[k-1]
		}
		if e.o.LinearWaveform && k <= active && alpha != nil {
			// In the linear-waveform ablation the solved unknowns are the
			// constant region currents themselves.
			e.cur[k] = a
			a = 0
		}
		seg := wave.QuadSeg{
			T0: e.t, T1: tauP,
			V0: e.v[k],
			S:  e.cur[k] / e.capn[k],
			A:  a / e.capn[k],
		}
		if k > active {
			seg.S, seg.A = 0, 0
		}
		if err := e.segs[k-1].Append(seg); err != nil {
			return fmt.Errorf("%w: region %d segment for node %d: %v",
				ErrInternal, e.res.Stats.Regions, k, err)
		}
		e.v[k] = seg.EndValue()
		e.cur[k] += a * delta
	}
	e.t = tauP
	e.prevDur = delta
	e.res.Stats.Regions++
	e.res.CriticalTimes = append(e.res.CriticalTimes, tauP)
	return nil
}

// timeCappedRegion probes the region's event at τ′ = t + durCap by solving
// only the α subsystem there. If the event has not yet fired (per notFired
// on its residual), the fixed-duration region is committed and the caller
// loops — this subdivides long regions so the linear-current chord stays
// accurate through fast equilibration transients. The first return value
// reports whether a capped region was committed; the error is non-nil only
// for a commit-invariant violation (ErrInternal).
func (e *engine) timeCappedRegion(L int, ev event, notFired func(float64) bool, durCap float64) (bool, error) {
	rs := e.newRegionSys(L, ev)
	alpha := e.scr.nextAlpha(L)
	for i := range alpha {
		alpha[i] = 0
	}
	if e.o.LinearWaveform {
		copy(alpha, e.cur[1:L+1])
	}
	tauP := e.t + durCap
	// The α-only probe keeps its own iteration floor so a throttled joint
	// Newton budget does not change the region structure.
	iter := e.o.MaxNR
	if iter < 30 {
		iter = 30
	}
	fe, ok := rs.solveAlphas(alpha, tauP, iter)
	if !ok || !notFired(fe) {
		return false, nil
	}
	if !e.o.FreezeCaps {
		// Secant-capacitance second pass, as in solveRegionSecant.
		e.res.Stats.CapResolves++
		saved := e.scr.capSaved[:len(e.capn)]
		copy(saved, e.capn)
		for k := 1; k <= L; k++ {
			e.capn[k] = e.ch.Caps[k-1].Secant(e.v[k], e.endVoltage(k, alpha[k-1], durCap), e.ch.VDD, e.ch.Pol)
		}
		alpha2 := e.scr.nextAlpha(L)
		for i := range alpha2 {
			alpha2[i] = 0
		}
		if fe2, ok2 := rs.solveAlphas(alpha2, tauP, iter); ok2 && notFired(fe2) {
			alpha = alpha2
		} else {
			copy(e.capn, saved)
		}
	}
	if e.o.Events != nil {
		// ev.name() allocates its formatted string, so build it only when a
		// sink is attached.
		e.o.Events.Region(Event{Region: e.res.Stats.Regions, Kind: RegionTimeCap, Tau: tauP, Pending: ev.name()})
	}
	if err := e.commitRegion(tauP, alpha, L); err != nil {
		return false, err
	}
	e.refreshCaps()
	e.refreshCurrents()
	return true, nil
}

// endVoltage predicts node k's voltage after delta under the current
// waveform model with solved parameter x.
func (e *engine) endVoltage(k int, x, delta float64) float64 {
	if e.o.LinearWaveform {
		return e.v[k] + x*delta/e.capn[k]
	}
	return e.v[k] + (e.cur[k]*delta+0.5*x*delta*delta)/e.capn[k]
}

// durCap returns the geometric duration cap for the next region.
func (e *engine) durCap() float64 {
	d := 1.6 * e.prevDur
	if d < 0.5e-12 {
		d = 0.5e-12
	}
	return d
}

// solveRegionSecant runs the region solve, then — unless FreezeCaps — once
// more with secant (charge-based) node capacitances evaluated over the
// first pass's voltage excursion, so voltage-dependent junctions do not
// bias the region endpoint.
func (e *engine) solveRegionSecant(L int, ev event) (float64, []float64, error) {
	tauP, alpha, err := e.solveRegion(L, ev)
	if err != nil || e.o.FreezeCaps {
		return tauP, alpha, err
	}
	e.res.Stats.CapResolves++
	delta := tauP - e.t
	saved := e.scr.capSaved[:len(e.capn)]
	copy(saved, e.capn)
	for k := 1; k <= L; k++ {
		e.capn[k] = e.ch.Caps[k-1].Secant(e.v[k], e.endVoltage(k, alpha[k-1], delta), e.ch.VDD, e.ch.Pol)
	}
	tauP2, alpha2, err2 := e.solveRegion(L, ev)
	if err2 != nil {
		copy(e.capn, saved)
		return tauP, alpha, nil
	}
	return tauP2, alpha2, nil
}

// gateWait handles the degenerate first region where no transistor conducts:
// τ′ is simply when the bottom gate crosses its threshold.
func (e *engine) gateWait() (float64, error) {
	el := e.ch.Elems[0]
	level := el.Model.Threshold(0)
	cr, ok := el.Gate.(wave.Crosser)
	if !ok {
		return 0, fmt.Errorf("%w: element 0 gate waveform cannot locate its own threshold crossing", ErrNoConvergence)
	}
	tc, found := cr.Crossing(level, true)
	if !found || tc > e.o.Horizon {
		return 0, fmt.Errorf("%w: element 0 never turns on within the horizon", ErrNoConvergence)
	}
	if tc <= e.t {
		tc = e.t + 1e-15
	}
	return tc, nil
}
