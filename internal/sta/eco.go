package sta

import (
	"math"

	"qwm/internal/circuit"
)

// This file is the incremental (ECO) re-analysis layer: after a local edit —
// a transistor resize, a load change, a buffer insertion — a production
// timing flow re-runs analysis thousands of times, and almost all of the DAG
// outside the edit's fanout cone is bit-for-bit unchanged. Request.
// Incremental makes AnalyzeContext diff a per-stage content digest against
// the previous committed run, seed the levelized schedule with only the
// dirty stages, propagate dirtiness through fanout cones via arrival
// comparison, and replay the memoized arrivals/diagnostics for everything
// else. With Epsilon == 0 (the default) an output counts as unchanged only
// under exact bit equality, so the incremental result is bit-for-bit
// identical to a from-scratch analysis — the randomized edit-sequence
// differential in internal/verify gates exactly that.
//
// The memo is committed only when the analysis succeeds, so a failed or
// cancelled incremental request leaves the previous (self-consistent)
// baseline in place. Non-incremental requests never read or write the memo:
// the plain hot path is untouched (TestAllocBudget still gates it).

// ECOStats is the incremental-run accounting surfaced on Result.ECO.
type ECOStats struct {
	// Incremental is true when the request ran through the dirty-cone
	// scheduler (Request.Incremental), even on the first call, where
	// everything is dirty because there is no baseline yet.
	Incremental bool
	// DirtyStages counts the stages scheduled for re-evaluation: digest
	// changes (geometry, wiring, fanout loads), new stages, and stages
	// downstream of a changed arrival.
	DirtyStages int
	// SkippedStages counts the stages replayed from the memo without any
	// cache lookup or solver work. DirtyStages + SkippedStages equals the
	// netlist's stage count.
	SkippedStages int
	// EarlyStops counts dirty outputs whose re-computed arrival matched the
	// memo within Epsilon (exactly, when Epsilon is 0): their fanout cones
	// were not propagated into.
	EarlyStops int
}

// ecoStage is the per-stage memo record: the content digest that decides
// cleanliness, plus everything a clean replay must reproduce — the interned
// per-output content keys (for fpTable invalidation when the stage later
// goes dirty) and both directions' timings per output (for re-folding the
// Result diagnostics exactly as a scratch run would).
type ecoStage struct {
	digest      string
	contentKeys []string
	fall, rise  []dirTiming
}

// ecoMemo is one committed run: the stage records keyed by stage identity
// (the sorted channel-node set, stable across unrelated edits), the full
// arrival map, the critical-path predecessor maps, and the canonicalized
// primary arrivals the run was given.
type ecoMemo struct {
	stages   map[string]*ecoStage
	arrivals map[string]Arrival
	predFall map[string]string
	predRise map[string]string
	primary  map[string]Arrival
}

// ecoRun is the per-request incremental state.
type ecoRun struct {
	prev *ecoMemo
	eps  float64
	// changed marks nets whose arrival this run differs from the committed
	// baseline; a stage with a changed input cannot be replayed.
	changed map[string]bool
	// nextStages accumulates the records for the memo being built: clean
	// stages carry their previous record forward, dirty stages get a fresh
	// one filled during the apply phase.
	nextStages map[string]*ecoStage
	pending    map[*circuit.Stage]*ecoStage
	pendingID  map[*circuit.Stage]string
	// Scratch buffers for the digest walk and the per-level dirty schedule.
	loadTmp   map[string]float64
	digestBuf []byte
	dirtyBuf  []*circuit.Stage
}

// stageIdentity names a stage by its sorted channel-node set — unlike the
// positional "stage%d" name, it survives stages being added or removed
// elsewhere in the netlist.
func stageIdentity(st *circuit.Stage) string {
	n := 0
	for _, nd := range st.Nodes {
		n += len(nd) + 1
	}
	b := make([]byte, 0, n)
	for _, nd := range st.Nodes {
		b = append(b, nd...)
		b = append(b, 0)
	}
	return string(b)
}

// beginECO sets up the incremental run: it adopts the committed baseline
// (or an empty one — then every stage is dirty and the run degenerates to a
// recorded full analysis), copies the baseline's critical-path predecessors
// into the scratch so clean cones can be traced through, and seeds the
// changed-net set from the primary-arrival diff plus any net that lost its
// producer since the baseline. res.Arrivals must already hold this request's
// canonicalized primary arrivals.
func (a *Analyzer) beginECO(s *analyzeScratch, res *Result, producer map[string]*circuit.Stage, eps float64) *ecoRun {
	prev := a.ecoPrev
	if prev == nil {
		prev = &ecoMemo{}
	}
	e := &ecoRun{
		prev:       prev,
		eps:        eps,
		changed:    map[string]bool{},
		nextStages: map[string]*ecoStage{},
		pending:    map[*circuit.Stage]*ecoStage{},
		pendingID:  map[*circuit.Stage]string{},
		loadTmp:    map[string]float64{},
	}
	for k, v := range prev.predFall {
		s.predFall[k] = v
	}
	for k, v := range prev.predRise {
		s.predRise[k] = v
	}
	for net, ar := range res.Arrivals {
		if p, ok := prev.primary[net]; !ok || !e.arrivalEq(p, ar) {
			e.changed[net] = true
		}
	}
	for net, p := range prev.primary {
		if cur, ok := res.Arrivals[net]; !ok || !e.arrivalEq(cur, p) {
			e.changed[net] = true
		}
	}
	// A net that had an arrival in the baseline but is neither primary nor
	// produced any more is unconstrained now: consumers see the zero Arrival.
	for net, p := range prev.arrivals {
		if _, isPrim := res.Arrivals[net]; isPrim {
			continue
		}
		if _, produced := producer[net]; produced {
			continue
		}
		if !e.arrivalEq(p, Arrival{}) {
			e.changed[net] = true
		}
	}
	return e
}

// arrivalEq is the early-stop equality: exact bit equality when eps is 0,
// otherwise per-field absolute tolerance.
func (e *ecoRun) arrivalEq(a, b Arrival) bool {
	if e.eps == 0 {
		return a == b
	}
	return math.Abs(a.Rise-b.Rise) <= e.eps &&
		math.Abs(a.Fall-b.Fall) <= e.eps &&
		math.Abs(a.RiseSlew-b.RiseSlew) <= e.eps &&
		math.Abs(a.FallSlew-b.FallSlew) <= e.eps
}

// filterLevel partitions one dependency level into clean and dirty stages
// and returns the dirty schedule. A stage is clean when its content digest
// (per-output stage key + load digest + reduction signature, prefixed by the
// memo-mode signature) matches the baseline record AND none of its inputs
// carries a changed arrival; clean stages replay their memoized arrivals and
// diagnostics here, paying no cache lookups and no solver work. A stage
// whose digest changed additionally invalidates its stale fpTable entries —
// the raw-key → class-key memo would otherwise keep a dead resolution per
// edited stage forever.
func (e *ecoRun) filterLevel(a *Analyzer, s *analyzeScratch, level []*circuit.Stage, loads *loadIndex, res *Result, redSig string) []*circuit.Stage {
	dirty := e.dirtyBuf[:0]
	memoSig := a.Memo.Signature()
	for _, st := range level {
		id := stageIdentity(st)
		db := append(e.digestBuf[:0], memoSig...)
		db = append(db, 0x1f)
		cks := make([]string, 0, len(st.Outputs))
		for _, out := range st.Outputs {
			ol := loads.stageLoadsInto(e.loadTmp, st, out)
			kb := s.appendStageKey(s.keyBuf[:0], st, out)
			kb = append(kb, '|')
			kb = s.appendLoadDigest(kb, ol)
			kb = append(kb, redSig...)
			s.keyBuf = kb
			ck := a.keys.intern(kb)
			cks = append(cks, ck)
			db = append(db, ck...)
			db = append(db, 0x1f)
		}
		e.digestBuf = db
		digest := string(db)

		rec := e.prev.stages[id]
		clean := rec != nil && rec.digest == digest
		if clean {
			for _, in := range st.Inputs {
				if e.changed[in] {
					clean = false
					break
				}
			}
		}
		if clean {
			for _, out := range st.Outputs {
				if _, ok := e.prev.arrivals[out]; !ok {
					clean = false
					break
				}
			}
		}
		if clean {
			e.nextStages[id] = rec
			for i, out := range st.Outputs {
				res.Arrivals[out] = e.prev.arrivals[out]
				res.recordEvalIssues(out, rec.fall[i], rec.rise[i])
			}
			res.ECO.SkippedStages++
			continue
		}
		if rec != nil && rec.digest != digest {
			a.invalidateFP(rec.contentKeys)
		}
		e.pending[st] = &ecoStage{
			digest:      digest,
			contentKeys: cks,
			fall:        make([]dirTiming, len(st.Outputs)),
			rise:        make([]dirTiming, len(st.Outputs)),
		}
		e.pendingID[st] = id
		res.ECO.DirtyStages++
		dirty = append(dirty, st)
	}
	e.dirtyBuf = dirty
	return dirty
}

// noteOutput records one dirty output's apply-phase outcome: the timings go
// into the stage's pending memo record, and the new arrival is compared to
// the baseline. A match within Epsilon is an early stop — downstream stages
// do not see this net as changed, so the edit's cone stops propagating the
// moment its numerical effect dies out.
func (e *ecoRun) noteOutput(st *circuit.Stage, oi int, out string, ar Arrival, fall, rise dirTiming, res *Result) {
	rec := e.pending[st]
	rec.fall[oi], rec.rise[oi] = fall, rise
	if p, ok := e.prev.arrivals[out]; ok && e.arrivalEq(p, ar) {
		res.ECO.EarlyStops++
		return
	}
	e.changed[out] = true
}

// commit freezes this run as the new baseline. Everything is cloned — the
// memo must not alias the returned Result (the caller owns it) or the pooled
// scratch. Predecessors are pruned to nets with an arrival, so removed
// stages cannot accumulate stale entries across an edit sequence.
func (e *ecoRun) commit(s *analyzeScratch, res *Result, req Request) *ecoMemo {
	m := &ecoMemo{
		stages:   e.nextStages,
		arrivals: make(map[string]Arrival, len(res.Arrivals)),
		predFall: make(map[string]string, len(s.predFall)),
		predRise: make(map[string]string, len(s.predRise)),
		primary:  make(map[string]Arrival, len(req.Primary)),
	}
	for st, rec := range e.pending {
		m.stages[e.pendingID[st]] = rec
	}
	for k, v := range res.Arrivals {
		m.arrivals[k] = v
	}
	for k, v := range s.predFall {
		if _, ok := res.Arrivals[k]; ok {
			m.predFall[k] = v
		}
	}
	for k, v := range s.predRise {
		if _, ok := res.Arrivals[k]; ok {
			m.predRise[k] = v
		}
	}
	for net, ar := range req.Primary {
		m.primary[circuit.CanonName(net)] = ar
	}
	return m
}
