package sta

import (
	"reflect"
	"runtime"
	"testing"

	"qwm/internal/stages"
)

// TestZeroValueAnalyzer pins the lazy-cache fix: a zero-value Analyzer
// (no New call) must work instead of panicking on the nil cache map when
// it stores its first stage timing.
func TestZeroValueAnalyzer(t *testing.T) {
	var a Analyzer
	a.Tech, a.Lib = tech, lib
	nl := inverterChain(2, 1e-6, 2e-6)
	res, err := a.Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstArrival <= 0 {
		t.Fatalf("worst arrival %g not positive", res.WorstArrival)
	}
	if st := a.CacheStats(); st.Misses == 0 || st.Entries == 0 {
		t.Errorf("cache stats %+v show no activity", st)
	}
}

// TestSlewBucketBoundaries pins the math.Floor fix: int() truncation made
// the bucket straddling zero twice as wide ([-5 ps, +5 ps) all mapped to 0).
func TestSlewBucketBoundaries(t *testing.T) {
	cases := []struct {
		s    float64
		want int
	}{
		{0, 0},
		{4.9e-12, 0},
		{5e-12, 1},
		{5.1e-12, 1},
		{9.9e-12, 1},
		{10e-12, 2},
		{-0.1e-12, -1}, // truncation used to yield 0 here
		{-5e-12, -1},
		{-5.1e-12, -2},
	}
	for _, c := range cases {
		if got := slewBucket(c.s); got != c.want {
			t.Errorf("slewBucket(%g) = %d, want %d", c.s, got, c.want)
		}
	}
}

// analyzeDecoder runs a cold-cache analysis of a 3-bit row decoder
// (3 address inverters, 8 three-input NANDs, 8 row drivers — a wide stage
// DAG with parallelism inside every level) at the given worker count.
func analyzeDecoder(t testing.TB, workers int) (*Result, int) {
	t.Helper()
	nl, ins, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	a := New(tech, lib)
	a.Workers = workers
	primary := map[string]Arrival{}
	for i, in := range ins {
		// Stagger arrivals and give them slews so the slew-bucketed cache
		// keys and worst-input selection are genuinely exercised.
		primary[in] = Arrival{
			Rise: float64(i) * 17e-12, Fall: float64(i) * 13e-12,
			RiseSlew: 20e-12 + float64(i)*7e-12, FallSlew: 15e-12 + float64(i)*5e-12,
		}
	}
	res, err := a.Analyze(nl, primary, outs)
	if err != nil {
		t.Fatal(err)
	}
	return res, res.StagesEvaluated
}

// TestParallelDeterminism is the tentpole guarantee: the parallel levelized
// engine returns byte-identical results to the serial path for every worker
// count — same arrivals (bit-for-bit floats), same critical path, same
// worst output, and, thanks to the single-flight cache, the same number of
// QWM evaluations.
func TestParallelDeterminism(t *testing.T) {
	serial, serialEvals := analyzeDecoder(t, 1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		par, parEvals := analyzeDecoder(t, workers)
		if !reflect.DeepEqual(par.Arrivals, serial.Arrivals) {
			t.Fatalf("workers=%d: arrivals differ from serial", workers)
		}
		if !reflect.DeepEqual(par.CriticalPath, serial.CriticalPath) {
			t.Errorf("workers=%d: critical path %v != serial %v", workers, par.CriticalPath, serial.CriticalPath)
		}
		if par.WorstArrival != serial.WorstArrival || par.WorstOutput != serial.WorstOutput {
			t.Errorf("workers=%d: worst %g@%s != serial %g@%s", workers,
				par.WorstArrival, par.WorstOutput, serial.WorstArrival, serial.WorstOutput)
		}
		if parEvals != serialEvals {
			t.Errorf("workers=%d: %d evaluations != serial %d (single-flight broken?)", workers, parEvals, serialEvals)
		}
	}
}

// TestLevelizeDecoder checks the Kahn schedule on the decoder DAG: three
// dependency levels, every stage placed exactly once, and producers always
// in an earlier level than their consumers.
func TestLevelizeDecoder(t *testing.T) {
	nl, _, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	a := New(tech, lib)
	if _, err := a.Analyze(nl, nil, outs); err != nil {
		t.Fatal(err)
	}
	// 3 inverters + 8 NANDs + 8 drivers.
	st := a.CacheStats()
	if want := int64(2 * 19); st.Misses != want {
		t.Errorf("cold analysis missed %d times, want %d (19 stages × 2 directions)", st.Misses, want)
	}
	if st.Evaluations != st.Misses {
		t.Errorf("evaluations %d != misses %d", st.Evaluations, st.Misses)
	}
	// A repeat run is all hits.
	if _, err := a.Analyze(nl, nil, outs); err != nil {
		t.Fatal(err)
	}
	st2 := a.CacheStats()
	if st2.Misses != st.Misses {
		t.Errorf("repeat run added misses: %d -> %d", st.Misses, st2.Misses)
	}
	if st2.Hits <= st.Hits {
		t.Errorf("repeat run did not hit the cache: hits %d -> %d", st.Hits, st2.Hits)
	}
}

// TestCacheStatsAccounting sanity-checks the counters' relationships on a
// simple chain.
func TestCacheStatsAccounting(t *testing.T) {
	a := New(tech, lib)
	nl := inverterChain(3, 1e-6, 2e-6)
	res, err := a.Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	st := a.CacheStats()
	if int(st.Misses) != res.StagesEvaluated {
		t.Errorf("misses %d != StagesEvaluated %d", st.Misses, res.StagesEvaluated)
	}
	if st.Entries != int(st.Misses) {
		t.Errorf("entries %d != misses %d", st.Entries, st.Misses)
	}
}
