package sta

import (
	"fmt"
	"math"

	"qwm/internal/faultinject"
	"qwm/internal/obs"
	"qwm/internal/reduce"
)

// Config is the consolidated analyzer configuration: every knob that used to
// be set by poking exported Analyzer fields after New, gathered into one
// value that can be passed to New, compared, and — for the subset that
// affects results — canonically fingerprinted with Signature. The zero
// Config is the exact baseline engine: serial-equivalent parallelism at
// GOMAXPROCS, no reduction, no memoization, unlimited budget, no
// observability.
//
// The exported Analyzer fields (Workers, Reduction, Memo, Metrics, …) remain
// writable as thin deprecated shims so existing construct-then-assign callers
// keep compiling; new code should pass a Config to New so the analyzer's
// identity is fixed at construction. The service layer depends on that:
// analyzers are pooled by Signature, and mutating a pooled analyzer's
// configuration after construction would silently mix cache namespaces.
type Config struct {
	// Workers caps concurrent stage-direction evaluations per level.
	// 0 means runtime.GOMAXPROCS(0). Results are identical at any setting,
	// which is why Workers is NOT part of Signature.
	Workers int
	// Reduction configures the RC-chain model-order-reduction pre-pass.
	Reduction reduce.Config
	// Memo configures equivalence-class stage memoization.
	Memo MemoConfig
	// Budget is the default per-evaluation budget for requests that do not
	// carry their own (Request.Budget takes precedence when non-zero).
	Budget EvalBudget
	// FaultPlan, when non-nil, arms deterministic fault injection on every
	// request that does not carry its own injector — a chaos-rig default.
	// Production configs leave it nil.
	FaultPlan *faultinject.Injector
	// Observer receives span events for requests that do not carry their
	// own (Request.Observer takes precedence).
	Observer obs.Observer
	// Metrics, when set, receives per-Analyze aggregates.
	Metrics *obs.Registry
	// Tier, when set, is the persistent delay-cache tier below the in-memory
	// cache: misses consult it before evaluating, and fresh evaluations are
	// written back. See TierStore.
	Tier TierStore
}

// Signature canonically encodes the result-affecting subset of the
// configuration: two analyzers with equal signatures produce bit-identical
// results for identical requests and may therefore share delay-cache
// entries — in memory or on disk. The service pools analyzers by this string
// and namespaces the disk tier with it; the disk cache persists it alongside
// the data so a namespace can never be re-opened under a different config.
//
// Deliberately excluded: Workers (determinism at any width is the engine's
// core guarantee), Metrics/Observer (observability never changes results),
// FaultPlan (chaos runs must use dedicated analyzers anyway — see
// Request.Fault), and Tier itself (a cache tier stores results, it does not
// define them).
func (c Config) Signature() string {
	return fmt.Sprintf("qwm1|red:%s|memo:%s|nr:%d|wallns:%d",
		c.Reduction.Signature(), c.Memo.Signature(), c.Budget.NRIters, c.Budget.Wall.Nanoseconds())
}

// Config returns the analyzer's current configuration. Together with
// Signature it lets pooling layers verify an analyzer still matches the
// config it was pooled under.
func (a *Analyzer) Config() Config {
	return Config{
		Workers:   a.Workers,
		Reduction: a.Reduction,
		Memo:      a.Memo,
		Budget:    a.Budget,
		FaultPlan: a.Fault,
		Observer:  a.Observer,
		Metrics:   a.Metrics,
		Tier:      a.Tier,
	}
}

// Signature is shorthand for a.Config().Signature().
func (a *Analyzer) Signature() string { return a.Config().Signature() }

// TierEntry is the portable form of one cached direction timing — the value
// a TierStore persists. Every field of the internal dirTiming is represented
// (delays, degradation accounting, solver statistics) so a tier hit is
// indistinguishable from an in-memory hit: diagnostics, metrics and
// observer events all see the original evaluation's numbers.
type TierEntry struct {
	Delay, Slew  float64
	OK           bool
	SlewFellBack bool
	ErrMsg       string
	Tier         uint8
	Panics       int32
	Reduced      int32
	NRIters      int32
	Regions      int32
	DenseFall    int32
	CapResolves  int32
}

// Valid reports whether the entry could have been produced by this engine
// version — the cheap semantic check stores run after checksum verification,
// so a decodable-but-nonsensical record is treated as a miss rather than
// poisoning an analysis.
func (e TierEntry) Valid() bool {
	if Tier(e.Tier) >= NumTiers {
		return false
	}
	if e.OK && (math.IsNaN(e.Delay) || math.IsNaN(e.Slew)) {
		return false
	}
	return true
}

// TierStore is a read-through/write-behind store below the in-memory delay
// cache: the single-flight leader consults Get before evaluating and calls
// Put with every freshly computed timing. Implementations must be safe for
// concurrent use and are expected to be lossy in BOTH directions — a failed
// or dropped Put and a corrupt or missing Get are misses, never errors; the
// engine re-evaluates and overwrites. Keys are the engine's content-addressed
// cache keys (stage content + load digest + reduction signature + rail +
// slew bucket), so a store namespace must only ever be shared between
// analyzers with equal Signatures.
type TierStore interface {
	Get(key string) (TierEntry, bool)
	Put(key string, e TierEntry)
}

// tierEntryOf converts a computed timing to its portable form.
func tierEntryOf(t dirTiming) TierEntry {
	return TierEntry{
		Delay:        t.delay,
		Slew:         t.slew,
		OK:           t.ok,
		SlewFellBack: t.slewFellBack,
		ErrMsg:       t.errMsg,
		Tier:         uint8(t.tier),
		Panics:       int32(t.panics),
		Reduced:      int32(t.reduced),
		NRIters:      int32(t.stats.NRIters),
		Regions:      int32(t.stats.Regions),
		DenseFall:    int32(t.stats.DenseFallbacks),
		CapResolves:  int32(t.stats.CapResolves),
	}
}

// timing converts a persisted entry back to the engine's cache value.
func (e TierEntry) timing() dirTiming {
	t := dirTiming{
		delay:        e.Delay,
		slew:         e.Slew,
		ok:           e.OK,
		slewFellBack: e.SlewFellBack,
		errMsg:       e.ErrMsg,
		tier:         Tier(e.Tier),
		panics:       int(e.Panics),
		reduced:      int(e.Reduced),
	}
	t.stats.NRIters = int(e.NRIters)
	t.stats.Regions = int(e.Regions)
	t.stats.DenseFallbacks = int(e.DenseFall)
	t.stats.CapResolves = int(e.CapResolves)
	return t
}
