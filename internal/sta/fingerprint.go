package sta

import (
	"sort"
	"strconv"
	"sync"

	"qwm/internal/circuit"
	"qwm/internal/mos"
)

// MemoConfig is the equivalence-class memoization knob set. When enabled,
// structurally identical stages — same path topology, device geometry, gate
// wiring pattern, per-node capacitance contributors and load values, with
// node NAMES canonicalized away — share delay-cache entries: one
// representative is evaluated per (class, direction, slew bucket) and every
// other member reuses the result. The zero value disables memoization and
// leaves the raw name-carrying cache keys (and therefore pre-existing
// results, bit for bit) untouched.
type MemoConfig struct {
	// Enabled turns class memoization on. The evaluation slew is then
	// snapped to the 5 ps bucket floor so the shared entry is a pure
	// function of the class key — member- and schedule-independent.
	Enabled bool
	// Interp additionally evaluates the two bounding bucket BOUNDARIES and
	// linearly interpolates delay and slew at the exact input slew (the
	// internal/devmodel table idiom applied to the stage cache). More
	// accurate than floor-snapping for slews far from a boundary, at the
	// cost of up to two evaluations per new bucket. Boundary evaluations
	// share the snap-mode ("|b") key namespace, so a slew sitting exactly on
	// a bucket floor is bit-identical to snap mode and costs one eval.
	Interp bool
	// FPCap bounds the raw-key → class-key memo (fpTable): when an insert
	// would grow the table past the cap, the table is flushed and the
	// flushed entries are counted on the "sta/class/fp_evictions" metric.
	// Resolutions are cheap to recompute, so a rare full flush beats LRU
	// bookkeeping on the gather-phase hot path. 0 means the default
	// (65536 entries); negative means unbounded. FPCap does not affect
	// cache-key namespaces (it is absent from Signature).
	FPCap int
}

// defaultFPCap bounds fpTable when MemoConfig.FPCap is 0. At two entries per
// (stage, output) — one per rail — 65536 covers ~32k live stage outputs,
// far beyond the workloads here, while capping worst-case churn memory.
const defaultFPCap = 65536

// fpCap resolves the effective fpTable bound: cap <= 0 with FPCap < 0 means
// unlimited.
func (m MemoConfig) fpCap() int {
	switch {
	case m.FPCap > 0:
		return m.FPCap
	case m.FPCap < 0:
		return 0
	}
	return defaultFPCap
}

// Signature distinguishes memoized key namespaces; class keys additionally
// carry the "C|" prefix so they can never collide with raw keys.
func (m MemoConfig) Signature() string {
	switch {
	case !m.Enabled:
		return ""
	case m.Interp:
		return "mi"
	}
	return "m"
}

// fpTable memoizes raw-key → canonical-class-key resolutions on the
// Analyzer, so each (stage, output, rail) pays the fingerprint walk once per
// Analyzer lifetime no matter how many Analyzes consult it. The empty string
// is a valid value: it records "no canonical form" (no conducting path), and
// the caller then falls back to the raw key.
type fpTable struct {
	mu sync.RWMutex
	m  map[string]string
}

func (t *fpTable) lookup(raw string) (string, bool) {
	t.mu.RLock()
	s, ok := t.m[raw]
	t.mu.RUnlock()
	return s, ok
}

// lookupB is lookup for a key still in its assembly buffer (the
// map[string(b)] probe does not allocate).
func (t *fpTable) lookupB(raw []byte) (string, bool) {
	t.mu.RLock()
	s, ok := t.m[string(raw)]
	t.mu.RUnlock()
	return s, ok
}

// store inserts one resolution, flushing the whole table first when the
// insert would exceed cap (cap <= 0 means unbounded). It returns the number
// of entries evicted by that flush so the caller can feed the eviction
// metric without holding the lock.
func (t *fpTable) store(raw, canon string, cap int) int {
	t.mu.Lock()
	if t.m == nil {
		t.m = map[string]string{}
	}
	evicted := 0
	if _, exists := t.m[raw]; !exists && cap > 0 && len(t.m) >= cap {
		evicted = len(t.m)
		t.m = make(map[string]string, cap/4)
	}
	t.m[raw] = canon
	t.mu.Unlock()
	return evicted
}

// remove deletes one resolution, reporting whether it was present.
func (t *fpTable) remove(raw string) bool {
	t.mu.Lock()
	_, ok := t.m[raw]
	if ok {
		delete(t.m, raw)
	}
	t.mu.Unlock()
	return ok
}

// invalidateFP drops the fpTable resolutions of a stage whose content digest
// changed (ECO dirty diffing): each per-output content key has one memo entry
// per rail, and after an edit both point at a class the stage no longer
// belongs to. Without this the table accretes one dead entry per edited
// stage for the Analyzer's lifetime. Evictions land on the
// "sta/class/fp_evictions" metric alongside cap flushes.
func (a *Analyzer) invalidateFP(contentKeys []string) {
	n := 0
	for _, ck := range contentKeys {
		if a.fp.remove(ck + "|" + circuit.GroundNode) {
			n++
		}
		if a.fp.remove(ck + "|" + circuit.SupplyNode) {
			n++
		}
	}
	if n > 0 {
		if ms := a.metricSet(); ms != nil {
			ms.fpEvictions.Add(int64(n))
		}
	}
}

// classBase resolves the canonical per-direction key base for one (stage,
// output, rail): "C|<reduction-signature>|<fingerprint>|<rail>" when the
// stage has a conducting path, or "" when fingerprinting is impossible and
// the caller must key by raw identity. Resolutions are memoized per
// Analyzer; the walk itself is deterministic, so concurrent resolutions of
// one raw key store identical values.
func (a *Analyzer) classBase(raw string, st *circuit.Stage, out, rail string, loads map[string]float64, redSig string) string {
	if canon, ok := a.fp.lookup(raw); ok {
		return canon
	}
	fp, ok := fingerprint(st, out, rail, loads)
	canon := ""
	if ok {
		canon = "C|" + redSig + "|" + fp + "|" + rail
	}
	if evicted := a.fp.store(raw, canon, a.Memo.fpCap()); evicted > 0 {
		if ms := a.metricSet(); ms != nil {
			ms.fpEvictions.Add(int64(evicted))
		}
	}
	return canon
}

// resolveBases fills the per-direction key bases of one outEval: the raw
// contentKey+rail form by default, or the canonical class base when Memo is
// enabled and the direction fingerprints cleanly. Runs in the sequential
// gather phase; the scratch's classSeen set tallies the distinct direction
// classes (and the members beyond the first) into the Result's diagnostics,
// so the counts are schedule-independent. The raw key is assembled in the
// scratch buffer and only materialized (interned) when actually needed.
func (a *Analyzer) resolveBases(s *analyzeScratch, ev *outEval, st *circuit.Stage, out, redSig string, res *Result) {
	for i, rail := range [2]string{circuit.GroundNode, circuit.SupplyNode} {
		kb := append(s.keyBuf[:0], ev.contentKey...)
		kb = append(kb, '|')
		kb = append(kb, rail...)
		s.keyBuf = kb
		base, memo := "", false
		if a.Memo.Enabled {
			canon, ok := a.fp.lookupB(kb)
			if !ok {
				canon = a.classBase(a.keys.intern(kb), st, out, rail, ev.loads, redSig)
			}
			if canon != "" {
				base, memo = canon, true
				if s.classSeen[canon] {
					res.ClassHits++
				} else {
					s.classSeen[canon] = true
					res.ClassCount++
				}
			}
		}
		if base == "" {
			base = a.keys.intern(kb)
		}
		if i == 0 {
			ev.baseFall, ev.memoFall = base, memo
		} else {
			ev.baseRise, ev.memoRise = base, memo
		}
	}
}

// fingerprint serializes everything the degradation-ladder evaluation of one
// (stage, output, rail) direction reads, EXCEPT node names and input slew:
// the worst path's element sequence (kind, geometry, wire resistance, gate
// identity pattern), each internal path node's capacitance contributors in
// st.Edges order (the float-summation order the QWM builder uses, so two
// stages with equal fingerprints run bit-identical QWM evaluations), the
// path-node load values positionally, and the off-path load values as a
// sorted multiset (they only feed the spice tier's lumped caps). Numbers are
// encoded at full precision ('x' — exact hex floats), so two stages share a
// class only when their evaluations are genuinely interchangeable.
//
// ok is false when the stage has no conducting path to the rail — the same
// structural condition evalLadder fails on — and the caller then keys the
// (cached) failure by raw identity instead.
func fingerprint(st *circuit.Stage, out, rail string, loads map[string]float64) (string, bool) {
	path, err := circuit.LongestPath(st, out, rail)
	if err != nil {
		return "", false
	}
	b := make([]byte, 0, 256)
	// Gate identity pattern: gates are named by order of first appearance
	// along the path, so "NAND stack driven on its top input" and "… on its
	// bottom input" fingerprint differently while node names drop out.
	gateOrd := map[string]int{}
	onPath := map[string]bool{}
	for _, pe := range path.Elems {
		e := pe.Edge
		onPath[pe.Upper] = true
		if e.Kind == circuit.KindWire {
			b = append(b, 'w')
			b = appendHex(b, e.R)
			b = append(b, ';')
			continue
		}
		ord, seen := gateOrd[e.Gate]
		if !seen {
			ord = len(gateOrd)
			gateOrd[e.Gate] = ord
		}
		b = append(b, e.Kind.String()...)
		b = append(b, 'g')
		b = strconv.AppendInt(b, int64(ord), 10)
		b = append(b, ':')
		b = appendHex(b, e.W)
		b = append(b, ':')
		b = appendHex(b, e.L)
		b = append(b, ';')
	}
	// Per internal path node: load value plus every device-cap contributor,
	// mirroring the touch logic of qwm.Build exactly (Ref terminals when
	// present, Src/Snk otherwise).
	for _, pe := range path.Elems {
		name := pe.Upper
		b = append(b, '(')
		b = appendHex(b, loads[name])
		for _, e := range st.Edges {
			if e.Kind == circuit.KindWire {
				continue
			}
			var junc mos.Junction
			touches := false
			if t := e.Ref; t != nil {
				if t.Drain == name {
					touches, junc = true, t.DrainJunc
				} else if t.Source == name {
					touches, junc = true, t.SourceJunc
				}
			} else if e.Src == name || e.Snk == name {
				touches = true
			}
			if !touches {
				continue
			}
			b = append(b, ',')
			b = append(b, e.Kind.String()...)
			b = append(b, ':')
			b = appendHex(b, e.W)
			b = append(b, ':')
			b = appendHex(b, e.L)
			if junc != (mos.Junction{}) {
				b = append(b, 'j')
				b = appendHex(b, junc.Area)
				b = append(b, ':')
				b = appendHex(b, junc.Perim)
			}
		}
		b = append(b, ')')
	}
	// Off-path loads as a sorted value multiset: the spice tier instantiates
	// them as grounded caps wherever they sit, so their values (not their
	// names) are timing-relevant.
	var off []float64
	for n, c := range loads {
		if !onPath[n] {
			off = append(off, c)
		}
	}
	if len(off) > 0 {
		sort.Float64s(off)
		b = append(b, '[')
		for _, c := range off {
			b = appendHex(b, c)
			b = append(b, ',')
		}
		b = append(b, ']')
	}
	return string(b), true
}

// appendHex appends v in the exact, locale-free hex float format.
func appendHex(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'x', -1, 64)
}
