package sta

import (
	"reflect"
	"testing"

	"qwm/internal/circuit"
)

// loadedInverter builds a single inverter in -> out with the given explicit
// output load. Every call uses the same node names and geometry, so two
// netlists differing only in cl are "structurally identical stages with
// different fanout" — the shape that aliased under the load-blind cache key.
func loadedInverter(cl float64) *circuit.Netlist {
	nl := &circuit.Netlist{}
	nl.AddTransistor(&circuit.Transistor{Name: "mn", Kind: circuit.KindNMOS, Drain: "out", Gate: "in", Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
	nl.AddTransistor(&circuit.Transistor{Name: "mp", Kind: circuit.KindPMOS, Drain: "out", Gate: "in", Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
	nl.AddCapacitor("cl", "out", "0", cl)
	return nl
}

// TestCacheKeyIncludesLoad is the headline regression: a shared analyzer
// sees the identical inverter twice, first driving 1 fF and then 50 fF. The
// pre-fix cache key (stage content | rail | slew bucket, no load digest)
// aliased both to one entry, so the 50 fF analysis silently inherited the
// 1 fF delay. Post-fix the two evaluations get distinct entries, and every
// cached arrival is bit-for-bit identical to an uncached Workers=1 run and
// to a parallel run.
func TestCacheKeyIncludesLoad(t *testing.T) {
	primary := map[string]Arrival{"in": {}}
	outs := []string{"out"}

	shared := New(tech, lib)
	light, err := shared.Analyze(loadedInverter(1e-15), primary, outs)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := shared.Analyze(loadedInverter(50e-15), primary, outs)
	if err != nil {
		t.Fatal(err)
	}

	// 50 fF must be distinctly slower than 1 fF — with the load-blind key
	// the arrivals came out equal (heavy aliased to light's entry).
	if heavy.Arrivals["out"] == light.Arrivals["out"] {
		t.Fatalf("identical stage with 50 fF load aliased to the 1 fF cache entry: %+v", heavy.Arrivals["out"])
	}
	if heavy.WorstArrival <= 2*light.WorstArrival {
		t.Errorf("50 fF arrival %g not plausibly slower than 1 fF arrival %g", heavy.WorstArrival, light.WorstArrival)
	}
	// The second analysis had to actually evaluate, not hit the alias.
	if heavy.StagesEvaluated == 0 {
		t.Errorf("heavy-load analysis evaluated 0 stages: served entirely from the light-load cache")
	}

	// Ground truth: fresh, uncached serial analyzers. Cached arrivals must
	// match bit-for-bit (including slews and critical path).
	for _, tc := range []struct {
		name   string
		cl     float64
		cached *Result
	}{
		{"1fF", 1e-15, light},
		{"50fF", 50e-15, heavy},
	} {
		fresh := New(tech, lib)
		fresh.Workers = 1
		ref, err := fresh.Analyze(loadedInverter(tc.cl), primary, outs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tc.cached.Arrivals, ref.Arrivals) {
			t.Errorf("%s: cached arrivals %+v != uncached serial %+v", tc.name, tc.cached.Arrivals, ref.Arrivals)
		}
		if !reflect.DeepEqual(tc.cached.CriticalPath, ref.CriticalPath) {
			t.Errorf("%s: critical path %v != uncached %v", tc.name, tc.cached.CriticalPath, ref.CriticalPath)
		}

		par := New(tech, lib)
		par.Workers = 4
		pref, err := par.Analyze(loadedInverter(tc.cl), primary, outs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pref.Arrivals, ref.Arrivals) {
			t.Errorf("%s: parallel arrivals differ from serial", tc.name)
		}
	}
}

// TestSharedIdentityFanoutSiblings covers the same bug class within a single
// netlist: one input drives two geometrically identical inverters whose
// outputs carry 1 fF and 50 fF. Their arrivals must differ and match an
// uncached serial run bit-for-bit at every worker count.
func TestSharedIdentityFanoutSiblings(t *testing.T) {
	build := func() *circuit.Netlist {
		nl := &circuit.Netlist{}
		for i, out := range []string{"o1", "o2"} {
			nl.AddTransistor(&circuit.Transistor{Name: "mn" + out, Kind: circuit.KindNMOS, Drain: out, Gate: "in", Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
			nl.AddTransistor(&circuit.Transistor{Name: "mp" + out, Kind: circuit.KindPMOS, Drain: out, Gate: "in", Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
			cl := 1e-15
			if i == 1 {
				cl = 50e-15
			}
			nl.AddCapacitor("c"+out, out, "0", cl)
		}
		return nl
	}
	primary := map[string]Arrival{"in": {}}
	outs := []string{"o1", "o2"}

	serial := New(tech, lib)
	serial.Workers = 1
	ref, err := serial.Analyze(build(), primary, outs)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Arrivals["o1"] == ref.Arrivals["o2"] {
		t.Fatalf("sibling inverters with 1 fF and 50 fF loads got identical arrivals %+v", ref.Arrivals["o1"])
	}
	if ref.Arrivals["o2"].Fall <= ref.Arrivals["o1"].Fall {
		t.Errorf("50 fF sibling fall %g not slower than 1 fF sibling %g",
			ref.Arrivals["o2"].Fall, ref.Arrivals["o1"].Fall)
	}
	for _, workers := range []int{2, 8} {
		par := New(tech, lib)
		par.Workers = workers
		got, err := par.Analyze(build(), primary, outs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Arrivals, ref.Arrivals) {
			t.Errorf("workers=%d: arrivals differ from serial", workers)
		}
	}
}

// TestLoadDigest pins the canonical digest: sorted node order, fixed
// precision, and sensitivity to load changes above that precision.
func TestLoadDigest(t *testing.T) {
	if got := loadDigest(nil); got != "" {
		t.Errorf("empty load map digest = %q, want empty", got)
	}
	a := loadDigest(map[string]float64{"b": 2e-15, "a": 1e-15})
	b := loadDigest(map[string]float64{"a": 1e-15, "b": 2e-15})
	if a != b || a == "" {
		t.Errorf("digest not canonical across map order: %q vs %q", a, b)
	}
	if c := loadDigest(map[string]float64{"a": 1e-15, "b": 2.5e-15}); c == a {
		t.Errorf("digest insensitive to a load change: %q", c)
	}
	// Sub-precision jitter (below 6 significant digits) shares an entry.
	d1 := loadDigest(map[string]float64{"a": 1.0000001e-15})
	d2 := loadDigest(map[string]float64{"a": 1.0000002e-15})
	if d1 != d2 {
		t.Errorf("sub-precision jitter split the digest: %q vs %q", d1, d2)
	}
}
