package sta

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"qwm/internal/obs"
	"qwm/internal/stages"
)

// collectObserver is a concurrency-safe Observer that records every event.
// StageEval may be called from multiple workers; the mutex makes the
// collected slice safe, and tests sort it by (Level, Item) as the Observer
// contract prescribes.
type collectObserver struct {
	mu     sync.Mutex
	starts []obs.AnalyzeStartInfo
	levels []obs.LevelStartInfo
	evals  []obs.StageEvalInfo
	ends   []obs.AnalyzeEndInfo
}

func (c *collectObserver) AnalyzeStart(i obs.AnalyzeStartInfo) {
	c.mu.Lock()
	c.starts = append(c.starts, i)
	c.mu.Unlock()
}

func (c *collectObserver) LevelStart(i obs.LevelStartInfo) {
	c.mu.Lock()
	c.levels = append(c.levels, i)
	c.mu.Unlock()
}

func (c *collectObserver) StageEval(i obs.StageEvalInfo) {
	c.mu.Lock()
	c.evals = append(c.evals, i)
	c.mu.Unlock()
}

func (c *collectObserver) AnalyzeEnd(i obs.AnalyzeEndInfo) {
	c.mu.Lock()
	c.ends = append(c.ends, i)
	c.mu.Unlock()
}

// sortedEvals returns the StageEval events in the deterministic (Level,
// Item) order the Observer documentation tells consumers to use.
func (c *collectObserver) sortedEvals() []obs.StageEvalInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]obs.StageEvalInfo(nil), c.evals...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// decoderRequest builds the shared observability fixture: the 3-bit decoder
// netlist with staggered primary arrivals (same shape as analyzeDecoder).
func decoderRequest(t testing.TB) Request {
	t.Helper()
	nl, ins, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	primary := map[string]Arrival{}
	for i, in := range ins {
		primary[in] = Arrival{
			Rise: float64(i) * 17e-12, Fall: float64(i) * 13e-12,
			RiseSlew: 20e-12 + float64(i)*7e-12, FallSlew: 15e-12 + float64(i)*5e-12,
		}
	}
	return Request{Netlist: nl, Primary: primary, Outputs: outs}
}

// TestObserverEventOrdering pins the span contract: AnalyzeStart first,
// LevelStart per level in order, one StageEval per work item, AnalyzeEnd
// last — and, after the documented (Level, Item) sort, the parallel run's
// eval stream is identical (outputs, directions, hit/miss pattern, solver
// stats) to the serial run's.
func TestObserverEventOrdering(t *testing.T) {
	run := func(workers int) *collectObserver {
		a := New(tech, lib)
		a.Workers = workers
		c := &collectObserver{}
		req := decoderRequest(t)
		req.Observer = c
		if _, err := a.AnalyzeContext(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		return c
	}

	serial := run(1)
	if len(serial.starts) != 1 || len(serial.ends) != 1 {
		t.Fatalf("serial run: %d AnalyzeStart, %d AnalyzeEnd events, want 1 and 1",
			len(serial.starts), len(serial.ends))
	}
	start := serial.starts[0]
	// 19 stages (3 inverters + 8 NANDs + 8 drivers), one output each, two
	// directions: 38 items across 3 levels.
	if start.Stages != 19 || start.Items != 38 || start.Levels != 3 {
		t.Errorf("AnalyzeStart = %+v, want 19 stages / 38 items / 3 levels", start)
	}
	if got := len(serial.levels); got != start.Levels {
		t.Fatalf("%d LevelStart events, want %d", got, start.Levels)
	}
	itemSum := 0
	for li, lv := range serial.levels {
		if lv.Level != li {
			t.Errorf("LevelStart[%d].Level = %d, want in-order delivery", li, lv.Level)
		}
		itemSum += lv.Items
	}
	if itemSum != start.Items || len(serial.evals) != start.Items {
		t.Errorf("level items sum %d, evals %d, want both = %d", itemSum, len(serial.evals), start.Items)
	}
	end := serial.ends[0]
	if end.Err != nil || end.Cancelled {
		t.Errorf("AnalyzeEnd reports err=%v cancelled=%v on a clean run", end.Err, end.Cancelled)
	}
	if end.CacheHits+end.CacheMisses != int64(start.Items) {
		t.Errorf("hits %d + misses %d != items %d", end.CacheHits, end.CacheMisses, start.Items)
	}
	if end.StagesEvaluated != int(end.CacheMisses) {
		t.Errorf("StagesEvaluated %d != misses %d on a fresh analyzer", end.StagesEvaluated, end.CacheMisses)
	}

	// The serial stream must already be in (Level, Item) order.
	se := serial.sortedEvals()
	for i := range se {
		if se[i] != serial.evals[i] {
			t.Fatalf("serial StageEval stream not in (Level, Item) order at %d", i)
		}
	}

	par := run(runtime.GOMAXPROCS(0))
	pe := par.sortedEvals()
	if len(pe) != len(se) {
		t.Fatalf("parallel run delivered %d StageEval events, serial %d", len(pe), len(se))
	}
	// The serial run must attribute every item to worker slot 0.
	for i := range se {
		if se[i].Worker != 0 {
			t.Errorf("serial event %d ran on worker %d, want 0", i, se[i].Worker)
		}
		if se[i].CacheHit || se[i].Tier != "qwm" {
			continue // clean decoder run: all misses at the QWM tier checked below
		}
	}
	for i := range se {
		a, b := se[i], pe[i]
		// Duration is wall clock and Worker is the pool slot — both are
		// schedule-dependent; everything else must match exactly (Tier
		// included: the ladder rung is a property of the cached entry).
		a.Duration, b.Duration = 0, 0
		a.Worker, b.Worker = 0, 0
		if a != b {
			t.Errorf("event %d differs after sort:\n serial  %+v\n parallel %+v", i, a, b)
		}
	}
}

// TestMetricsDeterminism is the acceptance gate: the deterministic portion
// of the metrics snapshot (everything outside "sta/time/") is byte-for-byte
// identical between Workers = 1 and Workers = 8 on the same input.
func TestMetricsDeterminism(t *testing.T) {
	snap := func(workers int) []byte {
		a := New(tech, lib)
		a.Workers = workers
		a.Metrics = obs.NewRegistry()
		if _, err := a.AnalyzeContext(context.Background(), decoderRequest(t)); err != nil {
			t.Fatal(err)
		}
		js, err := a.Metrics.Snapshot().Deterministic().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	serial := snap(1)
	parallel := snap(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("deterministic metric snapshots differ between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	// Sanity: the deterministic snapshot actually carries the solver
	// histograms, and no timing series leaked through the filter.
	full := func() obs.Snapshot {
		a := New(tech, lib)
		a.Metrics = obs.NewRegistry()
		if _, err := a.AnalyzeContext(context.Background(), decoderRequest(t)); err != nil {
			t.Fatal(err)
		}
		return a.Metrics.Snapshot()
	}()
	det := full.Deterministic()
	for _, h := range []string{hNRItersPerEval, hRegionsPerEval} {
		if hs, ok := det.Histograms[h]; !ok || hs.Count == 0 {
			t.Errorf("deterministic snapshot missing observations in %q", h)
		}
	}
	for _, h := range []string{hEvalSeconds, hLevelSeconds, hAnalyzeSeconds} {
		if _, ok := full.Histograms[h]; !ok {
			t.Errorf("full snapshot missing timing histogram %q", h)
		}
		if _, ok := det.Histograms[h]; ok {
			t.Errorf("timing histogram %q leaked into Deterministic()", h)
		}
	}
	if full.Counters[mAnalyzes] != 1 || full.Counters[mCacheMisses] != 38 {
		t.Errorf("counters %v: want %s=1, %s=38", full.Counters, mAnalyzes, mCacheMisses)
	}
}

// TestCancelledContextLeavesCacheUsable is the regression test for the
// single-flight stranding bug: an Analyze handed an already-cancelled
// context must return ctx.Err() without installing pending cache entries,
// and cancellation mid-run must leave every installed entry completed — a
// later Analyze on the same Analyzer must succeed (re-evaluating, not
// deadlocking on a never-closed ready channel).
func TestCancelledContextLeavesCacheUsable(t *testing.T) {
	a := New(tech, lib)
	a.Workers = 4
	req := decoderRequest(t)

	// Already-cancelled context: no cache activity at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.AnalyzeContext(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled analyze returned %v, want context.Canceled", err)
	}
	if st := a.CacheStats(); st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("pre-cancelled analyze touched the cache: %+v", st)
	}

	// Cancel mid-run, from inside the observer, at the start of level 1:
	// level 0's entries are installed and MUST be completed.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	req.Observer = obs.Funcs{OnLevelStart: func(i obs.LevelStartInfo) {
		if i.Level == 1 {
			cancel2()
		}
	}}
	if _, err := a.AnalyzeContext(ctx2, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel returned %v, want context.Canceled", err)
	}
	partial := a.CacheStats()
	if partial.Entries == 0 {
		t.Fatal("mid-run cancel left no cache entries; expected level 0 to complete")
	}

	// The same analyzer must now complete normally. A stranded pending entry
	// would deadlock here, so run with a timeout guard.
	req.Observer = nil
	done := make(chan error, 1)
	go func() {
		_, err := a.AnalyzeContext(context.Background(), req)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-cancel analyze failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("post-cancel analyze deadlocked (stranded single-flight entry?)")
	}
	if st := a.CacheStats(); st.Misses <= partial.Misses {
		t.Errorf("post-cancel analyze added no misses (%d -> %d); expected the abandoned levels to evaluate",
			partial.Misses, st.Misses)
	}
}

// TestCancelMidAnalyzeNoGoroutineLeak cancels a running parallel analysis
// and checks the worker goroutines are all joined: the goroutine count
// settles back to its pre-Analyze baseline.
func TestCancelMidAnalyzeNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		a := New(tech, lib)
		a.Workers = 8
		req := decoderRequest(t)
		ctx, cancel := context.WithCancel(context.Background())
		req.Observer = obs.Funcs{OnLevelStart: func(info obs.LevelStartInfo) {
			if info.Level == 1 {
				cancel()
			}
		}}
		if _, err := a.AnalyzeContext(ctx, req); !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: got %v, want context.Canceled", i, err)
		}
		cancel()
	}
	// Let any stragglers exit, then compare against the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d before", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAnalyzeEndReportsCancel checks the AnalyzeEnd span on an aborted run:
// Err is the context error and Cancelled is set.
func TestAnalyzeEndReportsCancel(t *testing.T) {
	a := New(tech, lib)
	c := &collectObserver{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := decoderRequest(t)
	req.Observer = obs.Multi{c, obs.Funcs{OnLevelStart: func(i obs.LevelStartInfo) {
		if i.Level == 1 {
			cancel()
		}
	}}}
	if _, err := a.AnalyzeContext(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(c.ends) != 1 {
		t.Fatalf("%d AnalyzeEnd events, want exactly 1", len(c.ends))
	}
	end := c.ends[0]
	if !end.Cancelled || !errors.Is(end.Err, context.Canceled) {
		t.Errorf("AnalyzeEnd = %+v, want Cancelled with context.Canceled", end)
	}
}

// TestDiagnosticsString pins the folded Diagnostics rendering and the
// deprecated promoted selectors on Result.
func TestDiagnosticsString(t *testing.T) {
	cases := []struct {
		d    Diagnostics
		want string
	}{
		{Diagnostics{}, "0 eval errors, 0 slew fallbacks"},
		{Diagnostics{EvalErrors: 1, SlewFallbacks: 2}, "1 eval error, 2 slew fallbacks"},
		{
			Diagnostics{
				EvalErrors: 2, SlewFallbacks: 1,
				EvalErrorDetail: map[string]string{"x~fall": "diverged", "out~rise": "no path"},
			},
			"2 eval errors, 1 slew fallback [out~rise: no path; x~fall: diverged]",
		},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Diagnostics%+v.String() = %q, want %q", c.d, got, c.want)
		}
	}
	if !(Diagnostics{}).Healthy() || (Diagnostics{SlewFallbacks: 1}).Healthy() {
		t.Error("Healthy() wrong on zero / fallback diagnostics")
	}
	// Promoted (deprecated) selectors still work through the embedding.
	var r Result
	r.Diagnostics.EvalErrors = 3
	if r.EvalErrors != 3 {
		t.Error("Result.EvalErrors no longer promoted from Diagnostics")
	}
}

// BenchmarkAnalyzeObserved measures the observability overhead on a warm
// cache: the same decoder analysis bare, with a no-op observer, and with a
// metrics registry attached.
func BenchmarkAnalyzeObserved(b *testing.B) {
	bench := func(b *testing.B, observer obs.Observer, metrics *obs.Registry) {
		a := New(tech, lib)
		a.Metrics = metrics
		req := decoderRequest(b)
		req.Observer = observer
		ctx := context.Background()
		if _, err := a.AnalyzeContext(ctx, req); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.AnalyzeContext(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { bench(b, nil, nil) })
	b.Run("nop-observer", func(b *testing.B) { bench(b, obs.Nop{}, nil) })
	b.Run("metrics", func(b *testing.B) { bench(b, nil, obs.NewRegistry()) })
	b.Run("both", func(b *testing.B) { bench(b, obs.Nop{}, obs.NewRegistry()) })
}
