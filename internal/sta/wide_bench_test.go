package sta

import (
	"testing"

	"qwm/internal/reduce"
	"qwm/internal/stages"
)

// benchWide runs cold Analyzes (fresh Analyzer per iteration — no cache
// carry-over) of the wide fanout-with-long-wires netlist, the workload the
// hot-path features target: `fan` structurally identical branches (memo
// collapses them to one class each) pushing 24-segment RC lines (reduction
// collapses them to a handful of moment-matched segments).
func benchWide(b *testing.B, red reduce.Config, memo MemoConfig) {
	nl, ins, outs, err := stages.WideNetlist(tech, 16, 24, 1e-6, 10e-15)
	if err != nil {
		b.Fatal(err)
	}
	primary := map[string]Arrival{}
	for _, in := range ins {
		primary[in] = Arrival{}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := New(tech, lib)
		a.Workers = 1
		a.Reduction = red
		a.Memo = memo
		if _, err := a.Analyze(nl, primary, outs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTAWide/off is the pre-PR behavior; BenchmarkSTAWide/on enables
// the reduction pre-pass and class memoization together. The acceptance bar
// for the hot-path overhaul is on >= 2x faster than off on this workload.
func BenchmarkSTAWide(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchWide(b, reduce.Config{}, MemoConfig{})
	})
	b.Run("on", func(b *testing.B) {
		benchWide(b, reduce.Config{Enabled: true}, MemoConfig{Enabled: true})
	})
}
