package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/obs"
	"qwm/internal/sta"
	"qwm/internal/stages"
)

func testEntry(i int) sta.TierEntry {
	return sta.TierEntry{
		Delay:   float64(i) * 1.25e-12,
		Slew:    float64(i) * 3e-13,
		OK:      true,
		Tier:    0,
		NRIters: int32(i),
		Regions: int32(i % 7),
	}
}

func mustOpen(t *testing.T, dir, sig string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "sigA", Options{})
	const n = 100
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("key-%03d", i), testEntry(i))
	}
	s.Flush()
	for i := 0; i < n; i++ {
		e, ok := s.Get(fmt.Sprintf("key-%03d", i))
		if !ok {
			t.Fatalf("key-%03d missing before restart", i)
		}
		if e != testEntry(i) {
			t.Fatalf("key-%03d: got %+v want %+v", i, e, testEntry(i))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh Store over the same directory serves every entry.
	s2 := mustOpen(t, dir, "sigA", Options{})
	for i := 0; i < n; i++ {
		e, ok := s2.Get(fmt.Sprintf("key-%03d", i))
		if !ok {
			t.Fatalf("key-%03d lost across restart", i)
		}
		if e != testEntry(i) {
			t.Fatalf("key-%03d after restart: got %+v want %+v", i, e, testEntry(i))
		}
	}
	st := s2.Stats()
	if st.Entries != n || st.Corrupt != 0 {
		t.Fatalf("restart stats: %+v", st)
	}
}

func TestLatestWriteWins(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "s", Options{})
	s.Put("k", testEntry(1))
	s.Put("k", testEntry(2))
	s.Flush()
	if e, _ := s.Get("k"); e != testEntry(2) {
		t.Fatalf("live store served %+v, want the later write", e)
	}
	s.Close()
	s2 := mustOpen(t, dir, "s", Options{})
	if e, ok := s2.Get("k"); !ok || e != testEntry(2) {
		t.Fatalf("reopened store served %+v (ok=%v), want the later write", e, ok)
	}
}

func TestSignatureMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "config-one", Options{})
	s.Close()
	if _, err := Open(dir, "config-two", Options{}); err == nil {
		t.Fatal("reopening under a different signature must fail")
	}
	// Same signature still fine.
	s2 := mustOpen(t, dir, "config-one", Options{})
	s2.Close()
}

// TestKillMidWrite simulates a crash that tears the last record: the torn
// tail must be truncated away on reopen and every record before it served.
func TestKillMidWrite(t *testing.T) {
	for _, cut := range []int{1, 5, 11, 13} { // inside header, inside key, inside value
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, "s", Options{})
			for i := 0; i < 10; i++ {
				s.Put(fmt.Sprintf("key-%d", i), testEntry(i))
			}
			s.Flush()
			s.Close()

			seg := filepath.Join(dir, fmt.Sprintf(segPattern, 0))
			full, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			rec := encodeRecord("torn-key", encodeEntry(testEntry(99)))
			if cut >= len(rec) {
				t.Fatalf("cut %d outside record of %d bytes", cut, len(rec))
			}
			// Crash mid-append: only the first cut bytes of the record land.
			if err := os.WriteFile(seg, append(full, rec[:cut]...), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := mustOpen(t, dir, "s", Options{})
			if _, ok := s2.Get("torn-key"); ok {
				t.Fatal("torn record must not be served")
			}
			for i := 0; i < 10; i++ {
				if e, ok := s2.Get(fmt.Sprintf("key-%d", i)); !ok || e != testEntry(i) {
					t.Fatalf("key-%d lost or changed after torn-tail recovery (ok=%v)", i, ok)
				}
			}
			// The tail was truncated: appends after recovery must land cleanly.
			s2.Put("after", testEntry(50))
			s2.Flush()
			s2.Close()
			s3 := mustOpen(t, dir, "s", Options{})
			if e, ok := s3.Get("after"); !ok || e != testEntry(50) {
				t.Fatal("append after recovery did not survive a second restart")
			}
		})
	}
}

// TestCorruptEntryIsMiss flips one byte inside a committed record's value:
// the Get must miss, count sta/disk/corrupt, and never return wrong data.
func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, dir, "s", Options{Metrics: reg})
	s.Put("victim", testEntry(3))
	s.Put("bystander", testEntry(4))
	s.Flush()
	s.Close()

	seg := filepath.Join(dir, fmt.Sprintf(segPattern, 0))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// The victim record is first after the magic; flip a byte well inside
	// its value region (past header+key).
	off := len(segMagic) + recHeader + len("victim") + 14
	b[off] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := obs.NewRegistry()
	s2, err := Open(dir, "s", Options{Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Open-time scan stops at the corrupt record: the victim is unindexed
	// (miss) and the corruption is counted.
	if _, ok := s2.Get("victim"); ok {
		t.Fatal("corrupt record served as a hit")
	}
	if got := reg2.Snapshot().Counters["sta/disk/corrupt"]; got == 0 {
		t.Error("corruption not counted on sta/disk/corrupt")
	}
	if s2.Stats().Corrupt == 0 {
		t.Error("corruption not counted in Stats")
	}
}

// TestCorruptionAfterIndexIsMiss corrupts a record AFTER the index was
// built (bit rot under a live store): the per-Get CRC re-verification must
// catch it.
func TestCorruptionAfterIndexIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "s", Options{})
	s.Put("k", testEntry(7))
	s.Flush()
	if _, ok := s.Get("k"); !ok {
		t.Fatal("sanity: entry must hit before corruption")
	}
	// Rot the value in place while the store is live and the index warm.
	seg := filepath.Join(dir, fmt.Sprintf(segPattern, 0))
	f, err := os.OpenFile(seg, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(len(segMagic) + recHeader + len("k") + 14)
	var one [1]byte
	if _, err := f.ReadAt(one[:], off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0xFF
	if _, err := f.WriteAt(one[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, ok := s.Get("k"); ok {
		t.Fatal("re-verification missed in-place corruption")
	}
	if s.Stats().Corrupt == 0 {
		t.Error("in-place corruption not counted")
	}
}

// TestGCBoundsSizeAndServesReaders drives enough writes through a tiny
// store to force segment GC while hammering Get from parallel readers:
// the size cap must hold, and every hit must return exactly what was put.
func TestGCBoundsSizeAndServesReaders(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "s", Options{
		SegmentBytes: 4 << 10,
		MaxBytes:     16 << 10,
		QueueLen:     1 << 14,
	})
	const n = 1000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i = (i + 17) % n {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("key-%04d", i)
				if e, ok := s.Get(key); ok && e != testEntry(i) {
					t.Errorf("reader %d: %s returned %+v, want %+v", r, key, e, testEntry(i))
					return
				}
			}
		}(r)
	}
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("key-%04d", i), testEntry(i))
	}
	s.Flush()
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.Bytes > 24<<10 { // cap + one active segment of slack
		t.Errorf("GC failed to bound size: %d bytes on disk", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Errorf("expected evictions, stats %+v", st)
	}
	// Recent keys must still be present; evicted old keys must miss cleanly.
	hits := 0
	for i := 0; i < n; i++ {
		if e, ok := s.Get(fmt.Sprintf("key-%04d", i)); ok {
			hits++
			if e != testEntry(i) {
				t.Fatalf("key-%04d corrupted by GC", i)
			}
		}
	}
	if hits == 0 || hits == n {
		t.Errorf("after GC: %d/%d hits — expected a strict subset", hits, n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart over the GC'd directory: still consistent.
	s2 := mustOpen(t, dir, "s", Options{})
	for i := n - 50; i < n; i++ {
		if e, ok := s2.Get(fmt.Sprintf("key-%04d", i)); ok && e != testEntry(i) {
			t.Fatalf("key-%04d corrupted after GC+restart", i)
		}
	}
}

func TestQueueOverflowDropsNotBlocks(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "s", Options{QueueLen: 4})
	// Far more puts than the queue holds; Put must never block.
	for i := 0; i < 10000; i++ {
		s.Put(fmt.Sprintf("k%d", i), testEntry(i))
	}
	s.Flush()
	st := s.Stats()
	if st.Puts+st.Dropped < 10000 {
		t.Fatalf("puts %d + dropped %d < 10000", st.Puts, st.Dropped)
	}
}

func TestNilStoreIsNoop(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	s.Put("k", testEntry(1))
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats %+v", st)
	}
}

// TestWarmDiskMatchesWarmMemory is the end-to-end durability guarantee: an
// analyzer rehydrated purely from disk must produce bit-for-bit the results
// a warm in-memory analyzer does — arrivals, critical path, diagnostics —
// with zero solver evaluations and ≥90 % disk hit rate.
func TestWarmDiskMatchesWarmMemory(t *testing.T) {
	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)
	nl, ins, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	primary := map[string]sta.Arrival{}
	for _, in := range ins {
		primary[in] = sta.Arrival{}
	}
	req := sta.Request{Netlist: nl, Primary: primary, Outputs: outs}
	cfg := sta.Config{Workers: 2}
	dir := t.TempDir()

	// Cold run populates the disk tier.
	s1, err := Open(dir, cfg.Signature(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tier = s1
	cold := sta.New(tech, lib, cfg)
	ref, err := cold.AnalyzeContext(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-memory reference: same analyzer, second run.
	warmMem, err := cold.AnalyzeContext(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if warmMem.StagesEvaluated != 0 {
		t.Fatalf("warm-memory run evaluated %d stages", warmMem.StagesEvaluated)
	}
	s1.Flush()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh store over the same dir, fresh analyzer.
	s2, err := Open(dir, cfg.Signature(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cfg.Tier = s2
	fresh := sta.New(tech, lib, cfg)
	warmDisk, err := fresh.AnalyzeContext(nil, req)
	if err != nil {
		t.Fatal(err)
	}

	if warmDisk.StagesEvaluated != 0 {
		t.Errorf("warm-disk run evaluated %d stages, want 0", warmDisk.StagesEvaluated)
	}
	if !reflect.DeepEqual(warmMem.Arrivals, warmDisk.Arrivals) {
		t.Errorf("warm-disk arrivals diverged from warm-memory\nmem:  %v\ndisk: %v",
			warmMem.Arrivals, warmDisk.Arrivals)
	}
	if !reflect.DeepEqual(warmMem.CriticalPath, warmDisk.CriticalPath) ||
		warmMem.WorstArrival != warmDisk.WorstArrival || warmMem.WorstOutput != warmDisk.WorstOutput {
		t.Error("warm-disk summary diverged from warm-memory")
	}
	if !reflect.DeepEqual(warmMem.Diagnostics, warmDisk.Diagnostics) {
		t.Errorf("warm-disk diagnostics diverged\nmem:  %+v\ndisk: %+v",
			warmMem.Diagnostics, warmDisk.Diagnostics)
	}
	_ = ref
	if hr := s2.Stats().HitRate(); hr < 0.9 {
		t.Errorf("disk hit rate %.2f after restart, want >= 0.90 (stats %+v)", hr, s2.Stats())
	}
}
