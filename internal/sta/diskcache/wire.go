package diskcache

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"qwm/internal/sta"
)

// The CRC-framed record and Float64bits entry encodings double as the
// remote-cache wire format (internal/sta/remotecache): one replica's disk
// segments and another replica's HTTP responses carry byte-identical frames,
// verified by the same checksum at every hop. These exported wrappers are the
// single source of truth for that format — the remote tier must never grow a
// second, subtly different encoder.

// EncodeEntry serializes a TierEntry into the store's value encoding
// (version byte, flags, raw IEEE-754 float bits — see encodeEntry).
func EncodeEntry(e sta.TierEntry) []byte { return encodeEntry(e) }

// DecodeEntry parses a value encoded by EncodeEntry. It performs structural
// validation only; callers must still check sta.TierEntry.Valid.
func DecodeEntry(b []byte) (sta.TierEntry, error) { return decodeEntry(b) }

// EncodeRecord frames one key/value pair with a leading CRC32-Castagnoli over
// everything after the checksum itself:
//
//	[u32 CRC][u32 keyLen][u32 valLen][key][val]
func EncodeRecord(key string, val []byte) []byte { return encodeRecord(key, val) }

// ErrCorruptRecord is returned by DecodeRecord for any framing failure —
// short buffer, implausible lengths, trailing bytes, or checksum mismatch.
// Callers treat it uniformly as "this record does not exist".
var ErrCorruptRecord = errors.New("diskcache: corrupt record frame")

// DecodeRecord parses and CRC-verifies a frame produced by EncodeRecord,
// returning the embedded key and value bytes (aliasing b, not copied).
func DecodeRecord(b []byte) (key string, val []byte, err error) {
	if len(b) < recHeader {
		return "", nil, ErrCorruptRecord
	}
	crc := binary.LittleEndian.Uint32(b[0:4])
	keyLen := int(binary.LittleEndian.Uint32(b[4:8]))
	valLen := int(binary.LittleEndian.Uint32(b[8:12]))
	if keyLen <= 0 || keyLen > maxKeyLen || valLen <= 0 || valLen > maxValLen ||
		len(b) != recHeader+keyLen+valLen {
		return "", nil, ErrCorruptRecord
	}
	if crc32.Checksum(b[4:], crcTable) != crc {
		return "", nil, ErrCorruptRecord
	}
	return string(b[recHeader : recHeader+keyLen]), b[recHeader+keyLen:], nil
}
