// Package diskcache is the persistent tier below the engine's in-memory
// delay cache: a content-addressed store of direction timings (sta.TierEntry
// values keyed by the engine's cache keys) that survives process restarts,
// so a service replica restarting over a warm directory re-serves previously
// analyzed netlists without re-running the solver.
//
// Design constraints, in order:
//
//  1. Never serve wrong data. Every record carries a CRC32 over its entire
//     payload, re-verified on every Get (not just at open), and a semantic
//     validity check on the decoded entry. Any mismatch is a miss — the
//     engine re-evaluates and overwrites. Torn tails from a crash mid-write
//     are truncated away at open.
//  2. Lossy is fine, slow is not. Puts are write-behind through a bounded
//     channel drained by one writer goroutine; when the channel is full the
//     put is dropped (and counted). Gets are a ReadAt against the segment
//     file under an RLock — no serialization with the writer beyond index
//     access.
//  3. Bounded size. Records append to numbered segment files; when a segment
//     exceeds segTarget bytes it is sealed and a new one started, and when
//     the directory's total exceeds MaxBytes the oldest sealed segments are
//     dropped whole (with their index entries). Dropping whole segments
//     keeps GC O(dropped keys) with no compaction or rewrite phase.
//
// A directory must only ever be shared by analyzers with equal result
// signatures (sta.Config.Signature); Open persists the signature in a
// "signature" file and refuses a mismatched reopen — the one failure mode
// the CRC cannot catch, because a stale entry from another configuration is
// internally consistent and still wrong.
package diskcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"qwm/internal/obs"
	"qwm/internal/sta"
)

// Options tunes a store. The zero value is usable: 256 MiB cap, 4 MiB
// segments, a 1024-entry write-behind queue, no metrics.
type Options struct {
	// MaxBytes caps the directory's total segment bytes; exceeding it drops
	// the oldest sealed segments. 0 means 256 MiB, negative means unlimited.
	MaxBytes int64
	// SegmentBytes is the size at which the active segment is sealed and a
	// new one started. 0 means 4 MiB.
	SegmentBytes int64
	// QueueLen bounds the write-behind channel; a full queue drops the put.
	// 0 means 1024.
	QueueLen int
	// Sync, when set, fsyncs the active segment after every record — crash
	// durability for every put, at a large throughput cost. Off by default:
	// the store is a cache, and a lost tail only costs re-evaluation.
	Sync bool
	// Metrics, when set, receives the store's counters (sta/disk/hits,
	// misses, puts, dropped, corrupt, evictions) and the sta/disk/bytes
	// gauge.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxBytes == 0 {
		o.MaxBytes = 256 << 20
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	return o
}

// Stats is a snapshot of a store's counters.
type Stats struct {
	Hits, Misses int64 // Get outcomes
	Puts         int64 // records durably appended
	Dropped      int64 // puts discarded by a full write-behind queue
	Corrupt      int64 // CRC / decode failures served as misses
	Evictions    int64 // keys dropped by segment GC
	Entries      int   // live index entries
	Segments     int   // segment files on disk
	Bytes        int64 // total segment bytes
}

// HitRate returns hits / (hits + misses), 0 when idle.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

const (
	segMagic   = "QWMDSEG1"     // 8-byte segment preamble
	sigFile    = "signature"    // persisted Config.Signature
	segPattern = "seg-%06d.log" // segment file naming
	recHeader  = 4 + 4 + 4      // CRC32, key length, value length
	maxKeyLen  = 1 << 20        // sanity bounds: a longer field means a
	maxValLen  = 1 << 20        // corrupt header, not a huge record
	entryVer   = 1              // TierEntry encoding version
	flagOK     = 1 << 0
	flagFell   = 1 << 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// indexEntry locates a record's value bytes inside a segment.
type indexEntry struct {
	seg    int
	off    int64 // offset of the VALUE bytes
	keyLen int
	valLen int
	crc    uint32 // CRC over keyLen|valLen|key|val, re-verified on Get
}

type segment struct {
	id   int
	f    *os.File
	size int64
}

type putReq struct {
	key string
	val []byte
	// ack, when non-nil, marks a Flush barrier: the writer closes it once
	// every request enqueued before it has been processed. Barrier requests
	// carry no data.
	ack chan struct{}
}

// Store is a persistent TierStore over one directory. It satisfies
// sta.TierStore; a nil *Store is a valid no-op tier.
type Store struct {
	dir  string
	opts Options

	mu     sync.RWMutex
	index  map[string]indexEntry
	segs   []*segment // ascending id order; last is active
	closed bool

	queue      chan putReq
	done       chan struct{}
	writerDone chan struct{}
	closeO     sync.Once

	hits, misses, puts, dropped, corrupt, evictions *obs.Counter
	bytes                                           *obs.Gauge

	statHits, statMisses, statPuts, statDropped, statCorrupt, statEvict counterPair
}

// counterPair mirrors a metric into a plain atomic so Stats works with a nil
// registry; obs.Counter is already atomic, so we just keep our own.
type counterPair struct{ c obs.Counter }

func (p *counterPair) add(n int64, m *obs.Counter) { p.c.Add(n); m.Add(n) }
func (p *counterPair) value() int64                { return p.c.Value() }

// Open opens (or creates) the store in dir. signature is the owning
// analyzer configuration's sta.Config.Signature(); a directory previously
// opened under a different signature is rejected, because its entries would
// be internally consistent but computed under other settings.
func Open(dir, signature string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	if err := checkSignature(dir, signature); err != nil {
		return nil, err
	}
	s := &Store{
		dir:        dir,
		opts:       opts,
		index:      map[string]indexEntry{},
		queue:      make(chan putReq, opts.QueueLen),
		done:       make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	r := opts.Metrics
	s.hits = r.Counter("sta/disk/hits")
	s.misses = r.Counter("sta/disk/misses")
	s.puts = r.Counter("sta/disk/puts")
	s.dropped = r.Counter("sta/disk/dropped")
	s.corrupt = r.Counter("sta/disk/corrupt")
	s.evictions = r.Counter("sta/disk/evictions")
	s.bytes = r.Gauge("sta/disk/bytes")
	if err := s.load(); err != nil {
		s.closeSegments()
		return nil, err
	}
	s.bytes.Set(s.totalBytes())
	go s.writer()
	return s, nil
}

// checkSignature creates or verifies the directory's signature file.
func checkSignature(dir, signature string) error {
	p := filepath.Join(dir, sigFile)
	b, err := os.ReadFile(p)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return os.WriteFile(p, []byte(signature), 0o644)
	case err != nil:
		return fmt.Errorf("diskcache: %w", err)
	case string(b) != signature:
		return fmt.Errorf("diskcache: %s was written under signature %q, refusing to reopen under %q",
			dir, b, signature)
	}
	return nil
}

// load scans every segment, rebuilding the index. Later segments win on
// duplicate keys (append-only: the latest write is the freshest). The
// ACTIVE (last) segment's torn tail — a crash mid-append — is truncated
// away; corruption in a SEALED segment stops indexing that segment at the
// bad record (the tail entries are lost, which is a cache miss, not an
// error).
func (s *Store) load() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	ids := make([]int, 0, len(names))
	for _, n := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(n), segPattern, &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for i, id := range ids {
		active := i == len(ids)-1
		seg, err := s.scanSegment(id, active)
		if err != nil {
			return err
		}
		if seg != nil {
			s.segs = append(s.segs, seg)
		}
	}
	if len(s.segs) == 0 {
		seg, err := s.newSegment(0)
		if err != nil {
			return err
		}
		s.segs = []*segment{seg}
	}
	return nil
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf(segPattern, id))
}

func (s *Store) newSegment(id int) (*segment, error) {
	f, err := os.OpenFile(s.segPath(id), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return &segment{id: id, f: f, size: int64(len(segMagic))}, nil
}

// scanSegment walks one segment file, indexing every intact record. A
// segment with an unreadable preamble is ignored entirely (renamed out of
// the way would risk data the operator wants; we just skip it).
func (s *Store) scanSegment(id int, active bool) (*segment, error) {
	f, err := os.OpenFile(s.segPath(id), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	size := fi.Size()
	magic := make([]byte, len(segMagic))
	if n, _ := f.ReadAt(magic, 0); n != len(segMagic) || string(magic) != segMagic {
		f.Close()
		if !active {
			return nil, nil // foreign or empty file: skip, don't destroy
		}
		// Active segment with no valid preamble: recreate it empty.
		if err := os.Remove(s.segPath(id)); err != nil {
			return nil, fmt.Errorf("diskcache: %w", err)
		}
		return s.newSegment(id)
	}

	off := int64(len(segMagic))
	hdr := make([]byte, recHeader)
	var buf []byte
	good := off
	for off < size {
		if n, _ := f.ReadAt(hdr, off); n != recHeader {
			break // torn header
		}
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		keyLen := int(binary.LittleEndian.Uint32(hdr[4:8]))
		valLen := int(binary.LittleEndian.Uint32(hdr[8:12]))
		if keyLen <= 0 || keyLen > maxKeyLen || valLen <= 0 || valLen > maxValLen ||
			off+recHeader+int64(keyLen+valLen) > size {
			break // corrupt header or torn body
		}
		need := 8 + keyLen + valLen
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		body := buf[:need]
		copy(body[0:8], hdr[4:12])
		if n, _ := f.ReadAt(body[8:], off+recHeader); n != keyLen+valLen {
			break
		}
		if crc32.Checksum(body, crcTable) != crc {
			s.statCorrupt.add(1, s.corrupt)
			break // everything past a bad CRC is suspect
		}
		key := string(body[8 : 8+keyLen])
		s.index[key] = indexEntry{
			seg:    id,
			off:    off + recHeader + int64(keyLen),
			keyLen: keyLen,
			valLen: valLen,
			crc:    crc,
		}
		off += recHeader + int64(keyLen+valLen)
		good = off
	}
	if good < size {
		if !active {
			// Sealed segments are never written again; leave the bad tail in
			// place (unindexed) rather than rewrite history.
			return &segment{id: id, f: f, size: size}, nil
		}
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("diskcache: %w", err)
		}
	}
	return &segment{id: id, f: f, size: good}, nil
}

// TierName implements the optional naming interface traced tier probes use.
func (s *Store) TierName() string { return "disk" }

// Get implements sta.TierStore: a read-through probe. Any failure — missing
// key, short read, CRC mismatch, undecodable or invalid entry — is a miss.
func (s *Store) Get(key string) (sta.TierEntry, bool) {
	if s == nil {
		return sta.TierEntry{}, false
	}
	s.mu.RLock()
	ie, ok := s.index[key]
	var f *os.File
	if ok {
		for _, seg := range s.segs {
			if seg.id == ie.seg {
				f = seg.f
				break
			}
		}
	}
	if !ok || f == nil {
		s.mu.RUnlock()
		s.statMisses.add(1, s.misses)
		return sta.TierEntry{}, false
	}
	// Re-read key+value and re-verify the CRC on every hit: a flipped bit
	// anywhere in the record — key or value — downgrades to a miss instead
	// of an aliased or corrupt timing. The read happens under the RLock so
	// GC cannot close the file mid-read; it's a positioned ReadAt, so
	// concurrent readers never contend on a file offset.
	body := make([]byte, 8+ie.keyLen+ie.valLen)
	binary.LittleEndian.PutUint32(body[0:4], uint32(ie.keyLen))
	binary.LittleEndian.PutUint32(body[4:8], uint32(ie.valLen))
	n, _ := f.ReadAt(body[8:], ie.off-int64(ie.keyLen))
	s.mu.RUnlock()
	if n != ie.keyLen+ie.valLen ||
		crc32.Checksum(body, crcTable) != ie.crc ||
		string(body[8:8+ie.keyLen]) != key {
		s.statCorrupt.add(1, s.corrupt)
		s.statMisses.add(1, s.misses)
		return sta.TierEntry{}, false
	}
	e, err := decodeEntry(body[8+ie.keyLen:])
	if err != nil || !e.Valid() {
		s.statCorrupt.add(1, s.corrupt)
		s.statMisses.add(1, s.misses)
		return sta.TierEntry{}, false
	}
	s.statHits.add(1, s.hits)
	return e, true
}

// Put implements sta.TierStore: write-behind, lossy under pressure. The
// value is encoded on the caller's goroutine (cheap, allocation-bounded) so
// a dropped put costs no disk work at all.
func (s *Store) Put(key string, e sta.TierEntry) {
	if s == nil {
		return
	}
	select {
	case s.queue <- putReq{key: key, val: encodeEntry(e)}:
	case <-s.done:
		s.statDropped.add(1, s.dropped)
	default:
		s.statDropped.add(1, s.dropped)
	}
}

// writer is the single write-behind goroutine: it drains the queue,
// appending records and running GC at segment boundaries, until Close.
func (s *Store) writer() {
	defer close(s.writerDone)
	handle := func(req putReq) {
		if req.ack != nil {
			close(req.ack)
			return
		}
		s.append(req)
	}
	for {
		select {
		case req := <-s.queue:
			handle(req)
		case <-s.done:
			// Drain what's already queued, then exit.
			for {
				select {
				case req := <-s.queue:
					handle(req)
				default:
					return
				}
			}
		}
	}
}

// append writes one record to the active segment, sealing and collecting
// when size thresholds trip. Write errors (disk full, EIO) drop the record:
// the store is a cache, and the next Get simply misses.
func (s *Store) append(req putReq) {
	rec := encodeRecord(req.key, req.val)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.segs) == 0 {
		return
	}
	active := s.segs[len(s.segs)-1]
	if active.size+int64(len(rec)) > s.opts.SegmentBytes && active.size > int64(len(segMagic)) {
		seg, err := s.newSegment(active.id + 1)
		if err != nil {
			s.statDropped.add(1, s.dropped)
			return
		}
		s.segs = append(s.segs, seg)
		active = seg
		s.gcLocked()
	}
	if _, err := active.f.WriteAt(rec, active.size); err != nil {
		s.statDropped.add(1, s.dropped)
		return
	}
	if s.opts.Sync {
		active.f.Sync()
	}
	s.index[req.key] = indexEntry{
		seg:    active.id,
		off:    active.size + recHeader + int64(len(req.key)),
		keyLen: len(req.key),
		valLen: len(req.val),
		crc:    binary.LittleEndian.Uint32(rec[0:4]),
	}
	active.size += int64(len(rec))
	s.statPuts.add(1, s.puts)
	s.bytes.Set(s.totalBytesLocked())
}

// gcLocked drops oldest sealed segments until the total fits MaxBytes.
// Requires s.mu held for writing. Index entries pointing into a dropped
// segment are removed — later-segment duplicates of the same key survive
// because the index always points at the LATEST write.
func (s *Store) gcLocked() {
	if s.opts.MaxBytes < 0 {
		return
	}
	for len(s.segs) > 1 && s.totalBytesLocked() > s.opts.MaxBytes {
		victim := s.segs[0]
		s.segs = s.segs[1:]
		removed := int64(0)
		for k, ie := range s.index {
			if ie.seg == victim.id {
				delete(s.index, k)
				removed++
			}
		}
		victim.f.Close()
		os.Remove(s.segPath(victim.id))
		s.statEvict.add(removed, s.evictions)
	}
	s.bytes.Set(s.totalBytesLocked())
}

func (s *Store) totalBytesLocked() int64 {
	var t int64
	for _, seg := range s.segs {
		t += seg.size
	}
	return t
}

func (s *Store) totalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.totalBytesLocked()
}

// Flush blocks until every put enqueued BEFORE the call is durably appended
// (or dropped). Tests and graceful shutdown use it; the engine never waits.
func (s *Store) Flush() {
	if s == nil {
		return
	}
	// The queue is FIFO and drained by one goroutine: once our barrier is
	// acknowledged, everything enqueued before it has been appended.
	ack := make(chan struct{})
	select {
	case s.queue <- putReq{ack: ack}:
	case <-s.done:
		return
	}
	select {
	case <-ack:
	case <-s.writerDone:
	}
}

// Close drains the write-behind queue, fsyncs and closes every segment.
// The store is unusable afterwards (Gets miss, Puts drop).
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.closeO.Do(func() { close(s.done) })
	<-s.writerDone
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil && first == nil {
			first = err
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	s.index = map[string]indexEntry{}
	return first
}

func (s *Store) closeSegments() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
	s.segs = nil
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Hits:      s.statHits.value(),
		Misses:    s.statMisses.value(),
		Puts:      s.statPuts.value(),
		Dropped:   s.statDropped.value(),
		Corrupt:   s.statCorrupt.value(),
		Evictions: s.statEvict.value(),
		Entries:   len(s.index),
		Segments:  len(s.segs),
		Bytes:     s.totalBytesLocked(),
	}
}

// encodeRecord frames one key/value pair:
//
//	[u32 CRC][u32 keyLen][u32 valLen][key][val]
//
// The CRC (Castagnoli) covers keyLen|valLen|key|val — everything after
// itself — so a bit flip anywhere in the record, lengths included, fails
// verification.
func encodeRecord(key string, val []byte) []byte {
	rec := make([]byte, recHeader+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(val)))
	copy(rec[12:], key)
	copy(rec[12+len(key):], val)
	binary.LittleEndian.PutUint32(rec[0:4], crc32.Checksum(rec[4:], crcTable))
	return rec
}

// encodeEntry serializes a TierEntry:
//
//	u8 version, u8 flags, u8 tier, u8 pad,
//	u32 panics, u32 reduced,
//	u64 delayBits, u64 slewBits,
//	u32 nrIters, u32 regions, u32 denseFallbacks, u32 capResolves,
//	u16 errLen, errMsg
//
// Floats travel as raw IEEE-754 bits (math.Float64bits): the warm-disk path
// must reproduce in-memory results BIT for bit, and a decimal round-trip
// could not promise that.
func encodeEntry(e sta.TierEntry) []byte {
	errMsg := e.ErrMsg
	if len(errMsg) > math.MaxUint16 {
		errMsg = errMsg[:math.MaxUint16]
	}
	b := make([]byte, 46+len(errMsg))
	b[0] = entryVer
	var flags byte
	if e.OK {
		flags |= flagOK
	}
	if e.SlewFellBack {
		flags |= flagFell
	}
	b[1] = flags
	b[2] = e.Tier
	binary.LittleEndian.PutUint32(b[4:8], uint32(e.Panics))
	binary.LittleEndian.PutUint32(b[8:12], uint32(e.Reduced))
	binary.LittleEndian.PutUint64(b[12:20], math.Float64bits(e.Delay))
	binary.LittleEndian.PutUint64(b[20:28], math.Float64bits(e.Slew))
	binary.LittleEndian.PutUint32(b[28:32], uint32(e.NRIters))
	binary.LittleEndian.PutUint32(b[32:36], uint32(e.Regions))
	binary.LittleEndian.PutUint32(b[36:40], uint32(e.DenseFall))
	binary.LittleEndian.PutUint32(b[40:44], uint32(e.CapResolves))
	binary.LittleEndian.PutUint16(b[44:46], uint16(len(errMsg)))
	copy(b[46:], errMsg)
	return b
}

func decodeEntry(b []byte) (sta.TierEntry, error) {
	if len(b) < 46 {
		return sta.TierEntry{}, errors.New("diskcache: short entry")
	}
	if b[0] != entryVer {
		return sta.TierEntry{}, fmt.Errorf("diskcache: unknown entry version %d", b[0])
	}
	errLen := int(binary.LittleEndian.Uint16(b[44:46]))
	if len(b) != 46+errLen {
		return sta.TierEntry{}, errors.New("diskcache: entry length mismatch")
	}
	e := sta.TierEntry{
		OK:           b[1]&flagOK != 0,
		SlewFellBack: b[1]&flagFell != 0,
		Tier:         b[2],
		Panics:       int32(binary.LittleEndian.Uint32(b[4:8])),
		Reduced:      int32(binary.LittleEndian.Uint32(b[8:12])),
		Delay:        math.Float64frombits(binary.LittleEndian.Uint64(b[12:20])),
		Slew:         math.Float64frombits(binary.LittleEndian.Uint64(b[20:28])),
		NRIters:      int32(binary.LittleEndian.Uint32(b[28:32])),
		Regions:      int32(binary.LittleEndian.Uint32(b[32:36])),
		DenseFall:    int32(binary.LittleEndian.Uint32(b[36:40])),
		CapResolves:  int32(binary.LittleEndian.Uint32(b[40:44])),
		ErrMsg:       string(b[46:]),
	}
	return e, nil
}
