package sta

import (
	"errors"
	"math"
	"strings"
	"testing"

	"qwm/internal/circuit"
)

// analyzeExpectInvalid runs an Analyze and asserts the typed pre-flight
// rejection: the error must wrap ErrInvalidNetlist and mention `frag`.
func analyzeExpectInvalid(t *testing.T, nl *circuit.Netlist, frag string) {
	t.Helper()
	_, err := New(tech, lib).Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
	if err == nil {
		t.Fatalf("malformed netlist (%s) accepted", frag)
	}
	if !errors.Is(err, ErrInvalidNetlist) {
		t.Fatalf("error %v does not wrap ErrInvalidNetlist", err)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Errorf("error %q does not mention %q", err, frag)
	}
}

func TestPreflightNilNetlist(t *testing.T) {
	_, err := New(tech, lib).AnalyzeContext(nil, Request{Outputs: []string{"out"}})
	if !errors.Is(err, ErrInvalidNetlist) {
		t.Fatalf("nil netlist error = %v, want ErrInvalidNetlist", err)
	}
}

func TestPreflightDuplicateNames(t *testing.T) {
	nl := inverterChain(1, 1e-6, 2e-6)
	// A resistor reusing a transistor's name across device kinds.
	nl.AddResistor("mn0", "out", "x", 100)
	analyzeExpectInvalid(t, nl, `duplicate device name "mn0"`)
}

func TestPreflightNonFiniteParameters(t *testing.T) {
	cases := []struct {
		name string
		mut  func(nl *circuit.Netlist)
	}{
		{"NaN transistor width", func(nl *circuit.Netlist) {
			nl.AddTransistor(&circuit.Transistor{Name: "mx", Kind: circuit.KindNMOS,
				Drain: "out", Gate: "in0", Source: "0", Body: "0", W: math.NaN(), L: tech.LMin})
		}},
		{"Inf resistance", func(nl *circuit.Netlist) {
			nl.AddResistor("rx", "out", "n1", math.Inf(1))
		}},
		{"NaN capacitance", func(nl *circuit.Netlist) {
			nl.AddCapacitor("cx", "out", "0", math.NaN())
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			nl := inverterChain(2, 1e-6, 2e-6)
			c.mut(nl)
			analyzeExpectInvalid(t, nl, "non-finite")
		})
	}
}

func TestPreflightFloatingCapTerminal(t *testing.T) {
	nl := inverterChain(1, 1e-6, 2e-6)
	// "ghost" is touched by nothing but this capacitor: load on a node that
	// can never move, i.e. a typo in the node name.
	nl.AddCapacitor("cx", "ghost", "0", 1e-15)
	analyzeExpectInvalid(t, nl, "floating")

	// Two caps in series between dead nets are just as floating — the touch
	// count must not treat a sibling capacitor as a driver.
	nl2 := inverterChain(1, 1e-6, 2e-6)
	nl2.AddCapacitor("ca", "ghost1", "ghost2", 1e-15)
	nl2.AddCapacitor("cb", "ghost2", "0", 1e-15)
	analyzeExpectInvalid(t, nl2, "floating")
}

func TestPreflightRailCapsAllowed(t *testing.T) {
	// Decoupling caps to the rails are legitimate and must pass.
	nl := inverterChain(1, 1e-6, 2e-6)
	nl.AddCapacitor("cdec", "vdd", "0", 1e-12)
	if _, err := New(tech, lib).Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"}); err != nil {
		t.Fatalf("rail decoupling cap rejected: %v", err)
	}
}

func TestCombinationalLoopIsInvalidNetlist(t *testing.T) {
	// Two cross-coupled inverters: each stage's input is the other's output,
	// so levelization finds no valid order. The failure must carry the same
	// typed sentinel as the rest of the pre-flight family.
	nl := &circuit.Netlist{}
	mk := func(i int, in, out string) {
		nl.AddTransistor(&circuit.Transistor{Name: "mn" + string(rune('0'+i)), Kind: circuit.KindNMOS,
			Drain: out, Gate: in, Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
		nl.AddTransistor(&circuit.Transistor{Name: "mp" + string(rune('0'+i)), Kind: circuit.KindPMOS,
			Drain: out, Gate: in, Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
	}
	mk(0, "a", "b")
	mk(1, "b", "a")
	nl.AddCapacitor("cl", "b", "0", 5e-15)
	_, err := New(tech, lib).Analyze(nl, nil, []string{"b"})
	if err == nil {
		t.Fatal("combinational loop accepted")
	}
	if !errors.Is(err, ErrInvalidNetlist) {
		t.Fatalf("loop error %v does not wrap ErrInvalidNetlist", err)
	}
}

func TestPreflightAcceptsHealthyNetlist(t *testing.T) {
	if err := preflight(inverterChain(4, 1e-6, 2e-6)); err != nil {
		t.Fatalf("healthy netlist rejected: %v", err)
	}
}
