package sta

import (
	"reflect"
	"testing"
)

func TestNewTierChainUnwraps(t *testing.T) {
	if got := NewTierChain(); got != nil {
		t.Errorf("empty chain = %v, want nil", got)
	}
	if got := NewTierChain(nil, nil); got != nil {
		t.Errorf("all-nil chain = %v, want nil", got)
	}
	single := newMapTierStore()
	if got := NewTierChain(nil, single, nil); got != TierStore(single) {
		t.Errorf("one-store chain = %v, want the store unwrapped", got)
	}
	chain := NewTierChain(newMapTierStore(), newMapTierStore())
	tc, ok := chain.(*TierChain)
	if !ok || len(tc.Stores()) != 2 {
		t.Fatalf("two-store chain = %T %v, want *TierChain of 2", chain, chain)
	}
}

func TestTierChainPromotionAndWriteBackAll(t *testing.T) {
	mem := newMapTierStore()
	remote := newMapTierStore()
	disk := newMapTierStore()
	chain := NewTierChain(mem, remote, disk)

	e := TierEntry{Delay: 1e-10, Slew: 2e-11, OK: true, Tier: uint8(TierQWM)}
	disk.Put("k", e)

	got, ok := chain.Get("k")
	if !ok || got != e {
		t.Fatalf("chain.Get = %+v, %v; want the disk entry", got, ok)
	}
	// Promotion: the hit must have been written back into BOTH earlier tiers.
	if me, ok := mem.m["k"]; !ok || me != e {
		t.Errorf("memory tier not promoted: %+v, %v", me, ok)
	}
	if re, ok := remote.m["k"]; !ok || re != e {
		t.Errorf("remote tier not promoted: %+v, %v", re, ok)
	}
	// The next Get stops at the first tier: no further disk reads.
	diskGets := disk.gets
	if _, ok := chain.Get("k"); !ok {
		t.Fatal("promoted key missed")
	}
	if disk.gets != diskGets {
		t.Errorf("promoted Get still reached the last tier (%d extra reads)", disk.gets-diskGets)
	}

	// Write-back-all: a fresh Put lands in every tier.
	e2 := TierEntry{Delay: 5e-10, OK: true, Tier: uint8(TierQWM)}
	chain.Put("k2", e2)
	for name, s := range map[string]*mapTierStore{"mem": mem, "remote": remote, "disk": disk} {
		if se, ok := s.m["k2"]; !ok || se != e2 {
			t.Errorf("%s tier missing written-back entry: %+v, %v", name, se, ok)
		}
	}

	// An invalid entry in an early tier must not shadow a valid later one.
	bad := e
	bad.Tier = uint8(NumTiers) + 1
	mem.Put("k3", bad)
	disk.Put("k3", e)
	if got, ok := chain.Get("k3"); !ok || got != e {
		t.Errorf("invalid early entry shadowed the valid one: %+v, %v", got, ok)
	}
}

func TestMemoryTierFIFOEviction(t *testing.T) {
	mt := NewMemoryTier(2)
	e := TierEntry{OK: true, Delay: 1, Tier: uint8(TierQWM)}
	mt.Put("a", e)
	mt.Put("b", e)
	// Overwrite must not create a duplicate eviction slot.
	mt.Put("a", e)
	mt.Put("c", e) // evicts "a" (oldest insertion)
	if _, ok := mt.Get("a"); ok {
		t.Error("oldest key survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := mt.Get(k); !ok {
			t.Errorf("key %q evicted prematurely", k)
		}
	}
	s := mt.Stats()
	if s.Entries != 2 || s.Evictions != 1 || s.Puts != 4 {
		t.Errorf("stats = %+v, want 2 entries, 1 eviction, 4 puts", s)
	}
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss", s)
	}
}

// TestTierChainWarmAnalyzeBitIdentical is the chain analogue of
// TestTierStoreWarmRunIsBitIdentical: an analyzer hydrated through a
// memory→backing chain reports StagesEvaluated = 0 and bit-identical results.
func TestTierChainWarmAnalyzeBitIdentical(t *testing.T) {
	nl, primary, outs := decoderFixture(t)

	backing := newMapTierStore()
	cold := New(tech, lib, Config{Workers: 1, Tier: NewTierChain(NewMemoryTier(0), backing)})
	ref, err := cold.AnalyzeContext(nil, Request{Netlist: nl, Primary: primary, Outputs: outs})
	if err != nil {
		t.Fatal(err)
	}
	if backing.puts != ref.StagesEvaluated {
		t.Fatalf("cold chain run: %d evals, %d backing puts — write-back-all must reach the last tier",
			ref.StagesEvaluated, backing.puts)
	}

	warm := New(tech, lib, Config{Workers: 4, Tier: NewTierChain(NewMemoryTier(0), backing)})
	res, err := warm.AnalyzeContext(nil, Request{Netlist: nl, Primary: primary, Outputs: outs})
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesEvaluated != 0 {
		t.Errorf("warm chain run evaluated %d stages, want 0", res.StagesEvaluated)
	}
	if !reflect.DeepEqual(ref.Arrivals, res.Arrivals) || !reflect.DeepEqual(ref.Diagnostics, res.Diagnostics) {
		t.Error("chain-warm run diverged from cold reference")
	}
}
