package sta

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"qwm/internal/reduce"
)

func TestConfigSignature(t *testing.T) {
	base := Config{}
	if base.Signature() != (Config{Workers: 8}).Signature() {
		t.Error("Workers must not affect the signature (determinism at any width)")
	}
	distinct := map[string]Config{
		"base":   base,
		"reduce": {Reduction: reduce.Config{Enabled: true, TolPct: 2, MinRun: 3}},
		"memo":   {Memo: MemoConfig{Enabled: true}},
		"interp": {Memo: MemoConfig{Enabled: true, Interp: true}},
		"budget": {Budget: EvalBudget{NRIters: 100}},
		"wall":   {Budget: EvalBudget{Wall: time.Millisecond}},
	}
	seen := map[string]string{}
	for label, c := range distinct {
		sig := c.Signature()
		if prev, dup := seen[sig]; dup {
			t.Errorf("configs %q and %q collide on signature %q", label, prev, sig)
		}
		seen[sig] = label
	}
}

func TestNewWithConfigRoundTrips(t *testing.T) {
	cfg := Config{
		Workers:   3,
		Reduction: reduce.Config{TolPct: 1, MinRun: 4},
		Memo:      MemoConfig{Enabled: true},
		Budget:    EvalBudget{NRIters: 1000},
	}
	a := New(tech, lib, cfg)
	got := a.Config()
	if !reflect.DeepEqual(got, cfg) {
		t.Fatalf("Config() = %+v, want %+v", got, cfg)
	}
	if a.Signature() != cfg.Signature() {
		t.Fatalf("analyzer signature %q != config signature %q", a.Signature(), cfg.Signature())
	}
}

// mapTierStore is the reference TierStore: a plain locked map. The disk
// implementation lives in sta/diskcache; this in-memory one pins down the
// engine-side contract independent of any file format.
type mapTierStore struct {
	mu   sync.Mutex
	m    map[string]TierEntry
	gets int
	hits int
	puts int
}

func newMapTierStore() *mapTierStore { return &mapTierStore{m: map[string]TierEntry{}} }

func (s *mapTierStore) Get(key string) (TierEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	e, ok := s.m[key]
	if ok {
		s.hits++
	}
	return e, ok
}

func (s *mapTierStore) Put(key string, e TierEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.m[key] = e
}

// TestTierStoreWarmRunIsBitIdentical is the engine half of the persistent
// cache guarantee: an analyzer hydrated purely from a tier store reports the
// same arrivals, diagnostics and StagesEvaluated = 0 as a warm in-memory
// analyzer.
func TestTierStoreWarmRunIsBitIdentical(t *testing.T) {
	nl, primary, outs := decoderFixture(t)

	store := newMapTierStore()
	cold := New(tech, lib, Config{Workers: 1, Tier: store})
	ref, err := cold.AnalyzeContext(nil, Request{Netlist: nl, Primary: primary, Outputs: outs})
	if err != nil {
		t.Fatal(err)
	}
	if ref.StagesEvaluated == 0 || store.puts != ref.StagesEvaluated {
		t.Fatalf("cold run: %d evals, %d puts — every evaluation must be written back",
			ref.StagesEvaluated, store.puts)
	}

	// Same Signature, fresh memory cache, same store: everything must come
	// from the tier with zero evaluations.
	warm := New(tech, lib, Config{Workers: 4, Tier: store})
	res, err := warm.AnalyzeContext(nil, Request{Netlist: nl, Primary: primary, Outputs: outs})
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesEvaluated != 0 {
		t.Errorf("warm-tier run evaluated %d stages, want 0", res.StagesEvaluated)
	}
	if cs := warm.CacheStats(); cs.Evaluations != 0 {
		t.Errorf("warm-tier analyzer performed %d evaluations", cs.Evaluations)
	}
	if !reflect.DeepEqual(ref.Arrivals, res.Arrivals) {
		t.Errorf("tier-warm arrivals diverged\nref: %v\ngot: %v", ref.Arrivals, res.Arrivals)
	}
	if !reflect.DeepEqual(ref.CriticalPath, res.CriticalPath) ||
		ref.WorstArrival != res.WorstArrival || ref.WorstOutput != res.WorstOutput {
		t.Errorf("tier-warm summary diverged: %v/%v vs %v/%v",
			ref.WorstArrival, ref.WorstOutput, res.WorstArrival, res.WorstOutput)
	}
	if !reflect.DeepEqual(ref.Diagnostics, res.Diagnostics) {
		t.Errorf("tier-warm diagnostics diverged\nref: %+v\ngot: %+v", ref.Diagnostics, res.Diagnostics)
	}

	// Second run on the SAME warm analyzer: memory hits now, no tier reads.
	getsBefore := store.gets
	res2, err := warm.AnalyzeContext(nil, Request{Netlist: nl, Primary: primary, Outputs: outs})
	if err != nil {
		t.Fatal(err)
	}
	if store.gets != getsBefore {
		t.Errorf("memory-warm run consulted the tier %d times", store.gets-getsBefore)
	}
	if !reflect.DeepEqual(res.Arrivals, res2.Arrivals) {
		t.Error("memory-warm rerun diverged from tier-warm run")
	}
}

// TestTierStoreInvalidEntryIsMiss: a store handing back a nonsensical entry
// (wrong engine version, corrupt tier byte) must be treated as a miss.
func TestTierStoreInvalidEntryIsMiss(t *testing.T) {
	nl, primary, outs := decoderFixture(t)

	store := newMapTierStore()
	cold := New(tech, lib, Config{Workers: 1, Tier: store})
	ref, err := cold.AnalyzeContext(nil, Request{Netlist: nl, Primary: primary, Outputs: outs})
	if err != nil {
		t.Fatal(err)
	}
	for k, e := range store.m {
		e.Tier = uint8(NumTiers) + 3
		store.m[k] = e
	}
	warm := New(tech, lib, Config{Workers: 1, Tier: store})
	res, err := warm.AnalyzeContext(nil, Request{Netlist: nl, Primary: primary, Outputs: outs})
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesEvaluated != ref.StagesEvaluated {
		t.Errorf("invalid entries: evaluated %d, want a full re-evaluation of %d",
			res.StagesEvaluated, ref.StagesEvaluated)
	}
	if !reflect.DeepEqual(ref.Arrivals, res.Arrivals) {
		t.Error("re-evaluation after invalid entries diverged from reference")
	}
}

func TestTierEntryTimingRoundTrip(t *testing.T) {
	in := dirTiming{
		delay: 1.25e-10, slew: 3e-11, ok: true, slewFellBack: true,
		errMsg: "x", tier: TierSpice, panics: 2, reduced: 5,
	}
	in.stats.NRIters = 42
	in.stats.Regions = 7
	in.stats.DenseFallbacks = 1
	in.stats.CapResolves = 3
	out := tierEntryOf(in).timing()
	if out != in {
		t.Fatalf("round trip changed the timing:\nin:  %+v\nout: %+v", in, out)
	}
}
