package sta

import (
	"fmt"
	"math"

	"qwm/internal/circuit"
)

// preflight is the STA engine's input gate: every check a malformed netlist
// can fail before any solver work starts, each wrapped in ErrInvalidNetlist
// so callers classify the whole family with one errors.Is. It layers on top
// of circuit.Netlist.Validate (device-local sanity) the cross-device checks
// only an analysis-level view can make: duplicate device names, non-finite
// parameters, and floating capacitor terminals. Combinational cycles are
// detected later by levelization and wrapped with the same sentinel.
func preflight(n *circuit.Netlist) error {
	if n == nil {
		return fmt.Errorf("%w: nil netlist", ErrInvalidNetlist)
	}
	if err := n.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidNetlist, err)
	}

	// Duplicate device names (across all device kinds): a name collision
	// makes reports and incremental edits ambiguous. Unnamed devices are
	// skipped — the builder APIs allow them and they collide vacuously.
	seen := map[string]string{}
	dup := func(name, kind string) error {
		if name == "" {
			return nil
		}
		if prev, ok := seen[name]; ok {
			return fmt.Errorf("%w: duplicate device name %q (%s and %s)", ErrInvalidNetlist, name, prev, kind)
		}
		seen[name] = kind
		return nil
	}
	finite := func(name string, vals ...float64) error {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: device %q has a non-finite parameter %v", ErrInvalidNetlist, name, v)
			}
		}
		return nil
	}

	// touch counts how many device terminals (transistor channel/gate,
	// resistor ends, source ends) connect to each node.
	touch := map[string]int{}
	bump := func(nodes ...string) {
		for _, nd := range nodes {
			touch[circuit.CanonName(nd)]++
		}
	}
	for _, t := range n.Transistors {
		if err := dup(t.Name, "transistor"); err != nil {
			return err
		}
		if err := finite(t.Name, t.W, t.L); err != nil {
			return err
		}
		bump(t.Drain, t.Gate, t.Source)
	}
	for _, r := range n.Resistors {
		if err := dup(r.Name, "resistor"); err != nil {
			return err
		}
		if err := finite(r.Name, r.R); err != nil {
			return err
		}
		bump(r.A, r.B)
	}
	for _, s := range n.VSources {
		if err := dup(s.Name, "source"); err != nil {
			return err
		}
		bump(s.A, s.B)
	}
	for _, c := range n.Capacitors {
		if err := dup(c.Name, "capacitor"); err != nil {
			return err
		}
		if err := finite(c.Name, c.C); err != nil {
			return err
		}
	}

	// Dangling capacitor terminals: a cap wired to a net no transistor,
	// resistor or source touches models load on a node that cannot move —
	// almost always a typo in the node name. Rails are exempt (they are
	// implicit nets). The count deliberately excludes capacitor terminals
	// themselves: two caps in series between otherwise-floating nets are
	// just as dead as one.
	for _, c := range n.Capacitors {
		for _, nd := range [2]string{c.A, c.B} {
			nd = circuit.CanonName(nd)
			if nd == circuit.GroundNode || nd == circuit.SupplyNode {
				continue
			}
			if touch[nd] == 0 {
				return fmt.Errorf("%w: capacitor %q terminal %q is floating (no device drives the node)", ErrInvalidNetlist, c.Name, nd)
			}
		}
	}
	return nil
}
