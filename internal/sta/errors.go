package sta

import (
	"errors"

	"qwm/internal/qwm"
)

// The STA-level error taxonomy. The solver sentinels are re-exported from
// internal/qwm so callers holding only an sta import can classify failures
// with errors.Is; the two sta-specific sentinels cover the boundaries the
// solver never sees (worker panics, malformed inputs).
var (
	// ErrNoConvergence marks a numerical solver failure (the QWM Newton
	// ladder and its bisection fallback both gave up). Inside an Analyze it
	// triggers tier escalation instead of failing the run.
	ErrNoConvergence = qwm.ErrNoConvergence
	// ErrBudgetExceeded marks an evaluation aborted by Request.Budget (or
	// an injected budget-exhaustion fault), not by a numerical failure.
	ErrBudgetExceeded = qwm.ErrBudgetExceeded
	// ErrPanicRecovered wraps a panic raised inside a stage-direction
	// evaluation and converted to an error at the tier boundary. The
	// panicking tier is skipped; the ladder continues with the next tier,
	// so one broken evaluation cannot take down a whole Analyze or strand
	// a single-flight cache entry.
	ErrPanicRecovered = errors.New("sta: panic recovered during evaluation")
	// ErrInvalidNetlist wraps every pre-flight validation failure
	// (malformed devices, duplicate names, non-finite values, floating
	// capacitor terminals, combinational cycles). The analysis is rejected
	// before any solver work; use errors.Is to detect this class.
	ErrInvalidNetlist = errors.New("sta: invalid netlist")
)
