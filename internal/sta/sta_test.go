package sta

import (
	"fmt"
	"math"
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
)

var (
	tech = mos.CMOSP35()
	lib  = devmodel.NewLibrary(tech)
)

// inverterChain builds n cascaded inverters in0 -> n1 -> ... -> out.
func inverterChain(n int, wn, wp float64) *circuit.Netlist {
	nl := &circuit.Netlist{}
	prev := "in0"
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("n%d", i+1)
		if i == n-1 {
			out = "out"
		}
		nl.AddTransistor(&circuit.Transistor{
			Name: fmt.Sprintf("mn%d", i), Kind: circuit.KindNMOS,
			Drain: out, Gate: prev, Source: "0", Body: "0", W: wn, L: tech.LMin,
		})
		nl.AddTransistor(&circuit.Transistor{
			Name: fmt.Sprintf("mp%d", i), Kind: circuit.KindPMOS,
			Drain: out, Gate: prev, Source: "vdd", Body: "vdd", W: wp, L: tech.LMin,
		})
		prev = out
	}
	nl.AddCapacitor("cl", "out", "0", 20e-15)
	return nl
}

func TestAnalyzeInverterChain(t *testing.T) {
	a := New(tech, lib)
	nl := inverterChain(4, 1e-6, 2e-6)
	res, err := a.Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	ar := res.Arrivals["out"]
	if ar.Rise <= 0 || ar.Fall <= 0 {
		t.Fatalf("output arrivals not positive: %+v", ar)
	}
	// Four stages of tens of ps each: total in the 100 ps .. 1.5 ns band.
	if res.WorstArrival < 50e-12 || res.WorstArrival > 1.5e-9 {
		t.Errorf("worst arrival %g s implausible", res.WorstArrival)
	}
	// Arrivals must grow monotonically along the chain.
	prevWorst := 0.0
	for _, net := range []string{"n1", "n2", "n3", "out"} {
		w := math.Max(res.Arrivals[net].Rise, res.Arrivals[net].Fall)
		if w <= prevWorst {
			t.Errorf("arrival at %s (%g) not after predecessor (%g)", net, w, prevWorst)
		}
		prevWorst = w
	}
	// Critical path runs from out back toward the input.
	if len(res.CriticalPath) < 4 || res.CriticalPath[0] != "out" {
		t.Errorf("critical path = %v", res.CriticalPath)
	}
}

func TestAnalyzePrimaryArrivalShifts(t *testing.T) {
	a := New(tech, lib)
	nl := inverterChain(2, 1e-6, 2e-6)
	base, err := a.Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := a.Analyze(nl, map[string]Arrival{"in0": {Rise: 100e-12, Fall: 100e-12}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	d := shifted.WorstArrival - base.WorstArrival
	if math.Abs(d-100e-12) > 1e-15 {
		t.Errorf("input shift should shift the output arrival by exactly 100 ps, got %g", d)
	}
	// Second run reused every cached stage delay.
	if shifted.StagesEvaluated != 0 {
		t.Errorf("re-analysis evaluated %d stages, want 0 (cache)", shifted.StagesEvaluated)
	}
}

func TestIncrementalReanalysis(t *testing.T) {
	a := New(tech, lib)
	nl := inverterChain(5, 1e-6, 2e-6)
	first, err := a.Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	// Five stages × two directions, every direction a distinct cache key.
	if first.StagesEvaluated != 10 {
		t.Fatalf("first analysis evaluated %d stage directions, want 10", first.StagesEvaluated)
	}
	// Widen one middle inverter: the edited stage recomputes (its content
	// key changed), and so does the stage driving the widened gate (its
	// fanout-load digest changed — before the load entered the cache key
	// that stage silently reused its stale, lighter-load delay). Downstream
	// stages re-evaluate only if their input-slew bucket shifted — never the
	// whole chain.
	nl.Transistors[4].W *= 2 // mn2
	second, err := a.Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	if second.StagesEvaluated < 4 || second.StagesEvaluated > 8 {
		t.Errorf("incremental analysis evaluated %d stage directions, want 4–8", second.StagesEvaluated)
	}
	// The incremental result must agree with a cold, uncached analysis of
	// the edited netlist to within the 5 ps slew-bucket quantization. (The
	// old load-blind cache asserted the arrival *decreased* — an artifact of
	// reusing the stale delay of the widened gate's driver; in truth the
	// extra gate load outweighs the drive improvement here.)
	cold, err := New(tech, lib).Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	if cold.WorstArrival <= first.WorstArrival {
		t.Errorf("widening mn2 should increase the true worst arrival: cold %g vs pre-edit %g",
			cold.WorstArrival, first.WorstArrival)
	}
	if d := math.Abs(second.WorstArrival-cold.WorstArrival) / cold.WorstArrival; d > 0.02 {
		t.Errorf("incremental worst arrival %g deviates %.2f%% from cold %g (want < 2%%)",
			second.WorstArrival, 100*d, cold.WorstArrival)
	}
}

func TestAnalyzeNANDIntoInverter(t *testing.T) {
	nl := &circuit.Netlist{}
	// NAND2 (a, b) -> x; inverter x -> out.
	nl.AddTransistor(&circuit.Transistor{Name: "mn1", Kind: circuit.KindNMOS, Drain: "t1", Gate: "a", Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
	nl.AddTransistor(&circuit.Transistor{Name: "mn2", Kind: circuit.KindNMOS, Drain: "x", Gate: "b", Source: "t1", Body: "0", W: 1e-6, L: tech.LMin})
	nl.AddTransistor(&circuit.Transistor{Name: "mp1", Kind: circuit.KindPMOS, Drain: "x", Gate: "a", Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
	nl.AddTransistor(&circuit.Transistor{Name: "mp2", Kind: circuit.KindPMOS, Drain: "x", Gate: "b", Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
	nl.AddTransistor(&circuit.Transistor{Name: "mn3", Kind: circuit.KindNMOS, Drain: "out", Gate: "x", Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
	nl.AddTransistor(&circuit.Transistor{Name: "mp3", Kind: circuit.KindPMOS, Drain: "out", Gate: "x", Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
	nl.AddCapacitor("cl", "out", "0", 10e-15)

	a := New(tech, lib)
	// Input b arrives late: it must dominate the worst path.
	res, err := a.Analyze(nl, map[string]Arrival{
		"a": {},
		"b": {Rise: 200e-12, Fall: 200e-12},
	}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstArrival <= 200e-12 {
		t.Errorf("worst arrival %g should exceed the late input's 200 ps", res.WorstArrival)
	}
	// The x net must arrive after b.
	if res.Arrivals["x"].Fall <= 200e-12 && res.Arrivals["x"].Rise <= 200e-12 {
		t.Errorf("x arrivals %+v ignore the late input", res.Arrivals["x"])
	}
}

func TestAnalyzeCombinationalLoopRejected(t *testing.T) {
	nl := &circuit.Netlist{}
	// Two inverters in a ring: a -> b -> a.
	nl.AddTransistor(&circuit.Transistor{Name: "mn1", Kind: circuit.KindNMOS, Drain: "b", Gate: "a", Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
	nl.AddTransistor(&circuit.Transistor{Name: "mp1", Kind: circuit.KindPMOS, Drain: "b", Gate: "a", Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
	nl.AddTransistor(&circuit.Transistor{Name: "mn2", Kind: circuit.KindNMOS, Drain: "a", Gate: "b", Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
	nl.AddTransistor(&circuit.Transistor{Name: "mp2", Kind: circuit.KindPMOS, Drain: "a", Gate: "b", Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
	a := New(tech, lib)
	if _, err := a.Analyze(nl, map[string]Arrival{}, []string{"a"}); err == nil {
		t.Fatal("combinational loop accepted")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	a := New(tech, lib)
	if _, err := a.Analyze(&circuit.Netlist{}, nil, []string{"out"}); err == nil {
		t.Error("empty netlist accepted")
	}
	nl := inverterChain(1, 1e-6, 2e-6)
	if _, err := a.Analyze(nl, nil, []string{"nonexistent"}); err == nil {
		t.Error("unknown output accepted")
	}
}

// Slew propagation: a slow edge at the primary input must lengthen the
// first stage's delay relative to an ideal step, and the effect decays
// down the chain as stages regenerate the edge.
func TestSlewPropagation(t *testing.T) {
	a := New(tech, lib)
	nl := inverterChain(3, 1e-6, 2e-6)
	sharp, err := a.Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := a.Analyze(nl, map[string]Arrival{
		"in0": {RiseSlew: 200e-12, FallSlew: 200e-12},
	}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	if slow.WorstArrival <= sharp.WorstArrival {
		t.Errorf("a 200 ps input slew should increase the arrival: %g vs %g",
			slow.WorstArrival, sharp.WorstArrival)
	}
	// Output slews settle to the chain's own regenerated values: the final
	// stage's slew should not inherit the full 200 ps.
	ar := slow.Arrivals["out"]
	if ar.FallSlew > 150e-12 || ar.RiseSlew > 150e-12 {
		t.Errorf("output slews did not regenerate: %+v", ar)
	}
}
