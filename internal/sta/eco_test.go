package sta

import (
	"reflect"
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/faultinject"
	"qwm/internal/obs"
	"qwm/internal/reduce"
	"qwm/internal/stages"
)

// decoderFixture builds the decoder workload and its primary map.
func decoderFixture(t testing.TB) (*circuit.Netlist, map[string]Arrival, []string) {
	t.Helper()
	nl, ins, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	primary := map[string]Arrival{}
	for _, in := range ins {
		primary[in] = Arrival{}
	}
	return nl, primary, outs
}

// findDevice returns the named transistor or fails the test.
func findDevice(t testing.TB, nl *circuit.Netlist, name string) *circuit.Transistor {
	t.Helper()
	for _, tr := range nl.Transistors {
		if tr.Name == name {
			return tr
		}
	}
	t.Fatalf("device %q not found", name)
	return nil
}

// ecoRunOnce performs one incremental analysis and fails on error.
func ecoRunOnce(t testing.TB, a *Analyzer, nl *circuit.Netlist, primary map[string]Arrival, outs []string, eps float64) *Result {
	t.Helper()
	res, err := a.AnalyzeContext(nil, Request{
		Netlist: nl, Primary: primary, Outputs: outs,
		Incremental: true, Epsilon: eps,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireSameTiming asserts the fields the incremental ≡ from-scratch
// guarantee covers: arrivals (bitwise), worst output, critical path, and the
// replayable diagnostics. ClassCount/ClassHits are intentionally excluded —
// an incremental run only resolves classes for dirty stages.
func requireSameTiming(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(ref.Arrivals, got.Arrivals) {
		t.Fatalf("%s: arrivals diverged\nref: %v\ngot: %v", label, ref.Arrivals, got.Arrivals)
	}
	if ref.WorstArrival != got.WorstArrival || ref.WorstOutput != got.WorstOutput {
		t.Fatalf("%s: worst diverged: (%g, %s) vs (%g, %s)",
			label, ref.WorstArrival, ref.WorstOutput, got.WorstArrival, got.WorstOutput)
	}
	if !reflect.DeepEqual(ref.CriticalPath, got.CriticalPath) {
		t.Fatalf("%s: critical path diverged: %v vs %v", label, ref.CriticalPath, got.CriticalPath)
	}
	if ref.TierCounts != got.TierCounts || ref.Degraded != got.Degraded ||
		ref.EvalErrors != got.EvalErrors || ref.SlewFallbacks != got.SlewFallbacks ||
		ref.ReducedNodes != got.ReducedNodes {
		t.Fatalf("%s: diagnostics diverged:\nref: %s\ngot: %s", label, ref.Diagnostics, got.Diagnostics)
	}
}

// TestIncrementalMatchesScratch drives an edit sequence (resize, load change,
// revert) through a persistent incremental Analyzer and checks every step
// bit-for-bit against the from-scratch schedule — across worker counts and
// the memo/interp/reduce feature matrix.
//
// The reference is a PERSISTENT non-incremental Analyzer running the same
// edit sequence, not a fresh one per step: raw (non-memo) delay-cache entries
// are keyed by 5 ps slew bucket but evaluated at the first-seen exact slew,
// so any warm re-analysis — incremental or not — can legitimately differ from
// a cold analyzer in low-order bits when an edit moves a slew within its
// bucket. The differential therefore isolates exactly what ECO changes: the
// Incremental flag may only change scheduling, never results. Memo-mode
// entries are pure functions of their key (bucket-floor snap / boundary
// interp), so for memo variants the steps are additionally checked against a
// cold from-scratch analyzer.
func TestIncrementalMatchesScratch(t *testing.T) {
	variants := []struct {
		name string
		red  reduce.Config
		memo MemoConfig
	}{
		{"plain", reduce.Config{}, MemoConfig{}},
		{"memo", reduce.Config{}, MemoConfig{Enabled: true}},
		{"interp", reduce.Config{}, MemoConfig{Enabled: true, Interp: true}},
		{"reduce", reduce.Config{Enabled: true}, MemoConfig{}},
	}
	for _, v := range variants {
		for _, workers := range []int{1, 8} {
			t.Run(v.name, func(t *testing.T) {
				nl, primary, outs := decoderFixture(t)
				inc := New(tech, lib)
				inc.Workers = workers
				inc.Reduction, inc.Memo = v.red, v.memo
				scratch := New(tech, lib)
				scratch.Workers = 1
				scratch.Reduction, scratch.Memo = v.red, v.memo

				step := func(label string) {
					ref, err := scratch.Analyze(nl, primary, outs)
					if err != nil {
						t.Fatal(err)
					}
					got := ecoRunOnce(t, inc, nl, primary, outs, 0)
					requireSameTiming(t, label, ref, got)
					if v.memo.Enabled {
						cold := New(tech, lib)
						cold.Workers = 1
						cold.Reduction, cold.Memo = v.red, v.memo
						cref, err := cold.Analyze(nl, primary, outs)
						if err != nil {
							t.Fatal(err)
						}
						requireSameTiming(t, label+"/cold", cref, got)
					}
				}

				step("baseline")
				dev := findDevice(t, nl, "mnd0")
				dev.W *= 1.7
				step("resize")
				nl.Capacitors[0].C *= 1.5
				step("load")
				dev.W /= 1.7
				step("revert")
			})
		}
	}
}

// TestIncrementalNoEditAllClean: a repeat incremental call with an untouched
// netlist must replay everything — zero dirty stages, zero cache misses, and
// identical results.
func TestIncrementalNoEditAllClean(t *testing.T) {
	nl, primary, outs := decoderFixture(t)
	a := New(tech, lib)
	first := ecoRunOnce(t, a, nl, primary, outs, 0)
	total := first.ECO.DirtyStages + first.ECO.SkippedStages
	if first.ECO.DirtyStages != total || first.ECO.SkippedStages != 0 {
		t.Fatalf("first incremental run must be all-dirty: %+v", first.ECO)
	}
	second := ecoRunOnce(t, a, nl, primary, outs, 0)
	if second.ECO.DirtyStages != 0 || second.ECO.SkippedStages != total {
		t.Fatalf("no-edit rerun not fully clean: %+v", second.ECO)
	}
	if second.StagesEvaluated != 0 {
		t.Fatalf("no-edit rerun paid %d cache misses", second.StagesEvaluated)
	}
	requireSameTiming(t, "no-edit", first, second)
}

// TestIncrementalDirtyCone: resizing one row driver of the decoder must
// re-evaluate exactly two of the 19 stages — the driver itself (geometry)
// and the NAND driving its gate (the resize moves the driver's gate
// capacitance, so the NAND's fanout-load digest shifts). Everything else
// replays. This is the ≥ 5× stage-eval reduction the acceptance criteria
// name, in its exact form.
func TestIncrementalDirtyCone(t *testing.T) {
	nl, primary, outs := decoderFixture(t)
	a := New(tech, lib)
	first := ecoRunOnce(t, a, nl, primary, outs, 0)
	total := first.ECO.DirtyStages

	findDevice(t, nl, "mnd0").W *= 1.3
	res := ecoRunOnce(t, a, nl, primary, outs, 0)
	if res.ECO.DirtyStages != 2 {
		t.Fatalf("row-driver resize dirtied %d stages, want 2 (driver + fanin NAND) (%+v)", res.ECO.DirtyStages, res.ECO)
	}
	if res.ECO.SkippedStages != total-2 {
		t.Fatalf("skipped %d stages, want %d", res.ECO.SkippedStages, total-2)
	}
	if res.ECO.DirtyStages*5 > total {
		t.Fatalf("dirty cone %d not ≥5× under total %d", res.ECO.DirtyStages, total)
	}
}

// TestIncrementalEpsilonEarlyStop: a sub-epsilon geometry perturbation on an
// address inverter (a stage with a deep fanout cone) re-evaluates only that
// stage — the arrival moves within epsilon, the early-stop fires, and the
// cone below it stays clean. With epsilon 0 the same edit floods the cone.
func TestIncrementalEpsilonEarlyStop(t *testing.T) {
	nl, primary, outs := decoderFixture(t)
	dev := findDevice(t, nl, "mni0")

	exact := New(tech, lib)
	ecoRunOnce(t, exact, nl, primary, outs, 0)
	dev.W *= 1.0000001
	flood := ecoRunOnce(t, exact, nl, primary, outs, 0)
	if flood.ECO.DirtyStages <= 1 {
		t.Fatalf("epsilon-0 run did not propagate the edit: %+v", flood.ECO)
	}

	dev.W /= 1.0000001
	loose := New(tech, lib)
	ecoRunOnce(t, loose, nl, primary, outs, 0)
	dev.W *= 1.0000001
	res := ecoRunOnce(t, loose, nl, primary, outs, 100e-12)
	if res.ECO.DirtyStages != 1 {
		t.Fatalf("epsilon run dirtied %d stages, want 1 (%+v)", res.ECO.DirtyStages, res.ECO)
	}
	if res.ECO.EarlyStops == 0 {
		t.Fatal("epsilon run recorded no early stops")
	}
}

// TestIncrementalFPInvalidation: with Memo on, editing a stage must drop its
// stale fpTable resolutions during the incremental diff (counted on
// sta/class/fp_evictions) — the raw-key → class-key memo would otherwise
// keep one dead entry per edited stage forever.
func TestIncrementalFPInvalidation(t *testing.T) {
	nl, primary, outs := decoderFixture(t)
	reg := obs.NewRegistry()
	a := New(tech, lib)
	a.Memo = MemoConfig{Enabled: true}
	a.Metrics = reg
	ecoRunOnce(t, a, nl, primary, outs, 0)

	evictions := func() int64 {
		return reg.Snapshot().Counters["sta/class/fp_evictions"]
	}
	before := evictions()
	findDevice(t, nl, "mnd0").W *= 1.4
	ecoRunOnce(t, a, nl, primary, outs, 0)
	if after := evictions(); after <= before {
		t.Fatalf("edit evicted no fpTable entries (before %d, after %d)", before, after)
	}
}

// TestFPTableCap: an insert that would exceed the cap flushes the table (the
// flush size is reported for the eviction metric), and the capped table
// keeps serving lookups afterwards.
func TestFPTableCap(t *testing.T) {
	var tab fpTable
	if ev := tab.store("a", "ca", 2); ev != 0 {
		t.Fatalf("first insert evicted %d", ev)
	}
	if ev := tab.store("b", "cb", 2); ev != 0 {
		t.Fatalf("second insert evicted %d", ev)
	}
	// Overwriting an existing key never flushes.
	if ev := tab.store("a", "ca2", 2); ev != 0 {
		t.Fatalf("overwrite evicted %d", ev)
	}
	if ev := tab.store("c", "cc", 2); ev != 2 {
		t.Fatalf("cap-exceeding insert evicted %d, want 2", ev)
	}
	if got, ok := tab.lookup("c"); !ok || got != "cc" {
		t.Fatalf("post-flush lookup: %q, %v", got, ok)
	}
	if _, ok := tab.lookup("a"); ok {
		t.Fatal("flushed entry survived")
	}
	// Cap resolution: 0 → default, negative → unbounded.
	if c := (MemoConfig{}).fpCap(); c != defaultFPCap {
		t.Fatalf("default cap %d", c)
	}
	if c := (MemoConfig{FPCap: -1}).fpCap(); c != 0 {
		t.Fatalf("negative cap %d", c)
	}
	if c := (MemoConfig{FPCap: 7}).fpCap(); c != 7 {
		t.Fatalf("explicit cap %d", c)
	}
}

// singleInverter builds one inverter in → out with a load cap.
func singleInverter(in, out string) *circuit.Netlist {
	nl := &circuit.Netlist{}
	nl.AddTransistor(&circuit.Transistor{
		Name: "mn_" + out, Kind: circuit.KindNMOS,
		Drain: out, Gate: in, Source: "0", Body: "0", W: 1e-6, L: tech.LMin,
	})
	nl.AddTransistor(&circuit.Transistor{
		Name: "mp_" + out, Kind: circuit.KindPMOS,
		Drain: out, Gate: in, Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin,
	})
	nl.AddCapacitor("cl_"+out, out, "0", 15e-15)
	return nl
}

// TestInterpBoundarySharesSnapNamespace pins the satellite-3 fix: interp
// mode's boundary evaluations share snap mode's "|b" bucket-floor keys, so a
// slew sitting exactly on a bucket boundary costs exactly the snap-mode eval
// count and returns bit-identical arrivals, while an off-boundary slew pays
// the two boundary evals interpolation needs.
func TestInterpBoundarySharesSnapNamespace(t *testing.T) {
	run := func(memo MemoConfig, slew float64) *Result {
		a := New(tech, lib)
		a.Memo = memo
		nl := singleInverter("in", "out")
		res, err := a.Analyze(nl, map[string]Arrival{
			"in": {RiseSlew: slew, FallSlew: slew},
		}, []string{"out"})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	boundary := 2 * slewPitch // exactly on a bucket floor
	snap := run(MemoConfig{Enabled: true}, boundary)
	interp := run(MemoConfig{Enabled: true, Interp: true}, boundary)
	if interp.StagesEvaluated != snap.StagesEvaluated {
		t.Fatalf("boundary slew: interp paid %d evals, snap %d — ceil eval not skipped or namespace split",
			interp.StagesEvaluated, snap.StagesEvaluated)
	}
	if !reflect.DeepEqual(snap.Arrivals, interp.Arrivals) {
		t.Fatalf("boundary slew: interp diverged from snap:\n%v\nvs\n%v", snap.Arrivals, interp.Arrivals)
	}

	off := run(MemoConfig{Enabled: true, Interp: true}, boundary+slewPitch/3)
	if off.StagesEvaluated != 2*snap.StagesEvaluated {
		t.Fatalf("off-boundary slew: interp paid %d evals, want %d (both boundaries per direction)",
			off.StagesEvaluated, 2*snap.StagesEvaluated)
	}
}

// spiceSiblingPair builds two renamed-isomorphic inverters in one netlist,
// with declaration (and name sort) order controlled by swap — the shape that
// exposed the PR 6 residual: under class memoization both members share one
// TierSpice cache entry, and pre-canonicalization its float value depended
// on WHICH member's node names built the MNA matrix.
func spiceSiblingPair(swap bool) (*circuit.Netlist, map[string]Arrival, []string) {
	nl := &circuit.Netlist{}
	add := func(in, out string) {
		nl.AddTransistor(&circuit.Transistor{
			Name: "mn_" + out, Kind: circuit.KindNMOS,
			Drain: out, Gate: in, Source: "0", Body: "0", W: 1.3e-6, L: tech.LMin,
		})
		nl.AddTransistor(&circuit.Transistor{
			Name: "mp_" + out, Kind: circuit.KindPMOS,
			Drain: out, Gate: in, Source: "vdd", Body: "vdd", W: 2.6e-6, L: tech.LMin,
		})
		nl.AddCapacitor("cl_"+out, out, "0", 12e-15)
	}
	if swap {
		add("zz_in", "zz_out")
		add("aa_in", "aa_out")
	} else {
		add("aa_in", "aa_out")
		add("zz_in", "zz_out")
	}
	return nl, map[string]Arrival{"aa_in": {}, "zz_in": {}}, []string{"aa_out", "zz_out"}
}

// TestSpiceCrossMemberBitIdentity is the satellite-1 pin: force every
// evaluation to TierSpice (rate-1 NR divergence kills both QWM tiers) with
// class memoization on, and run the sibling pair in both declaration orders.
// The shared class entry must be bitwise independent of which member
// computed it: both members see one value, and both orders produce it.
func TestSpiceCrossMemberBitIdentity(t *testing.T) {
	analyzeOrder := func(swap bool) *Result {
		nl, primary, outs := spiceSiblingPair(swap)
		a := New(tech, lib)
		a.Workers = 1
		a.Memo = MemoConfig{Enabled: true}
		res, err := a.AnalyzeContext(nil, Request{
			Netlist: nl, Primary: primary, Outputs: outs,
			Fault: faultinject.New(3).Enable(faultinject.NRDivergence, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TierCounts[TierSpice] == 0 {
			t.Fatalf("divergence injection did not reach the spice tier: %v", res.TierCounts)
		}
		return res
	}
	ab := analyzeOrder(false)
	ba := analyzeOrder(true)
	// Within one run the siblings share the class entry, so their relative
	// delays must match bitwise.
	for _, res := range []*Result{ab, ba} {
		d1 := res.Arrivals["aa_out"]
		d2 := res.Arrivals["zz_out"]
		if d1 != d2 {
			t.Fatalf("class siblings diverged within one run: %+v vs %+v", d1, d2)
		}
	}
	// Across runs, the entry's value must not depend on which member (name
	// set) computed it.
	if ab.Arrivals["aa_out"] != ba.Arrivals["aa_out"] {
		t.Fatalf("spice-tier class entry depends on computing member:\nAB: %+v\nBA: %+v",
			ab.Arrivals["aa_out"], ba.Arrivals["aa_out"])
	}
}

// TestEvalSpicePathCanonical drives evalSpicePath directly on two
// renamed-isomorphic stages whose node names sort in opposite orders: the
// canonical sub-netlist rename must make the float results bitwise equal.
func TestEvalSpicePathCanonical(t *testing.T) {
	eval := func(in, out string) dirResult {
		nl := singleInverter(in, out)
		sts := circuit.ExtractStages(nl, []string{out})
		if len(sts) != 1 {
			t.Fatalf("want 1 stage, got %d", len(sts))
		}
		st := sts[0]
		path, err := circuit.LongestPath(st, out, circuit.GroundNode)
		if err != nil {
			t.Fatal(err)
		}
		a := New(tech, lib)
		r, err := a.evalSpicePath(st, path, out, circuit.GroundNode, map[string]float64{out: 15e-15}, 20e-12)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := eval("aa_in", "ab_out")
	r2 := eval("zz_in", "zy_out")
	if r1 != r2 {
		t.Fatalf("evalSpicePath depends on node names:\n%+v\nvs\n%+v", r1, r2)
	}
}

// BenchmarkAnalyzeIncremental compares the single-edit re-analysis cost:
// /full re-analyzes the decoder from scratch after each one-device toggle,
// /eco runs the same toggle through the incremental path. The stage-evals/op
// metric is the acceptance number (≥ 5× fewer for /eco).
func BenchmarkAnalyzeIncremental(b *testing.B) {
	nl, ins, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	if err != nil {
		b.Fatal(err)
	}
	primary := map[string]Arrival{}
	for _, in := range ins {
		primary[in] = Arrival{}
	}
	var dev *circuit.Transistor
	for _, tr := range nl.Transistors {
		if tr.Name == "mnd0" {
			dev = tr
		}
	}
	toggle := func(i int) {
		dev.W = 1e-6
		if i%2 == 1 {
			dev.W = 1.5e-6
		}
	}

	b.Run("full", func(b *testing.B) {
		// A from-scratch Analyze walks (gathers, keys, resolves) every stage
		// of the netlist, edit or no edit.
		nStages := len(circuit.ExtractStages(nl, outs))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			toggle(i)
			a := New(tech, lib)
			a.Workers = 1
			if _, err := a.Analyze(nl, primary, outs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nStages), "stageevals/op")
	})

	b.Run("eco", func(b *testing.B) {
		a := New(tech, lib)
		a.Workers = 1
		// Warm both toggle variants so the steady state is a pure dirty-cone
		// walk (the delay cache already holds both geometries).
		for i := 0; i < 2; i++ {
			toggle(i)
			if _, err := a.AnalyzeContext(nil, Request{Netlist: nl, Primary: primary, Outputs: outs, Incremental: true}); err != nil {
				b.Fatal(err)
			}
		}
		dirty := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			toggle(i)
			res, err := a.AnalyzeContext(nil, Request{Netlist: nl, Primary: primary, Outputs: outs, Incremental: true})
			if err != nil {
				b.Fatal(err)
			}
			dirty += res.ECO.DirtyStages
		}
		b.ReportMetric(float64(dirty)/float64(b.N), "stageevals/op")
	})
}
