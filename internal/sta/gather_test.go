package sta

import (
	"testing"

	"qwm/internal/circuit"
)

// TestGatherInputs pins the worst-input selection and its tie-breaking: the
// >= comparison means a later input (stage inputs are sorted) wins an exact
// tie, and unconstrained inputs (no arrival entry) still register as t = 0
// ideal steps so riseFrom/fallFrom point at a real net.
func TestGatherInputs(t *testing.T) {
	cases := []struct {
		name     string
		inputs   []string
		arrivals map[string]Arrival
		want     stageInputs
	}{
		{
			name:   "no inputs",
			inputs: nil,
			want:   stageInputs{},
		},
		{
			name:     "all unconstrained ties break to last sorted input",
			inputs:   []string{"a", "b", "c"},
			arrivals: map[string]Arrival{},
			want:     stageInputs{riseFrom: "c", fallFrom: "c"},
		},
		{
			name:   "exact tie breaks to later input",
			inputs: []string{"a", "b"},
			arrivals: map[string]Arrival{
				"a": {Rise: 10e-12, Fall: 10e-12},
				"b": {Rise: 10e-12, Fall: 10e-12},
			},
			want: stageInputs{
				latestRise: 10e-12, latestFall: 10e-12,
				riseFrom: "b", fallFrom: "b",
			},
		},
		{
			name:   "distinct arrivals pick the max per direction",
			inputs: []string{"a", "b"},
			arrivals: map[string]Arrival{
				"a": {Rise: 30e-12, RiseSlew: 7e-12, Fall: 5e-12, FallSlew: 1e-12},
				"b": {Rise: 10e-12, RiseSlew: 9e-12, Fall: 20e-12, FallSlew: 3e-12},
			},
			want: stageInputs{
				latestRise: 30e-12, riseSlew: 7e-12, riseFrom: "a",
				latestFall: 20e-12, fallSlew: 3e-12, fallFrom: "b",
			},
		},
		{
			name:   "unconstrained input loses to any positive arrival",
			inputs: []string{"a", "z"},
			arrivals: map[string]Arrival{
				"a": {Rise: 1e-12, Fall: 1e-12},
			},
			want: stageInputs{
				latestRise: 1e-12, latestFall: 1e-12,
				riseFrom: "a", fallFrom: "a",
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := &circuit.Stage{Inputs: c.inputs}
			got := gatherInputs(st, c.arrivals)
			if got != c.want {
				t.Errorf("gatherInputs = %+v, want %+v", got, c.want)
			}
		})
	}
}

// TestUnconstrainedTraceTerminates runs a full analysis with an empty
// primary map: every input is unconstrained (empty riseFrom/fallFrom never
// occurs for stages with inputs, but primary inputs have no predecessor
// entry), and critical-path tracing must still terminate cleanly at the
// primary input instead of looping.
func TestUnconstrainedTraceTerminates(t *testing.T) {
	a := New(tech, lib)
	nl := inverterChain(3, 1e-6, 2e-6)
	res, err := a.Analyze(nl, map[string]Arrival{}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CriticalPath) == 0 || res.CriticalPath[0] != "out" {
		t.Fatalf("critical path %v does not start at the output", res.CriticalPath)
	}
	last := res.CriticalPath[len(res.CriticalPath)-1]
	if last != "in0" {
		t.Errorf("critical path %v does not terminate at the primary input", res.CriticalPath)
	}
	if len(res.CriticalPath) > 4 {
		t.Errorf("critical path %v longer than the chain: tracing did not terminate cleanly", res.CriticalPath)
	}
}
