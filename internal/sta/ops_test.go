package sta

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"qwm/internal/faultinject"
	"qwm/internal/obs"
)

// runTraced runs the decoder fixture on a fresh analyzer with a fresh trace
// recorder and metrics registry attached, returning all three plus the
// result.
func runTraced(t *testing.T, workers int) (*Analyzer, *obs.TraceRecorder, *Result) {
	t.Helper()
	a := New(tech, lib)
	a.Workers = workers
	a.Metrics = obs.NewRegistry()
	tr := obs.NewTraceRecorder()
	req := decoderRequest(t)
	req.Observer = tr
	res, err := a.AnalyzeContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return a, tr, res
}

// TestTraceDecoderSmoke records a full decoder analysis and validates the
// exported Chrome trace end to end: valid JSON in the object format, one
// analyze span, one span per level, one eval span per work item, balanced
// (non-negative, bounded) durations, and evals nested inside the analysis.
func TestTraceDecoderSmoke(t *testing.T) {
	_, tr, _ := runTraced(t, 4)
	b, err := tr.Trace().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if parsed.Metadata["recorder"] == nil {
		t.Error("trace metadata missing recorder")
	}

	var analyze, level, eval, meta int
	var aStart, aEnd float64
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			continue
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("unbalanced X event %q (dur %v)", ev.Name, ev.Dur)
			}
		default:
			t.Fatalf("unexpected phase %q on %q", ev.Ph, ev.Name)
		}
		switch {
		case ev.Name == "analyze":
			analyze++
			aStart, aEnd = ev.TS, ev.TS+*ev.Dur
		case ev.Cat == "sta":
			level++
		case ev.Cat == "eval":
			eval++
		}
	}
	// Decoder fixture: 19 stages / 38 items over 3 levels.
	if analyze != 1 || level != 3 || eval != 38 {
		t.Fatalf("span counts analyze=%d level=%d eval=%d, want 1/3/38", analyze, level, eval)
	}
	if meta < 3 {
		t.Fatalf("metadata events = %d, want >= 3", meta)
	}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" || ev.Cat != "eval" {
			continue
		}
		if ev.TS < aStart-1e-6 || ev.TS+*ev.Dur > aEnd+1e-6 {
			t.Errorf("eval %q [%g,%g] outside analyze [%g,%g]", ev.Name, ev.TS, ev.TS+*ev.Dur, aStart, aEnd)
		}
		if ev.Args["tier"] == nil {
			t.Errorf("eval %q missing tier arg", ev.Name)
		}
		if c := ev.Args["cache"]; c != "hit" && c != "miss" {
			t.Errorf("eval %q cache arg = %v", ev.Name, c)
		}
	}
}

// TestTraceDeterministicWorkersByteIdentical pins the acceptance criterion:
// the deterministic trace of the same request is byte-identical at Workers 1
// and Workers 8.
func TestTraceDeterministicWorkersByteIdentical(t *testing.T) {
	_, tr1, _ := runTraced(t, 1)
	_, tr8, _ := runTraced(t, 8)
	b1, err := tr1.Trace().Deterministic().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b8, err := tr8.Trace().Deterministic().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		d1, d8 := firstDiffLine(b1, b8)
		t.Fatalf("deterministic traces differ between Workers 1 and 8:\nworkers=1: %s\nworkers=8: %s", d1, d8)
	}
	// Sanity: the wall-clock variants are allowed to differ, but both must
	// stay valid JSON.
	for _, tr := range []*obs.TraceRecorder{tr1, tr8} {
		b, err := tr.Trace().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(b) {
			t.Fatal("wall-clock trace is not valid JSON")
		}
	}
}

func firstDiffLine(a, b []byte) (string, string) {
	la := strings.Split(string(a), "\n")
	lb := strings.Split(string(b), "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return la[i], lb[i]
		}
	}
	return "<prefix>", "<prefix>"
}

// TestOpsServerIntegration exercises the full ops surface over real HTTP
// against a live analyzer: Prometheus metrics with engine counters, the
// recorded trace, pprof, expvar-free health — and the healthz flip to 503
// when the analysis degraded under injected faults.
func TestOpsServerIntegration(t *testing.T) {
	a, tr, res := runTraced(t, 2)

	srv := &obs.Server{
		Registry: a.Metrics,
		Trace:    tr,
		Health: func() (bool, string) {
			if res.Diagnostics.Healthy() {
				return true, "ok"
			}
			return false, res.Diagnostics.String()
		},
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	fetch := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := fetch("/metrics"); code != 200 ||
		!strings.Contains(body, "sta_analyzes 1") ||
		!strings.Contains(body, `sta_nr_iters_per_eval_bucket{le="+Inf"}`) {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, body := fetch("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := fetch("/trace"); code != 200 || !strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("/trace: %d", code)
	}
	if code, _ := fetch("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}

	// Degrade: kill every QWM Newton solve so the ladder escalates and the
	// diagnostics report degradation; health must flip to 503 with detail.
	inj := faultinject.New(3).Enable(faultinject.NRDivergence, 1)
	fa := New(tech, lib)
	freq := decoderRequest(t)
	freq.Fault = inj
	fres, err := fa.AnalyzeContext(context.Background(), freq)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Degraded == 0 || fres.Diagnostics.Healthy() {
		t.Fatalf("fault injection did not degrade the run: %+v", fres.Diagnostics)
	}
	res = fres // the Health closure reads the updated result

	code, body := fetch("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after degradation: %d %q, want 503", code, body)
	}
	if !strings.Contains(body, "degraded") {
		t.Fatalf("degraded healthz body lacks detail: %q", body)
	}
}
