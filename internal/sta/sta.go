// Package sta is the static-timing-analysis layer of the paper's title: it
// partitions a transistor netlist into logic stages (channel-connected
// components), levelizes them along gate connectivity, evaluates each
// stage's worst-case rise and fall delays with the QWM engine, and
// propagates arrival times to the primary outputs — "only the timing of the
// logic stages along the longest paths needs to be considered" (§I).
//
// Evaluation is parallel: stages are grouped into dependency levels (Kahn),
// every (stage output, direction) pair in a level becomes an independent
// work item, and a worker pool sized by Analyzer.Workers drains the items
// through a sharded single-flight delay cache. Arrival propagation and
// critical-path bookkeeping stay sequential, so the parallel engine is
// bit-for-bit deterministic: it returns exactly the arrivals, critical path
// and evaluation count the serial (Workers = 1) engine does.
//
// Stage delays are cached by stage identity, direction, input-slew bucket
// AND the stage output's load digest, so re-analysis after a local edit (the
// incremental-STA use case) only re-evaluates the directions whose devices,
// input slews or fanout loads changed and re-propagates arrivals. The load
// digest matters: two structurally identical stages driving different fanout
// must not alias to one cache entry, or the second silently inherits the
// first's delay (see TestCacheKeyIncludesLoad).
package sta

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/faultinject"
	"qwm/internal/mos"
	"qwm/internal/obs"
	"qwm/internal/qwm"
	"qwm/internal/reduce"
	"qwm/internal/wave"
)

// Arrival is a rise/fall arrival-time pair in seconds, with the transition
// times (10–90 % slews) of the arriving edges. The zero Arrival means
// "arrives at t = 0 in both directions as an ideal step".
type Arrival struct {
	Rise, Fall         float64
	RiseSlew, FallSlew float64
}

// Analyzer evaluates stage delays with QWM over a characterized library.
// The zero value is usable: the delay cache is initialized lazily on first
// Analyze. An Analyzer may be shared across goroutines once constructed —
// the cache is concurrency-safe — though each Analyze call already
// parallelizes internally.
type Analyzer struct {
	Tech *mos.Tech
	Lib  *devmodel.Library
	// Opts tunes the per-stage QWM evaluations.
	Opts qwm.Options
	// Workers caps the number of concurrent stage-direction evaluations per
	// level. 0 means runtime.GOMAXPROCS(0); 1 forces the serial in-line
	// path (no goroutines). Results are identical for every setting.
	Workers int
	// Reduction configures the RC-chain model-order reduction pre-pass
	// (internal/reduce): long series wire runs on each evaluated path are
	// collapsed into moment-matched equivalents before the solver runs.
	// The zero value disables it and evaluation is bit-for-bit identical to
	// an Analyzer without the field. Its signature is folded into every
	// cache key, so Analyzers at different settings never share entries —
	// but mutating it between Analyzes on ONE Analyzer is supported only
	// because of that same signature; the cache keeps both configurations'
	// entries alive.
	Reduction reduce.Config
	// Memo configures equivalence-class stage memoization: structurally
	// identical stages (node names canonicalized away) share delay-cache
	// entries, evaluated once per (class, direction, slew bucket). The zero
	// value disables it, preserving raw per-name keys bit for bit.
	Memo MemoConfig
	// Metrics, when set, receives per-Analyze aggregates: cache hit/miss
	// counters, eval/level/analyze latency histograms (names under
	// "sta/time/"), and the deterministic NR-iteration and region-count
	// histograms. Nil disables metric recording entirely — the engine then
	// never reads the clock on the evaluation path.
	Metrics *obs.Registry
	// Budget is the analyzer-level default evaluation budget, applied to
	// requests whose own Budget is zero (see Config.Budget).
	Budget EvalBudget
	// Fault is the analyzer-level default fault injector for requests that
	// carry none (chaos rigs only; see Config.FaultPlan).
	Fault *faultinject.Injector
	// Observer is the analyzer-level default span observer for requests
	// that carry none (see Config.Observer).
	Observer obs.Observer
	// Tier, when set, is the persistent cache tier below the in-memory
	// delay cache (see TierStore): single-flight leaders consult it before
	// evaluating and write fresh evaluations back. Entries loaded from the
	// tier count as cache activity but not as evaluations, so a warm-disk
	// Analyze reports StagesEvaluated = 0 exactly like a warm-memory one.
	Tier TierStore

	cacheOnce sync.Once
	cache     *delayCache

	// fp memoizes raw-key → canonical-class-key resolutions (Memo mode).
	fp fpTable
	// keys interns cache-key strings so warm Analyzes build keys in reused
	// byte buffers and materialize no strings (see arena.go).
	keys internTable
	// scratch pools the per-Analyze arena (see arena.go).
	scratch sync.Pool

	// msOnce/ms memoize the registry's instrument handles so the evaluation
	// hot path never performs a name lookup.
	msOnce sync.Once
	ms     *metricSet

	// ecoMu serializes incremental (Request.Incremental) runs; ecoPrev is
	// the committed baseline of the last successful incremental run (see
	// eco.go). Plain runs never touch either.
	ecoMu   sync.Mutex
	ecoPrev *ecoMemo
}

// New creates an analyzer with a fresh delay cache. An optional Config fixes
// the analyzer's full configuration at construction (at most one may be
// passed; extras are a programming error and panic). The two-argument form
// is the historical constructor and yields the zero (baseline) Config;
// callers that used to construct-then-assign exported fields should migrate
// to passing a Config so the analyzer's Signature is stable for its lifetime.
func New(tech *mos.Tech, lib *devmodel.Library, cfg ...Config) *Analyzer {
	a := &Analyzer{Tech: tech, Lib: lib}
	switch len(cfg) {
	case 0:
	case 1:
		c := cfg[0]
		a.Workers = c.Workers
		a.Reduction = c.Reduction
		a.Memo = c.Memo
		a.Budget = c.Budget
		a.Fault = c.FaultPlan
		a.Observer = c.Observer
		a.Metrics = c.Metrics
		a.Tier = c.Tier
	default:
		panic("sta: New accepts at most one Config")
	}
	a.ensureCache()
	return a
}

// ensureCache lazily initializes the delay cache so a zero-value Analyzer
// works (previously `a.cache[key] = t` panicked on the nil map).
func (a *Analyzer) ensureCache() {
	a.cacheOnce.Do(func() {
		if a.cache == nil {
			a.cache = newDelayCache()
		}
	})
}

// CacheStats returns a snapshot of the delay cache's hit/miss/evaluation
// counters and entry count.
func (a *Analyzer) CacheStats() CacheStats {
	a.ensureCache()
	return a.cache.stats()
}

// Diagnostics aggregates the silent-degradation accounting of one Analyze:
// evaluation failures and conservative slew fallbacks. It used to be three
// loose fields on Result; they are folded here so health checks can carry
// and print one value (see String).
type Diagnostics struct {
	// EvalErrors counts the stage-direction timings consulted by this
	// Analyze whose evaluation failed (no conducting path, or a QWM
	// convergence failure). Failed directions contribute no arrival; a
	// cached failure counts every Analyze that consults it, so silent
	// degradation stays visible on every run, not just the one that paid
	// the miss.
	EvalErrors int
	// EvalErrorDetail maps "output~direction" to the first error message
	// recorded for that direction during this Analyze.
	EvalErrorDetail map[string]string
	// SlewFallbacks counts directions whose output slew came from the
	// conservative fallback estimate rather than a clean 10–90 %
	// measurement (the QWM tail was truncated before the 10 % point).
	SlewFallbacks int
	// TierCounts tallies, per degradation-ladder tier, how many
	// stage-direction timings consulted by this Analyze were produced at
	// that tier. A fully healthy run has every count in TierCounts[TierQWM].
	TierCounts [NumTiers]int
	// EvalTier maps "output~direction" to the tier name for every direction
	// that resolved below TierQWM — the degraded-but-complete inventory.
	EvalTier map[string]string
	// Degraded counts the directions that resolved below TierQWM
	// (len of EvalTier, kept as a counter for cheap health checks).
	Degraded int
	// PanicsRecovered counts evaluation panics converted to tier
	// escalations by the worker-side recover isolation.
	PanicsRecovered int
	// ReducedNodes sums, over every direction timing consulted by this
	// Analyze, the circuit nodes removed by the model-order-reduction
	// pre-pass (cached entries report the reduction of the evaluation that
	// produced them, like TierCounts). 0 whenever reduction is disabled.
	ReducedNodes int
	// ClassCount is the number of distinct structural equivalence classes
	// the memoized key resolution saw this Analyze; ClassHits counts the
	// stage directions that joined an already-seen class (evaluations
	// avoided relative to raw keying). Both are 0 when Memo is disabled,
	// and both are schedule-independent: they are tallied in the
	// sequential gather phase.
	ClassCount int
	ClassHits  int
}

// Healthy reports a clean analysis: no failed directions, no slew
// fallbacks, nothing resolved below the QWM tier, no recovered panics.
func (d Diagnostics) Healthy() bool {
	return d.EvalErrors == 0 && d.SlewFallbacks == 0 && d.Degraded == 0 && d.PanicsRecovered == 0
}

// String renders a one-line summary, with the failed directions (sorted)
// when there are any:
//
//	2 eval errors, 1 slew fallback [out~rise: no path; x~fall: diverged]
func (d Diagnostics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d eval error%s, %d slew fallback%s",
		d.EvalErrors, plural(d.EvalErrors), d.SlewFallbacks, plural(d.SlewFallbacks))
	if d.Degraded > 0 {
		fmt.Fprintf(&b, ", %d degraded (", d.Degraded)
		first := true
		for t := TierQWM + 1; t < NumTiers; t++ {
			if d.TierCounts[t] == 0 {
				continue
			}
			if !first {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s:%d", t, d.TierCounts[t])
			first = false
		}
		b.WriteByte(')')
	}
	if d.PanicsRecovered > 0 {
		fmt.Fprintf(&b, ", %d panic%s recovered", d.PanicsRecovered, plural(d.PanicsRecovered))
	}
	if len(d.EvalErrorDetail) > 0 {
		keys := make([]string, 0, len(d.EvalErrorDetail))
		for k := range d.EvalErrorDetail {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" [")
		for i, k := range keys {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(k)
			b.WriteString(": ")
			b.WriteString(d.EvalErrorDetail[k])
		}
		b.WriteString("]")
	}
	return b.String()
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// Result is a completed analysis.
type Result struct {
	// Arrivals holds the latest rise/fall arrival per net (primary inputs
	// and stage outputs).
	Arrivals map[string]Arrival
	// CriticalPath lists the nets from a primary input to the worst
	// primary output, latest first.
	CriticalPath []string
	// WorstSlack output arrival (max over requested outputs and
	// directions).
	WorstArrival float64
	WorstOutput  string
	// StagesEvaluated counts QWM evaluations performed during this call
	// (one per solver run; at most one per stage output, direction, slew
	// bucket and load digest). In-memory cache hits AND persistent-tier
	// hits do not count, so a fully warm run — memory- or disk-warm —
	// reports 0. The incremental path keeps this small, and it is identical
	// for serial and parallel runs thanks to the cache's single-flight
	// discipline.
	StagesEvaluated int
	// Diagnostics is embedded, so the pre-fold selectors
	// (Result.EvalErrors, Result.EvalErrorDetail, Result.SlewFallbacks)
	// still compile; they are deprecated in favor of Result.Diagnostics.
	Diagnostics
	// ECO carries the incremental-run accounting (dirty/skipped stages,
	// epsilon early-stops); the zero value for plain runs.
	ECO ECOStats
}

// outEval is the per-(stage, output) evaluation context, memoized once per
// Analyze call: the expensive stage-content key (edge sort + formatting)
// plus the output's load map and its canonical digest. Both directions of an
// output share one outEval, so the cache-lookup path in evalItem is reduced
// to a cheap string concatenation — previously every lookup (hit or miss)
// re-sorted and re-formatted the stage's edges.
type outEval struct {
	// contentKey is stageKey(st, out) + "|" + loadDigest(loads) + the
	// reduction signature: everything that determines the stage's timing
	// except direction and input slew.
	contentKey string
	loads      map[string]float64
	// baseFall/baseRise are the per-direction key prefixes the lookup path
	// appends the slew-bucket suffix to: the raw contentKey+"|"+rail form,
	// or — when Memo resolved a structural class for the direction — the
	// canonical "C|…" class base shared by every member stage.
	baseFall, baseRise string
	// memoFall/memoRise mark canonical bases; their evaluations snap (or
	// interpolate) the input slew to bucket boundaries so the shared entry
	// is a pure function of the class key.
	memoFall, memoRise bool
}

// workItem is one independent evaluation: a stage output switching toward
// one rail under a given input slew. Items in a level share no data
// dependencies, so the worker pool may execute them in any order; the
// results are folded into arrivals sequentially afterwards. (level, idx)
// identify the item deterministically for observer events — idx is the
// item's position in its level's schedule, identical at any worker count.
type workItem struct {
	st     *circuit.Stage
	out    string
	ev     *outEval
	rail   string // circuit.GroundNode (output falls) or circuit.SupplyNode (rises)
	inSlew float64
	level  int
	idx    int
	timing dirTiming
	// keyBuf is the item's reusable cache-key assembly buffer (worker-local
	// by construction: exactly one worker resolves each item).
	keyBuf []byte
}

// resetItem refills a pooled workItem slot in place, preserving only its
// key buffer's capacity.
func resetItem(w *workItem, st *circuit.Stage, out string, ev *outEval, rail string, inSlew float64, level, idx int) {
	w.st, w.out, w.ev, w.rail = st, out, ev, rail
	w.inSlew, w.level, w.idx = inSlew, level, idx
	w.timing = dirTiming{}
}

// stageInputs is the gathered worst-case input picture for one stage at its
// level: the latest rise/fall arrivals, the slews of those edges, and the
// nets they came from (for critical-path tracing).
type stageInputs struct {
	latestRise, latestFall float64
	riseSlew, fallSlew     float64
	riseFrom, fallFrom     string
}

// Analyze runs a full timing analysis: the netlist is partitioned into
// stages, stages are levelized, each level's rise/fall evaluations run
// across the worker pool (reusing cached delays), and arrivals propagate
// from the primary inputs to the requested outputs.
//
// Analyze is the legacy entry point, kept as a thin wrapper over
// AnalyzeContext with a background context and no observer.
//
// Deprecated: use AnalyzeContext with a Request — it carries cancellation,
// per-request budgets, observers, fault plans and the incremental (ECO)
// mode, none of which this signature can express. Analyze remains only for
// source compatibility and will not grow new capabilities.
func (a *Analyzer) Analyze(n *circuit.Netlist, primary map[string]Arrival, outputs []string) (*Result, error) {
	return a.AnalyzeContext(context.Background(), Request{Netlist: n, Primary: primary, Outputs: outputs})
}

// recordEvalIssues folds one output's direction timings into the Result's
// error and fallback accounting. It runs in the sequential apply phase, so
// no synchronization is needed, and it sees cached failures too — every
// Analyze that consults a failed direction reports it.
func (r *Result) recordEvalIssues(out string, fall, rise dirTiming) {
	for _, d := range [2]struct {
		name string
		t    dirTiming
	}{{"fall", fall}, {"rise", rise}} {
		if d.t.errMsg != "" {
			r.EvalErrors++
			k := out + "~" + d.name
			if r.EvalErrorDetail == nil {
				r.EvalErrorDetail = map[string]string{}
			}
			if _, dup := r.EvalErrorDetail[k]; !dup {
				r.EvalErrorDetail[k] = d.t.errMsg
			}
		}
		if d.t.slewFellBack {
			r.SlewFallbacks++
		}
		r.ReducedNodes += d.t.reduced
		if d.t.ok {
			r.TierCounts[d.t.tier]++
			if d.t.tier > TierQWM {
				r.Degraded++
				if r.EvalTier == nil {
					r.EvalTier = map[string]string{}
				}
				r.EvalTier[out+"~"+d.name] = d.t.tier.String()
			}
		}
		r.PanicsRecovered += d.t.panics
	}
}

// gatherInputs computes the worst-case input arrivals/slews for one stage.
// An input with no recorded arrival is unconstrained: it arrives at t = 0
// as an ideal step.
func gatherInputs(st *circuit.Stage, arrivals map[string]Arrival) stageInputs {
	var si stageInputs
	for _, in := range st.Inputs {
		ar := arrivals[in]
		if ar.Rise >= si.latestRise {
			si.latestRise, si.riseSlew, si.riseFrom = ar.Rise, ar.RiseSlew, in
		}
		if ar.Fall >= si.latestFall {
			si.latestFall, si.fallSlew, si.fallFrom = ar.Fall, ar.FallSlew, in
		}
	}
	return si
}

// runItems evaluates every work item, using up to workers goroutines. With
// one worker (or one item) it stays on the calling goroutine — the serial
// reference path. Cancellation semantics: workers stop picking up NEW items
// once ctx is cancelled, but every item already being evaluated runs to
// completion (the single-flight cache must never hold a pending entry), and
// runItems joins all workers before returning ctx.Err() — no goroutine
// outlives the call.
func (a *Analyzer) runItems(ctx context.Context, items []workItem, workers int, rec *recorder, env *evalEnv) error {
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 || len(items) <= 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				return err
			}
			a.evalItem(&items[i], rec, env, 0)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				a.evalItem(&items[i], rec, env, worker)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// evalItem resolves one work item through the delay cache, computing the
// direction timing on a miss. The cache key is the memoized per-direction
// base (raw stage-content + load-digest + rail, or the canonical class base
// in Memo mode) plus the input-slew bucket; omitting the load digest was the
// aliasing bug that let structurally identical stages with different fanout
// share one entry.
//
// rec is the per-Analyze observation recorder; nil means no observer and no
// metrics registry are attached, and the fast path then performs exactly
// the work it did before observability existed (no clock reads, no event
// structs). worker is the pool slot running this item (0 on the serial
// path), surfaced to observers for timeline rendering only.
func (a *Analyzer) evalItem(it *workItem, rec *recorder, env *evalEnv, worker int) {
	if rec == nil {
		it.timing, _ = a.resolveTiming(it, env)
		return
	}
	start := rec.now()
	timing, computed := a.resolveTiming(it, env)
	it.timing = timing
	rec.stageEval(it, computed, rec.since(start), worker)
}

// slewPitch is the cache's input-slew quantization (see slewBucket).
const slewPitch = 5e-12

// resolveTiming performs the cache lookup(s) for one item. Raw-keyed items
// evaluate at the exact gathered slew, as always. Class-keyed (Memo) items
// snap the evaluation slew to the bucket floor — making the shared entry a
// pure function of the key, so WHICH class member computes it is
// irrelevant — or, in Interp mode, evaluate both bounding bucket boundaries
// and linearly interpolate delay and slew at the exact input slew.
// Keys are assembled into the item's reusable buffer — the warm (all-hits)
// path materializes no strings at all; a miss pays one string conversion
// when the cache installs the entry.
func (a *Analyzer) resolveTiming(it *workItem, env *evalEnv) (dirTiming, bool) {
	base, memo := it.ev.baseFall, it.ev.memoFall
	if it.rail == circuit.SupplyNode {
		base, memo = it.ev.baseRise, it.ev.memoRise
	}
	bucket := slewBucket(it.inSlew)
	if !memo {
		return a.lookupOrEval(it.appendKey(base, "|", bucket), it, env, it.inSlew)
	}
	floor := float64(bucket) * slewPitch
	if !a.Memo.Interp {
		return a.lookupOrEval(it.appendKey(base, "|b", bucket), it, env, floor)
	}
	// Interp shares the "|b" bucket-floor namespace with snap mode: both
	// evaluate at exactly the boundary slew with identical inputs, so a
	// separate interp namespace only duplicated every boundary entry (and a
	// boundary-sitting slew, frac == 0, paid an eval snap mode had cached).
	t0, c0 := a.lookupOrEval(it.appendKey(base, "|b", bucket), it, env, floor)
	frac := (it.inSlew - floor) / slewPitch
	if frac <= 0 || !t0.ok {
		return t0, c0
	}
	ceil := float64(bucket+1) * slewPitch
	t1, c1 := a.lookupOrEval(it.appendKey(base, "|b", bucket+1), it, env, ceil)
	if !t1.ok {
		// The upper boundary failed (budget chaos, pathological geometry):
		// fall back to the floor evaluation rather than half an interpolant.
		return t0, c0 || c1
	}
	return lerpTiming(t0, t1, frac), c0 || c1
}

// appendKey assembles base + sep + bucket into the item's key buffer.
func (it *workItem) appendKey(base, sep string, bucket int) []byte {
	kb := append(it.keyBuf[:0], base...)
	kb = append(kb, sep...)
	kb = strconv.AppendInt(kb, int64(bucket), 10)
	it.keyBuf = kb
	return kb
}

// lookupOrEval resolves one cache key, computing the direction timing through
// the degradation ladder when this caller wins the single-flight race. The
// second return is true when THIS caller performed the compute (an
// evaluation — a persistent-tier hit hydrates the in-memory entry without
// computing, and followers then see an ordinary hit).
func (a *Analyzer) lookupOrEval(key []byte, it *workItem, env *evalEnv, inSlew float64) (dirTiming, bool) {
	e, leader := a.cache.acquire(key)
	if !leader {
		<-e.ready
		return e.val, false
	}
	ks := string(key)
	// Persistent tier read-through: the single-flight leader consults the
	// tier below before paying an evaluation. A hit hydrates the in-memory
	// entry — every close(e.ready) path below runs exactly once, so a
	// cancelled or corrupt store can never strand followers.
	if a.Tier != nil {
		if te, ok := a.tierGet(env, it, ks); ok && te.Valid() {
			e.val = te.timing()
			close(e.ready)
			return e.val, false
		}
	}
	a.cache.evals.Add(1)
	// Fault site: a brief sleep inside the single-flight compute, simulating
	// shard contention or a slow leader; results must be bit-for-bit
	// unaffected (latency-only fault).
	env.fault.Stall(faultinject.CacheStall, ks)
	// Resolve through the degradation ladder. A direction with no conducting
	// path to this rail stays failed (the apply phase errors only if both
	// directions are missing); numerical failures escalate tier by tier and
	// come back degraded-but-complete.
	e.val = a.evalLadder(env, it.st, it.out, it.rail, it.ev.loads, inSlew, ks)
	close(e.ready)
	// Write-behind AFTER ready is closed: followers never wait on the store.
	if a.Tier != nil {
		a.tierPut(env, it, ks, tierEntryOf(e.val))
	}
	return e.val, true
}

// lerpTiming linearly interpolates two bucket-boundary timings at frac ∈
// (0, 1), folding both evaluations' degradation accounting together so a
// consulted interpolant is never healthier-looking than its inputs.
func lerpTiming(t0, t1 dirTiming, frac float64) dirTiming {
	out := t0
	out.delay = (1-frac)*t0.delay + frac*t1.delay
	out.slew = (1-frac)*t0.slew + frac*t1.slew
	out.slewFellBack = t0.slewFellBack || t1.slewFellBack
	if t1.tier > out.tier {
		out.tier = t1.tier
	}
	if t1.reduced > out.reduced {
		out.reduced = t1.reduced
	}
	out.panics = t0.panics + t1.panics
	addStats(&out.stats, t1.stats)
	return out
}

// slewBucket quantizes a transition time to 5 ps so nearby values share a
// cache entry. math.Floor keeps the buckets uniform: the previous int()
// conversion truncated toward zero, which made the bucket straddling zero
// twice as wide and asymmetric (e.g. −4.9 ps and +4.9 ps both mapped to
// bucket 0).
func slewBucket(s float64) int {
	const pitch = 5e-12
	return int(math.Floor(s / pitch))
}

type dirResult struct {
	delay, slew  float64
	slewFellBack bool
	stats        qwm.Stats
}

// evalQWMPath evaluates one direction's worst path with the QWM engine
// under the canonical worst-case stimulus: the rail-side input switches at
// t = 0 — as an ideal step when inSlew is zero, otherwise as a ramp with the
// upstream stage's transition time — every other path input is held
// conducting, and the path nodes start precharged (discharge) or
// pre-discharged (charge). opts carries the tier's solver configuration
// (budgets, fault plumbing, ForceBisection for the rescue tier).
func (a *Analyzer) evalQWMPath(st *circuit.Stage, path *circuit.Path, out, rail string, loads map[string]float64, inSlew float64, opts qwm.Options) (dirResult, error) {
	vdd := a.Tech.VDD
	sw, onLevel, tIn := stimulus(vdd, rail, inSlew)
	inputs := pathInputs(path, sw, onLevel)
	ch, err := qwm.Build(qwm.BuildInput{
		Tech: a.Tech, Lib: a.Lib, Stage: st, Path: path,
		Inputs: inputs, Loads: loads,
	})
	if err != nil {
		return dirResult{}, err
	}
	res, err := qwm.Evaluate(ch, opts)
	if err != nil {
		return dirResult{}, err
	}
	d, err := res.Delay50(tIn, vdd)
	if err != nil {
		return dirResult{stats: res.Stats}, err
	}
	folded := res.Folded[len(res.Folded)-1]
	slew, serr := wave.Slew(folded, vdd, false)
	if serr != nil {
		// The folded tail was truncated before the 10 % point (see
		// Result.TailTruncated in internal/qwm). The old code discarded the
		// error and propagated slew = 0, so the next stage saw an ideal step
		// and reported optimistic delays. Substitute a conservative
		// (pessimistic) estimate instead and flag the fallback.
		return dirResult{delay: d, slew: fallbackSlew(folded, vdd, inSlew, d), slewFellBack: true, stats: res.Stats}, nil
	}
	return dirResult{delay: d, slew: slew, stats: res.Stats}, nil
}

// fallbackSlew derives a conservative 10–90 % transition-time estimate for a
// folded (falling) waveform that never reaches the 10 % point. Preference
// order: scale the inner 70→30 % chord by 0.8/0.4 = 2 (exact for a linear
// ramp, pessimistic for the decaying tails CMOS stages produce); if even
// that span is unavailable, fall back to the larger of the input slew and
// twice the 50 % delay. The result is always positive — never the silent 0
// that made downstream stages see an ideal step.
func fallbackSlew(w wave.Crosser, vdd, inSlew, delay float64) float64 {
	t70, ok1 := w.Crossing(0.7*vdd, false)
	t30, ok2 := w.Crossing(0.3*vdd, false)
	if ok1 && ok2 && t30 > t70 {
		return 2 * (t30 - t70)
	}
	est := 2 * delay
	if inSlew > est {
		est = inSlew
	}
	if est <= 0 {
		est = 1e-12 // degenerate zero-delay case: still not an ideal step
	}
	return est
}

// loadIndex is the per-Analyze fanout index: net → summed gate capacitance
// of the transistors that net drives, and net → summed explicit grounded
// capacitance. Building it is one pass over the netlist; the previous
// fanoutLoads rescanned every transistor and capacitor for every stage
// output — O(stages × devices).
type loadIndex struct {
	gateCap map[string]float64
	nodeCap map[string]float64
}

func buildLoadIndex(n *circuit.Netlist, tech *mos.Tech) *loadIndex {
	ix := &loadIndex{
		gateCap: make(map[string]float64, len(n.Transistors)),
		nodeCap: make(map[string]float64, len(n.Capacitors)),
	}
	ix.build(n, tech)
	return ix
}

// build (re)fills the index from one pass over the netlist. The maps must be
// empty on entry; pooled indexes are cleared by putScratch.
func (ix *loadIndex) build(n *circuit.Netlist, tech *mos.Tech) {
	for _, t := range n.Transistors {
		p := &tech.N
		if t.Kind == circuit.KindPMOS {
			p = &tech.P
		}
		ix.gateCap[t.Gate] += p.GateCap(t.W, t.L)
	}
	for _, c := range n.Capacitors {
		if c.B == circuit.GroundNode {
			ix.nodeCap[c.A] += c.C
		}
		if c.A == circuit.GroundNode {
			ix.nodeCap[c.B] += c.C
		}
	}
}

// stageLoadsInto assembles the per-node load map for one stage output from
// the index into m (cleared first): the output carries its fanout gate caps
// plus explicit caps, and internal path nodes carry their explicit caps.
func (ix *loadIndex) stageLoadsInto(m map[string]float64, st *circuit.Stage, out string) map[string]float64 {
	clear(m)
	if c := ix.gateCap[out] + ix.nodeCap[out]; c != 0 {
		m[out] = c
	}
	for _, nd := range st.Nodes {
		if nd == out {
			continue
		}
		if c := ix.nodeCap[nd]; c != 0 {
			m[nd] += c
		}
	}
	return m
}

// stageLoads is stageLoadsInto with a fresh map (tests and one-off callers).
func (ix *loadIndex) stageLoads(st *circuit.Stage, out string) map[string]float64 {
	return ix.stageLoadsInto(map[string]float64{}, st, out)
}

// loadDigest canonically encodes a stage output's load map — the third
// input to evalDirection after stage content and stimulus — as sorted
// node:cap pairs at fixed precision (6 significant digits; load differences
// below that are far under timing resolution and should share an entry).
// Two structurally identical stages driving different fanout get different
// digests and therefore distinct cache entries; omitting this from the key
// made the second stage silently inherit the first's delay.
func loadDigest(loads map[string]float64) string {
	var s analyzeScratch
	return string(s.appendLoadDigest(nil, loads))
}

// stageKey identifies a stage's timing-relevant content: its devices,
// geometry and connectivity, plus the observed output. The hot path uses
// appendStageKey directly; this wrapper exists for tests and cold callers.
func stageKey(st *circuit.Stage, out string) string {
	var s analyzeScratch
	return string(s.appendStageKey(nil, st, out))
}

// errLoop is the combinational-loop rejection raised by levelize; the caller
// wraps it in ErrInvalidNetlist with the rest of the pre-flight taxonomy.
func errLoop(stage string) error {
	return fmt.Errorf("sta: combinational loop through stage %s", stage)
}
