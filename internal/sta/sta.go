// Package sta is the static-timing-analysis layer of the paper's title: it
// partitions a transistor netlist into logic stages (channel-connected
// components), orders them topologically along gate connectivity, evaluates
// each stage's worst-case rise and fall delays with the QWM engine, and
// propagates arrival times to the primary outputs — "only the timing of the
// logic stages along the longest paths needs to be considered" (§I).
//
// Stage delays are cached by stage identity, so re-analysis after a local
// edit (the incremental-STA use case) only re-evaluates the stages whose
// devices changed and re-propagates arrivals.
package sta

import (
	"fmt"
	"sort"

	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/wave"
)

// Arrival is a rise/fall arrival-time pair in seconds, with the transition
// times (10–90 % slews) of the arriving edges. The zero Arrival means
// "arrives at t = 0 in both directions as an ideal step".
type Arrival struct {
	Rise, Fall         float64
	RiseSlew, FallSlew float64
}

// Analyzer evaluates stage delays with QWM over a characterized library.
type Analyzer struct {
	Tech *mos.Tech
	Lib  *devmodel.Library
	// Opts tunes the per-stage QWM evaluations.
	Opts qwm.Options

	cache     map[string]stageTiming
	evaluated int
}

// New creates an analyzer with a fresh delay cache.
func New(tech *mos.Tech, lib *devmodel.Library) *Analyzer {
	return &Analyzer{Tech: tech, Lib: lib, cache: map[string]stageTiming{}}
}

// stageTiming is the cached QWM result for one stage output.
type stageTiming struct {
	fallDelay, fallSlew float64 // output falling (pull-down path)
	riseDelay, riseSlew float64 // output rising (pull-up path)
	fallOK, riseOK      bool
}

// Result is a completed analysis.
type Result struct {
	// Arrivals holds the latest rise/fall arrival per net (primary inputs
	// and stage outputs).
	Arrivals map[string]Arrival
	// CriticalPath lists the nets from a primary input to the worst
	// primary output, latest first.
	CriticalPath []string
	// WorstSlack output arrival (max over requested outputs and
	// directions).
	WorstArrival float64
	WorstOutput  string
	// StagesEvaluated counts QWM evaluations performed (cache misses × 2
	// directions); the incremental path keeps this small.
	StagesEvaluated int
}

// Analyze runs a full timing analysis: the netlist is partitioned into
// stages, stage delays are evaluated (or reused from the cache), and
// arrivals propagate from the primary inputs to the requested outputs.
func (a *Analyzer) Analyze(n *circuit.Netlist, primary map[string]Arrival, outputs []string) (*Result, error) {
	stages := circuit.ExtractStages(n, outputs)
	if len(stages) == 0 {
		return nil, fmt.Errorf("sta: no logic stages found")
	}

	// Net → producing stage, and stage → input nets.
	producer := map[string]*circuit.Stage{}
	for _, st := range stages {
		for _, o := range st.Outputs {
			producer[o] = st
		}
	}
	// Topological order over stages via DFS from outputs.
	order, err := topoOrder(stages, producer)
	if err != nil {
		return nil, err
	}

	res := &Result{Arrivals: map[string]Arrival{}}
	evalStart := a.evaluated
	pred := map[string]string{} // net -> worst predecessor net
	for net, ar := range primary {
		res.Arrivals[circuit.CanonName(net)] = ar
	}

	for _, st := range order {
		// Latest input arrivals for this stage. An input that rises makes
		// the pull-down conduct (output falls), and vice versa. The arriving
		// edge's slew shapes the stage's input ramp.
		latestRise, latestFall := 0.0, 0.0
		riseSlew, fallSlew := 0.0, 0.0
		riseFrom, fallFrom := "", ""
		for _, in := range st.Inputs {
			ar, ok := res.Arrivals[in]
			if !ok {
				// Unconstrained input: treat as arriving at t = 0.
				ar = Arrival{}
			}
			if ar.Rise >= latestRise {
				latestRise, riseSlew, riseFrom = ar.Rise, ar.RiseSlew, in
			}
			if ar.Fall >= latestFall {
				latestFall, fallSlew, fallFrom = ar.Fall, ar.FallSlew, in
			}
		}
		for _, out := range st.Outputs {
			timing, err := a.stageTiming(n, st, out, riseSlew, fallSlew)
			if err != nil {
				return nil, err
			}
			ar := res.Arrivals[out]
			if timing.fallOK {
				ar.Fall = latestRise + timing.fallDelay
				ar.FallSlew = timing.fallSlew
				pred[out+"~fall"] = riseFrom
			}
			if timing.riseOK {
				ar.Rise = latestFall + timing.riseDelay
				ar.RiseSlew = timing.riseSlew
				pred[out+"~rise"] = fallFrom
			}
			res.Arrivals[out] = ar
		}
	}

	// Worst requested output and its path.
	worst, worstNet, worstDir := -1.0, "", ""
	for _, o := range outputs {
		o = circuit.CanonName(o)
		ar, ok := res.Arrivals[o]
		if !ok {
			return nil, fmt.Errorf("sta: output %q has no arrival (not driven?)", o)
		}
		if ar.Fall > worst {
			worst, worstNet, worstDir = ar.Fall, o, "fall"
		}
		if ar.Rise > worst {
			worst, worstNet, worstDir = ar.Rise, o, "rise"
		}
	}
	res.WorstArrival = worst
	res.WorstOutput = worstNet
	res.StagesEvaluated = a.evaluated - evalStart
	// Trace the critical path back through alternating directions.
	net, dir := worstNet, worstDir
	for net != "" {
		res.CriticalPath = append(res.CriticalPath, net)
		p := pred[net+"~"+dir]
		if dir == "fall" {
			dir = "rise"
		} else {
			dir = "fall"
		}
		if p == net {
			break
		}
		net = p
	}
	return res, nil
}

// stageTiming returns (possibly cached) QWM delays for one stage output
// under the given input slews. Slews are bucketed to 5 ps so nearby values
// share a cache entry.
func (a *Analyzer) stageTiming(n *circuit.Netlist, st *circuit.Stage, out string, inRiseSlew, inFallSlew float64) (stageTiming, error) {
	key := fmt.Sprintf("%s|%d|%d", stageKey(st, out), slewBucket(inRiseSlew), slewBucket(inFallSlew))
	if t, ok := a.cache[key]; ok {
		return t, nil
	}
	var t stageTiming
	loads := a.fanoutLoads(n, st, out)

	fall, err := a.evalDirection(st, out, circuit.GroundNode, loads, inRiseSlew)
	if err == nil {
		t.fallDelay, t.fallSlew, t.fallOK = fall.delay, fall.slew, true
	}
	rise, err := a.evalDirection(st, out, circuit.SupplyNode, loads, inFallSlew)
	if err == nil {
		t.riseDelay, t.riseSlew, t.riseOK = rise.delay, rise.slew, true
	}
	if !t.fallOK && !t.riseOK {
		return t, fmt.Errorf("sta: stage %s output %q has neither pull-up nor pull-down path", st.Name, out)
	}
	a.cache[key] = t
	a.evaluated++
	return t, nil
}

func slewBucket(s float64) int {
	const pitch = 5e-12
	return int(s / pitch)
}

type dirResult struct{ delay, slew float64 }

// evalDirection evaluates the worst path to one rail with the canonical
// worst-case stimulus: the rail-side input switches at t = 0 — as an ideal
// step when inSlew is zero, otherwise as a ramp with the upstream stage's
// transition time — every other path input is held conducting, and the
// path nodes start precharged (discharge) or pre-discharged (charge).
func (a *Analyzer) evalDirection(st *circuit.Stage, out, rail string, loads map[string]float64, inSlew float64) (dirResult, error) {
	path, err := circuit.LongestPath(st, out, rail)
	if err != nil {
		return dirResult{}, err
	}
	vdd := a.Tech.VDD
	inputs := map[string]wave.Waveform{}
	onLevel, offLevel := vdd, 0.0
	if rail == circuit.SupplyNode {
		onLevel, offLevel = 0, vdd // PMOS conducts with a low gate
	}
	var sw wave.Waveform = wave.Step{At: 0, Low: offLevel, High: onLevel}
	tIn := 0.0
	if inSlew > 0 {
		// The 10–90 % slew spans 80 % of the swing; the full ramp is 1.25×.
		full := 1.25 * inSlew
		sw = wave.Ramp{T0: 0, T1: full, Low: offLevel, High: onLevel}
		tIn = full / 2
	}
	first := true
	for _, pe := range path.Elems {
		if pe.Edge.Kind == circuit.KindWire {
			continue
		}
		if first {
			inputs[pe.Edge.Gate] = sw
			first = false
			continue
		}
		if _, dup := inputs[pe.Edge.Gate]; !dup {
			inputs[pe.Edge.Gate] = wave.DC(onLevel)
		}
	}
	ch, err := qwm.Build(qwm.BuildInput{
		Tech: a.Tech, Lib: a.Lib, Stage: st, Path: path,
		Inputs: inputs, Loads: loads,
	})
	if err != nil {
		return dirResult{}, err
	}
	res, err := qwm.Evaluate(ch, a.Opts)
	if err != nil {
		return dirResult{}, err
	}
	d, err := res.Delay50(tIn, vdd)
	if err != nil {
		return dirResult{}, err
	}
	folded := res.Folded[len(res.Folded)-1]
	slew, _ := wave.Slew(folded, vdd, false)
	return dirResult{delay: d, slew: slew}, nil
}

// fanoutLoads sums the gate capacitance of every transistor the stage
// output drives plus explicit grounded capacitors on the net.
func (a *Analyzer) fanoutLoads(n *circuit.Netlist, st *circuit.Stage, out string) map[string]float64 {
	loads := map[string]float64{}
	for _, t := range n.Transistors {
		if t.Gate != out {
			continue
		}
		p := &a.Tech.N
		if t.Kind == circuit.KindPMOS {
			p = &a.Tech.P
		}
		loads[out] += p.GateCap(t.W, t.L)
	}
	for _, c := range n.Capacitors {
		if c.A == out && c.B == circuit.GroundNode {
			loads[out] += c.C
		}
		if c.B == out && c.A == circuit.GroundNode {
			loads[out] += c.C
		}
	}
	// Internal path nodes also carry their explicit caps.
	for _, c := range n.Capacitors {
		for _, nd := range st.Nodes {
			if nd == out {
				continue
			}
			if (c.A == nd && c.B == circuit.GroundNode) || (c.B == nd && c.A == circuit.GroundNode) {
				loads[nd] += c.C
			}
		}
	}
	return loads
}

// stageKey identifies a stage's timing-relevant content: its devices,
// geometry and connectivity, plus the observed output.
func stageKey(st *circuit.Stage, out string) string {
	key := out + "|"
	edges := make([]string, 0, len(st.Edges))
	for _, e := range st.Edges {
		edges = append(edges, fmt.Sprintf("%v:%s>%s@%s:%g:%g:%g", e.Kind, e.Src, e.Snk, e.Gate, e.W, e.L, e.R))
	}
	sort.Strings(edges)
	for _, e := range edges {
		key += e + ";"
	}
	return key
}

// topoOrder sorts stages so producers precede consumers.
func topoOrder(stages []*circuit.Stage, producer map[string]*circuit.Stage) ([]*circuit.Stage, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*circuit.Stage]int{}
	var order []*circuit.Stage
	var visit func(st *circuit.Stage) error
	visit = func(st *circuit.Stage) error {
		switch color[st] {
		case gray:
			return fmt.Errorf("sta: combinational loop through stage %s", st.Name)
		case black:
			return nil
		}
		color[st] = gray
		for _, in := range st.Inputs {
			if p, ok := producer[in]; ok && p != st {
				if err := visit(p); err != nil {
					return err
				}
			}
		}
		color[st] = black
		order = append(order, st)
		return nil
	}
	for _, st := range stages {
		if err := visit(st); err != nil {
			return nil, err
		}
	}
	return order, nil
}
