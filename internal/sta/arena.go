package sta

import (
	"bytes"
	"slices"
	"strconv"
	"sync"

	"qwm/internal/circuit"
)

// This file is the per-Analyze arena: a pooled scratch structure holding
// every map, slice and byte buffer the gather/levelize/apply machinery needs,
// so a warm Analyze (all cache hits) allocates almost nothing. The arena is
// strictly request-scoped — acquired at the top of AnalyzeContext, released
// (cleared of per-request pointers) when it returns — and pooled on the
// Analyzer, so concurrent Analyzes each get their own and steady-state reuse
// is allocation-free. Nothing reachable from a Result may point into the
// arena: Result.Arrivals, CriticalPath and the diagnostics maps are always
// freshly allocated.

// internTable deduplicates cache-key strings: the hot path builds keys into
// reusable byte buffers, and intern materializes a string only the first time
// a distinct key is seen. Lookups exploit the map[string(b)] no-allocation
// idiom. Entries live for the Analyzer's lifetime, exactly like the delay
// cache entries the keys index.
type internTable struct {
	mu sync.RWMutex
	m  map[string]string
}

func (t *internTable) intern(b []byte) string {
	t.mu.RLock()
	s, ok := t.m[string(b)]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	if t.m == nil {
		t.m = map[string]string{}
	}
	s, ok = t.m[string(b)]
	if !ok {
		s = string(b)
		t.m[s] = s
	}
	t.mu.Unlock()
	return s
}

// analyzeScratch is one request's arena. All fields are grow-only: maps are
// cleared (buckets retained) and slices re-sliced to length zero between
// requests, so capacity accumulates to the high-water mark and stays there.
type analyzeScratch struct {
	producer  map[string]*circuit.Stage
	predFall  map[string]string // net -> worst fall predecessor (a rising input)
	predRise  map[string]string
	classSeen map[string]bool
	ix        loadIndex

	// Levelization scratch (see levelize). seenStamp uses the monotonic
	// stamp-counter idiom: a per-stage "visited" mark is one int compare
	// instead of a fresh map per stage, and because stamp never resets,
	// stale values from earlier requests can never collide.
	idx       map[*circuit.Stage]int
	consumers [][]int
	indeg     []int
	seenStamp []int
	stamp     int
	cur, next []int
	levelBuf  []*circuit.Stage
	levels    [][]*circuit.Stage

	// Per-level slabs. evs and items are sized to the level's output count
	// up front so &evs[i] stays stable while the level is filled; workItem
	// slots keep their key buffers across levels and requests.
	ins   []stageInputs
	items []workItem
	evs   []outEval

	// Pooled per-output load maps, reused level over level (an output's map
	// is only read while its level is in flight).
	loadMaps []map[string]float64
	loadUsed int

	// Key-building buffers: keyBuf assembles content keys and raw bases,
	// segBuf/segOffs/segOrd hold the stage-edge segments being sorted, and
	// nodeBuf sorts load-map node names for the digest.
	keyBuf  []byte
	segBuf  []byte
	segOffs []int
	segOrd  []int
	nodeBuf []string
}

func (a *Analyzer) getScratch() *analyzeScratch {
	if s, ok := a.scratch.Get().(*analyzeScratch); ok && s != nil {
		return s
	}
	return &analyzeScratch{
		producer:  map[string]*circuit.Stage{},
		predFall:  map[string]string{},
		predRise:  map[string]string{},
		classSeen: map[string]bool{},
		idx:       map[*circuit.Stage]int{},
		ix: loadIndex{
			gateCap: map[string]float64{},
			nodeCap: map[string]float64{},
		},
	}
}

// putScratch clears every per-request pointer before pooling, so an idle
// Analyzer never pins a finished request's netlist, stages or results.
func (a *Analyzer) putScratch(s *analyzeScratch) {
	clear(s.producer)
	clear(s.predFall)
	clear(s.predRise)
	clear(s.classSeen)
	clear(s.idx)
	clear(s.ix.gateCap)
	clear(s.ix.nodeCap)
	for m := range s.loadMaps {
		clear(s.loadMaps[m])
	}
	s.loadUsed = 0
	clear(s.levelBuf)
	s.levelBuf = s.levelBuf[:0]
	clear(s.levels)
	s.levels = s.levels[:0]
	for i := range s.items {
		kb := s.items[i].keyBuf
		s.items[i] = workItem{keyBuf: kb[:0]}
	}
	s.items = s.items[:0]
	clear(s.evs)
	s.evs = s.evs[:0]
	s.ins = s.ins[:0]
	clear(s.nodeBuf)
	s.nodeBuf = s.nodeBuf[:0]
	a.scratch.Put(s)
}

// loadMap hands out a cleared pooled load map. resetLoadMaps begins reuse
// from the start of the pool; callers do so per level, since an output's map
// is dead once its level's apply phase completes.
func (s *analyzeScratch) loadMap() map[string]float64 {
	if s.loadUsed < len(s.loadMaps) {
		m := s.loadMaps[s.loadUsed]
		s.loadUsed++
		clear(m)
		return m
	}
	m := map[string]float64{}
	s.loadMaps = append(s.loadMaps, m)
	s.loadUsed++
	return m
}

func (s *analyzeScratch) resetLoadMaps() { s.loadUsed = 0 }

// grownInts returns b with length n, reusing its backing array when it fits.
// Contents are unspecified; callers that need zeroing do it themselves
// (seenStamp deliberately does NOT — see the stamp idiom above).
func grownInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

// levelize groups stages into dependency levels with Kahn's algorithm:
// level 0 holds stages with no in-stage producers, level k+1 holds stages
// whose producers all sit in levels ≤ k. Stages within a level are ordered
// by ascending ExtractStages index, so the schedule — and therefore the
// sequential apply order — is deterministic. A cycle in the stage graph is a
// combinational loop and is rejected. The returned level slices alias the
// scratch's backing array and are only valid until the next request.
func (s *analyzeScratch) levelize(stages []*circuit.Stage, producer map[string]*circuit.Stage) ([][]*circuit.Stage, error) {
	n := len(stages)
	for i, st := range stages {
		s.idx[st] = i
	}
	s.indeg = grownInts(s.indeg, n)
	clear(s.indeg)
	s.seenStamp = grownInts(s.seenStamp, n)
	if cap(s.consumers) < n {
		s.consumers = make([][]int, n)
	}
	s.consumers = s.consumers[:n]
	for i := range s.consumers {
		s.consumers[i] = s.consumers[i][:0]
	}
	for i, st := range stages {
		s.stamp++
		for _, in := range st.Inputs {
			p, ok := producer[in]
			if !ok || p == st {
				continue
			}
			j := s.idx[p]
			if s.seenStamp[j] == s.stamp {
				continue
			}
			s.seenStamp[j] = s.stamp
			s.consumers[j] = append(s.consumers[j], i)
			s.indeg[i]++
		}
	}
	cur, next := s.cur[:0], s.next[:0]
	for i := range stages {
		if s.indeg[i] == 0 {
			cur = append(cur, i)
		}
	}
	if cap(s.levelBuf) < n {
		s.levelBuf = make([]*circuit.Stage, 0, n)
	}
	buf := s.levelBuf[:0]
	levels := s.levels[:0]
	processed := 0
	for len(cur) > 0 {
		// Deterministic in-level order: ascending original index.
		slices.Sort(cur)
		start := len(buf)
		next = next[:0]
		for _, i := range cur {
			buf = append(buf, stages[i])
			processed++
			for _, c := range s.consumers[i] {
				if s.indeg[c]--; s.indeg[c] == 0 {
					next = append(next, c)
				}
			}
		}
		levels = append(levels, buf[start:len(buf):len(buf)])
		cur, next = next, cur
	}
	s.cur, s.next = cur, next
	s.levelBuf, s.levels = buf, levels
	if processed != n {
		for i := range stages {
			if s.indeg[i] > 0 {
				return nil, errLoop(stages[i].Name)
			}
		}
	}
	return levels, nil
}

// appendStageKey appends the stage-content key for (st, out): the observed
// output plus every edge's kind, connectivity, gate and geometry, sorted so
// edge declaration order drops out. Byte-identical to the historical
// fmt.Sprintf/sort.Strings formatting, without the per-edge allocations.
func (s *analyzeScratch) appendStageKey(b []byte, st *circuit.Stage, out string) []byte {
	b = append(b, out...)
	b = append(b, '|')
	seg := s.segBuf[:0]
	offs := s.segOffs[:0]
	for _, e := range st.Edges {
		offs = append(offs, len(seg))
		seg = appendEdgeKey(seg, e)
	}
	offs = append(offs, len(seg))
	s.segBuf, s.segOffs = seg, offs
	ne := len(st.Edges)
	ord := s.segOrd[:0]
	for i := 0; i < ne; i++ {
		ord = append(ord, i)
	}
	// Insertion sort: stages have a handful of edges, and the comparisons
	// are plain memcmp over the segment bytes.
	for i := 1; i < ne; i++ {
		for j := i; j > 0 && bytes.Compare(seg[offs[ord[j]]:offs[ord[j]+1]], seg[offs[ord[j-1]]:offs[ord[j-1]+1]]) < 0; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	s.segOrd = ord
	for _, i := range ord {
		b = append(b, seg[offs[i]:offs[i+1]]...)
		b = append(b, ';')
	}
	return b
}

// appendEdgeKey appends one edge in the exact historical format
// "%v:%s>%s@%s:%g:%g:%g" (strconv's shortest 'g' is what %g prints).
func appendEdgeKey(b []byte, e *circuit.StageEdge) []byte {
	b = append(b, e.Kind.String()...)
	b = append(b, ':')
	b = append(b, e.Src...)
	b = append(b, '>')
	b = append(b, e.Snk...)
	b = append(b, '@')
	b = append(b, e.Gate...)
	b = append(b, ':')
	b = strconv.AppendFloat(b, e.W, 'g', -1, 64)
	b = append(b, ':')
	b = strconv.AppendFloat(b, e.L, 'g', -1, 64)
	b = append(b, ':')
	b = strconv.AppendFloat(b, e.R, 'g', -1, 64)
	return b
}

// appendLoadDigest appends the canonical load digest: sorted node:cap pairs
// at 6 significant digits (see loadDigest for why the digest is part of the
// cache key at all).
func (s *analyzeScratch) appendLoadDigest(b []byte, loads map[string]float64) []byte {
	if len(loads) == 0 {
		return b
	}
	nodes := s.nodeBuf[:0]
	for n := range loads {
		nodes = append(nodes, n)
	}
	slices.Sort(nodes)
	s.nodeBuf = nodes
	for _, n := range nodes {
		b = append(b, n...)
		b = append(b, ':')
		b = strconv.AppendFloat(b, loads[n], 'e', 6, 64)
		b = append(b, ',')
	}
	return b
}
