package sta

import (
	"context"
	"fmt"
	"time"

	"qwm/internal/obs"
)

// This file is the engine side of the distributed-tracing layer: when a
// request carries a trace reference (env.trace.T != nil), the single-flight
// leader's persistent-tier consultation is unrolled into per-member probe
// spans — one per TierChain store, in probe order — and context-aware
// members (the remote-cache client) receive a child trace reference so their
// own attempt/peer spans land in the same tree. The untraced path dispatches
// straight to Tier.Get/Put with zero additional work.

// TierNamer optionally names a TierStore for trace spans ("memory",
// "remote", "disk"). Unnamed members fall back to their probe position.
type TierNamer interface {
	TierName() string
}

// TierGetter is the context-aware read a TierStore may optionally support.
// Traced probes prefer it, passing a context that carries the request's
// trace reference (see obs.TraceFrom) so the store can record child spans —
// the remote-cache client forwards it across the wire.
type TierGetter interface {
	GetCtx(ctx context.Context, key string) (TierEntry, bool)
}

// TierPutter is the context-aware write counterpart: traced write-behind
// passes the trace context so a remote member can stamp the outbound PUT
// with the request's traceparent (the put is asynchronous — no span is
// merged back, the header is for the peer's correlation only).
type TierPutter interface {
	PutCtx(ctx context.Context, key string, e TierEntry)
}

// tierName resolves a member's span name.
func tierName(s TierStore, pos int) string {
	if n, ok := s.(TierNamer); ok {
		return n.TierName()
	}
	return fmt.Sprintf("tier%d", pos)
}

// tierMembers returns the probe-ordered member list: the chain's stores, or
// the single store itself.
func (a *Analyzer) tierMembers() []TierStore {
	if c, ok := a.Tier.(*TierChain); ok {
		return c.Stores()
	}
	return []TierStore{a.Tier}
}

// tierGet is the leader's persistent-tier read. Untraced it is exactly
// a.Tier.Get; traced it probes the members itself (replicating the chain's
// promotion discipline) so each probe becomes one span. Span IDs embed a
// short content hash of the key: one eval may perform two lookups
// (slew-bucket interpolation), and sibling probe groups must not collide.
func (a *Analyzer) tierGet(env *evalEnv, it *workItem, key string) (TierEntry, bool) {
	if env.trace.T == nil {
		return a.Tier.Get(key)
	}
	evalID := fmt.Sprintf("%s.L%d.e%d", env.trace.Parent, it.level, it.idx)
	groupID := fmt.Sprintf("%s.k%08x", evalID, obs.KeyHash32(key))
	members := a.tierMembers()
	for j, st := range members {
		name := tierName(st, j)
		probeID := fmt.Sprintf("%s.t%d-%s", groupID, j, name)
		start := time.Now()
		var (
			e  TierEntry
			ok bool
		)
		if g, traced := st.(TierGetter); traced {
			ctx := obs.ContextWithTrace(context.Background(), obs.TraceRef{
				T: env.trace.T, Parent: probeID, Level: it.level, Item: it.idx,
			})
			e, ok = g.GetCtx(ctx, key)
		} else {
			e, ok = st.Get(key)
		}
		hit := ok && e.Valid()
		env.trace.T.Add(obs.ReqSpan{
			ID: probeID, Parent: evalID, Name: "tier " + name,
			Level: it.level, Item: it.idx,
			Start: start, Dur: time.Since(start),
			Attrs: map[string]any{"tier": name, "hit": hit},
		})
		if hit {
			for p := j - 1; p >= 0; p-- {
				members[p].Put(key, e)
			}
			return e, true
		}
	}
	return TierEntry{}, false
}

// tierPut is the leader's write-behind. Untraced it is exactly a.Tier.Put;
// traced it fans out itself so context-aware members see the trace context.
func (a *Analyzer) tierPut(env *evalEnv, it *workItem, key string, e TierEntry) {
	if env.trace.T == nil {
		a.Tier.Put(key, e)
		return
	}
	evalID := fmt.Sprintf("%s.L%d.e%d", env.trace.Parent, it.level, it.idx)
	putID := fmt.Sprintf("%s.k%08x.put", evalID, obs.KeyHash32(key))
	ctx := obs.ContextWithTrace(context.Background(), obs.TraceRef{
		T: env.trace.T, Parent: putID, Level: it.level, Item: it.idx,
	})
	for _, st := range a.tierMembers() {
		if p, traced := st.(TierPutter); traced {
			p.PutCtx(ctx, key, e)
		} else {
			st.Put(key, e)
		}
	}
}
