package sta

import (
	"sync"
	"sync/atomic"
)

// TierChain composes an ordered list of TierStores into one read-through /
// write-back-all store, replacing ad-hoc single-store wiring of the
// Config.Tier slot. The canonical fleet arrangement is
//
//	memory → remote → disk
//
// fastest first: Get probes tiers in order and, on a hit at tier i, writes
// the entry back into every EARLIER tier (promotion), so the next probe for
// the same key stops sooner — a disk hit on a warm replica is how the shared
// remote tier gets populated lazily, and a remote hit lands in the local
// memory tier so a flapping network is consulted once per key, not once per
// analysis. Put fans out to every tier (write-back-all); each tier keeps its
// own lossy/write-behind discipline, so a slow or dead member never blocks
// the caller beyond that member's own Put contract.
//
// Every member must uphold the TierStore contract (lossy, never wrong, safe
// for concurrent use); the chain adds no locking of its own.
type TierChain struct {
	stores []TierStore
}

// NewTierChain builds a chain over the given stores, fastest first. Nil
// members are skipped. Zero usable stores yield a nil TierStore (tiering
// disabled); exactly one yields that store unwrapped — the chain only exists
// when there is actual composition to do.
func NewTierChain(stores ...TierStore) TierStore {
	kept := make([]TierStore, 0, len(stores))
	for _, s := range stores {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &TierChain{stores: kept}
}

// Stores returns the chain's members in probe order (for introspection;
// callers must not mutate the returned slice).
func (c *TierChain) Stores() []TierStore { return c.stores }

// Get probes the tiers in order and promotes a hit into every earlier tier.
func (c *TierChain) Get(key string) (TierEntry, bool) {
	for i, s := range c.stores {
		if e, ok := s.Get(key); ok && e.Valid() {
			for j := i - 1; j >= 0; j-- {
				c.stores[j].Put(key, e)
			}
			return e, true
		}
	}
	return TierEntry{}, false
}

// Put writes the entry to every tier.
func (c *TierChain) Put(key string, e TierEntry) {
	for _, s := range c.stores {
		s.Put(key, e)
	}
}

// MemoryTier is a bounded in-process TierStore: a FIFO-evicting map used as
// the fastest member of a TierChain, capturing remote and disk hits so the
// slower tiers are consulted at most once per key per process. It is NOT the
// engine's single-flight delay cache — that sits above every tier and holds
// hydrated timings per analyzer; the MemoryTier is shared plumbing below it,
// useful exactly when entries flow in from elsewhere (a remote peer, a warm
// disk) and when the remote tier is flapping behind an open breaker.
type MemoryTier struct {
	capN int

	mu    sync.Mutex
	m     map[string]TierEntry
	order []string // insertion order of live keys, for FIFO eviction

	hits, misses, puts, evictions atomic.Int64
}

// NewMemoryTier creates a memory tier holding at most capN entries (0 or
// negative means the 4096 default).
func NewMemoryTier(capN int) *MemoryTier {
	if capN <= 0 {
		capN = 4096
	}
	return &MemoryTier{capN: capN, m: make(map[string]TierEntry, capN)}
}

// TierName implements the optional naming interface traced tier probes use.
func (t *MemoryTier) TierName() string { return "memory" }

// Get implements TierStore.
func (t *MemoryTier) Get(key string) (TierEntry, bool) {
	if t == nil {
		return TierEntry{}, false
	}
	t.mu.Lock()
	e, ok := t.m[key]
	t.mu.Unlock()
	if !ok {
		t.misses.Add(1)
		return TierEntry{}, false
	}
	t.hits.Add(1)
	return e, true
}

// Put implements TierStore: insertion evicts the oldest entries beyond the
// cap. Overwriting an existing key keeps its original eviction position.
func (t *MemoryTier) Put(key string, e TierEntry) {
	if t == nil {
		return
	}
	t.puts.Add(1)
	t.mu.Lock()
	if _, exists := t.m[key]; !exists {
		t.order = append(t.order, key)
	}
	t.m[key] = e
	var evicted int64
	for len(t.m) > t.capN && len(t.order) > 0 {
		victim := t.order[0]
		t.order = t.order[1:]
		if _, ok := t.m[victim]; ok {
			delete(t.m, victim)
			evicted++
		}
	}
	t.mu.Unlock()
	if evicted > 0 {
		t.evictions.Add(evicted)
	}
}

// MemoryTierStats is a snapshot of a MemoryTier's counters.
type MemoryTierStats struct {
	Hits, Misses, Puts, Evictions int64
	Entries                       int
}

// Stats snapshots the tier's counters.
func (t *MemoryTier) Stats() MemoryTierStats {
	if t == nil {
		return MemoryTierStats{}
	}
	t.mu.Lock()
	n := len(t.m)
	t.mu.Unlock()
	return MemoryTierStats{
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Puts:      t.puts.Load(),
		Evictions: t.evictions.Load(),
		Entries:   n,
	}
}
