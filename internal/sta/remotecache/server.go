package remotecache

import (
	"encoding/base64"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"qwm/internal/obs"
	"qwm/internal/sta"
	"qwm/internal/sta/diskcache"
)

// tierPathPrefix is the URL prefix of the tier API. One cache key lives at
//
//	/tier/<base64url(signature)>/<base64url(key)>
//
// with both path segments base64.RawURLEncoding-encoded: signatures and
// cache keys are structured strings full of separators, and encoding keeps
// the URL router trivial and proxy-safe. GET returns 200 with a
// CRC32-Castagnoli-framed record (the diskcache on-disk format, see
// diskcache.EncodeRecord) or 404 for a miss; PUT accepts the same frame and
// answers 204, or 400 when the frame fails the checksum, embeds a different
// key than the URL, or decodes to an invalid entry — a corrupt upload is
// counted and discarded, never stored.
const tierPathPrefix = "/tier/"

// contentType labels tier frames in transit.
const contentType = "application/x-qwm-tier-record"

// maxRequestBytes bounds one PUT body, mirroring maxResponseBytes.
const maxRequestBytes = maxResponseBytes

// ServerStats is a snapshot of a Server's counters.
type ServerStats struct {
	Gets, Hits, Misses int64
	Puts, Stored       int64
	Corrupt            int64 // PUT frames rejected (CRC, key mismatch, invalid entry)
	BadRequests        int64 // malformed paths / methods
}

// Server exposes TierStores over HTTP so a fleet of replicas can share one
// warm delay cache. It holds no storage of its own: StoreFor maps a result
// signature to the backing TierStore (a diskcache namespace, a MemoryTier, a
// chain — anything honouring the TierStore contract). Mount Handler() under
// obs.Server.Extra or any mux.
type Server struct {
	// StoreFor resolves the backing store for one result signature,
	// typically creating it on first use. An error refuses the namespace
	// (500); a nil store with nil error serves misses and drops puts.
	StoreFor func(signature string) (sta.TierStore, error)

	// Name identifies this replica in peer spans (the Process field of the
	// Qwm-Span a traced request receives back). "" reads as "cache-plane".
	Name string

	gets, hits, misses, puts, stored, corrupt, badreq cpair
	mGets, mHits, mMisses, mPuts, mStored, mCorrupt,
	mBadreq *obs.Counter
}

// NewServer builds a Server over the given namespace resolver. metrics may
// be nil.
func NewServer(storeFor func(signature string) (sta.TierStore, error), metrics *obs.Registry) *Server {
	s := &Server{StoreFor: storeFor}
	s.mGets = metrics.Counter("sta/remote/server/gets")
	s.mHits = metrics.Counter("sta/remote/server/hits")
	s.mMisses = metrics.Counter("sta/remote/server/misses")
	s.mPuts = metrics.Counter("sta/remote/server/puts")
	s.mStored = metrics.Counter("sta/remote/server/stored")
	s.mCorrupt = metrics.Counter("sta/remote/server/corrupt")
	s.mBadreq = metrics.Counter("sta/remote/server/badrequests")
	return s
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Gets:        s.gets.value(),
		Hits:        s.hits.value(),
		Misses:      s.misses.value(),
		Puts:        s.puts.value(),
		Stored:      s.stored.value(),
		Corrupt:     s.corrupt.value(),
		BadRequests: s.badreq.value(),
	}
}

// Handler returns the http.Handler serving the tier API. Mount it at
// tierPathPrefix ("/tier/").
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serve) }

// parseTierPath splits /tier/<b64sig>/<b64key> into the decoded signature
// and key.
func parseTierPath(path string) (sig, key string, ok bool) {
	rest, found := strings.CutPrefix(path, tierPathPrefix)
	if !found {
		return "", "", false
	}
	encSig, encKey, found := strings.Cut(rest, "/")
	if !found || encSig == "" || encKey == "" || strings.Contains(encKey, "/") {
		return "", "", false
	}
	sigB, err := base64.RawURLEncoding.DecodeString(encSig)
	if err != nil {
		return "", "", false
	}
	keyB, err := base64.RawURLEncoding.DecodeString(encKey)
	if err != nil {
		return "", "", false
	}
	return string(sigB), string(keyB), true
}

func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	sig, key, ok := parseTierPath(r.URL.Path)
	if !ok {
		s.badreq.add(1, s.mBadreq)
		http.Error(w, "remotecache: malformed tier path", http.StatusBadRequest)
		return
	}
	store, err := s.StoreFor(sig)
	if err != nil {
		http.Error(w, "remotecache: namespace unavailable", http.StatusInternalServerError)
		return
	}
	// A valid traceparent marks the request as traced: the handler answers
	// with one encoded child span in the Qwm-Span header (set before any
	// body write), which the calling replica merges into its live trace.
	traced := false
	if tp := r.Header.Get(traceparentHeader); tp != "" {
		_, _, traced = obs.ParseTraceparent(tp)
	}
	switch r.Method {
	case http.MethodGet:
		s.handleGet(w, store, key, traced)
	case http.MethodPut:
		s.handlePut(w, r, store, key, traced)
	default:
		s.badreq.add(1, s.mBadreq)
		w.Header().Set("Allow", "GET, PUT")
		http.Error(w, "remotecache: method not allowed", http.StatusMethodNotAllowed)
	}
}

// setPeerSpan encodes the replica-side span into the response header. It must
// run before the first status or body write.
func (s *Server) setPeerSpan(w http.ResponseWriter, name string, dur time.Duration, op, outcome string) {
	proc := s.Name
	if proc == "" {
		proc = "cache-plane"
	}
	v := obs.EncodePeerSpan(obs.PeerSpan{
		Name:    name,
		Process: proc,
		DurUS:   float64(dur) / float64(time.Microsecond),
		Attrs:   map[string]string{"op": op, "outcome": outcome},
	})
	if v != "" {
		w.Header().Set(peerSpanHeader, v)
	}
}

func (s *Server) handleGet(w http.ResponseWriter, store sta.TierStore, key string, traced bool) {
	s.gets.add(1, s.mGets)
	start := time.Now()
	var (
		e  sta.TierEntry
		ok bool
	)
	if store != nil {
		e, ok = store.Get(key)
	}
	hit := ok && e.Valid()
	if traced {
		outcome := "miss"
		if hit {
			outcome = "hit"
		}
		s.setPeerSpan(w, "cache-plane get", time.Since(start), "get", outcome)
	}
	if !hit {
		s.misses.add(1, s.mMisses)
		http.Error(w, "miss", http.StatusNotFound)
		return
	}
	s.hits.add(1, s.mHits)
	w.Header().Set("Content-Type", contentType)
	w.Write(diskcache.EncodeRecord(key, diskcache.EncodeEntry(e)))
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request, store sta.TierStore, key string, traced bool) {
	s.puts.add(1, s.mPuts)
	start := time.Now()
	fail := func(msg string) {
		s.corrupt.add(1, s.mCorrupt)
		if traced {
			s.setPeerSpan(w, "cache-plane put", time.Since(start), "put", "corrupt")
		}
		http.Error(w, msg, http.StatusBadRequest)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil || len(body) > maxRequestBytes {
		fail("remotecache: unreadable or oversized frame")
		return
	}
	// The server re-runs the client's own end-to-end checks before storing:
	// CRC over the frame, URL key == embedded key, decodable and valid
	// entry. A record that fails any of them is counted and dropped — the
	// shared tier must never launder a corrupt frame into a durable one.
	gotKey, val, err := diskcache.DecodeRecord(body)
	if err != nil || gotKey != key {
		fail("remotecache: corrupt frame")
		return
	}
	e, err := diskcache.DecodeEntry(val)
	if err != nil || !e.Valid() {
		fail("remotecache: invalid entry")
		return
	}
	outcome := "dropped"
	if store != nil {
		store.Put(key, e)
		s.stored.add(1, s.mStored)
		outcome = "stored"
	}
	if traced {
		s.setPeerSpan(w, "cache-plane put", time.Since(start), "put", outcome)
	}
	w.WriteHeader(http.StatusNoContent)
}

// MemoryStores returns a StoreFor resolver backed by per-signature
// MemoryTiers of the given capacity — the simplest shared-tier deployment
// (one cache pod, no disk), and the rig the smoke tests use.
func MemoryStores(capPerSig int) func(signature string) (sta.TierStore, error) {
	var mu sync.Mutex
	stores := map[string]*sta.MemoryTier{}
	return func(signature string) (sta.TierStore, error) {
		mu.Lock()
		defer mu.Unlock()
		st, ok := stores[signature]
		if !ok {
			st = sta.NewMemoryTier(capPerSig)
			stores[signature] = st
		}
		return st, nil
	}
}
