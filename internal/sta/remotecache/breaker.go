package remotecache

import (
	"sync"
	"sync/atomic"
	"time"

	"qwm/internal/obs"
)

// BreakerState enumerates the circuit breaker's three states.
type BreakerState int32

const (
	// BreakerClosed: requests flow normally; consecutive failures are
	// counted and trip the breaker at the threshold.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: exactly one probe request is in flight; its outcome
	// decides between Closed (success) and Open (failure).
	BreakerHalfOpen
	// BreakerOpen: requests are suppressed without touching the network —
	// each costs one atomic load plus counter bookkeeping, never a timeout.
	BreakerOpen
)

// String returns the canonical state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// breaker is a three-state circuit breaker with DETERMINISTIC, count-based
// probing: it opens after `threshold` consecutive failures, and while open
// every `probeEvery`-th suppressed operation is promoted to a half-open
// probe. A wall-clock cooldown can additionally force a probe (for
// deployments where traffic may stop entirely), but because the count-based
// trigger dominates under steady traffic, a fixed request sequence produces
// a fixed state trajectory — which is what lets verify -remote assert exact
// transition points and exact network-attempt counts against a dead peer.
//
// Successes and failures are judged by the CALLER: a transport-level round
// trip that completes (including a 404 miss) is a success; timeouts,
// connection errors and 5xx responses are failures. Data corruption is
// deliberately breaker-neutral — a corrupt frame is a data-plane problem the
// CRC already converts into a miss, and opening the breaker for it would let
// one bad record blind the tier for everyone.
type breaker struct {
	threshold  int
	probeEvery int64
	cooldown   time.Duration
	now        func() time.Time

	state atomic.Int32 // BreakerState; atomic so the closed fast path is lock-free

	mu          sync.Mutex
	consecFails int
	skips       int64 // suppressed ops since the breaker opened / last probe
	openedAt    time.Time

	// Local counters mirrored into the (possibly nil) registry, so Stats
	// works without one — the diskcache counter-pair idiom.
	opens, probes cpair

	gauge   *obs.Gauge   // sta/remote/breaker_state (0 closed, 1 half-open, 2 open)
	mOpens  *obs.Counter // sta/remote/breaker_opens (every transition to Open)
	mProbes *obs.Counter // sta/remote/probes
}

func newBreaker(threshold int, probeEvery int64, cooldown time.Duration, r *obs.Registry) *breaker {
	b := &breaker{
		threshold:  threshold,
		probeEvery: probeEvery,
		cooldown:   cooldown,
		now:        time.Now,
		gauge:      r.Gauge("sta/remote/breaker_state"),
		mOpens:     r.Counter("sta/remote/breaker_opens"),
		mProbes:    r.Counter("sta/remote/probes"),
	}
	return b
}

func (b *breaker) setState(s BreakerState) {
	b.state.Store(int32(s))
	b.gauge.Set(int64(s))
}

// State returns the current state (lock-free).
func (b *breaker) State() BreakerState { return BreakerState(b.state.Load()) }

// allow decides whether an operation may reach the network. probe is true
// when the operation was promoted to a half-open probe; the caller MUST
// report the outcome via success(probe) or failure(probe).
func (b *breaker) allow() (proceed, probe bool) {
	if BreakerState(b.state.Load()) == BreakerClosed {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerClosed: // raced with a success; proceed normally
		return true, false
	case BreakerHalfOpen: // a probe is already in flight
		b.skips++
		return false, false
	}
	// Open: suppress, unless this op is promoted to a probe.
	b.skips++
	if (b.probeEvery > 0 && b.skips >= b.probeEvery) ||
		(b.cooldown > 0 && b.now().Sub(b.openedAt) >= b.cooldown) {
		b.skips = 0
		b.setState(BreakerHalfOpen)
		b.probes.add(1, b.mProbes)
		return true, true
	}
	return false, false
}

// success records a completed round trip. Any success closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	if BreakerState(b.state.Load()) != BreakerClosed {
		b.skips = 0
		b.setState(BreakerClosed)
	}
}

// failure records a failed round trip. A failed probe re-opens immediately;
// accumulated failures while closed open at the threshold.
func (b *breaker) failure(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe || BreakerState(b.state.Load()) == BreakerHalfOpen {
		b.openedAt = b.now()
		b.skips = 0
		b.setState(BreakerOpen)
		b.opens.add(1, b.mOpens)
		return
	}
	b.consecFails++
	if b.consecFails >= b.threshold && BreakerState(b.state.Load()) == BreakerClosed {
		b.consecFails = 0
		b.openedAt = b.now()
		b.skips = 0
		b.setState(BreakerOpen)
		b.opens.add(1, b.mOpens)
	}
}
