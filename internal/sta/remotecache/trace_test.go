package remotecache_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"qwm/internal/obs"
	"qwm/internal/sta"
	"qwm/internal/sta/remotecache"
)

// tracedCtx builds a context carrying a trace ref parented under probeID.
func tracedCtx(at *obs.ActiveTrace, probeID string) context.Context {
	return obs.ContextWithTrace(context.Background(),
		obs.TraceRef{T: at, Parent: probeID, Level: 0, Item: 0})
}

// TestTracedGetMergesPeerSpan pins the client half of the cross-replica
// trace: a traced GetCtx records an attempt span with the outcome, and the
// peer's Qwm-Span response header becomes a child span carrying the peer's
// replica name.
func TestTracedGetMergesPeerSpan(t *testing.T) {
	base, srv := startTier(t)
	srv.Name = "peer-1"
	c := remotecache.New(base, "sig", quick())
	defer c.Close()
	e := sta.TierEntry{Delay: 1e-10, Slew: 2e-11, OK: true, Tier: uint8(sta.TierQWM)}

	at := obs.NewActiveTrace("")
	// Traced miss, then a traced put, then a traced hit — distinct parents
	// so the three operations' spans are distinguishable.
	if _, ok := c.GetCtx(tracedCtx(at, "p.miss"), "k1"); ok {
		t.Fatal("cold GetCtx hit")
	}
	c.PutCtx(tracedCtx(at, "p"), "k1", e)
	c.Flush()
	got, ok := c.GetCtx(tracedCtx(at, "p.hit"), "k1")
	if !ok || got != e {
		t.Fatalf("traced round trip = %+v, %v", got, ok)
	}

	rt := at.Finish("test", 200, time.Millisecond)
	spans := map[string]obs.ReqSpan{}
	for _, s := range rt.Spans {
		spans[s.ID] = s
	}
	miss, ok := spans["p.miss.a0"]
	if !ok || miss.Name != "remote get" || miss.Attrs["outcome"] != "miss" {
		t.Errorf("miss attempt span wrong: %+v (have %v)", miss, keysOf(spans))
	}
	hit, ok := spans["p.hit.a0"]
	if !ok || hit.Attrs["outcome"] != "hit" {
		t.Errorf("hit attempt span wrong: %+v", hit)
	}
	for _, id := range []string{"p.miss.a0.peer", "p.hit.a0.peer"} {
		peer, ok := spans[id]
		if !ok {
			t.Errorf("missing peer span %s", id)
			continue
		}
		if peer.Process != "peer-1" {
			t.Errorf("peer span %s process %q, want peer-1", id, peer.Process)
		}
		if peer.Parent != strings.TrimSuffix(id, ".peer") {
			t.Errorf("peer span %s parented under %q", id, peer.Parent)
		}
	}
}

func keysOf(m map[string]obs.ReqSpan) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTracedKillMidRequest drives traced gets against a peer that dies
// mid-sequence: failed attempts and breaker fast-fails must surface as spans
// (outcome error / breaker-open), the client must keep degrading to misses,
// and the whole rig — client, recorder, server — must unwind without leaking
// goroutines. The remote-smoke matrix runs this under -race.
func TestTracedKillMidRequest(t *testing.T) {
	before := runtime.NumGoroutine()
	fl := obs.NewFlightRecorder()

	func() {
		srv := remotecache.NewServer(remotecache.MemoryStores(0), nil)
		srv.Name = "peer-1"
		hs := httptest.NewServer(srv.Handler())
		opts := quick()
		opts.Timeout = 500 * time.Millisecond
		c := remotecache.New(hs.URL, "sig", opts)
		defer c.Close()
		e := sta.TierEntry{Delay: 1e-10, OK: true}

		at := obs.NewActiveTrace("")
		c.PutCtx(tracedCtx(at, "p"), "k", e)
		c.Flush()
		if _, ok := c.GetCtx(tracedCtx(at, "p.warm"), "k"); !ok {
			t.Fatal("warm get missed")
		}

		// Kill the peer. Traced gets must degrade to misses, recording the
		// failure; threshold 3 opens the breaker, after which fast-fails are
		// traced too — with zero network traffic.
		hs.CloseClientConnections()
		hs.Close()
		var errSpans, fastFails int
		for i := 0; i < 4; i++ {
			if _, ok := c.GetCtx(tracedCtx(at, fmt.Sprintf("p.dead%d", i)), "k"); ok {
				t.Fatalf("get %d hit a dead peer", i)
			}
		}
		rt := at.Finish("test", 200, time.Millisecond)
		for _, s := range rt.Spans {
			switch s.Attrs["outcome"] {
			case "error":
				errSpans++
			case "breaker-open":
				fastFails++
			}
		}
		if errSpans != 3 || fastFails != 1 {
			t.Errorf("dead-peer spans: %d errors, %d breaker-open; want 3 and 1 (%d spans total)",
				errSpans, fastFails, len(rt.Spans))
		}
		fl.Record(rt)
		fl.Flush()
		if fl.Get(rt.TraceID) == nil {
			t.Error("flight recorder lost the degraded trace")
		}
	}()

	fl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
