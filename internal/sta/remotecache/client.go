// Package remotecache is the replica-shared network tier of the delay cache:
// an HTTP server that exposes any sta.TierStore (typically one replica's
// diskcache namespace) to the fleet, and a client TierStore that consults it
// over the network — wrapped in a full fault-tolerance envelope, because a
// network dependency in the analysis hot path is only shippable if a flaky,
// slow or partitioned peer can never fail an analysis, slow it down
// unboundedly, or corrupt a result.
//
// The envelope, inside out:
//
//   - Per-attempt deadlines: every round trip runs under Options.Timeout;
//     a hung peer costs a bounded wait, never a stuck worker.
//   - Bounded retries with exponential backoff and deterministic jitter
//     (hashed from the cache key and attempt number, so two replicas never
//     synchronize their retry storms yet a fixed workload replays exactly).
//   - A three-state circuit breaker (closed → open on consecutive-failure
//     threshold → half-open probe): once a peer is declared dead, further
//     Gets cost one atomic load and are counted misses; a deterministic
//     probe schedule rediscovers recovery. See breaker.go.
//   - Write-behind Puts through a bounded queue with drop-on-full,
//     mirroring diskcache: the engine never waits on the network to store.
//   - End-to-end CRC: responses carry the same CRC32-Castagnoli-framed
//     records diskcache appends to disk, re-verified (checksum, embedded
//     key, entry validity) on every Get — wire corruption is a counted
//     miss, never wrong data.
//
// Failure of any kind degrades to a miss; the engine re-evaluates. The tier
// can therefore be composed under sta.TierChain (memory → remote → disk)
// without weakening any of the engine's determinism guarantees.
package remotecache

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"qwm/internal/faultinject"
	"qwm/internal/obs"
	"qwm/internal/sta"
	"qwm/internal/sta/diskcache"
)

// Options tunes a Client. The zero value is production-usable: 250 ms
// per-attempt deadline, 2 retries with 20 ms base backoff, breaker opening
// after 5 consecutive failures with a probe every 100 suppressed ops or
// after 1 s, 1024-entry write-behind queue.
type Options struct {
	// Timeout is the per-attempt deadline for one HTTP round trip.
	// 0 means 250 ms.
	Timeout time.Duration
	// Retries is the number of EXTRA Get attempts after the first fails at
	// the transport level (a 404 miss is a completed round trip, never
	// retried). 0 means 2; negative means none.
	Retries int
	// Backoff is the base delay before the first retry, doubling per
	// attempt, plus a deterministic jitter in [0, Backoff) hashed from the
	// key and attempt. 0 means 20 ms.
	Backoff time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// breaker. 0 means 5.
	BreakerThreshold int
	// BreakerProbeEvery promotes every Nth suppressed operation to a
	// half-open probe while the breaker is open — the deterministic,
	// count-based probe schedule. 0 means 100; negative disables (probes
	// then fire on the cooldown alone).
	BreakerProbeEvery int64
	// BreakerCooldown additionally forces a probe once this much wall time
	// has passed since the breaker opened, covering idle periods. 0 means
	// 1 s; negative disables (fully deterministic count-based probing).
	BreakerCooldown time.Duration
	// QueueLen bounds the write-behind Put queue; a full queue drops the
	// put (counted). 0 means 1024.
	QueueLen int
	// HTTPClient overrides the transport (tests inject failures here).
	// Its Timeout is ignored; per-attempt deadlines come from Timeout.
	HTTPClient *http.Client
	// Metrics, when set, receives the sta/remote/* counters and the
	// breaker-state gauge.
	Metrics *obs.Registry
	// Fault, when set, arms the network fault classes (net-latency,
	// net-error, net-corrupt), keyed by cache key so injected weather is
	// schedule-independent. Chaos rigs only.
	Fault *faultinject.Injector
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 250 * time.Millisecond
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 20 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerProbeEvery == 0 {
		o.BreakerProbeEvery = 100
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = time.Second
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	return o
}

// maxResponseBytes bounds one GET response body: a frame holding a cache key
// and an encoded TierEntry is a few hundred bytes; anything past the disk
// format's own record bounds is garbage.
const maxResponseBytes = 4 << 20

// Stats is a snapshot of a client's counters.
type Stats struct {
	Hits, Misses int64 // Get outcomes (every non-hit path is a miss)
	Puts         int64 // records durably sent (2xx acknowledged)
	Dropped      int64 // puts discarded: full queue, open breaker, send failure
	Retries      int64 // extra Get attempts after transport failures
	Timeouts     int64 // attempts that died on the per-attempt deadline
	Corrupt      int64 // CRC / frame / validity failures served as misses
	FastFails    int64 // Gets suppressed by the open breaker (no network)
	BreakerOpens int64 // transitions into the open state

	BreakerState string // current state name
}

// HitRate returns hits / (hits + misses), 0 when idle.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

type cpair struct{ c obs.Counter }

func (p *cpair) add(n int64, m *obs.Counter) { p.c.Add(n); m.Add(n) }
func (p *cpair) value() int64                { return p.c.Value() }

type putReq struct {
	key string
	rec []byte
	tp  string        // traceparent header for the async PUT ("" untraced)
	ack chan struct{} // Flush barrier when non-nil; carries no data
}

// Trace propagation headers: the client stamps outbound requests with the
// W3C-style traceparent, and the peer's cache plane answers with one encoded
// child span (see obs.PeerSpan) the client re-parents into the live trace.
const (
	traceparentHeader = "Traceparent"
	peerSpanHeader    = "Qwm-Span"
)

// Client is a fault-tolerant remote TierStore bound to one (server, result
// signature) pair. It satisfies sta.TierStore; a nil *Client is a valid
// no-op tier. Create with New, stop with Close.
type Client struct {
	base string // server base URL, no trailing slash
	sig  string
	path string // precomputed "/tier/<b64sig>/"
	opts Options
	http *http.Client
	br   *breaker

	queue      chan putReq
	done       chan struct{}
	writerDone chan struct{}
	closed     chan struct{}

	hits, misses, puts, dropped, retriesC, timeouts, corrupt, fastfails cpair
	mHits, mMisses, mPuts, mDropped, mRetries, mTimeouts, mCorrupt,
	mFastfails *obs.Counter
}

// New creates a client for the tier namespace `signature` on the server at
// baseURL (e.g. "http://cache-0:8081"). The signature must be the owning
// analyzer's sta.Config.Signature(): the server namespaces stores by it, so
// two configurations can never alias each other's entries.
func New(baseURL, signature string, opts Options) *Client {
	opts = opts.withDefaults()
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		sig:        signature,
		path:       tierPathPrefix + base64.RawURLEncoding.EncodeToString([]byte(signature)) + "/",
		opts:       opts,
		http:       opts.HTTPClient,
		br:         newBreaker(opts.BreakerThreshold, opts.BreakerProbeEvery, opts.BreakerCooldown, opts.Metrics),
		queue:      make(chan putReq, opts.QueueLen),
		done:       make(chan struct{}),
		writerDone: make(chan struct{}),
		closed:     make(chan struct{}),
	}
	r := opts.Metrics
	c.mHits = r.Counter("sta/remote/hits")
	c.mMisses = r.Counter("sta/remote/misses")
	c.mPuts = r.Counter("sta/remote/puts")
	c.mDropped = r.Counter("sta/remote/dropped")
	c.mRetries = r.Counter("sta/remote/retries")
	c.mTimeouts = r.Counter("sta/remote/timeouts")
	c.mCorrupt = r.Counter("sta/remote/corrupt")
	c.mFastfails = r.Counter("sta/remote/fastfails")
	go c.writer()
	return c
}

// keyURL renders the GET/PUT URL for one cache key.
func (c *Client) keyURL(key string) string {
	return c.base + c.path + base64.RawURLEncoding.EncodeToString([]byte(key))
}

// BreakerState returns the breaker's current state.
func (c *Client) BreakerState() BreakerState {
	if c == nil {
		return BreakerClosed
	}
	return c.br.State()
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:         c.hits.value(),
		Misses:       c.misses.value(),
		Puts:         c.puts.value(),
		Dropped:      c.dropped.value(),
		Retries:      c.retriesC.value(),
		Timeouts:     c.timeouts.value(),
		Corrupt:      c.corrupt.value(),
		FastFails:    c.fastfails.value(),
		BreakerOpens: c.br.opens.value(),
		BreakerState: c.br.State().String(),
	}
}

// TierName implements the optional naming interface traced tier probes use.
func (c *Client) TierName() string { return "remote" }

// Get implements sta.TierStore: a read-through probe whose every failure
// mode — suppressed by the breaker, timed out, transport error, corrupt
// frame — is a miss, never an error.
func (c *Client) Get(key string) (sta.TierEntry, bool) {
	return c.getTraced(key, obs.TraceRef{})
}

// GetCtx is the context-aware Get traced tier probes prefer: when the context
// carries a trace reference, every network attempt becomes a child span, the
// outbound request is stamped with the traceparent header, and a peer-recorded
// span returned in the response header is merged into the same trace.
// Fault-tolerance behaviour is identical to Get.
func (c *Client) GetCtx(ctx context.Context, key string) (sta.TierEntry, bool) {
	ref, _ := obs.TraceFrom(ctx)
	return c.getTraced(key, ref)
}

func (c *Client) getTraced(key string, ref obs.TraceRef) (sta.TierEntry, bool) {
	if c == nil {
		return sta.TierEntry{}, false
	}
	proceed, probe := c.br.allow()
	if !proceed {
		c.fastfails.add(1, c.mFastfails)
		c.misses.add(1, c.mMisses)
		if ref.T != nil {
			// The breaker suppressed the probe entirely; record a zero-cost
			// span so the trace shows WHY the remote tier went unconsulted.
			ref.T.Add(obs.ReqSpan{
				ID: ref.Parent + ".a0", Parent: ref.Parent, Name: "remote get",
				Level: ref.Level, Item: ref.Item, Start: time.Now(),
				Attrs: map[string]any{"attempt": 0, "outcome": "breaker-open"},
			})
		}
		return sta.TierEntry{}, false
	}
	e, ok, err := c.fetch(key, ref)
	if err != nil {
		c.br.failure(probe)
		c.misses.add(1, c.mMisses)
		return sta.TierEntry{}, false
	}
	c.br.success()
	if !ok {
		c.misses.add(1, c.mMisses)
		return sta.TierEntry{}, false
	}
	c.hits.add(1, c.mHits)
	return e, true
}

// errInjected marks a fault-injected transport failure.
var errInjected = errors.New("remotecache: injected network error")

// fetch runs the bounded-retry GET loop for one key. The returned error is
// non-nil only for transport-level failure of EVERY attempt; a completed
// round trip that misses (404) or decodes badly (corrupt ⇒ miss) is err ==
// nil. Corruption is deliberately not retried: the frame made it across the
// transport, and hammering the peer for a bad record would amplify exactly
// the failure the CRC already contained.
func (c *Client) fetch(key string, ref obs.TraceRef) (sta.TierEntry, bool, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		e, ok, err := c.attempt(key, ref, attempt)
		if err == nil {
			return e, ok, nil
		}
		lastErr = err
		if attempt >= c.opts.Retries {
			return sta.TierEntry{}, false, lastErr
		}
		c.retriesC.add(1, c.mRetries)
		time.Sleep(c.backoff(key, attempt))
	}
}

// backoff computes the sleep before retry `attempt`: base << attempt plus a
// deterministic jitter in [0, base) hashed from (key, attempt) — replicas
// de-synchronize (different keys, different phases) while a fixed workload
// replays the exact same waits.
func (c *Client) backoff(key string, attempt int) time.Duration {
	d := c.opts.Backoff << uint(attempt)
	const maxBackoff = 2 * time.Second
	if d > maxBackoff {
		d = maxBackoff
	}
	return d + time.Duration(hash64(key, uint64(attempt))%uint64(c.opts.Backoff))
}

// hash64 is FNV-1a over key ⊕ salt with a splitmix64 finalizer (the
// faultinject mixing recipe) — allocation-free deterministic jitter.
func hash64(key string, salt uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (salt >> (8 * i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// attempt performs one deadline-bounded round trip, recording it as a span
// when the request is traced: the outbound GET carries the traceparent for
// the attempt's semantic span ID ("<probe>.a<n>"), and a peer span returned
// in the response header is re-parented under the attempt.
func (c *Client) attempt(key string, ref obs.TraceRef, n int) (sta.TierEntry, bool, error) {
	if ref.T == nil {
		e, ok, _, err := c.roundTrip(key, "")
		return e, ok, err
	}
	attID := fmt.Sprintf("%s.a%d", ref.Parent, n)
	start := time.Now()
	e, ok, peer, err := c.roundTrip(key, obs.FormatTraceparent(ref.T.TraceID, attID))
	outcome := "miss"
	switch {
	case err != nil:
		outcome = "error"
	case ok:
		outcome = "hit"
	}
	ref.T.Add(obs.ReqSpan{
		ID: attID, Parent: ref.Parent, Name: "remote get",
		Level: ref.Level, Item: ref.Item,
		Start: start, Dur: time.Since(start),
		Attrs: map[string]any{"attempt": n, "outcome": outcome},
	})
	if ps, good := obs.DecodePeerSpan(peer); good {
		attrs := make(map[string]any, len(ps.Attrs))
		for k, v := range ps.Attrs {
			attrs[k] = v
		}
		ref.T.Add(obs.ReqSpan{
			ID: attID + ".peer", Parent: attID,
			Name: ps.Name, Process: ps.Process,
			Level: ref.Level, Item: ref.Item,
			Start: start, Dur: time.Duration(ps.DurUS * float64(time.Microsecond)),
			Attrs: attrs,
		})
	}
	return e, ok, err
}

// roundTrip is one raw HTTP exchange. Error return means transport failure
// (retryable); (zero, false, nil) is a definitive miss. peerSpan is the
// encoded Qwm-Span response header, "" when absent.
func (c *Client) roundTrip(key, traceparent string) (_ sta.TierEntry, _ bool, peerSpan string, _ error) {
	fault := c.opts.Fault
	// Fault site net-latency: a slow peer. Pure latency — the request still
	// completes, and results must be bit-for-bit unaffected.
	fault.Stall(faultinject.NetLatency, key)
	// Fault site net-error: the request never comes back (reset, refused,
	// mid-flight partition). Keyed by cache key, so retries of the same key
	// deterministically fail too — the tier must degrade to a miss.
	if fault.Fire(faultinject.NetError, key) {
		return sta.TierEntry{}, false, "", errInjected
	}

	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.keyURL(key), nil)
	if err != nil {
		return sta.TierEntry{}, false, "", err
	}
	if traceparent != "" {
		req.Header.Set(traceparentHeader, traceparent)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			c.timeouts.add(1, c.mTimeouts)
		}
		return sta.TierEntry{}, false, "", err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	peerSpan = resp.Header.Get(peerSpanHeader)
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return sta.TierEntry{}, false, peerSpan, nil // completed round trip, definitive miss
	case resp.StatusCode != http.StatusOK:
		return sta.TierEntry{}, false, peerSpan, fmt.Errorf("remotecache: GET %s: status %d", key, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		if ctx.Err() != nil {
			c.timeouts.add(1, c.mTimeouts)
		}
		return sta.TierEntry{}, false, peerSpan, err
	}
	if len(body) > maxResponseBytes {
		c.corrupt.add(1, c.mCorrupt)
		return sta.TierEntry{}, false, peerSpan, nil
	}
	// Fault site net-corrupt: a flipped bit on the wire. The CRC must catch
	// it and serve a counted miss, never a wrong timing.
	if fault.Fire(faultinject.NetCorrupt, key) && len(body) > 0 {
		body[len(body)/2] ^= 0x40
	}
	// End-to-end verification: checksum over the whole frame, embedded key
	// equality (a router handing back the wrong record is corruption too),
	// and semantic validity of the decoded entry.
	gotKey, val, err := diskcache.DecodeRecord(body)
	if err != nil || gotKey != key {
		c.corrupt.add(1, c.mCorrupt)
		return sta.TierEntry{}, false, peerSpan, nil
	}
	e, err := diskcache.DecodeEntry(val)
	if err != nil || !e.Valid() {
		c.corrupt.add(1, c.mCorrupt)
		return sta.TierEntry{}, false, peerSpan, nil
	}
	return e, true, peerSpan, nil
}

// Put implements sta.TierStore: write-behind, lossy under pressure and
// while the breaker is open. The frame is encoded on the caller's goroutine
// (cheap and allocation-bounded) so a dropped put costs no network work.
func (c *Client) Put(key string, e sta.TierEntry) {
	c.putTraced(key, e, "")
}

// PutCtx is the context-aware Put: when the context carries a trace
// reference, the traceparent for the caller's put span is captured into the
// queued request and stamped on the asynchronous PUT — the peer can correlate
// the write, but (the put being write-behind) no span is merged back.
func (c *Client) PutCtx(ctx context.Context, key string, e sta.TierEntry) {
	tp := ""
	if ref, ok := obs.TraceFrom(ctx); ok {
		tp = obs.FormatTraceparent(ref.T.TraceID, ref.Parent)
	}
	c.putTraced(key, e, tp)
}

func (c *Client) putTraced(key string, e sta.TierEntry, tp string) {
	if c == nil {
		return
	}
	if c.br.State() == BreakerOpen {
		// No probe promotion for puts: the tier is written behind anyway,
		// and probing with data nobody is waiting for would make breaker
		// recovery depend on write traffic. Gets own the probe schedule.
		c.dropped.add(1, c.mDropped)
		return
	}
	rec := diskcache.EncodeRecord(key, diskcache.EncodeEntry(e))
	select {
	case c.queue <- putReq{key: key, rec: rec, tp: tp}:
	case <-c.done:
		c.dropped.add(1, c.mDropped)
	default:
		c.dropped.add(1, c.mDropped)
	}
}

// writer is the single write-behind goroutine, mirroring diskcache: drain
// the queue until Close, then drain what's already queued and exit.
func (c *Client) writer() {
	defer close(c.writerDone)
	handle := func(req putReq) {
		if req.ack != nil {
			close(req.ack)
			return
		}
		c.send(req)
	}
	for {
		select {
		case req := <-c.queue:
			handle(req)
		case <-c.done:
			for {
				select {
				case req := <-c.queue:
					handle(req)
				default:
					return
				}
			}
		}
	}
}

// send performs one PUT. Failures drop the record (counted) and feed the
// breaker; there are no retries — the store is lossy by contract and the
// next analysis simply re-puts.
func (c *Client) send(req putReq) {
	proceed, probe := c.br.allow()
	if !proceed {
		c.dropped.add(1, c.mDropped)
		return
	}
	fault := c.opts.Fault
	fault.Stall(faultinject.NetLatency, req.key)
	if fault.Fire(faultinject.NetError, req.key) {
		c.br.failure(probe)
		c.dropped.add(1, c.mDropped)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPut, c.keyURL(req.key), strings.NewReader(string(req.rec)))
	if err != nil {
		c.br.failure(probe)
		c.dropped.add(1, c.mDropped)
		return
	}
	hreq.Header.Set("Content-Type", contentType)
	if req.tp != "" {
		hreq.Header.Set(traceparentHeader, req.tp)
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			c.timeouts.add(1, c.mTimeouts)
		}
		c.br.failure(probe)
		c.dropped.add(1, c.mDropped)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// 4xx here means the server judged the frame corrupt or mismatched;
		// that is a data problem, not peer death — breaker-neutral, like
		// client-side corruption.
		if resp.StatusCode/100 == 5 {
			c.br.failure(probe)
		} else {
			c.br.success()
		}
		c.dropped.add(1, c.mDropped)
		return
	}
	c.br.success()
	c.puts.add(1, c.mPuts)
}

// Flush blocks until every Put enqueued BEFORE the call has been sent or
// dropped. Tests and graceful handoff use it; the engine never waits.
func (c *Client) Flush() {
	if c == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case c.queue <- putReq{ack: ack}:
	case <-c.done:
		return
	}
	select {
	case <-ack:
	case <-c.writerDone:
	}
}

// Close drains the write-behind queue and stops the writer goroutine. The
// client is unusable afterwards (Gets still work — they are stateless — but
// Puts drop). Safe to call more than once.
func (c *Client) Close() error {
	if c == nil {
		return nil
	}
	select {
	case <-c.closed:
	default:
		close(c.closed)
		close(c.done)
	}
	<-c.writerDone
	return nil
}
