package remotecache_test

import (
	"bytes"
	"encoding/base64"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/faultinject"
	"qwm/internal/mos"
	"qwm/internal/sta"
	"qwm/internal/sta/diskcache"
	"qwm/internal/sta/remotecache"
	"qwm/internal/stages"
)

var (
	tech = mos.CMOSP35()
	lib  = devmodel.NewLibrary(tech)
)

func decoderFixture(t *testing.T) (*circuit.Netlist, map[string]sta.Arrival, []string) {
	t.Helper()
	nl, ins, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	primary := map[string]sta.Arrival{}
	for _, in := range ins {
		primary[in] = sta.Arrival{}
	}
	return nl, primary, outs
}

// startTier spins up an in-process tier server over per-signature memory
// stores and returns its base URL plus the server for stats.
func startTier(t *testing.T) (string, *remotecache.Server) {
	t.Helper()
	srv := remotecache.NewServer(remotecache.MemoryStores(0), nil)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs.URL, srv
}

// quick are client options tuned for tests: tight deadlines, no wall-clock
// breaker behaviour, so a failing test fails fast and deterministically.
func quick() remotecache.Options {
	return remotecache.Options{
		Timeout:           2 * time.Second,
		Retries:           -1,
		Backoff:           time.Millisecond,
		BreakerThreshold:  3,
		BreakerProbeEvery: 4,
		BreakerCooldown:   -1,
	}
}

func TestWireRoundTripAndCorruption(t *testing.T) {
	base, srv := startTier(t)
	fi := faultinject.New(7).Enable(faultinject.NetCorrupt, 1)
	opts := quick()
	opts.Fault = fi
	corrupting := remotecache.New(base, "sig-a", opts)
	defer corrupting.Close()
	clean := remotecache.New(base, "sig-a", quick())
	defer clean.Close()
	other := remotecache.New(base, "sig-b", quick())
	defer other.Close()

	e := sta.TierEntry{Delay: 1.25e-10, Slew: 3.5e-11, OK: true, Tier: uint8(sta.TierQWM), NRIters: 7}

	// Cold server: a definitive miss, and a completed round trip (no breaker
	// damage).
	if _, ok := clean.Get("k1"); ok {
		t.Fatal("cold Get hit")
	}

	clean.Put("k1", e)
	clean.Flush()
	if got := srv.Stats(); got.Stored != 1 {
		t.Fatalf("server stored %d records, want 1 (stats %+v)", got.Stored, got)
	}

	got, ok := clean.Get("k1")
	if !ok || got != e {
		t.Fatalf("round trip = %+v, %v; want the stored entry back bit-for-bit", got, ok)
	}

	// Namespace isolation: same key, different signature, must miss.
	if _, ok := other.Get("k1"); ok {
		t.Fatal("signature namespaces alias each other")
	}

	// Wire corruption at rate 1: every GET response has a byte flipped, the
	// CRC catches it, and the client serves a counted miss — never a wrong
	// entry.
	if _, ok := corrupting.Get("k1"); ok {
		t.Fatal("corrupt frame served as a hit")
	}
	cs := corrupting.Stats()
	if cs.Corrupt != 1 || cs.Misses != 1 || cs.Hits != 0 {
		t.Fatalf("corrupt-path stats = %+v, want 1 corrupt counted miss", cs)
	}
	// Corruption is breaker-neutral: the transport worked.
	if st := corrupting.BreakerState(); st != remotecache.BreakerClosed {
		t.Fatalf("breaker %v after corruption, want closed", st)
	}

	// A corrupt PUT is rejected by the server and never stored.
	rec := diskcache.EncodeRecord("k2", diskcache.EncodeEntry(e))
	rec[len(rec)-1] ^= 0xff
	url := base + "/tier/" + base64.RawURLEncoding.EncodeToString([]byte("sig-a")) +
		"/" + base64.RawURLEncoding.EncodeToString([]byte("k2"))
	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(rec))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt PUT: status %d, want 400", resp.StatusCode)
	}
	if got := srv.Stats(); got.Corrupt != 1 || got.Stored != 1 {
		t.Fatalf("server accepted a corrupt frame: %+v", got)
	}
}

// failThenServe is a RoundTripper that counts attempts and fails every
// request until healed, after which it serves 404 (a completed round trip).
type failThenServe struct {
	attempts atomic.Int64
	healed   atomic.Bool
}

func (f *failThenServe) RoundTrip(r *http.Request) (*http.Response, error) {
	f.attempts.Add(1)
	if !f.healed.Load() {
		return nil, errors.New("synthetic transport failure")
	}
	rec := httptest.NewRecorder()
	rec.WriteHeader(http.StatusNotFound)
	return rec.Result(), nil
}

// TestBreakerDeterministicTransitions pins the exact state trajectory and
// network-attempt count of the breaker against a dead peer: threshold 3,
// probe every 4th suppressed op, retries and cooldown disabled. This is the
// contract verify -remote re-asserts through the engine.
func TestBreakerDeterministicTransitions(t *testing.T) {
	tr := &failThenServe{}
	opts := quick()
	opts.HTTPClient = &http.Client{Transport: tr}
	c := remotecache.New("http://dead.invalid", "sig", opts)
	defer c.Close()

	get := func() { c.Get("k") }

	// Gets 1..3 reach the transport and fail; the 3rd opens the breaker.
	for i := 0; i < 3; i++ {
		if st := c.BreakerState(); st != remotecache.BreakerClosed {
			t.Fatalf("get %d: breaker %v, want closed", i, st)
		}
		get()
	}
	if st := c.BreakerState(); st != remotecache.BreakerOpen {
		t.Fatalf("after threshold: breaker %v, want open", st)
	}
	if n := tr.attempts.Load(); n != 3 {
		t.Fatalf("attempts = %d, want 3", n)
	}

	// Gets 4..6 are suppressed: zero network traffic, counted fast-fails.
	for i := 0; i < 3; i++ {
		get()
	}
	if n := tr.attempts.Load(); n != 3 {
		t.Fatalf("open breaker leaked %d network attempts", n-3)
	}
	s := c.Stats()
	if s.FastFails != 3 {
		t.Fatalf("fastfails = %d, want 3 (stats %+v)", s.FastFails, s)
	}

	// Get 7 is the 4th suppressed op: promoted to a half-open probe, which
	// fails and re-opens. Exactly one extra attempt.
	get()
	if n := tr.attempts.Load(); n != 4 {
		t.Fatalf("probe window: attempts = %d, want 4", n)
	}
	if st := c.BreakerState(); st != remotecache.BreakerOpen {
		t.Fatalf("after failed probe: breaker %v, want open", st)
	}
	if s := c.Stats(); s.BreakerOpens != 2 {
		t.Fatalf("breaker opens = %d, want 2", s.BreakerOpens)
	}

	// Heal the peer; the next probe (3 suppressed + 1 promoted) closes the
	// breaker, and traffic flows again.
	tr.healed.Store(true)
	for i := 0; i < 4; i++ {
		get()
	}
	if st := c.BreakerState(); st != remotecache.BreakerClosed {
		t.Fatalf("after healed probe: breaker %v, want closed", st)
	}
	if n := tr.attempts.Load(); n != 5 {
		t.Fatalf("recovery: attempts = %d, want 5", n)
	}
	get()
	if n := tr.attempts.Load(); n != 6 {
		t.Fatalf("closed breaker suppressed traffic: attempts = %d, want 6", n)
	}
}

// TestTwoReplicasShareTier is the remote-smoke gate: replica A analyzes
// cold and publishes its delay cache to the shared tier; a second, fresh
// replica B then analyzes the same workload entirely off remote hits —
// zero evaluations, ≥90 % client hit rate, bit-identical results.
func TestTwoReplicasShareTier(t *testing.T) {
	base, _ := startTier(t)
	nl, ins, outs := decoderFixture(t)
	req := sta.Request{Netlist: nl, Primary: ins, Outputs: outs}

	cfgA := sta.Config{Workers: 2}
	ca := remotecache.New(base, cfgA.Signature(), quick())
	cfgA.Tier = ca
	a := sta.New(tech, lib, cfgA)
	ref, err := a.AnalyzeContext(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if ref.StagesEvaluated == 0 {
		t.Fatal("cold replica evaluated nothing; fixture is broken")
	}
	ca.Flush()
	if s := ca.Stats(); s.Puts < int64(ref.StagesEvaluated) {
		t.Fatalf("replica A published %d/%d entries", s.Puts, ref.StagesEvaluated)
	}
	ca.Close()

	cfgB := sta.Config{Workers: 4}
	cb := remotecache.New(base, cfgB.Signature(), quick())
	defer cb.Close()
	cfgB.Tier = cb
	b := sta.New(tech, lib, cfgB)
	res, err := b.AnalyzeContext(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesEvaluated != 0 {
		t.Errorf("fresh replica evaluated %d stages off a warm shared tier, want 0", res.StagesEvaluated)
	}
	if hr := cb.Stats().HitRate(); hr < 0.9 {
		t.Errorf("replica B remote hit rate %.2f, want >= 0.90 (stats %+v)", hr, cb.Stats())
	}
	if !reflect.DeepEqual(ref.Arrivals, res.Arrivals) || !reflect.DeepEqual(ref.Diagnostics, res.Diagnostics) {
		t.Error("replica B diverged from replica A")
	}
}

// TestChainKillRestartRace drives concurrent analyses through a full
// memory→remote→disk TierChain while the remote server is killed and
// restarted mid-run. Every result must stay bit-identical to the no-tier
// baseline, and the whole rig must unwind without leaking goroutines.
// Runs under -race in CI (make remote-smoke).
func TestChainKillRestartRace(t *testing.T) {
	before := runtime.NumGoroutine()
	nl, ins, outs := decoderFixture(t)
	req := sta.Request{Netlist: nl, Primary: ins, Outputs: outs}

	// Baseline: no tiers at all.
	ref, err := sta.New(tech, lib, sta.Config{Workers: 2}).AnalyzeContext(nil, req)
	if err != nil {
		t.Fatal(err)
	}

	func() { // scope the rig so every resource is down before the leak check
		// A kill-able tier server on a real TCP listener.
		srv := remotecache.NewServer(remotecache.MemoryStores(0), nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		hs := &http.Server{Handler: srv.Handler()}
		var serveWG sync.WaitGroup
		serve := func(l net.Listener, s *http.Server) {
			serveWG.Add(1)
			go func() {
				defer serveWG.Done()
				s.Serve(l)
			}()
		}
		serve(ln, hs)

		cfg := sta.Config{Workers: 2}
		disk, err := diskcache.Open(t.TempDir(), cfg.Signature(), diskcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opts := quick()
		opts.Timeout = 500 * time.Millisecond
		opts.HTTPClient = &http.Client{Transport: &http.Transport{}}
		rc := remotecache.New("http://"+addr, cfg.Signature(), opts)
		cfg.Tier = sta.NewTierChain(sta.NewMemoryTier(0), rc, disk)
		a := sta.New(tech, lib, cfg)

		const runs = 8
		results := make([]*sta.Result, runs)
		errs := make([]error, runs)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < runs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				results[i], errs[i] = a.AnalyzeContext(nil, req)
			}(i)
		}
		close(start)

		// Kill the server mid-run, then restart it on the same address.
		time.Sleep(5 * time.Millisecond)
		hs.Close()
		time.Sleep(5 * time.Millisecond)
		var ln2 net.Listener
		for i := 0; i < 50; i++ { // the port can take a beat to free up
			if ln2, err = net.Listen("tcp", addr); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Errorf("restart listener: %v", err)
		}
		hs2 := &http.Server{Handler: srv.Handler()}
		if ln2 != nil {
			serve(ln2, hs2)
		}

		wg.Wait()
		for i := 0; i < runs; i++ {
			if errs[i] != nil {
				t.Fatalf("run %d: %v", i, errs[i])
			}
			if !reflect.DeepEqual(ref.Arrivals, results[i].Arrivals) ||
				!reflect.DeepEqual(ref.Diagnostics, results[i].Diagnostics) {
				t.Errorf("run %d diverged from the no-tier baseline", i)
			}
		}

		// Tear everything down.
		rc.Close()
		if err := disk.Close(); err != nil {
			t.Error(err)
		}
		hs2.Close()
		serveWG.Wait()
		opts.HTTPClient.Transport.(*http.Transport).CloseIdleConnections()
	}()

	// The obs lifecycle idiom: idle HTTP machinery takes a moment to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
