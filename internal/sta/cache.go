package sta

import (
	"sync"
	"sync/atomic"

	"qwm/internal/qwm"
)

// dirTiming is the cached QWM result for one (stage content + load digest,
// rail, input-slew bucket) key. ok is false when the stage has no conducting
// path to that rail (e.g. a pass-gate structure) or the evaluation failed to
// converge; errMsg then carries the failure so every Analyze consulting the
// entry can surface it (Result.EvalErrors) instead of silently degrading.
// slewFellBack marks entries whose slew is the conservative fallback
// estimate rather than a measured 10–90 % transition.
type dirTiming struct {
	delay, slew  float64
	ok           bool
	slewFellBack bool
	errMsg       string
	// tier records which rung of the degradation ladder produced this
	// timing (TierQWM for a clean solve); meaningful only when ok.
	tier Tier
	// panics counts the panics recovered (and converted to tier
	// escalations) while resolving this entry.
	panics int
	// stats carries the QWM solver accounting of the evaluation that
	// produced this entry — summed across every ladder tier attempted;
	// cache hits surface the original evaluation's numbers to observers.
	stats qwm.Stats
}

// cacheShards is the number of independently locked shards in the delay
// cache. 32 keeps lock contention negligible for worker counts up to the
// core counts this engine targets while costing only a few hundred bytes.
const cacheShards = 32

// delayCache is a sharded, single-flight concurrent map from direction keys
// to dirTiming. Shard selection hashes the key with FNV-1a, and each shard
// is guarded by its own RWMutex, so parallel level evaluation scales without
// serializing on one lock.
//
// Single-flight discipline: the first goroutine to miss on a key installs an
// entry with an open ready channel and computes the value; later arrivals
// for the same key block on ready instead of re-evaluating. This keeps the
// evaluation count deterministic — every unique key is computed exactly once
// no matter how many workers race on it — which is what lets the parallel
// engine report the same StagesEvaluated as the serial one.
type delayCache struct {
	shards [cacheShards]cacheShard

	hits   atomic.Int64
	misses atomic.Int64
	evals  atomic.Int64
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	ready chan struct{} // closed once val is populated
	val   dirTiming
}

func newDelayCache() *delayCache {
	c := &delayCache{}
	for i := range c.shards {
		c.shards[i].m = map[string]*cacheEntry{}
	}
	return c
}

// fnv1a is the 32-bit FNV-1a hash, inlined to avoid the hash/fnv interface
// allocations on the hot path.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// getOrCompute returns the timing for key, invoking compute at most once per
// key across all goroutines, plus whether THIS caller performed the compute
// (a miss; waiting on another goroutine's in-flight compute counts as a
// hit). The single-flight entry is installed and completed within one
// caller's stack frame with no early exits, so a cancelled analysis can
// never strand an entry with an open ready channel: in-flight computes
// always run to completion and close ready (see TestCancelledContextLeavesCacheUsable).
func (c *delayCache) getOrCompute(key string, compute func() dirTiming) (dirTiming, bool) {
	sh := &c.shards[fnv1a(key)%cacheShards]

	sh.mu.RLock()
	e := sh.m[key]
	sh.mu.RUnlock()

	if e == nil {
		sh.mu.Lock()
		if e = sh.m[key]; e == nil {
			e = &cacheEntry{ready: make(chan struct{})}
			sh.m[key] = e
			sh.mu.Unlock()
			c.misses.Add(1)
			e.val = compute()
			close(e.ready)
			return e.val, true
		}
		sh.mu.Unlock()
	}
	c.hits.Add(1)
	<-e.ready
	return e.val, false
}

// CacheStats is a snapshot of the delay cache's counters.
type CacheStats struct {
	// Hits and Misses count lookups; a miss triggers exactly one QWM
	// evaluation (single-flight), so Misses also bounds total solver work.
	Hits, Misses int64
	// Evaluations counts QWM engine runs actually performed (one per
	// direction compute; equals Misses unless a compute was skipped).
	Evaluations int64
	// Entries is the number of cached direction timings.
	Entries int
}

func (c *delayCache) stats() CacheStats {
	s := CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evaluations: c.evals.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		s.Entries += len(sh.m)
		sh.mu.RUnlock()
	}
	return s
}
