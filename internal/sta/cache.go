package sta

import (
	"sync"
	"sync/atomic"

	"qwm/internal/qwm"
)

// dirTiming is the cached QWM result for one (stage content + load digest,
// rail, input-slew bucket) key. ok is false when the stage has no conducting
// path to that rail (e.g. a pass-gate structure) or the evaluation failed to
// converge; errMsg then carries the failure so every Analyze consulting the
// entry can surface it (Result.EvalErrors) instead of silently degrading.
// slewFellBack marks entries whose slew is the conservative fallback
// estimate rather than a measured 10–90 % transition.
type dirTiming struct {
	delay, slew  float64
	ok           bool
	slewFellBack bool
	errMsg       string
	// tier records which rung of the degradation ladder produced this
	// timing (TierQWM for a clean solve); meaningful only when ok.
	tier Tier
	// panics counts the panics recovered (and converted to tier
	// escalations) while resolving this entry.
	panics int
	// stats carries the QWM solver accounting of the evaluation that
	// produced this entry — summed across every ladder tier attempted;
	// cache hits surface the original evaluation's numbers to observers.
	stats qwm.Stats
	// reduced counts the circuit nodes the model-order-reduction pre-pass
	// removed before the evaluation that produced this entry (0 when the
	// pre-pass is disabled or nothing was eligible). Like stats, cached
	// hits surface the original evaluation's number.
	reduced int
}

// cacheShards is the number of independently locked shards in the delay
// cache. 32 keeps lock contention negligible for worker counts up to the
// core counts this engine targets while costing only a few hundred bytes.
const cacheShards = 32

// delayCache is a sharded, single-flight concurrent map from direction keys
// to dirTiming. Shard selection hashes the key with FNV-1a, and each shard
// is guarded by its own RWMutex, so parallel level evaluation scales without
// serializing on one lock.
//
// Single-flight discipline: the first goroutine to miss on a key installs an
// entry with an open ready channel and computes the value; later arrivals
// for the same key block on ready instead of re-evaluating. This keeps the
// evaluation count deterministic — every unique key is computed exactly once
// no matter how many workers race on it — which is what lets the parallel
// engine report the same StagesEvaluated as the serial one.
type delayCache struct {
	shards [cacheShards]cacheShard

	hits   atomic.Int64
	misses atomic.Int64
	evals  atomic.Int64
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	ready chan struct{} // closed once val is populated
	val   dirTiming
}

func newDelayCache() *delayCache {
	c := &delayCache{}
	for i := range c.shards {
		c.shards[i].m = map[string]*cacheEntry{}
	}
	return c
}

// fnv1a is the 32-bit FNV-1a hash, inlined to avoid the hash/fnv interface
// allocations on the hot path.
func fnv1a(key []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// acquire is the single-flight entry point: it returns the entry for key and
// whether THIS caller is the leader. A non-leader must wait on e.ready before
// reading e.val (an in-flight compute counts as a hit). The leader MUST set
// e.val and close(e.ready) with no early exits in between, so a cancelled
// analysis can never strand an entry with an open ready channel: in-flight
// computes always run to completion and close ready (see
// TestCancelledContextLeavesCacheUsable).
//
// The key is accepted as bytes so warm lookups — the sh.m[string(key)] idiom
// compiles to an allocation-free probe — build keys in reused buffers; only
// the installing leader materializes the string.
func (c *delayCache) acquire(key []byte) (*cacheEntry, bool) {
	sh := &c.shards[fnv1a(key)%cacheShards]

	sh.mu.RLock()
	e := sh.m[string(key)]
	sh.mu.RUnlock()

	if e == nil {
		sh.mu.Lock()
		if e = sh.m[string(key)]; e == nil {
			e = &cacheEntry{ready: make(chan struct{})}
			sh.m[string(key)] = e
			sh.mu.Unlock()
			c.misses.Add(1)
			return e, true
		}
		sh.mu.Unlock()
	}
	c.hits.Add(1)
	return e, false
}

// CacheStats is a snapshot of the delay cache's counters.
type CacheStats struct {
	// Hits and Misses count lookups; a miss triggers exactly one QWM
	// evaluation (single-flight), so Misses also bounds total solver work.
	Hits, Misses int64
	// Evaluations counts QWM engine runs actually performed (one per
	// direction compute; equals Misses unless a compute was skipped).
	Evaluations int64
	// Entries is the number of cached direction timings.
	Entries int
}

func (c *delayCache) stats() CacheStats {
	s := CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evaluations: c.evals.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		s.Entries += len(sh.m)
		sh.mu.RUnlock()
	}
	return s
}
