package sta

import (
	"math"
	"reflect"
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/reduce"
	"qwm/internal/stages"
)

func extractSingleStage(t *testing.T, nl *circuit.Netlist) *circuit.Stage {
	t.Helper()
	sts := circuit.ExtractStages(nl, []string{"out"})
	if len(sts) != 1 {
		t.Fatalf("expected 1 stage, got %d", len(sts))
	}
	return sts[0]
}

// wideFixture analyzes stages.WideNetlist on a fresh Analyzer with the given
// feature configuration and returns the result.
func wideFixture(t *testing.T, fan, segs, workers int, red reduce.Config, memo MemoConfig) *Result {
	t.Helper()
	nl, ins, outs, err := stages.WideNetlist(tech, fan, segs, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	a := New(tech, lib)
	a.Workers = workers
	a.Reduction = red
	a.Memo = memo
	primary := map[string]Arrival{}
	for _, in := range ins {
		primary[in] = Arrival{}
	}
	res, err := a.Analyze(nl, primary, outs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReductionOffBitIdentical is the features-off guarantee: an Analyzer
// with an explicit zero Reduction/Memo configuration produces exactly the
// result a default Analyzer does — same arrivals bit for bit, same
// evaluation count, same diagnostics. (The signatures of disabled features
// are empty strings, so even the cache key namespace is unchanged.)
func TestReductionOffBitIdentical(t *testing.T) {
	base := wideFixture(t, 4, 12, 1, reduce.Config{}, MemoConfig{})
	explicit := wideFixture(t, 4, 12, 1, reduce.Config{Enabled: false, TolPct: 5}, MemoConfig{Enabled: false, Interp: true})
	if !reflect.DeepEqual(base.Arrivals, explicit.Arrivals) {
		t.Fatalf("disabled features changed arrivals:\n%v\nvs\n%v", base.Arrivals, explicit.Arrivals)
	}
	if base.StagesEvaluated != explicit.StagesEvaluated {
		t.Fatalf("evaluation count changed: %d vs %d", base.StagesEvaluated, explicit.StagesEvaluated)
	}
	if base.ReducedNodes != 0 || explicit.ReducedNodes != 0 || explicit.ClassCount != 0 {
		t.Fatalf("disabled features reported activity: %+v vs %+v", base.Diagnostics, explicit.Diagnostics)
	}
}

// TestReductionBoundedError: with the pre-pass on, long wire runs collapse
// (ReducedNodes > 0) and every arrival stays within a few percent of the
// unreduced answer — the moment-matching tolerance at work.
func TestReductionBoundedError(t *testing.T) {
	off := wideFixture(t, 4, 24, 1, reduce.Config{}, MemoConfig{})
	on := wideFixture(t, 4, 24, 1, reduce.Config{Enabled: true}, MemoConfig{})
	if on.ReducedNodes == 0 {
		t.Fatal("reduction enabled but no nodes removed on a 24-segment wire netlist")
	}
	for net, want := range off.Arrivals {
		got, ok := on.Arrivals[net]
		if !ok {
			t.Fatalf("reduced run lost arrival for %s", net)
		}
		for _, pair := range [][2]float64{{want.Rise, got.Rise}, {want.Fall, got.Fall}} {
			if pair[0] == 0 {
				continue
			}
			if relErr := math.Abs(pair[1]-pair[0]) / pair[0]; relErr > 0.03 {
				t.Errorf("%s: reduced arrival off by %.2f%% (%g vs %g)", net, 100*relErr, pair[1], pair[0])
			}
		}
	}
}

// TestMemoClassSharing: the fan branches are structurally identical, so Memo
// collapses their evaluations — far fewer cache misses, ClassHits > 0 — while
// arrivals stay within the slew-bucket snapping tolerance of the exact run.
func TestMemoClassSharing(t *testing.T) {
	off := wideFixture(t, 8, 12, 1, reduce.Config{}, MemoConfig{})
	on := wideFixture(t, 8, 12, 1, reduce.Config{}, MemoConfig{Enabled: true})
	if on.StagesEvaluated >= off.StagesEvaluated {
		t.Fatalf("memo did not reduce evaluations: %d vs %d", on.StagesEvaluated, off.StagesEvaluated)
	}
	if on.ClassCount == 0 || on.ClassHits == 0 {
		t.Fatalf("memo accounting empty: %+v", on.Diagnostics)
	}
	for net, want := range off.Arrivals {
		got := on.Arrivals[net]
		for _, pair := range [][2]float64{{want.Rise, got.Rise}, {want.Fall, got.Fall}} {
			if pair[0] == 0 {
				continue
			}
			// Bucket-floor snapping perturbs the evaluation slew by < 5 ps;
			// stage delays shift by a few percent at most.
			if relErr := math.Abs(pair[1]-pair[0]) / pair[0]; relErr > 0.10 {
				t.Errorf("%s: memoized arrival off by %.2f%% (%g vs %g)", net, 100*relErr, pair[1], pair[0])
			}
		}
	}
}

// TestMemoInterpTightensSnapping: interpolation evaluates both bucket
// boundaries and lerps at the exact slew, so it should land at least as close
// to the exact answer as plain floor-snapping on the worst output.
func TestMemoInterpTightensSnapping(t *testing.T) {
	exact := wideFixture(t, 4, 12, 1, reduce.Config{}, MemoConfig{})
	snap := wideFixture(t, 4, 12, 1, reduce.Config{}, MemoConfig{Enabled: true})
	interp := wideFixture(t, 4, 12, 1, reduce.Config{}, MemoConfig{Enabled: true, Interp: true})
	errOf := func(r *Result) float64 {
		return math.Abs(r.WorstArrival-exact.WorstArrival) / exact.WorstArrival
	}
	if errOf(interp) > errOf(snap)+1e-9 {
		t.Fatalf("interp error %.4f%% worse than snapping error %.4f%%",
			100*errOf(interp), 100*errOf(snap))
	}
}

// TestFeaturesOnWorkersIdentical is the acceptance determinism gate: with
// reduction, memoization and interpolation all enabled, a serial and an
// 8-worker run produce bit-identical arrivals, critical path, evaluation
// counts and class accounting.
func TestFeaturesOnWorkersIdentical(t *testing.T) {
	red := reduce.Config{Enabled: true, LumpLeaves: true}
	memo := MemoConfig{Enabled: true, Interp: true}
	serial := wideFixture(t, 8, 24, 1, red, memo)
	parallel := wideFixture(t, 8, 24, 8, red, memo)
	if !reflect.DeepEqual(serial.Arrivals, parallel.Arrivals) {
		t.Fatalf("arrivals differ between Workers=1 and Workers=8:\n%v\nvs\n%v",
			serial.Arrivals, parallel.Arrivals)
	}
	if !reflect.DeepEqual(serial.CriticalPath, parallel.CriticalPath) {
		t.Fatalf("critical paths differ: %v vs %v", serial.CriticalPath, parallel.CriticalPath)
	}
	if serial.StagesEvaluated != parallel.StagesEvaluated ||
		serial.ClassCount != parallel.ClassCount ||
		serial.ClassHits != parallel.ClassHits ||
		serial.ReducedNodes != parallel.ReducedNodes {
		t.Fatalf("accounting differs: %+v vs %+v", serial.Diagnostics, parallel.Diagnostics)
	}
}

// TestMemoRespectsLoadDifferences guards the PR 2 aliasing trap at the class
// level: two stages that are structurally identical but drive different
// fanout loads must land in DIFFERENT classes (the load values are part of
// the fingerprint), so memoization can never serve one the other's delay.
func TestMemoRespectsLoadDifferences(t *testing.T) {
	nl := inverterChain(1, 1e-6, 2e-6)
	stageOf := func(loads map[string]float64) string {
		sts := extractSingleStage(t, nl)
		fp, ok := fingerprint(sts, "out", "0", loads)
		if !ok {
			t.Fatal("fingerprint failed on inverter")
		}
		return fp
	}
	light := stageOf(map[string]float64{"out": 5e-15})
	heavy := stageOf(map[string]float64{"out": 50e-15})
	if light == heavy {
		t.Fatal("fingerprints identical across different loads — class memo would alias them")
	}
	// Off-path loads are part of the class too (they feed the spice tier).
	offA := stageOf(map[string]float64{"out": 5e-15, "n_stray": 1e-15})
	if light == offA {
		t.Fatal("fingerprint ignores off-path loads")
	}
}

// TestAllocBudget is the arena regression gate: a warm (all cache hits)
// Analyze of the 3-bit decoder must stay within the allocation budget. The
// pre-arena engine spent 1185 allocs/op here; the pooled scratch, interned
// keys and byte-keyed cache bring it under 400, and the budget below leaves
// headroom only for compiler-version noise — a map or formatting regression
// on the hot path blows it immediately.
func TestAllocBudget(t *testing.T) {
	nl, ins, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	a := New(tech, lib)
	a.Workers = 1
	primary := map[string]Arrival{}
	for _, in := range ins {
		primary[in] = Arrival{}
	}
	if _, err := a.Analyze(nl, primary, outs); err != nil {
		t.Fatal(err)
	}
	const budget = 700 // issue target: >= 40% under the 1185 baseline
	avg := testing.AllocsPerRun(10, func() {
		if _, err := a.Analyze(nl, primary, outs); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("warm Analyze allocates %.0f/op, budget %d", avg, budget)
	}
}
