package sta

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"qwm/internal/circuit"
	"qwm/internal/faultinject"
	"qwm/internal/obs"
	"qwm/internal/qwm"
	"qwm/internal/reduce"
	"qwm/internal/spice"
	"qwm/internal/stages"
	"qwm/internal/switchlevel"
	"qwm/internal/wave"
)

// Tier identifies the rung of the degradation ladder that produced a
// stage-direction timing. Lower tiers are more accurate; higher tiers trade
// accuracy for robustness and carry a conservative guard-band so a degraded
// delay is never optimistic relative to the clean QWM answer.
type Tier uint8

const (
	// TierQWM is the paper's solver: piecewise-quadratic waveform matching
	// with the joint Newton iteration (plus its built-in bisection rescue
	// per region). No guard-band — this is the reference answer.
	TierQWM Tier = iota
	// TierBisect re-runs QWM with the Newton guess ladder disabled
	// (Options.ForceBisection): every region is solved by the slow
	// bracketing fallback, which survives the flat-region geometries that
	// defeat Newton. Guard-band 1.10x.
	TierBisect
	// TierSpice rebuilds the worst path as a small transistor netlist and
	// integrates it with the adaptive (LTE-controlled) trapezoidal
	// transient of internal/spice. Slowest numerical tier, different
	// algorithm family — a QWM-specific failure mode cannot recur here.
	// Guard-band 1.25x.
	TierSpice
	// TierBound is the last resort: the switch-level RC bound
	// (switchlevel.PathBound, Elmore x ln2 x 3). Purely structural — no
	// iteration, no convergence, cannot fail on a valid path — and
	// intentionally pessimistic.
	TierBound
	// NumTiers bounds the tier enum; not a tier itself.
	NumTiers
)

var tierNames = [NumTiers]string{
	TierQWM:    "qwm",
	TierBisect: "qwm-bisect",
	TierSpice:  "spice",
	TierBound:  "rc-bound",
}

// String returns the canonical tier name.
func (t Tier) String() string {
	if t < NumTiers {
		return tierNames[t]
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// Per-tier conservative guard-bands. A degraded tier must never report a
// delay below the clean QWM answer it replaces (the chaos harness asserts
// this), so each fallback's delay and slew are inflated by a margin that
// covers the tier's worst observed deviation from QWM with room to spare:
// bisection solves the same equations (percent-level deviation from the
// Newton path at most), the adaptive transient agrees with QWM to the
// paper's ~2 % accuracy, and the RC bound carries its own 3x factor inside
// switchlevel.PathBound.
const (
	guardBisect = 1.10
	guardSpice  = 1.25
)

// EvalBudget bounds each stage-direction evaluation of an Analyze. The zero
// value means unlimited. Exhausting a budget aborts the running tier with
// ErrBudgetExceeded and escalates the ladder; it never fails the Analyze.
type EvalBudget struct {
	// NRIters caps the total Newton iterations one QWM evaluation may
	// spend (joint and inner solves combined).
	NRIters int
	// Wall caps one QWM evaluation's wall-clock time, checked at region
	// boundaries. Wall budgets are inherently racy with scheduling — use
	// NRIters when determinism across runs matters.
	Wall time.Duration
}

// evalEnv carries the per-request evaluation configuration (budget, fault
// injector and — for traced requests — the trace reference) from
// AnalyzeContext into the worker-side ladder. One env is shared read-only by
// every worker of an Analyze.
type evalEnv struct {
	budget EvalBudget
	fault  *faultinject.Injector
	// trace is the request's trace handle; trace.T == nil (the untraced
	// default) keeps every tracing branch off the hot path.
	trace obs.TraceRef
}

// qwmOpts assembles the solver options for one QWM tier attempt: the
// Analyzer's tuning plus the request's budget and fault plumbing. faultKey
// already carries the tier suffix, so the injector can distinguish the
// Newton and bisection attempts of one direction.
func (a *Analyzer) qwmOpts(env *evalEnv, faultKey string, forceBisect bool) qwm.Options {
	o := a.Opts
	o.ForceBisection = forceBisect
	o.NRBudget = env.budget.NRIters
	o.WallBudget = env.budget.Wall
	o.Fault = env.fault
	o.FaultKey = faultKey
	return o
}

// evalLadder resolves one stage-direction timing through the degradation
// ladder. Structural failures (no conducting path to the rail) return
// immediately without escalation — no solver can conjure a path that does
// not exist. Numerical failures, budget aborts and recovered panics
// escalate tier by tier; only if every tier fails (which requires a
// structurally unsupported path, since TierBound is iteration-free) does
// the direction come back failed.
//
// faultKey is the direction's cache key: deterministic, schedule- and
// worker-independent, which is what makes seeded fault injection
// reproducible at any Workers setting.
func (a *Analyzer) evalLadder(env *evalEnv, st *circuit.Stage, out, rail string, loads map[string]float64, inSlew float64, faultKey string) dirTiming {
	path, err := circuit.LongestPath(st, out, rail)
	if err != nil {
		// Structural: the stage genuinely has no path to this rail (e.g. a
		// pass-gate structure). Not a solver failure; do not escalate.
		return dirTiming{errMsg: err.Error()}
	}

	var t dirTiming
	// Model-order-reduction pre-pass: collapse long series RC runs (and,
	// when opted in, off-path leaf subtrees) before ANY tier sees the path,
	// so QWM, the spice rebuild and the RC bound all work on the same
	// reduced network. Downstream of the cache key on purpose — the key
	// carries Reduction.Signature(), so reduced entries can never alias
	// unreduced ones, and the rewrite itself is a pure function of
	// (stage, path, loads, config).
	if a.Reduction.Enabled {
		rp, rl, rst := reduce.Path(st, path, loads, a.Reduction)
		path, loads = rp, rl
		t.reduced = rst.NodesRemoved
	}
	var errs strings.Builder
	for tier := TierQWM; tier < NumTiers; tier++ {
		r, err := a.runTier(env, tier, st, out, rail, path, loads, inSlew, faultKey, &t)
		addStats(&t.stats, r.stats)
		if err == nil {
			t.delay, t.slew = r.delay, r.slew
			t.slewFellBack = r.slewFellBack
			t.ok = true
			t.tier = tier
			return t
		}
		if errs.Len() > 0 {
			errs.WriteString("; ")
		}
		fmt.Fprintf(&errs, "%s: %v", tier, err)
	}
	t.errMsg = "all tiers failed: " + errs.String()
	return t
}

// runTier executes one rung of the ladder with panic isolation: any panic
// raised inside the tier (a solver bug, or the faultinject.Panic class) is
// converted to an ErrPanicRecovered-wrapped error at this boundary, so the
// worker goroutine survives, the single-flight cache entry completes, and
// the ladder escalates exactly as for an ordinary tier failure.
func (a *Analyzer) runTier(env *evalEnv, tier Tier, st *circuit.Stage, out, rail string, path *circuit.Path, loads map[string]float64, inSlew float64, faultKey string, t *dirTiming) (res dirResult, err error) {
	key := fmt.Sprintf("%s|tier%d", faultKey, tier)
	defer func() {
		if p := recover(); p != nil {
			t.panics++
			res = dirResult{}
			err = fmt.Errorf("%w: %v", ErrPanicRecovered, p)
		}
	}()
	// Fault site: a synthetic panic inside the tier evaluation. Armed for
	// the numerical tiers only — TierBound is the ladder's floor and must
	// stay unconditionally reliable, injected chaos included.
	if tier < TierBound && env.fault.Fire(faultinject.Panic, key) {
		panic(fmt.Sprintf("faultinject: synthetic panic in %s evaluation", tier))
	}

	switch tier {
	case TierQWM:
		// Fault site: an injected budget exhaustion, as a too-small
		// Request.Budget would produce. Tier 0 only: the cheap rescue
		// (bisection) is exactly what a budget-driven abort should
		// escalate to.
		if env.fault.Fire(faultinject.BudgetExhaustion, key) {
			return dirResult{}, fmt.Errorf("%w: injected budget exhaustion (faultinject)", ErrBudgetExceeded)
		}
		return a.evalQWMPath(st, path, out, rail, loads, inSlew, a.qwmOpts(env, key, false))
	case TierBisect:
		r, err := a.evalQWMPath(st, path, out, rail, loads, inSlew, a.qwmOpts(env, key, true))
		if err != nil {
			return r, err
		}
		r.delay *= guardBisect
		r.slew *= guardBisect
		return r, nil
	case TierSpice:
		r, err := a.evalSpicePath(st, path, out, rail, loads, inSlew)
		if err != nil {
			return r, err
		}
		r.delay *= guardSpice
		r.slew *= guardSpice
		return r, nil
	case TierBound:
		return a.evalBoundPath(st, path, out, loads, inSlew)
	}
	return dirResult{}, fmt.Errorf("sta: unknown tier %d", tier)
}

// addStats folds one tier attempt's solver accounting into the direction's
// running total, so a degraded direction reports the full cost of every
// attempt, not just the tier that finally answered.
func addStats(dst *qwm.Stats, s qwm.Stats) {
	dst.Regions += s.Regions
	dst.NRIters += s.NRIters
	dst.DenseFallbacks += s.DenseFallbacks
	dst.CapResolves += s.CapResolves
}

// stimulus builds the canonical worst-case switching waveform for one
// direction: the rail-side input switches at t = 0 — an ideal step when
// inSlew is zero, otherwise a ramp spanning the full swing (the 10-90 %
// slew covers 80 % of it) — and returns the waveform, the on-level for the
// held inputs, and the input reference time delays are measured from.
func stimulus(vdd float64, rail string, inSlew float64) (sw wave.Waveform, onLevel float64, tIn float64) {
	onLevel, offLevel := vdd, 0.0
	if rail == circuit.SupplyNode {
		onLevel, offLevel = 0, vdd // PMOS conducts with a low gate
	}
	sw = wave.Step{At: 0, Low: offLevel, High: onLevel}
	if inSlew > 0 {
		full := 1.25 * inSlew
		sw = wave.Ramp{T0: 0, T1: full, Low: offLevel, High: onLevel}
		tIn = full / 2
	}
	return sw, onLevel, tIn
}

// pathInputs assigns a waveform to every gate along the path: the first
// transistor's gate gets the switching stimulus, every other gate is held
// at the conducting level.
func pathInputs(path *circuit.Path, sw wave.Waveform, onLevel float64) map[string]wave.Waveform {
	inputs := map[string]wave.Waveform{}
	first := true
	for _, pe := range path.Elems {
		if pe.Edge.Kind == circuit.KindWire {
			continue
		}
		if first {
			inputs[pe.Edge.Gate] = sw
			first = false
			continue
		}
		if _, dup := inputs[pe.Edge.Gate]; !dup {
			inputs[pe.Edge.Gate] = wave.DC(onLevel)
		}
	}
	return inputs
}

// spiceRename builds the canonical node-renaming map for the TierSpice
// sub-netlist: rails keep their names, path channel nodes become "n%d" in
// path order, gate nets become "g%d" by order of first appearance along the
// path (the fingerprint's gate-ordinal scheme), and off-path load nodes
// become "z%d" in (value, name)-sorted order — the name tie-break is safe
// because equal-value isolated grounded caps are interchangeable. It returns
// the map plus the original path-node and off-path node lists in canonical
// order, so callers can register caps in a member-independent sequence.
//
// The rename exists because spice.New indexes the MNA matrix by SORTED node
// name: without it, two class-memoized siblings (identical fingerprints,
// different net names) built matrices with different elimination orders and
// produced different float results — whichever member computed the shared
// cache entry leaked its names into the value, breaking bitwise determinism
// below the QWM tiers.
func spiceRename(path *circuit.Path, loads map[string]float64) (ren map[string]string, pathNodes, offNodes []string) {
	ren = map[string]string{
		circuit.GroundNode: circuit.GroundNode,
		circuit.SupplyNode: circuit.SupplyNode,
	}
	for i, pe := range path.Elems {
		if i == 0 {
			if _, ok := ren[pe.Lower]; !ok {
				ren[pe.Lower] = "n" + fmt.Sprint(len(pathNodes))
				pathNodes = append(pathNodes, pe.Lower)
			}
		}
		if _, ok := ren[pe.Upper]; !ok {
			ren[pe.Upper] = "n" + fmt.Sprint(len(pathNodes))
			pathNodes = append(pathNodes, pe.Upper)
		}
	}
	gi := 0
	for _, pe := range path.Elems {
		if pe.Edge.Kind == circuit.KindWire {
			continue
		}
		if _, ok := ren[pe.Edge.Gate]; !ok {
			ren[pe.Edge.Gate] = "g" + fmt.Sprint(gi)
			gi++
		}
	}
	for node := range loads {
		if _, ok := ren[node]; !ok {
			offNodes = append(offNodes, node)
		}
	}
	sort.Slice(offNodes, func(i, j int) bool {
		ci, cj := loads[offNodes[i]], loads[offNodes[j]]
		if ci != cj {
			return ci < cj
		}
		return offNodes[i] < offNodes[j]
	})
	for i, node := range offNodes {
		ren[node] = "z" + fmt.Sprint(i)
	}
	return ren, pathNodes, offNodes
}

// evalSpicePath is the TierSpice evaluation: the worst path is rebuilt as a
// self-contained transistor netlist — path devices, the worst-case gate
// stimulus, the fanout loads as explicit capacitors, rail sources, and the
// precharged initial condition — and integrated with the LTE-controlled
// adaptive trapezoidal transient. A different algorithm family than QWM, so
// the Newton failure that brought the ladder here cannot recur.
//
// Every node of the sub-netlist carries a canonical name (see spiceRename)
// and every element is registered in canonical path order, so the result is
// a pure function of the path/load structure — two stages with equal
// fingerprints evaluate bit-identically no matter what their nets are called.
func (a *Analyzer) evalSpicePath(st *circuit.Stage, path *circuit.Path, out, rail string, loads map[string]float64, inSlew float64) (dirResult, error) {
	vdd := a.Tech.VDD
	sw, onLevel, tIn := stimulus(vdd, rail, inSlew)
	rising := rail == circuit.SupplyNode
	// Initial condition: the path nodes start at the opposite rail
	// (precharged for a discharge, pre-discharged for a charge).
	icLevel := vdd
	if rising {
		icLevel = 0
	}

	ren, pathNodes, offNodes := spiceRename(path, loads)
	rout, ok := ren[out]
	if !ok {
		return dirResult{}, fmt.Errorf("sta: spice tier: output %q not on evaluated path", out)
	}

	n := &circuit.Netlist{}
	n.AddVSource("vvdd", circuit.SupplyNode, circuit.GroundNode, wave.DC(vdd))
	// Gate stimuli in path order (first conducting gate switches, the rest
	// are held at the on-level): ranging over the pathInputs map here was a
	// latent nondeterminism — registration order fed the matrix node order.
	first := true
	gateDone := map[string]bool{}
	for _, pe := range path.Elems {
		if pe.Edge.Kind == circuit.KindWire || gateDone[pe.Edge.Gate] {
			continue
		}
		gateDone[pe.Edge.Gate] = true
		w := wave.Waveform(wave.DC(onLevel))
		if first {
			w, first = sw, false
		}
		g := ren[pe.Edge.Gate]
		n.AddVSource("v"+g, g, circuit.GroundNode, w)
	}
	ic := map[string]float64{}
	for i, pe := range path.Elems {
		switch pe.Edge.Kind {
		case circuit.KindWire:
			n.AddResistor(fmt.Sprintf("r%d", i), ren[pe.Lower], ren[pe.Upper], pe.Edge.R)
		case circuit.KindNMOS:
			n.AddTransistor(&circuit.Transistor{
				Name: fmt.Sprintf("m%d", i), Kind: circuit.KindNMOS,
				Drain: ren[pe.Upper], Gate: ren[pe.Edge.Gate], Source: ren[pe.Lower],
				Body: circuit.GroundNode, W: pe.Edge.W, L: pe.Edge.L,
			})
		case circuit.KindPMOS:
			n.AddTransistor(&circuit.Transistor{
				Name: fmt.Sprintf("m%d", i), Kind: circuit.KindPMOS,
				Drain: ren[pe.Upper], Gate: ren[pe.Edge.Gate], Source: ren[pe.Lower],
				Body: circuit.SupplyNode, W: pe.Edge.W, L: pe.Edge.L,
			})
		default:
			return dirResult{}, fmt.Errorf("sta: spice tier: unsupported element kind %v", pe.Edge.Kind)
		}
		ic[ren[pe.Upper]] = icLevel
	}
	// Load caps in canonical order: path nodes in path order, then off-path
	// nodes in their value-sorted order.
	ci := 0
	for _, node := range pathNodes {
		if c := loads[node]; c > 0 {
			n.AddCapacitor(fmt.Sprintf("cl%d", ci), ren[node], circuit.GroundNode, c)
			ci++
		}
	}
	for _, node := range offNodes {
		if c := loads[node]; c > 0 {
			n.AddCapacitor(fmt.Sprintf("cl%d", ci), ren[node], circuit.GroundNode, c)
			ci++
		}
	}
	// Off-path device parasitics: the QWM builder loads every path node
	// with the junction, overlap and half-channel capacitance of ALL stage
	// devices touching it — the complementary rail's drain caps included.
	// The sub-netlist only instantiates the path devices (whose parasitics
	// the simulator models itself), so the off-path share is lumped here at
	// the mid-swing linearization point, exactly as the switch-level model
	// does; omitting it made the spice tier under-predict by the missing
	// capacitance ratio and defeat the guard-band.
	onPath := map[*circuit.StageEdge]bool{}
	inNet := map[string]bool{}
	for _, pe := range path.Elems {
		onPath[pe.Edge] = true
		inNet[pe.Lower], inNet[pe.Upper] = true, true
	}
	pi := 0
	for _, e := range st.Edges {
		if onPath[e] || e.Kind == circuit.KindWire {
			continue
		}
		p := &a.Tech.N
		if e.Kind == circuit.KindPMOS {
			p = &a.Tech.P
		}
		for _, nd := range [2]string{e.Src, e.Snk} {
			if !inNet[nd] || nd == circuit.GroundNode || nd == circuit.SupplyNode {
				continue
			}
			c := p.JunctionCap(p.DefaultJunction(e.W), vdd/2)
			srcHalf, _ := p.ChannelCapSplit(e.W, e.L)
			c += p.OverlapCap(e.W) + srcHalf
			n.AddCapacitor(fmt.Sprintf("cp%d", pi), ren[nd], circuit.GroundNode, c)
			pi++
		}
	}

	sim, err := spice.New(n, a.Tech, false)
	if err != nil {
		return dirResult{}, fmt.Errorf("sta: spice tier: %w", err)
	}
	// Span: generous for the ps–ns stage delays this engine targets, plus
	// the full input ramp; HMax keeps coarse late-tail steps from blurring
	// the measured edge.
	tstop := 1.25*inSlew + 2e-9
	res, err := sim.TransientAdaptive(spice.AdaptiveOptions{
		TStop:       tstop,
		HMax:        5e-12,
		IC:          ic,
		RecordNodes: []string{rout},
	})
	if err != nil {
		return dirResult{}, fmt.Errorf("sta: spice tier: %w", err)
	}
	w, err := res.Waveform(rout)
	if err != nil {
		return dirResult{}, fmt.Errorf("sta: spice tier: %w", err)
	}
	d, err := wave.Delay50(w, tIn, vdd, rising)
	if err != nil {
		return dirResult{}, fmt.Errorf("sta: spice tier: %w", err)
	}
	slew, serr := wave.Slew(w, vdd, rising)
	if serr != nil || slew <= 0 {
		// The recorded transient ended before the 10/90 % points: substitute
		// the conservative estimate (fallbackSlew's last resort, which does
		// not assume a falling waveform).
		est := 2 * d
		if inSlew > est {
			est = inSlew
		}
		if est <= 0 {
			est = 1e-12
		}
		return dirResult{delay: d, slew: est, slewFellBack: true}, nil
	}
	return dirResult{delay: d, slew: slew}, nil
}

// evalBoundPath is the TierBound evaluation: the conservative switch-level
// RC bound over the worst path. The slew is bounded by the larger of the
// input slew and twice the (already guard-banded) delay — a transition
// cannot meaningfully outlast the RC bound that produced it.
func (a *Analyzer) evalBoundPath(st *circuit.Stage, path *circuit.Path, out string, loads map[string]float64, inSlew float64) (dirResult, error) {
	w := &stages.Workload{Stage: st, Path: path, Output: out, Loads: loads}
	d, err := switchlevel.PathBound(w, a.Tech)
	if err != nil {
		return dirResult{}, fmt.Errorf("sta: bound tier: %w", err)
	}
	slew := 2 * d
	if inSlew > slew {
		slew = inSlew
	}
	return dirResult{delay: d, slew: slew, slewFellBack: true}, nil
}
