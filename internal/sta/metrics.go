package sta

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"qwm/internal/circuit"
	"qwm/internal/obs"
)

// Metric names published by the STA engine into an attached obs.Registry.
// Names under "sta/time/" are wall-clock observations and are excluded by
// obs.Snapshot.Deterministic(); everything else is bit-for-bit identical at
// any Workers setting (single-flight caching makes the set of computed keys,
// and therefore every counter and histogram below, independent of the
// schedule).
const (
	mAnalyzes       = "sta/analyzes"
	mCancelled      = "sta/cancelled"
	mCacheHits      = "sta/cache_hits"
	mCacheMisses    = "sta/cache_misses"
	mEvalErrors     = "sta/eval_errors"
	mSlewFallbacks  = "sta/slew_fallbacks"
	mNRIters        = "sta/qwm_nr_iters"
	mRegions        = "sta/qwm_regions"
	mDenseFallbacks = "sta/qwm_dense_fallbacks"
	mCapResolves    = "sta/qwm_cap_resolves"
	mDegraded       = "sta/degraded"
	mPanics         = "sta/panics_recovered"
	mReduceNodes    = "sta/reduce/nodes_removed"
	mClassHits      = "sta/class_hits"
	mClasses        = "sta/classes"
	mFPEvictions    = "sta/class/fp_evictions"
	mEcoDirty       = "sta/eco/dirty_stages"
	mEcoSkipped     = "sta/eco/skipped_stages"
	mEcoEarly       = "sta/eco/early_stops"
	// mTierPrefix + Tier.String() counts computed directions per ladder
	// tier (e.g. "sta/tier_evals/qwm", "sta/tier_evals/rc-bound").
	mTierPrefix = "sta/tier_evals/"

	hNRItersPerEval = "sta/nr_iters_per_eval"
	hRegionsPerEval = "sta/regions_per_eval"
	hEvalSeconds    = "sta/time/eval_seconds"
	hLevelSeconds   = "sta/time/level_seconds"
	hAnalyzeSeconds = "sta/time/analyze_seconds"
)

// Exported metric-name aliases for ops consumers (the CLI's quantile
// summary, dashboards scraping /metrics before name sanitization). The
// unexported originals above stay the single source of truth.
const (
	MetricNRItersPerEval = hNRItersPerEval
	MetricRegionsPerEval = hRegionsPerEval
	MetricEvalSeconds    = hEvalSeconds
	MetricLevelSeconds   = hLevelSeconds
	MetricAnalyzeSeconds = hAnalyzeSeconds
)

// Histogram bucket bounds. The per-eval solver histograms use power-of-two
// buckets (an eval is typically a handful of regions and tens of Newton
// iterations); the timing histograms use decades from 1 µs to 1 s.
var (
	nrIterBounds  = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	regionBounds  = []float64{2, 4, 8, 16, 32, 64, 128, 256}
	secondsBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}
)

// metricSet caches the instrument handles for one registry so the hot path
// never does a name lookup. Built once per Analyzer (lazily, guarded by the
// Analyzer's cache init) and shared by every Analyze.
type metricSet struct {
	analyzes, cancels        *obs.Counter
	cacheHits, cacheMisses   *obs.Counter
	evalErrors, slewFbs      *obs.Counter
	nrIters, regionsTotal    *obs.Counter
	denseFallbacks           *obs.Counter
	capResolves              *obs.Counter
	degraded, panicsRec      *obs.Counter
	reduceNodes              *obs.Counter
	classHits, classes       *obs.Counter
	fpEvictions              *obs.Counter
	ecoDirty, ecoSkipped     *obs.Counter
	ecoEarly                 *obs.Counter
	tierEvals                [NumTiers]*obs.Counter
	nrIterHist, regionHist   *obs.Histogram
	evalSeconds              *obs.Histogram
	levelSeconds, analyzeSec *obs.Histogram
}

func newMetricSet(r *obs.Registry) *metricSet {
	if r == nil {
		return nil
	}
	ms := &metricSet{
		analyzes:       r.Counter(mAnalyzes),
		cancels:        r.Counter(mCancelled),
		cacheHits:      r.Counter(mCacheHits),
		cacheMisses:    r.Counter(mCacheMisses),
		evalErrors:     r.Counter(mEvalErrors),
		slewFbs:        r.Counter(mSlewFallbacks),
		nrIters:        r.Counter(mNRIters),
		regionsTotal:   r.Counter(mRegions),
		denseFallbacks: r.Counter(mDenseFallbacks),
		capResolves:    r.Counter(mCapResolves),
		degraded:       r.Counter(mDegraded),
		panicsRec:      r.Counter(mPanics),
		reduceNodes:    r.Counter(mReduceNodes),
		classHits:      r.Counter(mClassHits),
		classes:        r.Counter(mClasses),
		fpEvictions:    r.Counter(mFPEvictions),
		ecoDirty:       r.Counter(mEcoDirty),
		ecoSkipped:     r.Counter(mEcoSkipped),
		ecoEarly:       r.Counter(mEcoEarly),
		nrIterHist:     r.Histogram(hNRItersPerEval, nrIterBounds),
		regionHist:     r.Histogram(hRegionsPerEval, regionBounds),
		evalSeconds:    r.Histogram(hEvalSeconds, secondsBounds),
		levelSeconds:   r.Histogram(hLevelSeconds, secondsBounds),
		analyzeSec:     r.Histogram(hAnalyzeSeconds, secondsBounds),
	}
	for t := Tier(0); t < NumTiers; t++ {
		ms.tierEvals[t] = r.Counter(mTierPrefix + t.String())
	}
	return ms
}

// recorder is the per-Analyze observation context: the request's Observer
// (may be nil), the Analyzer's metric set (may be nil), and per-request
// hit/miss tallies. It exists only when at least one of the two sinks is
// attached — the engine gates every instrumentation site on a single
// `rec != nil` check, so the unobserved path never reads the clock or
// constructs an event.
type recorder struct {
	o     obs.Observer
	ms    *metricSet
	start time.Time

	// Per-request cache accounting. Kept on the recorder (not derived from
	// the shared cache's global counters) so concurrent Analyzes on one
	// Analyzer each see exactly their own hits and misses. Atomics because
	// stageEval runs from worker goroutines.
	hits, misses atomic.Int64
}

// newRecorder returns the observation context for one Analyze, or nil when
// neither an observer nor a metrics registry is attached.
func (a *Analyzer) newRecorder(o obs.Observer) *recorder {
	ms := a.metricSet()
	if o == nil && ms == nil {
		return nil
	}
	return &recorder{o: o, ms: ms, start: time.Now()}
}

// metricSet lazily builds (and memoizes) the Analyzer's instrument handles.
func (a *Analyzer) metricSet() *metricSet {
	if a.Metrics == nil {
		return nil
	}
	a.msOnce.Do(func() { a.ms = newMetricSet(a.Metrics) })
	return a.ms
}

func (r *recorder) now() time.Time                  { return time.Now() }
func (r *recorder) since(t time.Time) time.Duration { return time.Since(t) }

func (r *recorder) analyzeStart(info obs.AnalyzeStartInfo) {
	if r.o != nil {
		r.o.AnalyzeStart(info)
	}
}

func (r *recorder) levelStart(info obs.LevelStartInfo) {
	if r.o != nil {
		r.o.LevelStart(info)
	}
}

func (r *recorder) levelDone(d time.Duration) {
	if r.ms != nil {
		r.ms.levelSeconds.Observe(d.Seconds())
	}
}

// stageEval records one (stage, output, direction) evaluation. computed is
// true when THIS request performed the QWM evaluation (a cache miss);
// single-flight guarantees each unique key is computed exactly once, so the
// deterministic solver counters and histograms below are fed exactly once
// per key regardless of worker count or scheduling. worker is the pool slot
// that resolved the item — schedule-dependent, observer-only.
func (r *recorder) stageEval(it *workItem, computed bool, d time.Duration, worker int) {
	if computed {
		r.misses.Add(1)
	} else {
		r.hits.Add(1)
	}
	if r.ms != nil {
		if computed {
			st := it.timing.stats
			r.ms.nrIters.Add(int64(st.NRIters))
			r.ms.regionsTotal.Add(int64(st.Regions))
			r.ms.denseFallbacks.Add(int64(st.DenseFallbacks))
			r.ms.capResolves.Add(int64(st.CapResolves))
			r.ms.nrIterHist.Observe(float64(st.NRIters))
			r.ms.regionHist.Observe(float64(st.Regions))
			r.ms.reduceNodes.Add(int64(it.timing.reduced))
			r.ms.evalSeconds.Observe(d.Seconds())
			if it.timing.ok {
				r.ms.tierEvals[it.timing.tier].Inc()
			}
		}
	}
	if r.o != nil {
		dir := "fall"
		if it.rail == circuit.SupplyNode {
			dir = "rise"
		}
		tier := ""
		if it.timing.ok {
			tier = it.timing.tier.String()
		}
		r.o.StageEval(obs.StageEvalInfo{
			Level:     it.level,
			Item:      it.idx,
			Output:    it.out,
			Direction: dir,
			CacheHit:  !computed,
			Duration:  d,
			QWM:       obs.QWMStats(it.timing.stats),
			Tier:      tier,
			Worker:    worker,
			Err:       it.timing.errMsg,
		})
	}
}

func (r *recorder) analyzeEnd(res *Result, err error) {
	cancelled := err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	hits, misses := r.hits.Load(), r.misses.Load()
	if r.ms != nil {
		r.ms.analyzes.Inc()
		if cancelled {
			r.ms.cancels.Inc()
		}
		r.ms.cacheHits.Add(hits)
		r.ms.cacheMisses.Add(misses)
		if res != nil {
			r.ms.evalErrors.Add(int64(res.EvalErrors))
			r.ms.slewFbs.Add(int64(res.SlewFallbacks))
			r.ms.degraded.Add(int64(res.Degraded))
			r.ms.panicsRec.Add(int64(res.PanicsRecovered))
			r.ms.classHits.Add(int64(res.ClassHits))
			r.ms.classes.Add(int64(res.ClassCount))
			if res.ECO.Incremental {
				r.ms.ecoDirty.Add(int64(res.ECO.DirtyStages))
				r.ms.ecoSkipped.Add(int64(res.ECO.SkippedStages))
				r.ms.ecoEarly.Add(int64(res.ECO.EarlyStops))
			}
		}
		r.ms.analyzeSec.Observe(time.Since(r.start).Seconds())
	}
	if r.o != nil {
		info := obs.AnalyzeEndInfo{
			Duration:    time.Since(r.start),
			CacheHits:   hits,
			CacheMisses: misses,
			Err:         err,
			Cancelled:   cancelled,
		}
		if total := hits + misses; total > 0 {
			info.HitRatio = float64(hits) / float64(total)
		}
		if res != nil {
			info.StagesEvaluated = res.StagesEvaluated
			info.EvalErrors = res.EvalErrors
			info.SlewFallbacks = res.SlewFallbacks
		}
		r.o.AnalyzeEnd(info)
	}
}
