package sta

import (
	"math"
	"strings"
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/wave"
)

// truncatedFall builds a falling PWQ from vdd down to floor over span
// seconds — a stand-in for a QWM result whose deep tail was truncated
// (Result.TailTruncated) before reaching the level `floor`.
func truncatedFall(t *testing.T, vdd, floor, span float64) *wave.PWQ {
	t.Helper()
	p := &wave.PWQ{}
	if err := p.Append(wave.QuadSeg{T0: 0, T1: span, V0: vdd, S: -(vdd - floor) / span, A: 0}); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFallbackSlew pins the conservative slew substitute used when the
// 10–90 % measurement fails: the old code silently propagated 0 (an ideal
// step), making downstream stages report optimistic delays.
func TestFallbackSlew(t *testing.T) {
	vdd := tech.VDD

	// Tail truncated between 30 % and 10 %: the 70→30 % chord is available
	// and is scaled by 0.8/0.4 = 2.
	p := truncatedFall(t, vdd, 0.2*vdd, 1e-9)
	t70, ok1 := p.Crossing(0.7*vdd, false)
	t30, ok2 := p.Crossing(0.3*vdd, false)
	if !ok1 || !ok2 {
		t.Fatal("test waveform must cross 70% and 30%")
	}
	got := fallbackSlew(p, vdd, 0, 100e-12)
	want := 2 * (t30 - t70)
	if math.Abs(got-want) > 1e-18 {
		t.Errorf("fallbackSlew = %g, want scaled 70-30 chord %g", got, want)
	}
	if got <= 0 {
		t.Fatalf("fallback slew %g not positive", got)
	}

	// Tail truncated above 30 %: only the coarse bound remains — the larger
	// of the input slew and twice the delay.
	q := truncatedFall(t, vdd, 0.5*vdd, 1e-9)
	if got := fallbackSlew(q, vdd, 0, 80e-12); got != 160e-12 {
		t.Errorf("fallbackSlew without 30%% crossing = %g, want 2×delay = 160 ps", got)
	}
	if got := fallbackSlew(q, vdd, 500e-12, 80e-12); got != 500e-12 {
		t.Errorf("fallbackSlew with slow input = %g, want the 500 ps input slew", got)
	}

	// Degenerate: no crossings, zero delay, zero input slew — still positive.
	if got := fallbackSlew(q, vdd, 0, 0); got <= 0 {
		t.Errorf("degenerate fallback slew %g must stay positive", got)
	}
}

// TestFallbackSlewNonMonotonic: a glitching waveform can cross 30 % before
// 70 % (it starts mid-swing, dips, then recovers). The chord would come out
// negative; the guard must reject it and fall back to the coarse bound.
func TestFallbackSlewNonMonotonic(t *testing.T) {
	vdd := tech.VDD
	p := &wave.PWQ{}
	segs := []wave.QuadSeg{
		// Starts at 50 %, dips to 25 % (first 30 % crossing here) ...
		{T0: 0, T1: 1e-9, V0: 0.5 * vdd, S: -0.25 * vdd / 1e-9},
		// ... recovers to 90 % ...
		{T0: 1e-9, T1: 2e-9, V0: 0.25 * vdd, S: 0.65 * vdd / 1e-9},
		// ... then falls to 60 % (first falling 70 % crossing, late).
		{T0: 2e-9, T1: 3e-9, V0: 0.9 * vdd, S: -0.3 * vdd / 1e-9},
	}
	for _, s := range segs {
		if err := p.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	// Precondition of the scenario: both crossings exist and are out of
	// order (the 30 % crossing precedes the 70 % one).
	t70, ok1 := p.Crossing(0.7*vdd, false)
	t30, ok2 := p.Crossing(0.3*vdd, false)
	if !ok1 || !ok2 || t30 >= t70 {
		t.Fatalf("waveform does not exercise the out-of-order case: t70=%g(%v) t30=%g(%v)", t70, ok1, t30, ok2)
	}
	got := fallbackSlew(p, vdd, 150e-12, 60e-12)
	if got != 150e-12 {
		t.Errorf("non-monotonic fallback = %g, want the 150 ps input-slew bound (never a negative chord)", got)
	}
	if got2 := fallbackSlew(p, vdd, 0, 60e-12); got2 != 120e-12 {
		t.Errorf("non-monotonic fallback without input slew = %g, want 2×delay = 120 ps", got2)
	}
}

// TestFallbackSlewDegenerateVDD: with vdd ≈ 0 every threshold collapses to
// the same level — whatever the crossings report, the estimate must stay
// positive (downstream code divides by and compares against it).
func TestFallbackSlewDegenerateVDD(t *testing.T) {
	p := truncatedFall(t, 1e-30, 0, 1e-9)
	for _, vdd := range []float64{0, 1e-30} {
		if got := fallbackSlew(p, vdd, 0, 0); got <= 0 {
			t.Errorf("vdd=%g: fallback slew %g must stay positive", vdd, got)
		}
		if got := fallbackSlew(p, vdd, 0, 40e-12); got <= 0 {
			t.Errorf("vdd=%g with delay: fallback slew %g must stay positive", vdd, got)
		}
	}
}

// TestDiagnosticsHealthyWithTiers pins the health predicate and the String
// rendering over the ladder fields: any direction below TierQWM, or any
// recovered panic, must flip Healthy and show up in the summary line.
func TestDiagnosticsHealthyWithTiers(t *testing.T) {
	var clean Diagnostics
	clean.TierCounts[TierQWM] = 8
	if !clean.Healthy() {
		t.Error("all-QWM diagnostics must be healthy")
	}
	if got := clean.String(); got != "0 eval errors, 0 slew fallbacks" {
		t.Errorf("clean String() = %q (pinned format changed)", got)
	}

	var d Diagnostics
	d.TierCounts[TierQWM] = 6
	d.TierCounts[TierSpice] = 1
	d.TierCounts[TierBound] = 1
	d.Degraded = 2
	d.EvalTier = map[string]string{"out~rise": "spice", "n1~fall": "rc-bound"}
	if d.Healthy() {
		t.Error("degraded diagnostics reported healthy")
	}
	if s := d.String(); !strings.Contains(s, "2 degraded (spice:1 rc-bound:1)") {
		t.Errorf("String() = %q, want the tier inventory", s)
	}

	var p Diagnostics
	p.PanicsRecovered = 1
	if p.Healthy() {
		t.Error("recovered panic reported healthy")
	}
	if s := p.String(); !strings.Contains(s, "1 panic recovered") {
		t.Errorf("String() = %q, want the panic count", s)
	}

	if (Diagnostics{SlewFallbacks: 1}).Healthy() {
		t.Error("slew fallback reported healthy")
	}
}

// TestRecordEvalIssues pins the per-Analyze error/fallback accounting that
// replaces the old silent swallow of evalDirection failures.
func TestRecordEvalIssues(t *testing.T) {
	r := &Result{}
	r.recordEvalIssues("x", dirTiming{errMsg: "no path"}, dirTiming{ok: true})
	r.recordEvalIssues("y", dirTiming{ok: true, slewFellBack: true}, dirTiming{errMsg: "diverged"})
	// Same key again: count increments, first message is kept.
	r.recordEvalIssues("x", dirTiming{errMsg: "later message"}, dirTiming{ok: true})

	if r.EvalErrors != 3 {
		t.Errorf("EvalErrors = %d, want 3", r.EvalErrors)
	}
	if r.SlewFallbacks != 1 {
		t.Errorf("SlewFallbacks = %d, want 1", r.SlewFallbacks)
	}
	if got := r.EvalErrorDetail["x~fall"]; got != "no path" {
		t.Errorf("EvalErrorDetail[x~fall] = %q, want the first message", got)
	}
	if got := r.EvalErrorDetail["y~rise"]; got != "diverged" {
		t.Errorf("EvalErrorDetail[y~rise] = %q", got)
	}
	if len(r.EvalErrorDetail) != 2 {
		t.Errorf("EvalErrorDetail has %d entries, want 2: %v", len(r.EvalErrorDetail), r.EvalErrorDetail)
	}
}

// TestEvalErrorsSurfaceOnEveryAnalyze checks that a failed direction is
// reported on the Result — and that a *cached* failure is re-reported by
// later Analyze calls (the entry is consulted from the cache, so the
// degradation must stay visible, not vanish after the run that paid the
// miss). A pull-down-only stage gives the rise direction a permanent "no
// path to vdd" failure while the fall direction stays healthy.
func TestEvalErrorsSurfaceOnEveryAnalyze(t *testing.T) {
	nl := &circuit.Netlist{}
	nl.AddTransistor(&circuit.Transistor{Name: "mn", Kind: circuit.KindNMOS, Drain: "out", Gate: "in0", Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
	nl.AddCapacitor("cl", "out", "0", 5e-15)

	a := New(tech, lib)
	for run := 0; run < 2; run++ {
		res, err := a.Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
		if err != nil {
			t.Fatal(err)
		}
		if res.EvalErrors != 1 {
			t.Fatalf("run %d: EvalErrors = %d, want 1 (rise direction has no pull-up)", run, res.EvalErrors)
		}
		if msg := res.EvalErrorDetail["out~rise"]; msg == "" {
			t.Errorf("run %d: no error detail for out~rise: %v", run, res.EvalErrorDetail)
		}
		if res.Arrivals["out"].Fall <= 0 {
			t.Errorf("run %d: healthy fall direction lost: %+v", run, res.Arrivals["out"])
		}
	}
	// The second run consulted the failure from the cache, not a re-miss.
	if st := a.CacheStats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one per direction, cached thereafter)", st.Misses)
	}

	// A healthy inverter reports zero eval errors.
	healthy, err := New(tech, lib).Analyze(inverterChain(1, 1e-6, 2e-6), map[string]Arrival{"in0": {}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.EvalErrors != 0 {
		t.Errorf("healthy inverter reported %d eval errors: %v", healthy.EvalErrors, healthy.EvalErrorDetail)
	}
}
