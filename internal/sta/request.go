package sta

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"qwm/internal/circuit"
	"qwm/internal/faultinject"
	"qwm/internal/obs"
)

// Request is the front door of the request-shaped STA API: one analysis of
// one netlist, with an optional per-request Observer for structured span
// events. The Analyzer-level knobs (Workers, Opts, Metrics, the shared
// delay cache) stay on the Analyzer — a Request carries only what varies
// per call.
type Request struct {
	// Netlist is the circuit to analyze.
	Netlist *circuit.Netlist
	// Primary maps primary-input nets to their arrival times/slews. Inputs
	// missing from the map arrive at t = 0 as ideal steps.
	Primary map[string]Arrival
	// Outputs are the primary outputs the analysis is asked about; the
	// worst arrival and critical path are computed over these.
	Outputs []string
	// Observer, when non-nil, receives this request's span events
	// (AnalyzeStart / LevelStart / StageEval / AnalyzeEnd — see
	// obs.Observer for the ordering and concurrency contract). Nil costs
	// nothing: the engine never constructs an event or reads the clock.
	Observer obs.Observer
	// Budget bounds each stage-direction evaluation (Newton iterations
	// and/or wall clock). Exhausting a budget aborts the running solver
	// tier with ErrBudgetExceeded and escalates the degradation ladder; it
	// never fails the Analyze. The zero value is unlimited.
	//
	// The delay cache is keyed by stage content, not by budget: mixing
	// different budgets across requests on one shared Analyzer serves
	// whichever configuration computed the entry first. Use a dedicated
	// Analyzer per budget regime when that matters.
	Budget EvalBudget
	// Fault, when non-nil, arms the deterministic fault-injection hooks
	// for this request (chaos mode — see internal/faultinject). Every
	// injection decision is a pure hash of (seed, class, site key), so two
	// runs at the same seed inject identical faults at any Workers
	// setting. Nil (production) costs one predictable branch per site.
	// The cache caveat above applies equally to Fault.
	Fault *faultinject.Injector
	// Incremental turns on ECO dirty-cone re-analysis: the Analyzer keeps a
	// per-stage content-digest + arrival memo from the previous incremental
	// run, and only stages whose digest changed (or that sit downstream of a
	// changed arrival) are re-evaluated; the rest replay their memoized
	// arrivals and diagnostics. The first incremental call has no baseline
	// and analyzes everything. Results are bit-for-bit identical to a
	// from-scratch analysis when Epsilon is 0 (see eco.go). Incremental
	// requests on one Analyzer are serialized against each other;
	// non-incremental requests never touch the memo.
	Incremental bool
	// Epsilon is the ECO early-stop tolerance: a re-computed arrival within
	// Epsilon (absolute, per field) of the memoized one does not propagate
	// dirtiness downstream. 0 means exact bit equality — the only setting
	// that preserves the incremental ≡ from-scratch guarantee.
	Epsilon float64
}

// AnalyzeContext runs a full timing analysis for one request: the netlist
// is partitioned into stages, stages are levelized, each level's rise/fall
// evaluations run across the worker pool (reusing cached delays), and
// arrivals propagate from the primary inputs to the requested outputs.
//
// Cancellation: ctx is checked before any work, between dependency levels,
// and inside the worker drain. On cancellation, workers stop picking up
// new items, every in-flight evaluation runs to completion (so the
// single-flight delay cache is never left holding a permanently pending
// entry — a later Analyze on the same Analyzer re-evaluates normally), all
// worker goroutines are joined, and ctx.Err() is returned.
//
// Determinism: for a given request, arrivals, the critical path,
// StagesEvaluated and every deterministic metric (see obs.Snapshot.
// Deterministic) are bit-for-bit identical at any Workers setting.
func (a *Analyzer) AnalyzeContext(ctx context.Context, req Request) (res *Result, err error) {
	a.ensureCache()
	if req.Incremental {
		// Incremental runs read and replace the Analyzer's ECO baseline, so
		// they are serialized; plain runs stay lock-free and concurrent.
		a.ecoMu.Lock()
		defer a.ecoMu.Unlock()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Bail before the single-flight cache sees the request: an
	// already-cancelled context must leave the Analyzer untouched.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Pre-flight validation: reject malformed netlists with a typed
	// ErrInvalidNetlist before any solver (or cache) work happens.
	if err := preflight(req.Netlist); err != nil {
		return nil, err
	}

	stages := circuit.ExtractStages(req.Netlist, req.Outputs)
	if len(stages) == 0 {
		return nil, fmt.Errorf("sta: no logic stages found")
	}

	// Per-request arena: every map, slab and key buffer below comes from the
	// pooled scratch, so a warm Analyze allocates almost nothing. Nothing
	// reachable from the returned Result aliases it (see arena.go).
	s := a.getScratch()
	defer a.putScratch(s)

	// Net → producing stage, then Kahn levelization over gate connectivity.
	producer := s.producer
	for _, st := range stages {
		for _, o := range st.Outputs {
			producer[o] = st
		}
	}
	levels, err := s.levelize(stages, producer)
	if err != nil {
		// A combinational loop is an input defect, not an engine failure:
		// classify it with the rest of the pre-flight taxonomy.
		return nil, fmt.Errorf("%w: %v", ErrInvalidNetlist, err)
	}

	// Fanout-load index: one pass over the netlist instead of a rescan of
	// every transistor and capacitor per stage output.
	loads := &s.ix
	loads.build(req.Netlist, a.Tech)

	workers := a.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Per-request evaluation environment: the budget and fault injector the
	// worker-side degradation ladder reads, falling back to the analyzer's
	// configured defaults (Config.Budget / Config.FaultPlan) when the
	// request carries none. Shared read-only by all workers.
	env := &evalEnv{budget: req.Budget, fault: req.Fault}
	if env.budget == (EvalBudget{}) {
		env.budget = a.Budget
	}
	if env.fault == nil {
		env.fault = a.Fault
	}

	// Observation plumbing: rec is nil unless an observer or a metrics
	// registry is attached, and every instrumentation site below is gated
	// on that one pointer — the unobserved path does no extra work.
	observer := req.Observer
	if observer == nil {
		observer = a.Observer
	}
	// Distributed tracing: a trace reference on the context (minted by the
	// service front door) bridges the Observer span stream into the request's
	// trace tree and arms traced tier probing (env.trace). The untraced path
	// pays exactly one context Value lookup.
	if ref, ok := obs.TraceFrom(ctx); ok {
		bridge := obs.NewTraceBridge(ref)
		if observer != nil {
			observer = obs.Multi{observer, bridge}
		} else {
			observer = bridge
		}
		env.trace = obs.TraceRef{T: ref.T, Parent: bridge.AnalyzeID(), Level: ref.Level, Item: ref.Item}
	}
	rec := a.newRecorder(observer)
	if rec != nil {
		totalItems := 0
		for _, st := range stages {
			totalItems += 2 * len(st.Outputs)
		}
		rec.analyzeStart(obs.AnalyzeStartInfo{
			Stages:  len(stages),
			Levels:  len(levels),
			Items:   totalItems,
			Outputs: len(req.Outputs),
			Workers: workers,
		})
		defer func() { rec.analyzeEnd(res, err) }()
	}

	res = &Result{Arrivals: map[string]Arrival{}}
	evalStart := a.cache.evals.Load()
	// Key-derivation context: the reduction signature suffixes every content
	// key (reduced and unreduced evaluations must never alias), and Memo
	// mode tracks the distinct structural classes seen this Analyze (the
	// scratch's classSeen set). Both live in the sequential gather phase, so
	// the tallies are schedule-independent.
	redSig := a.Reduction.Signature()
	for net, ar := range req.Primary {
		res.Arrivals[circuit.CanonName(net)] = ar
	}

	// Incremental (ECO) mode: diff per-stage content digests against the
	// previous committed run and schedule only dirty stages (see eco.go).
	var eco *ecoRun
	if req.Incremental {
		eco = a.beginECO(s, res, producer, req.Epsilon)
		res.ECO.Incremental = true
	}

	for li, level := range levels {
		// Cancellation checkpoint between levels: completed levels keep
		// their cache entries, the rest of the schedule is abandoned.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}

		// Clean stages replay their memoized arrivals inside filterLevel;
		// only the dirty remainder reaches the gather/evaluate machinery.
		if eco != nil {
			level = eco.filterLevel(a, s, level, loads, res, redSig)
			if len(level) == 0 {
				continue
			}
		}

		// Size this level's slabs up front: appends below can then never
		// reallocate, so the &evs[i] pointers handed to work items stay
		// stable while the level is filled.
		nOut := 0
		for _, st := range level {
			nOut += len(st.Outputs)
		}
		evs := s.evs
		if cap(evs) < nOut {
			evs = make([]outEval, nOut)
		} else {
			evs = evs[:nOut]
		}
		items := s.items
		if cap(items) < 2*nOut {
			items = make([]workItem, 2*nOut)
		} else {
			items = items[:2*nOut]
		}
		s.evs, s.items = evs, items
		ins := s.ins[:0]
		// Load maps are per level: an output's map is dead once its level's
		// apply phase completes, so each level reuses the pool from the top.
		s.resetLoadMaps()

		// Gather phase (sequential): the worst input arrivals per stage
		// depend only on completed earlier levels. The per-output evaluation
		// context (stage-content key + load digest + load map) is built here,
		// once per (stage, output), so the parallel lookup path below does no
		// key formatting at all.
		vi := 0
		for _, st := range level {
			si := gatherInputs(st, res.Arrivals)
			ins = append(ins, si)
			for _, out := range st.Outputs {
				ol := loads.stageLoadsInto(s.loadMap(), st, out)
				kb := s.appendStageKey(s.keyBuf[:0], st, out)
				kb = append(kb, '|')
				kb = s.appendLoadDigest(kb, ol)
				kb = append(kb, redSig...)
				s.keyBuf = kb
				ev := &evs[vi]
				vi++
				*ev = outEval{contentKey: a.keys.intern(kb), loads: ol}
				a.resolveBases(s, ev, st, out, redSig, res)
				// An input that rises makes the pull-down conduct (output
				// falls), and vice versa; each direction sees the slew of
				// the edge that triggers it.
				n := 2 * (vi - 1)
				resetItem(&items[n], st, out, ev, circuit.GroundNode, si.riseSlew, li, n)
				resetItem(&items[n+1], st, out, ev, circuit.SupplyNode, si.fallSlew, li, n+1)
			}
		}
		s.ins = ins

		var levelStart time.Time
		if rec != nil {
			rec.levelStart(obs.LevelStartInfo{
				Level:  li,
				Levels: len(levels),
				Stages: len(level),
				Items:  len(items),
			})
			levelStart = time.Now()
		}

		// Evaluate phase (parallel): drain the level's items through the
		// worker pool; the single-flight cache deduplicates identical keys.
		if rerr := a.runItems(ctx, items, workers, rec, env); rerr != nil {
			return nil, rerr
		}

		if rec != nil {
			rec.levelDone(time.Since(levelStart))
		}

		// Apply phase (sequential, deterministic): fold results into
		// arrivals in stage/output order, exactly as the serial engine.
		k := 0
		for si2, st := range level {
			si := &ins[si2]
			for oi, out := range st.Outputs {
				fall, rise := items[k].timing, items[k+1].timing
				k += 2
				res.recordEvalIssues(out, fall, rise)
				if !fall.ok && !rise.ok {
					return nil, fmt.Errorf("sta: stage %s output %q has neither pull-up nor pull-down path", st.Name, out)
				}
				ar := res.Arrivals[out]
				if fall.ok {
					ar.Fall = si.latestRise + fall.delay
					ar.FallSlew = fall.slew
					s.predFall[out] = si.riseFrom
				}
				if rise.ok {
					ar.Rise = si.latestFall + rise.delay
					ar.RiseSlew = rise.slew
					s.predRise[out] = si.fallFrom
				}
				res.Arrivals[out] = ar
				if eco != nil {
					eco.noteOutput(st, oi, out, ar, fall, rise, res)
				}
			}
		}
	}

	// Worst requested output and its path.
	worst, worstNet, worstDir := -1.0, "", ""
	for _, o := range req.Outputs {
		o = circuit.CanonName(o)
		ar, ok := res.Arrivals[o]
		if !ok {
			return nil, fmt.Errorf("sta: output %q has no arrival (not driven?)", o)
		}
		if ar.Fall > worst {
			worst, worstNet, worstDir = ar.Fall, o, "fall"
		}
		if ar.Rise > worst {
			worst, worstNet, worstDir = ar.Rise, o, "rise"
		}
	}
	res.WorstArrival = worst
	res.WorstOutput = worstNet
	res.StagesEvaluated = int(a.cache.evals.Load() - evalStart)
	// Trace the critical path back through alternating directions.
	net, dir := worstNet, worstDir
	for net != "" {
		res.CriticalPath = append(res.CriticalPath, net)
		p := s.predFall[net]
		if dir != "fall" {
			p = s.predRise[net]
		}
		if dir == "fall" {
			dir = "rise"
		} else {
			dir = "fall"
		}
		if p == net {
			break
		}
		net = p
	}
	// Commit the new ECO baseline only on success: a failed or cancelled run
	// leaves the previous self-consistent memo in place.
	if eco != nil {
		a.ecoPrev = eco.commit(s, res, req)
	}
	return res, nil
}
