package sta

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/faultinject"
	"qwm/internal/qwm"
)

// analyzeFaulted runs one Analyze of a small inverter chain on a fresh
// Analyzer (so faulted cache entries never leak between experiments) with
// the given injector and worker count.
func analyzeFaulted(t *testing.T, inj *faultinject.Injector, workers int, budget EvalBudget) *Result {
	t.Helper()
	a := New(tech, lib)
	a.Workers = workers
	res, err := a.AnalyzeContext(nil, Request{
		Netlist: inverterChain(3, 1e-6, 2e-6),
		Primary: map[string]Arrival{"in0": {}},
		Outputs: []string{"out"},
		Budget:  budget,
		Fault:   inj,
	})
	if err != nil {
		t.Fatalf("degraded analyze must still complete, got: %v", err)
	}
	return res
}

// requireConservative asserts every degraded arrival is at or above its
// clean counterpart — the ladder's core contract.
func requireConservative(t *testing.T, clean, got *Result, label string) {
	t.Helper()
	const eps = 1e-12
	for net, ref := range clean.Arrivals {
		g, ok := got.Arrivals[net]
		if !ok {
			t.Errorf("%s: net %s missing from degraded arrivals", label, net)
			continue
		}
		if g.Rise < ref.Rise*(1-eps) || g.Fall < ref.Fall*(1-eps) {
			t.Errorf("%s: net %s degraded arrival (r %g, f %g) below clean (r %g, f %g)",
				label, net, g.Rise, g.Fall, ref.Rise, ref.Fall)
		}
	}
}

// TestLadderNRDivergenceEscalatesToSpice: killing every QWM region solve
// (Newton and bisection tiers alike) must land each direction on the spice
// tier, with complete and conservative arrivals.
func TestLadderNRDivergenceEscalatesToSpice(t *testing.T) {
	clean := analyzeFaulted(t, nil, 1, EvalBudget{})
	if !clean.Diagnostics.Healthy() {
		t.Fatalf("clean run not healthy: %s", clean.Diagnostics)
	}
	if clean.TierCounts[TierQWM] == 0 {
		t.Fatalf("clean run produced no QWM-tier timings: %v", clean.TierCounts)
	}

	inj := faultinject.New(3).Enable(faultinject.NRDivergence, 1)
	res := analyzeFaulted(t, inj, 1, EvalBudget{})
	if res.Diagnostics.Healthy() {
		t.Fatal("rate-1 NR divergence left the run healthy")
	}
	if res.TierCounts[TierSpice] == 0 {
		t.Errorf("no direction landed on the spice tier: %v", res.TierCounts)
	}
	if res.TierCounts[TierQWM] != 0 || res.TierCounts[TierBisect] != 0 {
		t.Errorf("QWM tiers survived a rate-1 divergence injection: %v", res.TierCounts)
	}
	if res.Degraded != len(res.EvalTier) {
		t.Errorf("Degraded = %d but EvalTier has %d entries", res.Degraded, len(res.EvalTier))
	}
	requireConservative(t, clean, res, "nr-divergence")
}

// TestLadderPanicIsolation: a synthetic panic in every numerical tier must
// be recovered at the tier boundary (counted in PanicsRecovered), leaving
// the RC-bound floor to answer — the Analyze never fails and no worker
// goroutine is lost, at any worker count.
func TestLadderPanicIsolation(t *testing.T) {
	clean := analyzeFaulted(t, nil, 1, EvalBudget{})
	for _, workers := range []int{1, 8} {
		inj := faultinject.New(5).Enable(faultinject.Panic, 1)
		res := analyzeFaulted(t, inj, workers, EvalBudget{})
		if res.PanicsRecovered == 0 {
			t.Fatalf("workers=%d: no panics recovered despite rate-1 injection", workers)
		}
		if res.TierCounts[TierBound] == 0 {
			t.Errorf("workers=%d: panicking tiers must fall through to rc-bound: %v", workers, res.TierCounts)
		}
		for net := range clean.Arrivals {
			if _, ok := res.Arrivals[net]; !ok {
				t.Errorf("workers=%d: net %s missing (completeness)", workers, net)
			}
		}
		requireConservative(t, clean, res, "panic")
	}
}

// TestLadderBudgetDegradesNeverFails: a starvation-level NR budget aborts
// the QWM tiers but must degrade, not fail — every direction resolves below
// TierQWM and stays conservative.
func TestLadderBudgetDegradesNeverFails(t *testing.T) {
	clean := analyzeFaulted(t, nil, 1, EvalBudget{})
	res := analyzeFaulted(t, nil, 1, EvalBudget{NRIters: 1})
	if res.Diagnostics.Healthy() {
		t.Fatal("NRIters=1 budget left the run healthy")
	}
	if res.TierCounts[TierQWM] != 0 {
		t.Errorf("QWM tier answered under a 1-iteration budget: %v", res.TierCounts)
	}
	if res.Degraded == 0 {
		t.Error("budget starvation must show up as degraded directions")
	}
	requireConservative(t, clean, res, "budget")
}

// TestLadderRecoverableFaultsAreInvisible: PivotBreakdown is absorbed by the
// dense-LU rescue and CacheStall is pure latency — both must produce
// bit-for-bit the clean result with zero degradation.
func TestLadderRecoverableFaultsAreInvisible(t *testing.T) {
	clean := analyzeFaulted(t, nil, 1, EvalBudget{})
	for _, class := range []faultinject.Class{faultinject.PivotBreakdown, faultinject.CacheStall} {
		inj := faultinject.New(9).Enable(class, 1)
		res := analyzeFaulted(t, inj, 1, EvalBudget{})
		if res.Degraded != 0 || res.PanicsRecovered != 0 {
			t.Errorf("%s: degraded %d, panics %d; recoverable faults must be invisible",
				class, res.Degraded, res.PanicsRecovered)
		}
		for net, ref := range clean.Arrivals {
			if got := res.Arrivals[net]; got != ref {
				t.Errorf("%s: net %s arrival %+v, want bit-identical clean %+v", class, net, got, ref)
			}
		}
	}
}

// TestLadderDeterministicAcrossWorkers: the same injector seed must produce
// bit-for-bit identical degraded results and tier inventories at Workers 1
// and 8 — the property the key-hash injection design exists to guarantee.
func TestLadderDeterministicAcrossWorkers(t *testing.T) {
	mk := func() *faultinject.Injector { return faultinject.New(11).Enable(faultinject.NRDivergence, 1) }
	s := analyzeFaulted(t, mk(), 1, EvalBudget{})
	p := analyzeFaulted(t, mk(), 8, EvalBudget{})
	if s.TierCounts != p.TierCounts {
		t.Errorf("tier counts differ across workers: %v vs %v", s.TierCounts, p.TierCounts)
	}
	for net, ref := range s.Arrivals {
		if got := p.Arrivals[net]; got != ref {
			t.Errorf("net %s: workers=8 arrival %+v, want workers=1 value %+v", net, got, ref)
		}
	}
}

// TestLadderStructuralFailureDoesNotEscalate: a stage with no pull-up path
// is an input property, not a solver failure — the rise direction must fail
// with an error, not burn through the ladder to a bogus rc-bound answer.
func TestLadderStructuralFailureDoesNotEscalate(t *testing.T) {
	a := New(tech, lib)
	nl := pulldownOnly()
	res, err := a.Analyze(nl, map[string]Arrival{"in0": {}}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	if res.EvalErrors != 1 {
		t.Fatalf("EvalErrors = %d, want 1 (structural rise failure)", res.EvalErrors)
	}
	if msg := res.EvalErrorDetail["out~rise"]; strings.Contains(msg, "all tiers failed") {
		t.Errorf("structural failure escalated the ladder: %q", msg)
	}
	if res.Degraded != 0 {
		t.Errorf("structural failure must not count as degradation: %d", res.Degraded)
	}
}

// TestErrorTaxonomySentinels pins the re-exported sentinels: a failure
// wrapped at the solver layer must classify through the sta-level aliases,
// so callers holding only an sta import never need to import internal/qwm.
func TestErrorTaxonomySentinels(t *testing.T) {
	if !errors.Is(fmt.Errorf("%w: region 3", qwm.ErrNoConvergence), ErrNoConvergence) {
		t.Error("solver convergence failure does not match sta.ErrNoConvergence")
	}
	if !errors.Is(fmt.Errorf("%w: NR budget 5", qwm.ErrBudgetExceeded), ErrBudgetExceeded) {
		t.Error("solver budget abort does not match sta.ErrBudgetExceeded")
	}
	if !errors.Is(fmt.Errorf("%w: %v", ErrPanicRecovered, "synthetic"), ErrPanicRecovered) {
		t.Error("wrapped panic error does not match ErrPanicRecovered")
	}
	if errors.Is(ErrBudgetExceeded, ErrNoConvergence) {
		t.Error("budget and convergence sentinels must stay distinct")
	}
}

// TestTierString pins the canonical tier names used in cache keys, metrics
// names and chaos reports.
func TestTierString(t *testing.T) {
	want := map[Tier]string{
		TierQWM:    "qwm",
		TierBisect: "qwm-bisect",
		TierSpice:  "spice",
		TierBound:  "rc-bound",
	}
	for tier, name := range want {
		if tier.String() != name {
			t.Errorf("Tier(%d).String() = %q, want %q", tier, tier.String(), name)
		}
	}
	if s := Tier(200).String(); s != "tier(200)" {
		t.Errorf("out-of-range tier rendered %q", s)
	}
}

// pulldownOnly is an NMOS-only stage: the fall direction is healthy, the
// rise direction has no structural path to vdd.
func pulldownOnly() *circuit.Netlist {
	nl := &circuit.Netlist{}
	nl.AddTransistor(&circuit.Transistor{Name: "mn", Kind: circuit.KindNMOS, Drain: "out", Gate: "in0", Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
	nl.AddCapacitor("cl", "out", "0", 5e-15)
	return nl
}
