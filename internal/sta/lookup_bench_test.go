package sta

import (
	"testing"

	"qwm/internal/stages"
)

// BenchmarkWarmCacheLookup measures the all-hits Analyze path on the 3-bit
// decoder: the cache is warmed once, so every iteration exercises only the
// gather/lookup/apply machinery. Before the per-(stage, output) key memo,
// every lookup re-sorted and re-formatted the stage's edges (fmt.Sprintf per
// edge, twice per output per level); now the content key and load digest are
// built once per output per Analyze and the lookup itself is a single
// concatenation. Run with -benchmem to see the allocation drop.
func BenchmarkWarmCacheLookup(b *testing.B) {
	nl, ins, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	if err != nil {
		b.Fatal(err)
	}
	a := New(tech, lib)
	a.Workers = 1
	primary := map[string]Arrival{}
	for _, in := range ins {
		primary[in] = Arrival{}
	}
	if _, err := a.Analyze(nl, primary, outs); err != nil {
		b.Fatal(err)
	}
	warm := a.CacheStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(nl, primary, outs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := a.CacheStats(); st.Misses != warm.Misses {
		b.Fatalf("warm loop added %d misses", st.Misses-warm.Misses)
	}
}
