package devmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qwm/internal/mos"
)

var (
	tech   = mos.CMOSP35()
	nTable *Table
	pTable *Table
)

func init() {
	var err error
	nTable, err = Characterize(&tech.N, tech, 0.35e-6, 0.1)
	if err != nil {
		panic(err)
	}
	pTable, err = Characterize(&tech.P, tech, 0.35e-6, 0.1)
	if err != nil {
		panic(err)
	}
}

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestTableMatchesAnalyticOnGrid(t *testing.T) {
	// At grid points, only the Vds fit error remains (the paper's Fig. 8
	// residual): require better than 3.5 % — the worst case sits at the
	// triode/saturation knee the two-piece fit straddles.
	ana := NewAnalytic(&tech.N, tech, 0.35e-6)
	w := 1e-6
	for _, vg := range []float64{1.0, 2.0, 3.3} {
		for _, vs := range []float64{0, 0.5, 1.5} {
			for _, vd := range []float64{0.2, 1.0, 2.2, 3.3} {
				if vd <= vs {
					continue
				}
				it, _, _, _ := nTable.IV(w, vg, vd, vs)
				ia, _, _, _ := ana.IV(w, vg, vd, vs)
				if math.Abs(it-ia) > 0.035*math.Abs(ia)+1e-7 {
					t.Errorf("vg=%g vd=%g vs=%g: table %g vs analytic %g", vg, vd, vs, it, ia)
				}
			}
		}
	}
}

// The table's average relative error over the strong-inversion operating
// space must stay near the paper's ~1 % characterization quality.
func TestTableAverageAccuracyStrongInversion(t *testing.T) {
	ana := NewAnalytic(&tech.N, tech, 0.35e-6)
	sum, cnt := 0.0, 0
	for vg := 0.8; vg <= 3.31; vg += 0.137 {
		for vs := 0.0; vs <= 2.4; vs += 0.117 {
			if vg-vs-tech.N.Vth(vs, 0) < 0.3 {
				continue
			}
			for vd := vs + 0.05; vd <= 3.3; vd += 0.093 {
				it, _, _, _ := nTable.IV(1e-6, vg, vd, vs)
				ia, _, _, _ := ana.IV(1e-6, vg, vd, vs)
				sum += math.Abs(it-ia) / (math.Abs(ia) + 1e-6)
				cnt++
			}
		}
	}
	avg := 100 * sum / float64(cnt)
	if avg > 2.0 {
		t.Errorf("average strong-inversion error %.2f%%, want < 2%%", avg)
	}
}

// Property: off-grid strong-inversion queries stay within bilinear
// interpolation distance of the analytic model. Near threshold the current
// varies super-linearly across a 0.1 V grid cell, so the guarantee is
// restricted to healthy gate overdrive — the regime that carries the
// discharge current.
func TestTableAccuracyOffGridProperty(t *testing.T) {
	ana := NewAnalytic(&tech.N, tech, 0.35e-6)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := 2.0 * r.Float64()
		vth := tech.N.Vth(vs, 0)
		vg := vs + vth + 0.5 + (3.3-vs-vth-0.5)*r.Float64()
		if vg > 3.3 {
			return true
		}
		vd := vs + 0.05 + (3.3-vs-0.05)*r.Float64()
		w := (0.5 + 4*r.Float64()) * 1e-6
		it, _, _, _ := nTable.IV(w, vg, vd, vs)
		ia, _, _, _ := ana.IV(w, vg, vd, vs)
		return math.Abs(it-ia) <= 0.08*math.Abs(ia)+1e-6*w/1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableWidthScaling(t *testing.T) {
	i1, _, _, _ := nTable.IV(1e-6, 3.3, 2.0, 0)
	i2, _, _, _ := nTable.IV(3e-6, 3.3, 2.0, 0)
	if !feq(i2, 3*i1, 1e-12) {
		t.Errorf("width scaling: %g vs %g", i2, 3*i1)
	}
}

func TestTableReverseConduction(t *testing.T) {
	// vd < vs: current must be the negated swap.
	fwd, _, _, _ := nTable.IV(1e-6, 3.3, 2.0, 1.0)
	rev, _, _, _ := nTable.IV(1e-6, 3.3, 1.0, 2.0)
	if !feq(rev, -fwd, 1e-12) {
		t.Errorf("reverse = %g, want %g", rev, -fwd)
	}
}

func TestTableDerivativesMatchFD(t *testing.T) {
	w := 1.5e-6
	const h = 1e-4
	// Interior points only: at the vg = VDD grid boundary a central finite
	// difference straddles the clamped extrapolation region.
	for _, c := range []struct{ vg, vd, vs float64 }{
		{3.15, 2.5, 0.4}, {2.2, 1.7, 0.9}, {1.4, 0.8, 0.15}, {3.0, 3.1, 2.3},
	} {
		_, dvg, dvd, dvs := nTable.IV(w, c.vg, c.vd, c.vs)
		ip := func(vg, vd, vs float64) float64 {
			i, _, _, _ := nTable.IV(w, vg, vd, vs)
			return i
		}
		fdg := (ip(c.vg+h, c.vd, c.vs) - ip(c.vg-h, c.vd, c.vs)) / (2 * h)
		fdd := (ip(c.vg, c.vd+h, c.vs) - ip(c.vg, c.vd-h, c.vs)) / (2 * h)
		fds := (ip(c.vg, c.vd, c.vs+h) - ip(c.vg, c.vd, c.vs-h)) / (2 * h)
		scale := math.Abs(ip(c.vg, c.vd, c.vs)) + 1e-6
		// The interpolant is piecewise; allow loose agreement away from cell
		// boundaries.
		if math.Abs(dvg-fdg) > 0.02*scale/0.1 && math.Abs(dvg-fdg) > 0.05*math.Abs(fdg)+1e-7 {
			t.Errorf("%+v: dvg %g vs fd %g", c, dvg, fdg)
		}
		if math.Abs(dvd-fdd) > 0.05*math.Abs(fdd)+1e-7 {
			t.Errorf("%+v: dvd %g vs fd %g", c, dvd, fdd)
		}
		if math.Abs(dvs-fds) > 0.05*math.Abs(fds)+0.03*scale/0.1+1e-7 {
			t.Errorf("%+v: dvs %g vs fd %g", c, dvs, fds)
		}
	}
}

func TestPMOSFoldedTableMatchesGolden(t *testing.T) {
	// Folded PMOS current at (vg', vd', vs') equals −Ids at unfolded nodes.
	w := 2e-6
	for _, c := range []struct{ vg, vd, vs float64 }{
		{3.3, 2.5, 0.3}, {2.5, 1.5, 0.2}, {3.0, 3.0, 1.0},
	} {
		it, _, _, _ := pTable.IV(w, c.vg, c.vd, c.vs)
		want := -tech.P.Ids(w, 0.35e-6, tech.VDD-c.vg, tech.VDD-c.vd, tech.VDD-c.vs, tech.VDD).I
		if math.Abs(it-want) > 0.05*math.Abs(want)+1e-6 {
			t.Errorf("%+v: folded table %g vs golden %g", c, it, want)
		}
		if want > 0 && it <= 0 {
			t.Errorf("%+v: folded current should be positive", c)
		}
	}
}

func TestThresholdInterpolation(t *testing.T) {
	// Table threshold should track the golden Vth within interpolation error.
	for _, vs := range []float64{0, 0.37, 1.0, 2.21} {
		got := nTable.Threshold(vs)
		want := tech.N.Vth(vs, 0)
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("Threshold(%g) = %g, want %g", vs, got, want)
		}
	}
	if nTable.Threshold(0) >= nTable.Threshold(1.5) {
		t.Error("threshold should rise with source voltage (body effect)")
	}
}

func TestVdsatInterpolation(t *testing.T) {
	got := nTable.Vdsat(3.3, 0)
	want := tech.N.VdsatValue(0.35e-6, 3.3, 0, 0)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("Vdsat = %g, want %g", got, want)
	}
	if nTable.Vdsat(1.2, 0) >= nTable.Vdsat(3.3, 0) {
		t.Error("Vdsat should grow with gate drive")
	}
}

func TestEntryEvalContinuity(t *testing.T) {
	// Triode and saturation fits should roughly meet at Vdsat for a strongly
	// on grid point.
	ig, is := nTable.N-1, 0 // vg = VDD, vs = 0
	e := &nTable.Grid[ig][is]
	iT, _ := e.Eval(e.Vdsat - 1e-9)
	iS, _ := e.Eval(e.Vdsat + 1e-9)
	if math.Abs(iT-iS) > 0.03*math.Abs(iS) {
		t.Errorf("fit discontinuity at Vdsat: %g vs %g", iT, iS)
	}
}

func TestTableOffStateSmallCurrent(t *testing.T) {
	i, _, _, _ := nTable.IV(1e-6, 0, 3.3, 0)
	if math.Abs(i) > 1e-7 {
		t.Errorf("off-state current too large: %g", i)
	}
}

func TestCharacterizeValidation(t *testing.T) {
	if _, err := Characterize(&tech.N, tech, 0.35e-6, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Characterize(&tech.N, tech, 0, 0.1); err == nil {
		t.Error("zero length accepted")
	}
}

func TestLibraryCaches(t *testing.T) {
	lib := NewLibrary(tech)
	t1, err := lib.Table(mos.NMOS, 0.35e-6)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := lib.Table(mos.NMOS, 0.35e-6)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("library did not cache the table")
	}
	t3, err := lib.Table(mos.PMOS, 0.35e-6)
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Error("distinct polarity should get a distinct table")
	}
	if t1.Entries() != t1.N*t1.N {
		t.Error("Entries accounting wrong")
	}
}

func TestAnalyticAdapterDerivatives(t *testing.T) {
	ana := NewAnalytic(&tech.P, tech, 0.35e-6)
	const h = 1e-6
	vg, vd, vs, w := 2.8, 2.0, 0.4, 1e-6
	_, dvg, dvd, dvs := ana.IV(w, vg, vd, vs)
	ip := func(vg, vd, vs float64) float64 {
		i, _, _, _ := ana.IV(w, vg, vd, vs)
		return i
	}
	fdg := (ip(vg+h, vd, vs) - ip(vg-h, vd, vs)) / (2 * h)
	fdd := (ip(vg, vd+h, vs) - ip(vg, vd-h, vs)) / (2 * h)
	fds := (ip(vg, vd, vs+h) - ip(vg, vd, vs-h)) / (2 * h)
	if !feq(dvg, fdg, 1e-3) || !feq(dvd, fdd, 1e-3) || !feq(dvs, fds, 1e-3) {
		t.Errorf("folded analytic derivatives mismatch FD: (%g,%g,%g) vs (%g,%g,%g)",
			dvg, dvd, dvs, fdg, fdd, fds)
	}
}

// Ablation: halving the characterization grid pitch reduces the average
// interpolation error (the paper's "as long as the grid size is fine
// enough" remark, traded against table memory).
func TestGridPitchAblation(t *testing.T) {
	ana := NewAnalytic(&tech.N, tech, 0.35e-6)
	avgErr := func(tbl *Table) float64 {
		sum, cnt := 0.0, 0
		for vg := 0.9; vg <= 3.3; vg += 0.17 {
			for vs := 0.0; vs <= 2.2; vs += 0.13 {
				if vg-vs-tech.N.Vth(vs, 0) < 0.3 {
					continue
				}
				for vd := vs + 0.07; vd <= 3.3; vd += 0.21 {
					it, _, _, _ := tbl.IV(1e-6, vg, vd, vs)
					ia, _, _, _ := ana.IV(1e-6, vg, vd, vs)
					sum += math.Abs(it-ia) / (math.Abs(ia) + 1e-6)
					cnt++
				}
			}
		}
		return sum / float64(cnt)
	}
	coarse, err := Characterize(&tech.N, tech, 0.35e-6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Characterize(&tech.N, tech, 0.35e-6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	eCoarse, eMid, eFine := avgErr(coarse), avgErr(nTable), avgErr(fine)
	if !(eFine < eMid && eMid < eCoarse) {
		t.Errorf("error should fall with pitch: 0.3V %.4f, 0.1V %.4f, 0.05V %.4f",
			eCoarse, eMid, eFine)
	}
	// Memory grows roughly quadratically with 1/pitch (≈ 3.9× from the
	// +1-fencepost at this range).
	if fine.Entries() <= 3*nTable.Entries() {
		t.Errorf("entry counts: fine %d vs default %d", fine.Entries(), nTable.Entries())
	}
}
