package devmodel

import (
	"sync"

	"qwm/internal/mos"
)

// IVModel is the paper's Definition 2 device model restricted to the queries
// the QWM engine performs, in folded (discharge-normal) coordinates. Both
// the characterized Table and the direct Analytic adapter implement it, so
// the table-vs-analytic ablation swaps implementations freely.
type IVModel interface {
	// IV returns the channel current from the upper to the lower chain node
	// and its partial derivatives with respect to the gate, upper, and lower
	// node voltages.
	IV(w, vg, vd, vs float64) (i, dvg, dvd, dvs float64)
	// Threshold returns the body-effect threshold for a device whose lower
	// node sits at vs.
	Threshold(vs float64) float64
	// Vdsat returns the saturation voltage at (vg, vs).
	Vdsat(vg, vs float64) float64
	// Params exposes the underlying golden parameters for capacitance
	// queries.
	Params() *mos.Params
}

// Analytic evaluates the golden model directly instead of through the
// characterized table — the "no table" ablation arm, and the accuracy
// reference for table tests.
type Analytic struct {
	P    *mos.Params
	L    float64
	VDD  float64
	body float64
}

// NewAnalytic builds a direct adapter for one polarity and channel length.
func NewAnalytic(p *mos.Params, tech *mos.Tech, l float64) *Analytic {
	body := 0.0
	if p.Pol == mos.PMOS {
		body = tech.VDD
	}
	return &Analytic{P: p, L: l, VDD: tech.VDD, body: body}
}

// IV implements IVModel.
func (a *Analytic) IV(w, vg, vd, vs float64) (i, dvg, dvd, dvs float64) {
	if a.P.Pol == mos.PMOS {
		// Fold: negate both the arguments and the current. The two sign
		// flips cancel in every derivative.
		iv := a.P.Ids(w, a.L, a.VDD-vg, a.VDD-vd, a.VDD-vs, a.body)
		return -iv.I, iv.DVg, iv.DVd, iv.DVs
	}
	iv := a.P.Ids(w, a.L, vg, vd, vs, a.body)
	return iv.I, iv.DVg, iv.DVd, iv.DVs
}

// Threshold implements IVModel.
func (a *Analytic) Threshold(vs float64) float64 {
	if a.P.Pol == mos.PMOS {
		return a.P.Vth(a.VDD-vs, a.body)
	}
	return a.P.Vth(vs, a.body)
}

// Vdsat implements IVModel.
func (a *Analytic) Vdsat(vg, vs float64) float64 {
	if a.P.Pol == mos.PMOS {
		return a.P.VdsatValue(a.L, a.VDD-vg, a.VDD-vs, a.body)
	}
	return a.P.VdsatValue(a.L, vg, vs, a.body)
}

// Params implements IVModel.
func (a *Analytic) Params() *mos.Params { return a.P }

// Library caches characterized tables per (polarity, channel length) so
// repeated analyses share the one-time characterization cost, mirroring how
// a production flow characterizes a technology once.
type Library struct {
	Tech  *mos.Tech
	StepV float64 // grid pitch; 0.1 V default

	mu     sync.Mutex
	tables map[libKey]*Table
}

type libKey struct {
	pol mos.Polarity
	l   float64
}

// NewLibrary creates an empty table cache with the paper's 0.1 V pitch.
func NewLibrary(tech *mos.Tech) *Library {
	return &Library{Tech: tech, StepV: 0.1, tables: map[libKey]*Table{}}
}

// Table returns the characterized table for a polarity and channel length,
// building it on first use.
func (lib *Library) Table(pol mos.Polarity, l float64) (*Table, error) {
	lib.mu.Lock()
	defer lib.mu.Unlock()
	k := libKey{pol, l}
	if t, ok := lib.tables[k]; ok {
		return t, nil
	}
	p := &lib.Tech.N
	if pol == mos.PMOS {
		p = &lib.Tech.P
	}
	t, err := Characterize(p, lib.Tech, l, lib.StepV)
	if err != nil {
		return nil, err
	}
	lib.tables[k] = t
	return t, nil
}
