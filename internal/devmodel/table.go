// Package devmodel implements the paper's device characterization (§V-A):
// the analytic golden model is swept on a 0.1 V (Vg, Vs) grid and, per grid
// point, the drain-voltage dependence of the channel current is compressed
// into seven parameters — a linear fit in the saturation region, a quadratic
// fit in the triode region (Fig. 8), plus the threshold and saturation
// voltages. Queries bilinearly interpolate between grid points and provide
// the fast analytic ∂I/∂Vd and ∂I/∂Vs the QWM Jacobian needs.
//
// Both polarities are characterized in "folded" discharge-normal
// coordinates: for PMOS every voltage v is replaced by VDD − v and the
// current negated, which turns a pull-up path into the same mathematical
// object as an NMOS pull-down. The QWM engine works entirely in folded
// space and un-folds its output waveforms at the end.
package devmodel

import (
	"fmt"
	"math"
	"sync"

	"qwm/internal/la"
	"qwm/internal/mos"
)

// Entry is one grid point's seven characterization parameters (paper §V-A:
// "we store 7 parameters for each Vs/Vg pair").
type Entry struct {
	S1, S2     float64 // saturation: I = S1·Vds + S2
	T0, T1, T2 float64 // triode:     I = T2·Vds² + T1·Vds + T0
	Vth        float64 // body-effect threshold at this Vs
	Vdsat      float64 // triode/saturation boundary
}

// Eval returns the fitted current and its ∂I/∂Vds at drain-source voltage
// vds ≥ 0, switching between the triode and saturation fits at Vdsat.
func (e *Entry) Eval(vds float64) (i, didvds float64) {
	if vds < e.Vdsat {
		return e.T2*vds*vds + e.T1*vds + e.T0, 2*e.T2*vds + e.T1
	}
	return e.S1*vds + e.S2, e.S1
}

// Table is a characterized device: a (Vg, Vs) grid of Entries at a reference
// width, valid for one channel length. Currents scale linearly with width.
type Table struct {
	Pol   mos.Polarity
	L     float64
	VDD   float64
	StepV float64 // grid pitch (0.1 V in the paper)
	WRef  float64
	N     int // grid points per axis: 0..N-1 covering [0, VDD]
	Grid  [][]Entry

	params *mos.Params
	body   float64 // body voltage in unfolded space
}

// sample returns the folded channel current of the underlying golden model:
// positive current from the folded-drain (upper) to folded-source (lower)
// terminal.
func (t *Table) sample(w, vg, vd, vs float64) float64 {
	if t.Pol == mos.PMOS {
		return -t.params.Ids(w, t.L, t.VDD-vg, t.VDD-vd, t.VDD-vs, t.body).I
	}
	return t.params.Ids(w, t.L, vg, vd, vs, t.body).I
}

// Characterize sweeps the golden model and fits the table, mirroring the
// paper's Hspice characterization run. step is the grid pitch (0.1 V in the
// paper); finer pitches trade memory for accuracy.
func Characterize(p *mos.Params, tech *mos.Tech, l, step float64) (*Table, error) {
	if step <= 0 || l <= 0 {
		return nil, fmt.Errorf("devmodel: step and l must be positive")
	}
	vdd := tech.VDD
	body := 0.0
	if p.Pol == mos.PMOS {
		body = vdd
	}
	n := int(math.Round(vdd/step)) + 1
	t := &Table{
		Pol: p.Pol, L: l, VDD: vdd, StepV: step,
		WRef: 1e-6, N: n,
		Grid:   make([][]Entry, n),
		params: p, body: body,
	}
	const nFit = 24 // samples per region for the least-squares fits
	// Grid rows are independent; characterize them in parallel.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for ig := 0; ig < n; ig++ {
		wg.Add(1)
		go func(ig int) {
			defer wg.Done()
			errs[ig] = t.characterizeRow(ig, step, nFit)
		}(ig)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// characterizeRow fits every (vg, vs) entry of one gate-voltage grid row.
func (t *Table) characterizeRow(ig int, step float64, nFit int) error {
	n := t.N
	vdd := t.VDD
	t.Grid[ig] = make([]Entry, n)
	vg := float64(ig) * step
	for is := 0; is < n; is++ {
		vs := float64(is) * step
		e := &t.Grid[ig][is]
		e.Vth = t.foldedVth(vs)
		e.Vdsat = t.foldedVdsat(vg, vs)

		vdsMax := vdd - vs
		if vdsMax < 1e-6 {
			// Source at the rail: no headroom; keep an all-zero fit with
			// the conductance of the model at Vds→0 for continuity.
			g := t.conductanceAtZero(vg, vs)
			e.T1, e.S1 = g, g
			e.Vdsat = 0
			continue
		}
		split := e.Vdsat
		if split > vdsMax {
			split = vdsMax
		}
		if split > 1e-4 {
			// Triode region [0, split]: a quadratic through the origin
			// (I = 0 at Vds = 0 exactly) fits the golden model's triode
			// curve almost perfectly below the physical Vdsat.
			xs, ys := t.sweepVds(vg, vs, 0, split, nFit)
			e.T0 = 0
			e.T1, e.T2 = originQuad(xs, ys)
			iSplit := e.T1*split + e.T2*split*split
			if vdsMax-split > 1e-4 {
				// Saturation region [split, vdd−vs]: a line pinned to the
				// triode value at the split (continuity) with its slope
				// chosen by least squares. The rounded knee of the golden
				// model tilts the line slightly; beyond the knee the
				// curve is genuinely linear (channel-length modulation).
				xs, ys = t.sweepVds(vg, vs, split, vdsMax, nFit)
				e.S1 = pinnedLine(xs, ys, split, iSplit)
				e.S2 = iSplit - e.S1*split
			} else {
				// No saturation headroom: extend the triode quadratic
				// linearly past the split.
				e.S1 = e.T1 + 2*e.T2*split
				e.S2 = iSplit - e.S1*split
			}
		} else {
			// The device saturates immediately: a free linear fit over
			// the whole range, mirrored into the triode branch.
			xs, ys := t.sweepVds(vg, vs, 0, vdsMax, nFit)
			fit, err := la.PolyFit(xs, ys, 1)
			if err != nil {
				return fmt.Errorf("devmodel: fit at vg=%g vs=%g: %w", vg, vs, err)
			}
			e.S2, e.S1 = fit[0], fit[1]
			e.T0, e.T1, e.T2 = e.S2, e.S1, 0
		}
	}
	return nil
}

// originQuad fits y ≈ t1·x + t2·x² (zero intercept) by least squares in
// conductance space: dividing through by x turns the problem into the
// ordinary linear fit y/x ≈ t1 + t2·x. The implicit 1/x² weighting keeps the
// *relative* current error small in the deep triode region, where series
// stack devices spend most of their time.
func originQuad(xs, ys []float64) (t1, t2 float64) {
	var zs, zx []float64
	for i, x := range xs {
		if x <= 0 {
			continue
		}
		zx = append(zx, x)
		zs = append(zs, ys[i]/x)
	}
	fit, err := la.PolyFit(zx, zs, 1)
	if err != nil {
		return 0, 0
	}
	return fit[0], fit[1]
}

// pinnedLine least-squares-fits y ≈ y0 + s·(x−x0) with the value pinned at
// (x0, y0), returning the slope s — the saturation fit, kept continuous
// with the triode branch.
func pinnedLine(xs, ys []float64, x0, y0 float64) float64 {
	var sxx, sxy float64
	for i, x := range xs {
		dx := x - x0
		sxx += dx * dx
		sxy += dx * (ys[i] - y0)
	}
	if sxx < 1e-300 {
		return 0
	}
	return sxy / sxx
}

func (t *Table) sweepVds(vg, vs, lo, hi float64, n int) (xs, ys []float64) {
	for i := 0; i <= n; i++ {
		vds := lo + (hi-lo)*float64(i)/float64(n)
		xs = append(xs, vds)
		ys = append(ys, t.sample(t.WRef, vg, vs+vds, vs))
	}
	return xs, ys
}

func (t *Table) conductanceAtZero(vg, vs float64) float64 {
	const h = 1e-4
	return t.sample(t.WRef, vg, vs+h, vs) / h
}

func (t *Table) foldedVth(vs float64) float64 {
	if t.Pol == mos.PMOS {
		return t.params.Vth(t.VDD-vs, t.body)
	}
	return t.params.Vth(vs, t.body)
}

func (t *Table) foldedVdsat(vg, vs float64) float64 {
	if t.Pol == mos.PMOS {
		return t.params.VdsatValue(t.L, t.VDD-vg, t.VDD-vs, t.body)
	}
	return t.params.VdsatValue(t.L, vg, vs, t.body)
}

// IV is the paper's iv mapping in folded coordinates: the current through a
// device of width w with folded gate voltage vg, upper (drain-side) node
// voltage vd and lower (source-side) node voltage vs, together with the
// partial derivatives the QWM Jacobian assembles. Reverse conduction
// (vd < vs) is handled by the MOSFET's source/drain symmetry.
func (t *Table) IV(w, vg, vd, vs float64) (i, dvg, dvd, dvs float64) {
	if vd < vs {
		i, dvg, dvs, dvd = t.ivForward(w, vg, vs, vd)
		return -i, -dvg, -dvd, -dvs
	}
	return t.ivForward(w, vg, vd, vs)
}

// ivForward evaluates with vd ≥ vs via bilinear interpolation over the
// (vg, vs) grid. Every corner's fitted polynomial is evaluated at the
// query's Vds = vd − vs (the fast analytic variable), so the interpolation
// in vs only carries the smooth body-effect dependence and the interpolant
// keeps the physical near-symmetry ∂I/∂Vs ≈ −∂I/∂Vd at small Vds — an
// iteration-stability requirement for the chord-based solvers.
func (t *Table) ivForward(w, vg, vd, vs float64) (i, dvg, dvd, dvs float64) {
	scale := w / t.WRef
	ig, fg := t.locate(vg)
	is, fs := t.locate(vs)
	vds := vd - vs
	if vds < 0 {
		vds = 0
	}

	var iv [2][2]float64 // current at corners
	var gv [2][2]float64 // dI/dVds at corners
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			iv[a][b], gv[a][b] = t.Grid[ig+a][is+b].Eval(vds)
		}
	}
	lerp := func(m [2][2]float64) float64 {
		top := m[0][0]*(1-fs) + m[0][1]*fs
		bot := m[1][0]*(1-fs) + m[1][1]*fs
		return top*(1-fg) + bot*fg
	}
	i = scale * lerp(iv)
	dvd = scale * lerp(gv)
	// ∂/∂Vg of the bilinear weights.
	dIg := (iv[1][0]*(1-fs) + iv[1][1]*fs) - (iv[0][0]*(1-fs) + iv[0][1]*fs)
	dvg = scale * dIg / t.StepV
	// ∂/∂Vs: the weight term (body effect) plus the −∂I/∂Vds term from the
	// query Vds shrinking as vs rises.
	dIs := (iv[0][1]*(1-fg) + iv[1][1]*fg) - (iv[0][0]*(1-fg) + iv[1][0]*fg)
	dvs = scale*dIs/t.StepV - dvd
	return i, dvg, dvd, dvs
}

// locate returns the lower grid index and fractional position for a voltage,
// clamped to the table range.
func (t *Table) locate(v float64) (int, float64) {
	x := v / t.StepV
	i := int(math.Floor(x))
	if i < 0 {
		return 0, 0
	}
	if i >= t.N-1 {
		return t.N - 2, 1
	}
	return i, x - float64(i)
}

// Threshold returns the folded threshold voltage for a device whose lower
// (source-side) node sits at vs — the quantity the turn-on condition
// G = V_lower + Vth uses (paper Eq. 7, last line).
func (t *Table) Threshold(vs float64) float64 {
	is, fs := t.locate(vs)
	return t.Grid[0][is].Vth*(1-fs) + t.Grid[0][is+1].Vth*fs
}

// Vdsat returns the interpolated saturation voltage at folded (vg, vs).
func (t *Table) Vdsat(vg, vs float64) float64 {
	ig, fg := t.locate(vg)
	is, fs := t.locate(vs)
	v00 := t.Grid[ig][is].Vdsat
	v01 := t.Grid[ig][is+1].Vdsat
	v10 := t.Grid[ig+1][is].Vdsat
	v11 := t.Grid[ig+1][is+1].Vdsat
	return (v00*(1-fs)+v01*fs)*(1-fg) + (v10*(1-fs)+v11*fs)*fg
}

// Params exposes the underlying golden parameter set (for capacitance
// queries, which are not tabulated).
func (t *Table) Params() *mos.Params { return t.params }

// Entries returns the total number of stored grid entries (for memory
// accounting in the characterization example).
func (t *Table) Entries() int { return t.N * t.N }
