package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"
	"sync"

	"qwm/internal/api/v1"
	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/faultinject"
	"qwm/internal/mos"
	"qwm/internal/netlist"
	"qwm/internal/obs"
	"qwm/internal/reduce"
	"qwm/internal/sta"
	"qwm/internal/sta/diskcache"
)

// pool keys shared analyzers by their result signature. Each pooled
// analyzer owns one in-memory delay cache and (when a cache directory is
// configured) one disk-tier namespace directory named by the FNV-64a hex of
// the signature — the full signature is persisted inside by diskcache.Open,
// so hash collisions are detected, not silently merged.
type pool struct {
	tech       *mos.Tech
	lib        *devmodel.Library
	cacheDir   string
	cacheBytes int64
	metrics    *obs.Registry

	mu        sync.Mutex
	analyzers map[string]*pooledAnalyzer
}

type pooledAnalyzer struct {
	a     *sta.Analyzer
	store *diskcache.Store // nil without a cache dir
}

// get returns the pooled analyzer for cfg, creating it (and opening its
// disk namespace) on first use. cfg must not carry a Tier — the pool owns
// tier wiring.
func (p *pool) get(cfg sta.Config) (*pooledAnalyzer, error) {
	sig := cfg.Signature()
	p.mu.Lock()
	defer p.mu.Unlock()
	if pa, ok := p.analyzers[sig]; ok {
		return pa, nil
	}
	pa := &pooledAnalyzer{}
	if p.cacheDir != "" {
		dir := filepath.Join(p.cacheDir, sigDirName(sig))
		store, err := diskcache.Open(dir, sig, diskcache.Options{
			MaxBytes: p.cacheBytes,
			Metrics:  p.metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("service: opening disk cache for %q: %w", sig, err)
		}
		pa.store = store
		cfg.Tier = store
	}
	cfg.Metrics = p.metrics
	pa.a = sta.New(p.tech, p.lib, cfg)
	p.analyzers[sig] = pa
	return pa, nil
}

func (p *pool) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	for _, pa := range p.analyzers {
		if pa.store != nil {
			pa.store.Flush()
			if err := pa.store.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	p.analyzers = map[string]*pooledAnalyzer{}
	return first
}

// sigDirName maps a signature to a filesystem-safe namespace directory.
func sigDirName(sig string) string {
	h := fnv.New64a()
	h.Write([]byte(sig))
	return fmt.Sprintf("%016x", h.Sum64())
}

// analyze executes one wire request end to end: validate, parse, route to a
// pooled (or, for chaos, throwaway) analyzer, convert the result. All
// failures come back as v1 error envelopes; nothing panics the worker.
func (s *Server) analyze(req v1.AnalyzeRequest) v1.AnalyzeResponse {
	if err := v1.Validate(req.SchemaVersion); err != nil {
		return v1.ErrorResponse(req.ID, v1.CodeInvalidRequest, err.Error())
	}
	switch strings.ToLower(req.Tech) {
	case "", "cmos035":
	default:
		return v1.ErrorResponse(req.ID, v1.CodeInvalidRequest,
			fmt.Sprintf("unknown tech %q (this build serves cmos035)", req.Tech))
	}
	if strings.TrimSpace(req.Netlist) == "" {
		return v1.ErrorResponse(req.ID, v1.CodeInvalidRequest, "empty netlist")
	}
	if len(req.Outputs) == 0 {
		return v1.ErrorResponse(req.ID, v1.CodeInvalidRequest, "no outputs requested")
	}
	deck, err := netlist.ParseString(req.Netlist)
	if err != nil {
		return v1.ErrorResponse(req.ID, v1.CodeInvalidNetlist, err.Error())
	}

	cfg := sta.Config{Workers: s.opts.AnalyzerWorkers}
	if f := req.Features; f != nil {
		if f.ReduceTolPct > 0 {
			cfg.Reduction = reduce.Config{Enabled: true, TolPct: f.ReduceTolPct}
		}
		cfg.Memo = sta.MemoConfig{Enabled: f.Memo || f.Interp, Interp: f.Interp}
	}
	if b := req.Budget; b != nil {
		cfg.Budget = b.STA()
	}

	var analyzer *sta.Analyzer
	if c := req.Chaos; c != nil {
		// Chaos traffic: fresh analyzer, no pool, no disk tier — injected
		// faults must never leak into entries production requests share.
		inj := faultinject.New(c.Seed)
		rate := c.Rate
		if rate <= 0 || rate > 1 {
			rate = 1
		}
		for _, name := range c.Classes {
			class, err := faultinject.ParseClass(name)
			if err != nil {
				return v1.ErrorResponse(req.ID, v1.CodeInvalidRequest, err.Error())
			}
			inj.Enable(class, rate)
		}
		cfg.FaultPlan = inj
		cfg.Metrics = nil
		analyzer = sta.New(s.pool.tech, s.pool.lib, cfg)
	} else {
		pa, perr := s.pool.get(cfg)
		if perr != nil {
			return v1.ErrorResponse(req.ID, v1.CodeAnalysisFailed, perr.Error())
		}
		analyzer = pa.a
	}

	primary := make(map[string]sta.Arrival, len(req.Inputs))
	for net, ar := range req.Inputs {
		primary[net] = ar.STA()
	}
	outputs := make([]string, len(req.Outputs))
	for i, o := range req.Outputs {
		outputs[i] = circuit.CanonName(o)
	}

	res, err := analyzer.AnalyzeContext(nil, sta.Request{
		Netlist: deck.Netlist,
		Primary: primary,
		Outputs: outputs,
	})
	if err != nil {
		code := v1.CodeAnalysisFailed
		if errors.Is(err, sta.ErrInvalidNetlist) {
			code = v1.CodeInvalidNetlist
		}
		return v1.ErrorResponse(req.ID, code, err.Error())
	}
	return v1.OKResponse(req.ID, v1.FromResult(res, outputs, req.FullArrivals))
}
