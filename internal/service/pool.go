package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"
	"sync"

	"qwm/internal/api/v1"
	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/faultinject"
	"qwm/internal/mos"
	"qwm/internal/netlist"
	"qwm/internal/obs"
	"qwm/internal/reduce"
	"qwm/internal/sta"
	"qwm/internal/sta/diskcache"
	"qwm/internal/sta/remotecache"
)

// pool keys shared analyzers by their result signature. Each pooled
// analyzer owns one in-memory delay cache and a tier chain composed from
// what the deployment configured: a bounded memory tier shielding a remote
// (replica-shared) cache client, backed by a disk-tier namespace directory
// named by the FNV-64a hex of the signature — the full signature is
// persisted inside by diskcache.Open, so hash collisions are detected, not
// silently merged. The per-signature stores live on the pool itself, shared
// between analyzer wiring and the tier-serving endpoint (TierStoreFor):
// diskcache is single-writer per directory, so both consumers MUST see the
// same *Store.
type pool struct {
	tech       *mos.Tech
	lib        *devmodel.Library
	cacheDir   string
	cacheBytes int64
	remoteURL  string // base URL of a shared remote tier; "" disables
	metrics    *obs.Registry

	mu        sync.Mutex
	analyzers map[string]*pooledAnalyzer
	stores    map[string]*diskcache.Store   // per-signature disk namespaces
	memories  map[string]*sta.MemoryTier    // serving stores when no cache dir
	remotes   map[string]*remotecache.Client // per-signature remote clients
}

type pooledAnalyzer struct {
	a *sta.Analyzer
}

// storeLocked opens (once) the disk namespace for sig. Caller holds p.mu;
// p.cacheDir must be set.
func (p *pool) storeLocked(sig string) (*diskcache.Store, error) {
	if store, ok := p.stores[sig]; ok {
		return store, nil
	}
	dir := filepath.Join(p.cacheDir, sigDirName(sig))
	store, err := diskcache.Open(dir, sig, diskcache.Options{
		MaxBytes: p.cacheBytes,
		Metrics:  p.metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("service: opening disk cache for %q: %w", sig, err)
	}
	if p.stores == nil {
		p.stores = map[string]*diskcache.Store{}
	}
	p.stores[sig] = store
	return store, nil
}

// get returns the pooled analyzer for cfg, creating it (and its tier chain)
// on first use. cfg must not carry a Tier — the pool owns tier wiring.
func (p *pool) get(cfg sta.Config) (*pooledAnalyzer, error) {
	sig := cfg.Signature()
	p.mu.Lock()
	defer p.mu.Unlock()
	if pa, ok := p.analyzers[sig]; ok {
		return pa, nil
	}
	// Compose the tier chain, fastest first: memory → remote → disk. The
	// memory tier exists to shield the remote client — a flapping peer is
	// consulted at most once per key per process; without a remote there is
	// nothing to shield (the analyzer's own delay cache sits above every
	// tier) and the chain is just the disk store.
	var tiers []sta.TierStore
	if p.remoteURL != "" {
		rc := remotecache.New(p.remoteURL, sig, remotecache.Options{Metrics: p.metrics})
		if p.remotes == nil {
			p.remotes = map[string]*remotecache.Client{}
		}
		p.remotes[sig] = rc
		tiers = append(tiers, sta.NewMemoryTier(0), rc)
	}
	if p.cacheDir != "" {
		store, err := p.storeLocked(sig)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, store)
	}
	cfg.Tier = sta.NewTierChain(tiers...)
	cfg.Metrics = p.metrics
	pa := &pooledAnalyzer{a: sta.New(p.tech, p.lib, cfg)}
	p.analyzers[sig] = pa
	return pa, nil
}

// tierStoreFor resolves the store the TIER SERVER serves for one signature:
// the same per-signature disk namespace the local analyzers write through
// (so this replica's warm cache is what the fleet shares), or a memory tier
// when the deployment has no cache directory.
func (p *pool) tierStoreFor(sig string) (sta.TierStore, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cacheDir != "" {
		return p.storeLocked(sig)
	}
	mt, ok := p.memories[sig]
	if !ok {
		mt = sta.NewMemoryTier(0)
		if p.memories == nil {
			p.memories = map[string]*sta.MemoryTier{}
		}
		p.memories[sig] = mt
	}
	return mt, nil
}

// breakerStates snapshots every remote client's breaker, keyed by signature.
func (p *pool) breakerStates() map[string]remotecache.BreakerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.remotes) == 0 {
		return nil
	}
	out := make(map[string]remotecache.BreakerState, len(p.remotes))
	for sig, rc := range p.remotes {
		out[sig] = rc.BreakerState()
	}
	return out
}

func (p *pool) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	// Remote clients first: their write-behind queues drain into the
	// network, independent of the disk stores.
	for _, rc := range p.remotes {
		rc.Flush()
		if err := rc.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, store := range p.stores {
		store.Flush()
		if err := store.Close(); err != nil && first == nil {
			first = err
		}
	}
	p.analyzers = map[string]*pooledAnalyzer{}
	p.stores = nil
	p.memories = nil
	p.remotes = nil
	return first
}

// sigDirName maps a signature to a filesystem-safe namespace directory.
func sigDirName(sig string) string {
	h := fnv.New64a()
	h.Write([]byte(sig))
	return fmt.Sprintf("%016x", h.Sum64())
}

// analyze executes one wire request end to end: validate, parse, route to a
// pooled (or, for chaos, throwaway) analyzer, convert the result. All
// failures come back as v1 error envelopes; nothing panics the worker. ctx
// carries the request's trace reference when the request is traced (nil is
// fine: it reaches AnalyzeContext, which treats nil as Background) — it is
// NOT a cancellation signal; shedding happens at dequeue.
func (s *Server) analyze(ctx context.Context, req v1.AnalyzeRequest) v1.AnalyzeResponse {
	if err := v1.Validate(req.SchemaVersion); err != nil {
		return v1.ErrorResponse(req.ID, v1.CodeInvalidRequest, err.Error())
	}
	switch strings.ToLower(req.Tech) {
	case "", "cmos035":
	default:
		return v1.ErrorResponse(req.ID, v1.CodeInvalidRequest,
			fmt.Sprintf("unknown tech %q (this build serves cmos035)", req.Tech))
	}
	if strings.TrimSpace(req.Netlist) == "" {
		return v1.ErrorResponse(req.ID, v1.CodeInvalidRequest, "empty netlist")
	}
	if len(req.Outputs) == 0 {
		return v1.ErrorResponse(req.ID, v1.CodeInvalidRequest, "no outputs requested")
	}
	deck, err := netlist.ParseString(req.Netlist)
	if err != nil {
		return v1.ErrorResponse(req.ID, v1.CodeInvalidNetlist, err.Error())
	}

	cfg := sta.Config{Workers: s.opts.AnalyzerWorkers}
	if f := req.Features; f != nil {
		if f.ReduceTolPct > 0 {
			cfg.Reduction = reduce.Config{Enabled: true, TolPct: f.ReduceTolPct}
		}
		cfg.Memo = sta.MemoConfig{Enabled: f.Memo || f.Interp, Interp: f.Interp}
	}
	if b := req.Budget; b != nil {
		cfg.Budget = b.STA()
	}

	var analyzer *sta.Analyzer
	if c := req.Chaos; c != nil {
		// Chaos traffic: fresh analyzer, no pool, no disk tier — injected
		// faults must never leak into entries production requests share.
		inj := faultinject.New(c.Seed)
		rate := c.Rate
		if rate <= 0 || rate > 1 {
			rate = 1
		}
		for _, name := range c.Classes {
			class, err := faultinject.ParseClass(name)
			if err != nil {
				return v1.ErrorResponse(req.ID, v1.CodeInvalidRequest, err.Error())
			}
			inj.Enable(class, rate)
		}
		cfg.FaultPlan = inj
		cfg.Metrics = nil
		analyzer = sta.New(s.pool.tech, s.pool.lib, cfg)
	} else {
		pa, perr := s.pool.get(cfg)
		if perr != nil {
			return v1.ErrorResponse(req.ID, v1.CodeAnalysisFailed, perr.Error())
		}
		analyzer = pa.a
	}

	primary := make(map[string]sta.Arrival, len(req.Inputs))
	for net, ar := range req.Inputs {
		primary[net] = ar.STA()
	}
	outputs := make([]string, len(req.Outputs))
	for i, o := range req.Outputs {
		outputs[i] = circuit.CanonName(o)
	}

	res, err := analyzer.AnalyzeContext(ctx, sta.Request{
		Netlist: deck.Netlist,
		Primary: primary,
		Outputs: outputs,
	})
	if err != nil {
		code := v1.CodeAnalysisFailed
		if errors.Is(err, sta.ErrInvalidNetlist) {
			code = v1.CodeInvalidNetlist
		}
		return v1.ErrorResponse(req.ID, code, err.Error())
	}
	return v1.OKResponse(req.ID, v1.FromResult(res, outputs, req.FullArrivals))
}
