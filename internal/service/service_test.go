package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"qwm/internal/api/v1"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/netlist"
	"qwm/internal/obs"
	"qwm/internal/stages"
)

var (
	tech = mos.CMOSP35()
	lib  = devmodel.NewLibrary(tech)
)

// decoderDeck renders the decoder workload as deck text — the service's
// wire format for circuits — plus its primary inputs and outputs.
func decoderDeck(t testing.TB) (string, []string, []string) {
	t.Helper()
	nl, ins, outs, err := stages.DecoderNetlist(tech, 2, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	return netlist.Format(&netlist.Deck{Title: "* decoder", Netlist: nl}), ins, outs
}

func newTestServer(t testing.TB, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(tech, lib, opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decodeAnalyze(t testing.TB, b []byte) v1.AnalyzeResponse {
	t.Helper()
	var resp v1.AnalyzeResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatalf("undecodable response %s: %v", b, err)
	}
	return resp
}

func TestAnalyzeSingle(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	_, hs := newTestServer(t, Options{})

	hr, body := postJSON(t, hs.URL, v1.AnalyzeRequest{
		SchemaVersion: v1.SchemaVersion,
		ID:            "req-1",
		Netlist:       deck,
		Outputs:       outs,
	})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", hr.StatusCode, body)
	}
	resp := decodeAnalyze(t, body)
	if resp.SchemaVersion != v1.SchemaVersion || resp.Status != v1.StatusOK || resp.ID != "req-1" {
		t.Fatalf("bad envelope: %+v", resp)
	}
	if resp.Result == nil || resp.Result.WorstArrival <= 0 || resp.Result.WorstOutput == "" {
		t.Fatalf("bad result: %+v", resp.Result)
	}
	if !resp.Result.Diagnostics.Healthy {
		t.Fatalf("decoder analysis unhealthy: %+v", resp.Result.Diagnostics)
	}
	if len(resp.Result.Outputs) != len(outs) {
		t.Fatalf("result has %d outputs, want %d", len(resp.Result.Outputs), len(outs))
	}
	if resp.Result.StagesEvaluated == 0 {
		t.Error("cold analysis reported 0 evaluations")
	}

	// Same request again: pooled analyzer, warm cache.
	_, body2 := postJSON(t, hs.URL, v1.AnalyzeRequest{Netlist: deck, Outputs: outs})
	resp2 := decodeAnalyze(t, body2)
	if resp2.Result.StagesEvaluated != 0 {
		t.Errorf("warm analysis evaluated %d stages", resp2.Result.StagesEvaluated)
	}
	if resp2.Result.WorstArrival != resp.Result.WorstArrival {
		t.Error("warm analysis changed the answer")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	_, hs := newTestServer(t, Options{})

	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed json", "{", http.StatusBadRequest, v1.CodeInvalidRequest},
		{"empty netlist", `{"netlist":"","outputs":["y"]}`, http.StatusBadRequest, v1.CodeInvalidRequest},
		{"no outputs", `{"netlist":"* t\n.end\n"}`, http.StatusBadRequest, v1.CodeInvalidRequest},
		{"bad schema version", `{"schema_version":"qwm.v9","netlist":"x","outputs":["y"]}`,
			http.StatusBadRequest, v1.CodeInvalidRequest},
		{"bad tech", fmt.Sprintf(`{"tech":"finfet7","netlist":%q,"outputs":["y"]}`, deck),
			http.StatusBadRequest, v1.CodeInvalidRequest},
		{"unparseable deck", `{"netlist":"* t\nMBAD\n.end\n","outputs":["y"]}`,
			http.StatusUnprocessableEntity, v1.CodeInvalidNetlist},
		{"undriven output", fmt.Sprintf(`{"netlist":%q,"outputs":["nosuchnet"]}`, deck),
			http.StatusInternalServerError, v1.CodeAnalysisFailed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hr, err := http.Post(hs.URL+"/analyze", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			buf.ReadFrom(hr.Body)
			hr.Body.Close()
			if hr.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %s)", hr.StatusCode, tc.status, buf.String())
			}
			resp := decodeAnalyze(t, buf.Bytes())
			if resp.Status != v1.StatusError || resp.Error == nil || resp.Error.Code != tc.code {
				t.Fatalf("error envelope %+v, want code %s", resp, tc.code)
			}
			_ = outs
		})
	}
}

// TestBackpressure429 saturates the queue of a server with NO workers (so
// admitted jobs never drain) and asserts load shedding: 429, Retry-After,
// overloaded code, degraded health. Deterministic by construction.
func TestBackpressure429(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	reg := obs.NewRegistry()
	s := &Server{
		opts:    Options{QueueLen: 2, ResultCap: 4}.withDefaults(),
		results: map[string]*batch{},
		queue:   newWorkQueue(2, reg.Gauge("service/queue/depth")),
		pool:    &pool{tech: tech, lib: lib, analyzers: map[string]*pooledAnalyzer{}},
		mShed:   reg.Counter("service/rejected_overload"),
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.queue.close()

	// Fill both slots with an async batch (returns 202 immediately; the
	// jobs sit in the queue forever with no workers).
	hr, body := postJSON(t, hs.URL, v1.BatchRequest{
		Async: true,
		Requests: []v1.AnalyzeRequest{
			{Netlist: deck, Outputs: outs},
			{Netlist: deck, Outputs: outs},
		},
	})
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("async admit: status %d, body %s", hr.StatusCode, body)
	}
	if ok, _ := s.Healthy(); ok {
		t.Error("saturated queue must report degraded health")
	}
	if d := reg.Snapshot().Gauges["service/queue/depth"]; d != 2 {
		t.Errorf("queue depth gauge = %d, want 2", d)
	}

	// Next single request must shed.
	hr2, body2 := postJSON(t, hs.URL, v1.AnalyzeRequest{ID: "shed-me", Netlist: deck, Outputs: outs})
	if hr2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flooded queue: status %d, body %s", hr2.StatusCode, body2)
	}
	if hr2.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	resp := decodeAnalyze(t, body2)
	if resp.Error == nil || resp.Error.Code != v1.CodeOverloaded || resp.ID != "shed-me" {
		t.Fatalf("shed envelope %+v", resp)
	}

	// A batch that can't fully fit is rejected whole (all-or-nothing) even
	// when one slot would free: nothing is half-admitted.
	if got := s.queue.tryPush([]*job{{}, {}, {}}); got {
		t.Error("oversized group admitted")
	}
	if reg.Snapshot().Counters["service/rejected_overload"] == 0 {
		t.Error("shed not counted")
	}
}

func TestAsyncBatchLifecycle(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	_, hs := newTestServer(t, Options{Workers: 2})

	hr, body := postJSON(t, hs.URL, v1.BatchRequest{
		SchemaVersion: v1.SchemaVersion,
		Async:         true,
		Requests: []v1.AnalyzeRequest{
			{ID: "a", Netlist: deck, Outputs: outs},
			{ID: "b", Netlist: deck, Outputs: outs[:1]},
		},
	})
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, body %s", hr.StatusCode, body)
	}
	var acc v1.BatchResponse
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Status != v1.StatusPending || acc.ID == "" || acc.Total != 2 {
		t.Fatalf("bad 202 envelope: %+v", acc)
	}

	deadline := time.Now().Add(30 * time.Second)
	var final v1.BatchResponse
	for {
		if time.Now().After(deadline) {
			t.Fatal("batch never completed")
		}
		hr, err := http.Get(hs.URL + "/result/" + acc.ID)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(hr.Body)
		hr.Body.Close()
		if hr.StatusCode == http.StatusAccepted {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d, body %s", hr.StatusCode, buf.String())
		}
		if err := json.Unmarshal(buf.Bytes(), &final); err != nil {
			t.Fatal(err)
		}
		break
	}
	if final.Status != v1.StatusOK || final.Completed != 2 || len(final.Responses) != 2 {
		t.Fatalf("final batch: %+v", final)
	}
	if final.Responses[0].ID != "a" || final.Responses[1].ID != "b" {
		t.Error("batch responses out of submission order")
	}
	for i, r := range final.Responses {
		if r.Status != v1.StatusOK || r.Result == nil {
			t.Fatalf("slot %d: %+v", i, r)
		}
	}

	// Unknown id → 404 with the not_found code.
	hr404, err := http.Get(hs.URL + "/result/b999999")
	if err != nil {
		t.Fatal(err)
	}
	hr404.Body.Close()
	if hr404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", hr404.StatusCode)
	}
}

func TestSyncBatchPartialFailure(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	_, hs := newTestServer(t, Options{})
	hr, body := postJSON(t, hs.URL, v1.BatchRequest{
		Requests: []v1.AnalyzeRequest{
			{Netlist: deck, Outputs: outs},
			{Netlist: "* broken\nMBAD\n.end\n", Outputs: []string{"y"}},
		},
	})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", hr.StatusCode, body)
	}
	var resp v1.BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != v1.StatusError {
		t.Errorf("batch with a failed slot must report error status, got %q", resp.Status)
	}
	if resp.Responses[0].Status != v1.StatusOK || resp.Responses[1].Status != v1.StatusError {
		t.Fatalf("per-slot verdicts wrong: %+v", resp.Responses)
	}
}

// TestChaosDeterministicAndIsolated: identical chaos requests produce
// byte-identical responses, and chaos never poisons the pooled analyzers
// production requests share.
func TestChaosDeterministicAndIsolated(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	_, hs := newTestServer(t, Options{})

	clean := func() v1.AnalyzeResponse {
		_, b := postJSON(t, hs.URL, v1.AnalyzeRequest{Netlist: deck, Outputs: outs})
		return decodeAnalyze(t, b)
	}
	ref := clean()
	if !ref.Result.Diagnostics.Healthy {
		t.Fatalf("clean baseline unhealthy: %+v", ref.Result.Diagnostics)
	}

	chaosReq := v1.AnalyzeRequest{
		Netlist: deck, Outputs: outs,
		Budget: &v1.Budget{NRIters: 1},
		Chaos:  &v1.Chaos{Seed: 42, Classes: []string{"budget-exhaustion"}},
	}
	_, b1 := postJSON(t, hs.URL, chaosReq)
	_, b2 := postJSON(t, hs.URL, chaosReq)
	if !bytes.Equal(b1, b2) {
		t.Errorf("chaos responses differ across identical requests:\n%s\n%s", b1, b2)
	}
	cr := decodeAnalyze(t, b1)
	if cr.Status != v1.StatusOK {
		t.Fatalf("chaos run failed outright: %s", b1)
	}
	if cr.Result.Diagnostics.Healthy {
		t.Error("budget-exhaustion chaos at rate 1 reported healthy")
	}

	// The pooled production analyzer must be untouched by the chaos runs.
	after := clean()
	if !after.Result.Diagnostics.Healthy {
		t.Errorf("chaos leaked into the production pool: %+v", after.Result.Diagnostics)
	}
	if after.Result.WorstArrival != ref.Result.WorstArrival {
		t.Error("clean answer changed after chaos traffic")
	}
}

// TestWarmDiskRestartBitIdentical is the service-level restart guarantee:
// a new server process over the same cache directory answers bit-identically
// with zero evaluations and a ≥90 % disk hit rate.
func TestWarmDiskRestartBitIdentical(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	dir := t.TempDir()
	req := v1.AnalyzeRequest{Netlist: deck, Outputs: outs}

	s1 := New(tech, lib, Options{CacheDir: dir})
	hs1 := httptest.NewServer(s1.Handler())
	_, cold := postJSON(t, hs1.URL, req)
	_, warmMem := postJSON(t, hs1.URL, req)
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if decodeAnalyze(t, cold).Result.StagesEvaluated == 0 {
		t.Fatal("cold run reported no evaluations — disk can't have been exercised")
	}

	reg := obs.NewRegistry()
	s2 := New(tech, lib, Options{CacheDir: dir, Metrics: reg})
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	defer s2.Close()
	_, warmDisk := postJSON(t, hs2.URL, req)

	if !bytes.Equal(warmMem, warmDisk) {
		t.Errorf("warm-disk response differs from warm-memory:\nmem:  %s\ndisk: %s", warmMem, warmDisk)
	}
	if got := decodeAnalyze(t, warmDisk).Result.StagesEvaluated; got != 0 {
		t.Errorf("warm-disk run evaluated %d stages", got)
	}
	snap := reg.Snapshot()
	hits, misses := snap.Counters["sta/disk/hits"], snap.Counters["sta/disk/misses"]
	if total := hits + misses; total == 0 || float64(hits)/float64(total) < 0.9 {
		t.Errorf("disk hit rate %d/%d after restart, want >= 90%%", hits, total)
	}
}

// BenchmarkServiceWarmDisk measures the full service path — HTTP decode,
// queue, disk-tier hydration, HTTP encode — for a restarted replica over a
// warm cache directory (a fresh Server per iteration, so the in-memory
// cache never warms).
func BenchmarkServiceWarmDisk(b *testing.B) {
	deck, _, outs := decoderDeck(b)
	dir := b.TempDir()
	body, err := json.Marshal(v1.AnalyzeRequest{Netlist: deck, Outputs: outs})
	if err != nil {
		b.Fatal(err)
	}

	warm := New(tech, lib, Options{CacheDir: dir})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(body))
	warm.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup failed: %d %s", rec.Code, rec.Body)
	}
	warm.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(tech, lib, Options{CacheDir: dir})
		h := s.Handler()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			b.Fatalf("iteration failed: %d %s", rec.Code, rec.Body)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// TestResultGoneVsNotFound pins the two distinct /result failure answers:
// an id this server retained and then FIFO-evicted is 410 Gone with the
// stable v1 "gone" code; an id it never issued is 404 with "not_found".
func TestResultGoneVsNotFound(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	_, hs := newTestServer(t, Options{Workers: 2, ResultCap: 1})

	submit := func(id string) string {
		hr, body := postJSON(t, hs.URL, v1.BatchRequest{
			SchemaVersion: v1.SchemaVersion,
			Async:         true,
			Requests:      []v1.AnalyzeRequest{{ID: id, Netlist: deck, Outputs: outs[:1]}},
		})
		if hr.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d, body %s", id, hr.StatusCode, body)
		}
		var acc v1.BatchResponse
		if err := json.Unmarshal(body, &acc); err != nil {
			t.Fatal(err)
		}
		return acc.ID
	}
	poll := func(id string) (int, v1.BatchResponse) {
		hr, err := http.Get(hs.URL + "/result/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(hr.Body)
		var resp v1.BatchResponse
		if err := json.Unmarshal(buf.Bytes(), &resp); err != nil {
			t.Fatalf("undecodable poll body %s: %v", buf.String(), err)
		}
		return hr.StatusCode, resp
	}

	first := submit("first")
	second := submit("second") // ResultCap 1: retaining this evicts `first`

	status, resp := poll(first)
	if status != http.StatusGone {
		t.Fatalf("evicted id: status %d, want 410 (%+v)", status, resp)
	}
	if resp.Error == nil || resp.Error.Code != v1.CodeGone {
		t.Fatalf("evicted id: error %+v, want code %q", resp.Error, v1.CodeGone)
	}

	status, resp = poll("b999999")
	if status != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", status)
	}
	if resp.Error == nil || resp.Error.Code != v1.CodeNotFound {
		t.Fatalf("unknown id: error %+v, want code %q", resp.Error, v1.CodeNotFound)
	}

	// The surviving id still resolves (200 or 202 depending on progress).
	if status, _ := poll(second); status != http.StatusOK && status != http.StatusAccepted {
		t.Fatalf("retained id: status %d", status)
	}
}

// TestDequeueCancellationShed pins the worker-side disconnect check: a job
// whose client context is already dead when a worker dequeues it is shed as
// a counted cancellation, without any engine work.
func TestDequeueCancellationShed(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(tech, lib, Options{Workers: 1, Metrics: reg})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the job is even queued
	b := s.admit(ctx, []v1.AnalyzeRequest{{ID: "dead", Netlist: "* x\n.end\n", Outputs: []string{"y"}}}, false)
	if b == nil {
		t.Fatal("admission failed on an empty queue")
	}
	<-b.done
	resp := b.responses[0]
	if resp.Status != v1.StatusError || resp.Error == nil || resp.Error.Code != v1.CodeCancelled {
		t.Fatalf("shed response = %+v, want code %q", resp, v1.CodeCancelled)
	}
	if got := httpStatus(resp); got != http.StatusRequestTimeout {
		t.Fatalf("httpStatus(cancelled) = %d, want 408", got)
	}
	if n := s.mCancelled.Value(); n != 1 {
		t.Fatalf("service/cancelled = %d, want 1", n)
	}
}

// TestRetryAfterDerived pins the 429 backoff hint: deterministic per id,
// growing with queue depth, and bounded.
func TestRetryAfterDerived(t *testing.T) {
	s := &Server{opts: Options{Workers: 2}.withDefaults(), queue: newWorkQueue(256, nil)}

	idle := s.retryAfter("client-1")
	if idle != s.retryAfter("client-1") {
		t.Fatal("Retry-After not deterministic for a fixed id and depth")
	}
	n, err := strconv.Atoi(idle)
	if err != nil || n < 1 || n > 2 {
		t.Fatalf("idle Retry-After = %q, want 1..2 (base 1 + jitter in [0,1])", idle)
	}

	// Jitter decorrelates ids: across a handful of ids both values appear.
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		seen[s.retryAfter(fmt.Sprintf("client-%d", i))] = true
	}
	if len(seen) < 2 {
		t.Errorf("32 ids produced a single Retry-After %v; jitter is dead", seen)
	}

	// Load the queue: base = 1 + 240/(4*2) = 31, capped at 30; with jitter
	// the answer lives in [30, 60].
	jobs := make([]*job, 240)
	for i := range jobs {
		jobs[i] = &job{}
	}
	if !s.queue.tryPush(jobs) {
		t.Fatal("tryPush failed")
	}
	deep, err := strconv.Atoi(s.retryAfter("client-1"))
	if err != nil || deep < 30 || deep > 60 {
		t.Fatalf("deep-queue Retry-After = %q, want 30..60", s.retryAfter("client-1"))
	}
	if deep <= n {
		t.Errorf("Retry-After did not grow with queue depth: idle %d, deep %d", n, deep)
	}
}
