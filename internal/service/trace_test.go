package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qwm/internal/api/v1"
	"qwm/internal/obs"
	"qwm/internal/sta/remotecache"
)

// tracedServer builds a service with tracing (and metrics) on.
func tracedServer(t testing.TB, opts Options) (*Server, *httptest.Server, *obs.FlightRecorder) {
	t.Helper()
	fl := obs.NewFlightRecorder()
	opts.Flight = fl
	s, hs := newTestServer(t, opts)
	t.Cleanup(fl.Close)
	return s, hs, fl
}

// TestTraceEnvelopeAndRecorder pins the local tracing contract: the response
// carries the trace ID in both the header and the v1 envelope, and the flight
// recorder retains the full span chain service → worker → analyze.
func TestTraceEnvelopeAndRecorder(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	reg := obs.NewRegistry()
	_, hs, fl := tracedServer(t, Options{Metrics: reg})

	hr, body := postJSON(t, hs.URL, v1.AnalyzeRequest{ID: "traced", Netlist: deck, Outputs: outs})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", hr.StatusCode, body)
	}
	resp := decodeAnalyze(t, body)
	if resp.TraceID == "" {
		t.Fatal("envelope missing trace_id")
	}
	if got := hr.Header.Get("X-Qwm-Trace-Id"); got != resp.TraceID {
		t.Errorf("X-Qwm-Trace-Id %q != envelope trace_id %q", got, resp.TraceID)
	}

	fl.Flush()
	rt := fl.Get(resp.TraceID)
	if rt == nil {
		t.Fatal("flight recorder did not retain the trace")
	}
	if rt.Route != "analyze" || rt.Status != 200 {
		t.Errorf("retained route/status %s/%d", rt.Route, rt.Status)
	}
	byID := map[string]obs.ReqSpan{}
	for _, s := range rt.Spans {
		byID[s.ID] = s
	}
	for _, id := range []string{"req", "req.enqueue", "req.j0", "req.j0.analyze"} {
		if _, ok := byID[id]; !ok {
			t.Errorf("trace missing span %q (have %d spans)", id, len(rt.Spans))
		}
	}
	// A cold analysis evaluates stages: level and eval spans must be there.
	if _, ok := byID["req.j0.analyze.L0"]; !ok {
		t.Error("trace missing the level-0 span")
	}
	// RED metrics with an exemplar pointing back at this trace.
	snap := reg.Snapshot()
	if snap.Counters["service/http/requests/analyze"] == 0 {
		t.Error("request counter not incremented")
	}
	h := snap.Histograms["service/http/time/latency/analyze"]
	if h.Count == 0 {
		t.Error("latency histogram empty")
	}
	found := false
	for _, ex := range h.Exemplars {
		if ex == resp.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("latency exemplars %v do not reference trace %s", h.Exemplars, resp.TraceID)
	}
}

// TestDistributedTraceMergesPeerSpan is the tentpole acceptance test: a
// request served warm off a PEER's cache yields ONE trace containing spans
// recorded by both processes. Replica B (with a disk cache) is warmed first
// and serves its cache over the tier API; replica A reads through it and must
// see B's cache-plane span re-parented into its own trace.
func TestDistributedTraceMergesPeerSpan(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	req := v1.AnalyzeRequest{Netlist: deck, Outputs: outs}

	// Replica B: warm its disk cache through the front door.
	b := New(tech, lib, Options{CacheDir: t.TempDir()})
	defer b.Close()
	hsB := httptest.NewServer(b.Handler())
	defer hsB.Close()
	if hr, body := postJSON(t, hsB.URL, req); hr.StatusCode != http.StatusOK {
		t.Fatalf("warming B: %d %s", hr.StatusCode, body)
	}

	// B's cache plane, named so its spans are attributable.
	tier := remotecache.NewServer(b.TierStoreFor, nil)
	tier.Name = "replica-b"
	mux := http.NewServeMux()
	mux.Handle("/tier/", tier.Handler())
	tierSrv := httptest.NewServer(mux)
	defer tierSrv.Close()

	// Replica A: no local disk, reads through B, tracing on.
	_, hsA, fl := tracedServer(t, Options{RemoteCache: tierSrv.URL})
	hr, body := postJSON(t, hsA.URL, req)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("traced request on A: %d %s", hr.StatusCode, body)
	}
	resp := decodeAnalyze(t, body)
	if resp.Result.StagesEvaluated != 0 {
		t.Errorf("A evaluated %d stages; expected a fully warm-off-peer run", resp.Result.StagesEvaluated)
	}

	fl.Flush()
	rt := fl.Get(resp.TraceID)
	if rt == nil {
		t.Fatal("trace not retained")
	}
	var remoteProbes, attempts, peers int
	for _, s := range rt.Spans {
		switch {
		case s.Process == "replica-b":
			peers++
			if s.Attrs["outcome"] != "hit" {
				t.Errorf("peer span outcome %v, want hit", s.Attrs["outcome"])
			}
			if !strings.HasSuffix(s.ID, ".peer") {
				t.Errorf("peer span id %q not under an attempt span", s.ID)
			}
		case s.Name == "remote get":
			attempts++
			if s.Attrs["outcome"] != "hit" {
				t.Errorf("attempt outcome %v, want hit", s.Attrs["outcome"])
			}
		case s.Attrs["tier"] == "remote" && s.Attrs["hit"] == true:
			remoteProbes++
		}
	}
	if peers == 0 || attempts == 0 || remoteProbes == 0 {
		t.Fatalf("merged trace incomplete: %d peer spans, %d attempts, %d remote probes (of %d spans)",
			peers, attempts, remoteProbes, len(rt.Spans))
	}
	// The deterministic export must attribute the peer's spans to its own
	// process lane.
	det, err := rt.ChromeJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(det, []byte("replica replica-b")) {
		t.Error("deterministic export missing the remote process lane")
	}
}

// TestTraceDeterministicAcrossWorkers re-runs one request on fresh servers at
// Workers 1 and 8 and requires byte-identical deterministic exports — the
// schedule-independence contract for traces.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	req := v1.AnalyzeRequest{Netlist: deck, Outputs: outs}

	export := func(workers int) []byte {
		_, hs, fl := tracedServer(t, Options{AnalyzerWorkers: workers})
		hr, body := postJSON(t, hs.URL, req)
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: %d %s", workers, hr.StatusCode, body)
		}
		resp := decodeAnalyze(t, body)
		fl.Flush()
		rt := fl.Get(resp.TraceID)
		if rt == nil {
			t.Fatalf("workers=%d: trace not retained", workers)
		}
		b, err := rt.ChromeJSON(true)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := export(1), export(8); !bytes.Equal(a, b) {
		t.Error("deterministic trace export differs between Workers 1 and 8")
	}
}

// TestTracingDisabled pins the zero-cost-off contract's visible half: no
// Flight recorder means no trace header and no envelope trace_id.
func TestTracingDisabled(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	_, hs := newTestServer(t, Options{})
	hr, body := postJSON(t, hs.URL, v1.AnalyzeRequest{Netlist: deck, Outputs: outs})
	if hr.Header.Get("X-Qwm-Trace-Id") != "" {
		t.Error("untraced server set X-Qwm-Trace-Id")
	}
	if bytes.Contains(body, []byte("trace_id")) {
		t.Errorf("untraced envelope carries trace_id: %s", body)
	}
}

// TestTraceIDInBatchEnvelopes: both the sync batch response and the async
// 202 accept envelope carry the trace ID.
func TestTraceIDInBatchEnvelopes(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	_, hs, _ := tracedServer(t, Options{Workers: 2})

	breq := v1.BatchRequest{Requests: []v1.AnalyzeRequest{{Netlist: deck, Outputs: outs[:1]}}}
	_, body := postJSON(t, hs.URL, breq)
	var sync v1.BatchResponse
	if err := json.Unmarshal(body, &sync); err != nil {
		t.Fatal(err)
	}
	if sync.TraceID == "" {
		t.Error("sync batch envelope missing trace_id")
	}

	breq.Async = true
	hr, body := postJSON(t, hs.URL, breq)
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("async admit: %d %s", hr.StatusCode, body)
	}
	var acc v1.BatchResponse
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.TraceID == "" {
		t.Error("async 202 envelope missing trace_id")
	}
}

// TestInboundTraceparentJoined: a caller-supplied Traceparent header joins
// the existing trace instead of minting a new ID.
func TestInboundTraceparentJoined(t *testing.T) {
	deck, _, outs := decoderDeck(t)
	_, hs, fl := tracedServer(t, Options{})

	inbound := "aaaabbbbccccddddaaaabbbbccccdddd"
	b, err := json.Marshal(v1.AnalyzeRequest{Netlist: deck, Outputs: outs})
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, hs.URL+"/analyze", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Traceparent", obs.FormatTraceparent(inbound, "caller"))
	hr, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if got := hr.Header.Get("X-Qwm-Trace-Id"); got != inbound {
		t.Errorf("trace id %q, want the inbound %q", got, inbound)
	}
	fl.Flush()
	if fl.Get(inbound) == nil {
		t.Error("trace not retained under the inbound id")
	}
}

// TestHealthInfoShape pins the /healthz JSON detail contract end to end:
// HealthInfo's keys, plus the full obs.Server JSON rendering with build info,
// exactly as cmd/stad wires it.
func TestHealthInfoShape(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 2, QueueLen: 8})

	info := s.HealthInfo()
	for _, key := range []string{"queue_depth", "queue_capacity", "workers", "open_breakers"} {
		if _, ok := info[key]; !ok {
			t.Errorf("HealthInfo missing %q: %v", key, info)
		}
	}
	if info["queue_capacity"] != 8 || info["workers"] != 2 {
		t.Errorf("HealthInfo config values wrong: %v", info)
	}
	if br, ok := info["open_breakers"].([]string); !ok || br == nil {
		t.Errorf("open_breakers = %#v, want a non-nil []string", info["open_breakers"])
	}

	reg := obs.NewRegistry()
	build := obs.RegisterBuildInfo(reg)
	ops := &obs.Server{
		Registry: reg,
		Health:   s.Healthy,
		HealthDetail: func() map[string]any {
			d := s.HealthInfo()
			d["build"] = build
			return d
		},
	}
	ts := httptest.NewServer(ops.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || m["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, m)
	}
	for _, key := range []string{"queue_depth", "queue_capacity", "workers", "open_breakers", "build", "status"} {
		if _, ok := m[key]; !ok {
			t.Errorf("healthz body missing %q: %v", key, m)
		}
	}
}

// TestQueueDepthGaugeTruthful pins the staleness fix: the snapshot samples
// the live queue depth through the GaugeFunc New registers, overriding the
// edge-maintained gauge — a stale edge value can no longer misreport.
func TestQueueDepthGaugeTruthful(t *testing.T) {
	reg := obs.NewRegistry()
	_, _ = newTestServer(t, Options{Metrics: reg})

	// Poison the edge gauge with a stale value; the sampler must win.
	reg.Gauge("service/queue/depth").Set(42)
	if got := reg.Snapshot().Gauges["service/queue/depth"]; got != 0 {
		t.Errorf("snapshot queue depth %d, want sampled 0 (stale edge said 42)", got)
	}

	// And the stuck-full case: a no-worker queue holding 2 jobs with a
	// missed edge update still reads 2 — the exact TestBackpressure429
	// topology, but with the edge gauge deliberately desynchronized.
	reg2 := obs.NewRegistry()
	q := newWorkQueue(2, reg2.Gauge("service/queue/depth"))
	defer q.close()
	reg2.GaugeFunc("service/queue/depth", func() int64 { return int64(q.queuedDepth()) })
	if !q.tryPush([]*job{{}, {}}) {
		t.Fatal("tryPush failed on an empty queue")
	}
	reg2.Gauge("service/queue/depth").Set(0) // simulate the missed edge
	if got := reg2.Snapshot().Gauges["service/queue/depth"]; got != 2 {
		t.Errorf("stuck-full queue depth %d, want 2", got)
	}
}
