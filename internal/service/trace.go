package service

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"qwm/internal/obs"
)

// This file is the service's front-door observability middleware: per-route
// RED metrics (request/error counters, latency histogram) and — when a
// flight recorder is configured — the minting of one request trace per
// /analyze call, carried through the context to admission, workers, the
// engine and the cache fleet, and retained at completion for /debug/requests
// and /trace/request/{id}.

// traceIDHeader returns the request's trace ID to the caller, so a curl can
// go straight to /trace/request/{id} afterwards.
const traceIDHeader = "X-Qwm-Trace-Id"

// latencyBounds buckets the per-route latency histogram, in seconds. The
// "time/" name segment keeps the histogram out of Deterministic() snapshots.
var latencyBounds = []float64{1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30}

// statusWriter captures the response status for metrics and trace retention.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// routeOf classifies a request path into a bounded label set — metric names
// must never embed client-controlled strings.
func routeOf(path string) string {
	switch {
	case path == "/analyze":
		return "analyze"
	case strings.HasPrefix(path, "/result/"):
		return "result"
	default:
		return "other"
	}
}

// instrument wraps the service mux. With neither metrics nor a flight
// recorder configured it returns the handler untouched — zero overhead, and
// byte-identical behaviour for deployments that never asked for tracing.
func (s *Server) instrument(next http.Handler) http.Handler {
	fl := s.opts.Flight
	reg := s.opts.Metrics
	if fl == nil && reg == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeOf(r.URL.Path)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var at *obs.ActiveTrace
		if fl != nil && route == "analyze" {
			// Honour an inbound traceparent's trace ID (joining a caller's
			// existing trace); mint a fresh one otherwise.
			inbound := ""
			if tid, _, ok := obs.ParseTraceparent(r.Header.Get("Traceparent")); ok {
				inbound = tid
			}
			at = obs.NewActiveTrace(inbound)
			r = r.WithContext(obs.ContextWithTrace(r.Context(), obs.TraceRef{
				T: at, Parent: "req", Level: obs.LevelRequest,
			}))
			sw.Header().Set(traceIDHeader, at.TraceID)
		}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		if reg != nil {
			reg.Counter("service/http/requests/" + route).Inc()
			if sw.status >= 400 {
				reg.Counter(fmt.Sprintf("service/http/errors/%s/%d", route, sw.status)).Inc()
			}
			h := reg.Histogram("service/http/time/latency/"+route, latencyBounds)
			if at != nil {
				// The exemplar links the slow bucket to a retained trace.
				h.ObserveExemplar(dur.Seconds(), at.TraceID)
			} else {
				h.Observe(dur.Seconds())
			}
		}
		if at != nil {
			at.Add(obs.ReqSpan{
				ID: "req", Name: r.Method + " /" + route,
				Level: obs.LevelRequest, Item: 0,
				Start: start, Dur: dur,
				Attrs: map[string]any{"route": route, "status": sw.status},
			})
			fl.Record(at.Finish(route, sw.status, dur))
		}
	})
}
