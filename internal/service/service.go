// Package service is the timing-analysis-as-a-service front door: an
// HTTP/JSON server speaking the versioned v1 wire schema (internal/api/v1)
// over the STA engine.
//
//	POST /analyze      one AnalyzeRequest, or a BatchRequest ("requests" key);
//	                   synchronous by default, async batches return 202 + id
//	GET  /result/{id}  poll an async batch: 202 pending, 200 done, 404 unknown
//
// Architecture: requests land in a bounded work queue (admission is
// all-or-nothing per batch, so a half-admitted batch can never deadlock the
// queue against itself) drained by a fixed worker pool. When the queue is
// full the server sheds load with 429 + Retry-After instead of queueing
// unbounded work — backpressure is the contract, and /healthz degrades while
// saturated.
//
// Analyzers are pooled by result signature (sta.Config.Signature): two
// requests with equal features and budgets share one analyzer — one
// in-memory delay cache — and, when a cache directory is configured, one
// persistent disk namespace keyed by that same signature. Chaos requests
// (fault injection armed) always run on a fresh throwaway analyzer with no
// disk tier, so injected faults can never poison shared caches.
package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qwm/internal/api/v1"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/obs"
	"qwm/internal/sta"
	"qwm/internal/sta/remotecache"
)

// Options configures a Server. The zero value is usable: 64-slot queue, 2
// workers, 64 retained async results, no disk cache, no metrics.
type Options struct {
	// QueueLen bounds the admission queue (in sub-requests). 0 means 64.
	QueueLen int
	// Workers is the number of queue-draining goroutines. Each drains one
	// analysis at a time; the analyzers parallelize internally. 0 means 2.
	Workers int
	// AnalyzerWorkers is passed to every pooled analyzer's Config.Workers
	// (0 = GOMAXPROCS). It does not affect results or pooling identity.
	AnalyzerWorkers int
	// CacheDir, when set, roots the persistent delay-cache tier: every
	// analyzer signature gets its own namespace directory under it. ""
	// disables the disk tier.
	CacheDir string
	// CacheBytes caps each namespace's disk usage (0 = the diskcache
	// default, 256 MiB).
	CacheBytes int64
	// RemoteCache, when set, is the base URL of a replica-shared remote
	// delay-cache tier (a peer's stad -cache-listen endpoint). Every pooled
	// analyzer then reads through memory → remote → disk; the remote client
	// degrades every network failure to a cache miss behind timeouts,
	// bounded retries and a circuit breaker, so a dead peer never fails or
	// stalls an analysis. "" disables.
	RemoteCache string
	// ResultCap bounds retained async batch results; the oldest are evicted
	// first (polling an evicted id returns 410 Gone). 0 means 64.
	ResultCap int
	// Metrics, when set, receives the service counters (service/...), the
	// engine's per-analyze aggregates and the disk tier's counters.
	Metrics *obs.Registry
	// Flight, when set, turns on request tracing: every /analyze request is
	// traced end to end (admission → worker → engine → cache tiers → remote
	// peer) and the completed trace is retained by the flight recorder for
	// /debug/requests and /trace/request/{id}. nil keeps the hot path
	// entirely untraced.
	Flight *obs.FlightRecorder
}

func (o Options) withDefaults() Options {
	if o.QueueLen <= 0 {
		o.QueueLen = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.ResultCap <= 0 {
		o.ResultCap = 64
	}
	return o
}

// Server is one service instance. Create with New, serve via Handler, stop
// with Close.
type Server struct {
	opts Options
	pool *pool

	queue *workQueue

	resMu   sync.Mutex
	results map[string]*batch
	order   []string // insertion order, for FIFO eviction
	// evicted remembers ids that were retained and then FIFO-evicted, so
	// /result can answer 410 Gone ("you were too late") instead of the
	// indistinguishable 404 ("never heard of it"). Bounded FIFO itself.
	evicted    map[string]struct{}
	evictOrder []string
	nextID     atomic.Int64

	wg sync.WaitGroup

	mRequests, mBatches, mOK, mErr, mShed, mCancelled *obs.Counter
}

// evictedCap bounds the remembered-eviction set; beyond it the oldest
// tombstones decay back into plain 404s.
const evictedCap = 1024

// job is one queued sub-request. Exactly one worker processes it, writes
// resp, and marks it done on its batch. ctx is the submitting client's
// request context for synchronous work (Background for async batches, whose
// results outlive the submit call): a client that disconnects while its job
// is still queued gets shed at dequeue instead of burning a worker.
type job struct {
	ctx   context.Context
	req   v1.AnalyzeRequest
	idx   int
	batch *batch
}

// batch tracks one admitted request group (a single request is a batch of
// one). done closes when every job completed.
type batch struct {
	id    string
	async bool
	total int

	mu        sync.Mutex
	responses []v1.AnalyzeResponse
	completed int
	done      chan struct{}
}

func (b *batch) complete(idx int, resp v1.AnalyzeResponse) {
	b.mu.Lock()
	b.responses[idx] = resp
	b.completed++
	fin := b.completed == b.total
	b.mu.Unlock()
	if fin {
		close(b.done)
	}
}

// progress returns (completed, total) without blocking on done.
func (b *batch) progress() (int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.completed, b.total
}

// New builds a service over the given technology and library. tech/lib are
// shared by every pooled analyzer.
func New(tech *mos.Tech, lib *devmodel.Library, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		results: map[string]*batch{},
		evicted: map[string]struct{}{},
		queue:   newWorkQueue(opts.QueueLen, opts.Metrics.Gauge("service/queue/depth")),
		pool: &pool{
			tech: tech, lib: lib,
			cacheDir:   opts.CacheDir,
			cacheBytes: opts.CacheBytes,
			remoteURL:  opts.RemoteCache,
			metrics:    opts.Metrics,
			analyzers:  map[string]*pooledAnalyzer{},
		},
	}
	// The queue-depth gauge is edge-updated on enqueue/dequeue; the sampler
	// re-reads the live depth at every snapshot so an idle-but-full queue
	// (workers wedged, nothing moving) still reads truthfully.
	opts.Metrics.GaugeFunc("service/queue/depth", func() int64 {
		return int64(s.queue.queuedDepth())
	})
	r := opts.Metrics
	s.mRequests = r.Counter("service/requests")
	s.mBatches = r.Counter("service/batches")
	s.mOK = r.Counter("service/analyses_ok")
	s.mErr = r.Counter("service/analyses_err")
	s.mShed = r.Counter("service/rejected_overload")
	s.mCancelled = r.Counter("service/cancelled")
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker drains the queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		// The cheapest analysis is the one nobody is waiting for: a client
		// that hung up while its job sat queued is shed here, before any
		// engine work, as a counted cancellation.
		if j.ctx != nil && j.ctx.Err() != nil {
			s.mCancelled.Inc()
			s.mErr.Inc()
			j.batch.complete(j.idx, v1.ErrorResponse(j.req.ID, v1.CodeCancelled,
				"client disconnected before analysis started"))
			continue
		}
		// Traced requests get a worker span and a derived engine context. The
		// derived context is Background-rooted on purpose: engine cancellation
		// semantics are owned by the dequeue shed above, and a traced request
		// must behave identically to an untraced one.
		ref, traced := obs.TraceFrom(j.ctx)
		var (
			ctx    context.Context
			wID    string
			wStart time.Time
		)
		if traced {
			wID = fmt.Sprintf("%s.j%d", ref.Parent, j.idx)
			wStart = time.Now()
			ctx = obs.ContextWithTrace(context.Background(), obs.TraceRef{
				T: ref.T, Parent: wID, Level: obs.LevelWorker, Item: j.idx,
			})
		}
		resp := s.analyze(ctx, j.req)
		if resp.Status == v1.StatusOK {
			s.mOK.Inc()
		} else {
			s.mErr.Inc()
		}
		if traced {
			// Recorded BEFORE batch.complete: the root span's Finish happens
			// strictly after every job span of a synchronous request.
			ref.T.Add(obs.ReqSpan{
				ID: wID, Parent: ref.Parent, Name: "worker",
				Level: obs.LevelWorker, Item: j.idx,
				Start: wStart, Dur: time.Since(wStart),
				Attrs: map[string]any{"status": string(resp.Status)},
			})
		}
		j.batch.complete(j.idx, resp)
	}
}

// admit reserves queue slots for every request of a group, all or nothing.
// It returns the tracking batch, or nil when the queue cannot take the
// group right now (back off and retry). ctx is the submitting client's
// context for synchronous groups; pass context.Background() for async ones.
func (s *Server) admit(ctx context.Context, reqs []v1.AnalyzeRequest, async bool) *batch {
	b := &batch{
		id:        fmt.Sprintf("b%06d", s.nextID.Add(1)),
		async:     async,
		total:     len(reqs),
		responses: make([]v1.AnalyzeResponse, len(reqs)),
		done:      make(chan struct{}),
	}
	jobs := make([]*job, len(reqs))
	for i, r := range reqs {
		jobs[i] = &job{ctx: ctx, req: r, idx: i, batch: b}
	}
	ref, traced := obs.TraceFrom(ctx)
	var aStart time.Time
	if traced {
		aStart = time.Now()
	}
	admitted := s.queue.tryPush(jobs)
	if traced {
		ref.T.Add(obs.ReqSpan{
			ID: ref.Parent + ".enqueue", Parent: ref.Parent, Name: "enqueue",
			Level: obs.LevelAdmit, Item: 0,
			Start: aStart, Dur: time.Since(aStart),
			Attrs: map[string]any{"requests": len(reqs), "admitted": admitted},
		})
	}
	if !admitted {
		s.mShed.Inc()
		return nil
	}
	if async {
		s.retain(b)
	}
	return b
}

// retain stores an async batch for /result polling, evicting the oldest
// stored batch beyond the cap.
func (s *Server) retain(b *batch) {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	s.results[b.id] = b
	s.order = append(s.order, b.id)
	for len(s.order) > s.opts.ResultCap {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.results, evict)
		if _, dup := s.evicted[evict]; !dup {
			s.evicted[evict] = struct{}{}
			s.evictOrder = append(s.evictOrder, evict)
			for len(s.evictOrder) > evictedCap {
				delete(s.evicted, s.evictOrder[0])
				s.evictOrder = s.evictOrder[1:]
			}
		}
	}
}

// lookup finds a retained async batch; evicted reports whether the id was
// once retained and has since been FIFO-evicted (410 Gone, not 404).
func (s *Server) lookup(id string) (b *batch, evicted bool) {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if b := s.results[id]; b != nil {
		return b, false
	}
	_, ev := s.evicted[id]
	return nil, ev
}

// TierStoreFor resolves the per-signature store this replica SERVES to the
// fleet over the remote-cache tier API (remotecache.Server.StoreFor): the
// same disk namespace its own analyzers write through, or a memory tier
// without a cache directory. Unknown signatures are created on demand —
// the requesting peer defines the namespace.
func (s *Server) TierStoreFor(signature string) (sta.TierStore, error) {
	return s.pool.tierStoreFor(signature)
}

// RemoteBreakers snapshots every remote-cache client's circuit-breaker
// state, keyed by analyzer signature; nil when no remote tier is
// configured or no analyzer has been pooled yet.
func (s *Server) RemoteBreakers() map[string]remotecache.BreakerState {
	return s.pool.breakerStates()
}

// Healthy implements the /healthz hook: degraded while the queue is
// saturated (admission would shed). An open remote-cache breaker is
// REPORTED in the detail but does not degrade health — the tier is an
// optimization, the engine re-evaluates on every miss, and failing a
// load-balancer check because a peer died would turn one replica's outage
// into the fleet's.
func (s *Server) Healthy() (bool, string) {
	if s.queue.full() {
		return false, "work queue saturated"
	}
	open := 0
	for _, st := range s.pool.breakerStates() {
		if st != remotecache.BreakerClosed {
			open++
		}
	}
	if open > 0 {
		return true, fmt.Sprintf("ok (remote cache degraded: %d breaker(s) not closed)", open)
	}
	return true, "ok"
}

// HealthInfo reports the live serving state for the /healthz JSON body:
// truthful queue depth and capacity, worker count, and the signatures whose
// remote-cache breakers are not closed (sorted; empty slice when the remote
// tier is healthy or absent).
func (s *Server) HealthInfo() map[string]any {
	open := []string{}
	for sig, st := range s.pool.breakerStates() {
		if st != remotecache.BreakerClosed {
			open = append(open, sig)
		}
	}
	sort.Strings(open)
	return map[string]any{
		"queue_depth":    s.queue.queuedDepth(),
		"queue_capacity": s.opts.QueueLen,
		"workers":        s.opts.Workers,
		"open_breakers":  open,
	}
}

// Close stops the workers (in-flight analyses run to completion), then
// flushes and closes every pooled disk store. Queued-but-unstarted jobs are
// completed with an overloaded error so synchronous waiters unblock.
func (s *Server) Close() error {
	for _, j := range s.queue.close() {
		j.batch.complete(j.idx, v1.ErrorResponse(j.req.ID, v1.CodeOverloaded, "server shutting down"))
	}
	s.wg.Wait()
	return s.pool.close()
}

// workQueue is a bounded MPMC ring with all-or-nothing group admission.
type workQueue struct {
	mu     sync.Mutex
	nempty *sync.Cond
	buf    []*job
	head   int
	n      int
	closed bool
	depth  *obs.Gauge
}

func newWorkQueue(capacity int, depth *obs.Gauge) *workQueue {
	q := &workQueue{buf: make([]*job, capacity), depth: depth}
	q.nempty = sync.NewCond(&q.mu)
	return q
}

// tryPush admits every job or none: a group larger than the free space is
// rejected without partial enqueue, so two half-admitted batches can never
// wedge the queue waiting on each other's remainder.
func (q *workQueue) tryPush(jobs []*job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.n+len(jobs) > len(q.buf) {
		return false
	}
	for _, j := range jobs {
		q.buf[(q.head+q.n)%len(q.buf)] = j
		q.n++
	}
	q.depth.Set(int64(q.n))
	q.nempty.Broadcast()
	return true
}

// pop blocks for the next job; ok is false once the queue is closed and
// drained.
func (q *workQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.nempty.Wait()
	}
	if q.n == 0 {
		return nil, false
	}
	j := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.depth.Set(int64(q.n))
	return j, true
}

func (q *workQueue) full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n == len(q.buf)
}

// queuedDepth returns the number of queued-but-unstarted jobs.
func (q *workQueue) queuedDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// close marks the queue closed and returns the jobs that were queued but
// not yet picked up, so the caller can fail them out.
func (q *workQueue) close() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	var rest []*job
	for q.n > 0 {
		rest = append(rest, q.buf[q.head])
		q.buf[q.head] = nil
		q.head = (q.head + 1) % len(q.buf)
		q.n--
	}
	q.depth.Set(0)
	q.nempty.Broadcast()
	return rest
}
