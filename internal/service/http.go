package service

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"

	"qwm/internal/api/v1"
	"qwm/internal/obs"
)

// maxBodyBytes bounds one POST body. Netlists are text; 8 MiB is far above
// any deck this engine targets and keeps a hostile client from ballooning
// the process.
const maxBodyBytes = 8 << 20

// Handler returns the service mux: POST /analyze and GET /result/{id},
// wrapped in the RED-metrics / request-tracing middleware when Options
// configured either (see trace.go; without both the mux is returned bare).
// Mount it alongside an obs.Server handler for the full serving surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/result/", s.handleResult)
	return s.instrument(mux)
}

// httpStatus maps a v1 response to its transport status. The wire envelope
// carries the real verdict; the HTTP code exists for clients and proxies
// that route on status alone.
func httpStatus(resp v1.AnalyzeResponse) int {
	if resp.Status == v1.StatusOK {
		return http.StatusOK
	}
	if resp.Error == nil {
		return http.StatusInternalServerError
	}
	switch resp.Error.Code {
	case v1.CodeInvalidRequest:
		return http.StatusBadRequest
	case v1.CodeInvalidNetlist:
		return http.StatusUnprocessableEntity
	case v1.CodeOverloaded:
		return http.StatusTooManyRequests
	case v1.CodeNotFound:
		return http.StatusNotFound
	case v1.CodeGone:
		return http.StatusGone
	case v1.CodeCancelled:
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

// retryAfter derives the 429 Retry-After hint: a base that grows with the
// queued backlog relative to drain capacity (an empty queue says "1", a deep
// one says "come back much later"), plus a deterministic per-request jitter
// hashed from the request id so a burst of rejected clients does not return
// in lockstep and re-collide. Same id, same depth, same answer — replayable
// under test.
func (s *Server) retryAfter(id string) string {
	base := 1 + s.queue.queuedDepth()/(4*s.opts.Workers)
	if base > 30 {
		base = 30
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return strconv.Itoa(base + int(h.Sum64()%uint64(base+1)))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed,
			v1.ErrorResponse("", v1.CodeInvalidRequest, "POST required"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			v1.ErrorResponse("", v1.CodeInvalidRequest, "request body too large"))
		return
	}
	// A batch is detected by the presence of the "requests" key; anything
	// else is a single AnalyzeRequest.
	var probe struct {
		Requests []json.RawMessage `json:"requests"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		writeJSON(w, http.StatusBadRequest,
			v1.ErrorResponse("", v1.CodeInvalidRequest, "malformed JSON: "+err.Error()))
		return
	}
	if probe.Requests != nil {
		s.handleBatch(w, r, body)
		return
	}

	var req v1.AnalyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest,
			v1.ErrorResponse("", v1.CodeInvalidRequest, "malformed JSON: "+err.Error()))
		return
	}
	s.mRequests.Inc()
	b := s.admit(r.Context(), []v1.AnalyzeRequest{req}, false)
	if b == nil {
		w.Header().Set("Retry-After", s.retryAfter(req.ID))
		writeJSON(w, http.StatusTooManyRequests,
			v1.ErrorResponse(req.ID, v1.CodeOverloaded, "work queue full, retry later"))
		return
	}
	<-b.done
	resp := b.responses[0]
	resp.TraceID = obs.TraceIDFrom(r.Context())
	writeJSON(w, httpStatus(resp), resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, body []byte) {
	var breq v1.BatchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		writeJSON(w, http.StatusBadRequest,
			v1.ErrorResponse("", v1.CodeInvalidRequest, "malformed JSON: "+err.Error()))
		return
	}
	if err := v1.Validate(breq.SchemaVersion); err != nil {
		writeJSON(w, http.StatusBadRequest,
			v1.ErrorResponse(breq.ID, v1.CodeInvalidRequest, err.Error()))
		return
	}
	if len(breq.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest,
			v1.ErrorResponse(breq.ID, v1.CodeInvalidRequest, "empty batch"))
		return
	}
	s.mBatches.Inc()
	s.mRequests.Add(int64(len(breq.Requests)))
	if len(breq.Requests) > s.opts.QueueLen {
		// Larger than the queue will EVER hold: retrying is hopeless, so
		// this is a client error, not backpressure.
		writeJSON(w, http.StatusRequestEntityTooLarge,
			v1.ErrorResponse(breq.ID, v1.CodeInvalidRequest,
				fmt.Sprintf("batch of %d exceeds queue capacity %d; split it",
					len(breq.Requests), s.opts.QueueLen)))
		return
	}
	// Async batches outlive the submitting connection: their jobs run under
	// Background so a post-202 disconnect cannot shed retained work.
	ctx := r.Context()
	if breq.Async {
		ctx = context.Background()
	}
	b := s.admit(ctx, breq.Requests, breq.Async)
	if b == nil {
		w.Header().Set("Retry-After", s.retryAfter(breq.ID))
		writeJSON(w, http.StatusTooManyRequests, v1.BatchResponse{
			SchemaVersion: v1.SchemaVersion,
			ID:            breq.ID,
			Status:        v1.StatusError,
			Total:         len(breq.Requests),
			Error:         &v1.Error{Code: v1.CodeOverloaded, Message: "work queue full, retry later"},
		})
		return
	}
	if breq.Async {
		writeJSON(w, http.StatusAccepted, v1.BatchResponse{
			SchemaVersion: v1.SchemaVersion,
			ID:            b.id,
			Status:        v1.StatusPending,
			Total:         b.total,
			TraceID:       obs.TraceIDFrom(r.Context()),
		})
		return
	}
	<-b.done
	bresp := batchResponse(b)
	bresp.TraceID = obs.TraceIDFrom(r.Context())
	writeJSON(w, http.StatusOK, bresp)
}

// batchResponse renders a COMPLETED batch.
func batchResponse(b *batch) v1.BatchResponse {
	resp := v1.BatchResponse{
		SchemaVersion: v1.SchemaVersion,
		ID:            b.id,
		Status:        v1.StatusOK,
		Completed:     b.total,
		Total:         b.total,
		Responses:     b.responses,
	}
	for _, r := range b.responses {
		if r.Status != v1.StatusOK {
			resp.Status = v1.StatusError
			break
		}
	}
	return resp
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed,
			v1.ErrorResponse("", v1.CodeInvalidRequest, "GET required"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/result/")
	b, evicted := s.lookup(id)
	if b == nil {
		// Two distinct failures, two distinct answers: an id this server
		// retained and then FIFO-evicted is 410 Gone (the result existed;
		// polling later cannot help), an id it never issued is 404.
		if evicted {
			writeJSON(w, http.StatusGone, v1.BatchResponse{
				SchemaVersion: v1.SchemaVersion,
				ID:            id,
				Status:        v1.StatusError,
				Error:         &v1.Error{Code: v1.CodeGone, Message: "result evicted by retention cap; re-submit the batch"},
			})
			return
		}
		writeJSON(w, http.StatusNotFound, v1.BatchResponse{
			SchemaVersion: v1.SchemaVersion,
			ID:            id,
			Status:        v1.StatusError,
			Error:         &v1.Error{Code: v1.CodeNotFound, Message: "unknown result id"},
		})
		return
	}
	select {
	case <-b.done:
		writeJSON(w, http.StatusOK, batchResponse(b))
	default:
		completed, total := b.progress()
		writeJSON(w, http.StatusAccepted, v1.BatchResponse{
			SchemaVersion: v1.SchemaVersion,
			ID:            b.id,
			Status:        v1.StatusPending,
			Completed:     completed,
			Total:         total,
		})
	}
}
