package v1

import (
	"encoding/json"
	"reflect"
	"testing"

	"qwm/internal/sta"
)

// The golden strings below are the v1 stability promise in executable form:
// if marshalling one of these messages ever produces different bytes, a
// field, tag or type changed and the wire contract is broken. Changing a
// golden string here is only legal when ADDING an optional field.

func roundTrip[T any](t *testing.T, msg T, golden string) {
	t.Helper()
	b, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != golden {
		t.Fatalf("marshal drifted from golden:\n got  %s\n want %s", b, golden)
	}
	var back T
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, msg) {
		t.Fatalf("round-trip mismatch:\n got  %#v\n want %#v", back, msg)
	}
}

func TestAnalyzeRequestGolden(t *testing.T) {
	req := AnalyzeRequest{
		SchemaVersion: SchemaVersion,
		ID:            "r1",
		Netlist:       "* inv\nM1 out in 0 0 NMOS W=1u L=0.35u\n.end\n",
		Inputs:        map[string]Arrival{"in": {Rise: 1e-10, Fall: 2e-10, RiseSlew: 5e-12, FallSlew: 0}},
		Outputs:       []string{"out"},
		Budget:        &Budget{NRIters: 500, WallMS: 2.5},
		Features:      &Features{ReduceTolPct: 1, Memo: true, Interp: true},
	}
	const golden = `{"schema_version":"qwm.v1","id":"r1","netlist":"* inv\nM1 out in 0 0 NMOS W=1u L=0.35u\n.end\n","inputs":{"in":{"rise":1e-10,"fall":2e-10,"rise_slew":5e-12,"fall_slew":0}},"outputs":["out"],"budget":{"nr_iters":500,"wall_ms":2.5},"features":{"reduce_tol_pct":1,"memo":true,"interp":true}}`
	roundTrip(t, req, golden)
}

func TestAnalyzeRequestMinimalGolden(t *testing.T) {
	// The curl-friendly minimum: netlist + outputs, everything else
	// defaulted. Optional zero fields must not appear on the wire.
	req := AnalyzeRequest{Netlist: "deck", Outputs: []string{"y"}}
	const golden = `{"netlist":"deck","outputs":["y"]}`
	roundTrip(t, req, golden)
}

func TestAnalyzeResponseGolden(t *testing.T) {
	resp := AnalyzeResponse{
		SchemaVersion: SchemaVersion,
		ID:            "r1",
		Status:        StatusOK,
		Result: &AnalyzeResult{
			WorstArrival:    3.25e-10,
			WorstOutput:     "out",
			CriticalPath:    []string{"out", "x1", "in"},
			StagesEvaluated: 4,
			Outputs:         map[string]Arrival{"out": {Rise: 3.25e-10, Fall: 2e-10, RiseSlew: 4e-11, FallSlew: 3e-11}},
			Diagnostics: Diagnostics{
				Healthy:    false,
				Degraded:   1,
				TierCounts: map[string]int{"spice": 1},
				EvalTier:   map[string]string{"out~rise": "spice"},
				Summary:    "degraded",
			},
		},
	}
	const golden = `{"schema_version":"qwm.v1","id":"r1","status":"ok","result":{"worst_arrival":3.25e-10,"worst_output":"out","critical_path":["out","x1","in"],"stages_evaluated":4,"outputs":{"out":{"rise":3.25e-10,"fall":2e-10,"rise_slew":4e-11,"fall_slew":3e-11}},"diagnostics":{"healthy":false,"degraded":1,"tier_counts":{"spice":1},"eval_tier":{"out~rise":"spice"},"summary":"degraded"}}}`
	roundTrip(t, resp, golden)
}

func TestErrorResponseGolden(t *testing.T) {
	resp := ErrorResponse("b9", CodeOverloaded, "queue full")
	const golden = `{"schema_version":"qwm.v1","id":"b9","status":"error","error":{"code":"overloaded","message":"queue full"}}`
	roundTrip(t, resp, golden)
}

func TestBatchGolden(t *testing.T) {
	breq := BatchRequest{
		SchemaVersion: SchemaVersion,
		Async:         true,
		Requests: []AnalyzeRequest{
			{Netlist: "d1", Outputs: []string{"a"}},
			{Netlist: "d2", Outputs: []string{"b"}},
		},
	}
	const goldenReq = `{"schema_version":"qwm.v1","async":true,"requests":[{"netlist":"d1","outputs":["a"]},{"netlist":"d2","outputs":["b"]}]}`
	roundTrip(t, breq, goldenReq)

	bresp := BatchResponse{
		SchemaVersion: SchemaVersion,
		ID:            "b1",
		Status:        StatusPending,
		Completed:     1,
		Total:         2,
	}
	const goldenResp = `{"schema_version":"qwm.v1","id":"b1","status":"pending","completed":1,"total":2}`
	roundTrip(t, bresp, goldenResp)
}

// TestTraceIDGolden pins the trailing trace_id addition: present when a
// traced server stamps it, absent from the wire otherwise (the existing
// goldens above prove the absent case — they predate the field).
func TestTraceIDGolden(t *testing.T) {
	resp := AnalyzeResponse{
		SchemaVersion: SchemaVersion,
		ID:            "r1",
		Status:        StatusOK,
		TraceID:       "aaaabbbbccccddddaaaabbbbccccdddd",
	}
	const golden = `{"schema_version":"qwm.v1","id":"r1","status":"ok","trace_id":"aaaabbbbccccddddaaaabbbbccccdddd"}`
	roundTrip(t, resp, golden)

	bresp := BatchResponse{
		SchemaVersion: SchemaVersion,
		ID:            "b1",
		Status:        StatusPending,
		Total:         1,
		TraceID:       "aaaabbbbccccddddaaaabbbbccccdddd",
	}
	const goldenBatch = `{"schema_version":"qwm.v1","id":"b1","status":"pending","completed":0,"total":1,"trace_id":"aaaabbbbccccddddaaaabbbbccccdddd"}`
	roundTrip(t, bresp, goldenBatch)
}

func TestValidate(t *testing.T) {
	if err := Validate(""); err != nil {
		t.Fatalf("empty version must be accepted: %v", err)
	}
	if err := Validate(SchemaVersion); err != nil {
		t.Fatalf("exact version must be accepted: %v", err)
	}
	if err := Validate("qwm.v2"); err == nil {
		t.Fatal("future version must be rejected")
	}
}

func TestFromDiagnostics(t *testing.T) {
	var d sta.Diagnostics
	d.TierCounts[sta.TierQWM] = 7
	got := FromDiagnostics(d)
	if !got.Healthy {
		t.Fatal("clean diagnostics must convert healthy")
	}
	if got.TierCounts["qwm"] != 7 {
		t.Fatalf("tier counts = %v, want qwm:7", got.TierCounts)
	}
	if got.Summary != "" {
		t.Fatalf("healthy diagnostics must omit the summary, got %q", got.Summary)
	}

	d.Degraded = 2
	d.EvalTier = map[string]string{"o~rise": "rc-bound"}
	deg := FromDiagnostics(d)
	if deg.Healthy {
		t.Fatal("degraded diagnostics must convert unhealthy")
	}
	if deg.EvalTier["o~rise"] != "rc-bound" || deg.Summary == "" {
		t.Fatalf("degraded conversion lost detail: %+v", deg)
	}
}

func TestFromResultArrivalBitsSurvive(t *testing.T) {
	// The JSON float encoding is shortest-round-trip: arrival bits must
	// survive marshal → unmarshal exactly, or the service could never honor
	// its bit-identity guarantee.
	res := &sta.Result{
		Arrivals: map[string]sta.Arrival{
			"out": {Rise: 3.141592653589793e-10, Fall: 2.718281828459045e-10, RiseSlew: 1.1e-11, FallSlew: 0x1p-40},
		},
		WorstArrival: 3.141592653589793e-10,
		WorstOutput:  "out",
	}
	wire := FromResult(res, []string{"out"}, false)
	b, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var back AnalyzeResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Outputs["out"].STA() != res.Arrivals["out"] {
		t.Fatalf("arrival bits changed over the wire: %v != %v", back.Outputs["out"], res.Arrivals["out"])
	}
}
