// Package v1 is the repository's versioned wire schema: the JSON types the
// timing-analysis service (internal/service), the CLI tools (cmd/sta,
// cmd/stad, cmd/verify) and any future replica-to-replica protocol exchange.
// It is the first schema with a stability promise:
//
//   - Every top-level message carries SchemaVersion ("qwm.v1"). A consumer
//     must reject messages whose version it does not understand rather than
//     guess at field semantics.
//   - Within v1, fields are append-only: a field, its JSON name, its type
//     and its meaning never change once released. New OPTIONAL fields may be
//     added (consumers ignore unknown fields, the encoding/json default).
//   - Breaking changes get a new package (internal/api/v2) and a new version
//     string; the service then serves both during a migration window.
//
// The package deliberately contains only data types, constants and
// conversions from the engine's native results — no HTTP, no handlers — so
// every emitter (service responses, -metrics-json dumps, verify reports)
// shares one schema instead of growing ad-hoc structs.
package v1

import (
	"fmt"
	"time"

	"qwm/internal/obs"
	"qwm/internal/sta"
)

// SchemaVersion is the version string every v1 message carries.
const SchemaVersion = "qwm.v1"

// Validate checks a message's schema_version field. An empty version is
// accepted on REQUESTS (a v1 endpoint assumes v1 when unlabelled, which
// keeps curl one-liners pleasant); anything else must match exactly.
func Validate(version string) error {
	if version == "" || version == SchemaVersion {
		return nil
	}
	return fmt.Errorf("api: unsupported schema version %q (this endpoint speaks %q)", version, SchemaVersion)
}

// Arrival is a rise/fall arrival-time pair in seconds with the transition
// times of the arriving edges — the wire form of sta.Arrival.
type Arrival struct {
	Rise     float64 `json:"rise"`
	Fall     float64 `json:"fall"`
	RiseSlew float64 `json:"rise_slew"`
	FallSlew float64 `json:"fall_slew"`
}

// FromArrival converts the engine's native arrival.
func FromArrival(a sta.Arrival) Arrival {
	return Arrival{Rise: a.Rise, Fall: a.Fall, RiseSlew: a.RiseSlew, FallSlew: a.FallSlew}
}

// STA returns the engine's native form.
func (a Arrival) STA() sta.Arrival {
	return sta.Arrival{Rise: a.Rise, Fall: a.Fall, RiseSlew: a.RiseSlew, FallSlew: a.FallSlew}
}

// Features selects the per-analyzer accelerator configuration. The service
// pools analyzers by this (plus the budget), so two requests with equal
// features share a delay cache and a disk-cache namespace.
type Features struct {
	// ReduceTolPct > 0 enables the RC-chain reduction pre-pass with that
	// second-moment mismatch tolerance in percent (cmd/sta -reduce).
	ReduceTolPct float64 `json:"reduce_tol_pct,omitempty"`
	// Memo enables equivalence-class stage memoization (cmd/sta -memo);
	// Interp additionally interpolates between slew-bucket boundaries.
	Memo   bool `json:"memo,omitempty"`
	Interp bool `json:"interp,omitempty"`
}

// Budget bounds each stage-direction evaluation (see sta.EvalBudget).
// Exhaustion degrades the solver tier; it never fails the request.
type Budget struct {
	NRIters int `json:"nr_iters,omitempty"`
	// WallMS is the per-evaluation wall-clock budget in milliseconds.
	// Wall budgets are inherently racy with scheduling; prefer NRIters
	// when cross-run determinism matters.
	WallMS float64 `json:"wall_ms,omitempty"`
}

// STA returns the engine's native form.
func (b Budget) STA() sta.EvalBudget {
	return sta.EvalBudget{NRIters: b.NRIters, Wall: time.Duration(b.WallMS * float64(time.Millisecond))}
}

// Chaos arms the engine's deterministic fault-injection hooks for one
// request — verification traffic, not production. A chaos request always
// runs on a fresh, unpooled analyzer with no disk tier, so injected faults
// can never poison shared caches. Decisions are pure hashes of (seed,
// class, site), so identical chaos requests produce identical responses.
type Chaos struct {
	Seed int64 `json:"seed"`
	// Classes names the armed fault classes (see internal/faultinject:
	// "nr-divergence", "pivot-breakdown", "panic", "budget-exhaustion",
	// "cache-stall").
	Classes []string `json:"classes"`
	// Rate is the per-class firing rate in (0, 1]; 0 means 1.
	Rate float64 `json:"rate,omitempty"`
}

// AnalyzeRequest asks for one timing analysis of one netlist.
type AnalyzeRequest struct {
	SchemaVersion string `json:"schema_version,omitempty"`
	// ID is a client-chosen label echoed back on the response.
	ID string `json:"id,omitempty"`
	// Tech names the device technology. "" and "cmos035" select the
	// in-repo 0.35 µm CMOS kit; anything else is rejected.
	Tech string `json:"tech,omitempty"`
	// Netlist is the circuit as SPICE-style deck text (the internal/netlist
	// dialect: title line, M/R/C/V cards, .end).
	Netlist string `json:"netlist"`
	// Inputs maps primary-input nets to arrivals; missing inputs arrive at
	// t = 0 as ideal steps.
	Inputs map[string]Arrival `json:"inputs,omitempty"`
	// Outputs are the primary outputs the analysis is asked about.
	Outputs []string `json:"outputs"`
	// Budget, when set, bounds each stage-direction evaluation.
	Budget *Budget `json:"budget,omitempty"`
	// Features selects the analyzer pool the request runs on; nil means all
	// accelerators off (the engine's exact baseline).
	Features *Features `json:"features,omitempty"`
	// Chaos arms deterministic fault injection (verification traffic).
	Chaos *Chaos `json:"chaos,omitempty"`
	// FullArrivals asks for every net's arrival in the result, not just the
	// requested outputs'.
	FullArrivals bool `json:"full_arrivals,omitempty"`
}

// Response status values.
const (
	StatusOK      = "ok"
	StatusError   = "error"
	StatusPending = "pending"
)

// Error code values.
const (
	CodeInvalidRequest = "invalid_request" // malformed JSON, bad schema version, bad fields
	CodeInvalidNetlist = "invalid_netlist" // deck parse or pre-flight validation failure
	CodeAnalysisFailed = "analysis_failed" // the engine returned an error
	CodeOverloaded     = "overloaded"      // work queue full; retry after backoff
	CodeNotFound       = "not_found"       // unknown /result id
	CodeGone           = "gone"            // /result id was retained, then FIFO-evicted
	CodeCancelled      = "cancelled"       // client disconnected before analysis started
)

// Error is the wire form of a failure.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Code + ": " + e.Message }

// Diagnostics is the wire form of sta.Diagnostics: the degradation
// accounting of one analysis.
type Diagnostics struct {
	Healthy         bool              `json:"healthy"`
	EvalErrors      int               `json:"eval_errors,omitempty"`
	SlewFallbacks   int               `json:"slew_fallbacks,omitempty"`
	Degraded        int               `json:"degraded,omitempty"`
	PanicsRecovered int               `json:"panics_recovered,omitempty"`
	TierCounts      map[string]int    `json:"tier_counts,omitempty"`
	EvalTier        map[string]string `json:"eval_tier,omitempty"`
	EvalErrorDetail map[string]string `json:"eval_error_detail,omitempty"`
	ReducedNodes    int               `json:"reduced_nodes,omitempty"`
	ClassCount      int               `json:"class_count,omitempty"`
	ClassHits       int               `json:"class_hits,omitempty"`
	// Summary is the engine's one-line human-readable rendering.
	Summary string `json:"summary,omitempty"`
}

// FromDiagnostics converts the engine's native diagnostics. TierCounts maps
// tier name → count and omits zero tiers, so the wire form is stable even
// if the engine grows tiers.
func FromDiagnostics(d sta.Diagnostics) Diagnostics {
	out := Diagnostics{
		Healthy:         d.Healthy(),
		EvalErrors:      d.EvalErrors,
		SlewFallbacks:   d.SlewFallbacks,
		Degraded:        d.Degraded,
		PanicsRecovered: d.PanicsRecovered,
		ReducedNodes:    d.ReducedNodes,
		ClassCount:      d.ClassCount,
		ClassHits:       d.ClassHits,
	}
	for t := sta.TierQWM; t < sta.NumTiers; t++ {
		if n := d.TierCounts[t]; n != 0 {
			if out.TierCounts == nil {
				out.TierCounts = map[string]int{}
			}
			out.TierCounts[t.String()] = n
		}
	}
	if len(d.EvalTier) > 0 {
		out.EvalTier = make(map[string]string, len(d.EvalTier))
		for k, v := range d.EvalTier {
			out.EvalTier[k] = v
		}
	}
	if len(d.EvalErrorDetail) > 0 {
		out.EvalErrorDetail = make(map[string]string, len(d.EvalErrorDetail))
		for k, v := range d.EvalErrorDetail {
			out.EvalErrorDetail[k] = v
		}
	}
	if !out.Healthy {
		out.Summary = d.String()
	}
	return out
}

// AnalyzeResult is the wire form of a completed analysis.
type AnalyzeResult struct {
	// WorstArrival/WorstOutput are the max arrival over the requested
	// outputs and the output it occurs at (seconds).
	WorstArrival float64 `json:"worst_arrival"`
	WorstOutput  string  `json:"worst_output"`
	// CriticalPath lists nets from the worst output back to a primary
	// input, latest first.
	CriticalPath []string `json:"critical_path"`
	// StagesEvaluated counts solver evaluations this analysis performed;
	// a fully warm (memory- or disk-cached) run reports 0.
	StagesEvaluated int `json:"stages_evaluated"`
	// Outputs holds the requested outputs' arrivals. Arrivals additionally
	// holds every net when the request set full_arrivals.
	Outputs  map[string]Arrival `json:"outputs"`
	Arrivals map[string]Arrival `json:"arrivals,omitempty"`
	// Diagnostics carries the degradation accounting; check .Healthy.
	Diagnostics Diagnostics `json:"diagnostics"`
}

// FromResult converts an engine result. outputs names the requested primary
// outputs (canonical names); fullArrivals copies the complete arrival map.
func FromResult(res *sta.Result, outputs []string, fullArrivals bool) *AnalyzeResult {
	out := &AnalyzeResult{
		WorstArrival:    res.WorstArrival,
		WorstOutput:     res.WorstOutput,
		CriticalPath:    append([]string(nil), res.CriticalPath...),
		StagesEvaluated: res.StagesEvaluated,
		Outputs:         make(map[string]Arrival, len(outputs)),
		Diagnostics:     FromDiagnostics(res.Diagnostics),
	}
	for _, o := range outputs {
		if ar, ok := res.Arrivals[o]; ok {
			out.Outputs[o] = FromArrival(ar)
		}
	}
	if fullArrivals {
		out.Arrivals = make(map[string]Arrival, len(res.Arrivals))
		for n, ar := range res.Arrivals {
			out.Arrivals[n] = FromArrival(ar)
		}
	}
	return out
}

// AnalyzeResponse answers one AnalyzeRequest.
type AnalyzeResponse struct {
	SchemaVersion string         `json:"schema_version"`
	ID            string         `json:"id,omitempty"`
	Status        string         `json:"status"`
	Result        *AnalyzeResult `json:"result,omitempty"`
	Error         *Error         `json:"error,omitempty"`
	// TraceID is the distributed-tracing correlation id of the request that
	// produced this response, stamped only when the serving replica has
	// request tracing enabled; fetch the span tree at /trace/request/{id}.
	// Appended per the v1 append-only policy — absent on untraced replicas.
	TraceID string `json:"trace_id,omitempty"`
}

// OKResponse wraps a result in the success envelope.
func OKResponse(id string, res *AnalyzeResult) AnalyzeResponse {
	return AnalyzeResponse{SchemaVersion: SchemaVersion, ID: id, Status: StatusOK, Result: res}
}

// ErrorResponse wraps a failure in the error envelope.
func ErrorResponse(id, code, msg string) AnalyzeResponse {
	return AnalyzeResponse{
		SchemaVersion: SchemaVersion, ID: id, Status: StatusError,
		Error: &Error{Code: code, Message: msg},
	}
}

// BatchRequest submits many analyses in one call — the multi-netlist ×
// multi-corner workload shape. The service detects a batch by the presence
// of the "requests" key.
type BatchRequest struct {
	SchemaVersion string `json:"schema_version,omitempty"`
	ID            string `json:"id,omitempty"`
	// Async makes POST /analyze return 202 with a batch id immediately;
	// poll GET /result/{id} for the BatchResponse. Synchronous batches
	// block until every sub-request completes.
	Async    bool             `json:"async,omitempty"`
	Requests []AnalyzeRequest `json:"requests"`
}

// BatchResponse answers a BatchRequest: one AnalyzeResponse per sub-request
// in submission order. Status is "pending" while an async batch is still
// executing (Responses then holds only completed slots as nulls/partials
// are not exposed — poll again), "ok" when every sub-request succeeded, and
// "error" when any failed (per-slot errors carry the detail).
type BatchResponse struct {
	SchemaVersion string            `json:"schema_version"`
	ID            string            `json:"id,omitempty"`
	Status        string            `json:"status"`
	Completed     int               `json:"completed"`
	Total         int               `json:"total"`
	Responses     []AnalyzeResponse `json:"responses,omitempty"`
	Error         *Error            `json:"error,omitempty"`
	// TraceID mirrors AnalyzeResponse.TraceID for the batch envelope.
	TraceID string `json:"trace_id,omitempty"`
}

// MetricsEnvelope is the versioned wrapper for metrics-registry dumps
// (cmd/sta -metrics-json, verify report embedding): the registry snapshot
// under a schema_version key instead of a bare ad-hoc object.
type MetricsEnvelope struct {
	SchemaVersion string       `json:"schema_version"`
	Metrics       obs.Snapshot `json:"metrics"`
}

// NewMetricsEnvelope stamps a snapshot with the schema version.
func NewMetricsEnvelope(s obs.Snapshot) MetricsEnvelope {
	return MetricsEnvelope{SchemaVersion: SchemaVersion, Metrics: s}
}
