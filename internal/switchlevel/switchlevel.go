// Package switchlevel implements the Crystal/IRSIM-class baseline from the
// paper's related work (§II): each conducting transistor is replaced by an
// effective switch resistance, the charge/discharge path becomes an RC
// tree, and the delay estimate is the Elmore metric. Fast and crude — the
// accuracy gap versus QWM and SPICE on the same workloads is exactly the
// motivation for transistor-level waveform methods.
package switchlevel

import (
	"fmt"

	"qwm/internal/awe"
	"qwm/internal/circuit"
	"qwm/internal/mos"
	"qwm/internal/stages"
)

// EffectiveResistance returns the switch-level resistance of a device of
// width w: the classic large-signal average of VDD/I across the output
// swing, R ≈ (3/4)·VDD / Idsat(Vgs = Vds = VDD), which folds the
// saturation-to-triode trajectory into one number.
func EffectiveResistance(p *mos.Params, tech *mos.Tech, w, l float64) float64 {
	var iv mos.IV
	if p.Pol == mos.PMOS {
		iv = p.Ids(w, l, 0, 0, tech.VDD, tech.VDD)
	} else {
		iv = p.Ids(w, l, tech.VDD, tech.VDD, 0, 0)
	}
	i := iv.I
	if i < 0 {
		i = -i
	}
	if i <= 0 {
		return 1e12
	}
	return 0.75 * tech.VDD / i
}

// Delay estimates a workload's 50 % propagation delay by reducing its worst
// path to an RC tree and evaluating the Elmore metric scaled by ln 2 (the
// single-pole 50 % point).
func Delay(w *stages.Workload, tech *mos.Tech) (float64, error) {
	tree := awe.NewRCTree("rail")
	prev := "rail"
	for i, pe := range w.Path.Elems {
		var r float64
		switch pe.Edge.Kind {
		case circuit.KindWire:
			r = pe.Edge.R
		case circuit.KindNMOS:
			r = EffectiveResistance(&tech.N, tech, pe.Edge.W, pe.Edge.L)
		case circuit.KindPMOS:
			r = EffectiveResistance(&tech.P, tech, pe.Edge.W, pe.Edge.L)
		default:
			return 0, fmt.Errorf("switchlevel: unsupported element kind %v", pe.Edge.Kind)
		}
		name := pe.Upper
		if err := tree.AddNode(name, prev, r, nodeCap(w, tech, name)); err != nil {
			return 0, err
		}
		prev = name
		_ = i
	}
	d, err := tree.Elmore(circuit.CanonName(w.Output))
	if err != nil {
		return 0, err
	}
	// Elmore is the first moment; for the 50 % point of an RC-dominated
	// response, scale by ln 2 as for a single pole.
	return d * 0.69314718056, nil
}

// nodeCap sums the explicit loads plus the zero-bias parasitics of every
// device touching the node — the same inventory the QWM builder uses, but
// without voltage dependence (switch-level models are linear).
func nodeCap(w *stages.Workload, tech *mos.Tech, node string) float64 {
	c := w.Loads[node]
	for _, edge := range w.Stage.Edges {
		if edge.Kind == circuit.KindWire {
			continue
		}
		p := &tech.N
		if edge.Kind == circuit.KindPMOS {
			p = &tech.P
		}
		if edge.Src == node || edge.Snk == node {
			j := p.DefaultJunction(edge.W)
			// Mid-swing junction bias as the linearization point.
			c += p.JunctionCap(j, tech.VDD/2)
			src, _ := p.ChannelCapSplit(edge.W, edge.L)
			c += p.OverlapCap(edge.W) + src
		}
	}
	return c
}
