package switchlevel

import (
	"testing"

	"qwm/internal/mos"
	"qwm/internal/stages"
)

var tech = mos.CMOSP35()

func TestEffectiveResistancePlausible(t *testing.T) {
	rn := EffectiveResistance(&tech.N, tech, 1e-6, tech.LMin)
	// A 1 µm NMOS in this process: a few kΩ.
	if rn < 500 || rn > 20e3 {
		t.Errorf("NMOS Reff = %g Ω implausible", rn)
	}
	rp := EffectiveResistance(&tech.P, tech, 1e-6, tech.LMin)
	if rp <= rn {
		t.Errorf("PMOS (%g) should be more resistive than NMOS (%g) at equal width", rp, rn)
	}
	// Doubling width halves resistance.
	r2 := EffectiveResistance(&tech.N, tech, 2e-6, tech.LMin)
	if r2 < 0.45*rn || r2 > 0.55*rn {
		t.Errorf("width scaling: %g vs %g", r2, rn)
	}
	// An off device (zero current) saturates to the huge-resistance guard.
	off := EffectiveResistance(&mos.Params{Pol: mos.NMOS, Vth0: 10, Phi: 0.8, NSub: 1.4, KP: 1e-6, ESat: 1e7}, tech, 1e-6, tech.LMin)
	if off < 1e9 {
		t.Errorf("off device Reff = %g", off)
	}
}

func TestElmoreDelayOrderOfMagnitude(t *testing.T) {
	// Switch-level Elmore should land within ~2× of the detailed simulators
	// (whose reference values for these workloads are ≈ 50–260 ps; see the
	// bench package) — useful for ranking, not for signoff.
	w, err := stages.NAND(tech, 3, 0.8e-6, 1.6e-6, 15e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Delay(w, tech)
	if err != nil {
		t.Fatal(err)
	}
	if d < 50e-12 || d > 500e-12 {
		t.Errorf("nand3 Elmore delay %g s outside the plausible band", d)
	}
}

func TestElmoreMonotoneInStackDepth(t *testing.T) {
	prev := 0.0
	for _, k := range []int{2, 4, 6, 8} {
		widths := make([]float64, k)
		for i := range widths {
			widths[i] = 1.5e-6
		}
		w, err := stages.Stack(tech, widths, 10e-15, 0)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Delay(w, tech)
		if err != nil {
			t.Fatal(err)
		}
		if d <= prev {
			t.Fatalf("Elmore delay not increasing with depth at K=%d", k)
		}
		prev = d
	}
}

func TestDelayHandlesWires(t *testing.T) {
	w, err := stages.DecoderTree(tech, 3, 2e-6, 50e-6, 20e-15, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Delay(w, tech)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("decoder delay = %g", d)
	}
}
