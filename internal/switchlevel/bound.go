package switchlevel

import (
	"fmt"

	"qwm/internal/mos"
	"qwm/internal/stages"
)

// BoundFactor is the guard-band the conservative tier applies on top of the
// ln2-scaled Elmore delay. Elmore underestimates multi-pole RC responses by
// at most ~2x in pathological trees and the switch-resistance abstraction
// adds its own error, so a 3x margin keeps the bound safely above both the
// QWM and SPICE answers on every workload in the verify corpus while still
// being the same order of magnitude (a useful, finite pessimism — not +Inf).
const BoundFactor = 3.0

// boundFloor keeps the bound strictly positive even for degenerate
// zero-resistance / zero-cap paths, so downstream arrival-time arithmetic
// never divides by or compares against a zero delay.
const boundFloor = 1e-12

// PathBound returns a conservative upper bound on the workload's 50 %
// propagation delay: the switch-level Elmore estimate inflated by
// BoundFactor. This is the last rung of the sta degradation ladder — it must
// never fail on a structurally valid workload and must never be optimistic,
// but it is allowed to be several times pessimistic.
func PathBound(w *stages.Workload, tech *mos.Tech) (float64, error) {
	d, err := Delay(w, tech)
	if err != nil {
		return 0, fmt.Errorf("switchlevel: path bound: %w", err)
	}
	b := d * BoundFactor
	if b < boundFloor {
		b = boundFloor
	}
	return b, nil
}
