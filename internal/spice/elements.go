package spice

import (
	"qwm/internal/la"
	"qwm/internal/mos"
)

// ctx carries one Newton evaluation: the current iterate x, the residual f
// and Jacobian to fill, the evaluation time and integration step.
type ctx struct {
	x    []float64
	f    []float64
	jac  *la.Matrix
	t    float64 // time at the end of the step being solved
	h    float64 // step size (ignored when dc)
	dc   bool    // DC analysis: charge elements are open
	trap bool    // trapezoidal (else backward Euler)
}

// v returns the voltage of node index i, with ground (-1) fixed at 0.
func (c *ctx) v(i int) float64 {
	if i < 0 {
		return 0
	}
	return c.x[i]
}

func (c *ctx) addF(i int, val float64) {
	if i >= 0 {
		c.f[i] += val
	}
}

func (c *ctx) addJ(i, j int, val float64) {
	if i >= 0 && j >= 0 {
		c.jac.Add(i, j, val)
	}
}

// element is anything that stamps KCL residual and Jacobian contributions.
type element interface {
	stamp(c *ctx)
}

// stateful elements carry integration state across time steps.
type stateful interface {
	initState(c *ctx)
	accept(c *ctx)
}

// resistorElem is a linear conductance between nodes a and b.
type resistorElem struct {
	a, b int
	g    float64
}

func (r *resistorElem) stamp(c *ctx) {
	i := r.g * (c.v(r.a) - c.v(r.b))
	c.addF(r.a, i)
	c.addF(r.b, -i)
	c.addJ(r.a, r.a, r.g)
	c.addJ(r.a, r.b, -r.g)
	c.addJ(r.b, r.a, -r.g)
	c.addJ(r.b, r.b, r.g)
}

// vsrcElem is an independent voltage source with branch-current unknown br.
type vsrcElem struct {
	a, b, br int
	wave     interface{ Eval(t float64) float64 }
}

func (v *vsrcElem) value(t float64) float64 {
	if v.wave == nil {
		return 0
	}
	return v.wave.Eval(t)
}

func (v *vsrcElem) stamp(c *ctx) {
	ib := c.x[v.br]
	c.addF(v.a, ib)
	c.addF(v.b, -ib)
	c.f[v.br] += c.v(v.a) - c.v(v.b) - v.value(c.t)
	c.addJ(v.a, v.br, 1)
	c.addJ(v.b, v.br, -1)
	c.addJ(v.br, v.a, 1)
	c.addJ(v.br, v.b, -1)
}

// chargeElem is a two-terminal charge-based capacitance: q = qfn(va − vb).
// Linear capacitors and nonlinear junction capacitances share this code;
// integrating charge (not capacitance) keeps nonlinear parasitics
// charge-conserving under both integration methods.
type chargeElem struct {
	a, b         int
	qfn          func(v float64) (q, cap float64)
	qPrev, iPrev float64
}

func (e *chargeElem) stamp(c *ctx) {
	if c.dc {
		return
	}
	q, cp := e.qfn(c.v(e.a) - c.v(e.b))
	var i, geq float64
	if c.trap {
		i = 2*(q-e.qPrev)/c.h - e.iPrev
		geq = 2 * cp / c.h
	} else {
		i = (q - e.qPrev) / c.h
		geq = cp / c.h
	}
	c.addF(e.a, i)
	c.addF(e.b, -i)
	c.addJ(e.a, e.a, geq)
	c.addJ(e.a, e.b, -geq)
	c.addJ(e.b, e.a, -geq)
	c.addJ(e.b, e.b, geq)
}

func (e *chargeElem) initState(c *ctx) {
	q, _ := e.qfn(c.v(e.a) - c.v(e.b))
	e.qPrev = q
	e.iPrev = 0
}

func (e *chargeElem) accept(c *ctx) {
	q, _ := e.qfn(c.v(e.a) - c.v(e.b))
	var i float64
	if c.trap {
		i = 2*(q-e.qPrev)/c.h - e.iPrev
	} else {
		i = (q - e.qPrev) / c.h
	}
	e.qPrev = q
	e.iPrev = i
}

// linearQ returns a charge function for a constant capacitance.
func linearQ(capacitance float64) func(float64) (float64, float64) {
	return func(v float64) (float64, float64) {
		return capacitance * v, capacitance
	}
}

// junctionQ returns the charge function of a diffusion junction between the
// diffusion node (terminal a) and the body node (terminal b). For NMOS the
// reverse bias is va − vb; for PMOS it is vb − va, with the stored charge
// negated so dq/dv stays a positive capacitance in the a-to-b convention.
func junctionQ(p *mos.Params, j mos.Junction) func(float64) (float64, float64) {
	if p.Pol == mos.PMOS {
		return func(v float64) (float64, float64) {
			return -p.JunctionCharge(j, -v), p.JunctionCap(j, -v)
		}
	}
	return func(v float64) (float64, float64) {
		return p.JunctionCharge(j, v), p.JunctionCap(j, v)
	}
}

// mosElem is the MOSFET channel (DC current only; parasitic charges are
// separate chargeElems attached during construction).
type mosElem struct {
	d, g, s, b int
	p          *mos.Params
	w, l       float64
}

func (m *mosElem) stamp(c *ctx) {
	iv := m.p.Ids(m.w, m.l, c.v(m.g), c.v(m.d), c.v(m.s), c.v(m.b))
	c.addF(m.d, iv.I)
	c.addF(m.s, -iv.I)
	c.addJ(m.d, m.g, iv.DVg)
	c.addJ(m.d, m.d, iv.DVd)
	c.addJ(m.d, m.s, iv.DVs)
	c.addJ(m.s, m.g, -iv.DVg)
	c.addJ(m.s, m.d, -iv.DVd)
	c.addJ(m.s, m.s, -iv.DVs)
}
