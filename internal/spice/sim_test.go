package spice

import (
	"math"
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/mos"
	"qwm/internal/wave"
)

var tech = mos.CMOSP35()

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

// rcNet builds V(step) — R — node "out" — C — gnd.
func rcNet(r, c float64, src wave.Waveform) *circuit.Netlist {
	n := &circuit.Netlist{}
	n.AddVSource("vin", "in", "0", src)
	n.AddResistor("r1", "in", "out", r)
	n.AddCapacitor("c1", "out", "0", c)
	return n
}

func TestRCChargeMatchesAnalytic(t *testing.T) {
	const (
		R   = 1e3
		C   = 1e-12
		tau = R * C
	)
	n := rcNet(R, C, wave.Step{At: 0, Low: 0, High: 1})
	s, err := New(n, tech, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{Trapezoidal, BackwardEuler} {
		res, err := s.Transient(Options{TStop: 5 * tau, Step: tau / 200, Method: m, IC: map[string]float64{"out": 0}})
		if err != nil {
			t.Fatal(err)
		}
		w, err := res.Waveform("out")
		if err != nil {
			t.Fatal(err)
		}
		for _, tt := range []float64{0.5 * tau, tau, 2 * tau, 4 * tau} {
			want := 1 - math.Exp(-tt/tau)
			got := w.Eval(tt)
			if !feq(got, want, 5e-3) {
				t.Errorf("method %v: v(%g·tau) = %g, want %g", m, tt/tau, got, want)
			}
		}
	}
}

// Integration-order check on a smooth input: halving the step shrinks
// trapezoidal error ~4× (second order) but backward Euler only ~2×.
func TestIntegrationOrders(t *testing.T) {
	const (
		R   = 1e3
		C   = 1e-12
		tau = R * C
	)
	// Ramp response of an RC: v(t) = k(t − τ + τ·e^(−t/τ)) while ramping.
	ramp := wave.Ramp{T0: 0, T1: 10 * tau, Low: 0, High: 1}
	k := 1.0 / (10 * tau)
	analytic := func(tt float64) float64 {
		return k * (tt - tau + tau*math.Exp(-tt/tau))
	}
	n := rcNet(R, C, ramp)
	s, _ := New(n, tech, false)
	errAt := func(m Method, h float64) float64 {
		res, err := s.Transient(Options{TStop: 5 * tau, Step: h, Method: m, IC: map[string]float64{"out": 0}})
		if err != nil {
			t.Fatal(err)
		}
		w, _ := res.Waveform("out")
		return math.Abs(w.Eval(5*tau) - analytic(5*tau))
	}
	trapRatio := errAt(Trapezoidal, tau/10) / errAt(Trapezoidal, tau/20)
	beRatio := errAt(BackwardEuler, tau/10) / errAt(BackwardEuler, tau/20)
	if trapRatio < 3.2 {
		t.Errorf("trapezoidal error ratio %g, want ≈4 (second order)", trapRatio)
	}
	if beRatio < 1.6 || beRatio > 3 {
		t.Errorf("backward-Euler error ratio %g, want ≈2 (first order)", beRatio)
	}
}

func TestDCOpVoltageDivider(t *testing.T) {
	n := &circuit.Netlist{}
	n.AddVSource("v1", "a", "0", wave.DC(2))
	n.AddResistor("r1", "a", "mid", 1e3)
	n.AddResistor("r2", "mid", "0", 3e3)
	s, err := New(n, tech, false)
	if err != nil {
		t.Fatal(err)
	}
	op, err := s.DCOp(0)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(op["mid"], 1.5, 1e-6) {
		t.Errorf("divider mid = %g, want 1.5", op["mid"])
	}
}

// inverterNet builds a CMOS inverter driving a load cap.
func inverterNet(in wave.Waveform, cl float64) *circuit.Netlist {
	n := &circuit.Netlist{}
	n.AddVSource("vdd", "vdd", "0", wave.DC(tech.VDD))
	n.AddVSource("vin", "in", "0", in)
	n.AddTransistor(&circuit.Transistor{Name: "mn", Kind: circuit.KindNMOS, Drain: "out", Gate: "in", Source: "0", Body: "0", W: 1e-6, L: 0.35e-6})
	n.AddTransistor(&circuit.Transistor{Name: "mp", Kind: circuit.KindPMOS, Drain: "out", Gate: "in", Source: "vdd", Body: "vdd", W: 2e-6, L: 0.35e-6})
	if cl > 0 {
		n.AddCapacitor("cl", "out", "0", cl)
	}
	return n
}

func TestInverterDCTransferEndpoints(t *testing.T) {
	s, err := New(inverterNet(wave.DC(0), 0), tech, false)
	if err != nil {
		t.Fatal(err)
	}
	op, err := s.DCOp(0)
	if err != nil {
		t.Fatal(err)
	}
	if op["out"] < tech.VDD-0.01 {
		t.Errorf("input low: out = %g, want ≈ %g", op["out"], tech.VDD)
	}
	s2, _ := New(inverterNet(wave.DC(tech.VDD), 0), tech, false)
	op2, err := s2.DCOp(0)
	if err != nil {
		t.Fatal(err)
	}
	if op2["out"] > 0.01 {
		t.Errorf("input high: out = %g, want ≈ 0", op2["out"])
	}
}

func TestInverterDCOpMidpointMonotone(t *testing.T) {
	// Sweep the DC transfer curve: output must fall monotonically.
	prev := math.Inf(1)
	for vin := 0.0; vin <= 3.3001; vin += 0.3 {
		s, _ := New(inverterNet(wave.DC(vin), 0), tech, false)
		op, err := s.DCOp(0)
		if err != nil {
			t.Fatalf("vin=%g: %v", vin, err)
		}
		if op["out"] > prev+1e-6 {
			t.Fatalf("transfer curve not monotone at vin=%g: %g > %g", vin, op["out"], prev)
		}
		prev = op["out"]
	}
}

func TestInverterTransientFallingEdge(t *testing.T) {
	in := wave.Step{At: 50e-12, Low: 0, High: tech.VDD}
	s, err := New(inverterNet(in, 20e-15), tech, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Transient(Options{TStop: 2e-9, Step: 1e-12, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Waveform("out")
	if v0 := w.Eval(0); !feq(v0, tech.VDD, 0.02) {
		t.Errorf("initial out = %g, want ≈ VDD", v0)
	}
	if vEnd := w.Eval(2e-9); vEnd > 0.05 {
		t.Errorf("final out = %g, want ≈ 0", vEnd)
	}
	d, err := wave.Delay50(w, 50e-12, tech.VDD, false)
	if err != nil {
		t.Fatal(err)
	}
	// A minimum inverter with 20 fF load: delay in the tens-to-hundreds of ps.
	if d < 5e-12 || d > 1e-9 {
		t.Errorf("inverter delay %g s implausible", d)
	}
	if res.Stats.NonConverged > 0 {
		t.Errorf("%d non-converged time points", res.Stats.NonConverged)
	}
}

func TestInverterDelayGrowsWithLoad(t *testing.T) {
	delay := func(cl float64) float64 {
		in := wave.Step{At: 10e-12, Low: 0, High: tech.VDD}
		s, _ := New(inverterNet(in, cl), tech, false)
		res, err := s.Transient(Options{TStop: 4e-9, Step: 2e-12, Method: Trapezoidal})
		if err != nil {
			t.Fatal(err)
		}
		w, _ := res.Waveform("out")
		d, err := wave.Delay50(w, 10e-12, tech.VDD, false)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1, d2 := delay(10e-15), delay(40e-15)
	if d2 <= d1*1.5 {
		t.Errorf("delay should grow ≈linearly with load: %g -> %g", d1, d2)
	}
}

func TestTransientICMode(t *testing.T) {
	// Discharge a floating cap through a resistor from a forced IC.
	n := &circuit.Netlist{}
	n.AddResistor("r1", "x", "0", 1e3)
	n.AddCapacitor("c1", "x", "0", 1e-12)
	s, err := New(n, tech, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Transient(Options{TStop: 3e-9, Step: 1e-12, IC: map[string]float64{"x": 2}})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Waveform("x")
	tau := 1e-9
	if got, want := w.Eval(tau), 2*math.Exp(-1); !feq(got, want, 5e-3) {
		t.Errorf("v(tau) = %g, want %g", got, want)
	}
}

func TestTransientValidation(t *testing.T) {
	s, _ := New(rcNet(1e3, 1e-12, wave.DC(1)), tech, false)
	if _, err := s.Transient(Options{TStop: 0, Step: 1e-12}); err == nil {
		t.Error("TStop=0 accepted")
	}
	if _, err := s.Transient(Options{TStop: 1e-9, Step: 0}); err == nil {
		t.Error("Step=0 accepted")
	}
	if _, err := (&Result{V: map[string][]float64{}}).Waveform("nope"); err == nil {
		t.Error("missing node accepted")
	}
}

func TestRecordNodesSubset(t *testing.T) {
	n := rcNet(1e3, 1e-12, wave.Step{At: 0, Low: 0, High: 1})
	s, _ := New(n, tech, false)
	res, err := s.Transient(Options{TStop: 1e-10, Step: 1e-12, RecordNodes: []string{"out"}, IC: map[string]float64{"out": 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.V["out"]; !ok {
		t.Error("out not recorded")
	}
	if _, ok := res.V["in"]; ok {
		t.Error("in recorded despite subset")
	}
}

func TestNewRejectsInvalidNetlist(t *testing.T) {
	n := &circuit.Netlist{}
	n.AddResistor("r", "a", "b", -1)
	if _, err := New(n, tech, false); err == nil {
		t.Error("invalid netlist accepted")
	}
}

func TestAdaptiveTransientMatchesFixed(t *testing.T) {
	in := wave.Step{At: 20e-12, Low: 0, High: tech.VDD}
	s, err := New(inverterNet(in, 20e-15), tech, false)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := s.Transient(Options{TStop: 2e-9, Step: 1e-12, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := New(inverterNet(in, 20e-15), tech, false)
	adaptive, err := s2.TransientAdaptive(AdaptiveOptions{TStop: 2e-9, LTETol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	wf, _ := fixed.Waveform("out")
	wa, _ := adaptive.Waveform("out")
	df, err := wave.Delay50(wf, 20e-12, tech.VDD, false)
	if err != nil {
		t.Fatal(err)
	}
	da, err := wave.Delay50(wa, 20e-12, tech.VDD, false)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(da-df) / df; e > 0.02 {
		t.Errorf("adaptive delay %g vs fixed %g (%.2f%%)", da, df, 100*e)
	}
	if adaptive.Stats.Steps >= fixed.Stats.Steps/3 {
		t.Errorf("adaptive used %d steps, fixed used %d — expected ≥3× fewer",
			adaptive.Stats.Steps, fixed.Stats.Steps)
	}
}

func TestAdaptiveRCAnalytic(t *testing.T) {
	const (
		R   = 1e3
		C   = 1e-12
		tau = R * C
	)
	n := rcNet(R, C, wave.Step{At: 0, Low: 0, High: 1})
	s, _ := New(n, tech, false)
	res, err := s.TransientAdaptive(AdaptiveOptions{
		TStop: 5 * tau, LTETol: 2e-4, IC: map[string]float64{"out": 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Waveform("out")
	for _, tt := range []float64{0.5 * tau, tau, 2 * tau, 4 * tau} {
		want := 1 - math.Exp(-tt/tau)
		if got := w.Eval(tt); !feq(got, want, 8e-3) {
			t.Errorf("v(%g·tau) = %g, want %g", tt/tau, got, want)
		}
	}
	if _, err := s.TransientAdaptive(AdaptiveOptions{TStop: 0}); err == nil {
		t.Error("TStop=0 accepted")
	}
}

// Physics check on the full simulator: charging the output of an inverter
// draws ≈ C_total·VDD² from the supply (half dissipated in the PMOS, half
// stored), and the stored half is C_total·VDD²/2.
func TestSupplyEnergyOfRisingTransition(t *testing.T) {
	const cl = 30e-15
	in := wave.Step{At: 10e-12, Low: tech.VDD, High: 0} // input falls -> output rises
	n := inverterNet(in, cl)
	s, err := New(n, tech, true) // no parasitics: C_total is exactly cl
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Transient(Options{
		TStop: 3e-9, Step: 1e-12, Method: Trapezoidal,
		IC: map[string]float64{"out": 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := res.SupplyEnergy("vdd", tech.VDD)
	if err != nil {
		t.Fatal(err)
	}
	want := cl * tech.VDD * tech.VDD
	if math.Abs(e-want) > 0.08*want {
		t.Errorf("supply energy %g J, want ≈ C·VDD² = %g J", e, want)
	}
	// The output indeed rose to VDD.
	w, _ := res.Waveform("out")
	if w.Eval(3e-9) < 0.95*tech.VDD {
		t.Fatalf("output did not charge: %g", w.Eval(3e-9))
	}
	if _, err := res.SourceCurrent("vdd"); err != nil {
		t.Fatal(err)
	}
	if _, err := res.SupplyEnergy("nope", 1); err == nil {
		t.Error("unknown source accepted")
	}
}

// A falling output transition draws (almost) nothing from the supply — the
// load discharges to ground.
func TestSupplyEnergyOfFallingTransition(t *testing.T) {
	const cl = 30e-15
	in := wave.Step{At: 10e-12, Low: 0, High: tech.VDD}
	s, err := New(inverterNet(in, cl), tech, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Transient(Options{TStop: 3e-9, Step: 1e-12, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	e, err := res.SupplyEnergy("vdd", tech.VDD)
	if err != nil {
		t.Fatal(err)
	}
	if ref := cl * tech.VDD * tech.VDD; math.Abs(e) > 0.1*ref {
		t.Errorf("falling transition drew %g J from the supply (C·VDD² = %g)", e, ref)
	}
}
