// Package spice is the baseline transient simulator this reproduction
// measures QWM against — the stand-in for Hspice. It assembles a
// modified-nodal-analysis system over the golden mos device model and
// integrates it with fixed-step trapezoidal or backward-Euler companion
// models, running damped Newton–Raphson at every time point (the expensive
// inner loop the paper's method eliminates).
package spice

import (
	"fmt"
	"math"

	"qwm/internal/circuit"
	"qwm/internal/la"
	"qwm/internal/mos"
	"qwm/internal/wave"
)

// Method selects the integration rule.
type Method int

const (
	// Trapezoidal is second-order accurate; Hspice's default class of rule.
	Trapezoidal Method = iota
	// BackwardEuler is first-order, heavily damped.
	BackwardEuler
)

// Options configures a transient analysis.
type Options struct {
	TStop  float64
	Step   float64
	Method Method
	// MaxNR bounds Newton iterations per time point (default 60).
	MaxNR int
	// Gmin is the convergence-aid conductance from every node to ground
	// (default 1e-12 S).
	Gmin float64
	// IC, when non-nil, supplies initial node voltages ("use initial
	// conditions" mode). Nodes driven by sources take the source value at
	// t = 0; remaining unspecified nodes start at 0. When nil, a DC
	// operating point at t = 0 provides the start state.
	IC map[string]float64
	// RecordNodes limits which node waveforms are stored (nil = all).
	RecordNodes []string
}

// Stats reports the work a transient analysis performed.
type Stats struct {
	Steps        int
	NRIterations int
	NonConverged int // time points where NR hit its iteration budget
}

// Result holds the sampled node waveforms of a transient analysis.
type Result struct {
	T []float64
	V map[string][]float64
	// ISrc holds the branch current of every voltage source (positive
	// current flows from the source's positive terminal into the circuit).
	ISrc  map[string][]float64
	Stats Stats
}

// SourceCurrent returns the PWL branch-current waveform of a source.
func (r *Result) SourceCurrent(name string) (*wave.PWL, error) {
	i, ok := r.ISrc[name]
	if !ok {
		return nil, fmt.Errorf("spice: source %q not recorded", name)
	}
	return wave.NewPWL(r.T, i)
}

// SupplyEnergy integrates v·i over the run for a DC supply of voltage vdd:
// the energy the source delivered (joules). Trapezoidal quadrature over the
// recorded samples.
func (r *Result) SupplyEnergy(name string, vdd float64) (float64, error) {
	i, ok := r.ISrc[name]
	if !ok {
		return 0, fmt.Errorf("spice: source %q not recorded", name)
	}
	e := 0.0
	for k := 1; k < len(r.T); k++ {
		dt := r.T[k] - r.T[k-1]
		// The stamp convention has branch current flowing from the circuit
		// into the source's positive terminal; negate for delivered power.
		e += -vdd * 0.5 * (i[k] + i[k-1]) * dt
	}
	return e, nil
}

// Waveform returns the PWL waveform of a node (which must have been
// recorded).
func (r *Result) Waveform(node string) (*wave.PWL, error) {
	node = circuit.CanonName(node)
	v, ok := r.V[node]
	if !ok {
		return nil, fmt.Errorf("spice: node %q not recorded", node)
	}
	return wave.NewPWL(r.T, v)
}

// Simulator is a compiled netlist ready for analysis.
type Simulator struct {
	tech      *mos.Tech
	nodeNames []string
	idx       map[string]int
	srcIdx    map[string]int // source name -> branch-current unknown index
	n         int            // total unknowns: nodes + source branches
	elems     []element
	vdd       float64
}

// New compiles a netlist against a technology. Unless disableParasitics,
// every transistor contributes its junction charges (drain/source to body),
// gate overlap capacitances, and a split intrinsic channel capacitance —
// the voltage-dependent parasitics of the paper's Definition 2.
func New(n *circuit.Netlist, tech *mos.Tech, disableParasitics bool) (*Simulator, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{tech: tech, idx: map[string]int{circuit.GroundNode: -1}, vdd: tech.VDD}
	for _, name := range n.Nodes() {
		if name == circuit.GroundNode {
			continue
		}
		s.idx[name] = len(s.nodeNames)
		s.nodeNames = append(s.nodeNames, name)
	}
	nv := len(s.nodeNames)
	br := nv
	s.srcIdx = map[string]int{}
	for _, v := range n.VSources {
		s.elems = append(s.elems, &vsrcElem{a: s.idx[v.A], b: s.idx[v.B], br: br, wave: v.Wave})
		s.srcIdx[v.Name] = br
		br++
	}
	s.n = br

	for _, r := range n.Resistors {
		s.elems = append(s.elems, &resistorElem{a: s.idx[r.A], b: s.idx[r.B], g: 1 / r.R})
	}
	for _, c := range n.Capacitors {
		s.elems = append(s.elems, &chargeElem{a: s.idx[c.A], b: s.idx[c.B], qfn: linearQ(c.C)})
	}
	for _, t := range n.Transistors {
		p := &tech.N
		if t.Kind == circuit.KindPMOS {
			p = &tech.P
		}
		d, g, src, b := s.idx[t.Drain], s.idx[t.Gate], s.idx[t.Source], s.idx[t.Body]
		s.elems = append(s.elems, &mosElem{d: d, g: g, s: src, b: b, p: p, w: t.W, l: t.L})
		if disableParasitics {
			continue
		}
		dj := t.DrainJunc
		if dj == (mos.Junction{}) {
			dj = p.DefaultJunction(t.W)
		}
		sj := t.SourceJunc
		if sj == (mos.Junction{}) {
			sj = p.DefaultJunction(t.W)
		}
		s.elems = append(s.elems,
			&chargeElem{a: d, b: b, qfn: junctionQ(p, dj)},
			&chargeElem{a: src, b: b, qfn: junctionQ(p, sj)},
			&chargeElem{a: g, b: d, qfn: linearQ(p.OverlapCap(t.W))},
			&chargeElem{a: g, b: src, qfn: linearQ(p.CGSO * t.W)},
		)
		cs, cd := p.ChannelCapSplit(t.W, t.L)
		s.elems = append(s.elems,
			&chargeElem{a: g, b: src, qfn: linearQ(cs)},
			&chargeElem{a: g, b: d, qfn: linearQ(cd)},
		)
	}
	return s, nil
}

// Nodes returns the simulator's non-ground node names.
func (s *Simulator) Nodes() []string { return append([]string(nil), s.nodeNames...) }

// assemble zeroes and fills the residual and Jacobian at iterate x.
func (s *Simulator) assemble(c *ctx, gmin float64) {
	for i := range c.f {
		c.f[i] = 0
	}
	c.jac.Zero()
	for _, e := range s.elems {
		e.stamp(c)
	}
	for i := 0; i < len(s.nodeNames); i++ {
		c.f[i] += gmin * c.x[i]
		c.jac.Add(i, i, gmin)
	}
}

// solvePoint runs damped Newton at one evaluation context, starting from the
// values already in c.x. It returns the iteration count and whether the
// point converged.
func (s *Simulator) solvePoint(c *ctx, gmin float64, maxNR int) (int, bool) {
	prob := la.NewtonProblem{
		N: s.n,
		Eval: func(x, f []float64, jac *la.Matrix) {
			cc := *c
			cc.x, cc.f, cc.jac = x, f, jac
			s.assemble(&cc, gmin)
		},
		FTol:    1e-9,
		XTol:    1e-12,
		MaxIter: maxNR,
		Damping: true,
		Clamp: func(x []float64) {
			lo, hi := -2.0, s.vdd+2.0
			for i := 0; i < len(s.nodeNames); i++ {
				if x[i] < lo {
					x[i] = lo
				}
				if x[i] > hi {
					x[i] = hi
				}
			}
		},
	}
	res, err := la.SolveNewton(prob, c.x)
	if err != nil {
		return res.Iterations, false
	}
	copy(c.x, res.X)
	return res.Iterations, res.Converged
}

// DCOp computes the DC operating point with sources evaluated at time t.
func (s *Simulator) DCOp(t float64) (map[string]float64, error) {
	c := &ctx{
		x:   make([]float64, s.n),
		f:   make([]float64, s.n),
		jac: la.NewMatrix(s.n, s.n),
		t:   t,
		dc:  true,
	}
	s.seedFromSources(c.x, t)
	// Gmin stepping: start with a heavy convergence aid and relax it.
	for _, gmin := range []float64{1e-3, 1e-6, 1e-9, 1e-12} {
		if _, ok := s.solvePoint(c, gmin, 80); !ok && gmin == 1e-12 {
			return nil, fmt.Errorf("spice: DC operating point did not converge")
		}
	}
	out := map[string]float64{circuit.GroundNode: 0}
	for i, name := range s.nodeNames {
		out[name] = c.x[i]
	}
	return out, nil
}

// seedFromSources sets source-driven node voltages (relative to ground) as
// the initial Newton guess.
func (s *Simulator) seedFromSources(x []float64, t float64) {
	for _, e := range s.elems {
		if v, ok := e.(*vsrcElem); ok && v.b == -1 && v.a >= 0 {
			x[v.a] = v.value(t)
		}
	}
}

// Transient runs a fixed-step transient analysis.
func (s *Simulator) Transient(o Options) (*Result, error) {
	if o.Step <= 0 || o.TStop <= 0 {
		return nil, fmt.Errorf("spice: Step and TStop must be positive")
	}
	maxNR := o.MaxNR
	if maxNR == 0 {
		maxNR = 60
	}
	gmin := o.Gmin
	if gmin == 0 {
		gmin = 1e-12
	}
	c := &ctx{
		x:    make([]float64, s.n),
		f:    make([]float64, s.n),
		jac:  la.NewMatrix(s.n, s.n),
		trap: o.Method == Trapezoidal,
	}

	// Initial state.
	if o.IC != nil {
		s.seedFromSources(c.x, 0)
		for name, v := range o.IC {
			if i, ok := s.idx[circuit.CanonName(name)]; ok && i >= 0 {
				c.x[i] = v
			}
		}
	} else {
		op, err := s.DCOp(0)
		if err != nil {
			return nil, err
		}
		for i, name := range s.nodeNames {
			c.x[i] = op[name]
		}
	}
	c.t, c.h, c.dc = 0, o.Step, false
	for _, e := range s.elems {
		if st, ok := e.(stateful); ok {
			st.initState(c)
		}
	}

	record := map[string]bool{}
	if o.RecordNodes == nil {
		for _, n := range s.nodeNames {
			record[n] = true
		}
	} else {
		for _, n := range o.RecordNodes {
			record[circuit.CanonName(n)] = true
		}
	}
	res := &Result{V: map[string][]float64{}, ISrc: map[string][]float64{}}
	push := func(t float64) {
		res.T = append(res.T, t)
		for i, name := range s.nodeNames {
			if record[name] {
				res.V[name] = append(res.V[name], c.x[i])
			}
		}
		for name, br := range s.srcIdx {
			res.ISrc[name] = append(res.ISrc[name], c.x[br])
		}
	}
	push(0)

	// The grid is uniform; TStop is rounded to the nearest whole step so the
	// companion models always see a constant h.
	steps := int(math.Round(o.TStop / o.Step))
	if steps < 1 {
		steps = 1
	}
	for k := 1; k <= steps; k++ {
		c.t = float64(k) * o.Step
		iters, ok := s.solvePoint(c, gmin, maxNR)
		res.Stats.NRIterations += iters
		if !ok {
			res.Stats.NonConverged++
		}
		for _, e := range s.elems {
			if st, okSt := e.(stateful); okSt {
				st.accept(c)
			}
		}
		res.Stats.Steps++
		push(c.t)
	}
	return res, nil
}
