package spice

import (
	"fmt"
	"math"
	"qwm/internal/circuit"
	"qwm/internal/la"
)

// AdaptiveOptions configures local-truncation-error-controlled transient
// analysis. The controller compares each accepted trapezoidal solution
// against a linear predictor from the two previous time points; the
// difference estimates the local truncation error.
type AdaptiveOptions struct {
	TStop float64
	// HInit is the starting step (default 1 ps), bounded by [HMin, HMax]
	// (defaults 10 fs and TStop/50).
	HInit, HMin, HMax float64
	// LTETol is the accepted per-step voltage error (default 1 mV).
	LTETol float64
	// MaxNR and Gmin as in Options.
	MaxNR int
	Gmin  float64
	IC    map[string]float64
	// RecordNodes limits which node waveforms are stored (nil = all).
	RecordNodes []string
}

// TransientAdaptive integrates with trapezoidal companion models and an
// LTE-based variable step — the "industrial" counterpart of the fixed-step
// runs the paper compares against. It typically needs far fewer steps for
// the same delay accuracy.
func (s *Simulator) TransientAdaptive(o AdaptiveOptions) (*Result, error) {
	if o.TStop <= 0 {
		return nil, fmt.Errorf("spice: TStop must be positive")
	}
	h := o.HInit
	if h == 0 {
		h = 1e-12
	}
	hMin := o.HMin
	if hMin == 0 {
		hMin = 1e-14
	}
	hMax := o.HMax
	if hMax == 0 {
		hMax = o.TStop / 50
	}
	tol := o.LTETol
	if tol == 0 {
		tol = 1e-3
	}
	maxNR := o.MaxNR
	if maxNR == 0 {
		maxNR = 60
	}
	gmin := o.Gmin
	if gmin == 0 {
		gmin = 1e-12
	}

	c := &ctx{
		x:    make([]float64, s.n),
		f:    make([]float64, s.n),
		jac:  la.NewMatrix(s.n, s.n),
		trap: true,
	}
	if o.IC != nil {
		s.seedFromSources(c.x, 0)
		for name, v := range o.IC {
			if i, ok := s.idx[canon(name)]; ok && i >= 0 {
				c.x[i] = v
			}
		}
	} else {
		op, err := s.DCOp(0)
		if err != nil {
			return nil, err
		}
		for i, name := range s.nodeNames {
			c.x[i] = op[name]
		}
	}
	c.t, c.h, c.dc = 0, h, false
	for _, e := range s.elems {
		if st, ok := e.(stateful); ok {
			st.initState(c)
		}
	}

	record := map[string]bool{}
	if o.RecordNodes == nil {
		for _, nd := range s.nodeNames {
			record[nd] = true
		}
	} else {
		for _, nd := range o.RecordNodes {
			record[canon(nd)] = true
		}
	}
	res := &Result{V: map[string][]float64{}}
	push := func(t float64) {
		res.T = append(res.T, t)
		for i, name := range s.nodeNames {
			if record[name] {
				res.V[name] = append(res.V[name], c.x[i])
			}
		}
	}
	push(0)

	// History for the linear predictor.
	xPrev := append([]float64(nil), c.x...)
	xPrev2 := append([]float64(nil), c.x...)
	tPrev, tPrev2 := 0.0, 0.0
	haveTwo := false

	tNow := 0.0
	saved := append([]float64(nil), c.x...)
	for tNow < o.TStop-1e-21 {
		if tNow+h > o.TStop {
			h = o.TStop - tNow
		}
		copy(saved, c.x)
		c.t = tNow + h
		c.h = h
		iters, ok := s.solvePoint(c, gmin, maxNR)
		res.Stats.NRIterations += iters
		if !ok {
			// Newton failure: halve the step and retry.
			copy(c.x, saved)
			if h <= hMin*1.0001 {
				res.Stats.NonConverged++
				// Accept whatever we have at the minimum step to keep moving.
				c.t = tNow + h
				s.solvePoint(c, gmin, maxNR)
			} else {
				h = math.Max(h/2, hMin)
				continue
			}
		}
		// LTE estimate against the linear predictor. The predictor error
		// over-estimates the trapezoidal truncation error; the 1/4 factor
		// keeps the controller from being overly timid.
		lte := 0.0
		if haveTwo {
			dtp := tPrev - tPrev2
			for i := 0; i < len(s.nodeNames); i++ {
				pred := xPrev[i]
				if dtp > 0 {
					pred += (xPrev[i] - xPrev2[i]) / dtp * h
				}
				if d := math.Abs(c.x[i] - pred); d > lte {
					lte = d
				}
			}
			lte *= 0.25
			if lte > tol && h > hMin*1.0001 {
				copy(c.x, saved)
				h = math.Max(h/2, hMin)
				continue
			}
		}
		// Accept the step.
		for _, e := range s.elems {
			if st, okSt := e.(stateful); okSt {
				st.accept(c)
			}
		}
		res.Stats.Steps++
		tPrev2, tPrev = tPrev, c.t
		copy(xPrev2, xPrev)
		copy(xPrev, c.x)
		haveTwo = true
		tNow = c.t
		push(tNow)
		// Grow only when comfortably inside tolerance.
		if lte < tol/4 {
			h = math.Min(h*1.4, hMax)
		}
	}
	return res, nil
}

func canon(name string) string { return circuit.CanonName(name) }
