package sizing

import (
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/sta"
	"qwm/internal/stages"
)

// newDecoderEval builds an STAEvaluator over the decoder's row-0 driver pair.
func newDecoderEval(t *testing.T, full bool) (*STAEvaluator, []float64) {
	t.Helper()
	tech := mos.CMOSP35()
	nl, ins, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	primary := map[string]sta.Arrival{}
	for _, in := range ins {
		primary[in] = sta.Arrival{}
	}
	// Objective: the row-0 arrival. The decoder's rows are symmetric, so the
	// all-rows worst arrival is insensitive to a single row's widths.
	outs = outs[:1]
	var devs []*circuit.Transistor
	for _, name := range []string{"mnd0", "mpd0"} {
		found := false
		for _, tr := range nl.Transistors {
			if tr.Name == name {
				devs, found = append(devs, tr), true
				break
			}
		}
		if !found {
			t.Fatalf("device %q not found", name)
		}
	}
	a := sta.New(tech, devmodel.NewLibrary(tech))
	a.Workers = 1
	init := make([]float64, len(devs))
	for i, d := range devs {
		init[i] = d.W
	}
	return &STAEvaluator{
		Analyzer: a, Netlist: nl, Primary: primary, Outputs: outs,
		Devices: devs, FullReanalysis: full,
	}, init
}

// TestSTAEvaluatorIncrementalMatchesFull: the optimizer must converge to the
// same widths and delay whether the inner loop re-analyzes from scratch or
// incrementally, and the incremental loop must skip most of the netlist.
func TestSTAEvaluatorIncrementalMatchesFull(t *testing.T) {
	run := func(full bool) (*Result, *STAEvaluator) {
		ev, init := newDecoderEval(t, full)
		res, err := Minimize(Problem{
			Eval: ev.Eval, Init: init,
			WMin: 0.6e-6, WMax: 4e-6, Sweeps: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, ev
	}
	fullRes, fullEv := run(true)
	incRes, incEv := run(false)

	if fullRes.Delay != incRes.Delay || fullRes.InitDelay != incRes.InitDelay {
		t.Fatalf("incremental objective diverged: %.17g vs %.17g (init %.17g vs %.17g)",
			incRes.Delay, fullRes.Delay, incRes.InitDelay, fullRes.InitDelay)
	}
	for i := range fullRes.Widths {
		if fullRes.Widths[i] != incRes.Widths[i] {
			t.Fatalf("width %d diverged: %g vs %g", i, incRes.Widths[i], fullRes.Widths[i])
		}
	}
	if fullEv.Analyses != incEv.Analyses {
		t.Fatalf("evaluation counts diverged: %d vs %d", incEv.Analyses, fullEv.Analyses)
	}
	// The full loop re-walks every stage every time; the incremental loop
	// must replay far more stages than it re-evaluates (after the all-dirty
	// first analysis, a two-device edit touches a handful of stages).
	if incEv.Skipped <= incEv.Dirty {
		t.Fatalf("incremental loop skipped %d stages but dirtied %d", incEv.Skipped, incEv.Dirty)
	}
	if incRes.Delay >= incRes.InitDelay {
		t.Fatalf("optimizer made no progress: %g -> %g", incRes.InitDelay, incRes.Delay)
	}
}

// TestSTAEvaluatorWidthMismatch pins the arity check.
func TestSTAEvaluatorWidthMismatch(t *testing.T) {
	ev, _ := newDecoderEval(t, false)
	if _, err := ev.Eval([]float64{1e-6}); err == nil {
		t.Fatal("want error for width/device arity mismatch")
	}
}
