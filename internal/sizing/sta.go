package sizing

import (
	"fmt"

	"qwm/internal/circuit"
	"qwm/internal/sta"
)

// STAEvaluator adapts a full netlist-level STA run as the sizing objective:
// each Eval writes the candidate widths into its devices in place and runs
// one incremental (ECO) analysis on a persistent Analyzer, so the optimizer's
// inner loop pays only the edited devices' dirty cones instead of the whole
// netlist. This is the flow the incremental engine exists for — a sizing
// sweep re-analyzes the same netlist hundreds of times with one- or
// two-device edits between runs.
type STAEvaluator struct {
	// Analyzer is the persistent engine; its ECO memo and delay cache carry
	// across Eval calls. Required.
	Analyzer *sta.Analyzer
	// Netlist is mutated in place by Eval (device widths only). Required.
	Netlist *circuit.Netlist
	// Primary/Outputs define the analysis request. Required.
	Primary map[string]sta.Arrival
	Outputs []string
	// Devices are the transistors the width vector maps onto, positionally.
	// Required, and Eval's widths slice must have the same length.
	Devices []*circuit.Transistor
	// Epsilon is the ECO early-stop tolerance (0 = exact bit equality; see
	// sta.Request.Epsilon). A loose epsilon trades bit-exact objective
	// values for smaller dirty cones.
	Epsilon float64
	// FullReanalysis bypasses the ECO scheduler, re-analyzing from scratch
	// on every Eval. The zero value — incremental — is the point of this
	// adapter; the flag exists so the same loop can be timed both ways.
	FullReanalysis bool

	// Cumulative accounting across Eval calls, for reporting the loop's
	// incremental payoff.
	Analyses   int
	Dirty      int
	Skipped    int
	EarlyStops int
}

// Eval implements Evaluate: it installs widths onto the devices and returns
// the worst arrival of the outputs.
func (e *STAEvaluator) Eval(widths []float64) (float64, error) {
	if len(widths) != len(e.Devices) {
		return 0, fmt.Errorf("sizing: %d widths for %d devices", len(widths), len(e.Devices))
	}
	for i, d := range e.Devices {
		d.W = widths[i]
	}
	res, err := e.Analyzer.AnalyzeContext(nil, sta.Request{
		Netlist: e.Netlist, Primary: e.Primary, Outputs: e.Outputs,
		Incremental: !e.FullReanalysis, Epsilon: e.Epsilon,
	})
	if err != nil {
		return 0, err
	}
	e.Analyses++
	e.Dirty += res.ECO.DirtyStages
	e.Skipped += res.ECO.SkippedStages
	e.EarlyStops += res.ECO.EarlyStops
	return res.WorstArrival, nil
}
