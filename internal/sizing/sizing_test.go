package sizing

import (
	"math"
	"testing"

	"qwm/internal/bench"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/stages"
)

func stackEvaluator(t testing.TB, h *bench.Harness, cl float64) Evaluate {
	return func(widths []float64) (float64, error) {
		w, err := stages.Stack(h.Tech, widths, cl, 0)
		if err != nil {
			return 0, err
		}
		run, err := h.RunQWM(w, qwm.Options{})
		if err != nil {
			return 0, err
		}
		return run.Delay, nil
	}
}

func TestMinimizeQuadraticToy(t *testing.T) {
	// Analytic sanity: delay ∝ Σ 1/wᵢ with Σwᵢ fixed is minimized by equal
	// widths.
	eval := func(w []float64) (float64, error) {
		s := 0.0
		for _, wi := range w {
			s += 1 / wi
		}
		return s, nil
	}
	res, err := Minimize(Problem{
		Eval: eval,
		Init: []float64{1e-6, 3e-6, 2e-6},
		WMin: 0.4e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay >= res.InitDelay {
		t.Fatalf("no improvement: %g -> %g", res.InitDelay, res.Delay)
	}
	mean := 2e-6
	for i, w := range res.Widths {
		if math.Abs(w-mean) > 0.1e-6 {
			t.Errorf("w[%d] = %g, want ≈ %g", i, w, mean)
		}
	}
	// Budget conserved exactly.
	sum := 0.0
	for _, w := range res.Widths {
		sum += w
	}
	if math.Abs(sum-6e-6) > 1e-12 {
		t.Errorf("budget violated: %g", sum)
	}
}

func TestMinimizeStackDelayWithQWM(t *testing.T) {
	tech := mos.CMOSP35()
	h, err := bench.NewHarness(tech)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform 6×1.5 µm stack under a 9 µm budget; self-loading dominates, so
	// the width distribution matters.
	init := []float64{1.5e-6, 1.5e-6, 1.5e-6, 1.5e-6, 1.5e-6, 1.5e-6}
	res, err := Minimize(Problem{
		Eval: stackEvaluator(t, h, 8e-15),
		Init: init,
		WMin: 0.6e-6,
		WMax: 4e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay >= res.InitDelay*0.98 {
		t.Errorf("optimizer should beat uniform sizing by >2%%: %g -> %g (%d evals)",
			res.InitDelay, res.Delay, res.Evaluations)
	}
	// The classic result: the rail-side device, which carries every node's
	// discharge current, ends up at least as wide as the output-side device.
	if res.Widths[0] < res.Widths[len(res.Widths)-1] {
		t.Errorf("expected taper toward the output: %v", res.Widths)
	}
	if res.Evaluations < 50 {
		t.Errorf("suspiciously few evaluations: %d", res.Evaluations)
	}
	t.Logf("uniform %.2fps -> optimized %.2fps in %d QWM evaluations (widths %v)",
		res.InitDelay*1e12, res.Delay*1e12, res.Evaluations, res.Widths)
}

func TestMinimizeValidation(t *testing.T) {
	if _, err := Minimize(Problem{Eval: nil, Init: []float64{1e-6, 1e-6}}); err == nil {
		t.Error("missing evaluator accepted")
	}
	if _, err := Minimize(Problem{Eval: func([]float64) (float64, error) { return 0, nil }, Init: []float64{1e-6}}); err == nil {
		t.Error("single width accepted")
	}
	if _, err := Minimize(Problem{
		Eval: func([]float64) (float64, error) { return 0, nil },
		Init: []float64{1e-9, 1e-6},
	}); err == nil {
		t.Error("sub-minimum initial width accepted")
	}
}
