// Package sizing is a design-loop application of the fast QWM evaluator —
// the use the paper motivates ("the simulation speed and accuracy of each
// logic stage... is essential for high-performance design"): optimizing the
// transistor widths of a charge/discharge path under an area budget takes
// hundreds to thousands of delay evaluations, which QWM makes interactive.
//
// The optimizer solves
//
//	minimize   delay(w₁…w_K)
//	subject to Σ wᵢ = budget,  wMin ≤ wᵢ ≤ wMax
//
// by pairwise width transfers with golden-section line searches — every
// move preserves the simplex constraint exactly, so no penalty tuning is
// needed.
package sizing

import (
	"fmt"
	"math"
)

// Evaluate returns the delay of a candidate width vector. Implementations
// wrap the QWM harness (see bench.Harness) or any other engine.
type Evaluate func(widths []float64) (float64, error)

// Problem describes an area-constrained sizing run.
type Problem struct {
	Eval Evaluate
	// Init is the starting width vector; its sum defines the area budget.
	Init []float64
	// WMin/WMax bound each width (defaults: 0.4 µm and the full budget).
	WMin, WMax float64
	// Sweeps bounds the coordinate-pair passes (default 6).
	Sweeps int
	// Tol stops early when a full sweep improves delay by less than this
	// relative amount (default 1e-3).
	Tol float64
}

// Result reports the optimization outcome.
type Result struct {
	Widths      []float64
	Delay       float64
	InitDelay   float64
	Evaluations int
}

// Minimize runs the optimizer.
func Minimize(p Problem) (*Result, error) {
	k := len(p.Init)
	if k < 2 {
		return nil, fmt.Errorf("sizing: need at least two widths")
	}
	if p.Eval == nil {
		return nil, fmt.Errorf("sizing: missing evaluator")
	}
	wMin := p.WMin
	if wMin == 0 {
		wMin = 0.4e-6
	}
	budget := 0.0
	for _, w := range p.Init {
		if w < wMin {
			return nil, fmt.Errorf("sizing: initial width %g below minimum %g", w, wMin)
		}
		budget += w
	}
	wMax := p.WMax
	if wMax == 0 {
		wMax = budget
	}
	sweeps := p.Sweeps
	if sweeps == 0 {
		sweeps = 6
	}
	tol := p.Tol
	if tol == 0 {
		tol = 1e-3
	}

	res := &Result{Widths: append([]float64(nil), p.Init...)}
	eval := func(w []float64) (float64, error) {
		res.Evaluations++
		return p.Eval(w)
	}
	cur, err := eval(res.Widths)
	if err != nil {
		return nil, err
	}
	res.InitDelay = cur

	trial := make([]float64, k)
	for sweep := 0; sweep < sweeps; sweep++ {
		start := cur
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				// Transfer t from w_j to w_i: t ∈ [lo, hi] keeps both in
				// bounds; t = 0 is the current point.
				lo := math.Max(wMin-res.Widths[i], res.Widths[j]-wMax)
				hi := math.Min(wMax-res.Widths[i], res.Widths[j]-wMin)
				if hi-lo < 1e-9 {
					continue
				}
				f := func(t float64) (float64, error) {
					copy(trial, res.Widths)
					trial[i] += t
					trial[j] -= t
					return eval(trial)
				}
				tBest, dBest, err := golden(f, lo, hi, cur, 1e-8)
				if err != nil {
					return nil, err
				}
				if dBest < cur {
					res.Widths[i] += tBest
					res.Widths[j] -= tBest
					cur = dBest
				}
			}
		}
		if (start-cur)/start < tol {
			break
		}
	}
	res.Delay = cur
	return res, nil
}

// golden minimizes f over [lo, hi] with a golden-section search seeded by
// the value at t = 0 (f0). Returns the best t and value found, including
// t = 0 if nothing beats it.
func golden(f func(float64) (float64, error), lo, hi, f0 float64, xtol float64) (float64, float64, error) {
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, err := f(x1)
	if err != nil {
		return 0, 0, err
	}
	f2, err := f(x2)
	if err != nil {
		return 0, 0, err
	}
	for iter := 0; iter < 40 && (b-a) > xtol; iter++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1, err = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2, err = f(x2)
		}
		if err != nil {
			return 0, 0, err
		}
	}
	tBest, dBest := x1, f1
	if f2 < dBest {
		tBest, dBest = x2, f2
	}
	if f0 <= dBest {
		return 0, f0, nil
	}
	return tBest, dBest, nil
}
