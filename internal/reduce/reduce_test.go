package reduce

import (
	"math"
	"strings"
	"testing"

	"qwm/internal/awe"
	"qwm/internal/circuit"
)

// chainStage builds a single-NMOS pulldown stage whose output hangs at the
// end of an n-segment series wire: 0 —nmos— n1 —w1—…—w(n-1)— out. Each
// internal wire node carries an explicit load cap.
func chainStage(n int) (*circuit.Stage, map[string]float64) {
	st := &circuit.Stage{Name: "chain", Inputs: []string{"g"}, Outputs: []string{"out"}}
	st.Edges = append(st.Edges, &circuit.StageEdge{
		Kind: circuit.KindNMOS, Src: "n1", Snk: "0", Gate: "g", W: 2e-6, L: 0.35e-6,
	})
	loads := map[string]float64{"out": 10e-15}
	prev := "n1"
	nodes := []string{"n1"}
	for i := 1; i <= n; i++ {
		next := "out"
		if i < n {
			next = "w" + string(rune('a'+i-1))
			loads[next] = (1 + 0.1*float64(i)) * 1e-15
		}
		st.Edges = append(st.Edges, &circuit.StageEdge{
			Kind: circuit.KindWire, Src: prev, Snk: next, R: 40 + 5*float64(i),
		})
		nodes = append(nodes, next)
		prev = next
	}
	st.Nodes = nodes
	return st, loads
}

func wireRunMoments(t *testing.T, p *circuit.Path, loads map[string]float64) (m1, m2, rtot, ctot float64) {
	t.Helper()
	var segs []awe.ChainSeg
	for _, pe := range p.Elems {
		if pe.Edge.Kind != circuit.KindWire {
			continue
		}
		c := 0.0
		if pe.Upper != p.Output {
			c = loads[pe.Upper]
		}
		segs = append(segs, awe.ChainSeg{R: pe.Edge.R, C: c})
	}
	if len(segs) == 0 {
		t.Fatal("path has no wire run")
	}
	m1, m2 = awe.ChainMoments(segs, loads[p.Output])
	rtot, ctot = awe.ChainTotals(segs)
	ctot += loads[p.Output]
	return m1, m2, rtot, ctot
}

func TestPathCollapsesLongRun(t *testing.T) {
	st, loads := chainStage(12)
	p, err := circuit.LongestPath(st, "out", "0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Enabled: true, TolPct: 1}
	rp, rl, stats := Path(st, p, loads, cfg)
	if rp == p || len(rp.Elems) >= len(p.Elems) {
		t.Fatalf("no collapse: %d -> %d elems", len(p.Elems), len(rp.Elems))
	}
	if stats.RunsCollapsed != 1 || stats.NodesRemoved == 0 {
		t.Fatalf("stats = %+v, want one collapsed run with removed nodes", stats)
	}
	if stats.NodesRemoved != (len(p.Elems) - len(rp.Elems)) {
		t.Fatalf("NodesRemoved = %d, elems shrank by %d", stats.NodesRemoved, len(p.Elems)-len(rp.Elems))
	}
	// The transistor element must be untouched, and the path must still end
	// at the output.
	if rp.Elems[0].Edge.Kind != circuit.KindNMOS || rp.Output != "out" || rp.Elems[len(rp.Elems)-1].Upper != "out" {
		t.Fatalf("reduced path malformed: %+v", rp)
	}
	// Elmore, total R and total C of the wire run (load included) preserved;
	// second moment within tolerance.
	m1, m2, r0, c0 := wireRunMoments(t, p, loads)
	m1r, m2r, r1, c1 := wireRunMoments(t, rp, rl)
	if math.Abs(m1r-m1) > 1e-9*math.Abs(m1) {
		t.Fatalf("Elmore changed: %g -> %g", m1, m1r)
	}
	if math.Abs(r1-r0) > 1e-12*r0 || math.Abs(c1-c0) > 1e-12*c0 {
		t.Fatalf("totals changed: R %g->%g, C %g->%g", r0, r1, c0, c1)
	}
	if got := math.Abs(m2r-m2) / (m1 * m1); got > cfg.TolPct/100 {
		t.Fatalf("m2 mismatch %g exceeds tol", got)
	}
	if stats.ErrMax > cfg.TolPct/100 {
		t.Fatalf("ErrMax %g exceeds tol", stats.ErrMax)
	}
	// Interior load entries must be rewritten onto the synthetic nodes only.
	for n := range rl {
		if strings.HasPrefix(n, "w") {
			t.Fatalf("stale interior load entry %q in reduced loads", n)
		}
	}
	// The caller's maps/paths must be untouched.
	if len(p.Elems) != 13 || loads["wa"] == 0 {
		t.Fatal("inputs were mutated")
	}
}

func TestPathDisabledAndShortRunsPassThrough(t *testing.T) {
	st, loads := chainStage(12)
	p, _ := circuit.LongestPath(st, "out", "0")
	if rp, rl, stats := Path(st, p, loads, Config{}); rp != p || &rl == nil || stats.NodesRemoved != 0 {
		t.Fatal("disabled config must be a no-op returning the same path")
	}
	st3, loads3 := chainStage(3)
	p3, _ := circuit.LongestPath(st3, "out", "0")
	rp, rl, _ := Path(st3, p3, loads3, Config{Enabled: true})
	if rp != p3 {
		t.Fatalf("run shorter than MinRun must pass through, got %d elems", len(rp.Elems))
	}
	for k, v := range loads3 {
		if rl[k] != v {
			t.Fatalf("loads changed on pass-through: %q", k)
		}
	}
}

func TestPathTighterTolKeepsMoreSegments(t *testing.T) {
	st, loads := chainStage(24)
	p, _ := circuit.LongestPath(st, "out", "0")
	loose, _, _ := Path(st, p, loads, Config{Enabled: true, TolPct: 20})
	tight, _, _ := Path(st, p, loads, Config{Enabled: true, TolPct: 1e-4})
	if len(tight.Elems) < len(loose.Elems) {
		t.Fatalf("tighter tol gave fewer elems: %d < %d", len(tight.Elems), len(loose.Elems))
	}
}

func TestSignature(t *testing.T) {
	sigs := map[string]bool{}
	for _, c := range []Config{
		{},
		{Enabled: true},
		{Enabled: true, TolPct: 5},
		{Enabled: true, TolPct: 5, MinRun: 8},
		{Enabled: true, TolPct: 5, MinRun: 8, LumpLeaves: true},
	} {
		s := c.Signature()
		if c.Enabled == (s == "") {
			t.Fatalf("signature %q inconsistent with Enabled=%v", s, c.Enabled)
		}
		if s != "" && sigs[s] {
			t.Fatalf("duplicate signature %q", s)
		}
		sigs[s] = true
	}
	if (Config{Enabled: true}).Signature() != (Config{Enabled: true, TolPct: 1, MinRun: 4}).Signature() {
		t.Fatal("defaulted config must share the explicit-default signature")
	}
}

func TestLumpLeaves(t *testing.T) {
	st, loads := chainStage(12)
	// Hang a two-node wire stub off an interior node; that node gains wire
	// degree 3, so it splits the run and anchors the stub.
	st.Edges = append(st.Edges,
		&circuit.StageEdge{Kind: circuit.KindWire, Src: "wd", Snk: "s1", R: 100},
		&circuit.StageEdge{Kind: circuit.KindWire, Src: "s1", Snk: "s2", R: 100},
	)
	st.Nodes = append(st.Nodes, "s1", "s2")
	loads["s1"], loads["s2"] = 3e-15, 4e-15
	p, err := circuit.LongestPath(st, "out", "0")
	if err != nil {
		t.Fatal(err)
	}
	_, rl, stats := Path(st, p, loads, Config{Enabled: true, LumpLeaves: true})
	if stats.LeavesLumped != 2 {
		t.Fatalf("LeavesLumped = %d, want 2", stats.LeavesLumped)
	}
	if _, ok := rl["s1"]; ok {
		t.Fatal("stub load entry survived lumping")
	}
	if got := rl["wd"]; math.Abs(got-(loads["wd"]+7e-15)) > 1e-21 {
		t.Fatalf("attach load = %g, want stub total folded in", got)
	}
	// Without LumpLeaves the stub must be left alone.
	_, rl2, stats2 := Path(st, p, loads, Config{Enabled: true})
	if stats2.LeavesLumped != 0 || rl2["s1"] != 3e-15 {
		t.Fatal("leaf lumped without opt-in")
	}
}
